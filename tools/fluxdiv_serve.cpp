// fluxdiv_serve: replay a workload spec file through the throughput
// service (docs/serving.md). Admits every instance of the workload into
// one shared task pool, optionally consulting/updating a persistent
// TuneDB so that replaying the same workload a second time performs zero
// re-tuning, and prints the service report (solves/sec, p50/p99 latency,
// pool utilization, steal/domain-crossing counts).
//
//   fluxdiv_serve --workload w.spec --tunedb tune.json \
//       --threads 8 --repeat 2
//
// Workload spec: one instance per line, `name key=value...` with keys
// scheme, box, nboxes, steps, dt, weight, fuse, policy ('#' comments).

#include <iostream>
#include <string>
#include <vector>

#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "serve/solve_service.hpp"
#include "tuner/tunedb.hpp"

int main(int argc, char** argv) {
  using namespace fluxdiv;
  harness::Args args;
  args.addString("workload", "",
                 "workload spec file (required; see docs/serving.md)");
  args.addString("tunedb", "",
                 "persistent TuneDB JSON (loaded if present, saved after "
                 "the run)");
  args.addInt("threads", 4, "shared pool workers");
  args.addInt("repeat", 1, "replay the workload this many times");
  args.addInt("window", 0,
              "admission window: max in-flight instances (0 = auto, "
              "threads + 1; negative = all at once)");
  args.addBool("pin", "pin pool workers to cores");
  args.addBool("quiet", "suppress the per-instance report lines");
  if (!args.parse(argc, argv)) {
    return 1;
  }
  if (args.getString("workload").empty()) {
    std::cerr << "fluxdiv_serve: --workload is required\n";
    return 1;
  }

  try {
    const std::vector<serve::InstanceSpec> specs =
        serve::loadWorkload(args.getString("workload"));
    if (specs.empty()) {
      std::cerr << "fluxdiv_serve: workload is empty\n";
      return 1;
    }

    harness::printMachineReport(std::cout, harness::queryMachine());

    tuner::TuneDB db;
    const std::string dbPath = args.getString("tunedb");
    if (!dbPath.empty() && db.load(dbPath)) {
      std::cout << "tunedb: " << db.size() << " measured record(s) for "
                << db.machine().str() << "\n";
    }

    serve::ServiceOptions opts;
    opts.threads = static_cast<int>(args.getInt("threads"));
    opts.pin = args.getBool("pin");
    opts.maxConcurrent = static_cast<int>(args.getInt("window"));
    opts.tunedb = dbPath.empty() ? nullptr : &db;
    serve::SolveService service(opts);

    const int repeat =
        std::max(1, static_cast<int>(args.getInt("repeat")));
    for (int r = 0; r < repeat; ++r) {
      serve::ServiceReport report = service.run(specs);
      std::cout << "\nrun " << (r + 1) << "/" << repeat << " ("
                << specs.size() << " instances, "
                << opts.threads << " threads):\n";
      if (args.getBool("quiet")) {
        report.instances.clear();
      }
      serve::printServiceReport(std::cout, report);
    }

    if (!dbPath.empty()) {
      db.save(dbPath);
      std::cout << "\ntunedb: saved " << db.size()
                << " measured record(s) to " << dbPath << " ("
                << db.counters().hits << " hits, "
                << db.counters().misses << " misses, "
                << db.counters().refines << " refines)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fluxdiv_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
