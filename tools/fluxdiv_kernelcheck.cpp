// Kernel footprint contract checker CLI (docs/static-analysis.md,
// "Kernel contract checking"). Differentially probes every shipped
// kernel shape — the scalar and pencil stage drivers per direction, the
// reference pipelines, and the variant executors' whole-box paths — and
// proves the declared stencil footprints of kernels/footprint.hpp sound
// and tight: K1 (every observed access is declared), K2 (every declared
// offset is exercised), K3 (the lowered task graphs' footprints agree
// with the proven hulls).
//
//   ./tools/fluxdiv_kernelcheck [--stage <substring>] [--boxsize 8]
//                               [--pitch all|padded|dense] [--threads 4]
//                               [--strict] [--json]
//                               [--mutate] [--seeds 5]
//
// --stage filters shapes by name substring ("pencil:EvalFlux1",
//   "variant:", ...); the graph consistency pass runs only when no
//   filter is set (it needs the proven hulls of the full shape set).
// --strict exits 1 unless every contract proves clean (advisories and
//   soundness violations alike).
// --mutate additionally runs the seeded kernel miscompilations of
//   analysis/mutate (read widening, stencil shifts, forgotten declared
//   offsets) and exits 1 unless the checker rejects each with the
//   predicted witness offset — the CI guard that the checker detects
//   contract violations, not merely accepts sound kernels.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/kernelcheck.hpp"
#include "analysis/mutate.hpp"
#include "core/exec_level.hpp"
#include "core/kernelshapes.hpp"
#include "core/variant.hpp"
#include "grid/box.hpp"
#include "grid/leveldata.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;
using core::VariantConfig;
using grid::Box;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::LevelData;
using grid::Pitch;
using grid::ProblemDomain;

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string fmtOffset(const IntVect& v) {
  std::string out = "(";
  out += std::to_string(v[0]);
  out += ",";
  out += std::to_string(v[1]);
  out += ",";
  out += std::to_string(v[2]);
  out += ")";
  return out;
}

struct ShapeRun {
  analysis::KernelFootprintModel model;
  analysis::KernelCheckReport report;
};

/// The same representative schedule families the graphcheck tool sweeps.
std::vector<VariantConfig> representativeFamilies(int boxSize) {
  const int tile = boxSize >= 8 ? 4 : 2;
  return {
      core::makeBaseline(core::ParallelGranularity::WithinBox),
      core::makeShiftFuse(core::ParallelGranularity::WithinBox),
      core::makeBlockedWF(tile, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Outside),
      core::makeBlockedWF(tile, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, tile,
                           core::ParallelGranularity::WithinBox),
  };
}

int countObservedReads(const analysis::KernelFootprintModel& m) {
  int n = 0;
  for (const analysis::RoleFootprint& r : m.reads) {
    n += static_cast<int>(r.observed.size());
  }
  return n;
}

/// K3: lower the level executor's run() graphs for the representative
/// families and prove their declared footprints agree with the hulls the
/// differential probe established.
std::vector<analysis::KernelDiag>
checkLoweredGraphs(const analysis::ProvenFootprints& proven, int boxSize,
                   int nThreads, int& graphsChecked) {
  const ProblemDomain dom(Box(
      IntVect::zero(),
      IntVect{2 * boxSize - 1, 2 * boxSize - 1, 2 * boxSize - 1}));
  const DisjointBoxLayout dbl(dom, boxSize);
  LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
  LevelData phi1(dbl, kernels::kNumComp, 0);
  kernels::initializeExemplar(phi0);

  std::vector<analysis::KernelDiag> diags;
  for (const VariantConfig& cfg : representativeFamilies(boxSize)) {
    for (const core::LevelPolicy policy :
         {core::LevelPolicy::BoxParallel, core::LevelPolicy::Hybrid}) {
      core::LevelExecOptions opts;
      opts.policy = policy;
      core::LevelExecutor exec(cfg, nThreads, opts);
      for (const bool withExchange : {false, true}) {
        const analysis::TaskGraphModel model =
            exec.lowerGraph(phi0, phi1, withExchange);
        ++graphsChecked;
        std::vector<analysis::KernelDiag> d =
            analysis::checkGraphFootprints(model, proven);
        diags.insert(diags.end(), std::make_move_iterator(d.begin()),
                     std::make_move_iterator(d.end()));
      }
    }
  }
  return diags;
}

int runMutations(const std::vector<ShapeRun>& runs, int nSeeds, bool json,
                 std::vector<std::string>& jsonRows) {
  using analysis::mutate::KernelMutation;
  int failures = 0;
  int executed = 0;
  int skipped = 0;
  for (const ShapeRun& sr : runs) {
    for (std::uint64_t seed = 0; seed < static_cast<std::uint64_t>(nSeeds);
         ++seed) {
      const KernelMutation muts[] = {
          analysis::mutate::widenKernelRead(sr.model, seed),
          analysis::mutate::shiftKernelStencil(sr.model, seed),
          analysis::mutate::forgetDeclaredOffset(sr.model, seed),
      };
      for (const KernelMutation& mut : muts) {
        if (mut.expect == analysis::KernelDiagKind::Ok) {
          ++skipped; // shape offered no candidate for this class
          continue;
        }
        ++executed;
        const analysis::KernelCheckReport rep =
            analysis::checkKernelFootprints(mut.model);
        bool caught = false;
        for (const analysis::KernelDiag& d : rep.diagnostics) {
          if (d.kind == mut.expect && d.role == mut.role &&
              d.offset == mut.offset) {
            caught = true;
            break;
          }
        }
        bool alsoCaught = mut.expectAlso == analysis::KernelDiagKind::Ok;
        if (!alsoCaught) {
          for (const analysis::KernelDiag& d : rep.advisories) {
            if (d.kind == mut.expectAlso && d.role == mut.role) {
              alsoCaught = true;
              break;
            }
          }
        }
        if (!caught || !alsoCaught) {
          ++failures;
          std::cerr << "MISSED MUTATION [" << sr.model.kernel << ", seed "
                    << seed << "]: " << mut.what << "\n  expected "
                    << analysis::kernelDiagKindName(mut.expect) << " on '"
                    << mut.role << "' at " << fmtOffset(mut.offset);
          if (mut.expectAlso != analysis::KernelDiagKind::Ok) {
            std::cerr << " (plus "
                      << analysis::kernelDiagKindName(mut.expectAlso)
                      << ")";
          }
          std::cerr << ", got " << rep.diagnostics.size()
                    << " diagnostic(s), " << rep.advisories.size()
                    << " advisory(ies)";
          for (const analysis::KernelDiag& d : rep.diagnostics) {
            std::cerr << "\n    " << d.message();
          }
          std::cerr << "\n";
        }
      }
    }
  }
  if (json) {
    std::string row = "  \"mutations\": {\"executed\": ";
    row += std::to_string(executed);
    row += ", \"skipped\": ";
    row += std::to_string(skipped);
    row += ", \"missed\": ";
    row += std::to_string(failures);
    row += "}";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "\nmutation suite: " << executed
              << " seeded miscompilation(s), " << failures << " missed, "
              << skipped << " without a candidate\n";
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addString("stage", "",
                 "only check shapes whose name contains this substring "
                 "(empty = all shapes + graph consistency)");
  args.addInt("boxsize", 8, "probe output-region side N");
  args.addString("pitch", "all",
                 "row pitches to probe: all, padded, or dense");
  args.addInt("threads", 4, "threads for the variant-executor shapes");
  args.addBool("strict",
               "exit 1 unless every contract proves sound AND tight");
  args.addBool("json", "machine-readable JSON output");
  args.addBool("mutate",
               "run the seeded kernel miscompilations and require the "
               "checker to reject each with its predicted witness");
  args.addInt("seeds", 5, "seeds per mutation class for --mutate");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int boxSize = static_cast<int>(args.getInt("boxsize"));
  const int nThreads = static_cast<int>(args.getInt("threads"));
  if (boxSize < 4 || nThreads < 1) {
    std::cerr << "error: need --boxsize >= 4 (the widest stencil spans "
                 "5 cells) and --threads >= 1\n";
    return 1;
  }
  std::vector<Pitch> pitches;
  const std::string& pitchArg = args.getString("pitch");
  if (pitchArg == "all") {
    pitches = {Pitch::Padded, Pitch::Dense};
  } else if (pitchArg == "padded") {
    pitches = {Pitch::Padded};
  } else if (pitchArg == "dense") {
    pitches = {Pitch::Dense};
  } else {
    std::cerr << "error: --pitch must be all, padded, or dense (got '"
              << pitchArg << "')\n";
    return 1;
  }

  const std::string& filter = args.getString("stage");
  std::vector<analysis::KernelShape> shapes = analysis::builtinShapes();
  {
    const int tile = boxSize >= 8 ? 4 : 2;
    std::vector<analysis::KernelShape> variants =
        core::variantShapes(nThreads, tile);
    shapes.insert(shapes.end(),
                  std::make_move_iterator(variants.begin()),
                  std::make_move_iterator(variants.end()));
  }
  if (!filter.empty()) {
    std::erase_if(shapes, [&](const analysis::KernelShape& s) {
      return s.name.find(filter) == std::string::npos;
    });
  }
  if (shapes.empty()) {
    std::cerr << "error: no kernel shape matches --stage '" << filter
              << "'\n";
    return 1;
  }

  const bool json = args.getBool("json");
  analysis::ProbeOptions opts;
  opts.boxSize = boxSize;

  std::vector<ShapeRun> runs;
  runs.reserve(shapes.size());
  for (const analysis::KernelShape& shape : shapes) {
    ShapeRun sr;
    sr.model = analysis::inferFootprintAcross(shape, {boxSize}, pitches,
                                              opts);
    sr.report = analysis::checkKernelFootprints(sr.model);
    runs.push_back(std::move(sr));
  }

  int soundnessDiagnostics = 0;
  int tightnessAdvisories = 0;
  std::vector<std::string> jsonRows;
  if (json) {
    std::string row = "  \"shapes\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ShapeRun& sr = runs[i];
      if (i > 0) {
        row += ", ";
      }
      row += "{\"kernel\": \"" + jsonEscape(sr.model.kernel) + "\"";
      row += ", \"stage\": \"" +
             analysis::kernelStageTag(sr.model.stage, sr.model.dir) + "\"";
      row += ", \"roles\": " + std::to_string(sr.report.rolesChecked);
      row += ", \"declared\": " +
             std::to_string(sr.report.declaredOffsets);
      row += ", \"observed\": " +
             std::to_string(countObservedReads(sr.model));
      row += ", \"probes\": " + std::to_string(sr.report.probes);
      row += ", \"diagnostics\": " +
             std::to_string(sr.report.diagnostics.size());
      row += ", \"advisories\": " +
             std::to_string(sr.report.advisories.size());
      row += "}";
    }
    row += "]";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "checking kernel footprint contracts over " << boxSize
              << "^3 output regions";
    if (pitches.size() > 1) {
      std::cout << ", padded and dense rows";
    }
    std::cout << "\n\n";
    harness::Table table({"kernel", "stage", "roles", "declared",
                          "observed", "probes", "unsound", "untight"});
    for (const ShapeRun& sr : runs) {
      table.addRow(
          {sr.model.kernel,
           analysis::kernelStageTag(sr.model.stage, sr.model.dir),
           std::to_string(sr.report.rolesChecked),
           std::to_string(sr.report.declaredOffsets),
           std::to_string(countObservedReads(sr.model)),
           std::to_string(sr.report.probes),
           sr.report.ok() ? "-"
                          : std::to_string(sr.report.diagnostics.size()),
           sr.report.advisories.empty()
               ? "-"
               : std::to_string(sr.report.advisories.size())});
    }
    table.print(std::cout);
  }
  for (const ShapeRun& sr : runs) {
    soundnessDiagnostics += static_cast<int>(sr.report.diagnostics.size());
    tightnessAdvisories += static_cast<int>(sr.report.advisories.size());
    for (const analysis::KernelDiag& d : sr.report.diagnostics) {
      std::cerr << "CONTRACT: " << d.message() << "\n";
    }
    for (const analysis::KernelDiag& d : sr.report.advisories) {
      std::cerr << "ADVISORY: " << d.message() << "\n";
    }
  }

  // K3 over the lowered task graphs, against the hulls just proven. Only
  // meaningful when the probe covered the full shape set.
  int graphMismatches = 0;
  int graphsChecked = 0;
  if (filter.empty()) {
    std::vector<analysis::KernelFootprintModel> models;
    models.reserve(runs.size());
    for (const ShapeRun& sr : runs) {
      models.push_back(sr.model);
    }
    const std::vector<analysis::KernelDiag> graphDiags =
        checkLoweredGraphs(analysis::extractProven(models), boxSize,
                           nThreads, graphsChecked);
    for (const analysis::KernelDiag& d : graphDiags) {
      if (d.kind == analysis::KernelDiagKind::Overdeclared) {
        ++tightnessAdvisories;
        std::cerr << "ADVISORY: " << d.message() << "\n";
      } else {
        ++graphMismatches;
        std::cerr << "GRAPH: " << d.message() << "\n";
      }
    }
    if (json) {
      std::string row = "  \"graphs\": {\"checked\": ";
      row += std::to_string(graphsChecked);
      row += ", \"mismatches\": ";
      row += std::to_string(graphMismatches);
      row += "}";
      jsonRows.push_back(std::move(row));
    } else {
      std::cout << "\ngraph consistency: " << graphsChecked
                << " lowered graph(s), " << graphMismatches
                << " footprint mismatch(es)\n";
    }
  }

  int mutationFailures = 0;
  if (args.getBool("mutate")) {
    mutationFailures = runMutations(
        runs, static_cast<int>(args.getInt("seeds")), json, jsonRows);
  }

  if (json) {
    std::cout << "{\n";
    for (std::size_t i = 0; i < jsonRows.size(); ++i) {
      std::cout << jsonRows[i] << (i + 1 < jsonRows.size() ? ",\n" : "\n");
    }
    std::cout << "}\n";
  }

  // Missed mutations are self-test failures and always fail; contract
  // diagnostics and tightness advisories on the real kernels fail under
  // --strict.
  const bool failed =
      mutationFailures > 0 ||
      (args.getBool("strict") &&
       (soundnessDiagnostics > 0 || graphMismatches > 0 ||
        tightnessAdvisories > 0));
  if (failed) {
    std::cerr << "\nkernelcheck: FAILED (" << soundnessDiagnostics
              << " contract diagnostic(s), " << graphMismatches
              << " graph mismatch(es), " << tightnessAdvisories
              << " tightness advisory(ies), " << mutationFailures
              << " missed mutation(s))\n";
    return 1;
  }
  if (!json) {
    std::cout << "\nkernelcheck: all contracts sound and tight over "
              << runs.size() << " kernel shape(s)\n";
  }
  return 0;
}
