// Variant catalog: print every registered scheduling variant for a box
// size with its axes, its Table-I-style temporary-storage prediction, and
// its modeled DRAM traffic — the paper's Sec. IV taxonomy as a queryable
// artifact.
//
//   ./tools/fluxdiv_variants [--boxsize 128] [--llc-mib 6] [--csv f.csv]

#include <iostream>

#include "harness/args.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "memmodel/traffic_model.hpp"

using namespace fluxdiv;

namespace {

const char* familyName(core::ScheduleFamily f) {
  switch (f) {
  case core::ScheduleFamily::SeriesOfLoops:
    return "series-of-loops";
  case core::ScheduleFamily::ShiftFuse:
    return "shift+fuse";
  case core::ScheduleFamily::BlockedWavefront:
    return "blocked wavefront";
  case core::ScheduleFamily::OverlappedTiles:
    return "overlapped tiles";
  }
  return "?";
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 128, "box side N");
  args.addInt("llc-mib", 6, "LLC size for the traffic model");
  args.addString("csv", "", "also write the catalog to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const std::size_t llc =
      std::size_t(args.getInt("llc-mib")) * 1024 * 1024;

  const auto variants = core::enumerateVariants(n);
  std::cout << "=== " << variants.size()
            << " registered scheduling variants for N=" << n
            << " (paper Sec. IV; \"30 of 328 possible\") ===\n\n";

  harness::Table table({"#", "name", "family", "comp loop", "tile",
                        "working set", "model B/cell", "regime"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"name", "family", "comp", "tile", "working_set",
                          "bytes_per_cell", "fits_llc"});
  int index = 1;
  for (const auto& cfg : variants) {
    const auto est = memmodel::estimateTraffic(cfg, n, llc);
    table.addRow(
        {std::to_string(index++), cfg.name(), familyName(cfg.family),
         cfg.comp == core::ComponentLoop::Outside ? "outside" : "inside",
         cfg.tileSize == 0 ? "-" : std::to_string(cfg.tileSize),
         harness::formatBytes(std::size_t(est.workingSetBytes)),
         harness::formatDouble(est.bytesPerCell, 1),
         est.workingSetFits ? "in-cache" : "streaming"});
    csv.writeRow(
        {cfg.name(), familyName(cfg.family),
         cfg.comp == core::ComponentLoop::Outside ? "CLO" : "CLI",
         std::to_string(cfg.tileSize),
         harness::formatDouble(est.workingSetBytes, 0),
         harness::formatDouble(est.bytesPerCell, 2),
         est.workingSetFits ? "1" : "0"});
  }
  table.print(std::cout);
  std::cout << "\nextensions available beyond the registry (see "
               "bench_ext_hybrid_aspect):\n  - hybrid box-x-tile "
               "granularity for overlapped tiles (P=Box*Tile)\n  - pencil "
               "(N x T x T) and slab (N x N x T) tile aspects\n";
  return 0;
}
