// Task-graph race verifier CLI (docs/static-analysis.md, "Task-graph
// verification"). Lowers the level executor's task graphs — run() and
// runStep(), every policy, every schedule family — to their analysis
// models and proves them race-free with analysis::checkTaskGraph: G1
// acyclicity, G2 happens-before-ordered conflicting footprints, G3 ghost
// reads covered by preceding exchange-op writes. Also reports the
// over-synchronization advisory (removable edges).
//
//   ./tools/fluxdiv_graphcheck [--policy all|parallel|hybrid]
//                              [--nboxes 8] [--boxsize 16] [--threads 4]
//                              [--strict] [--json]
//                              [--mutate] [--seeds 5] [--replay]
//
// --strict exits 1 unless every graph verifies clean.
// --mutate additionally runs the seeded graph miscompilations of
//   analysis/mutate (edge drops, edge reroutes, ghost-write shrinks) and
//   exits 1 unless the checker rejects each with the predicted two-task
//   witness — the CI guard that the verifier actually detects races, not
//   merely accepts legal graphs.
// --replay additionally executes each graph under the four adversarial
//   serial orderings (fifo, lifo, steal, random; core::ReplayMode) and
//   exits 1 unless every ordering produces bit-identical phi1 to the
//   box-sequential evaluation.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/graphcheck.hpp"
#include "analysis/mutate.hpp"
#include "analysis/verifier.hpp"
#include "core/exec_level.hpp"
#include "core/variant.hpp"
#include "grid/box.hpp"
#include "grid/leveldata.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;
using core::LevelPolicy;
using core::VariantConfig;
using grid::Box;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::LevelData;
using grid::ProblemDomain;

namespace {

/// The four schedule families at one representative configuration each
/// (WithinBox granularity so hybrid decomposes into real tile tasks).
std::vector<VariantConfig> representativeFamilies(int boxSize) {
  const int tile = boxSize >= 8 ? 4 : 2;
  return {
      core::makeBaseline(core::ParallelGranularity::WithinBox),
      core::makeShiftFuse(core::ParallelGranularity::WithinBox),
      core::makeBlockedWF(tile, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Outside),
      core::makeBlockedWF(tile, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, tile,
                           core::ParallelGranularity::WithinBox),
  };
}

/// Near-cubic per-axis box counts whose product is >= nBoxes.
IntVect factorBoxes(int nBoxes) {
  IntVect counts = IntVect::unit(1);
  while (counts.product() < nBoxes) {
    int smallest = 0;
    for (int d = 1; d < grid::SpaceDim; ++d) {
      if (counts[d] < counts[smallest]) {
        smallest = d;
      }
    }
    counts[smallest] += 1;
  }
  return counts;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

struct GraphRun {
  std::string variant;
  std::string policy;
  std::string graph; ///< "run" or "runStep"
  analysis::GraphCheckReport report;
};

/// One level-shaped pair of fields for lowering (ghosts exchanged so the
/// run() contract holds; lowerGraph never executes kernels anyway).
struct Level {
  LevelData phi0;
  LevelData phi1;
};

Level makeLevel(const DisjointBoxLayout& dbl) {
  Level lv{LevelData(dbl, kernels::kNumComp, kernels::kNumGhost),
           LevelData(dbl, kernels::kNumComp, 0)};
  kernels::initializeExemplar(lv.phi0);
  return lv;
}

int runMutations(const std::vector<VariantConfig>& families,
                 const DisjointBoxLayout& dbl, int nThreads, int nSeeds,
                 bool json, std::vector<std::string>& jsonRows) {
  using analysis::mutate::GraphMutation;
  int failures = 0;
  int executed = 0;
  int skipped = 0;
  for (const VariantConfig& cfg : families) {
    for (const LevelPolicy policy :
         {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
      core::LevelExecOptions opts;
      opts.policy = policy;
      core::LevelExecutor exec(cfg, nThreads, opts);
      Level lv = makeLevel(dbl);
      for (const bool withExchange : {false, true}) {
        const analysis::TaskGraphModel model =
            exec.lowerGraph(lv.phi0, lv.phi1, withExchange);
        for (std::uint64_t seed = 0;
             seed < static_cast<std::uint64_t>(nSeeds); ++seed) {
          const GraphMutation muts[] = {
              analysis::mutate::dropGraphEdge(model, seed),
              analysis::mutate::rerouteGraphEdge(model, seed),
              analysis::mutate::shrinkGhostWrite(model, seed),
          };
          for (const GraphMutation& mut : muts) {
            if (mut.expect == analysis::DiagnosticKind::Ok) {
              ++skipped; // graph offered no candidate for this class
              continue;
            }
            ++executed;
            const auto rep = analysis::checkTaskGraph(mut.model);
            const std::string tagA = model.label(mut.taskA);
            const std::string tagB = model.label(mut.taskB);
            bool caught = false;
            for (const analysis::Diagnostic& d : rep.diagnostics) {
              if (d.kind != mut.expect) {
                continue;
              }
              const bool namesPair =
                  (d.stageA == tagA && d.stageB == tagB) ||
                  (d.stageA == tagB && d.stageB == tagA);
              if (namesPair) {
                caught = true;
                break;
              }
            }
            if (!caught) {
              ++failures;
              std::cerr << "MISSED MUTATION [" << model.name
                        << ", seed " << seed << "]: " << mut.what
                        << "\n  expected "
                        << analysis::diagnosticKindName(mut.expect)
                        << " naming '" << tagA << "' vs '" << tagB
                        << "', got " << rep.diagnostics.size()
                        << " diagnostic(s)";
              for (const auto& d : rep.diagnostics) {
                std::cerr << "\n    " << d.message();
              }
              std::cerr << "\n";
            }
          }
        }
      }
    }
  }
  if (json) {
    std::string row = "  \"mutations\": {\"executed\": ";
    row += std::to_string(executed);
    row += ", \"skipped\": ";
    row += std::to_string(skipped);
    row += ", \"missed\": ";
    row += std::to_string(failures);
    row += "}";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "\nmutation suite: " << executed
              << " seeded miscompilation(s), " << failures << " missed, "
              << skipped << " without a candidate\n";
  }
  return failures;
}

int runReplay(const std::vector<VariantConfig>& families,
              const DisjointBoxLayout& dbl, int nThreads, bool json,
              std::vector<std::string>& jsonRows) {
  int failures = 0;
  int executed = 0;
  for (const VariantConfig& cfg : families) {
    // Reference: box-sequential evaluation of the same exchanged level.
    Level ref = makeLevel(dbl);
    {
      core::LevelExecOptions opts;
      opts.policy = LevelPolicy::BoxSequential;
      core::LevelExecutor exec(cfg, nThreads, opts);
      exec.run(ref.phi0, ref.phi1);
    }
    for (const LevelPolicy policy :
         {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
      for (const core::ReplayOrder order : core::kReplayOrders) {
        core::LevelExecOptions opts;
        opts.policy = policy;
        opts.replay = {order, /*seed=*/1234};
        core::LevelExecutor exec(cfg, nThreads, opts);
        Level lv = makeLevel(dbl);
        exec.run(lv.phi0, lv.phi1);
        ++executed;
        const double diff =
            LevelData::maxAbsDiffValid(ref.phi1, lv.phi1);
        if (diff != 0.0) {
          ++failures;
          std::cerr << "REPLAY MISMATCH: " << cfg.name() << " / "
                    << core::levelPolicyName(policy) << " / "
                    << core::replayOrderName(order)
                    << ": max |diff| = " << diff << "\n";
        }
      }
    }
  }
  if (json) {
    std::string row = "  \"replay\": {\"executed\": ";
    row += std::to_string(executed);
    row += ", \"mismatched\": ";
    row += std::to_string(failures);
    row += "}";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "replay suite: " << executed
              << " adversarial ordering(s), " << failures
              << " mismatched vs sequential\n";
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addString("policy", "all",
                 "level policy to verify: all, parallel, or hybrid "
                 "(sequential has no task graph)");
  args.addInt("nboxes", 8, "boxes per level");
  args.addInt("boxsize", 16, "box side N");
  args.addInt("threads", 4, "pool workers (task ownership layout)");
  args.addBool("strict", "exit 1 unless every graph verifies clean");
  args.addBool("json", "machine-readable JSON output");
  args.addBool("mutate",
               "run the seeded graph miscompilations and require the "
               "checker to reject each with its predicted witness");
  args.addInt("seeds", 5, "seeds per mutation class for --mutate");
  args.addBool("replay",
               "execute each graph under the four adversarial orderings "
               "and require bit-identity with the sequential policy");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  const int boxSize = static_cast<int>(args.getInt("boxsize"));
  const int nThreads = static_cast<int>(args.getInt("threads"));
  if (nBoxes < 1 || boxSize < 8 || nThreads < 1) {
    std::cerr << "error: need --nboxes >= 1, --boxsize >= 8 (two ghost "
                 "layers plus a non-empty interior), --threads >= 1\n";
    return 1;
  }
  std::vector<LevelPolicy> policies;
  const std::string& policyArg = args.getString("policy");
  if (policyArg == "all") {
    policies = {LevelPolicy::BoxParallel, LevelPolicy::Hybrid};
  } else {
    LevelPolicy p{};
    if (!core::parseLevelPolicy(policyArg, p) ||
        p == LevelPolicy::BoxSequential) {
      std::cerr << "error: --policy must be all, parallel, or hybrid "
                   "(got '"
                << policyArg << "')\n";
      return 1;
    }
    policies = {p};
  }

  const IntVect counts = factorBoxes(nBoxes);
  const ProblemDomain dom(Box(
      IntVect::zero(), IntVect{counts[0] * boxSize - 1,
                               counts[1] * boxSize - 1,
                               counts[2] * boxSize - 1}));
  const DisjointBoxLayout dbl(dom, boxSize);
  const auto families = representativeFamilies(boxSize);
  const bool json = args.getBool("json");

  std::vector<GraphRun> runs;
  for (const VariantConfig& cfg : families) {
    for (const LevelPolicy policy : policies) {
      core::LevelExecOptions opts;
      opts.policy = policy;
      core::LevelExecutor exec(cfg, nThreads, opts);
      Level lv = makeLevel(dbl);
      for (const bool withExchange : {false, true}) {
        GraphRun gr;
        gr.variant = cfg.name();
        gr.policy = core::levelPolicyName(policy);
        gr.graph = withExchange ? "runStep" : "run";
        gr.report = analysis::checkTaskGraph(
            exec.lowerGraph(lv.phi0, lv.phi1, withExchange),
            /*findRemovable=*/true);
        runs.push_back(std::move(gr));
      }
    }
  }

  int raceDiagnostics = 0;
  std::vector<std::string> jsonRows;
  if (json) {
    std::string row = "  \"graphs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const GraphRun& gr = runs[i];
      if (i > 0) {
        row += ", ";
      }
      row += "{\"variant\": \"" + jsonEscape(gr.variant) + "\"";
      row += ", \"policy\": \"" + gr.policy + "\"";
      row += ", \"graph\": \"" + gr.graph + "\"";
      row += ", \"tasks\": " + std::to_string(gr.report.taskCount);
      row += ", \"edges\": " + std::to_string(gr.report.edgeCount);
      row += ", \"criticalPath\": " +
             std::to_string(gr.report.criticalPath);
      row += ", \"diagnostics\": " +
             std::to_string(gr.report.diagnostics.size());
      row += ", \"removable\": " +
             std::to_string(gr.report.removable.size());
      row += "}";
    }
    row += "]";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "verifying level-executor task graphs over "
              << dbl.size() << " x " << boxSize
              << "^3 boxes, threads=" << nThreads << "\n\n";
    harness::Table table({"variant", "policy", "graph", "tasks", "edges",
                          "depth", "races", "removable"});
    for (const GraphRun& gr : runs) {
      table.addRow({gr.variant, gr.policy, gr.graph,
                    std::to_string(gr.report.taskCount),
                    std::to_string(gr.report.edgeCount),
                    std::to_string(gr.report.criticalPath),
                    gr.report.ok()
                        ? "-"
                        : std::to_string(gr.report.diagnostics.size()),
                    std::to_string(gr.report.removable.size())});
    }
    table.print(std::cout);
  }
  for (const GraphRun& gr : runs) {
    raceDiagnostics += static_cast<int>(gr.report.diagnostics.size());
    for (const analysis::Diagnostic& d : gr.report.diagnostics) {
      std::cerr << "RACE [" << gr.report.graph << "]: " << d.message()
                << "\n";
    }
  }

  int mutationFailures = 0;
  if (args.getBool("mutate")) {
    mutationFailures =
        runMutations(families, dbl, nThreads,
                     static_cast<int>(args.getInt("seeds")), json,
                     jsonRows);
  }
  int replayFailures = 0;
  if (args.getBool("replay")) {
    replayFailures = runReplay(families, dbl, nThreads, json, jsonRows);
  }

  if (json) {
    std::cout << "{\n";
    for (std::size_t i = 0; i < jsonRows.size(); ++i) {
      std::cout << jsonRows[i] << (i + 1 < jsonRows.size() ? ",\n" : "\n");
    }
    std::cout << "}\n";
  }

  // Missed mutations and replay mismatches are self-test failures and
  // always fail; race diagnostics on the real graphs fail under --strict.
  const bool failed = mutationFailures > 0 || replayFailures > 0 ||
                      (args.getBool("strict") && raceDiagnostics > 0);
  if (failed) {
    std::cerr << "\ngraphcheck: FAILED (" << raceDiagnostics
              << " race diagnostic(s), " << mutationFailures
              << " missed mutation(s), " << replayFailures
              << " replay mismatch(es))\n";
    return 1;
  }
  if (!json) {
    std::cout << "\ngraphcheck: all clean over " << runs.size()
              << " graph(s)\n";
  }
  return 0;
}
