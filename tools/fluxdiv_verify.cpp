// Schedule legality report: lower every registered scheduling variant to
// its explicit ScheduleModel and run the static verifier over it, for a
// sweep of worker counts — the docs/static-analysis.md rules (coverage,
// disjointness, wavefront skew) as a queryable artifact. With
// --show-illegal, additionally runs the deliberately-broken mutations and
// prints the diagnostic each one is rejected with, so the output
// demonstrates the verifier rejects as well as accepts.
//
//   ./tools/fluxdiv_verify [--boxsize 64] [--threads 1,4,8]
//                          [--extensions] [--show-illegal]

#include <iostream>
#include <string>

#include "analysis/lower.hpp"
#include "analysis/mutate.hpp"
#include "analysis/verifier.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;

namespace {

/// Run one mutation demo line: mutate the model, verify, print the kind.
void demoIllegal(const char* what,
                 const analysis::ScheduleModel& mutated) {
  const analysis::Diagnostic d =
      analysis::ScheduleVerifier{}.verify(mutated);
  std::cout << "  " << what << "\n    -> "
            << (d.ok() ? std::string("NOT REJECTED (verifier bug!)")
                       : d.message())
            << "\n";
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side N");
  args.addIntList("threads", {1, 4, 8}, "worker counts to verify");
  args.addBool("extensions", "include the beyond-paper variant axes");
  args.addBool("show-illegal",
               "also demonstrate the rejected mutated schedules");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  if (n < 1) {
    std::cerr << "error: --boxsize must be >= 1\n";
    return 1;
  }
  const auto& threads = args.getIntList("threads");
  for (const std::int64_t t : threads) {
    if (t < 1) {
      std::cerr << "error: --threads entries must be >= 1\n";
      return 1;
    }
  }

  const auto variants =
      core::enumerateVariants(n, args.getBool("extensions"));
  std::cout << "=== schedule legality for " << variants.size()
            << " variants, N=" << n << " ===\n\n";

  harness::Table table({"variant", "threads", "verdict"});
  int failures = 0;
  for (const auto& cfg : variants) {
    for (const std::int64_t t : threads) {
      const analysis::Diagnostic d = analysis::ScheduleVerifier{}.verify(
          cfg, n, static_cast<int>(t));
      table.addRow({analysis::variantLabel(cfg), std::to_string(t),
                    d.ok() ? "ok" : d.message()});
      failures += d.ok() ? 0 : 1;
    }
  }
  table.print(std::cout);
  std::cout << '\n'
            << (failures == 0 ? "all schedules verified legal"
                              : std::to_string(failures) +
                                    " schedule(s) failed verification")
            << "\n";

  if (args.getBool("show-illegal")) {
    std::cout << "\n=== deliberately-broken schedules (must all be "
                 "rejected) ===\n";
    const grid::Box box = grid::Box::cube(16);
    const auto base = analysis::lowerVariant(
        core::makeBaseline(core::ParallelGranularity::WithinBox,
                           core::ComponentLoop::Inside),
        box, 4);
    const auto wf = analysis::lowerVariant(
        core::makeShiftFuse(core::ParallelGranularity::WithinBox,
                            core::ComponentLoop::Inside),
        box, 4);
    const auto ot = analysis::lowerVariant(
        core::makeOverlapped(core::IntraTileSchedule::Basic, 8,
                             core::ParallelGranularity::WithinBox),
        box, 4);
    demoIllegal("halo exchanged one layer too shallow",
                analysis::mutate::shallowHalo(base));
    demoIllegal("wavefront skew missing the z carry",
                analysis::mutate::weakSkew(wf));
    demoIllegal("overlapped-tile recompute region one face thin",
                analysis::mutate::thinOverlap(ot));
    demoIllegal("tiles committing their overlap region",
                analysis::mutate::overlappingTileWrites(ot));
    demoIllegal("barrier dropped between z face and accumulate passes",
                analysis::mutate::droppedBarrier(base, 4));
  }
  return failures == 0 ? 0 : 1;
}
