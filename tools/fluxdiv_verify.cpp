// Schedule legality report: lower every registered scheduling variant to
// its explicit ScheduleModel and run the static verifier over it, for a
// sweep of worker counts — the docs/static-analysis.md rules (coverage,
// disjointness, wavefront skew) as a queryable artifact. With
// --show-illegal, additionally runs the deliberately-broken mutations and
// prints the diagnostic each one is rejected with, so the output
// demonstrates the verifier rejects as well as accepts.
//
// With --cost, each row additionally carries the static cost model's
// working-set / predicted-traffic columns (docs/cost-model.md), so one
// table answers both "is it legal" and "is it predicted fast".
//
//   ./tools/fluxdiv_verify [--boxsize 64] [--threads 1,4,8]
//                          [--extensions] [--show-illegal]
//                          [--cost] [--l2 BYTES] [--llc BYTES]

#include <iostream>
#include <string>
#include <vector>

#include "analysis/costmodel.hpp"
#include "analysis/lower.hpp"
#include "analysis/mutate.hpp"
#include "analysis/verifier.hpp"
#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;

namespace {

/// Run one mutation demo line: mutate the model, verify, print the kind.
void demoIllegal(const char* what,
                 const analysis::ScheduleModel& mutated) {
  const analysis::Diagnostic d =
      analysis::ScheduleVerifier{}.verify(mutated);
  std::cout << "  " << what << "\n    -> "
            << (d.ok() ? std::string("NOT REJECTED (verifier bug!)")
                       : d.message())
            << "\n";
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side N");
  args.addIntList("threads", {1, 4, 8}, "worker counts to verify");
  args.addBool("extensions", "include the beyond-paper variant axes");
  args.addBool("show-illegal",
               "also demonstrate the rejected mutated schedules");
  args.addBool("cost", "append static cost-model columns to each row");
  args.addInt("l2", 0, "L2 capacity in bytes for --cost (0 = probe)");
  args.addInt("llc", 0, "LLC capacity in bytes for --cost (0 = probe)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  if (n < 1) {
    std::cerr << "error: --boxsize must be >= 1\n";
    return 1;
  }
  const auto& threads = args.getIntList("threads");
  for (const std::int64_t t : threads) {
    if (t < 1) {
      std::cerr << "error: --threads entries must be >= 1\n";
      return 1;
    }
  }

  const bool withCost = args.getBool("cost");
  analysis::CacheSpec spec;
  if (withCost) {
    spec = analysis::CacheSpec::fromMachine(harness::queryMachine());
    if (args.getInt("l2") > 0) {
      spec.l2Bytes = static_cast<std::size_t>(args.getInt("l2"));
    }
    if (args.getInt("llc") > 0) {
      spec.llcBytes = static_cast<std::size_t>(args.getInt("llc"));
    }
  }

  const auto variants =
      core::enumerateVariants(n, args.getBool("extensions"));
  std::cout << "=== schedule legality for " << variants.size()
            << " variants, N=" << n << " ===\n";
  if (withCost) {
    std::cout << "cost model caches: L2 "
              << harness::formatBytes(spec.l2Bytes) << ", LLC "
              << harness::formatBytes(spec.llcBytes) << "\n";
  }
  std::cout << "\n";

  std::vector<std::string> header = {"variant", "threads", "verdict"};
  if (withCost) {
    header.insert(header.end(),
                  {"working set", "traffic", "bytes/cell", "bound"});
  }
  harness::Table table(header);
  int failures = 0;
  for (const auto& cfg : variants) {
    for (const std::int64_t t : threads) {
      const analysis::Diagnostic d = analysis::ScheduleVerifier{}.verify(
          cfg, n, static_cast<int>(t));
      std::vector<std::string> row = {analysis::variantLabel(cfg),
                                      std::to_string(t),
                                      d.ok() ? "ok" : d.message()};
      if (withCost) {
        const analysis::CostReport cost =
            analysis::analyzeCost(cfg, n, static_cast<int>(t), spec);
        row.push_back(harness::formatBytes(
            static_cast<std::size_t>(cost.workingSetBytes)));
        row.push_back(harness::formatBytes(
            static_cast<std::size_t>(cost.trafficBytes)));
        row.push_back(harness::formatDouble(cost.bytesPerCell, 1));
        row.push_back(cost.capacityBound ? "LLC" : "-");
      }
      table.addRow(row);
      failures += d.ok() ? 0 : 1;
    }
  }
  table.print(std::cout);
  std::cout << '\n'
            << (failures == 0 ? "all schedules verified legal"
                              : std::to_string(failures) +
                                    " schedule(s) failed verification")
            << "\n";

  if (args.getBool("show-illegal")) {
    std::cout << "\n=== deliberately-broken schedules (must all be "
                 "rejected) ===\n";
    const grid::Box box = grid::Box::cube(16);
    const auto base = analysis::lowerVariant(
        core::makeBaseline(core::ParallelGranularity::WithinBox,
                           core::ComponentLoop::Inside),
        box, 4);
    const auto wf = analysis::lowerVariant(
        core::makeShiftFuse(core::ParallelGranularity::WithinBox,
                            core::ComponentLoop::Inside),
        box, 4);
    const auto ot = analysis::lowerVariant(
        core::makeOverlapped(core::IntraTileSchedule::Basic, 8,
                             core::ParallelGranularity::WithinBox),
        box, 4);
    demoIllegal("halo exchanged one layer too shallow",
                analysis::mutate::shallowHalo(base));
    demoIllegal("wavefront skew missing the z carry",
                analysis::mutate::weakSkew(wf));
    demoIllegal("overlapped-tile recompute region one face thin",
                analysis::mutate::thinOverlap(ot));
    demoIllegal("tiles committing their overlap region",
                analysis::mutate::overlappingTileWrites(ot));
    demoIllegal("barrier dropped between z face and accumulate passes",
                analysis::mutate::droppedBarrier(base, 4));
  }
  return failures == 0 ? 0 : 1;
}
