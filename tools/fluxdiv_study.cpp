// The whole study as one artifact binary: reproduces the paper's
// experiment suite end-to-end on the host machine and writes a markdown
// report (plus CSVs) to an output directory. This is the "repro script"
// a reader runs once to regenerate every table/figure the repository
// covers; the individual bench_* binaries expose the same experiments
// with finer control.
//
//   ./tools/fluxdiv_study [--outdir study-out] [--threads 1,2,...]
//                         [--nboxes128 1] [--reps 3] [--quick]

#include <omp.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>

#include "grid/norms.hpp"
#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "memmodel/traffic_model.hpp"
#include "tuner/autotuner.hpp"

#include "../bench/common.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

namespace {

void writeTable(std::ofstream& md, harness::Table& table) {
  md << "```\n";
  table.print(md);
  md << "```\n\n";
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addString("outdir", "study-out", "report/CSV output directory");
  args.addIntList("threads", {}, "thread sweep (default: up to cores)");
  args.addInt("nboxes128", 1, "work units of 128^3 cells (paper: 24)");
  args.addInt("reps", 3, "repetitions per timing");
  args.addBool("quick", "restrict to box sizes 16/64 for a fast pass");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const std::filesystem::path outdir(args.getString("outdir"));
  std::filesystem::create_directories(outdir);
  std::ofstream md(outdir / "REPORT.md");
  if (!md) {
    std::cerr << "cannot write to " << outdir << '\n';
    return 1;
  }

  const int reps = static_cast<int>(args.getInt("reps"));
  const int nWork = static_cast<int>(args.getInt("nboxes128"));
  std::vector<int> threads;
  for (auto t : args.getIntList("threads")) {
    threads.push_back(static_cast<int>(t));
  }
  if (threads.empty()) {
    for (auto t :
         harness::defaultThreadSweep(omp_get_max_threads())) {
      threads.push_back(static_cast<int>(t));
    }
  }
  const std::vector<int> boxSizes =
      args.getBool("quick") ? std::vector<int>{16, 64}
                            : std::vector<int>{16, 32, 64, 128};

  const auto machine = harness::queryMachine();
  md << "# fluxdiv study report\n\nReproduction of Olschanowsky et al., "
        "SC14.\n\n## Machine\n\n```\n";
  harness::printMachineReport(md, machine);
  md << "```\n\nproblem: " << nWork << " work unit(s) of 128^3 cells; "
     << "timings are min of " << reps << " reps.\n\n";
  std::cout << "study running; report -> " << (outdir / "REPORT.md")
            << '\n';

  // ---- Fig. 1: ghost overhead --------------------------------------
  {
    md << "## Fig. 1 — ghost-cell overhead vs box size\n\n";
    harness::Table t({"N", "ratio (D=3,g=2)", "ratio (D=3,g=5)",
                      "exchange bytes/box"});
    for (int n : boxSizes) {
      grid::DisjointBoxLayout dbl(
          grid::ProblemDomain(grid::Box::cube(128)), n);
      grid::LevelData level(dbl, kernels::kNumComp, 2);
      const double measured = double(level.totalCellsAllocated()) /
                              double(level.totalCellsValid());
      const double g5 = std::pow(1.0 + 10.0 / n, 3);
      t.addRow({std::to_string(n), harness::formatDouble(measured),
                harness::formatDouble(g5),
                harness::formatBytes(level.exchangeBytes() /
                                     level.size())});
    }
    writeTable(md, t);
    std::cout << "  [1/5] ghost overhead done\n";
  }

  // ---- Figs. 2-4 + 10-12: scaling of highlighted schedules ----------
  {
    md << "## Figs. 2-4 / 10-12 — highlighted schedules vs threads "
          "(N=128 work)\n\n";
    const struct {
      int boxSize;
      VariantConfig cfg;
    } series[] = {
        {16, core::makeBaseline(ParallelGranularity::OverBoxes)},
        {16, core::makeShiftFuse(ParallelGranularity::OverBoxes)},
        {128, core::makeBaseline(ParallelGranularity::OverBoxes)},
        {128, core::makeShiftFuse(ParallelGranularity::OverBoxes)},
        {128, core::makeBlockedWF(16, ParallelGranularity::WithinBox,
                                  ComponentLoop::Outside)},
        {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                   ParallelGranularity::WithinBox)},
        {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                                   ParallelGranularity::OverBoxes)},
    };
    std::vector<std::string> header = {"schedule", "N"};
    for (int t : threads) {
      header.push_back("t=" + std::to_string(t));
    }
    harness::Table table(header);
    for (const auto& s : series) {
      bench::Problem problem(s.boxSize, nWork);
      std::vector<std::string> row = {s.cfg.name(),
                                      std::to_string(s.boxSize)};
      for (int t : threads) {
        row.push_back(harness::formatSeconds(
            bench::timeVariant(s.cfg, problem, t, reps)));
      }
      table.addRow(std::move(row));
    }
    writeTable(md, table);
    std::cout << "  [2/5] scaling series done\n";
  }

  // ---- Fig. 9: best per box size, full sweep -------------------------
  {
    md << "## Fig. 9 — best schedule per box size (full variant "
          "sweep)\n\n";
    const int t = threads.back();
    harness::Table table({"N", "best P>=Box", "seconds", "best P<Box",
                          "seconds"});
    for (int n : boxSizes) {
      bench::Problem problem(n, nWork);
      double best[2] = {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
      std::string names[2];
      for (const VariantConfig& cfg : core::enumerateVariants(n)) {
        const double secs = bench::timeVariant(cfg, problem, t, reps);
        const int g = cfg.par == ParallelGranularity::OverBoxes ? 0 : 1;
        if (secs < best[g]) {
          best[g] = secs;
          names[g] = cfg.name();
        }
      }
      table.addRow({std::to_string(n), names[0],
                    harness::formatSeconds(best[0]), names[1],
                    harness::formatSeconds(best[1])});
    }
    writeTable(md, table);
    std::cout << "  [3/5] full sweep done\n";
  }

  // ---- Table I + Sec. VI-B: footprints and traffic -------------------
  {
    md << "## Table I + Sec. VI-B — temporaries and modeled DRAM "
          "traffic (N=64)\n\n";
    const std::size_t llc = 6 * 1024 * 1024; // the paper's desktop LLC
    harness::Table table(
        {"schedule", "measured temp/thread", "model B/cell @6MiB LLC"});
    bench::Problem problem(64, 1);
    for (const VariantConfig& cfg :
         {core::makeBaseline(ParallelGranularity::OverBoxes),
          core::makeShiftFuse(ParallelGranularity::OverBoxes,
                              ComponentLoop::Inside),
          core::makeBlockedWF(16, ParallelGranularity::WithinBox,
                              ComponentLoop::Inside),
          core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                               ParallelGranularity::WithinBox)}) {
      core::FluxDivRunner runner(cfg, threads.back());
      problem.resetOutput();
      runner.run(problem.phi0, problem.phi1);
      table.addRow(
          {cfg.name(),
           harness::formatBytes(runner.maxPeakWorkspaceBytes()),
           harness::formatDouble(
               memmodel::estimateTraffic(cfg, 64, llc).bytesPerCell, 1)});
    }
    writeTable(md, table);
    std::cout << "  [4/5] footprints/traffic done\n";
  }

  // ---- Sec. VII: auto-tuned recommendation ---------------------------
  {
    md << "## Sec. VII — auto-tuned schedule for this machine\n\n";
    harness::Table table({"N", "winner", "s/eval", "pruned"});
    for (int n : boxSizes) {
      bench::Problem problem(n, nWork);
      tuner::TuneOptions opts;
      opts.threads = threads.back();
      opts.reps = reps;
      const auto result = tuner::autotune(problem.phi0, problem.phi1, opts);
      table.addRow({std::to_string(n), result.best.name(),
                    harness::formatSeconds(result.bestSeconds),
                    std::to_string(result.prunedCount)});
    }
    writeTable(md, table);
    std::cout << "  [5/5] auto-tuning done\n";
  }

  md << "---\ngenerated by tools/fluxdiv_study\n";
  std::cout << "report written to " << (outdir / "REPORT.md") << '\n';
  return 0;
}
