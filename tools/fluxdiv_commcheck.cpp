// Exchange-plan verifier CLI (docs/static-analysis.md, "Communication-plan
// verification"). Builds the Copier plans the executors consume — over
// periodic, non-periodic, and mixed domains of the requested level shape —
// and proves each exact (C1), matched (C2), and deadlock-free (C3) with
// analysis::checkCommPlan under every requested rank partition, then
// cross-validates the statically counted per-rank-pair bytes/messages
// EXACTLY against distsim's alpha-beta inputs. Also reports the
// over-communication advisories (redundant ops, mergeable messages).
//
//   ./tools/fluxdiv_commcheck [--nboxes 8] [--boxsize 16] [--ghost 2]
//                             [--ncomp 5] [--nranks 0] [--capacity 4]
//                             [--strict] [--json] [--mutate] [--seeds 5]
//
// --nranks 0 sweeps the partition over {1, 2, 4, 8} (clipped to the box
//   count); any other value verifies that single partition.
// --strict exits 1 unless every plan verifies clean and every
//   cross-validation agrees exactly.
// --mutate additionally runs the seeded plan miscompilations of
//   analysis/mutate (op drops, region shrinks, source skews, send
//   unmatchings) and exits 1 unless the checker rejects each with the
//   predicted labeled witness — the CI guard that the verifier actually
//   detects broken plans, not merely accepts correct ones.

#include <algorithm>
#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/commcheck.hpp"
#include "analysis/mutate.hpp"
#include "distsim/comm_model.hpp"
#include "distsim/rank_layout.hpp"
#include "grid/box.hpp"
#include "grid/copier.hpp"
#include "grid/layout.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"

using namespace fluxdiv;
using grid::Box;
using grid::Copier;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::ProblemDomain;

namespace {

/// Near-cubic per-axis box counts whose product is >= nBoxes.
IntVect factorBoxes(int nBoxes) {
  IntVect counts = IntVect::unit(1);
  while (counts.product() < nBoxes) {
    int smallest = 0;
    for (int d = 1; d < grid::SpaceDim; ++d) {
      if (counts[d] < counts[smallest]) {
        smallest = d;
      }
    }
    counts[smallest] += 1;
  }
  return counts;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

/// One domain flavor of the requested level shape.
struct Shape {
  std::string name;
  DisjointBoxLayout dbl;
};

std::vector<Shape> makeShapes(int nBoxes, int boxSize) {
  const IntVect counts = factorBoxes(nBoxes);
  const Box domBox(IntVect::zero(),
                   IntVect{counts[0] * boxSize - 1, counts[1] * boxSize - 1,
                           counts[2] * boxSize - 1});
  return {
      {"periodic", DisjointBoxLayout(ProblemDomain(domBox), boxSize)},
      {"walls", DisjointBoxLayout(
                    ProblemDomain(domBox, /*periodicAll=*/false), boxSize)},
      {"mixed",
       DisjointBoxLayout(
           ProblemDomain(domBox, std::array<bool, 3>{true, false, true}),
           boxSize)},
  };
}

struct PlanRun {
  std::string shape;
  int nRanks = 1;
  analysis::CommCheckReport report;
  std::vector<std::string> xval;
};

int runMutations(const std::vector<Shape>& shapes, int ghost, int ncomp,
                 int nRanks, int capacity, int nSeeds, bool json,
                 std::vector<std::string>& jsonRows) {
  using analysis::mutate::CommMutation;
  int failures = 0;
  int executed = 0;
  int skipped = 0;
  for (const Shape& shape : shapes) {
    const Copier copier(shape.dbl, ghost);
    analysis::CommPlanModel base =
        analysis::buildCommPlanModel(shape.dbl, copier, ncomp,
                                     "mutated " + shape.name);
    analysis::applyRankPartition(
        base, std::min<int>(nRanks,
                            static_cast<int>(shape.dbl.size())));
    base.queueCapacity = capacity;
    for (std::uint64_t seed = 0;
         seed < static_cast<std::uint64_t>(nSeeds); ++seed) {
      const CommMutation muts[] = {
          analysis::mutate::dropCommOp(base, seed),
          analysis::mutate::shrinkCommRegion(base, seed),
          analysis::mutate::skewCommSource(base, seed),
          analysis::mutate::unmatchCommSend(base, seed),
      };
      for (const CommMutation& mut : muts) {
        if (mut.expect == analysis::CommDiagKind::Ok) {
          ++skipped; // plan offered no candidate for this class
          continue;
        }
        ++executed;
        const analysis::CommCheckReport rep =
            analysis::checkCommPlan(mut.model);
        bool caught = false;
        bool caughtAlso = mut.expectAlso == analysis::CommDiagKind::Ok;
        for (const analysis::CommDiagnostic& d : rep.diagnostics) {
          if (d.kind == mut.expect &&
              (mut.witnessA.empty() || d.opA == mut.witnessA) &&
              (mut.witnessB.empty() || d.opB == mut.witnessB)) {
            caught = true;
          }
          if (d.kind == mut.expectAlso) {
            caughtAlso = true;
          }
        }
        if (!caught || !caughtAlso) {
          ++failures;
          std::cerr << "MISSED MUTATION [" << shape.name << ", seed "
                    << seed << "]: " << mut.what << "\n  expected "
                    << analysis::commDiagKindName(mut.expect)
                    << " naming '" << mut.witnessA << "' vs '"
                    << mut.witnessB << "'";
          if (mut.expectAlso != analysis::CommDiagKind::Ok) {
            std::cerr << " plus "
                      << analysis::commDiagKindName(mut.expectAlso);
          }
          std::cerr << ", got " << rep.diagnostics.size()
                    << " diagnostic(s)";
          for (const auto& d : rep.diagnostics) {
            std::cerr << "\n    " << d.message();
          }
          std::cerr << "\n";
        }
      }
    }
  }
  if (json) {
    std::string row = "  \"mutations\": {\"executed\": ";
    row += std::to_string(executed);
    row += ", \"skipped\": ";
    row += std::to_string(skipped);
    row += ", \"missed\": ";
    row += std::to_string(failures);
    row += "}";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "\nmutation suite: " << executed
              << " seeded plan miscompilation(s), " << failures
              << " missed, " << skipped << " without a candidate\n";
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("nboxes", 8, "boxes per level");
  args.addInt("boxsize", 16, "box side N");
  args.addInt("ghost", kernels::kNumGhost, "ghost layers");
  args.addInt("ncomp", kernels::kNumComp, "components priced per cell");
  args.addInt("nranks", 0,
              "simulated rank count (0 = sweep 1,2,4,8 clipped to the "
              "box count)");
  args.addInt("capacity", analysis::kDefaultQueueCapacity,
              "per-channel in-flight message capacity for the C3 "
              "deadlock check");
  args.addBool("strict",
               "exit 1 unless every plan verifies clean and every "
               "alpha-beta cross-validation agrees exactly");
  args.addBool("json", "machine-readable JSON output");
  args.addBool("mutate",
               "run the seeded plan miscompilations and require the "
               "checker to reject each with its predicted witness");
  args.addInt("seeds", 5, "seeds per mutation class for --mutate");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  const int boxSize = static_cast<int>(args.getInt("boxsize"));
  const int ghost = static_cast<int>(args.getInt("ghost"));
  const int ncomp = static_cast<int>(args.getInt("ncomp"));
  const int capacity = static_cast<int>(args.getInt("capacity"));
  if (nBoxes < 1 || boxSize < 1 || ncomp < 1 || ghost < 0 ||
      ghost > boxSize) {
    std::cerr << "error: need --nboxes >= 1, --boxsize >= 1, --ncomp >= "
                 "1, and 0 <= --ghost <= --boxsize (one halo maps to one "
                 "neighbor)\n";
    return 1;
  }
  std::vector<int> rankSweep;
  const int nRanksArg = static_cast<int>(args.getInt("nranks"));
  if (nRanksArg == 0) {
    for (const int r : {1, 2, 4, 8}) {
      if (r <= nBoxes) {
        rankSweep.push_back(r);
      }
    }
  } else if (nRanksArg > 0) {
    rankSweep.push_back(nRanksArg);
  } else {
    std::cerr << "error: --nranks must be >= 0\n";
    return 1;
  }

  const std::vector<Shape> shapes = makeShapes(nBoxes, boxSize);
  const bool json = args.getBool("json");

  std::vector<PlanRun> runs;
  for (const Shape& shape : shapes) {
    const Copier copier(shape.dbl, ghost);
    analysis::CommPlanModel model = analysis::buildCommPlanModel(
        shape.dbl, copier, ncomp, shape.name);
    model.queueCapacity = capacity;
    for (const int nranks : rankSweep) {
      const distsim::RankDecomposition ranks(shape.dbl, nranks);
      analysis::applyRankPartition(model, ranks);
      PlanRun run;
      run.shape = shape.name;
      run.nRanks = nranks;
      run.report = analysis::checkCommPlan(model, /*findAdvisories=*/true);
      run.xval = analysis::crossValidateCommCost(
          run.report, distsim::analyzeExchange(ranks, copier, ncomp));
      runs.push_back(std::move(run));
    }
  }

  int diagnostics = 0;
  int xvalMismatches = 0;
  std::vector<std::string> jsonRows;
  if (json) {
    std::string row = "  \"plans\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const PlanRun& run = runs[i];
      if (i > 0) {
        row += ", ";
      }
      row += "{\"shape\": \"" + jsonEscape(run.shape) + "\"";
      row += ", \"nranks\": " + std::to_string(run.nRanks);
      row += ", \"ops\": " + std::to_string(run.report.opCount);
      row += ", \"crossRankOps\": " +
             std::to_string(run.report.crossRankOps);
      row += ", \"messages\": " +
             std::to_string(run.report.messagesTotal);
      row += ", \"bytes\": " + std::to_string(run.report.bytesTotal);
      row += ", \"rankPairs\": " + std::to_string(run.report.pairs.size());
      row += ", \"diagnostics\": " +
             std::to_string(run.report.diagnostics.size());
      row += ", \"advisories\": " +
             std::to_string(run.report.advisories.size());
      row += ", \"xvalMismatches\": " + std::to_string(run.xval.size());
      row += "}";
    }
    row += "]";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "verifying ghost-exchange plans over " << nBoxes << " x "
              << boxSize << "^3 boxes, ghost " << ghost << ", ncomp "
              << ncomp << ", queue capacity " << capacity << "\n\n";
    harness::Table table({"shape", "ranks", "ops", "cross", "msgs",
                          "bytes", "pairs", "diags", "advis", "xval"});
    for (const PlanRun& run : runs) {
      table.addRow({run.shape, std::to_string(run.nRanks),
                    std::to_string(run.report.opCount),
                    std::to_string(run.report.crossRankOps),
                    std::to_string(run.report.messagesTotal),
                    harness::formatBytes(
                        static_cast<std::size_t>(run.report.bytesTotal)),
                    std::to_string(run.report.pairs.size()),
                    run.report.ok()
                        ? "-"
                        : std::to_string(run.report.diagnostics.size()),
                    std::to_string(run.report.advisories.size()),
                    run.xval.empty() ? "exact"
                                     : std::to_string(run.xval.size())});
    }
    table.print(std::cout);
  }
  bool anyAdvisory = false;
  for (const PlanRun& run : runs) {
    diagnostics += static_cast<int>(run.report.diagnostics.size());
    xvalMismatches += static_cast<int>(run.xval.size());
    for (const analysis::CommDiagnostic& d : run.report.diagnostics) {
      std::cerr << "COMM [" << run.shape << ", " << run.nRanks
                << " rank(s)]: " << d.message() << "\n";
    }
    for (const std::string& x : run.xval) {
      std::cerr << "XVAL [" << run.shape << ", " << run.nRanks
                << " rank(s)]: " << x << "\n";
    }
    if (!json) {
      for (const analysis::CommAdvisory& a : run.report.advisories) {
        if (!anyAdvisory) {
          std::cout << "\nadvisories:\n";
          anyAdvisory = true;
        }
        std::cout << "  [" << run.shape << ", " << run.nRanks
                  << " rank(s)] " << a.message() << "\n";
      }
    }
  }

  int mutationFailures = 0;
  if (args.getBool("mutate")) {
    mutationFailures = runMutations(
        shapes, ghost, ncomp, rankSweep.back(), capacity,
        static_cast<int>(args.getInt("seeds")), json, jsonRows);
  }

  if (json) {
    std::cout << "{\n";
    for (std::size_t i = 0; i < jsonRows.size(); ++i) {
      std::cout << jsonRows[i] << (i + 1 < jsonRows.size() ? ",\n" : "\n");
    }
    std::cout << "}\n";
  }

  // Missed mutations are self-test failures and always fail; plan
  // diagnostics and cross-validation mismatches fail under --strict.
  const bool failed =
      mutationFailures > 0 ||
      (args.getBool("strict") && (diagnostics > 0 || xvalMismatches > 0));
  if (failed) {
    std::cerr << "\ncommcheck: FAILED (" << diagnostics
              << " plan diagnostic(s), " << xvalMismatches
              << " cross-validation mismatch(es), " << mutationFailures
              << " missed mutation(s))\n";
    return 1;
  }
  if (!json) {
    std::cout << "\ncommcheck: all clean over " << runs.size()
              << " plan(s)\n";
  }
  return 0;
}
