// Whole-step semantic-equivalence prover CLI (docs/static-analysis.md,
// "stepcheck"). Records each RK scheme as a symbolic core::StepProgram,
// plans its halos per fuse mode, and proves with analysis::checkStepProgram
// that the fuse transforms of core::StepGraphExecutor cannot change the
// answer: S1 per-layer provenance equivalence with eager semantics
// (including CommAvoid's halo recomputation), S2 liveness (no
// read-before-write; dead stores/exchanges advised), S3 halo-width
// tightness (width-1 provably breaks S1; over-deep widths advised with
// their recompute price).
//
//   ./tools/fluxdiv_stepcheck [--scheme all|euler|midpoint|ssprk3|rk4]
//                             [--fuse all|staged|fused|commavoid]
//                             [--nsteps 0] [--boxsize 16] [--nboxes 8]
//                             [--strict] [--json]
//                             [--mutate] [--seeds 5]
//
// --nsteps 0 (the default) sweeps both 1- and 3-step programs, proving
//   the cross-step fusion sound too; any positive value checks just that.
// --strict exits 1 unless every program verifies clean.
// --mutate additionally runs the seeded step miscompilations of
//   analysis/mutate (dropped/shaved/deepened halo exchanges, reordered
//   conflicting ops, skewed combine coefficients) and exits 1 unless the
//   checker rejects each with the predicted witness op — the CI guard
//   that the prover actually detects miscompiled steps, not merely
//   accepts sound ones.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/mutate.hpp"
#include "analysis/stepcheck.hpp"
#include "core/variant.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "solvers/integrator.hpp"

using namespace fluxdiv;
using core::StepFuse;
using solvers::Scheme;

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

/// The fuse modes stepcheck proves against the eager reference. Eager
/// itself is the reference semantics — nothing to prove.
constexpr StepFuse kCheckedFuses[] = {StepFuse::Staged, StepFuse::Fused,
                                      StepFuse::CommAvoid};

struct ProgramRun {
  std::string scheme;
  int steps = 1;
  std::string fuse;
  std::size_t ops = 0;
  analysis::StepCheckReport report;
};

std::string comboTag(Scheme scheme, int steps, StepFuse fuse) {
  return std::string(solvers::schemeName(scheme)) + " x" +
         std::to_string(steps) + " / " + core::stepFuseName(fuse);
}

int runMutations(const std::vector<Scheme>& schemes,
                 const std::vector<int>& stepCounts,
                 const std::vector<StepFuse>& fuses, double dt, int nSeeds,
                 bool json, std::vector<std::string>& jsonRows) {
  using analysis::mutate::StepMutation;
  int failures = 0;
  int executed = 0;
  int skipped = 0;
  for (const Scheme scheme : schemes) {
    for (const int steps : stepCounts) {
      const core::StepProgram prog =
          solvers::buildStepProgram(scheme, dt, steps);
      for (const StepFuse fuse : fuses) {
        for (std::uint64_t seed = 0;
             seed < static_cast<std::uint64_t>(nSeeds); ++seed) {
          const StepMutation muts[] = {
              analysis::mutate::dropStepExchange(prog, fuse, seed),
              analysis::mutate::shallowStepHalo(prog, fuse, seed),
              analysis::mutate::reorderStepOps(prog, fuse, seed),
              analysis::mutate::skewStepCoeff(prog, fuse, seed),
              analysis::mutate::deepenStepHalo(prog, fuse, seed),
          };
          for (const StepMutation& mut : muts) {
            if (!mut.valid) {
              ++skipped; // program offered no candidate for this class
              continue;
            }
            ++executed;
            analysis::StepCheckOptions opts;
            if (mut.useReference) {
              opts.reference = &mut.reference;
            }
            const auto rep = analysis::checkStepProgram(mut.prog, fuse,
                                                        mut.plan, opts);
            bool caught = false;
            std::string got;
            if (mut.expectAdvisory) {
              // Over-deep halo: S1 must still hold, and S3 must price the
              // width back down to the proven minimum.
              got = rep.ok() ? "clean report" : "diagnostics";
              for (const analysis::StepAdvisory& a : rep.advisories) {
                if (a.kind == analysis::StepNoteKind::OverDeepHalo &&
                    a.op == mut.witnessOp &&
                    a.minWidth == mut.expectMinWidth) {
                  caught = rep.ok();
                  break;
                }
              }
            } else {
              got = rep.ok() ? "clean report" : rep.diagnostics[0].message();
              caught = !rep.ok() &&
                       rep.diagnostics[0].kind == mut.expect &&
                       rep.diagnostics[0].op == mut.witnessOp;
            }
            if (!caught) {
              ++failures;
              std::cerr << "MISSED MUTATION ["
                        << comboTag(scheme, steps, fuse) << ", seed "
                        << seed << "]: " << mut.what << "\n  expected ";
              if (mut.expectAdvisory) {
                std::cerr << "clean report + over-deep-halo advisory at op "
                          << mut.witnessOp << " with proven minimum "
                          << mut.expectMinWidth;
              } else {
                std::cerr << analysis::stepDiagKindName(mut.expect)
                          << " at op " << mut.witnessOp;
              }
              std::cerr << ", got " << got << "\n";
            }
          }
        }
      }
    }
  }
  if (json) {
    std::string row = "  \"mutations\": {\"executed\": ";
    row += std::to_string(executed);
    row += ", \"skipped\": ";
    row += std::to_string(skipped);
    row += ", \"missed\": ";
    row += std::to_string(failures);
    row += "}";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "\nmutation suite: " << executed
              << " seeded miscompilation(s), " << failures << " missed, "
              << skipped << " without a candidate\n";
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addString("scheme", "all",
                 "RK scheme to prove: all, euler, midpoint, ssprk3, rk4");
  args.addString("fuse", "all",
                 "fuse mode to prove: all, staged, fused, or commavoid "
                 "(eager is the reference semantics)");
  args.addInt("nsteps", 0,
              "steps per program (0 = sweep 1- and 3-step programs)");
  args.addInt("boxsize", 16, "box side N for witness cells and pricing");
  args.addInt("nboxes", 8, "boxes, for the over-deep-halo recompute price");
  args.addBool("strict", "exit 1 unless every program verifies clean");
  args.addBool("json", "machine-readable JSON output");
  args.addBool("mutate",
               "run the seeded step miscompilations and require the "
               "checker to reject each with its predicted witness");
  args.addInt("seeds", 5, "seeds per mutation class for --mutate");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int nSteps = static_cast<int>(args.getInt("nsteps"));
  const int boxSize = static_cast<int>(args.getInt("boxsize"));
  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  if (nSteps < 0 || boxSize < 8 || nBoxes < 1) {
    std::cerr << "error: need --nsteps >= 0, --boxsize >= 8 (two ghost "
                 "layers plus a non-empty interior), --nboxes >= 1\n";
    return 1;
  }
  std::vector<Scheme> schemes;
  const std::string& schemeArg = args.getString("scheme");
  if (schemeArg == "all") {
    schemes.assign(std::begin(solvers::kSchemes),
                   std::end(solvers::kSchemes));
  } else {
    Scheme s{};
    if (!solvers::parseScheme(schemeArg, s)) {
      std::cerr << "error: --scheme must be all, euler, midpoint, ssprk3, "
                   "or rk4 (got '"
                << schemeArg << "')\n";
      return 1;
    }
    schemes = {s};
  }
  std::vector<StepFuse> fuses;
  const std::string& fuseArg = args.getString("fuse");
  if (fuseArg == "all") {
    fuses.assign(std::begin(kCheckedFuses), std::end(kCheckedFuses));
  } else {
    StepFuse f{};
    if (!core::parseStepFuse(fuseArg, f) || f == StepFuse::Eager) {
      std::cerr << "error: --fuse must be all, staged, fused, or "
                   "commavoid (got '"
                << fuseArg << "')\n";
      return 1;
    }
    fuses = {f};
  }
  const std::vector<int> stepCounts =
      nSteps == 0 ? std::vector<int>{1, 3} : std::vector<int>{nSteps};
  const double dt = 1e-3;
  const bool json = args.getBool("json");

  std::vector<ProgramRun> runs;
  for (const Scheme scheme : schemes) {
    for (const int steps : stepCounts) {
      const core::StepProgram prog =
          solvers::buildStepProgram(scheme, dt, steps);
      for (const StepFuse fuse : fuses) {
        analysis::StepCheckOptions opts;
        opts.boxSize = boxSize;
        opts.nBoxes = nBoxes;
        ProgramRun pr;
        pr.scheme = solvers::schemeName(scheme);
        pr.steps = steps;
        pr.fuse = core::stepFuseName(fuse);
        pr.ops = prog.ops.size();
        pr.report = analysis::checkStepProgram(prog, fuse, opts);
        runs.push_back(std::move(pr));
      }
    }
  }

  int diagnostics = 0;
  std::vector<std::string> jsonRows;
  if (json) {
    std::string row = "  \"programs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ProgramRun& pr = runs[i];
      if (i > 0) {
        row += ", ";
      }
      row += "{\"scheme\": \"" + jsonEscape(pr.scheme) + "\"";
      row += ", \"steps\": " + std::to_string(pr.steps);
      row += ", \"fuse\": \"" + pr.fuse + "\"";
      row += ", \"ops\": " + std::to_string(pr.ops);
      row += ", \"planDepth\": " + std::to_string(pr.report.planDepth);
      row += ", \"exprs\": " + std::to_string(pr.report.exprCount);
      row += ", \"diagnostics\": " +
             std::to_string(pr.report.diagnostics.size());
      row += ", \"advisories\": " +
             std::to_string(pr.report.advisories.size());
      row += "}";
    }
    row += "]";
    jsonRows.push_back(std::move(row));
  } else {
    std::cout << "proving step programs equivalent to eager semantics "
                 "(witness boxes "
              << nBoxes << " x " << boxSize << "^3)\n\n";
    harness::Table table({"scheme", "steps", "fuse", "ops", "depth",
                          "exprs", "diags", "advisories"});
    for (const ProgramRun& pr : runs) {
      table.addRow({pr.scheme, std::to_string(pr.steps), pr.fuse,
                    std::to_string(pr.ops),
                    std::to_string(pr.report.planDepth),
                    std::to_string(pr.report.exprCount),
                    pr.report.ok()
                        ? "-"
                        : std::to_string(pr.report.diagnostics.size()),
                    std::to_string(pr.report.advisories.size())});
    }
    table.print(std::cout);
  }
  for (const ProgramRun& pr : runs) {
    diagnostics += static_cast<int>(pr.report.diagnostics.size());
    for (const analysis::StepDiagnostic& d : pr.report.diagnostics) {
      std::cerr << "STEP [" << pr.scheme << " x" << pr.steps << " / "
                << pr.fuse << "]: " << d.message() << "\n";
    }
    for (const analysis::StepAdvisory& a : pr.report.advisories) {
      std::cerr << "note [" << pr.scheme << " x" << pr.steps << " / "
                << pr.fuse << "]: " << a.message() << "\n";
    }
  }

  int mutationFailures = 0;
  if (args.getBool("mutate")) {
    mutationFailures =
        runMutations(schemes, stepCounts, fuses, dt,
                     static_cast<int>(args.getInt("seeds")), json,
                     jsonRows);
  }

  if (json) {
    std::cout << "{\n";
    for (std::size_t i = 0; i < jsonRows.size(); ++i) {
      std::cout << jsonRows[i] << (i + 1 < jsonRows.size() ? ",\n" : "\n");
    }
    std::cout << "}\n";
  }

  // Missed mutations are self-test failures and always fail; diagnostics
  // on the real programs fail under --strict.
  const bool failed =
      mutationFailures > 0 || (args.getBool("strict") && diagnostics > 0);
  if (failed) {
    std::cerr << "\nstepcheck: FAILED (" << diagnostics
              << " diagnostic(s), " << mutationFailures
              << " missed mutation(s))\n";
    return 1;
  }
  if (!json) {
    std::cout << "\nstepcheck: all equivalent over " << runs.size()
              << " program(s)\n";
  }
  return 0;
}
