#!/usr/bin/env bash
# Sweep the whole static verification stack (docs/static-analysis.md) in
# one command — the local equivalent of CI's five checker jobs:
#
#   fluxdiv_verify       schedule legality over every registered variant
#   fluxdiv_graphcheck   task-graph races, seeded graph miscompilations
#   fluxdiv_commcheck    exchange-plan exactness/matching/deadlock
#   fluxdiv_kernelcheck  kernel footprint contracts, sound and tight
#   fluxdiv_stepcheck    whole-step semantic equivalence per fuse mode
#
# Every checker runs --strict, and every checker with a seeded-mutation
# self-test runs --mutate, so a pass means both "the shipped artifacts
# verify" and "the verifiers still reject the canonical miscompilations".
#
# Usage: tools/run_all_checkers.sh [build-dir]   (default: build)
set -euo pipefail

build="${1:-build}"
tools="$build/tools"
if [[ ! -d "$tools" ]]; then
  echo "error: '$tools' not found; configure and build first" >&2
  echo "  cmake -B $build -S . && cmake --build $build -j" >&2
  exit 1
fi

failures=0
run() {
  echo
  echo "==> $*"
  if ! "$@"; then
    failures=$((failures + 1))
    echo "FAILED: $*" >&2
  fi
}

# Schedules: the paper variants and the extension axes, at a small and a
# paper-sized box.
run "$tools/fluxdiv_verify" --boxsize 16 --extensions
run "$tools/fluxdiv_verify" --boxsize 64 --extensions

# Task graphs: both parallel policies, default shape plus a denser
# many-small-boxes level.
run "$tools/fluxdiv_graphcheck" --policy all --strict --mutate
run "$tools/fluxdiv_graphcheck" --policy all --nboxes 27 --boxsize 8 \
  --strict

# Exchange plans: shared-memory and rank-partitioned, plus a ghost sweep.
run "$tools/fluxdiv_commcheck" --strict --mutate
run "$tools/fluxdiv_commcheck" --nranks 4 --nboxes 64 --boxsize 8 \
  --strict --mutate
run "$tools/fluxdiv_commcheck" --ghost 1 --strict
run "$tools/fluxdiv_commcheck" --ghost 4 --strict

# Kernel contracts: exhaustive small box and a sampled larger one.
run "$tools/fluxdiv_kernelcheck" --boxsize 8 --strict --mutate
run "$tools/fluxdiv_kernelcheck" --boxsize 16 --strict

# Whole-step semantics: every scheme x fuse x {1,3}-step program, with
# the seeded step miscompilations.
run "$tools/fluxdiv_stepcheck" --strict --mutate

echo
if [[ "$failures" -ne 0 ]]; then
  echo "run_all_checkers: $failures checker invocation(s) FAILED"
  exit 1
fi
echo "run_all_checkers: all checkers clean"
