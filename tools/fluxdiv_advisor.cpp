// Static schedule advisor: rank every registered scheduling variant for a
// box size / thread count by predicted DRAM traffic, recomputation volume
// and available parallelism — without executing a single kernel. The cache
// capacities default to the probed host hierarchy (harness/machine) and can
// be overridden to model the paper's nodes. Also prints the recommended
// blocked-wavefront tile size and every structured cost note (the
// "explanations" of docs/cost-model.md).
//
//   ./tools/fluxdiv_advisor [--boxsize 128] [--threads 8] [--extensions]
//                           [--l2 BYTES] [--llc BYTES] [--csv out.csv]
//                           [--strict] [--pad] [--nboxes 1] [--kernels]
//                           [--scheme rk4|all]
//
// --kernels additionally probes the shipped kernels differentially
// (analysis/kernelcheck) and reports any declared-but-never-read stencil
// offsets — overdeclared footprints mean the traffic model and the
// exchange plan price ghost cells no kernel touches.
//
// --scheme additionally ranks the whole-RK-step fusion modes
// (core::StepFuse: eager / staged / fused / comm-avoiding, lowered by
// core/stepgraph) for that time scheme — or every scheme with 'all' — by
// modeled halo traffic + deepened-ghost recompute traffic per step
// (analysis::analyzeStepFusion), and prints a deep-halo-recompute note
// whenever comm-avoiding's widened-halo recomputation costs more than the
// exchanges it eliminates.
//
// --pad prices working sets for the default padded fab allocation (x-pitch
// rounded to grid::kSimdDoubles, docs/perf.md) instead of dense storage.
//
// --nboxes > 1 additionally ranks the task-parallel level-executor
// policies (sequential / parallel / hybrid, core/exec_level) for a level
// of that many boxes, from the box-level concurrency each policy exposes.
//
// --strict additionally runs internal consistency checks over every report
// (finite traffic, non-degenerate working sets, traffic not far below the
// compulsory floor) and exits nonzero if any fails — the CI guard that the
// cost model stays sane over the whole registry.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/advisor.hpp"
#include "analysis/commcheck.hpp"
#include "analysis/graphcheck.hpp"
#include "analysis/kernelcheck.hpp"
#include "analysis/stepcheck.hpp"
#include "core/exec_level.hpp"
#include "grid/copier.hpp"
#include "grid/leveldata.hpp"
#include "grid/real.hpp"
#include "harness/args.hpp"
#include "harness/csv.hpp"
#include "harness/machine.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"
#include "solvers/integrator.hpp"

using namespace fluxdiv;

namespace {

std::string fmtBytes(double b) {
  return harness::formatBytes(static_cast<std::size_t>(b));
}

/// Tool-level sanity checks on one report; append ModelError notes for any
/// violated invariant. Returns the number of failures.
int strictCheck(analysis::CostReport& rep) {
  int failures = 0;
  const auto fail = [&](const std::string& what, double actual,
                        double limit) {
    analysis::CostNote note;
    note.kind = analysis::CostNoteKind::ModelError;
    note.where = rep.variant + ": " + what;
    note.actualBytes = actual;
    note.limitBytes = limit;
    rep.notes.push_back(note);
    ++failures;
  };
  if (!std::isfinite(rep.trafficBytes) || rep.trafficBytes <= 0) {
    fail("non-finite or non-positive traffic", rep.trafficBytes, 0);
  }
  if (rep.workingSetBytes <= 0 || rep.maxItemBytes <= 0) {
    fail("degenerate working set", rep.workingSetBytes, 0);
  }
  // One cold evaluation can dip below the steady-state floor (the final
  // writeback stays cached), but never below half of it.
  if (rep.trafficBytes < 0.5 * rep.compulsoryBytes) {
    fail("traffic below half the compulsory floor", rep.trafficBytes,
         rep.compulsoryBytes);
  }
  if (rep.maxConcurrency < 1 || rep.barrierCount < 1) {
    fail("degenerate parallelism metrics",
         static_cast<double>(rep.maxConcurrency),
         static_cast<double>(rep.barrierCount));
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 128, "box side N");
  args.addInt("threads", 8, "worker count the schedules are priced for");
  args.addBool("extensions", "include the beyond-paper variant axes");
  args.addInt("l2", 0, "L2 capacity in bytes (0 = probe this machine)");
  args.addInt("llc", 0, "LLC capacity in bytes (0 = probe this machine)");
  args.addString("csv", "", "also write the ranking table to this CSV file");
  args.addBool("strict",
               "fail (exit 1) on any internal model-consistency error");
  args.addBool("pad", "price working sets for the padded fab x-pitch");
  args.addInt("nboxes", 1,
              "boxes per level for the level-policy ranking (1 = skip)");
  args.addBool("kernels",
               "probe the shipped kernels and report overdeclared "
               "footprints (declared-but-never-read stencil offsets)");
  args.addString("scheme", "",
                 "rank RK step-fusion modes for this time scheme "
                 "(euler/midpoint/ssprk3/rk4, or 'all')");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nThreads = static_cast<int>(args.getInt("threads"));
  if (n < 1 || nThreads < 1) {
    std::cerr << "error: --boxsize and --threads must be >= 1\n";
    return 1;
  }

  const harness::MachineInfo machine = harness::queryMachine();
  analysis::CacheSpec spec = analysis::CacheSpec::fromMachine(machine);
  if (args.getInt("l2") > 0) {
    spec.l2Bytes = static_cast<std::size_t>(args.getInt("l2"));
  }
  if (args.getInt("llc") > 0) {
    spec.llcBytes = static_cast<std::size_t>(args.getInt("llc"));
  }
  if (args.getBool("pad")) {
    spec.xPadDoubles = grid::kSimdDoubles;
  }

  harness::printMachineReport(std::cout, machine);
  std::cout << "\ncost model caches: L2 " << harness::formatBytes(spec.l2Bytes)
            << ", LLC " << harness::formatBytes(spec.llcBytes);
  if (spec.xPadDoubles > 1) {
    std::cout << ", x-pitch pad " << spec.xPadDoubles << " doubles";
  }
  std::cout << "\n";
  std::cout << "ranking " << (args.getBool("extensions") ? "extended " : "")
            << "registry for N=" << n << ", threads=" << nThreads
            << " (predicted, no kernel executed)\n\n";

  const analysis::ScheduleAdvisor advisor(spec);
  auto ranked = advisor.rank(n, nThreads, args.getBool("extensions"));

  const std::vector<std::string> header = {
      "rank",    "variant",   "traffic",     "bytes/cell", "working set",
      "recomp",  "max conc",  "barriers",    "bound"};
  harness::Table table(header);
  harness::CsvWriter csv(args.getString("csv"), header);
  int strictFailures = 0;
  int rank = 1;
  for (auto& rv : ranked) {
    if (args.getBool("strict")) {
      strictFailures += strictCheck(rv.cost);
    }
    const std::vector<std::string> row = {
        std::to_string(rank++),
        rv.cost.variant,
        fmtBytes(rv.cost.trafficBytes),
        harness::formatDouble(rv.cost.bytesPerCell, 1),
        fmtBytes(rv.cost.workingSetBytes),
        harness::formatDouble(rv.cost.recomputeFraction, 3),
        std::to_string(rv.cost.maxConcurrency),
        std::to_string(rv.cost.barrierCount),
        rv.cost.capacityBound ? "LLC" : "-"};
    table.addRow(row);
    csv.writeRow(row);
  }
  table.print(std::cout);

  bool anyNote = false;
  for (const auto& rv : ranked) {
    for (const auto& note : rv.cost.notes) {
      if (!anyNote) {
        std::cout << "\nnotes:\n";
        anyNote = true;
      }
      std::cout << "  [" << analysis::costNoteKindName(note.kind) << "] "
                << rv.cost.variant << ": " << note.message() << "\n";
    }
  }

  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  if (nBoxes > 1) {
    std::cout << "\nlevel-policy ranking for " << nBoxes << " x " << n
              << "^3 boxes, threads=" << nThreads
              << " (top variants by predicted traffic):\n\n";
    harness::Table ptable({"variant", "policy", "tasks", "depth",
                           "max conc", "avg conc", "barriers",
                           "speedup vs seq"});
    const std::size_t shown = std::min<std::size_t>(ranked.size(), 4);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto policies = analysis::analyzeLevelPolicies(
          ranked[i].cfg, n, nBoxes, nThreads, spec);
      for (const auto& pc : policies) {
        ptable.addRow({ranked[i].cost.variant,
                       core::levelPolicyName(pc.policy),
                       std::to_string(pc.taskCount),
                       std::to_string(pc.depth),
                       std::to_string(pc.maxConcurrency),
                       harness::formatDouble(pc.avgConcurrency, 1),
                       std::to_string(pc.barrierCount),
                       harness::formatDouble(pc.predictedSpeedup, 2)});
      }
    }
    ptable.print(std::cout);

    // Over-synchronization advisory: lower the actual task graphs the
    // level executor would run under the parallel policies over a small
    // level of this box count, and ask the graph checker which dependency
    // edges could be dropped without losing race-freedom. Removable edges
    // are parallelism the depth/concurrency table above cannot see.
    const int side = std::min(n, 16);
    const int wantBoxes = std::min(nBoxes, 8);
    grid::IntVect counts = grid::IntVect::unit(1);
    while (counts.product() < wantBoxes) {
      int smallest = 0;
      for (int d = 1; d < grid::SpaceDim; ++d) {
        if (counts[d] < counts[smallest]) {
          smallest = d;
        }
      }
      counts[smallest] += 1;
    }
    const grid::ProblemDomain dom(grid::Box(
        grid::IntVect::zero(),
        grid::IntVect{counts[0] * side - 1, counts[1] * side - 1,
                      counts[2] * side - 1}));
    const grid::DisjointBoxLayout dbl(dom, side);
    bool anyGraphNote = false;
    for (std::size_t i = 0; i < shown; ++i) {
      for (const core::LevelPolicy policy :
           {core::LevelPolicy::BoxParallel, core::LevelPolicy::Hybrid}) {
        core::LevelExecOptions opts;
        opts.policy = policy;
        core::LevelExecutor exec(ranked[i].cfg, nThreads, opts);
        grid::LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
        grid::LevelData phi1(dbl, kernels::kNumComp, 0);
        for (const bool withExchange : {false, true}) {
          const analysis::TaskGraphModel model =
              exec.lowerGraph(phi0, phi1, withExchange);
          const analysis::GraphCheckReport rep =
              analysis::checkTaskGraph(model, /*findRemovable=*/true);
          if (rep.removable.empty()) {
            continue;
          }
          analysis::CostNote note;
          note.kind = analysis::CostNoteKind::OverSynchronized;
          note.where = model.name;
          note.actualBytes = static_cast<double>(rep.removable.size());
          note.limitBytes = static_cast<double>(rep.edgeCount);
          if (!anyGraphNote) {
            std::cout << "\ntask-graph notes (" << dbl.size() << " x "
                      << side << "^3 boxes, analysis/graphcheck):\n";
            anyGraphNote = true;
          }
          std::cout << "  [" << analysis::costNoteKindName(note.kind)
                    << "] " << ranked[i].cost.variant << ": "
                    << note.message() << "\n";
        }
      }
    }

    // Over-communication advisory: verify the level's ghost-exchange plan
    // (analysis/commcheck) under the largest standard rank partition and
    // surface any redundant ops or same-box-pair messages a smarter
    // lowering would aggregate — alpha-model latency the policy table
    // above prices as unavoidable.
    int planRanks = 1;
    for (const int r : {2, 4, 8}) {
      if (static_cast<std::size_t>(r) <= dbl.size()) {
        planRanks = r;
      }
    }
    const grid::Copier copier(dbl, kernels::kNumGhost);
    analysis::CommPlanModel plan = analysis::buildCommPlanModel(
        dbl, copier, kernels::kNumComp);
    analysis::applyRankPartition(plan, planRanks);
    const analysis::CommCheckReport commRep =
        analysis::checkCommPlan(plan, /*findAdvisories=*/true);
    std::int64_t wastedMessages = 0;
    for (const analysis::CommAdvisory& a : commRep.advisories) {
      wastedMessages += a.kind == analysis::CommAdviceKind::RedundantOp
                            ? 1
                            : a.messages - a.merged;
    }
    if (wastedMessages > 0) {
      analysis::CostNote note;
      note.kind = analysis::CostNoteKind::OverCommunicated;
      note.where = plan.name;
      note.actualBytes = static_cast<double>(wastedMessages);
      note.limitBytes = static_cast<double>(commRep.messagesTotal);
      std::cout << "\nexchange-plan notes (" << dbl.size() << " x " << side
                << "^3 boxes, " << planRanks
                << " simulated ranks, analysis/commcheck):\n";
      std::cout << "  [" << analysis::costNoteKindName(note.kind) << "] "
                << note.message() << "\n";
    }
  }

  const std::string schemeArg = args.getString("scheme");
  if (!schemeArg.empty()) {
    std::vector<solvers::Scheme> schemes;
    if (schemeArg == "all") {
      schemes.assign(std::begin(solvers::kSchemes),
                     std::end(solvers::kSchemes));
    } else {
      solvers::Scheme s{};
      if (!solvers::parseScheme(schemeArg, s)) {
        std::cerr << "error: unknown --scheme '" << schemeArg
                  << "' (euler/midpoint/ssprk3/rk4 or 'all')\n";
        return 1;
      }
      schemes.push_back(s);
    }
    const int levelBoxes = std::max(1, nBoxes);
    std::cout << "\nstep-fusion ranking (" << levelBoxes << " x " << n
              << "^3 boxes, per time step; modeled halo + recompute "
                 "traffic, analysis::analyzeStepFusion):\n\n";
    harness::Table ftable({"scheme", "fuse", "exchanges", "depth", "halo",
                           "alpha", "recomp", "dispatches", "cost",
                           "rank"});
    std::vector<std::pair<std::string, analysis::CostNote>> fuseNotes;
    for (const solvers::Scheme s : schemes) {
      // The eager path's dispatch count is its level-wide sweep count:
      // one per recorded op (exchange / RHS / stage combine).
      const int eagerOps = static_cast<int>(
          solvers::buildStepProgram(s, /*dt=*/1.0).ops.size());
      const auto costs = analysis::analyzeStepFusion(
          solvers::schemeRhsEvals(s), n, levelBoxes, eagerOps);
      for (const auto& fc : costs) {
        ftable.addRow({solvers::schemeName(s),
                       core::stepFuseName(fc.fuse),
                       std::to_string(fc.exchanges),
                       std::to_string(fc.exchangeDepth),
                       fmtBytes(fc.exchangeBytes),
                       fmtBytes(fc.alphaBytes),
                       harness::formatDouble(fc.recomputeFraction, 3),
                       std::to_string(fc.dispatches),
                       fmtBytes(fc.costBytes),
                       std::to_string(fc.rank)});
        for (const auto& note : fc.notes) {
          fuseNotes.emplace_back(solvers::schemeName(s), note);
        }
      }
    }
    ftable.print(std::cout);
    for (const auto& [name, note] : fuseNotes) {
      std::cout << "  [" << analysis::costNoteKindName(note.kind) << "] "
                << name << ": " << note.message() << "\n";
    }

    // Whole-step liveness/tightness notes (analysis/stepcheck): dead
    // stores and over-deep halo widths in each scheme's recorded program
    // under each fuse mode's planned halos, the latter priced in extra
    // recomputed cells per step over this level.
    bool anyStepNote = false;
    for (const solvers::Scheme s : schemes) {
      const core::StepProgram prog =
          solvers::buildStepProgram(s, /*dt=*/1.0);
      for (const core::StepFuse fuse :
           {core::StepFuse::Staged, core::StepFuse::Fused,
            core::StepFuse::CommAvoid}) {
        analysis::StepCheckOptions sopts;
        sopts.boxSize = n;
        sopts.nBoxes = levelBoxes;
        const analysis::StepCheckReport rep =
            analysis::checkStepProgram(prog, fuse, sopts);
        for (const analysis::CostNote& note :
             analysis::stepCheckNotes(rep, prog)) {
          if (!anyStepNote) {
            std::cout << "\nwhole-step notes (analysis/stepcheck):\n";
            anyStepNote = true;
          }
          std::cout << "  [" << analysis::costNoteKindName(note.kind)
                    << "] " << solvers::schemeName(s) << "/"
                    << core::stepFuseName(fuse) << ": " << note.message()
                    << "\n";
        }
      }
    }
  }

  if (args.getBool("kernels")) {
    // Kernel-contract advisory: differentially probe the shipped stage
    // kernels and pipelines (analysis/kernelcheck) and lift any
    // declared-but-never-read stencil offsets into cost notes. A small
    // sampled probe suffices — tightness is per offset, not per cell.
    analysis::ProbeOptions popts;
    popts.boxSize = 6;
    popts.exhaustiveSlotLimit = 0;
    popts.sampleTarget = 400;
    bool anyKernelNote = false;
    for (const analysis::KernelShape& shape : analysis::builtinShapes()) {
      const analysis::KernelCheckReport rep =
          analysis::checkKernelFootprints(
              analysis::inferFootprint(shape, popts));
      for (const analysis::CostNote& note :
           analysis::overdeclaredNotes(rep)) {
        if (!anyKernelNote) {
          std::cout << "\nkernel-contract notes (analysis/kernelcheck):\n";
          anyKernelNote = true;
        }
        std::cout << "  [" << analysis::costNoteKindName(note.kind) << "] "
                  << note.message() << "\n";
      }
    }
    if (!anyKernelNote) {
      std::cout << "\nkernel-contract notes: every declared stencil "
                   "offset is read (footprints tight)\n";
    }
  }

  const analysis::TileAdvice advice = advisor.recommendBlockedTile(n, nThreads);
  std::cout << "\nrecommended blocked-wavefront tile: ";
  if (advice.cost.variant.empty()) {
    std::cout << "(none) — " << advice.rationale << "\n";
  } else {
    std::cout << advice.cost.variant << "\n  " << advice.rationale << "\n";
  }

  if (args.getBool("strict")) {
    if (strictFailures > 0) {
      std::cerr << "\n" << strictFailures
                << " model-consistency check(s) failed\n";
      return 1;
    }
    std::cout << "\nall model-consistency checks passed over "
              << ranked.size() << " variants\n";
  }
  return 0;
}
