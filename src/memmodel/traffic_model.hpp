#pragma once
// Analytic DRAM-traffic model: closed-form bytes-per-cell-update estimates
// for each schedule family as a function of box size and last-level cache
// capacity. This is the large-N companion of the trace-driven CacheSim
// (which is exact but too slow for N = 128 sweeps); the two are
// cross-validated in tests/memmodel/test_traffic.cpp. It reproduces the
// paper's Sec. VI-B reasoning: the baseline's temporaries fall out of
// cache at N = 128 and its bandwidth demand roughly quadruples, while
// shift-fuse roughly halves it and tiled schedules approach the
// compulsory-traffic floor.

#include <cstddef>
#include <string>

#include "core/variant.hpp"

namespace fluxdiv::memmodel {

/// Estimated DRAM traffic for one box evaluation.
struct TrafficEstimate {
  double totalBytes = 0.0;   ///< per box evaluation
  double bytesPerCell = 0.0; ///< totalBytes / N^3
  bool workingSetFits = false;
  double workingSetBytes = 0.0;
  std::string note; ///< which regime/formula produced the estimate
};

/// Working-set bytes of one box evaluation under `cfg` (solution data the
/// schedule streams plus its temporaries).
double workingSetBytes(const core::VariantConfig& cfg, int n);

/// Estimate DRAM traffic for one evaluation of an n^3 box under `cfg` on a
/// machine whose last-level cache holds `cacheBytes`.
TrafficEstimate estimateTraffic(const core::VariantConfig& cfg, int n,
                                std::size_t cacheBytes);

} // namespace fluxdiv::memmodel
