#pragma once
// Memory-access trace generators: replay the address stream of one box
// evaluation under each schedule family into a CacheSim. The generators
// mirror the loop structure of the core executors (component loop outside,
// interior cells; the O(N^2) sweep-boundary special cases are elided) over
// a virtual address space laid out exactly like the real FArrayBoxes.
// They are a *model* of the executors, kept in sync by the
// tests/memmodel/test_traffic.cpp ordering checks.

#include "core/variant.hpp"
#include "grid/box.hpp"
#include "memmodel/cache_sim.hpp"

namespace fluxdiv::memmodel {

/// A fab-shaped window of the virtual address space.
struct VirtualFab {
  std::uint64_t base = 0; ///< byte address of the box-lo element of comp 0
  grid::Box box;
  std::int64_t sy = 0, sz = 0, sc = 0; ///< strides in elements

  VirtualFab() = default;
  VirtualFab(std::uint64_t baseAddr, const grid::Box& b, int ncomp);

  [[nodiscard]] std::uint64_t bytes(int ncomp) const {
    return static_cast<std::uint64_t>(sc) * ncomp * 8;
  }

  [[nodiscard]] std::uint64_t addr(int i, int j, int k, int c) const {
    const std::int64_t off =
        (i - box.lo(0)) + sy * static_cast<std::int64_t>(j - box.lo(1)) +
        sz * static_cast<std::int64_t>(k - box.lo(2)) + sc * c;
    return base + static_cast<std::uint64_t>(off) * 8;
  }
};

/// Replay one box evaluation (side N, kNumComp components, kNumGhost
/// ghosts) under `cfg` into `sim`. Tiled families use cfg.tileSize.
/// Traces model the serial (one-thread) execution of the schedule.
void traceBoxEvaluation(CacheSim& sim, const core::VariantConfig& cfg,
                        int n);

} // namespace fluxdiv::memmodel
