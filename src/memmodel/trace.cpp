#include "memmodel/trace.hpp"

#include <stdexcept>

#include "kernels/exemplar.hpp"
#include "sched/tiles.hpp"

namespace fluxdiv::memmodel {

namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ScheduleFamily;
using core::VariantConfig;
using grid::Box;
using grid::IntVect;
using kernels::kNumComp;
using kernels::kNumGhost;
using kernels::velocityComp;

/// Virtual address space of one box evaluation.
struct BoxSpace {
  VirtualFab phi0; ///< solution with ghosts
  VirtualFab phi1; ///< output with ghosts (valid region touched)
  VirtualFab flux; ///< face superset temporary
  VirtualFab vel;  ///< velocity temporary / precompute
  Box valid;

  BoxSpace(int n, const Box& tmpBox) {
    valid = Box::cube(n);
    const Box ghosted = valid.grow(kNumGhost);
    std::uint64_t cursor = 0;
    phi0 = VirtualFab(cursor, ghosted, kNumComp);
    cursor += phi0.bytes(kNumComp);
    phi1 = VirtualFab(cursor, ghosted, kNumComp);
    cursor += phi1.bytes(kNumComp);
    flux = VirtualFab(cursor, tmpBox, kNumComp);
    cursor += flux.bytes(kNumComp);
    vel = VirtualFab(cursor, tmpBox, 3);
  }
};

/// Face superset box of a region: [lo, hi+1].
Box superset(const Box& b) { return {b.lo(), b.hi() + IntVect::unit(1)}; }

/// The 4 cell reads of one EvalFlux1 application at the face whose
/// high-side cell is (i,j,k) in direction d.
void readStencil(CacheSim& sim, const VirtualFab& fab, int c, int i, int j,
                 int k, int d) {
  const IntVect e = IntVect::basis(d);
  sim.read(fab.addr(i - 2 * e[0], j - 2 * e[1], k - 2 * e[2], c));
  sim.read(fab.addr(i - e[0], j - e[1], k - e[2], c));
  sim.read(fab.addr(i, j, k, c));
  sim.read(fab.addr(i + e[0], j + e[1], k + e[2], c));
}

/// Series-of-loops (baseline) trace over region `cells`, with temporaries
/// `flux`/`vel` shaped to the region (whole box for the baseline variants,
/// a tile for Basic-Sched OT). CLO skips the velocity temporary.
void traceSeriesOfLoops(CacheSim& sim, const BoxSpace& space,
                        const VirtualFab& flux, const VirtualFab& vel,
                        const Box& cells, ComponentLoop comp) {
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = cells.faceBox(d);
    const int vd = velocityComp(d);
    const std::int64_t fs = d == 0 ? 1 : (d == 1 ? flux.sy : flux.sz);
    // EvalFlux1 pass(es).
    auto facePhi = [&](int c) {
      forEachCell(fb, [&](int i, int j, int k) {
        readStencil(sim, space.phi0, c, i, j, k, d);
        sim.write(flux.addr(i, j, k, c));
      });
    };
    if (comp == ComponentLoop::Outside) {
      for (int c = 0; c < kNumComp; ++c) {
        facePhi(c);
      }
    } else {
      forEachCell(fb, [&](int i, int j, int k) {
        for (int c = 0; c < kNumComp; ++c) {
          readStencil(sim, space.phi0, c, i, j, k, d);
          sim.write(flux.addr(i, j, k, c));
        }
      });
      // CLI velocity copy.
      forEachCell(fb, [&](int i, int j, int k) {
        sim.read(flux.addr(i, j, k, vd));
        sim.write(vel.addr(i, j, k, 0));
      });
    }
    // EvalFlux2 + accumulate pass(es).
    auto flux2 = [&](int c) {
      forEachCell(fb, [&](int i, int j, int k) {
        sim.read(flux.addr(i, j, k, c));
        sim.read(comp == ComponentLoop::Outside ? flux.addr(i, j, k, vd)
                                                : vel.addr(i, j, k, 0));
        sim.write(flux.addr(i, j, k, c));
      });
    };
    auto accumulate = [&](int c) {
      forEachCell(cells, [&](int i, int j, int k) {
        const std::uint64_t f = flux.addr(i, j, k, c);
        sim.read(f);
        sim.read(f + static_cast<std::uint64_t>(fs) * 8);
        sim.read(space.phi1.addr(i, j, k, c));
        sim.write(space.phi1.addr(i, j, k, c));
      });
    };
    if (comp == ComponentLoop::Outside) {
      for (int c = 0; c < kNumComp; ++c) {
        flux2(c);
        accumulate(c);
      }
    } else {
      forEachCell(fb, [&](int i, int j, int k) {
        for (int c = 0; c < kNumComp; ++c) {
          sim.read(flux.addr(i, j, k, c));
          sim.read(vel.addr(i, j, k, 0));
          sim.write(flux.addr(i, j, k, c));
        }
      });
      forEachCell(cells, [&](int i, int j, int k) {
        for (int c = 0; c < kNumComp; ++c) {
          const std::uint64_t f = flux.addr(i, j, k, c);
          sim.read(f);
          sim.read(f + static_cast<std::uint64_t>(fs) * 8);
          sim.read(space.phi1.addr(i, j, k, c));
          sim.write(space.phi1.addr(i, j, k, c));
        }
      });
    }
  }
}

/// Shift-fuse trace over `cells` with carry temporaries at `carryBase`
/// (scalar + row + plane, as in the serial executor). Models the CLO
/// variant's velocity precompute when comp == Outside; the interior fused
/// sweep reads the three high-face stencils per (cell, component).
void traceShiftFuse(CacheSim& sim, const BoxSpace& space,
                    const VirtualFab& vel, std::uint64_t carryBase,
                    const Box& cells, ComponentLoop comp) {
  const int nx = cells.size(0);
  const std::uint64_t rowBase = carryBase + 8 * kNumComp;
  const std::uint64_t planeBase =
      rowBase + 8 * static_cast<std::uint64_t>(nx) * kNumComp;

  if (comp == ComponentLoop::Outside) {
    // Velocity precompute for all three directions.
    for (int d = 0; d < grid::SpaceDim; ++d) {
      forEachCell(cells.faceBox(d), [&](int i, int j, int k) {
        readStencil(sim, space.phi0, velocityComp(d), i, j, k, d);
        sim.write(vel.addr(i, j, k, d));
      });
    }
  }

  auto fusedCell = [&](int c, int i, int j, int k) {
    const int ii = i - cells.lo(0);
    const int jj = j - cells.lo(1);
    const IntVect hi[3] = {{i + 1, j, k}, {i, j + 1, k}, {i, j, k + 1}};
    for (int d = 0; d < grid::SpaceDim; ++d) {
      readStencil(sim, space.phi0, c, hi[d][0], hi[d][1], hi[d][2], d);
      if (comp == ComponentLoop::Outside) {
        sim.read(vel.addr(hi[d][0], hi[d][1], hi[d][2], d));
      } else {
        readStencil(sim, space.phi0, velocityComp(d), hi[d][0], hi[d][1],
                    hi[d][2], d);
      }
    }
    // Carry traffic: read low-face fluxes, write high-face fluxes.
    const std::uint64_t cx = carryBase + 8 * static_cast<std::uint64_t>(c);
    const std::uint64_t cy =
        rowBase + 8 * (static_cast<std::uint64_t>(ii) * kNumComp + c);
    const std::uint64_t cz =
        planeBase +
        8 * ((static_cast<std::uint64_t>(jj) * nx + ii) * kNumComp + c);
    sim.read(cx);
    sim.read(cy);
    sim.read(cz);
    sim.write(cx);
    sim.write(cy);
    sim.write(cz);
    // Accumulation read-modify-write.
    sim.read(space.phi1.addr(i, j, k, c));
    sim.write(space.phi1.addr(i, j, k, c));
  };

  if (comp == ComponentLoop::Outside) {
    for (int c = 0; c < kNumComp; ++c) {
      forEachCell(cells,
                  [&](int i, int j, int k) { fusedCell(c, i, j, k); });
    }
  } else {
    forEachCell(cells, [&](int i, int j, int k) {
      for (int c = 0; c < kNumComp; ++c) {
        fusedCell(c, i, j, k);
      }
    });
  }
}

} // namespace

VirtualFab::VirtualFab(std::uint64_t baseAddr, const grid::Box& b, int)
    : base(baseAddr), box(b), sy(b.size(0)),
      sz(static_cast<std::int64_t>(b.size(0)) * b.size(1)),
      sc(static_cast<std::int64_t>(b.size(0)) * b.size(1) * b.size(2)) {}

void traceBoxEvaluation(CacheSim& sim, const core::VariantConfig& cfg,
                        int n) {
  if (!cfg.validFor(n)) {
    throw std::invalid_argument("traceBoxEvaluation: invalid config");
  }
  switch (cfg.family) {
  case ScheduleFamily::SeriesOfLoops: {
    BoxSpace space(n, superset(Box::cube(n)));
    traceSeriesOfLoops(sim, space, space.flux, space.vel, space.valid,
                       cfg.comp);
    return;
  }
  case ScheduleFamily::ShiftFuse: {
    BoxSpace space(n, superset(Box::cube(n)));
    // Carries live after the velocity temporary.
    const std::uint64_t carryBase = space.vel.base + space.vel.bytes(3);
    traceShiftFuse(sim, space, space.vel, carryBase, space.valid, cfg.comp);
    return;
  }
  case ScheduleFamily::BlockedWavefront:
  case ScheduleFamily::OverlappedTiles: {
    // Tile-shaped temporaries, reused across tiles (serial model). The
    // blocked wavefront shares boundary fluxes through co-dimension
    // caches; modelling them as the same reused tile temporaries slightly
    // understates its cache footprint, which the ordering tests tolerate.
    const auto e = core::tileExtents(cfg, n);
    const Box tmpBox = superset(
        Box(IntVect::zero(), IntVect(e[0] - 1, e[1] - 1, e[2] - 1)));
    BoxSpace space(n, tmpBox);
    const sched::TileSet tiles(space.valid,
                               IntVect(e[0], e[1], e[2]));
    const std::uint64_t carryBase = space.vel.base + space.vel.bytes(3);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Box tb = tiles.tileBox(t);
      // Shift the temporary windows onto this tile so address arithmetic
      // stays in-bounds while storage is reused tile to tile.
      VirtualFab flux = space.flux;
      flux.box = superset(tb);
      VirtualFab vel = space.vel;
      vel.box = superset(tb);
      if (cfg.family == ScheduleFamily::OverlappedTiles &&
          cfg.intra == IntraTileSchedule::Basic) {
        traceSeriesOfLoops(sim, space, flux, vel, tb, cfg.comp);
      } else {
        traceShiftFuse(sim, space, vel, carryBase, tb, cfg.comp);
      }
    }
    return;
  }
  }
}

} // namespace fluxdiv::memmodel
