#include "memmodel/traffic_model.hpp"

#include <cmath>

#include "kernels/exemplar.hpp"

namespace fluxdiv::memmodel {

namespace {

using core::ComponentLoop;
using core::ScheduleFamily;
using core::VariantConfig;
using kernels::kNumComp;
using kernels::kNumGhost;

constexpr double kReal = 8.0; // sizeof(Real)
constexpr double kC = kNumComp;

double cube(double x) { return x * x * x; }

/// Compulsory traffic floor per box: every ghosted phi0 value read once,
/// every phi1 value read and written once.
double compulsoryBytes(int n) {
  const double ghosted = cube(n + 2.0 * kNumGhost);
  return kReal * kC * (ghosted + 2.0 * cube(n));
}

} // namespace

double workingSetBytes(const VariantConfig& cfg, int n) {
  const double ghosted = kReal * kC * cube(n + 2.0 * kNumGhost);
  const double out = kReal * kC * cube(n);
  const double faces = cube(n + 1.0);
  switch (cfg.family) {
  case ScheduleFamily::SeriesOfLoops:
    // Solution + C-component flux temporary (+ velocity for CLI).
    return ghosted + out + kReal * (kC + (cfg.comp == ComponentLoop::Inside
                                              ? 1.0
                                              : 0.0)) * faces;
  case ScheduleFamily::ShiftFuse:
    // Solution + plane/row/scalar carries (+ 3-direction velocity
    // precompute for CLO).
    return ghosted + out +
           kReal * kC * (2.0 + 2.0 * n + 2.0 * double(n) * n) +
           (cfg.comp == ComponentLoop::Outside ? kReal * 3.0 * faces : 0.0);
  case ScheduleFamily::BlockedWavefront: {
    // Active tile + co-dimension caches (tile extents honor the aspect).
    const auto e = core::tileExtents(cfg, n);
    const double tileCells = double(e[0]) * e[1] * e[2];
    const double tileGhosted = (e[0] + 2.0 * kNumGhost) *
                               (e[1] + 2.0 * kNumGhost) *
                               (e[2] + 2.0 * kNumGhost);
    const double tileData = kReal * kC * (tileGhosted + tileCells);
    const double entries = cfg.comp == ComponentLoop::Inside ? kC : 1.0;
    return tileData + kReal * entries * 3.0 * double(n) * n +
           (cfg.comp == ComponentLoop::Outside ? kReal * 3.0 * faces : 0.0);
  }
  case ScheduleFamily::OverlappedTiles: {
    const auto e = core::tileExtents(cfg, n);
    const double tileCells = double(e[0]) * e[1] * e[2];
    const double tileGhosted = (e[0] + 2.0 * kNumGhost) *
                               (e[1] + 2.0 * kNumGhost) *
                               (e[2] + 2.0 * kNumGhost);
    const double tileFaces = (e[0] + 1.0) * (e[1] + 1.0) * (e[2] + 1.0);
    // One thread's tile: ghosted input window + output + tile temporaries.
    return kReal * kC * (tileGhosted + tileCells + 4.0 * tileFaces);
  }
  }
  return 0.0;
}

TrafficEstimate estimateTraffic(const VariantConfig& cfg, int n,
                                std::size_t cacheBytes) {
  TrafficEstimate est;
  est.workingSetBytes = workingSetBytes(cfg, n);
  est.workingSetFits = est.workingSetBytes <= double(cacheBytes);

  const double faces = cube(n + 1.0);
  const double cells = cube(n);
  const double ghosted = cube(n + 2.0 * kNumGhost);

  if (est.workingSetFits) {
    est.totalBytes = compulsoryBytes(n);
    est.note = "working set fits in LLC: compulsory traffic only";
  } else {
    switch (cfg.family) {
    case ScheduleFamily::SeriesOfLoops:
      // Per direction: stream phi0 (EvalFlux1 reads), write + re-read +
      // re-write + re-read the flux temporary across the three passes
      // (with write-allocate fills), and read-modify-write phi1.
      est.totalBytes =
          3.0 * kReal *
          (kC * ghosted           // EvalFlux1 streams phi0
           + 4.0 * kC * faces     // flux: alloc+wb in pass 1, reread+wb
           + 2.0 * kC * faces / 2 // accumulate rereads flux (half cached)
           + 2.0 * kC * cells);   // phi1 RMW
      est.note = "baseline: 3 direction passes, temporaries spill";
      break;
    case ScheduleFamily::ShiftFuse: {
      // Fused sweep(s): phi0 is streamed once per sweep if the z-stencil's
      // ~5-plane reuse window fits in cache, else each direction's stencil
      // refetches it (3x). Carries stay resident; phi1 is RMW'd once.
      const double ghosted1 = ghosted; // one component's ghosted volume
      if (cfg.comp == ComponentLoop::Inside) {
        const double window = kReal * kC * 5.0 * double(n) * n;
        const double streams = window <= double(cacheBytes) ? 1.0 : 3.0;
        est.totalBytes = kReal * (kC * streams * ghosted1 // phi0 stencils
                                  + 2.0 * kC * cells);    // phi1 RMW
      } else {
        // CLO: a velocity precompute pass (read phi0's 3 velocity comps,
        // write 3 face fields) plus C per-component fused sweeps that
        // each stream phi0[c] and re-read the 3 velocity face fields.
        const double window = kReal * 5.0 * double(n) * n;
        const double streams = window <= double(cacheBytes) ? 1.0 : 3.0;
        est.totalBytes =
            kReal * (3.0 * ghosted1 + 3.0 * faces) // velocity precompute
            + kC * kReal *
                  (streams * ghosted1   // phi0[c] stencil stream
                   + 3.0 * faces        // velocity re-reads
                   + 2.0 * cells);      // phi1 RMW
      }
      est.note = "shift-fuse: fused sweep(s), carries resident";
      break;
    }
    case ScheduleFamily::BlockedWavefront:
    case ScheduleFamily::OverlappedTiles: {
      // Per tile: ghosted tile window of phi0 + phi1 RMW; tile
      // temporaries stay in cache. Overlap factor accounts for the halo
      // re-reads (OT recomputation) or boundary-cache traffic (WF).
      const auto e = core::tileExtents(cfg, n);
      const double nTiles = (double(n) / e[0]) * (double(n) / e[1]) *
                            (double(n) / e[2]);
      const double tileCells = double(e[0]) * e[1] * e[2];
      const double tileGhosted = (e[0] + 2.0 * kNumGhost) *
                                 (e[1] + 2.0 * kNumGhost) *
                                 (e[2] + 2.0 * kNumGhost);
      est.totalBytes =
          kReal * kC * nTiles * (tileGhosted + 2.0 * tileCells);
      est.note = "tiled: per-tile compulsory traffic with halo overlap";
      break;
    }
    }
  }
  est.bytesPerCell = est.totalBytes / cells;
  return est;
}

} // namespace fluxdiv::memmodel
