#pragma once
// Trace-driven, multi-level, set-associative LRU cache simulator. The
// paper's bandwidth analysis (Sec. VI-B) used Intel VTune / PCM hardware
// counters on a desktop machine; this reproduction has no counter access,
// so the memory-traffic comparison between schedules is made with this
// simulator instead: each schedule's memory-access stream is replayed and
// the DRAM traffic (last-level misses + writebacks) is reported.

#include <cstdint>
#include <string>
#include <vector>

namespace fluxdiv::memmodel {

/// Geometry of one cache level.
struct CacheConfig {
  std::string name;        ///< e.g. "L1", "L2", "LLC"
  std::size_t sizeBytes = 0;
  int associativity = 8;
  int lineBytes = 64;
};

/// Hit/miss counters of one level.
struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0; ///< dirty evictions forwarded down
};

/// One set-associative LRU write-back, write-allocate cache level.
class CacheLevelSim {
public:
  explicit CacheLevelSim(const CacheConfig& config);

  /// Access the line containing `lineAddr` (already line-aligned tag).
  /// Returns true on hit. On miss the line is allocated; if a dirty line
  /// is evicted, `evictedDirty` is set.
  bool access(std::uint64_t lineTag, bool write, bool& evictedDirty);

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const LevelStats& stats() const { return stats_; }
  void resetStats() { stats_ = LevelStats{}; }

private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lastUse = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  LevelStats stats_;
  int nSets_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_; ///< nSets_ * associativity, set-major
};

/// Inclusive-ish multi-level hierarchy: an access missing level i proceeds
/// to level i+1; a miss at the last level is DRAM traffic, as is every
/// dirty writeback leaving the last level.
class CacheSim {
public:
  explicit CacheSim(std::vector<CacheConfig> levels);

  /// Typical three-level hierarchy used by the bandwidth bench; sizes can
  /// mirror the host or one of the paper's machines.
  static CacheSim makeTypical(std::size_t l1 = 32 * 1024,
                              std::size_t l2 = 256 * 1024,
                              std::size_t llc = 6 * 1024 * 1024);

  /// Simulate an access of `bytes` bytes at `addr` (spans lines if needed).
  void access(std::uint64_t addr, int bytes, bool write);

  /// Convenience for the 8-byte Real accesses of the trace generators.
  void read(std::uint64_t addr) { access(addr, 8, false); }
  void write(std::uint64_t addr) { access(addr, 8, true); }

  [[nodiscard]] const std::vector<CacheLevelSim>& levels() const {
    return levels_;
  }

  /// Bytes that crossed the DRAM bus: last-level miss fills + writebacks.
  [[nodiscard]] std::uint64_t dramBytes() const;

  /// Total bytes requested by the program (for arithmetic-intensity-style
  /// ratios).
  [[nodiscard]] std::uint64_t requestBytes() const { return requestBytes_; }

  void resetStats();

private:
  std::vector<CacheLevelSim> levels_;
  std::uint64_t requestBytes_ = 0;
  std::uint64_t dramLineFills_ = 0;
  std::uint64_t dramWritebacks_ = 0;
  int lineBytes_ = 64;
};

} // namespace fluxdiv::memmodel
