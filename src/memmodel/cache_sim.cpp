#include "memmodel/cache_sim.hpp"

#include <stdexcept>

namespace fluxdiv::memmodel {

CacheLevelSim::CacheLevelSim(const CacheConfig& config) : config_(config) {
  if (config.sizeBytes == 0 || config.associativity <= 0 ||
      config.lineBytes <= 0) {
    throw std::invalid_argument("CacheLevelSim: bad geometry");
  }
  const std::size_t lines = config.sizeBytes / config.lineBytes;
  nSets_ = static_cast<int>(
      lines / static_cast<std::size_t>(config.associativity));
  if (nSets_ <= 0) {
    nSets_ = 1;
  }
  ways_.resize(static_cast<std::size_t>(nSets_) * config.associativity);
}

bool CacheLevelSim::access(std::uint64_t lineTag, bool write,
                           bool& evictedDirty) {
  evictedDirty = false;
  ++stats_.accesses;
  ++clock_;
  const auto set = static_cast<std::size_t>(
      lineTag % static_cast<std::uint64_t>(nSets_));
  Way* base = ways_.data() + set * config_.associativity;
  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == lineTag) {
      ++stats_.hits;
      way.lastUse = clock_;
      way.dirty = way.dirty || write;
      return true;
    }
    if (!way.valid) {
      victim = &way; // prefer an invalid way
    } else if (victim->valid && way.lastUse < victim->lastUse) {
      victim = &way;
    }
  }
  ++stats_.misses;
  if (victim->valid && victim->dirty) {
    evictedDirty = true;
    ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = lineTag;
  victim->lastUse = clock_;
  victim->dirty = write;
  return false;
}

CacheSim::CacheSim(std::vector<CacheConfig> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("CacheSim: need at least one level");
  }
  lineBytes_ = levels.front().lineBytes;
  for (const auto& cfg : levels) {
    if (cfg.lineBytes != lineBytes_) {
      throw std::invalid_argument("CacheSim: uniform line size required");
    }
    levels_.emplace_back(cfg);
  }
}

CacheSim CacheSim::makeTypical(std::size_t l1, std::size_t l2,
                               std::size_t llc) {
  return CacheSim({{"L1", l1, 8, 64}, {"L2", l2, 8, 64},
                   {"LLC", llc, 16, 64}});
}

void CacheSim::access(std::uint64_t addr, int bytes, bool write) {
  requestBytes_ += static_cast<std::uint64_t>(bytes);
  const std::uint64_t first = addr / static_cast<std::uint64_t>(lineBytes_);
  const std::uint64_t last =
      (addr + static_cast<std::uint64_t>(bytes) - 1) /
      static_cast<std::uint64_t>(lineBytes_);
  for (std::uint64_t tag = first; tag <= last; ++tag) {
    bool evictedDirty = false;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      const bool hit = levels_[lvl].access(tag, write, evictedDirty);
      // Model simplification: a dirty line evicted from level `lvl` is
      // charged as DRAM writeback traffic only when it leaves the last
      // level; inner-level writebacks stay on-chip.
      if (lvl + 1 == levels_.size() && evictedDirty) {
        ++dramWritebacks_;
      }
      if (hit) {
        break;
      }
      if (lvl + 1 == levels_.size()) {
        ++dramLineFills_; // missed everywhere: line comes from DRAM
      }
    }
  }
}

std::uint64_t CacheSim::dramBytes() const {
  return (dramLineFills_ + dramWritebacks_) *
         static_cast<std::uint64_t>(lineBytes_);
}

void CacheSim::resetStats() {
  for (auto& lvl : levels_) {
    lvl.resetStats();
  }
  requestBytes_ = 0;
  dramLineFills_ = 0;
  dramWritebacks_ = 0;
}

} // namespace fluxdiv::memmodel
