#include "serve/solve_service.hpp"

#include <algorithm>
#include <thread>
#include <fstream>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/stepcheck.hpp"
#include "core/stepgraph.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::serve {

using core::TaskPool;
using grid::LevelData;

// ---------------------------------------------------------------------------
// Workload spec parsing

namespace {

bool toInt(const std::string& text, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool toReal(const std::string& text, grid::Real& out) {
  try {
    std::size_t used = 0;
    out = static_cast<grid::Real>(std::stod(text, &used));
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

[[noreturn]] void badToken(const std::string& line,
                           const std::string& token) {
  throw std::invalid_argument("workload spec: bad token '" + token +
                              "' in line '" + line + "'");
}

} // namespace

InstanceSpec parseInstanceSpec(const std::string& line) {
  std::istringstream in(line);
  InstanceSpec spec;
  if (!(in >> spec.name) || spec.name.find('=') != std::string::npos) {
    throw std::invalid_argument(
        "workload spec: line must start with an instance name: '" + line +
        "'");
  }
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      badToken(line, token);
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    if (key == "scheme") {
      if (!solvers::parseScheme(val, spec.scheme)) {
        badToken(line, token);
      }
    } else if (key == "box") {
      if (!toInt(val, spec.boxSize) || spec.boxSize < 1) {
        badToken(line, token);
      }
    } else if (key == "nboxes") {
      if (!toInt(val, spec.nBoxes) || spec.nBoxes < 1) {
        badToken(line, token);
      }
    } else if (key == "steps") {
      if (!toInt(val, spec.steps) || spec.steps < 1) {
        badToken(line, token);
      }
    } else if (key == "dt") {
      if (!toReal(val, spec.dt)) {
        badToken(line, token);
      }
    } else if (key == "weight") {
      if (!toInt(val, spec.weight) || spec.weight < 1) {
        badToken(line, token);
      }
    } else if (key == "fuse") {
      spec.autoFuse = (val == "auto");
      if (!spec.autoFuse && !core::parseStepFuse(val, spec.fuse)) {
        badToken(line, token);
      }
    } else if (key == "policy") {
      spec.autoPolicy = (val == "auto");
      if (!spec.autoPolicy && !core::parseLevelPolicy(val, spec.policy)) {
        badToken(line, token);
      }
    } else {
      badToken(line, token);
    }
  }
  return spec;
}

std::vector<InstanceSpec> parseWorkload(std::istream& in) {
  std::vector<InstanceSpec> specs;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    specs.push_back(parseInstanceSpec(line));
  }
  return specs;
}

std::vector<InstanceSpec> loadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read workload spec: " + path);
  }
  return parseWorkload(in);
}

grid::DisjointBoxLayout specLayout(const InstanceSpec& spec) {
  const int n = spec.boxSize;
  const grid::Box domain(
      grid::IntVect::zero(),
      grid::IntVect(n * spec.nBoxes - 1, n - 1, n - 1));
  return grid::DisjointBoxLayout(grid::ProblemDomain(domain), n);
}

// ---------------------------------------------------------------------------
// SolveService

/// One cached solve shape: the executor (whose graph cache persists
/// across solves of the shape), its pool-lifetime task domain, and the
/// step program. `busy` guards against two concurrent instances of the
/// same shape sharing one executor (phases of one executor must run one
/// at a time); a second in-flight instance gets its own entry.
struct SolveService::ExecEntry {
  solvers::Scheme scheme = solvers::Scheme::RK4;
  int boxSize = 0;
  int nBoxes = 0;
  int steps = 0;
  grid::Real dt = 0;
  core::StepFuse fuse = core::StepFuse::Fused;
  core::LevelPolicy policy = core::LevelPolicy::BoxParallel;
  int weight = 1;

  int domain = 0;
  std::unique_ptr<core::StepGraphExecutor> exec;
  core::StepProgram prog;
  /// S4 rebind signature (analysis::stepSignature): what the executor's
  /// graph cache was captured under; reuse re-derives and matches it.
  std::uint64_t signature = 0;
  bool busy = false;
};

namespace {

/// The (program, fuse, layout, physics) digest of one instance spec —
/// the service always solves periodic kNumComp/kNumGhost levels with the
/// default RHS physics, so the spec determines the whole key.
std::uint64_t entrySignature(const InstanceSpec& spec, core::StepFuse fuse,
                             const core::StepProgram& prog) {
  const grid::DisjointBoxLayout layout = specLayout(spec);
  analysis::StepShapeKey key;
  key.domainBox = layout.domain().box();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    key.periodic[static_cast<std::size_t>(d)] =
        layout.domain().isPeriodic(d);
  }
  key.boxSize = layout.boxSize();
  key.nGhost = kernels::kNumGhost;
  key.nComp = kernels::kNumComp;
  const core::StepRhsSpec rhs;
  key.invDx = rhs.invDx;
  key.dissipation = rhs.dissipation;
  key.hasBoundary = false;
  return analysis::stepSignature(prog, fuse, key);
}

} // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(std::move(opts)), pool_(std::max(1, opts_.threads), opts_.pin) {}

SolveService::~SolveService() = default;

SolveService::ExecEntry& SolveService::acquireExecutor(
    const InstanceSpec& spec, core::StepFuse fuse,
    core::LevelPolicy policy) {
  for (const std::unique_ptr<ExecEntry>& e : executors_) {
    if (!e->busy && e->scheme == spec.scheme &&
        e->boxSize == spec.boxSize && e->nBoxes == spec.nBoxes &&
        e->steps == spec.steps && e->dt == spec.dt && e->fuse == fuse &&
        e->policy == policy && e->weight == spec.weight) {
      // S4 rebind gate: the shape fields just matched, so the signature
      // of what this spec would capture must equal the one the entry's
      // graph cache was built (and step-verified) under — a mismatch
      // means the cache key admitted a spec the graphs were never proven
      // for.
      const std::uint64_t sig = entrySignature(
          spec, fuse,
          solvers::buildStepProgram(spec.scheme, spec.dt, spec.steps));
      if (sig != e->signature) {
        throw std::logic_error(
            "SolveService: executor-cache signature mismatch for '" +
            spec.name + "' (cached " +
            analysis::stepSignatureHex(e->signature) + ", requested " +
            analysis::stepSignatureHex(sig) + ")");
      }
      e->busy = true;
      return *e;
    }
  }
  auto entry = std::make_unique<ExecEntry>();
  entry->scheme = spec.scheme;
  entry->boxSize = spec.boxSize;
  entry->nBoxes = spec.nBoxes;
  entry->steps = spec.steps;
  entry->dt = spec.dt;
  entry->fuse = fuse;
  entry->policy = policy;
  entry->weight = spec.weight;
  entry->domain = pool_.createDomain(spec.weight, spec.name);
  core::StepExecOptions execOpts;
  execOpts.fuse = fuse;
  execOpts.policy = policy;
  execOpts.sharedPool = &pool_;
  execOpts.domain = entry->domain;
  entry->exec = std::make_unique<core::StepGraphExecutor>(
      opts_.cfg, pool_.nThreads(), execOpts);
  entry->prog = solvers::buildStepProgram(spec.scheme, spec.dt, spec.steps);
  entry->signature = entrySignature(spec, fuse, entry->prog);
  entry->busy = true;
  executors_.push_back(std::move(entry));
  return *executors_.back();
}


ServiceReport SolveService::run(const std::vector<InstanceSpec>& specs,
                                const std::vector<LevelData*>& states) {
  if (specs.size() != states.size()) {
    throw std::invalid_argument(
        "SolveService::run: specs/states size mismatch");
  }
  ServiceReport out;
  out.instances.resize(specs.size());
  if (specs.empty()) {
    return out;
  }

  const core::TaskPoolStats pool0 = pool_.stats();
  harness::Timer wall;
  std::vector<double> latencies;
  latencies.reserve(specs.size());

  /// Per-admitted-instance orchestration state: the cached executor
  /// entry, its phase cursor, and the bookkeeping the report needs.
  struct Active {
    std::size_t idx = 0;
    ExecEntry* entry = nullptr;
    core::StepRhsSpec rhsSpec;
    LevelData* u = nullptr;
    std::size_t nPhases = 0;
    std::size_t phase = 0;
    double t0 = 0;
    core::DomainStats dom0;
    std::uint64_t hits0 = 0;
    std::uint64_t rebinds0 = 0;
    tuner::TuneKey key;
    bool fromPrior = false;
    InstanceReport report;
    TaskPool::Ticket ticket = 0;
  };

  std::vector<Active> active;
  active.reserve(specs.size());
  std::size_t nextAdmit = 0;

  const auto admit = [&](std::size_t i) {
    const InstanceSpec& spec = specs[i];
    LevelData& u = *states[i];
    Active a;
    a.idx = i;
    a.u = &u;
    a.report.name = spec.name;
    a.report.scheme = spec.scheme;
    a.report.fuse = spec.fuse;
    a.report.policy = spec.policy;

    // Admission-time tuning: measured record if the key is warm, else a
    // cost-model prior (counted as a re-tune; the solve's measurement is
    // folded back below).
    a.key = tuner::TuneKey{solvers::schemeName(spec.scheme), spec.boxSize,
                           u.nGhost(), pool_.nThreads()};
    if (opts_.tunedb != nullptr && (spec.autoFuse || spec.autoPolicy)) {
      const tuner::TuneEntry& entry =
          opts_.tunedb->suggest(a.key, spec.nBoxes);
      if (spec.autoFuse) {
        a.report.fuse = entry.fuse;
      }
      if (spec.autoPolicy) {
        a.report.policy = entry.policy;
      }
      a.fromPrior = !entry.measured;
      a.report.tunedFromPrior = a.fromPrior;
      if (a.fromPrior) {
        ++out.retunes;
      }
    }

    a.entry = &acquireExecutor(spec, a.report.fuse, a.report.policy);
    a.dom0 = pool_.domainStats(a.entry->domain);
    a.hits0 = a.entry->exec->stats().cacheHits;
    a.rebinds0 = a.entry->exec->stats().rebinds;
    a.t0 = wall.seconds();
    a.nPhases = a.entry->exec->preparePhases(a.entry->prog, u, a.rhsSpec);
    a.phase = 0;
    a.ticket =
        pool_.submit(a.entry->exec->beginPhase(0), a.entry->domain);
    active.push_back(std::move(a));
  };

  const auto finalize = [&](Active& a) {
    const InstanceSpec& spec = specs[a.idx];
    a.report.latencySeconds = wall.seconds() - a.t0;
    a.report.stepSeconds = a.report.latencySeconds / spec.steps;
    a.report.cacheHits = a.entry->exec->stats().cacheHits - a.hits0;
    a.report.rebinds = a.entry->exec->stats().rebinds - a.rebinds0;
    const core::DomainStats d1 = pool_.domainStats(a.entry->domain);
    a.report.domain.executed = d1.executed - a.dom0.executed;
    a.report.domain.stolen = d1.stolen - a.dom0.stolen;
    latencies.push_back(a.report.latencySeconds);
    if (opts_.tunedb != nullptr && a.fromPrior) {
      opts_.tunedb->observe(a.key, a.report.fuse, a.report.policy,
                            a.report.stepSeconds);
    }
    a.entry->busy = false;
    out.instances[a.idx] = std::move(a.report);
  };

  // Auto window: one instance per unit of real parallelism plus one so
  // the next admission's tune lookup and graph rebind (orchestrator
  // work) overlap the dedicated workers' execution. Pool threads beyond
  // the physical cores add no concurrency, only live working sets, so
  // the window tracks min(threads, cores). With a single pool thread
  // the orchestrator IS the only worker — nothing overlaps, and a wider
  // window would just interleave working sets — so the window is 1.
  const unsigned hw = std::thread::hardware_concurrency();
  const int realThreads =
      hw > 0 ? std::min(opts_.threads, static_cast<int>(hw))
             : opts_.threads;
  const std::size_t autoWindow =
      opts_.threads == 1 ? 1
                         : static_cast<std::size_t>(realThreads) + 1;
  const std::size_t window =
      opts_.maxConcurrent > 0
          ? static_cast<std::size_t>(opts_.maxConcurrent)
          : (opts_.maxConcurrent == 0 ? autoWindow : specs.size());
  std::vector<TaskPool::Ticket> tickets;
  while (!active.empty() || nextAdmit < specs.size()) {
    while (nextAdmit < specs.size() && active.size() < window) {
      admit(nextAdmit++);
    }
    tickets.clear();
    for (const Active& a : active) {
      tickets.push_back(a.ticket);
    }
    const std::size_t k = pool_.waitAny(tickets);
    Active& a = active[k];
    a.entry->exec->endPhase(a.phase);
    ++a.phase;
    if (a.phase < a.nPhases) {
      a.ticket = pool_.submit(a.entry->exec->beginPhase(a.phase),
                              a.entry->domain);
    } else {
      finalize(a);
      active.erase(active.begin() +
                   static_cast<std::ptrdiff_t>(k));
    }
  }

  out.solves = specs.size();
  out.wallSeconds = wall.seconds();
  out.solvesPerSec =
      out.wallSeconds > 0
          ? static_cast<double>(specs.size()) / out.wallSeconds
          : 0.0;
  out.latency = harness::latencySummary(std::move(latencies));
  const core::TaskPoolStats pool1 = pool_.stats();
  out.tasksExecuted = pool1.executed - pool0.executed;
  out.tasksStolen = pool1.stolen - pool0.stolen;
  out.domainCrossings = pool1.domainCrossings - pool0.domainCrossings;
  out.idleSleeps = pool1.idleSleeps - pool0.idleSleeps;
  out.submissions = pool1.submissions - pool0.submissions;
  out.poolUtilization =
      out.wallSeconds > 0
          ? (pool1.busySeconds - pool0.busySeconds) /
                (static_cast<double>(pool_.nThreads()) * out.wallSeconds)
          : 0.0;
  for (const InstanceReport& r : out.instances) {
    out.graphCacheHits += r.cacheHits;
  }
  return out;
}

ServiceReport SolveService::run(const std::vector<InstanceSpec>& specs) {
  std::vector<std::unique_ptr<LevelData>> owned;
  std::vector<LevelData*> states;
  owned.reserve(specs.size());
  for (const InstanceSpec& spec : specs) {
    owned.push_back(std::make_unique<LevelData>(
        specLayout(spec), kernels::kNumComp, kernels::kNumGhost));
    kernels::initializeExemplar(*owned.back());
    states.push_back(owned.back().get());
  }
  return run(specs, states);
}

void printServiceReport(std::ostream& os, const ServiceReport& report) {
  os << "service: " << report.solves << " solves in "
     << std::fixed << std::setprecision(3) << report.wallSeconds << " s ("
     << std::setprecision(2) << report.solvesPerSec << " solves/s), "
     << "latency p50/p90/p99 = " << std::setprecision(4)
     << report.latency.p50 * 1e3 << "/" << report.latency.p90 * 1e3 << "/"
     << report.latency.p99 * 1e3 << " ms\n"
     << "pool: utilization " << std::setprecision(1)
     << report.poolUtilization * 100.0 << "%, " << report.tasksExecuted
     << " tasks (" << report.tasksStolen << " stolen, "
     << report.domainCrossings << " domain crossings, "
     << report.idleSleeps << " idle sleeps), " << report.submissions
     << " graph submissions, " << report.graphCacheHits
     << " graph-cache hits, " << report.retunes << " re-tunes\n";
  os.unsetf(std::ios::floatfield);
  for (const InstanceReport& r : report.instances) {
    os << "  " << r.name << ": " << solvers::schemeName(r.scheme) << " "
       << core::stepFuseName(r.fuse) << "/"
       << core::levelPolicyName(r.policy)
       << (r.tunedFromPrior ? " (prior)" : " (db)") << ", "
       << std::setprecision(4) << r.latencySeconds * 1e3 << " ms, "
       << r.domain.executed << " tasks (" << r.domain.stolen
       << " stolen), " << r.cacheHits << " cache hits\n";
  }
}

} // namespace fluxdiv::serve
