#pragma once
// Throughput service mode (docs/serving.md): admit M independent solver
// instances — different box counts, box sizes, schemes, fuse modes — into
// ONE shared work-stealing TaskPool. Each instance's RK step is lowered
// through its own StepGraphExecutor into the pool under a per-instance
// task domain, so captured graphs from different instances interleave in
// the same worker deques with weighted-fair scheduling between them. A
// single orchestrator thread drives every instance's phase state machine
// with submit()/waitAny() and harvests per-solve latency; admission
// consults a persistent tuner::TuneDB so repeat traffic is admitted with
// measured (fuse, policy) choices and never re-tunes, while cold traffic
// is admitted on cost-model priors and measured once.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/taskpool.hpp"
#include "core/variant.hpp"
#include "grid/leveldata.hpp"
#include "harness/stats.hpp"
#include "solvers/integrator.hpp"
#include "tuner/tunedb.hpp"

namespace fluxdiv::serve {

/// One solve request: a level shape, a scheme, a step count, and either
/// pinned or tuner-chosen schedule knobs. This is one line of a workload
/// spec file (docs/serving.md, "Workload spec").
struct InstanceSpec {
  std::string name;
  solvers::Scheme scheme = solvers::Scheme::RK4;
  int boxSize = 16;   ///< cubic box side
  int nBoxes = 4;     ///< boxes along x (periodic row level)
  int steps = 2;      ///< time steps per solve
  grid::Real dt = 1e-4;
  int weight = 1;     ///< fair-share weight of the instance's task domain
  bool autoFuse = true;   ///< consult the TuneDB / prior for the fuse mode
  bool autoPolicy = true; ///< same for the level policy
  core::StepFuse fuse = core::StepFuse::Fused;         ///< when !autoFuse
  core::LevelPolicy policy = core::LevelPolicy::BoxParallel; ///< when
                                                             ///< !autoPolicy
};

/// Parse one workload line: `name key=value...` with keys scheme, box,
/// nboxes, steps, dt, weight, fuse, policy (fuse/policy accept "auto").
/// Throws std::invalid_argument with the offending token.
InstanceSpec parseInstanceSpec(const std::string& line);

/// Parse a workload stream/file: one instance per line, '#' comments and
/// blank lines ignored. loadWorkload throws std::runtime_error when the
/// file cannot be read.
std::vector<InstanceSpec> parseWorkload(std::istream& in);
std::vector<InstanceSpec> loadWorkload(const std::string& path);

struct ServiceOptions {
  int threads = 4;
  bool pin = false;         ///< TaskPool worker pinning
  /// Admission window: maximum in-flight instances. 0 = auto
  /// (threads + 1: one instance per worker plus one extra so the next
  /// admission's tune/rebind overlaps execution); negative = unlimited.
  /// Unlimited admission keeps every instance's working set live at
  /// once and thrashes the shared cache — auto is the throughput
  /// default, explicit windows are for latency tuning.
  int maxConcurrent = 0;
  tuner::TuneDB* tunedb = nullptr; ///< admission tuner; may be null
                                   ///< (specs' own knobs / defaults)
  /// Within-box schedule every instance runs (the service tunes the
  /// step-level knobs; the within-box variant is the advisor's job).
  core::VariantConfig cfg =
      core::makeShiftFuse(core::ParallelGranularity::WithinBox);
};

/// Per-instance outcome.
struct InstanceReport {
  std::string name;
  solvers::Scheme scheme = solvers::Scheme::RK4;
  core::StepFuse fuse = core::StepFuse::Fused;     ///< as admitted
  core::LevelPolicy policy = core::LevelPolicy::BoxParallel;
  bool tunedFromPrior = false; ///< admission fell back to the cost model
                               ///< (a re-tune: the solve was measured and
                               ///< folded back into the TuneDB)
  double latencySeconds = 0;   ///< admission -> completion
  double stepSeconds = 0;      ///< latencySeconds / steps
  std::uint64_t cacheHits = 0; ///< executor graph-cache hits
  std::uint64_t rebinds = 0;   ///< layout-keyed rebinds among the hits
  core::DomainStats domain;    ///< executed/stolen tasks of the domain
};

/// Whole-run outcome: the throughput numbers bench_throughput and
/// fluxdiv_serve report.
struct ServiceReport {
  std::size_t solves = 0; ///< instances completed (stable under a
                          ///< caller clearing `instances` for brevity)
  double wallSeconds = 0;
  double solvesPerSec = 0;
  harness::LatencySummary latency; ///< per-solve latency percentiles
  double poolUtilization = 0;      ///< busy worker-seconds /
                                   ///< (threads x wall)
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksStolen = 0;
  std::uint64_t domainCrossings = 0;
  std::uint64_t idleSleeps = 0;
  std::uint64_t submissions = 0;
  std::uint64_t graphCacheHits = 0; ///< summed over instances
  std::uint64_t retunes = 0;        ///< instances admitted off a prior
  std::vector<InstanceReport> instances;
};

/// The service. One instance owns the shared TaskPool; run() may be
/// called repeatedly (a later run reuses the pool and, through the
/// TuneDB, the earlier runs' measurements). Not thread-safe: one
/// orchestrator thread drives it.
class SolveService {
public:
  explicit SolveService(ServiceOptions opts);
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Solve every spec concurrently, advancing `states[i]` (whose layout
  /// must match specs[i]) in place — the caller keeps the solutions, so
  /// tests can compare them bit-for-bit against solo runs. Throws
  /// std::invalid_argument on a size mismatch.
  ServiceReport run(const std::vector<InstanceSpec>& specs,
                    const std::vector<grid::LevelData*>& states);

  /// Convenience: build an exemplar-initialized periodic row level per
  /// spec, solve, and discard the solutions.
  ServiceReport run(const std::vector<InstanceSpec>& specs);

  [[nodiscard]] core::TaskPool& pool() { return pool_; }
  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

private:
  /// Cached (executor, domain, program) for one solve shape — scheme, box
  /// size, box count, steps, dt, fuse, policy, weight. Repeat traffic of
  /// the same shape reuses the entry, so its layout-signature-keyed graph
  /// cache REBINDS onto the new solution allocation instead of
  /// re-lowering (InstanceReport::cacheHits counts these); the entry's
  /// task domain is created once and lives for the pool's lifetime.
  struct ExecEntry;

  ExecEntry& acquireExecutor(const InstanceSpec& spec, core::StepFuse fuse,
                             core::LevelPolicy policy);

  ServiceOptions opts_;
  core::TaskPool pool_;
  std::vector<std::unique_ptr<ExecEntry>> executors_;
};

/// The periodic row layout a workload spec describes: `nBoxes` boxes of
/// side `boxSize` along x.
grid::DisjointBoxLayout specLayout(const InstanceSpec& spec);

/// Print a human-readable service report table.
void printServiceReport(std::ostream& os, const ServiceReport& report);

} // namespace fluxdiv::serve
