#pragma once
// Work partitioning helpers for the two parallel granularities in the study:
// "P >= Box" (threads take whole boxes) and "P < Box" (threads split a box
// into z-slabs or take tiles). These are thin, testable wrappers around the
// index arithmetic so every executor partitions identically.

#include <cstdint>
#include <utility>

#include "grid/box.hpp"

namespace fluxdiv::sched {

/// Contiguous sub-range [begin, end) of `total` items assigned to worker
/// `rank` of `nWorkers` under a balanced static partition (the first
/// `total % nWorkers` workers get one extra item).
[[nodiscard]] constexpr std::pair<std::int64_t, std::int64_t>
staticSlice(std::int64_t total, int nWorkers, int rank) {
  const std::int64_t base = total / nWorkers;
  const std::int64_t extra = total % nWorkers;
  const std::int64_t begin =
      rank * base + (rank < extra ? rank : extra);
  const std::int64_t size = base + (rank < extra ? 1 : 0);
  return {begin, begin + size};
}

/// The z-slab of `box` assigned to worker `rank` of `nWorkers` (may be
/// empty). Slabs partition the box exactly: the baseline "parallelism
/// within a box" granularity (paper Sec. III-C tests z-slices).
[[nodiscard]] inline grid::Box zSlab(const grid::Box& box, int nWorkers,
                                     int rank) {
  const auto [begin, end] =
      staticSlice(box.size(2), nWorkers, rank);
  if (begin >= end) {
    return {};
  }
  grid::IntVect lo = box.lo();
  grid::IntVect hi = box.hi();
  lo[2] = box.lo(2) + static_cast<int>(begin);
  hi[2] = box.lo(2) + static_cast<int>(end) - 1;
  return {lo, hi};
}

} // namespace fluxdiv::sched
