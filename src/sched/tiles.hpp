#pragma once
// Tile decomposition of a box. This module is the reproduction's stand-in
// for the CodeGen+ polyhedral loop-bound generation the paper used
// (Sec. IV-E): it materializes the iteration-space decompositions (tiles,
// wavefronts of tiles) that the generated loop bounds encoded.

#include <cstdint>
#include <vector>

#include "grid/box.hpp"

namespace fluxdiv::sched {

using grid::Box;
using grid::IntVect;

/// Decomposition of a box into a regular grid of tiles. Edge tiles are
/// clipped, so any tile size divides any box ("tile sizes were only used
/// for box sizes that were strictly larger" — we additionally permit
/// non-dividing sizes, clipped, so the sweep benches can explore freely).
class TileSet {
public:
  /// Tile `box` with cubic tiles of side `tileSize`.
  TileSet(const Box& box, int tileSize)
      : TileSet(box, IntVect::unit(tileSize)) {}

  /// Tile `box` with tiles of per-direction extents `tileSize` (pencil and
  /// slab shapes for the tile-aspect extension).
  TileSet(const Box& box, const IntVect& tileSize);

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] const IntVect& tileSize() const { return tileSize_; }
  /// Number of tiles per direction.
  [[nodiscard]] const IntVect& gridSize() const { return nTiles_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nTiles_.product());
  }

  /// Tile coordinates of linear index (x-fastest).
  [[nodiscard]] IntVect tileCoords(std::size_t idx) const;
  /// Cell region of the tile at `coords` (clipped to the box).
  [[nodiscard]] Box tileBox(const IntVect& coords) const;
  /// Cell region of the tile with linear index `idx`.
  [[nodiscard]] Box tileBox(std::size_t idx) const {
    return tileBox(tileCoords(idx));
  }

private:
  Box box_;
  IntVect tileSize_;
  IntVect nTiles_;
};

/// Traversal order of a tile set's tiles (for schedules whose tiles are
/// independent, i.e. overlapped tiles). Lexicographic is the natural
/// x-fastest order; Morton (Z-order) keeps consecutively-visited tiles
/// spatially close, improving inter-tile cache reuse of the shared halo
/// reads — a locality knob within the paper's "328 possible variations".
enum class TileOrder { Lexicographic, Morton };

/// The permutation of tile indices realizing `order`.
std::vector<std::size_t> tileTraversal(const TileSet& tiles,
                                       TileOrder order);

/// Tiles of a TileSet grouped into wavefronts by diagonal index
/// tx + ty + tz. Tiles within one wavefront have pairwise-distinct
/// orthogonal coordinates in every direction, so the blocked-wavefront
/// schedule can execute a wavefront's tiles concurrently while sharing
/// per-direction boundary-flux caches (paper Sec. IV-C).
class TileWavefronts {
public:
  explicit TileWavefronts(const TileSet& tiles);

  /// Number of wavefronts (= sum of per-direction tile counts - 2).
  [[nodiscard]] std::size_t count() const { return fronts_.size(); }
  /// Linear tile indices in wavefront w.
  [[nodiscard]] const std::vector<std::size_t>& front(std::size_t w) const {
    return fronts_[w];
  }

private:
  std::vector<std::vector<std::size_t>> fronts_;
};

/// Iterations of a box grouped into per-cell wavefronts by diagonal index
/// i + j + k (relative to the box's low corner). Used by the shift-fuse
/// per-iteration wavefront variants (paper Sec. IV-B, Fig. 8a).
class CellWavefronts {
public:
  explicit CellWavefronts(const Box& box) : box_(box) {}

  /// Number of cell wavefronts: sum of extents - 2.
  [[nodiscard]] int count() const {
    return box_.size(0) + box_.size(1) + box_.size(2) - 2;
  }

  /// Invoke f(i, j, k) for every cell on wavefront w (any order; callers
  /// may parallelize over the invocations).
  template <typename F> void forEach(int w, F&& f) const {
    // Enumerate (j, k) then solve i = w - dj - dk where d* are offsets from
    // the box lo; skip pairs whose i falls outside the box.
    const int nx = box_.size(0);
    for (int k = box_.lo(2); k <= box_.hi(2); ++k) {
      const int dk = k - box_.lo(2);
      for (int j = box_.lo(1); j <= box_.hi(1); ++j) {
        const int di = w - dk - (j - box_.lo(1));
        if (di < 0 || di >= nx) {
          continue;
        }
        f(box_.lo(0) + di, j, k);
      }
    }
  }

  /// Cells on wavefront w as an explicit list (for OpenMP loops that need
  /// random access over the wavefront's iterations).
  [[nodiscard]] std::vector<IntVect> cells(int w) const {
    std::vector<IntVect> out;
    forEach(w, [&](int i, int j, int k) { out.emplace_back(i, j, k); });
    return out;
  }

private:
  Box box_;
};

} // namespace fluxdiv::sched
