#include "sched/tiles.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace fluxdiv::sched {

TileSet::TileSet(const Box& box, const IntVect& tileSize)
    : box_(box), tileSize_(tileSize) {
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (tileSize[d] <= 0) {
      throw std::invalid_argument("TileSet: tile size must be > 0");
    }
    nTiles_[d] = (box.size(d) + tileSize[d] - 1) / tileSize[d];
  }
}

IntVect TileSet::tileCoords(std::size_t idx) const {
  const auto i = static_cast<std::int64_t>(idx);
  const std::int64_t nx = nTiles_[0];
  const std::int64_t ny = nTiles_[1];
  return {static_cast<int>(i % nx), static_cast<int>((i / nx) % ny),
          static_cast<int>(i / (nx * ny))};
}

Box TileSet::tileBox(const IntVect& coords) const {
  IntVect lo = box_.lo();
  IntVect hi;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    lo[d] += coords[d] * tileSize_[d];
    hi[d] = std::min(lo[d] + tileSize_[d] - 1, box_.hi(d));
  }
  return {lo, hi};
}

namespace {

/// Interleave the low 21 bits of (x, y, z) into a Morton code.
std::uint64_t mortonCode(const IntVect& c) {
  auto spread = [](std::uint64_t v) {
    v &= 0x1fffff; // 21 bits
    v = (v | (v << 32)) & 0x1f00000000ffffull;
    v = (v | (v << 16)) & 0x1f0000ff0000ffull;
    v = (v | (v << 8)) & 0x100f00f00f00f00full;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
    v = (v | (v << 2)) & 0x1249249249249249ull;
    return v;
  };
  return spread(static_cast<std::uint64_t>(c[0])) |
         (spread(static_cast<std::uint64_t>(c[1])) << 1) |
         (spread(static_cast<std::uint64_t>(c[2])) << 2);
}

} // namespace

std::vector<std::size_t> tileTraversal(const TileSet& tiles,
                                       TileOrder order) {
  std::vector<std::size_t> perm(tiles.size());
  for (std::size_t t = 0; t < perm.size(); ++t) {
    perm[t] = t;
  }
  if (order == TileOrder::Morton) {
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return mortonCode(tiles.tileCoords(a)) <
             mortonCode(tiles.tileCoords(b));
    });
  }
  return perm;
}

TileWavefronts::TileWavefronts(const TileSet& tiles) {
  const IntVect n = tiles.gridSize();
  const std::size_t nFronts =
      static_cast<std::size_t>(n[0] + n[1] + n[2] - 2);
  fronts_.resize(nFronts);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    fronts_[static_cast<std::size_t>(tiles.tileCoords(t).sum())].push_back(
        t);
  }
}

} // namespace fluxdiv::sched
