// Blocked wavefront schedule (paper Sec. IV-C, Fig. 8b): the box is tiled,
// each tile runs the shifted-and-fused sweep, and tiles *share* boundary
// fluxes through co-dimension caches — which induces dependencies along
// +x/+y/+z between tiles and forces wavefront execution over tiles.
// Within one tile wavefront, tiles have pairwise-distinct orthogonal
// coordinates in every direction, so their cache slots are disjoint and
// they can execute concurrently.

#include <omp.h>

#include "core/exec_fused.hpp"

namespace fluxdiv::core::detail {

namespace {

/// Fused sweep of one tile, component loop inside, low-face fluxes drawn
/// from (and high-face fluxes deposited into) the box-global co-dimension
/// caches. `fresh` applies only on the *box* boundary; on interior tile
/// boundaries the cache slot was written by the -d neighbor tile.
void sweepTileCLI(const FArrayBox& phi0, FArrayBox& phi1, const Box& tb,
                  const Box& valid, Real* cacheX, Real* cacheY,
                  Real* cacheZ, Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, tb, 0, kNumComp);
  const Idx ip(phi0);
  const Idx io(phi1);
  const ConstComps p(phi0);
  const MutComps out(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  for (int k = tb.lo(2); k <= tb.hi(2); ++k) {
    const int kk = k - valid.lo(2);
    for (int j = tb.lo(1); j <= tb.hi(1); ++j) {
      const int jj = j - valid.lo(1);
      for (int i = tb.lo(0); i <= tb.hi(0); ++i) {
        const int ii = i - valid.lo(0);
        fusedCellCLI(
            p, out, ip(i, j, k), io(i, j, k), ip.sy, ip.sz, ii == 0,
            jj == 0, kk == 0,
            cacheX + (static_cast<std::size_t>(kk) * ny + jj) * kNumComp,
            cacheY + (static_cast<std::size_t>(kk) * nx + ii) * kNumComp,
            cacheZ + (static_cast<std::size_t>(jj) * nx + ii) * kNumComp,
            scale);
      }
    }
  }
}

/// Fused sweep of one tile for a single component (component loop outside
/// the whole tile-wavefront execution — the "3D flux cache" variant).
void sweepTileCLO(const FArrayBox& phi0, FArrayBox& phi1, int c,
                  const FArrayBox& vel, const Box& tb, const Box& valid,
                  Real* cacheX, Real* cacheY, Real* cacheZ, Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, tb, c, 1);
  const Idx ip(phi0);
  const Idx io(phi1);
  const Idx iv(vel);
  const Real* pc = phi0.dataPtr(c);
  Real* outc = phi1.dataPtr(c);
  const Real* velx = vel.dataPtr(0);
  const Real* vely = vel.dataPtr(1);
  const Real* velz = vel.dataPtr(2);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  for (int k = tb.lo(2); k <= tb.hi(2); ++k) {
    const int kk = k - valid.lo(2);
    for (int j = tb.lo(1); j <= tb.hi(1); ++j) {
      const int jj = j - valid.lo(1);
      for (int i = tb.lo(0); i <= tb.hi(0); ++i) {
        const int ii = i - valid.lo(0);
        fusedCellCLO(pc, outc, ip(i, j, k), io(i, j, k), ip.sy, ip.sz,
                     velx, vely, velz, iv(i, j, k), iv.sy, iv.sz, ii == 0,
                     jj == 0, kk == 0,
                     cacheX + static_cast<std::size_t>(kk) * ny + jj,
                     cacheY + static_cast<std::size_t>(kk) * nx + ii,
                     cacheZ + static_cast<std::size_t>(jj) * nx + ii,
                     scale);
      }
    }
  }
}

/// Shared implementation: nThreads == 1 runs the tiles serially in
/// lexicographic order (a valid topological order of the tile dependences);
/// otherwise tiles execute wavefront-by-wavefront with an OpenMP team.
void blockedWFCore(const VariantConfig& cfg, const FArrayBox& phi0,
                   FArrayBox& phi1, const Box& valid, Workspace& shared,
                   int nThreads, Real scale) {
  const sched::TileSet tiles = makeTileSet(cfg, valid);
  const sched::TileWavefronts fronts(tiles);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const std::size_t entries = cfg.comp == ComponentLoop::Inside
                                  ? static_cast<std::size_t>(kNumComp)
                                  : 1u;
  Real* cacheX = shared.buffer(
      Slot::CarryX, static_cast<std::size_t>(ny) * nz * entries);
  Real* cacheY = shared.buffer(
      Slot::CarryY, static_cast<std::size_t>(nx) * nz * entries);
  Real* cacheZ = shared.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * entries);

  if (cfg.comp == ComponentLoop::Inside) {
#pragma omp parallel num_threads(nThreads) if (nThreads > 1)
    for (std::size_t w = 0; w < fronts.count(); ++w) {
      const auto& front = fronts.front(w);
#pragma omp for schedule(dynamic)
      for (std::size_t t = 0; t < front.size(); ++t) {
        sweepTileCLI(phi0, phi1, tiles.tileBox(front[t]), valid, cacheX,
                     cacheY, cacheZ, scale);
      }
    }
  } else {
    FArrayBox& vel = shared.fab(Slot::Velocity, faceSupersetBox(valid), 3);
#pragma omp parallel num_threads(nThreads) if (nThreads > 1)
    {
      precomputeFaceVelocity(phi0, vel, valid, omp_get_num_threads(),
                             omp_get_thread_num());
#pragma omp barrier
      for (int c = 0; c < kNumComp; ++c) {
        for (std::size_t w = 0; w < fronts.count(); ++w) {
          const auto& front = fronts.front(w);
#pragma omp for schedule(dynamic)
          for (std::size_t t = 0; t < front.size(); ++t) {
            sweepTileCLO(phi0, phi1, c, vel, tiles.tileBox(front[t]),
                         valid, cacheX, cacheY, cacheZ, scale);
          }
        }
      }
    }
  }
}

} // namespace

void blockedWFBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale) {
  blockedWFCore(cfg, phi0, phi1, valid, ws, 1, scale);
}

void blockedWFBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                          FArrayBox& phi1, const Box& valid,
                          WorkspacePool& pool, int nThreads, Real scale) {
  blockedWFCore(cfg, phi0, phi1, valid, pool[0], nThreads, scale);
}

} // namespace fluxdiv::core::detail
