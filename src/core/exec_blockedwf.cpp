// Blocked wavefront schedule (paper Sec. IV-C, Fig. 8b): the box is tiled,
// each tile runs the shifted-and-fused sweep, and tiles *share* boundary
// fluxes through co-dimension caches — which induces dependencies along
// +x/+y/+z between tiles and forces wavefront execution over tiles.
// Within one tile wavefront, tiles have pairwise-distinct orthogonal
// coordinates in every direction, so their cache slots are disjoint and
// they can execute concurrently.
//
// Tile sweeps are vectorized one x-row at a time (kernels/pencil.hpp).
// The schedule is untouched: boundary fluxes are still *read from* and
// *deposited into* the box-global caches (never recomputed across tile
// boundaries), so the sharing/recomputation structure the legality checker
// and cost model reason about is exactly the seed's. Only the within-row
// carries become pencils: the x carry is a per-row (tnx+1)-face flux
// scratch seeded from the cache slot and written back from its last entry,
// and the y/z carries are contiguous cache rows rolled forward by
// fusedFaceDiffPencil. To make those cache rows contiguous per component,
// the CLI caches are laid out component-major (c slowest); the slot set
// per (tile, front) — hence the disjointness argument — is unchanged.

#include <omp.h>

#include "core/exec_fused.hpp"
#include "kernels/pencil.hpp"

namespace fluxdiv::core::detail {

namespace {

namespace pencil = kernels::pencil;

/// Fused sweep of one tile, component loop inside, low-face fluxes drawn
/// from (and high-face fluxes deposited into) the box-global co-dimension
/// caches. `fresh` applies only on the *box* boundary; on interior tile
/// boundaries the cache slot was written by the -d neighbor tile.
/// Cache layouts (component-major): cacheX[(c*nz + kk)*ny + jj],
/// cacheY[(c*nz + kk)*nx + ii], cacheZ[(c*ny + jj)*nx + ii].
/// `fface`/`hi` are per-thread row scratch of >= nx+1 entries each.
void sweepTileCLI(const FArrayBox& phi0, FArrayBox& phi1, const Box& tb,
                  const Box& valid, Real* cacheX, Real* cacheY,
                  Real* cacheZ, Real* fface, Real* hi, Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, tb, 0, kNumComp);
  const Idx ip(phi0);
  const Idx io(phi1);
  const ConstComps p(phi0);
  const MutComps out(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const int ii0 = tb.lo(0) - valid.lo(0);
  const int tnx = tb.size(0);
  for (int k = tb.lo(2); k <= tb.hi(2); ++k) {
    const int kk = k - valid.lo(2);
    for (int j = tb.lo(1); j <= tb.hi(1); ++j) {
      const int jj = j - valid.lo(1);
      const std::int64_t a = ip(tb.lo(0), j, k);
      const std::int64_t o = io(tb.lo(0), j, k);
      for (int c = 0; c < kNumComp; ++c) {
        // x: seed face 0 from the cache (the -x neighbor's deposit) or
        // fresh on the box boundary, compute the tnx high faces, then
        // write the last face back for the +x neighbor.
        Real* slotX =
            cacheX + (static_cast<std::size_t>(c) * nz + kk) * ny + jj;
        fface[0] = ii0 == 0 ? kernels::faceFlux(p[c] + a, p[1] + a, 1)
                            : *slotX;
        pencil::faceFluxPencil(p[c] + a + 1, p[1] + a + 1, 1, tnx,
                               fface + 1);
        pencil::accumulatePencil(fface, 1, tnx, scale, out[c] + o);
        *slotX = fface[tnx];
        // y: the cache row holds the -y neighbor's fluxes (or fresh on
        // the box boundary); fusedFaceDiffPencil deposits ours for +y.
        Real* carryY = cacheY +
                       (static_cast<std::size_t>(c) * nz + kk) * nx + ii0;
        if (jj == 0) {
          pencil::faceFluxPencil(p[c] + a, p[2] + a, ip.sy, tnx, carryY);
        }
        pencil::faceFluxPencil(p[c] + a + ip.sy, p[2] + a + ip.sy, ip.sy,
                               tnx, hi);
        pencil::fusedFaceDiffPencil(hi, carryY, tnx, scale, out[c] + o);
        // z: same through the plane cache.
        Real* carryZ = cacheZ +
                       (static_cast<std::size_t>(c) * ny + jj) * nx + ii0;
        if (kk == 0) {
          pencil::faceFluxPencil(p[c] + a, p[3] + a, ip.sz, tnx, carryZ);
        }
        pencil::faceFluxPencil(p[c] + a + ip.sz, p[3] + a + ip.sz, ip.sz,
                               tnx, hi);
        pencil::fusedFaceDiffPencil(hi, carryZ, tnx, scale, out[c] + o);
      }
    }
  }
}

/// Fused sweep of one tile for a single component (component loop outside
/// the whole tile-wavefront execution — the "3D flux cache" variant).
/// Single-entry caches: cacheX[kk*ny + jj], cacheY[kk*nx + ii],
/// cacheZ[jj*nx + ii] (the seed layout, already row-contiguous).
void sweepTileCLO(const FArrayBox& phi0, FArrayBox& phi1, int c,
                  const FArrayBox& vel, const Box& tb, const Box& valid,
                  Real* cacheX, Real* cacheY, Real* cacheZ, Real* fface,
                  Real* hi, Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, tb, c, 1);
  const Idx ip(phi0);
  const Idx io(phi1);
  const Idx iv(vel);
  const Real* pc = phi0.dataPtr(c);
  Real* outc = phi1.dataPtr(c);
  const Real* velx = vel.dataPtr(0);
  const Real* vely = vel.dataPtr(1);
  const Real* velz = vel.dataPtr(2);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int ii0 = tb.lo(0) - valid.lo(0);
  const int tnx = tb.size(0);
  for (int k = tb.lo(2); k <= tb.hi(2); ++k) {
    const int kk = k - valid.lo(2);
    for (int j = tb.lo(1); j <= tb.hi(1); ++j) {
      const int jj = j - valid.lo(1);
      const std::int64_t a = ip(tb.lo(0), j, k);
      const std::int64_t o = io(tb.lo(0), j, k);
      const std::int64_t av = iv(tb.lo(0), j, k);
      Real* slotX = cacheX + static_cast<std::size_t>(kk) * ny + jj;
      fface[0] = ii0 == 0 ? kernels::evalFlux2(
                                kernels::evalFlux1(pc + a, 1), velx[av])
                          : *slotX;
      pencil::evalFlux1MulPencil(pc + a + 1, 1, velx + av + 1, tnx,
                                 fface + 1);
      pencil::accumulatePencil(fface, 1, tnx, scale, outc + o);
      *slotX = fface[tnx];
      Real* carryY = cacheY + static_cast<std::size_t>(kk) * nx + ii0;
      if (jj == 0) {
        pencil::evalFlux1MulPencil(pc + a, ip.sy, vely + av, tnx, carryY);
      }
      pencil::evalFlux1MulPencil(pc + a + ip.sy, ip.sy, vely + av + iv.sy,
                                 tnx, hi);
      pencil::fusedFaceDiffPencil(hi, carryY, tnx, scale, outc + o);
      Real* carryZ = cacheZ + static_cast<std::size_t>(jj) * nx + ii0;
      if (kk == 0) {
        pencil::evalFlux1MulPencil(pc + a, ip.sz, velz + av, tnx, carryZ);
      }
      pencil::evalFlux1MulPencil(pc + a + ip.sz, ip.sz, velz + av + iv.sz,
                                 tnx, hi);
      pencil::fusedFaceDiffPencil(hi, carryZ, tnx, scale, outc + o);
    }
  }
}

/// Shared implementation: nThreads == 1 runs the tiles serially in
/// lexicographic order (a valid topological order of the tile dependences);
/// otherwise tiles execute wavefront-by-wavefront with an OpenMP team.
/// `pool` supplies per-thread row scratch when parallel (nullptr serial).
void blockedWFCore(const VariantConfig& cfg, const FArrayBox& phi0,
                   FArrayBox& phi1, const Box& valid, Workspace& shared,
                   WorkspacePool* pool, int nThreads, Real scale) {
  const sched::TileSet tiles = makeTileSet(cfg, valid);
  const sched::TileWavefronts fronts(tiles);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const std::size_t entries = cfg.comp == ComponentLoop::Inside
                                  ? static_cast<std::size_t>(kNumComp)
                                  : 1u;
  Real* cacheX = shared.buffer(
      Slot::CarryX, static_cast<std::size_t>(ny) * nz * entries);
  Real* cacheY = shared.buffer(
      Slot::CarryY, static_cast<std::size_t>(nx) * nz * entries);
  Real* cacheZ = shared.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * entries);
  // Two row-scratch buffers per thread: the (nx+1)-face x row and the
  // high-face y/z row.
  const std::size_t scratchLen = 2 * (static_cast<std::size_t>(nx) + 1);

  if (cfg.comp == ComponentLoop::Inside) {
#pragma omp parallel num_threads(nThreads) if (nThreads > 1)
    {
      Workspace& mine = pool ? (*pool)[omp_get_thread_num()] : shared;
      Real* fface = mine.buffer(Slot::Extra, scratchLen);
      Real* hi = fface + nx + 1;
      for (std::size_t w = 0; w < fronts.count(); ++w) {
        const auto& front = fronts.front(w);
#pragma omp for schedule(dynamic)
        for (std::size_t t = 0; t < front.size(); ++t) {
          sweepTileCLI(phi0, phi1, tiles.tileBox(front[t]), valid, cacheX,
                       cacheY, cacheZ, fface, hi, scale);
        }
      }
    }
  } else {
    FArrayBox& vel = shared.fab(Slot::Velocity, faceSupersetBox(valid), 3);
#pragma omp parallel num_threads(nThreads) if (nThreads > 1)
    {
      Workspace& mine = pool ? (*pool)[omp_get_thread_num()] : shared;
      Real* fface = mine.buffer(Slot::Extra, scratchLen);
      Real* hi = fface + nx + 1;
      precomputeFaceVelocity(phi0, vel, valid, omp_get_num_threads(),
                             omp_get_thread_num());
#pragma omp barrier
      for (int c = 0; c < kNumComp; ++c) {
        for (std::size_t w = 0; w < fronts.count(); ++w) {
          const auto& front = fronts.front(w);
#pragma omp for schedule(dynamic)
          for (std::size_t t = 0; t < front.size(); ++t) {
            sweepTileCLO(phi0, phi1, c, vel, tiles.tileBox(front[t]),
                         valid, cacheX, cacheY, cacheZ, fface, hi, scale);
          }
        }
      }
    }
  }
}

} // namespace

void blockedWFBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale) {
  blockedWFCore(cfg, phi0, phi1, valid, ws, nullptr, 1, scale);
}

void blockedWFBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                          FArrayBox& phi1, const Box& valid,
                          WorkspacePool& pool, int nThreads, Real scale) {
  blockedWFCore(cfg, phi0, phi1, valid, pool[0], &pool, nThreads, scale);
}

BlockedWFCaches blockedWFPrepareBox(const VariantConfig& cfg,
                                    Workspace& shared, const Box& valid) {
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const std::size_t entries = cfg.comp == ComponentLoop::Inside
                                  ? static_cast<std::size_t>(kNumComp)
                                  : 1u;
  BlockedWFCaches caches;
  caches.cacheX = shared.buffer(
      Slot::CarryX, static_cast<std::size_t>(ny) * nz * entries);
  caches.cacheY = shared.buffer(
      Slot::CarryY, static_cast<std::size_t>(nx) * nz * entries);
  caches.cacheZ = shared.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * entries);
  if (cfg.comp == ComponentLoop::Outside) {
    caches.vel = &shared.fab(Slot::Velocity, faceSupersetBox(valid), 3);
  }
  return caches;
}

void blockedWFPrecomputeVelocity(const FArrayBox& phi0, FArrayBox& vel,
                                 const Box& valid) {
  precomputeFaceVelocity(phi0, vel, valid, 1, 0);
}

void blockedWFRunTile(const VariantConfig& cfg, const FArrayBox& phi0,
                      FArrayBox& phi1, int comp,
                      const BlockedWFCaches& caches, const Box& tileBox,
                      const Box& valid, Workspace& scratch, Real scale) {
  const int nx = valid.size(0);
  const std::size_t scratchLen = 2 * (static_cast<std::size_t>(nx) + 1);
  Real* fface = scratch.buffer(Slot::Extra, scratchLen);
  Real* hi = fface + nx + 1;
  if (cfg.comp == ComponentLoop::Inside) {
    sweepTileCLI(phi0, phi1, tileBox, valid, caches.cacheX, caches.cacheY,
                 caches.cacheZ, fface, hi, scale);
  } else {
    sweepTileCLO(phi0, phi1, comp, *caches.vel, tileBox, valid,
                 caches.cacheX, caches.cacheY, caches.cacheZ, fface, hi,
                 scale);
  }
}

} // namespace fluxdiv::core::detail
