#pragma once
// FluxDivRunner: the public entry point that executes one flux-divergence
// evaluation (one "time step" of the exemplar's stencil pipeline) over a
// LevelData under a chosen scheduling variant and thread count. This is
// the object the examples, tests, and every figure bench drive.
//
// In Debug builds (or with -DFLUXDIV_VERIFY_SCHEDULES=ON) the runner
// additionally proves the configured schedule legal before the first
// execution over each box shape — see src/analysis and
// docs/static-analysis.md. Release builds compile the gate out entirely.
// A second Debug gate (-DFLUXDIV_VERIFY_KERNELS=ON elsewhere) probes each
// variant's kernels differentially once per config and proves the
// declared stencil footprints sound before the first real execution.
//
// With FLUXDIV_ADVISE=1 in the environment, the runner also consults the
// static cost model (docs/cost-model.md) before the first execution over
// each box shape and prints a stderr warning when the requested variant is
// predicted capacity-bound on this machine's caches. Advisory only: it
// never changes execution or throws.

#include <memory>
#include <vector>

#include "analysis/verifygate.hpp"
#include "core/variant.hpp"
#include "core/workspace.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::core {

class LevelExecutor;

/// Executes the exemplar under one VariantConfig.
///
/// Usage:
///   FluxDivRunner runner(makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
///                                       ParallelGranularity::WithinBox),
///                        nThreads);
///   phi0.exchange();                    // ghosts must be current
///   runner.run(phi0, phi1);             // phi1 += div(F(phi0))
class FluxDivRunner {
public:
  FluxDivRunner(VariantConfig cfg, int nThreads);
  ~FluxDivRunner(); // out of line: LevelExecutor is incomplete here

  [[nodiscard]] const VariantConfig& config() const { return cfg_; }
  [[nodiscard]] int nThreads() const { return nThreads_; }

  /// Accumulate scale * (flux differences of phi0) into phi1 over every
  /// valid cell. phi0's ghost cells must already be exchanged; phi1's
  /// ghosts (if any) are not touched. Levels must share a layout and have
  /// kNumComp components.
  ///
  /// With FLUXDIV_LEVEL_POLICY=parallel|hybrid in the environment, the
  /// level is executed by the task-parallel LevelExecutor instead of the
  /// loops below (bit-identical results; see docs/perf.md). Unset, empty,
  /// or "sequential" keeps this path.
  void run(const grid::LevelData& phi0, grid::LevelData& phi1,
           grid::Real scale = 1.0);

  /// run() without the FLUXDIV_LEVEL_POLICY override: always the
  /// configured granularity's level loop. The LevelExecutor's sequential
  /// policy calls this, which is why the delegation cannot recurse.
  void runLevel(const grid::LevelData& phi0, grid::LevelData& phi1,
                grid::Real scale = 1.0);

  /// Run the legality gate and cost advisory for boxes of this shape (both
  /// cached per extent, both possibly compiled/opted out — see above).
  /// runBox/run call this themselves; the task-parallel executor calls it
  /// up front so graph tasks need not.
  void prepare(const grid::Box& valid) {
    verifyKernels();
    verifySchedule(valid);
    adviseSchedule(valid);
  }

  /// Single-box entry point: phi0 must cover valid.grow(kNumGhost) with
  /// ghosts filled; phi1 must cover `valid`. Uses the configured parallel
  /// granularity (WithinBox parallelizes inside this one box).
  void runBox(const grid::FArrayBox& phi0, grid::FArrayBox& phi1,
              const grid::Box& valid, grid::Real scale = 1.0);

  /// Scratch-storage accounting for the Table I experiment: the largest
  /// per-thread peak and the sum of per-thread peaks since construction.
  /// Covers the delegated LevelExecutor's workers too, so the numbers stay
  /// meaningful under FLUXDIV_LEVEL_POLICY.
  [[nodiscard]] std::size_t maxPeakWorkspaceBytes() const;
  [[nodiscard]] std::size_t totalPeakWorkspaceBytes() const;

private:
  void runBoxSerial(const grid::FArrayBox& phi0, grid::FArrayBox& phi1,
                    const grid::Box& valid, Workspace& ws,
                    grid::Real scale);

  /// Schedule-legality gate (no-op unless FLUXDIV_SCHEDULE_VERIFY is
  /// defined): lowers the variant over this box shape and runs the
  /// ScheduleVerifier, throwing std::logic_error with the diagnostic on
  /// an illegal schedule. Legality is translation-invariant, so results
  /// are cached per box extent.
  void verifySchedule(const grid::Box& valid);

  /// Opt-in cost advisory (FLUXDIV_ADVISE=1): run the static cost model
  /// over this box shape and warn on stderr when the variant is predicted
  /// capacity-bound. Cached per box extent; never throws.
  void adviseSchedule(const grid::Box& valid);

  /// Kernel footprint contract gate (no-op unless FLUXDIV_KERNEL_VERIFY
  /// is defined): differentially probe this variant's whole-pipeline
  /// kernels over a small sampled box and prove the declared stencil
  /// footprints sound (analysis/kernelcheck), throwing std::logic_error
  /// on an undeclared access. Probed once per config name process-wide.
  void verifyKernels();

  VariantConfig cfg_;
  int nThreads_;
  WorkspacePool pool_;
  analysis::VerifyGate scheduleGate_; ///< box extents proven legal
  std::vector<grid::IntVect> advisedShapes_; ///< box extents already advised
  bool kernelsVerified_ = false; ///< this runner passed the kernel gate
  /// Lazily-built executor backing the FLUXDIV_LEVEL_POLICY override.
  std::unique_ptr<LevelExecutor> levelExec_;
};

} // namespace fluxdiv::core
