// Series-of-loops baseline (paper Sec. IV-A, Fig. 6/7): for each direction,
// separate passes over faces (EvalFlux1), faces again (EvalFlux2), and cells
// (accumulation), with whole-box face-centered temporaries. Axes: component
// loop outside (CLO) or inside (CLI); parallelization over boxes (caller) or
// over z-slabs within the box.
//
// Inner loops go through the pencil layer (kernels/pencil.hpp): every pass
// walks whole unit-stride x-rows, so the stage structure the legality
// checker and cost model reason about — which pass touches which region,
// separated by which barriers — is exactly the seed's; only the per-row
// arithmetic is vectorized. CLI passes keep the component loop inside the
// j/k face loops (the axis under study) but hoist it out of the x-row so
// each (row, component) becomes one pencil; per (cell, component) the
// expressions and their evaluation order are unchanged.

#include <omp.h>

#include "core/exec_common.hpp"
#include "kernels/pencil.hpp"
#include "sched/partition.hpp"

namespace fluxdiv::core::detail {

namespace {

using sched::zSlab;
namespace pencil = kernels::pencil;

/// EvalFlux1 pass for component c over face region `fb` of direction d.
void facePhiPass(const FArrayBox& phi0, FArrayBox& flux, int d, int c,
                 const Box& fb) {
  if (fb.empty()) {
    return;
  }
  const Idx ip(phi0);
  const Idx ix(flux);
  const std::int64_t s = ip.stride(d);
  const Real* pc = phi0.dataPtr(c);
  Real* out = flux.dataPtr(c);
  const int nx = fb.size(0);
  for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      pencil::evalFlux1Pencil(pc + ip(fb.lo(0), j, k), s, nx,
                              out + ix(fb.lo(0), j, k));
    }
  }
}

/// EvalFlux2 pass: flux[c] *= velocity over `fb` (velocity given as a
/// component of `vel`, which may alias another component of `flux`).
void fluxPass(FArrayBox& flux, const FArrayBox& vel, int velComp, int c,
              const Box& fb) {
  if (fb.empty()) {
    return;
  }
  const Idx ix(flux);
  const Idx iv(vel);
  Real* f = flux.dataPtr(c);
  const Real* v = vel.dataPtr(velComp);
  // CLO multiplies the velocity component by itself last — the one case
  // where the in-place row and the velocity row are the same memory, which
  // the restrict-qualified fluxPencil must not see.
  const bool selfMultiply = (f == v);
  const int nx = fb.size(0);
  for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      Real* frow = f + ix(fb.lo(0), j, k);
      if (selfMultiply) {
        pencil::fluxSquarePencil(frow, nx);
      } else {
        pencil::fluxPencil(frow, v + iv(fb.lo(0), j, k), nx);
      }
    }
  }
}

/// Accumulation pass: phi1[c] += scale * (flux[cell + e_d] - flux[cell])
/// over cell region `cb`.
void accumulatePass(const FArrayBox& flux, FArrayBox& phi1, int d, int c,
                    const Box& cb, Real scale) {
  if (cb.empty()) {
    return;
  }
  FLUXDIV_SHADOW_WRITE(phi1, cb, c, 1);
  const Idx ix(flux);
  const Idx io(phi1);
  const std::int64_t s = ix.stride(d);
  const Real* f = flux.dataPtr(c);
  Real* out = phi1.dataPtr(c);
  const int nx = cb.size(0);
  for (int k = cb.lo(2); k <= cb.hi(2); ++k) {
    for (int j = cb.lo(1); j <= cb.hi(1); ++j) {
      pencil::accumulatePencil(f + ix(cb.lo(0), j, k), s, nx, scale,
                               out + io(cb.lo(0), j, k));
    }
  }
}

/// Velocity copy: vel[0] = flux[velComp] over `fb` (CLI needs the original
/// velocity preserved because EvalFlux2 overwrites flux in place).
void velocityCopy(const FArrayBox& flux, FArrayBox& vel, int velComp,
                  const Box& fb) {
  if (fb.empty()) {
    return;
  }
  const Idx ix(flux);
  const Idx iv(vel);
  const Real* f = flux.dataPtr(velComp);
  Real* v = vel.dataPtr(0);
  const int nx = fb.size(0);
  for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      pencil::copyPencil(f + ix(fb.lo(0), j, k), nx,
                         v + iv(fb.lo(0), j, k));
    }
  }
}

/// CLI EvalFlux1 pass: the component loop sits inside the face loops (per
/// x-row: a row's five component pencils are produced together, touching
/// the far-apart component planes of the [x,y,z,c] layout — the locality
/// cost the paper attributes to this axis).
void cliFacePhi(const FArrayBox& phi0, FArrayBox& flux, int d,
                const Box& fb) {
  if (fb.empty()) {
    return;
  }
  const Idx ip(phi0);
  const Idx ix(flux);
  const std::int64_t s = ip.stride(d);
  const ConstComps pc(phi0);
  const MutComps fx(flux);
  const int nx = fb.size(0);
  for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      const std::int64_t pbase = ip(fb.lo(0), j, k);
      const std::int64_t fbase = ix(fb.lo(0), j, k);
      for (int c = 0; c < kNumComp; ++c) {
        pencil::evalFlux1Pencil(pc[c] + pbase, s, nx, fx[c] + fbase);
      }
    }
  }
}

/// CLI EvalFlux2 pass: flux[c] *= vel with the component loop innermost.
void cliFlux2(FArrayBox& flux, const FArrayBox& vel, const Box& fb) {
  if (fb.empty()) {
    return;
  }
  const Idx ix(flux);
  const Idx iv(vel);
  const MutComps fx(flux);
  const Real* v = vel.dataPtr(0);
  const int nx = fb.size(0);
  for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      const std::int64_t fbase = ix(fb.lo(0), j, k);
      const Real* vrow = v + iv(fb.lo(0), j, k);
      for (int c = 0; c < kNumComp; ++c) {
        pencil::fluxPencil(fx[c] + fbase, vrow, nx);
      }
    }
  }
}

/// CLI accumulation pass with the component loop innermost.
void cliAccumulate(const FArrayBox& flux, FArrayBox& phi1, int d,
                   const Box& cb, Real scale) {
  if (cb.empty()) {
    return;
  }
  FLUXDIV_SHADOW_WRITE(phi1, cb, 0, kNumComp);
  const Idx ix(flux);
  const Idx io(phi1);
  const std::int64_t s = ix.stride(d);
  const ConstComps fx(flux);
  const MutComps out(phi1);
  const int nx = cb.size(0);
  for (int k = cb.lo(2); k <= cb.hi(2); ++k) {
    for (int j = cb.lo(1); j <= cb.hi(1); ++j) {
      const std::int64_t fbase = ix(cb.lo(0), j, k);
      const std::int64_t obase = io(cb.lo(0), j, k);
      for (int c = 0; c < kNumComp; ++c) {
        pencil::accumulatePencil(fx[c] + fbase, s, nx, scale,
                                 out[c] + obase);
      }
    }
  }
}

/// Body executed by every thread of the within-box team (or once, serially,
/// with nth == 1). Stage regions are partitioned into z-slabs; barriers
/// separate stages whose reads cross slab boundaries.
void baselineBody(const VariantConfig& cfg, const FArrayBox& phi0,
                  FArrayBox& phi1, const Box& valid, FArrayBox& flux,
                  FArrayBox* vel, Real scale, int nth, int tid) {
  // Synchronize the within-box team between dependent stages. Guarded so
  // the serial path (nth == 1) stays barrier-free: the overlapped-tile
  // executor calls this body per tile from inside its own OpenMP region,
  // where an unconditional orphaned barrier would deadlock the team.
  auto sync = [nth] {
    if (nth > 1) {
#pragma omp barrier
    }
  };
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = valid.faceBox(d);
    const int vd = kernels::velocityComp(d);
    const Box faceSlab = zSlab(fb, nth, tid);
    const Box cellSlab = zSlab(valid, nth, tid);

    if (cfg.comp == ComponentLoop::Outside) {
      // Line 6 of Fig. 6: component loop outside the face loop.
      for (int c = 0; c < kNumComp; ++c) {
        facePhiPass(phi0, flux, d, c, faceSlab);
      }
sync();
      // CLO avoids the velocity temporary by multiplying the velocity
      // component last (the loop reordering noted in Sec. IV-A).
      for (int c = 0; c < kNumComp; ++c) {
        if (c == vd) {
          continue;
        }
        fluxPass(flux, flux, vd, c, faceSlab);
        sync();
        accumulatePass(flux, phi1, d, c, cellSlab, scale);
      }
      fluxPass(flux, flux, vd, vd, faceSlab);
      sync();
      accumulatePass(flux, phi1, d, vd, cellSlab, scale);
      sync();
    } else {
      // CLI: EvalFlux2 overwrites flux in place, so the velocity component
      // must be copied out first (the Velocity temporary of Table I).
      cliFacePhi(phi0, flux, d, faceSlab);
      velocityCopy(flux, *vel, vd, faceSlab);
      cliFlux2(flux, *vel, faceSlab);
      sync();
      cliAccumulate(flux, phi1, d, cellSlab, scale);
      sync();
    }
  }
}

} // namespace

void baselineBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                       FArrayBox& phi1, const Box& valid, Workspace& ws,
                       Real scale) {
  FArrayBox& flux = ws.fab(Slot::Flux, faceSupersetBox(valid), kNumComp);
  // CLO reorders the component loop to multiply the velocity component
  // last, eliminating the Velocity temporary (Sec. IV-A).
  FArrayBox* vel =
      cfg.comp == ComponentLoop::Inside
          ? &ws.fab(Slot::Velocity, faceSupersetBox(valid), 1)
          : nullptr;
  baselineBody(cfg, phi0, phi1, valid, flux, vel, scale, 1, 0);
}

void baselineBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                         FArrayBox& phi1, const Box& valid,
                         WorkspacePool& pool, int nThreads, Real scale) {
  // Whole-box temporaries are shared by the team, drawn from thread 0's
  // workspace before the region opens.
  Workspace& shared = pool[0];
  FArrayBox& flux = shared.fab(Slot::Flux, faceSupersetBox(valid), kNumComp);
  FArrayBox* vel =
      cfg.comp == ComponentLoop::Inside
          ? &shared.fab(Slot::Velocity, faceSupersetBox(valid), 1)
          : nullptr;
#pragma omp parallel num_threads(nThreads)
  {
    baselineBody(cfg, phi0, phi1, valid, flux, vel, scale,
                 omp_get_num_threads(), omp_get_thread_num());
  }
}

} // namespace fluxdiv::core::detail
