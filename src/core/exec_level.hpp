#pragma once
// LevelExecutor: task-parallel execution of one flux-divergence evaluation
// over a whole LevelData on the persistent work-stealing TaskPool
// (core/taskpool.hpp). Where FluxDivRunner's level loop parallelizes with
// OpenMP inside one box (or one omp-for over boxes), the executor lowers
// the level to a dependency-tracked graph of (box, phase/tile) tasks:
//
//   BoxSequential  boxes in sequence, within-box parallelism — exactly the
//                  runner's behavior today (delegates to it).
//   BoxParallel    one task per box running the family's serial schedule;
//                  the classic Chombo-style box decomposition, minus the
//                  OpenMP fork/join and static-schedule barriers.
//   Hybrid         (box x tile) tasks: independent tiles for overlapped
//                  tiles, wavefront-ordered tile pipelines (per box, with
//                  front-to-front dependencies over sched/tiles
//                  TileWavefronts) for the blocked-wavefront family.
//                  Baseline/shift-fuse have no independent intra-box units,
//                  so hybrid falls back to box-parallel for them.
//
// runStep() additionally overlaps the ghost exchange with interior
// compute: the exchange's CopyOps become ready-at-start tasks and each
// box's work splits into an interior task (no ghost dependence) plus
// halo-fringe tasks that depend only on the ops feeding their slab, so
// interior cells stream while halos copy (docs/perf.md).
//
// Every policy produces bit-identical phi1 to the sequential ordering:
// the families accumulate each cell's x, y, z flux differences in the
// same per-cell order, and fluxes are pure functions of phi0, so any
// region/tile decomposition reassociates nothing.

#include <memory>
#include <string>
#include <vector>

#include "analysis/verifygate.hpp"
#include "core/runner.hpp"
#include "core/taskpool.hpp"
#include "core/variant.hpp"
#include "core/workspace.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::analysis {
struct TaskGraphModel;
struct GraphTask;
} // namespace fluxdiv::analysis

namespace fluxdiv::core {

struct LevelExecOptions {
  LevelPolicy policy = LevelPolicy::BoxSequential;
  /// runStep() overlaps ghost exchange with interior compute (parallel
  /// policies only; the sequential policy always takes the exchange()
  /// barrier).
  bool overlapExchange = true;
  /// Pin pool workers to hardware threads (best effort; Linux only).
  bool pin = false;
  /// Adversarial-replay execution (ReplayOrder::None = normal
  /// work-stealing): the graph runs serially in a hostile deterministic
  /// order, for shadow-checked determinism suites. The order and seed are
  /// appended to any shadow-violation message so failures replay exactly.
  ReplayMode replay{};
};

class LevelExecutor {
public:
  LevelExecutor(VariantConfig cfg, int nThreads,
                LevelExecOptions opts = {});
  ~LevelExecutor();
  LevelExecutor(const LevelExecutor&) = delete;
  LevelExecutor& operator=(const LevelExecutor&) = delete;

  [[nodiscard]] const VariantConfig& config() const { return cfg_; }
  [[nodiscard]] LevelPolicy policy() const { return opts_.policy; }
  [[nodiscard]] int nThreads() const { return nThreads_; }

  /// phi1 += scale * div(F(phi0)) over every valid cell. phi0's ghosts
  /// must already be exchanged (same contract as FluxDivRunner::run).
  void run(const grid::LevelData& phi0, grid::LevelData& phi1,
           grid::Real scale = 1.0);

  /// Ghost exchange + evaluation as one task graph: phi0.exchangeAsync()'s
  /// ops run as tasks alongside interior compute, and halo-dependent tasks
  /// wait only for the ops feeding them. The hot-path replacement for the
  /// exchange(); run() pair.
  void runStep(grid::LevelData& phi0, grid::LevelData& phi1,
               grid::Real scale = 1.0);

  /// Lower the task graph this executor would run (run() when
  /// `withExchange` is false, runStep() when true) to its analysis-layer
  /// model — per-task labels, exact read/write footprints, dependency
  /// edges — without executing anything. Feed the result to
  /// analysis::checkTaskGraph (the same model the FLUXDIV_GRAPH_VERIFY
  /// gate checks before first execution). Throws std::invalid_argument
  /// for the sequential policy, which has no task graph.
  [[nodiscard]] analysis::TaskGraphModel
  lowerGraph(grid::LevelData& phi0, grid::LevelData& phi1,
             bool withExchange);

  /// Zero-fill every box of `level` under the worker that owns its tasks
  /// (sticky box -> thread affinity), so first-touch places each box's
  /// pages on the owner's NUMA node. Pair with grid::Init::Deferred
  /// allocation; harmless (one redundant fill) after Init::Zero.
  void firstTouch(grid::LevelData& level);

  /// Largest per-worker scratch peak across the task pool and the
  /// delegated sequential runner.
  [[nodiscard]] std::size_t maxPeakWorkspaceBytes() const;
  /// Sum of all scratch peaks: per-worker pools plus the per-box shared
  /// blocked-wavefront caches.
  [[nodiscard]] std::size_t totalPeakWorkspaceBytes() const;

private:
  /// Per-destination-box exchange-op tasks: ids plus the ghost regions
  /// they fill, for intersecting against compute-task footprints.
  struct OpTasks {
    std::vector<std::vector<std::pair<int, grid::Box>>> byBox;
  };

  /// Builds the executable TaskGraph and (optionally) its analysis-layer
  /// mirror from the same call sites, so the verified model cannot drift
  /// from the graph that actually runs. `note(task)` hands back the
  /// model-side task for footprint annotation (null when not mirroring).
  struct GraphBuild {
    TaskGraph& graph;
    analysis::TaskGraphModel* model = nullptr;

    int addTask(TaskGraph::Fn fn, int owner, std::string label);
    void addDep(int before, int after);
    [[nodiscard]] analysis::GraphTask* note(int task) const;
  };

  [[nodiscard]] int ownerOf(std::size_t box) const {
    return static_cast<int>(box % static_cast<std::size_t>(nThreads_));
  }

  void validate(const grid::LevelData& phi0,
                const grid::LevelData& phi1) const;

  /// Append this level's compute tasks to `build` under the configured
  /// policy. `ops` is null when ghosts are already current (run()); when
  /// non-null (runStep()), ghost-reading tasks get edges from the ops
  /// intersecting their read footprint.
  void buildComputeTasks(GraphBuild& build, const grid::LevelData& phi0,
                         grid::LevelData& phi1, grid::Real scale,
                         const OpTasks* ops);

  void buildBoxTasks(GraphBuild& build, const grid::LevelData& phi0,
                     grid::LevelData& phi1, grid::Real scale,
                     const OpTasks* ops);
  void buildOverlappedTileTasks(GraphBuild& build,
                                const grid::LevelData& phi0,
                                grid::LevelData& phi1, grid::Real scale,
                                const OpTasks* ops);
  void buildBlockedWFTasks(GraphBuild& build, const grid::LevelData& phi0,
                           grid::LevelData& phi1, grid::Real scale,
                           const OpTasks* ops);

  /// Fill the model header (name, validBoxes, ghost contract) for this
  /// executor's graph over `phi0`'s layout.
  void initGraphModel(analysis::TaskGraphModel& model,
                      const grid::LevelData& phi0,
                      bool withExchange) const;

  /// Shape key shared by the graph/comm gates: both graphs and exchange
  /// plans are pure functions of the layout's box shapes (box count,
  /// first valid box, level hull — plus the per-gate suffix the callers
  /// append), so one verification covers every later step with the same
  /// level shape.
  static std::string levelShapeKey(const grid::LevelData& phi0);

  /// FLUXDIV_COMM_VERIFY support: on the first runStep() over a new
  /// (layout, nghost) shape, prove the level's exchange plan exact,
  /// matched, and deadlock-free (analysis/commcheck) under rank
  /// partitions {1,2,4,8}; throws std::logic_error with the witness
  /// diagnostics on failure. Later steps with the same shape are free.
  void verifyCommOnce(const grid::LevelData& phi0);

  /// Run `graph` honoring opts_.replay.
  void dispatch(TaskGraph& graph);

  /// "LevelExecutor::run" / "...::runStep", plus the replay order and
  /// seed when replaying, so shadow failures are reproducible.
  [[nodiscard]] std::string whereTag(const char* entry) const;

  VariantConfig cfg_;
  int nThreads_;
  LevelExecOptions opts_;
  FluxDivRunner runner_;  ///< sequential policy + verify/advise gates
  WorkspacePool pool_;    ///< per-worker scratch for task bodies
  std::vector<Workspace> boxShared_; ///< per-box blocked-WF cache storage
  TaskPool taskPool_;
  analysis::VerifyGate graphGate_; ///< FLUXDIV_GRAPH_VERIFY, once per shape
  analysis::VerifyGate commGate_;  ///< FLUXDIV_COMM_VERIFY, once per shape
};

} // namespace fluxdiv::core
