#pragma once
// LevelExecutor: task-parallel execution of one flux-divergence evaluation
// over a whole LevelData on the persistent work-stealing TaskPool
// (core/taskpool.hpp). Where FluxDivRunner's level loop parallelizes with
// OpenMP inside one box (or one omp-for over boxes), the executor lowers
// the level to a dependency-tracked graph of (box, phase/tile) tasks:
//
//   BoxSequential  boxes in sequence, within-box parallelism — exactly the
//                  runner's behavior today (delegates to it).
//   BoxParallel    one task per box running the family's serial schedule;
//                  the classic Chombo-style box decomposition, minus the
//                  OpenMP fork/join and static-schedule barriers.
//   Hybrid         (box x tile) tasks: independent tiles for overlapped
//                  tiles, wavefront-ordered tile pipelines (per box, with
//                  front-to-front dependencies over sched/tiles
//                  TileWavefronts) for the blocked-wavefront family.
//                  Baseline/shift-fuse have no independent intra-box units,
//                  so hybrid falls back to box-parallel for them.
//
// runStep() additionally overlaps the ghost exchange with interior
// compute: the exchange's CopyOps become ready-at-start tasks and each
// box's work splits into an interior task (no ghost dependence) plus
// halo-fringe tasks that depend only on the ops feeding their slab, so
// interior cells stream while halos copy (docs/perf.md).
//
// Every policy produces bit-identical phi1 to the sequential ordering:
// the families accumulate each cell's x, y, z flux differences in the
// same per-cell order, and fluxes are pure functions of phi0, so any
// region/tile decomposition reassociates nothing.

#include <memory>
#include <vector>

#include "core/runner.hpp"
#include "core/taskpool.hpp"
#include "core/variant.hpp"
#include "core/workspace.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::core {

struct LevelExecOptions {
  LevelPolicy policy = LevelPolicy::BoxSequential;
  /// runStep() overlaps ghost exchange with interior compute (parallel
  /// policies only; the sequential policy always takes the exchange()
  /// barrier).
  bool overlapExchange = true;
  /// Pin pool workers to hardware threads (best effort; Linux only).
  bool pin = false;
};

class LevelExecutor {
public:
  LevelExecutor(VariantConfig cfg, int nThreads,
                LevelExecOptions opts = {});
  ~LevelExecutor();
  LevelExecutor(const LevelExecutor&) = delete;
  LevelExecutor& operator=(const LevelExecutor&) = delete;

  [[nodiscard]] const VariantConfig& config() const { return cfg_; }
  [[nodiscard]] LevelPolicy policy() const { return opts_.policy; }
  [[nodiscard]] int nThreads() const { return nThreads_; }

  /// phi1 += scale * div(F(phi0)) over every valid cell. phi0's ghosts
  /// must already be exchanged (same contract as FluxDivRunner::run).
  void run(const grid::LevelData& phi0, grid::LevelData& phi1,
           grid::Real scale = 1.0);

  /// Ghost exchange + evaluation as one task graph: phi0.exchangeAsync()'s
  /// ops run as tasks alongside interior compute, and halo-dependent tasks
  /// wait only for the ops feeding them. The hot-path replacement for the
  /// exchange(); run() pair.
  void runStep(grid::LevelData& phi0, grid::LevelData& phi1,
               grid::Real scale = 1.0);

  /// Zero-fill every box of `level` under the worker that owns its tasks
  /// (sticky box -> thread affinity), so first-touch places each box's
  /// pages on the owner's NUMA node. Pair with grid::Init::Deferred
  /// allocation; harmless (one redundant fill) after Init::Zero.
  void firstTouch(grid::LevelData& level);

  /// Largest per-worker scratch peak across the task pool and the
  /// delegated sequential runner.
  [[nodiscard]] std::size_t maxPeakWorkspaceBytes() const;
  /// Sum of all scratch peaks: per-worker pools plus the per-box shared
  /// blocked-wavefront caches.
  [[nodiscard]] std::size_t totalPeakWorkspaceBytes() const;

private:
  /// Per-destination-box exchange-op tasks: ids plus the ghost regions
  /// they fill, for intersecting against compute-task footprints.
  struct OpTasks {
    std::vector<std::vector<std::pair<int, grid::Box>>> byBox;
  };

  [[nodiscard]] int ownerOf(std::size_t box) const {
    return static_cast<int>(box % static_cast<std::size_t>(nThreads_));
  }

  void validate(const grid::LevelData& phi0,
                const grid::LevelData& phi1) const;

  /// Append this level's compute tasks to `graph` under the configured
  /// policy. `ops` is null when ghosts are already current (run()); when
  /// non-null (runStep()), ghost-reading tasks get edges from the ops
  /// intersecting their read footprint.
  void buildComputeTasks(TaskGraph& graph, const grid::LevelData& phi0,
                         grid::LevelData& phi1, grid::Real scale,
                         const OpTasks* ops);

  void buildBoxTasks(TaskGraph& graph, const grid::LevelData& phi0,
                     grid::LevelData& phi1, grid::Real scale,
                     const OpTasks* ops);
  void buildOverlappedTileTasks(TaskGraph& graph,
                                const grid::LevelData& phi0,
                                grid::LevelData& phi1, grid::Real scale,
                                const OpTasks* ops);
  void buildBlockedWFTasks(TaskGraph& graph, const grid::LevelData& phi0,
                           grid::LevelData& phi1, grid::Real scale,
                           const OpTasks* ops);

  VariantConfig cfg_;
  int nThreads_;
  LevelExecOptions opts_;
  FluxDivRunner runner_;  ///< sequential policy + verify/advise gates
  WorkspacePool pool_;    ///< per-worker scratch for task bodies
  std::vector<Workspace> boxShared_; ///< per-box blocked-WF cache storage
  TaskPool taskPool_;
};

} // namespace fluxdiv::core
