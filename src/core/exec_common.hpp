#pragma once
// Internal helpers shared by the schedule-family executors. Not part of the
// public API (include only from src/core/*.cpp and white-box tests).

#include <array>
#include <cstdint>

#include "core/variant.hpp"
#include "core/workspace.hpp"
#include "grid/farraybox.hpp"
#include "kernels/exemplar.hpp"
#include "sched/tiles.hpp"

// Shadow-memory instrumentation of the executors' phi1 commits (see
// grid/shadow.hpp). Each expansion records "the calling worker wrote this
// region of these components in the current epoch"; the legal schedules
// keep every (cell, component) of the output single-writer per
// evaluation, so any cross-worker double write is a real race. Expands to
// nothing unless FLUXDIV_SHADOW_CHECK is on.
#ifdef FLUXDIV_SHADOW_CHECK
#include <omp.h>

#include <stdexcept>
#include <string>

#include "core/taskpool.hpp"

namespace fluxdiv::core::detail {

/// Worker identity for shadow attribution: the task-pool worker id when
/// called from inside a TaskPool run, else the OpenMP thread id. Raw
/// std::threads all report omp_get_thread_num() == 0, which would fold
/// every pool worker into one and hide cross-worker races under the
/// task-parallel level executor.
inline int shadowWorkerId() {
  const int pool = TaskPool::currentWorker();
  return pool >= 0 ? pool : omp_get_thread_num();
}

/// Fail loudly when the shadow memory caught a race during the evaluation
/// that just finished. Call only after all workers have joined.
inline void throwOnShadowViolations(grid::FArrayBox& fab,
                                    const char* where) {
  grid::ShadowMemory& shadow = fab.shadow();
  if (shadow.violationCount() == 0) {
    return;
  }
  std::string msg = std::string(where) + ": shadow memory detected " +
                    std::to_string(shadow.violationCount()) +
                    " violation(s)";
  for (const auto& v : shadow.violations()) {
    msg += "\n  " + v.message();
  }
  throw std::runtime_error(msg);
}

} // namespace fluxdiv::core::detail

#define FLUXDIV_SHADOW_WRITE(fab, region, c0, nc)                          \
  (fab).shadowRecordWrite((region), (c0), (nc),                            \
                          ::fluxdiv::core::detail::shadowWorkerId())
#else
#define FLUXDIV_SHADOW_WRITE(fab, region, c0, nc) ((void)0)
#endif

namespace fluxdiv::core::detail {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::Real;
using kernels::kNumComp;
using kernels::kNumGhost;

/// Linear-offset calculator for one FArrayBox, hoisting the box origin and
/// strides out of hot loops (the paper's cached-pointer-offset idiom).
/// Thin executor-side name for the grid layer's single stride accessor, so
/// padded-pitch allocations are picked up everywhere automatically.
struct Idx : grid::FabIndexer {
  explicit Idx(const FArrayBox& f) : grid::FabIndexer(f.indexer()) {}
};

/// Component base pointers of a const solution fab.
struct ConstComps {
  std::array<const Real*, kNumComp> p{};
  explicit ConstComps(const FArrayBox& f) {
    for (int c = 0; c < kNumComp; ++c) {
      p[static_cast<std::size_t>(c)] = f.dataPtr(c);
    }
  }
  const Real* operator[](int c) const {
    return p[static_cast<std::size_t>(c)];
  }
};

/// Component base pointers of a mutable fab.
struct MutComps {
  std::array<Real*, kNumComp> p{};
  explicit MutComps(FArrayBox& f) {
    for (int c = 0; c < kNumComp; ++c) {
      p[static_cast<std::size_t>(c)] = f.dataPtr(c);
    }
  }
  Real* operator[](int c) const { return p[static_cast<std::size_t>(c)]; }
};

/// Tile decomposition of a valid region under a tiled config, honoring the
/// TileAspect extension (pencil/slab tiles keep leading directions whole).
inline sched::TileSet makeTileSet(const VariantConfig& cfg,
                                  const Box& valid) {
  IntVect tile;
  switch (cfg.aspect) {
  case TileAspect::Pencil:
    tile = IntVect(valid.size(0), cfg.tileSize, cfg.tileSize);
    break;
  case TileAspect::Slab:
    tile = IntVect(valid.size(0), valid.size(1), cfg.tileSize);
    break;
  case TileAspect::Cube:
  default:
    tile = IntVect::unit(cfg.tileSize);
    break;
  }
  return sched::TileSet(valid, tile);
}

/// The face-centered superset box [lo, hi+1] that contains faceBox(d) for
/// every direction d. Baseline and basic-OT flux temporaries are allocated
/// on it — exactly Table I's (N+1)^3 (or (T+1)^3) footprint.
inline Box faceSupersetBox(const Box& b) {
  return {b.lo(), b.hi() + IntVect::unit(1)};
}

// ---------------------------------------------------------------------------
// Per-box entry points implemented in the exec_*.cpp files. All assume:
//   - phi0 covers valid.grow(kNumGhost) with ghosts filled,
//   - phi1 covers valid,
//   - both have kNumComp components.
// Serial variants take the calling thread's workspace. Parallel-within-box
// variants open their own OpenMP region with `nThreads` threads and draw
// per-thread scratch from `pool`.
// ---------------------------------------------------------------------------

void baselineBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                       FArrayBox& phi1, const Box& valid, Workspace& ws,
                       Real scale);
void baselineBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                         FArrayBox& phi1, const Box& valid,
                         WorkspacePool& pool, int nThreads, Real scale);

void shiftFuseBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale);
void shiftFuseBoxWavefront(const VariantConfig& cfg, const FArrayBox& phi0,
                           FArrayBox& phi1, const Box& valid,
                           WorkspacePool& pool, int nThreads, Real scale);

void blockedWFBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale);
void blockedWFBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                          FArrayBox& phi1, const Box& valid,
                          WorkspacePool& pool, int nThreads, Real scale);

/// One overlapped tile, runnable from any parallel context (used by the
/// hybrid box-x-tile granularity in the runner).
void overlappedRunTile(const VariantConfig& cfg, const FArrayBox& phi0,
                       FArrayBox& phi1, const Box& tileBox, Workspace& ws,
                       Real scale);

void overlappedBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                         FArrayBox& phi1, const Box& valid, Workspace& ws,
                         Real scale);
void overlappedBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                           FArrayBox& phi1, const Box& valid,
                           WorkspacePool& pool, int nThreads, Real scale);

/// Serial dispatch of one whole box (or any rectangular subregion of one:
/// every family accumulates each cell's x, y, z flux differences in the
/// same per-cell order, so region decompositions are bit-identical). The
/// calling thread runs the family's serial schedule with workspace `ws`.
/// Shared by FluxDivRunner's sequential level loop and the task-parallel
/// level executor's whole-box / interior / halo-fringe tasks.
inline void runBoxSerialDispatch(const VariantConfig& cfg,
                                 const FArrayBox& phi0, FArrayBox& phi1,
                                 const Box& valid, Workspace& ws,
                                 Real scale) {
  switch (cfg.family) {
  case ScheduleFamily::SeriesOfLoops:
    baselineBoxSerial(cfg, phi0, phi1, valid, ws, scale);
    break;
  case ScheduleFamily::ShiftFuse:
    shiftFuseBoxSerial(cfg, phi0, phi1, valid, ws, scale);
    break;
  case ScheduleFamily::BlockedWavefront:
    blockedWFBoxSerial(cfg, phi0, phi1, valid, ws, scale);
    break;
  case ScheduleFamily::OverlappedTiles:
    overlappedBoxSerial(cfg, phi0, phi1, valid, ws, scale);
    break;
  }
}

// ---------------------------------------------------------------------------
// Blocked-wavefront entry points for the task-parallel level executor's
// hybrid policy: one box's tiles become tasks ordered by the existing
// sched/tiles wavefronts, sharing the box's co-dimension caches. The
// caches live in a per-box Workspace sized once (single-threaded) by
// blockedWFPrepareBox; concurrent tile tasks then receive stable pointers
// instead of re-querying the workspace (Workspace bookkeeping is not
// thread-safe).
// ---------------------------------------------------------------------------

/// Pointers into one box's shared blocked-wavefront caches. `vel` is the
/// face-velocity fab of the component-loop-outside config (null for CLI).
struct BlockedWFCaches {
  Real* cacheX = nullptr;
  Real* cacheY = nullptr;
  Real* cacheZ = nullptr;
  FArrayBox* vel = nullptr;
};

/// Size (or re-validate) `shared`'s cache buffers for a box of shape
/// `valid` and return the pointers. Call single-threaded before the box's
/// tile tasks run.
BlockedWFCaches blockedWFPrepareBox(const VariantConfig& cfg,
                                    Workspace& shared, const Box& valid);

/// Whole-box face-velocity precompute of the CLO config (the pipeline's
/// pre-stage task; runs on the box's owner worker).
void blockedWFPrecomputeVelocity(const FArrayBox& phi0, FArrayBox& vel,
                                 const Box& valid);

/// One blocked-wavefront tile sweep under the box's shared caches.
/// `comp` is the component for CLO configs (ignored for CLI, pass -1).
/// `scratch` supplies the calling worker's private row scratch.
void blockedWFRunTile(const VariantConfig& cfg, const FArrayBox& phi0,
                      FArrayBox& phi1, int comp,
                      const BlockedWFCaches& caches, const Box& tileBox,
                      const Box& valid, Workspace& scratch, Real scale);

} // namespace fluxdiv::core::detail
