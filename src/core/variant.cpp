#include "core/variant.hpp"

namespace fluxdiv::core {

namespace {

const char* parSuffix(ParallelGranularity par) {
  switch (par) {
  case ParallelGranularity::OverBoxes:
    return "P>=Box";
  case ParallelGranularity::WithinBox:
    return "P<Box";
  case ParallelGranularity::HybridBoxTile:
    return "P=Box*Tile";
  }
  return "?";
}

const char* aspectSuffix(TileAspect aspect) {
  switch (aspect) {
  case TileAspect::Cube:
    return "";
  case TileAspect::Pencil:
    return "-pencil";
  case TileAspect::Slab:
    return "-slab";
  }
  return "";
}

const char* compTag(ComponentLoop comp) {
  return comp == ComponentLoop::Outside ? "CLO" : "CLI";
}

} // namespace

std::string VariantConfig::name() const {
  std::string n;
  switch (family) {
  case ScheduleFamily::SeriesOfLoops:
    n = std::string("Baseline-") + compTag(comp);
    break;
  case ScheduleFamily::ShiftFuse:
    n = std::string("Shift-Fuse-") + compTag(comp);
    if (par == ParallelGranularity::WithinBox) {
      n += "-WF"; // within-box shift-fuse runs as a cell wavefront
    }
    break;
  case ScheduleFamily::BlockedWavefront:
    n = std::string("Blocked WF-") + compTag(comp) + "-" +
        std::to_string(tileSize) + aspectSuffix(aspect);
    break;
  case ScheduleFamily::OverlappedTiles:
    n = (intra == IntraTileSchedule::Basic ? "Basic-Sched OT-"
                                           : "Shift-Fuse OT-") +
        std::to_string(tileSize) + aspectSuffix(aspect);
    if (order == TileOrder::Morton) {
      n += "-morton";
    }
    if (comp == ComponentLoop::Inside) {
      n += "-CLI";
    }
    break;
  }
  return n + ": " + parSuffix(par);
}

bool VariantConfig::validFor(int boxSize) const {
  const bool tiled = family == ScheduleFamily::BlockedWavefront ||
                     family == ScheduleFamily::OverlappedTiles;
  if (par == ParallelGranularity::HybridBoxTile &&
      family != ScheduleFamily::OverlappedTiles) {
    return false; // only independent tiles can be flattened across boxes
  }
  if (order != TileOrder::Lexicographic &&
      family != ScheduleFamily::OverlappedTiles) {
    return false; // traversal order only applies to independent tiles
  }
  if (!tiled) {
    return tileSize == 0 && aspect == TileAspect::Cube;
  }
  return tileSize > 0 && tileSize <= boxSize;
}

VariantConfig makeBaseline(ParallelGranularity par, ComponentLoop comp) {
  return {ScheduleFamily::SeriesOfLoops, IntraTileSchedule::Basic, par, comp,
          0};
}

VariantConfig makeShiftFuse(ParallelGranularity par, ComponentLoop comp) {
  return {ScheduleFamily::ShiftFuse, IntraTileSchedule::Basic, par, comp, 0};
}

VariantConfig makeBlockedWF(int tileSize, ParallelGranularity par,
                            ComponentLoop comp) {
  return {ScheduleFamily::BlockedWavefront, IntraTileSchedule::ShiftFuse,
          par, comp, tileSize};
}

VariantConfig makeOverlapped(IntraTileSchedule intra, int tileSize,
                             ParallelGranularity par, ComponentLoop comp) {
  return {ScheduleFamily::OverlappedTiles, intra, par, comp, tileSize};
}

std::vector<VariantConfig> enumerateVariants(int boxSize,
                                             bool includeExtensions) {
  std::vector<VariantConfig> out;
  const ParallelGranularity pars[] = {ParallelGranularity::OverBoxes,
                                      ParallelGranularity::WithinBox};
  const ComponentLoop comps[] = {ComponentLoop::Outside,
                                 ComponentLoop::Inside};
  for (auto par : pars) {
    for (auto comp : comps) {
      out.push_back(makeBaseline(par, comp));
      out.push_back(makeShiftFuse(par, comp));
    }
  }
  for (auto par : pars) {
    for (auto comp : comps) {
      for (int t : kTileSizes) {
        if (t < boxSize) { // paper: tiling only for strictly larger boxes
          out.push_back(makeBlockedWF(t, par, comp));
        }
      }
    }
  }
  for (auto par : pars) {
    for (auto intra :
         {IntraTileSchedule::Basic, IntraTileSchedule::ShiftFuse}) {
      for (int t : kTileSizes) {
        if (t < boxSize) {
          out.push_back(makeOverlapped(intra, t, par));
        }
      }
    }
  }
  if (includeExtensions) {
    for (int t : kTileSizes) {
      if (t >= boxSize) {
        continue;
      }
      // Hybrid granularity (level-wide (box, tile) pool).
      out.push_back(makeOverlapped(IntraTileSchedule::ShiftFuse, t,
                                   ParallelGranularity::HybridBoxTile));
      // Non-cubic tile aspects.
      for (auto aspect : {TileAspect::Pencil, TileAspect::Slab}) {
        VariantConfig cfg = makeOverlapped(
            IntraTileSchedule::ShiftFuse, t,
            ParallelGranularity::WithinBox);
        cfg.aspect = aspect;
        out.push_back(cfg);
      }
      // Morton traversal of independent tiles.
      VariantConfig morton = makeOverlapped(
          IntraTileSchedule::ShiftFuse, t, ParallelGranularity::OverBoxes);
      morton.order = TileOrder::Morton;
      out.push_back(morton);
    }
  }
  return out;
}

const char* levelPolicyName(LevelPolicy policy) {
  switch (policy) {
  case LevelPolicy::BoxSequential:
    return "sequential";
  case LevelPolicy::BoxParallel:
    return "parallel";
  case LevelPolicy::Hybrid:
    return "hybrid";
  }
  return "?";
}

bool parseLevelPolicy(const std::string& text, LevelPolicy& out) {
  for (const LevelPolicy policy : kLevelPolicies) {
    if (text == levelPolicyName(policy)) {
      out = policy;
      return true;
    }
  }
  // Accept the unambiguous long forms too (CI matrix readability).
  if (text == "box-sequential") {
    out = LevelPolicy::BoxSequential;
    return true;
  }
  if (text == "box-parallel") {
    out = LevelPolicy::BoxParallel;
    return true;
  }
  return false;
}

const char* stepFuseName(StepFuse fuse) {
  switch (fuse) {
  case StepFuse::Eager:
    return "eager";
  case StepFuse::Staged:
    return "staged";
  case StepFuse::Fused:
    return "fused";
  case StepFuse::CommAvoid:
    return "commavoid";
  }
  return "?";
}

bool parseStepFuse(const std::string& text, StepFuse& out) {
  for (const StepFuse fuse : kStepFuseModes) {
    if (text == stepFuseName(fuse)) {
      out = fuse;
      return true;
    }
  }
  // Accept the hyphenated long form too (CI matrix readability).
  if (text == "comm-avoid" || text == "comm-avoiding") {
    out = StepFuse::CommAvoid;
    return true;
  }
  return false;
}

} // namespace fluxdiv::core
