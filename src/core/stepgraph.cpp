#include "core/stepgraph.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stepcheck.hpp"
#include "analysis/verifygate.hpp"
#include "core/exec_common.hpp"
#include "core/runner.hpp"
#include "kernels/footprint.hpp"
#include "kernels/laplacian.hpp"

namespace fluxdiv::core {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::LevelData;
using grid::Real;
using kernels::kNumComp;
using kernels::kNumGhost;

// planStepHalos moved to core/stepprogram.cpp (fluxdiv_variant) so the
// analysis library can plan halos without linking the executors.

namespace {

#ifdef FLUXDIV_GRAPH_VERIFY
void throwOnStepGraphDiagnostics(const analysis::TaskGraphModel& model) {
  const analysis::GraphCheckReport report =
      analysis::checkTaskGraph(model, /*findRemovable=*/false);
  if (report.ok()) {
    return;
  }
  std::vector<std::string> msgs;
  msgs.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    msgs.push_back(d.message());
  }
  throw std::logic_error(analysis::verifyFailureMessage(
      "StepGraphExecutor: task-graph verification failed for '" +
          model.name + "'",
      msgs));
}
#endif

/// The layout/physics half of the S4 rebind signature
/// (analysis/stepcheck.hpp) — exactly the capture key fields beyond the
/// program itself.
analysis::StepShapeKey stepShapeKeyOf(const LevelData& u,
                                      const StepRhsSpec& rhs) {
  analysis::StepShapeKey key;
  key.domainBox = u.layout().domain().box();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    key.periodic[static_cast<std::size_t>(d)] =
        u.layout().domain().isPeriodic(d);
  }
  key.boxSize = u.layout().boxSize();
  key.nGhost = u.nGhost();
  key.nComp = u.nComp();
  key.invDx = rhs.invDx;
  key.dissipation = rhs.dissipation;
  key.hasBoundary = rhs.boundary != nullptr;
  return key;
}

#ifdef FLUXDIV_STEP_VERIFY
/// FLUXDIV_VERIFY_STEP gate: before the first capture of each distinct
/// (program, fuse, layout, physics) signature, prove the fuse mode's halo
/// plan semantically equivalent to the eager reference (stepcheck S1/S2).
/// Tightness (S3) is advisory and priced offline by fluxdiv_stepcheck, so
/// the gate skips it.
void verifyStepOnce(const StepProgram& prog, StepFuse fuse,
                    const StepHaloPlan& plan, const LevelData& u,
                    const StepRhsSpec& rhs) {
  static analysis::VerifyGate gate("FLUXDIV_VERIFY_STEP", true);
  const std::uint64_t sig =
      analysis::stepSignature(prog, fuse, stepShapeKeyOf(u, rhs));
  if (!gate.shouldVerify(analysis::stepSignatureHex(sig))) {
    return;
  }
  analysis::StepCheckOptions opts;
  opts.boxSize = u.validBox(0).size(0);
  opts.nBoxes = static_cast<int>(u.size());
  opts.checkTightness = false;
  const analysis::StepCheckReport report =
      analysis::checkStepProgram(prog, fuse, plan, opts);
  if (report.ok()) {
    return;
  }
  std::vector<std::string> msgs;
  msgs.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    msgs.push_back(d.message());
  }
  throw std::logic_error(analysis::verifyFailureMessage(
      "StepGraphExecutor: step-program verification failed under fuse '" +
          std::string(stepFuseName(fuse)) + "'",
      msgs));
}
#endif

/// Executable graph + analysis mirror + dependence tracker for one
/// dispatch. addTask() keeps the graph and the model in lockstep (same
/// ids, same labels, built from the same calls, so the model cannot drift
/// from what runs); access() records a footprint in the model AND derives
/// the dependency edges: any earlier access of the same (slot, box) with
/// a component/region overlap where either side writes becomes an edge.
/// Program order makes every derived edge point forward, so the graphs
/// are acyclic by construction (G1 re-proves it independently).
class Lowering {
public:
  Lowering(std::string name, const LevelData& u) {
    model.name = std::move(name);
    model.ghostsPreExchanged = false;
    for (std::size_t b = 0; b < u.size(); ++b) {
      model.validBoxes.push_back(u.validBox(b));
    }
  }

  int addTask(TaskGraph::Fn fn, int owner, std::string label,
              bool exchangeOp = false, bool orderingOnly = false) {
    const int id = graph.addTask(std::move(fn), owner, label);
    model.addTask(std::move(label));
    model.tasks.back().exchangeOp = exchangeOp;
    model.tasks.back().orderingOnly = orderingOnly;
    preds_.emplace_back();
    return id;
  }

  void access(int task, int slot, std::size_t box, const Box& region,
              int nc, bool write) {
    if (region.empty()) {
      return;
    }
    auto& entries = log_[{slot, box}];
    for (const Entry& e : entries) {
      if (e.task == task || (!write && !e.write) ||
          !e.region.intersects(region)) {
        continue;
      }
      if (preds_[static_cast<std::size_t>(task)].insert(e.task).second) {
        graph.addDep(e.task, task);
        model.addEdge(e.task, task);
      }
    }
    entries.push_back({task, region, write});
    analysis::TaskAccess a;
    a.field = analysis::FieldId::Phi0;
    a.box = box;
    a.slot = slot;
    a.comp0 = 0;
    a.nComp = nc;
    a.region = region;
    auto& t = model.tasks[static_cast<std::size_t>(task)];
    (write ? t.writes : t.reads).push_back(a);
  }

  TaskGraph graph;
  analysis::TaskGraphModel model;
  /// RHS-output (slot, box) pairs whose shadow epochs run() re-arms and
  /// checks. Recorded symbolically (not as FArrayBox*) so a rebind to a
  /// reallocated LevelData needs no epoch-list rebuild.
  std::vector<std::pair<int, std::size_t>> epochTargets;
  std::vector<bool> rhsWritten;      ///< per slot, within this dispatch

private:
  struct Entry {
    int task;
    Box region;
    bool write;
  };
  std::map<std::pair<int, std::size_t>, std::vector<Entry>> log_;
  std::vector<std::set<int>> preds_;
};

/// Everything lowerOp() needs about the capture being built. `slots` is
/// the lowering-time view (layouts, copiers, valid boxes); `tab` is the
/// capture's *runtime* slot table, which task lambdas capture and
/// dereference on every execution so rebinding an entry (layout-keyed
/// reuse after the solution is reallocated) retargets every task without
/// re-lowering.
struct LowerEnv {
  const VariantConfig& cfg;
  WorkspacePool& ws;
  int nThreads;
  const StepProgram& prog;
  StepRhsSpec rhs;
  std::vector<LevelData*> slots; ///< program slot -> backing storage
  LevelData* const* tab;         ///< runtime slot table (Capture-owned)
  const StepHaloPlan& plan;
  LevelPolicy policy;
  StepFuse fuse;

  [[nodiscard]] int ownerOf(std::size_t b) const {
    return static_cast<int>(b % static_cast<std::size_t>(nThreads));
  }
  [[nodiscard]] std::string stepTag(const StepOp& op) const {
    return prog.nSteps > 1 ? " t" + std::to_string(op.step) : std::string();
  }
};

struct NamedRegion {
  Box region;
  std::string tag;
};

/// Task decomposition of one RHS evaluation over one box. Comm-avoiding
/// runs the whole widened region as one task (the deep exchange already
/// happened; there is nothing left to overlap). The hybrid policy turns
/// overlapped tiles into (box x tile) tasks — the sparse cross-stage
/// tiling: a tile's stage-(i+1) task depends only on the stage-i tasks
/// whose footprints it reads, not on the whole level. Other policies use
/// the level executor's interior + six halo-fringe slabs so interior
/// compute overlaps the exchange (whole-box when the box is too small,
/// or under the sequential policy where coarse tasks mirror the seed
/// loop's granularity). The pieces always partition the region, and every
/// family accumulates each cell's flux differences in the same per-cell
/// order, so any decomposition is bit-identical.
std::vector<NamedRegion> rhsRegions(const LowerEnv& env, const Box& valid,
                                    int w) {
  std::vector<NamedRegion> out;
  if (env.fuse == StepFuse::CommAvoid) {
    out.push_back({valid.grow(w), w > 0 ? "w" + std::to_string(w) : "all"});
    return out;
  }
  if (env.policy == LevelPolicy::Hybrid &&
      env.cfg.family == ScheduleFamily::OverlappedTiles &&
      env.cfg.tileSize > 0) {
    const sched::TileSet tiles = detail::makeTileSet(env.cfg, valid);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      out.push_back({tiles.tileBox(t), "tile" + std::to_string(t)});
    }
    return out;
  }
  const int g = kNumGhost;
  const Box interior = valid.grow(-g);
  if (env.policy == LevelPolicy::BoxSequential || interior.empty()) {
    out.push_back({valid, "all"});
    return out;
  }
  const Box zmid = valid.grow(2, -g);
  const Box zymid = zmid.grow(1, -g);
  out.push_back({interior, "int"});
  out.push_back({valid.lowSlab(2, g), "z-lo"});
  out.push_back({valid.highSlab(2, g), "z-hi"});
  out.push_back({zmid.lowSlab(1, g), "y-lo"});
  out.push_back({zmid.highSlab(1, g), "y-hi"});
  out.push_back({zymid.lowSlab(0, g), "x-lo"});
  out.push_back({zymid.highSlab(0, g), "x-hi"});
  return out;
}

/// Task decomposition of one stage combine (copy/axpy/scale) over one
/// box: per-tile under the hybrid policy's sparse tiling, else one task
/// per box (already a parallel improvement over the eager integrator's
/// serial whole-level sweeps).
std::vector<NamedRegion> combineRegions(const LowerEnv& env,
                                        const Box& valid, int w) {
  std::vector<NamedRegion> out;
  if (env.fuse != StepFuse::CommAvoid &&
      env.policy == LevelPolicy::Hybrid &&
      env.cfg.family == ScheduleFamily::OverlappedTiles &&
      env.cfg.tileSize > 0) {
    const sched::TileSet tiles = detail::makeTileSet(env.cfg, valid);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      out.push_back({tiles.tileBox(t), " tile" + std::to_string(t)});
    }
    return out;
  }
  out.push_back({valid.grow(w), w > 0 ? " w" + std::to_string(w) : ""});
  return out;
}

void lowerExchange(Lowering& low, LowerEnv& env, const StepOp& op) {
  LevelData& level = *env.slots[static_cast<std::size_t>(op.dst)];
  const auto& ops = level.copier().ops();
  const int nc = level.nComp();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const grid::CopyOp cop = ops[i];
    LevelData* const* tab = env.tab;
    const auto slot = static_cast<std::size_t>(op.dst);
    const int t = low.addTask(
        [tab, slot, cop, nc](int) {
          LevelData& lp = *tab[slot];
          lp[cop.destBox].copyShifted(lp[cop.srcBox], cop.destRegion,
                                      cop.srcShift, 0, 0, nc);
        },
        env.ownerOf(cop.destBox),
        env.prog.slotName(op.dst) + " " + level.copier().opLabel(i) +
            env.stepTag(op),
        /*exchangeOp=*/true);
    low.access(t, op.dst, cop.srcBox, cop.srcRegion(), nc, false);
    low.access(t, op.dst, cop.destBox, cop.destRegion, nc, true);
  }
}

void lowerBoundaryFill(Lowering& low, LowerEnv& env, const StepOp& op) {
  const grid::BoundaryFiller* bf = env.rhs.boundary;
  if (bf == nullptr) {
    return;
  }
  LevelData& level = *env.slots[static_cast<std::size_t>(op.dst)];
  const grid::ProblemDomain& domain = level.layout().domain();
  const Box dom = domain.box();
  const int nc = level.nComp();
  const int g = level.nGhost();
  for (std::size_t b = 0; b < level.size(); ++b) {
    const Box valid = level.validBox(b);
    const Box alloc = valid.grow(g);
    // One task per (box, dimension), chained d-1 -> d by the write/write
    // overlap of their corner slabs (the tracker orders them in program
    // order), preserving fill()'s dimension-sweep semantics where later
    // dimensions rebuild edge/corner ghosts from earlier results.
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (!bf->active(valid, d)) {
        continue;
      }
      LevelData* const* tab = env.tab;
      const auto slot = static_cast<std::size_t>(op.dst);
      const int t = low.addTask(
          [bf, tab, slot, b, d](int) { bf->fillBoxDim(*tab[slot], b, d); },
          env.ownerOf(b),
          "bc " + env.prog.slotName(op.dst) + " box" + std::to_string(b) +
              " d" + std::to_string(d) + env.stepTag(op));
      const auto& type = bf->spec().type[static_cast<std::size_t>(d)];
      for (int side = 0; side < 2; ++side) {
        const bool atFace = side == 0 ? valid.lo(d) == dom.lo(d)
                                      : valid.hi(d) == dom.hi(d);
        if (!atFace || type[static_cast<std::size_t>(side)] ==
                           grid::BCType::None) {
          continue;
        }
        // Writes: the g ghost planes beyond this face, spanning the full
        // allocated cross-section (corners included, as fillSide does).
        low.access(t, op.dst, b,
                   side == 0 ? alloc.lowSlab(d, g) : alloc.highSlab(d, g),
                   nc, true);
        // Reads: the 4 interior planes the mirror/cubic/Dirichlet rules
        // consume. Cross-section: dimensions e < d span the full
        // allocation (their beyond-domain ghosts were rebuilt by the
        // e-sweep, which happens-before via the corner overlap);
        // dimensions e > d are clipped to the domain when non-periodic —
        // fillSide does read those beyond-domain cells, but whatever it
        // computes from them is overwritten by the later e-sweep, so the
        // effective dataflow (what G2/G3 must order and cover) excludes
        // them.
        IntVect rlo = alloc.lo();
        IntVect rhi = alloc.hi();
        if (side == 0) {
          rlo[d] = valid.lo(d);
          rhi[d] = std::min(valid.lo(d) + 3, valid.hi(d));
        } else {
          rhi[d] = valid.hi(d);
          rlo[d] = std::max(valid.hi(d) - 3, valid.lo(d));
        }
        for (int e = d + 1; e < grid::SpaceDim; ++e) {
          if (!domain.isPeriodic(e)) {
            rlo[e] = std::max(rlo[e], dom.lo(e));
            rhi[e] = std::min(rhi[e], dom.hi(e));
          }
        }
        low.access(t, op.dst, b, Box(rlo, rhi), nc, false);
      }
    }
  }
}

void lowerRhsEval(Lowering& low, LowerEnv& env, const StepOp& op, int w) {
  LevelData& dst = *env.slots[static_cast<std::size_t>(op.dst)];
  const int nc = dst.nComp();
  const bool firstWrite = !low.rhsWritten[static_cast<std::size_t>(op.dst)];
  low.rhsWritten[static_cast<std::size_t>(op.dst)] = true;
  LevelData* const* tab = env.tab;
  const auto srcSlot = static_cast<std::size_t>(op.src);
  const auto dstSlot = static_cast<std::size_t>(op.dst);
  for (std::size_t b = 0; b < dst.size(); ++b) {
    const Box valid = dst.validBox(b);
    if (firstWrite) {
      low.epochTargets.emplace_back(op.dst, b);
    } else {
      // Shadow-epoch barrier: the slot is being re-written by a later
      // stage, which the per-epoch write detector would flag as a
      // cross-worker double write. The barrier task re-arms the epoch;
      // its conservative whole-fab footprint (orderingOnly: G3 ignores
      // it) sequences it after every earlier access of this fab and
      // before every later one — exactly the WAR/WAW ordering the
      // re-write needs anyway, so no parallelism beyond that is lost.
      const int t = low.addTask(
          [tab, dstSlot, b](int) {
#ifdef FLUXDIV_SHADOW_CHECK
            (*tab[dstSlot])[b].shadowBeginEpoch();
#else
            (void)tab;
            (void)dstSlot;
            (void)b;
#endif
          },
          env.ownerOf(b),
          "epoch " + env.prog.slotName(op.dst) + " box" +
              std::to_string(b) + env.stepTag(op),
          /*exchangeOp=*/false, /*orderingOnly=*/true);
      low.access(t, op.dst, b, valid.grow(dst.nGhost()), nc, true);
    }
    const VariantConfig* cfg = &env.cfg;
    WorkspacePool* ws = &env.ws;
    const Real scale = -env.rhs.invDx;
    const Real diss = env.rhs.dissipation;
    for (const NamedRegion& nr : rhsRegions(env, valid, w)) {
      const Box region = nr.region;
      const int t = low.addTask(
          [cfg, ws, tab, srcSlot, dstSlot, b, region, nc, scale,
           diss](int worker) {
            const FArrayBox& sf = (*tab[srcSlot])[b];
            FArrayBox& df = (*tab[dstSlot])[b];
            for (int c = 0; c < nc; ++c) {
              df.setVal(0.0, region, c);
            }
            detail::runBoxSerialDispatch(*cfg, sf, df, region,
                                         (*ws)[worker], scale);
            if (diss != 0.0) {
              kernels::addLaplacian(sf, df, region, diss);
            }
            FLUXDIV_SHADOW_WRITE(df, region, 0, nc);
          },
          env.ownerOf(b),
          "rhs " + env.prog.slotName(op.src) + "->" +
              env.prog.slotName(op.dst) + " box" + std::to_string(b) +
              " " + nr.tag + env.stepTag(op));
      for (int d = 0; d < grid::SpaceDim; ++d) {
        low.access(t, op.src, b,
                   kernels::readRegion(kernels::Stage::FusedCell, d,
                                       region),
                   nc, false);
      }
      low.access(t, op.dst, b, region, nc, true);
    }
  }
}

void lowerCombine(Lowering& low, LowerEnv& env, const StepOp& op, int w) {
  LevelData& dst = *env.slots[static_cast<std::size_t>(op.dst)];
  const int nc = dst.nComp();
  LevelData* const* tab = env.tab;
  const auto srcSlot = static_cast<std::size_t>(op.src);
  const auto dstSlot = static_cast<std::size_t>(op.dst);
  for (std::size_t b = 0; b < dst.size(); ++b) {
    const Box valid = dst.validBox(b);
    for (const NamedRegion& nr : combineRegions(env, valid, w)) {
      const Box region = nr.region;
      TaskGraph::Fn fn;
      std::string label;
      switch (op.kind) {
      case StepOpKind::CopySlot:
        fn = [tab, srcSlot, dstSlot, b, region, nc](int) {
          (*tab[dstSlot])[b].copy((*tab[srcSlot])[b], region, 0, 0, nc);
        };
        label = "copy " + env.prog.slotName(op.src) + "->" +
                env.prog.slotName(op.dst);
        break;
      case StepOpKind::AxpySlot: {
        const Real s = op.scale;
        fn = [tab, srcSlot, dstSlot, b, region, s](int) {
          (*tab[dstSlot])[b].plus((*tab[srcSlot])[b], s, region);
        };
        label = "axpy " + env.prog.slotName(op.dst) + "+=" +
                env.prog.slotName(op.src);
        break;
      }
      default: { // ScaleSlot
        const Real s = op.scale;
        fn = [tab, dstSlot, b, region, nc, s](int) {
          FArrayBox& df = (*tab[dstSlot])[b];
          for (int c = 0; c < nc; ++c) {
            Real* p = df.dataPtr(c);
            forEachCell(region, [&](int i, int j, int k) {
              p[df.offset(i, j, k)] *= s;
            });
          }
        };
        label = "scale " + env.prog.slotName(op.dst);
        break;
      }
      }
      const int t =
          low.addTask(std::move(fn), env.ownerOf(b),
                      label + " box" + std::to_string(b) + nr.tag +
                          env.stepTag(op));
      if (op.kind != StepOpKind::ScaleSlot) {
        low.access(t, op.src, b, region, nc, false);
      }
      if (op.kind != StepOpKind::CopySlot) {
        low.access(t, op.dst, b, region, nc, false); // reads old value
      }
      low.access(t, op.dst, b, region, nc, true);
    }
  }
}

void lowerOp(Lowering& low, LowerEnv& env, std::size_t opIdx) {
  const StepOp& op = env.prog.ops[opIdx];
  const int w = env.plan.width[opIdx];
  if (w < 0) {
    return; // dropped by the comm-avoiding transform
  }
  switch (op.kind) {
  case StepOpKind::Exchange:
    lowerExchange(low, env, op);
    break;
  case StepOpKind::BoundaryFill:
    lowerBoundaryFill(low, env, op);
    break;
  case StepOpKind::RhsEval:
    lowerRhsEval(low, env, op, w);
    break;
  case StepOpKind::CopySlot:
  case StepOpKind::AxpySlot:
  case StepOpKind::ScaleSlot:
    lowerCombine(low, env, op, w);
    break;
  }
}

} // namespace

struct StepGraphExecutor::Capture {
  // Layout-signature capture key (docs/serving.md "Graph cache"): graphs
  // are rebuilt only when any of these change. The *identity* of the
  // solution LevelData is deliberately absent — a reallocated level with
  // the same signature rebinds via the slot table below.
  std::vector<StepOp> ops;
  int nSlots = 0;
  Box domainBox;
  std::array<bool, grid::SpaceDim> periodic{};
  IntVect boxSize{0, 0, 0};
  int uGhost = 0;
  int uComp = 0;
  Real invDx = 0.0;
  Real dissipation = 0.0;
  const grid::BoundaryFiller* boundary = nullptr;

  // Lowered state.
  StepFuse fuse = StepFuse::Fused;
  /// S4 rebind signature (analysis::stepSignature over the key above plus
  /// the program and fuse), re-derived and matched on every rebind.
  std::uint64_t signature = 0;
  int depth = kNumGhost;
  const LevelData* boundU = nullptr; ///< what the rebind slot points at
  std::vector<LevelData> stage; ///< Staged/Fused: slots 1..nSlots-1
  std::vector<LevelData> deep;  ///< CommAvoid: all slots at `depth` ghosts
  /// Runtime slot table every task lambda dereferences: entries
  /// 0..nSlots-1 back the program slots, entry nSlots is the external
  /// solution under CommAvoid (copyin/copyout). Heap-allocated once per
  /// capture so its address outlives rebinds.
  std::unique_ptr<LevelData*[]> tab;
  int rebindSlot = 0; ///< tab index that tracks the caller's solution
  struct Phase {
    TaskGraph graph;
    analysis::TaskGraphModel model;
    std::vector<std::pair<int, std::size_t>> epochTargets;
  };
  std::vector<Phase> phases;

  [[nodiscard]] bool matches(const StepProgram& prog, const LevelData& u,
                             const StepRhsSpec& rhs) const {
    const auto sameOp = [](const StepOp& a, const StepOp& b) {
      return a.kind == b.kind && a.dst == b.dst && a.src == b.src &&
             a.scale == b.scale && a.step == b.step;
    };
    const grid::ProblemDomain& dom = u.layout().domain();
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (periodic[static_cast<std::size_t>(d)] != dom.isPeriodic(d)) {
        return false;
      }
    }
    return nSlots == prog.nSlots && domainBox == dom.box() &&
           boxSize == u.layout().boxSize() && uGhost == u.nGhost() &&
           uComp == u.nComp() && invDx == rhs.invDx &&
           dissipation == rhs.dissipation && boundary == rhs.boundary &&
           ops.size() == prog.ops.size() &&
           std::equal(ops.begin(), ops.end(), prog.ops.begin(), sameOp);
  }
};

StepGraphExecutor::StepGraphExecutor(VariantConfig cfg, int nThreads,
                                     StepExecOptions opts)
    : cfg_(cfg),
      nThreads_(opts.sharedPool != nullptr ? opts.sharedPool->nThreads()
                                           : (nThreads < 1 ? 1 : nThreads)),
      opts_(opts),
      ownedPool_(opts.sharedPool != nullptr
                     ? nullptr
                     : std::make_unique<TaskPool>(nThreads_, opts.pin)),
      pool_(opts.sharedPool != nullptr ? opts.sharedPool
                                       : ownedPool_.get()),
      ws_(nThreads_),
      runner_(std::make_unique<FluxDivRunner>(cfg, nThreads_)) {
  if (opts_.fuse == StepFuse::Eager) {
    throw std::invalid_argument(
        "StepGraphExecutor: StepFuse::Eager is the reference path; use "
        "the integrator's eager loop");
  }
}

StepGraphExecutor::~StepGraphExecutor() = default;

StepFuse StepGraphExecutor::effectiveFuse(const StepProgram& prog,
                                          const grid::LevelData& u,
                                          const StepRhsSpec& rhs) const {
  if (opts_.fuse != StepFuse::CommAvoid) {
    return opts_.fuse;
  }
  if (rhs.boundary != nullptr) {
    return StepFuse::Fused; // BCs need the per-stage ghost rebuild
  }
  const int depth = planStepHalos(prog, StepFuse::CommAvoid).depth;
  for (std::size_t b = 0; b < u.size(); ++b) {
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (depth > u.validBox(b).size(d)) {
        return StepFuse::Fused; // halo deeper than the box: no exchange
      }
    }
  }
  return StepFuse::CommAvoid;
}

StepGraphExecutor::Capture&
StepGraphExecutor::ensureCapture(const StepProgram& prog,
                                 grid::LevelData& u,
                                 const StepRhsSpec& rhs) {
  if (capture_ != nullptr && capture_->matches(prog, u, rhs)) {
    stats_.rebuilt = false;
    ++stats_.cacheHits;
    if (capture_->boundU != &u) {
      // Same layout signature, different allocation: rebind the solution
      // entry of the slot table — every cached task lambda now reads and
      // writes the new level. Nothing is re-lowered or re-verified (the
      // graphs depend only on the signature), so the S4 gate first proves
      // the signature of what we are about to run equals the one the
      // graphs were captured (and step-verified) under.
      const std::uint64_t sig = analysis::stepSignature(
          prog, capture_->fuse, stepShapeKeyOf(u, rhs));
      if (sig != capture_->signature) {
        throw std::logic_error(
            "StepGraphExecutor: rebind signature mismatch (captured " +
            analysis::stepSignatureHex(capture_->signature) +
            ", rebinding against " + analysis::stepSignatureHex(sig) +
            "): the cache key admitted a shape the graphs were never "
            "verified for");
      }
      capture_->tab[static_cast<std::size_t>(capture_->rebindSlot)] = &u;
      capture_->boundU = &u;
      ++stats_.rebinds;
    }
    return *capture_;
  }

  if (u.nComp() != kNumComp) {
    throw std::invalid_argument(
        "StepGraphExecutor: solution must have kNumComp components");
  }
  if (u.nGhost() < kNumGhost) {
    throw std::invalid_argument(
        "StepGraphExecutor: solution needs at least kNumGhost ghosts");
  }

  auto cap = std::make_unique<Capture>();
  cap->ops = prog.ops;
  cap->nSlots = prog.nSlots;
  cap->domainBox = u.layout().domain().box();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    cap->periodic[static_cast<std::size_t>(d)] =
        u.layout().domain().isPeriodic(d);
  }
  cap->boxSize = u.layout().boxSize();
  cap->uGhost = u.nGhost();
  cap->uComp = u.nComp();
  cap->invDx = rhs.invDx;
  cap->dissipation = rhs.dissipation;
  cap->boundary = rhs.boundary;
  cap->boundU = &u;
  cap->fuse = effectiveFuse(prog, u, rhs);

  const StepHaloPlan plan = planStepHalos(prog, cap->fuse);
  cap->depth = plan.depth;
  cap->signature =
      analysis::stepSignature(prog, cap->fuse, stepShapeKeyOf(u, rhs));
#ifdef FLUXDIV_STEP_VERIFY
  verifyStepOnce(prog, cap->fuse, plan, u, rhs);
#endif

  // Schedule-legality, kernel-contract, and cost-advisory gates for every
  // box shape the tasks will run (each cached per extent inside the
  // runner, each possibly compiled out — see core/runner.hpp).
  for (std::size_t b = 0; b < u.size(); ++b) {
    runner_->prepare(u.validBox(b));
  }

  // Backing storage. Staged/Fused: the solution slot is the caller's
  // level; stage slots get standard-ghost levels. CommAvoid: every slot —
  // including a private copy of the solution — gets a deepened-halo level
  // so the one up-front exchange can feed the whole widened chain. The
  // runtime slot table carries one extra entry (index nSlots) for the
  // external solution, which CommAvoid's copyin/copyout tasks use; the
  // entry tracking the caller's level is the rebind target.
  std::vector<LevelData*> slots(static_cast<std::size_t>(prog.nSlots));
  cap->tab.reset(new LevelData*[static_cast<std::size_t>(prog.nSlots + 1)]);
  if (cap->fuse == StepFuse::CommAvoid) {
    cap->deep.reserve(static_cast<std::size_t>(prog.nSlots));
    for (int s = 0; s < prog.nSlots; ++s) {
      cap->deep.emplace_back(u.layout(), kNumComp, cap->depth);
      slots[static_cast<std::size_t>(s)] = &cap->deep.back();
    }
    cap->rebindSlot = prog.nSlots;
  } else {
    slots[0] = &u;
    cap->stage.reserve(static_cast<std::size_t>(prog.nSlots - 1));
    for (int s = 1; s < prog.nSlots; ++s) {
      cap->stage.emplace_back(u.layout(), kNumComp, kNumGhost);
      slots[static_cast<std::size_t>(s)] = &cap->stage.back();
    }
    cap->rebindSlot = 0;
  }
  for (int s = 0; s < prog.nSlots; ++s) {
    cap->tab[static_cast<std::size_t>(s)] =
        slots[static_cast<std::size_t>(s)];
  }
  cap->tab[static_cast<std::size_t>(prog.nSlots)] = &u;

  LowerEnv env{cfg_,  ws_,  nThreads_,  prog,      rhs,
               slots, cap->tab.get(), plan, opts_.policy, cap->fuse};
  if (cap->fuse == StepFuse::CommAvoid) {
    env.rhs.boundary = nullptr; // periodic only; BC ops are dropped
  }

  // Phase split: Staged dispatches one graph per stage (cut before each
  // exchange, the eager path's synchronization points); Fused/CommAvoid
  // lower everything into a single graph.
  std::vector<std::vector<std::size_t>> phaseOps;
  if (cap->fuse == StepFuse::Staged) {
    std::vector<std::size_t> cur;
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      if (prog.ops[i].kind == StepOpKind::Exchange && !cur.empty()) {
        phaseOps.push_back(std::move(cur));
        cur.clear();
      }
      cur.push_back(i);
    }
    if (!cur.empty()) {
      phaseOps.push_back(std::move(cur));
    }
  } else {
    std::vector<std::size_t> all(prog.ops.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = i;
    }
    phaseOps.push_back(std::move(all));
  }

  const int nc = u.nComp();
  for (std::size_t p = 0; p < phaseOps.size(); ++p) {
    std::string name = cfg_.name() + " [step " +
                       stepFuseName(cap->fuse) + " " +
                       levelPolicyName(opts_.policy);
    if (phaseOps.size() > 1) {
      name += " phase " + std::to_string(p + 1) + "/" +
              std::to_string(phaseOps.size());
    }
    name += "]";
    Lowering low(std::move(name), u);
    low.rhsWritten.assign(static_cast<std::size_t>(prog.nSlots), false);

    LevelData* const* tab = cap->tab.get();
    const auto extSlot = static_cast<std::size_t>(prog.nSlots);
    if (cap->fuse == StepFuse::CommAvoid && p == 0) {
      // Copy the caller's solution into the deep slot (model slot
      // nSlots identifies the external level).
      for (std::size_t b = 0; b < u.size(); ++b) {
        const Box valid = u.validBox(b);
        const int t = low.addTask(
            [tab, extSlot, b, valid, nc](int) {
              (*tab[0])[b].copy((*tab[extSlot])[b], valid, 0, 0, nc);
            },
            env.ownerOf(b), "copyin u box" + std::to_string(b));
        low.access(t, prog.nSlots, b, valid, nc, false);
        low.access(t, 0, b, valid, nc, true);
      }
    }
    for (const std::size_t i : phaseOps[p]) {
      lowerOp(low, env, i);
    }
    if (cap->fuse == StepFuse::CommAvoid && p + 1 == phaseOps.size()) {
      for (std::size_t b = 0; b < u.size(); ++b) {
        const Box valid = u.validBox(b);
        const int t = low.addTask(
            [tab, extSlot, b, valid, nc](int) {
              (*tab[extSlot])[b].copy((*tab[0])[b], valid, 0, 0, nc);
            },
            env.ownerOf(b), "copyout u box" + std::to_string(b));
        low.access(t, 0, b, valid, nc, false);
        low.access(t, prog.nSlots, b, valid, nc, true);
      }
    }

    Capture::Phase phase;
    phase.graph = std::move(low.graph);
    phase.model = std::move(low.model);
    phase.epochTargets = std::move(low.epochTargets);
    cap->phases.push_back(std::move(phase));
  }

#ifdef FLUXDIV_GRAPH_VERIFY
  // Prove every captured graph race-free before its first execution.
  for (const Capture::Phase& phase : cap->phases) {
    throwOnStepGraphDiagnostics(phase.model);
  }
#endif

  const std::uint64_t hits = stats_.cacheHits;
  const std::uint64_t rebinds = stats_.rebinds;
  stats_ = StepGraphStats{};
  stats_.cacheHits = hits; // lifetime counters survive rebuilds
  stats_.rebinds = rebinds;
  stats_.fuse = cap->fuse;
  stats_.graphCount = cap->phases.size();
  stats_.exchangeDepth = cap->depth;
  stats_.rebuilt = true;
  for (const Capture::Phase& phase : cap->phases) {
    stats_.taskCount += phase.graph.size();
    stats_.edgeCount += phase.model.edgeCount();
    for (const auto& t : phase.model.tasks) {
      if (t.exchangeOp) {
        ++stats_.exchangeOps;
      }
    }
  }

  capture_ = std::move(cap);
  return *capture_;
}

void StepGraphExecutor::run(const StepProgram& prog, grid::LevelData& u,
                            const StepRhsSpec& rhs) {
  Capture& cap = ensureCapture(prog, u, rhs);
  const bool rebuilt = stats_.rebuilt;
  for (std::size_t p = 0; p < cap.phases.size(); ++p) {
    TaskGraph& graph = beginPhase(p);
    if (opts_.replay.order != ReplayOrder::None) {
      pool_->runReplay(graph, opts_.replay);
    } else if (opts_.sharedPool != nullptr) {
      pool_->wait(pool_->submit(graph, opts_.domain));
    } else {
      pool_->run(graph);
    }
    endPhase(p);
  }
  stats_.rebuilt = rebuilt;
}

std::size_t StepGraphExecutor::preparePhases(const StepProgram& prog,
                                             grid::LevelData& u,
                                             const StepRhsSpec& rhs) {
  return ensureCapture(prog, u, rhs).phases.size();
}

TaskGraph& StepGraphExecutor::beginPhase(std::size_t p) {
  if (capture_ == nullptr || p >= capture_->phases.size()) {
    throw std::logic_error(
        "StepGraphExecutor::beginPhase: no capture (call preparePhases) "
        "or phase out of range");
  }
  Capture::Phase& phase = capture_->phases[p];
#ifdef FLUXDIV_SHADOW_CHECK
  for (const auto& [slot, b] : phase.epochTargets) {
    (*capture_->tab[static_cast<std::size_t>(slot)])[b].shadowBeginEpoch();
  }
#endif
  return phase.graph;
}

void StepGraphExecutor::endPhase(std::size_t p) {
  if (capture_ == nullptr || p >= capture_->phases.size()) {
    throw std::logic_error(
        "StepGraphExecutor::endPhase: no capture or phase out of range");
  }
#ifdef FLUXDIV_SHADOW_CHECK
  const Capture::Phase& phase = capture_->phases[p];
  for (const auto& [slot, b] : phase.epochTargets) {
    detail::throwOnShadowViolations(
        (*capture_->tab[static_cast<std::size_t>(slot)])[b],
        "StepGraphExecutor");
  }
#endif
}

std::vector<analysis::TaskGraphModel>
StepGraphExecutor::lowerModels(const StepProgram& prog,
                               grid::LevelData& u,
                               const StepRhsSpec& rhs) {
  Capture& cap = ensureCapture(prog, u, rhs);
  std::vector<analysis::TaskGraphModel> models;
  models.reserve(cap.phases.size());
  for (const Capture::Phase& phase : cap.phases) {
    models.push_back(phase.model);
  }
  return models;
}

} // namespace fluxdiv::core
