#include "core/workspace.hpp"

namespace fluxdiv::core {

grid::FArrayBox& Workspace::fab(Slot slot, const grid::Box& box, int ncomp) {
  auto& f = fabs_[static_cast<std::size_t>(slot)];
  if (!f.defined() || f.box() != box || f.nComp() != ncomp) {
    // Scratch contents are unspecified by contract, so skip the zero fill
    // and let the owning thread's first write place the pages.
    f.define(box, ncomp, grid::Pitch::Padded, grid::Init::Deferred);
    notePeak();
  }
  return f;
}

grid::Real* Workspace::buffer(Slot slot, std::size_t n) {
  auto& b = buffers_[static_cast<std::size_t>(slot)];
  if (b.size() < n) {
    b.resize(n);
    notePeak();
  }
  return b.data();
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const auto& f : fabs_) {
    total += f.bytes();
  }
  for (const auto& b : buffers_) {
    total += b.size() * sizeof(grid::Real);
  }
  return total;
}

void Workspace::clear() {
  for (auto& f : fabs_) {
    f = grid::FArrayBox();
  }
  for (auto& b : buffers_) {
    b.clear();
    b.shrink_to_fit();
  }
}

void Workspace::notePeak() {
  const std::size_t now = bytes();
  if (now > peak_) {
    peak_ = now;
  }
}

std::size_t WorkspacePool::maxPeakBytes() const {
  std::size_t worst = 0;
  for (const auto& ws : pool_) {
    worst = std::max(worst, ws.peakBytes());
  }
  return worst;
}

std::size_t WorkspacePool::totalPeakBytes() const {
  std::size_t total = 0;
  for (const auto& ws : pool_) {
    total += ws.peakBytes();
  }
  return total;
}

} // namespace fluxdiv::core
