#include "core/taskpool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fluxdiv::core {

namespace {

thread_local int tlsWorker = -1;

/// One CPU-relax hint for the first backoff stage: cheaper than a yield
/// syscall and polite to a hyperthread sibling spinning on the deques.
inline void cpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Deque/inbox entries encode (submission slot, task id) in one int64 so
/// tasks of concurrently in-flight graphs can interleave in the same
/// deques. Both halves are non-negative, so every encoded entry is >= 0
/// and the kEmpty/kAbort sentinels stay distinguishable.
constexpr std::int64_t encodeEntry(int slot, int task) {
  return (static_cast<std::int64_t>(slot) << 32) |
         static_cast<std::uint32_t>(task);
}
constexpr int entrySlot(std::int64_t e) { return static_cast<int>(e >> 32); }
constexpr int entryTask(std::int64_t e) {
  return static_cast<int>(e & 0xffffffff);
}

/// Chase-Lev work-stealing deque of encoded entries (Le et al., "Correct
/// and Efficient Work-Stealing for Weak Memory Models"). The owner pushes
/// and pops at the bottom; thieves CAS the top. The ring buffer grows on
/// demand; retired rings stay allocated until destruction so a thief
/// holding a stale ring pointer still reads valid (if outdated) slots —
/// its top CAS then decides whether the read wins.
class StealDeque {
public:
  static constexpr std::int64_t kEmpty = -1;
  static constexpr std::int64_t kAbort = -2;

  StealDeque() : ring_(newRing(kInitialCapacity)) {}

  ~StealDeque() {
    delete[] ring_.load(std::memory_order_relaxed)->slots;
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) {
      delete[] r->slots;
      delete r;
    }
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.
  void push(std::int64_t entry) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t > ring->capacity - 1) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(entry, std::memory_order_relaxed);
    // Publish the slot before the new bottom: a thief's acquire load of
    // bottom that observes b + 1 also observes the slot write.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns kEmpty when the deque is empty (including when a
  /// thief won the race for the last element).
  std::int64_t pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair replaces the paper's relaxed store +
    // seq_cst fence (see file comment in taskpool.hpp).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return kEmpty;
    }
    std::int64_t entry = ring->slot(b).load(std::memory_order_relaxed);
    if (t != b) {
      return entry; // more than one element: no race with thieves
    }
    // Exactly one element: race thieves for it via the top CAS.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      entry = kEmpty; // a thief got it first
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return entry;
  }

  /// Any thread. kAbort signals CAS contention (caller may try another
  /// victim and come back).
  std::int64_t steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return kEmpty;
    }
    Ring* ring = ring_.load(std::memory_order_acquire);
    const std::int64_t entry = ring->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return kAbort;
    }
    return entry;
  }

private:
  static constexpr std::int64_t kInitialCapacity = 64;

  struct Ring {
    std::int64_t capacity = 0; ///< power of two
    std::atomic<std::int64_t>* slots = nullptr;
    std::atomic<std::int64_t>& slot(std::int64_t i) const {
      return slots[i & (capacity - 1)];
    }
  };

  static Ring* newRing(std::int64_t capacity) {
    Ring* r = new Ring;
    r->capacity = capacity;
    r->slots =
        new std::atomic<std::int64_t>[static_cast<std::size_t>(capacity)];
    return r;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = newRing(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    retired_.push_back(old);
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::vector<Ring*> retired_; ///< owner-only (grow happens under push)
};

} // namespace

int TaskGraph::addTask(Fn fn, int owner, std::string label) {
  Node node;
  node.fn = std::move(fn);
  node.owner = owner;
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

std::string TaskGraph::label(int task) const {
  if (task < 0 || task >= static_cast<int>(nodes_.size())) {
    return "task#" + std::to_string(task) + " (out of range)";
  }
  const std::string& l = nodes_[static_cast<std::size_t>(task)].label;
  return l.empty() ? "task#" + std::to_string(task) : l;
}

void TaskGraph::addDep(int before, int after) {
  const auto n = static_cast<int>(nodes_.size());
  if (before < 0 || before >= n || after < 0 || after >= n) {
    throw std::invalid_argument(
        "TaskGraph::addDep: task id out of range: '" + label(before) +
        "' -> '" + label(after) + "' (graph has " + std::to_string(n) +
        " task(s))");
  }
  if (before == after) {
    throw std::invalid_argument(
        "TaskGraph::addDep: task cannot depend on itself: '" +
        label(before) + "'");
  }
  nodes_[static_cast<std::size_t>(before)].successors.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].initialDeps;
}

const char* replayOrderName(ReplayOrder order) {
  switch (order) {
  case ReplayOrder::None:
    return "none";
  case ReplayOrder::Fifo:
    return "fifo";
  case ReplayOrder::Lifo:
    return "lifo";
  case ReplayOrder::StealHeavy:
    return "steal";
  case ReplayOrder::Random:
    return "random";
  }
  return "?";
}

ReplayOrder parseReplayOrder(const std::string& name) {
  for (const ReplayOrder order : kReplayOrders) {
    if (name == replayOrderName(order)) {
      return order;
    }
  }
  if (name == "none") {
    return ReplayOrder::None;
  }
  throw std::invalid_argument(
      "parseReplayOrder: unknown order '" + name +
      "' (expected fifo, lifo, steal, random, or none)");
}

struct TaskPool::Impl {
  static constexpr int kMaxDomains = 256;
  static constexpr int kMaxSubmissions = 1024;
  static constexpr Ticket kFinishedTicket = ~static_cast<Ticket>(0);

  static constexpr Ticket makeTicket(int slot, std::uint32_t gen) {
    return (static_cast<Ticket>(static_cast<std::uint32_t>(slot)) << 32) |
           gen;
  }
  static constexpr int ticketSlot(Ticket t) {
    return static_cast<int>(t >> 32);
  }
  static constexpr std::uint32_t ticketGen(Ticket t) {
    return static_cast<std::uint32_t>(t & 0xffffffffu);
  }

  /// Kahn's algorithm; throws std::logic_error naming the cyclic tasks if
  /// the graph admits no topological order. Shared by submit() and
  /// runReplay() so both reject a cyclic graph before anything executes (a
  /// cycle would otherwise hang every worker on an empty frontier).
  static void throwOnCycle(const TaskGraph& graph) {
    const std::size_t n = graph.nodes_.size();
    std::vector<int> deps(n);
    std::vector<int> ready;
    for (std::size_t i = 0; i < n; ++i) {
      deps[i] = graph.nodes_[i].initialDeps;
      if (deps[i] == 0) {
        ready.push_back(static_cast<int>(i));
      }
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
      const int task = ready.back();
      ready.pop_back();
      ++processed;
      for (const int succ :
           graph.nodes_[static_cast<std::size_t>(task)].successors) {
        if (--deps[static_cast<std::size_t>(succ)] == 0) {
          ready.push_back(succ);
        }
      }
    }
    if (processed == n) {
      return;
    }
    // Name the stuck tasks (label, not index) so the builder bug is
    // findable: "box 3 fringe z-lo" beats "task 17".
    std::string names;
    int listed = 0;
    std::size_t stuck = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (deps[i] <= 0) {
        continue;
      }
      ++stuck;
      if (listed < 4) {
        names += listed == 0 ? "'" : ", '";
        names += graph.label(static_cast<int>(i));
        names += "'";
        ++listed;
      }
    }
    if (stuck > static_cast<std::size_t>(listed)) {
      names += ", ...";
    }
    throw std::logic_error("TaskPool: dependency cycle among " +
                           std::to_string(stuck) + " task(s): " + names);
  }

  /// Per-(domain, worker) queues: the worker's Chase-Lev deque plus a
  /// mutex-protected inbox that submit() seeds initially-ready tasks into
  /// (a Chase-Lev bottom push is owner-only, so the submitting thread
  /// cannot push into a live worker's deque directly). The owner folds its
  /// inbox into its deque before popping; thieves may also take single
  /// inbox entries under the mutex, so seeds parked at a not-yet-scheduled
  /// worker cannot stall the whole submission.
  struct Cell {
    StealDeque deque;
    std::mutex inboxMutex;
    std::vector<std::int64_t> inbox;
    std::atomic<bool> inboxNonEmpty{false};
  };

  struct Domain {
    Domain(int nWorkers, int w, std::string l)
        : weight(w), label(std::move(l)), cells(new Cell[static_cast<
              std::size_t>(nWorkers)]) {}
    int weight = 1;
    std::string label;
    std::unique_ptr<Cell[]> cells; ///< one per worker
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  /// Per-dispatch state of one submitted graph. Slots are preallocated
  /// lazily, identified by index, and recycled through `freeSlots` by the
  /// wait() that observes completion; `gen` disambiguates reuse so stale
  /// tickets keep reporting finished.
  struct Submission {
    TaskGraph* graph = nullptr;
    int domain = 0;
    std::size_t depsCapacity = 0;
    std::unique_ptr<std::atomic<int>[]> deps;
    std::atomic<std::int64_t> remaining{0};
    std::atomic<bool> done{true};
    std::atomic<std::uint32_t> gen{0};
  };

  /// Tasks served per unit of domain weight before a worker rotates to
  /// the next domain. The quantum does not change the fairness ratios
  /// (weight 2 still gets twice the tasks of weight 1 per round); it
  /// batches each domain's turn so a worker reuses one instance's hot
  /// working set instead of alternating cache footprints on every task.
  static constexpr int kCreditQuantum = 256;

  /// Per-worker scheduling state for the weighted deficit round-robin:
  /// the worker keeps serving `cursor`'s domain until `credit` (seeded
  /// from weight x kCreditQuantum) runs out or the domain has nothing
  /// runnable, then advances. Padded: each worker updates its state on
  /// every task.
  struct alignas(64) WorkerState {
    int cursor = 0;
    int credit = 0;
    int lastDomain = -1;
    /// Task-body wall time, written only by this worker; atomic so
    /// stats() may read it concurrently.
    std::atomic<std::uint64_t> busyNanos{0};
  };

  explicit Impl(int n)
      : nThreads(n),
        domains(kMaxDomains),
        subs(kMaxSubmissions),
        wstate(new WorkerState[static_cast<std::size_t>(n)]) {
    domains[0] = std::make_unique<Domain>(n, 1, "default");
    nDomains.store(1, std::memory_order_release);
  }

  int nThreads = 1;
  std::mutex mutex; ///< cv + registries (domains, submission freelist)
  std::condition_variable cv;
  bool shutdown = false;

  /// Count of submissions with unfinished tasks. Workers park on `cv`
  /// while it is zero, so a drained pool costs nothing.
  std::atomic<int> activeSubmissions{0};
  /// Exactly one wait()ing thread at a time acts as pool worker 0;
  /// additional waiters block on the cv without executing tasks.
  std::atomic<bool> helperBusy{false};

  std::vector<std::unique_ptr<Domain>> domains; ///< slots < nDomains live
  std::atomic<int> nDomains{0};

  std::vector<std::unique_ptr<Submission>> subs;
  std::vector<int> freeSlots; ///< guarded by mutex
  int subsCreated = 0;        ///< guarded by mutex

  std::unique_ptr<WorkerState[]> wstate;

  std::atomic<std::uint64_t> statExecuted{0};
  std::atomic<std::uint64_t> statStolen{0};
  std::atomic<std::uint64_t> statCrossings{0};
  std::atomic<std::uint64_t> statIdleSleeps{0};
  std::atomic<std::uint64_t> statSubmissions{0};

  std::vector<std::thread> threads;

  /// Move every inbox entry of `cell` (owned by the calling worker) into
  /// its deque.
  static void foldInbox(Cell& cell) {
    if (!cell.inboxNonEmpty.load(std::memory_order_acquire)) {
      return;
    }
    const std::lock_guard<std::mutex> lock(cell.inboxMutex);
    for (const std::int64_t e : cell.inbox) {
      cell.deque.push(e);
    }
    cell.inbox.clear();
    cell.inboxNonEmpty.store(false, std::memory_order_release);
  }

  /// Take one entry from another worker's inbox (any thread; the mutex
  /// serializes against the owner's fold and the submitter's seed).
  static std::int64_t stealInbox(Cell& cell) {
    if (!cell.inboxNonEmpty.load(std::memory_order_acquire)) {
      return StealDeque::kEmpty;
    }
    const std::lock_guard<std::mutex> lock(cell.inboxMutex);
    if (cell.inbox.empty()) {
      return StealDeque::kEmpty;
    }
    const std::int64_t e = cell.inbox.back();
    cell.inbox.pop_back();
    if (cell.inbox.empty()) {
      cell.inboxNonEmpty.store(false, std::memory_order_release);
    }
    return e;
  }

  /// Find the next entry for `worker` under the fairness policy: serve
  /// the cursor domain while credit lasts (own deque, then steal), else
  /// advance round-robin across domains. Returns false when nothing is
  /// runnable anywhere right now.
  bool findTask(int worker, std::int64_t& outEntry, int& outDomain,
                bool& outStolen) {
    const int d0 = nDomains.load(std::memory_order_acquire);
    WorkerState& ws = wstate[static_cast<std::size_t>(worker)];
    if (ws.cursor >= d0) {
      ws.cursor = 0;
      ws.credit = 0;
    }
    if (ws.credit <= 0) {
      ws.cursor = (ws.cursor + 1) % d0;
      ws.credit =
          domains[static_cast<std::size_t>(ws.cursor)]->weight *
          kCreditQuantum;
    }
    for (int k = 0; k < d0; ++k) {
      const int d = (ws.cursor + k) % d0;
      Domain& dom = *domains[static_cast<std::size_t>(d)];
      Cell& own = dom.cells[static_cast<std::size_t>(worker)];
      foldInbox(own);
      std::int64_t entry = own.deque.pop();
      bool stolen = false;
      if (entry < 0) {
        for (int i = 1; i < nThreads && entry < 0; ++i) {
          const int victim = (worker + i) % nThreads;
          Cell& vc = dom.cells[static_cast<std::size_t>(victim)];
          const std::int64_t got = vc.deque.steal();
          if (got >= 0) {
            entry = got;
            stolen = true;
          } else if (got == StealDeque::kEmpty) {
            const std::int64_t seed = stealInbox(vc);
            if (seed >= 0) {
              entry = seed;
              stolen = true;
            }
          }
        }
      }
      if (entry >= 0) {
        if (d != ws.cursor) {
          ws.cursor = d;
          ws.credit = dom.weight * kCreditQuantum;
        }
        --ws.credit;
        outEntry = entry;
        outDomain = d;
        outStolen = stolen;
        return true;
      }
    }
    return false;
  }

  void execute(int worker, std::int64_t entry, int domainIdx,
               bool wasStolen) {
    const int slot = entrySlot(entry);
    const int task = entryTask(entry);
    Submission& s = *subs[static_cast<std::size_t>(slot)];
    Domain& dom = *domains[static_cast<std::size_t>(domainIdx)];
    WorkerState& ws = wstate[static_cast<std::size_t>(worker)];
    if (ws.lastDomain >= 0 && ws.lastDomain != domainIdx) {
      statCrossings.fetch_add(1, std::memory_order_relaxed);
    }
    ws.lastDomain = domainIdx;
    dom.executed.fetch_add(1, std::memory_order_relaxed);
    statExecuted.fetch_add(1, std::memory_order_relaxed);
    if (wasStolen) {
      dom.stolen.fetch_add(1, std::memory_order_relaxed);
      statStolen.fetch_add(1, std::memory_order_relaxed);
    }
    TaskGraph::Node& node = s.graph->nodes_[static_cast<std::size_t>(task)];
    const auto t0 = std::chrono::steady_clock::now();
    node.fn(worker);
    ws.busyNanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    for (const int succ : node.successors) {
      // acq_rel: the final decrement acquires every co-dependency's
      // release, so the push below publishes all of them to the consumer.
      if (s.deps[static_cast<std::size_t>(succ)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        dom.cells[static_cast<std::size_t>(worker)].deque.push(
            encodeEntry(slot, succ));
      }
    }
    if (s.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the submission: the acq_rel chain on `remaining`
      // makes every task's effects visible here; the release store of
      // `done` publishes them to the wait()er. The empty lock/unlock
      // closes the window where a waiter checked the predicate but has
      // not yet blocked on the cv (classic lost-wakeup bracket). No
      // access to `s` is legal after the `done` store — the waiter may
      // recycle the slot immediately.
      activeSubmissions.fetch_sub(1, std::memory_order_release);
      s.done.store(true, std::memory_order_release);
      { const std::lock_guard<std::mutex> lock(mutex); }
      cv.notify_all();
    }
  }

  /// Three-stage idle backoff: CPU pause, yield, then exponentially
  /// growing sleeps capped at ~320us (docs/serving.md). Stale `misses`
  /// counts reset on every successful find.
  void idleBackoff(unsigned misses) {
    if (misses < 16) {
      cpuPause();
    } else if (misses < 64) {
      std::this_thread::yield();
    } else {
      statIdleSleeps.fetch_add(1, std::memory_order_relaxed);
      const unsigned shift = std::min((misses - 64U) / 16U, 4U);
      std::this_thread::sleep_for(
          std::chrono::microseconds(20U << shift));
    }
  }

  /// Worker body while any submission is active.
  void drainService(int worker) {
    tlsWorker = worker;
    unsigned misses = 0;
    while (activeSubmissions.load(std::memory_order_acquire) > 0) {
      std::int64_t entry = StealDeque::kEmpty;
      int domainIdx = 0;
      bool stolen = false;
      if (findTask(worker, entry, domainIdx, stolen)) {
        misses = 0;
        execute(worker, entry, domainIdx, stolen);
      } else {
        idleBackoff(++misses);
      }
    }
    tlsWorker = -1;
  }

  void workerLoop(int worker) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return shutdown ||
                 activeSubmissions.load(std::memory_order_relaxed) > 0;
        });
        if (shutdown) {
          return;
        }
      }
      drainService(worker);
    }
  }

  [[nodiscard]] bool ticketFinished(Ticket t) const {
    if (t == kFinishedTicket) {
      return true;
    }
    const Submission& s = *subs[static_cast<std::size_t>(ticketSlot(t))];
    if (s.gen.load(std::memory_order_acquire) != ticketGen(t)) {
      return true; // slot recycled: the submission completed long ago
    }
    const bool d = s.done.load(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_acquire) != ticketGen(t)) {
      return true; // recycled between the two loads
    }
    return d;
  }

  /// Drive the pool from a waiting thread until `pred()` holds. The first
  /// waiter claims the worker-0 role and executes tasks; later concurrent
  /// waiters block on the cv.
  template <typename Pred> void helpUntil(Pred&& pred) {
    bool expected = false;
    if (!helperBusy.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, pred);
      return;
    }
    struct Restore {
      Impl* impl;
      int savedWorker;
      ~Restore() {
        tlsWorker = savedWorker;
        impl->helperBusy.store(false, std::memory_order_release);
      }
    } restore{this, tlsWorker};
    tlsWorker = 0;
    unsigned misses = 0;
    while (!pred()) {
      std::int64_t entry = StealDeque::kEmpty;
      int domainIdx = 0;
      bool stolen = false;
      if (findTask(0, entry, domainIdx, stolen)) {
        misses = 0;
        execute(0, entry, domainIdx, stolen);
      } else {
        idleBackoff(++misses);
      }
    }
  }

  /// Recycle a completed ticket's slot (idempotent: a gen mismatch means
  /// someone already did).
  void recycle(Ticket t) {
    if (t == kFinishedTicket) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex);
    const int slot = ticketSlot(t);
    Submission& s = *subs[static_cast<std::size_t>(slot)];
    if (s.gen.load(std::memory_order_relaxed) != ticketGen(t)) {
      return;
    }
    s.graph = nullptr;
    s.gen.fetch_add(1, std::memory_order_release);
    freeSlots.push_back(slot);
  }
};

TaskPool::TaskPool(int nThreads, bool pin) : nThreads_(nThreads) {
  if (nThreads < 1) {
    throw std::invalid_argument("TaskPool: nThreads must be >= 1");
  }
  impl_ = std::make_unique<Impl>(nThreads);
  impl_->threads.reserve(static_cast<std::size_t>(nThreads - 1));
  for (int w = 1; w < nThreads; ++w) {
    impl_->threads.emplace_back(&Impl::workerLoop, impl_.get(), w);
#if defined(__linux__)
    if (pin) {
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(w) % hw, &set);
        // Best effort: pinning failures (cgroup-restricted masks) are not
        // errors, the scheduler placement just stays free.
        (void)pthread_setaffinity_np(
            impl_->threads.back().native_handle(), sizeof(set), &set);
      }
    }
#else
    (void)pin;
#endif
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->threads) {
    t.join();
  }
}

int TaskPool::currentWorker() { return tlsWorker; }

int TaskPool::createDomain(int weight, std::string label) {
  if (weight < 1) {
    throw std::invalid_argument("TaskPool::createDomain: weight must be "
                                ">= 1, got " +
                                std::to_string(weight));
  }
  Impl& impl = *impl_;
  const std::lock_guard<std::mutex> lock(impl.mutex);
  const int d = impl.nDomains.load(std::memory_order_relaxed);
  if (d >= Impl::kMaxDomains) {
    throw std::length_error("TaskPool::createDomain: domain capacity (" +
                            std::to_string(Impl::kMaxDomains) +
                            ") exhausted");
  }
  if (label.empty()) {
    label = "domain" + std::to_string(d);
  }
  impl.domains[static_cast<std::size_t>(d)] =
      std::make_unique<Impl::Domain>(nThreads_, weight, std::move(label));
  impl.nDomains.store(d + 1, std::memory_order_release);
  return d;
}

int TaskPool::domainCount() const {
  return impl_->nDomains.load(std::memory_order_acquire);
}

TaskPool::Ticket TaskPool::submit(TaskGraph& graph, int domain) {
  Impl& impl = *impl_;
  if (domain < 0 ||
      domain >= impl.nDomains.load(std::memory_order_acquire)) {
    throw std::invalid_argument("TaskPool::submit: unknown domain " +
                                std::to_string(domain));
  }
  const std::size_t n = graph.nodes_.size();
  if (n == 0) {
    return Impl::kFinishedTicket;
  }
  Impl::throwOnCycle(graph);

  int slot = -1;
  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    if (!impl.freeSlots.empty()) {
      slot = impl.freeSlots.back();
      impl.freeSlots.pop_back();
    } else if (impl.subsCreated < Impl::kMaxSubmissions) {
      slot = impl.subsCreated++;
      impl.subs[static_cast<std::size_t>(slot)] =
          std::make_unique<Impl::Submission>();
    } else {
      throw std::length_error(
          "TaskPool::submit: submission slots exhausted (" +
          std::to_string(Impl::kMaxSubmissions) +
          " in flight / unrecycled tickets)");
    }
  }
  Impl::Submission& s = *impl.subs[static_cast<std::size_t>(slot)];
  const std::uint32_t gen = s.gen.load(std::memory_order_relaxed);
  s.graph = &graph;
  s.domain = domain;
  if (s.depsCapacity < n) {
    s.deps.reset(new std::atomic<int>[n]);
    s.depsCapacity = n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    s.deps[i].store(graph.nodes_[i].initialDeps,
                    std::memory_order_relaxed);
  }
  s.done.store(false, std::memory_order_relaxed);
  s.remaining.store(static_cast<std::int64_t>(n),
                    std::memory_order_release);
  impl.statSubmissions.fetch_add(1, std::memory_order_relaxed);

  // Seed initially-ready tasks into their owners' inboxes (sticky
  // box->thread affinity; the owner folds them into its deque).
  Impl::Domain& dom = *impl.domains[static_cast<std::size_t>(domain)];
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.nodes_[i].initialDeps != 0) {
      continue;
    }
    const int owner =
        ((graph.nodes_[i].owner % nThreads_) + nThreads_) % nThreads_;
    Impl::Cell& cell = dom.cells[static_cast<std::size_t>(owner)];
    const std::lock_guard<std::mutex> lock(cell.inboxMutex);
    cell.inbox.push_back(encodeEntry(slot, static_cast<int>(i)));
    cell.inboxNonEmpty.store(true, std::memory_order_release);
  }

  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    impl.activeSubmissions.fetch_add(1, std::memory_order_release);
  }
  impl.cv.notify_all();
  return Impl::makeTicket(slot, gen);
}

bool TaskPool::finished(Ticket ticket) const {
  return impl_->ticketFinished(ticket);
}

void TaskPool::wait(Ticket ticket) {
  Impl& impl = *impl_;
  if (ticket == Impl::kFinishedTicket) {
    return;
  }
  impl.helpUntil([&] { return impl.ticketFinished(ticket); });
  impl.recycle(ticket);
}

std::size_t TaskPool::waitAny(const std::vector<Ticket>& tickets) {
  if (tickets.empty()) {
    throw std::invalid_argument("TaskPool::waitAny: empty ticket list");
  }
  Impl& impl = *impl_;
  std::size_t idx = 0;
  impl.helpUntil([&] {
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (impl.ticketFinished(tickets[i])) {
        idx = i;
        return true;
      }
    }
    return false;
  });
  impl.recycle(tickets[idx]);
  return idx;
}

void TaskPool::run(TaskGraph& graph) {
  wait(submit(graph, 0));
}

DomainStats TaskPool::domainStats(int domain) const {
  Impl& impl = *impl_;
  if (domain < 0 ||
      domain >= impl.nDomains.load(std::memory_order_acquire)) {
    throw std::invalid_argument("TaskPool::domainStats: unknown domain " +
                                std::to_string(domain));
  }
  const Impl::Domain& dom = *impl.domains[static_cast<std::size_t>(domain)];
  DomainStats out;
  out.executed = dom.executed.load(std::memory_order_relaxed);
  out.stolen = dom.stolen.load(std::memory_order_relaxed);
  return out;
}

TaskPoolStats TaskPool::stats() const {
  const Impl& impl = *impl_;
  TaskPoolStats out;
  out.executed = impl.statExecuted.load(std::memory_order_relaxed);
  out.stolen = impl.statStolen.load(std::memory_order_relaxed);
  out.domainCrossings = impl.statCrossings.load(std::memory_order_relaxed);
  out.idleSleeps = impl.statIdleSleeps.load(std::memory_order_relaxed);
  out.submissions = impl.statSubmissions.load(std::memory_order_relaxed);
  std::uint64_t busy = 0;
  for (int w = 0; w < impl.nThreads; ++w) {
    busy += impl.wstate[static_cast<std::size_t>(w)].busyNanos.load(
        std::memory_order_relaxed);
  }
  out.busySeconds = static_cast<double>(busy) * 1e-9;
  return out;
}

void TaskPool::resetStats() {
  Impl& impl = *impl_;
  impl.statExecuted.store(0, std::memory_order_relaxed);
  impl.statStolen.store(0, std::memory_order_relaxed);
  impl.statCrossings.store(0, std::memory_order_relaxed);
  impl.statIdleSleeps.store(0, std::memory_order_relaxed);
  impl.statSubmissions.store(0, std::memory_order_relaxed);
  for (int w = 0; w < impl.nThreads; ++w) {
    impl.wstate[static_cast<std::size_t>(w)].busyNanos.store(
        0, std::memory_order_relaxed);
  }
  const int d0 = impl.nDomains.load(std::memory_order_acquire);
  for (int d = 0; d < d0; ++d) {
    impl.domains[static_cast<std::size_t>(d)]->executed.store(
        0, std::memory_order_relaxed);
    impl.domains[static_cast<std::size_t>(d)]->stolen.store(
        0, std::memory_order_relaxed);
  }
}

void TaskPool::runReplay(TaskGraph& graph, const ReplayMode& mode) {
  if (mode.order == ReplayOrder::None) {
    run(graph);
    return;
  }
  const std::size_t n = graph.nodes_.size();
  if (n == 0) {
    return;
  }
  Impl::throwOnCycle(graph);

  std::vector<int> deps(n);
  std::vector<int> ready; // insertion-ordered frontier
  for (std::size_t i = 0; i < n; ++i) {
    deps[i] = graph.nodes_[i].initialDeps;
    if (deps[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }

  const auto wrappedOwner = [&](int task) {
    return ((graph.nodes_[static_cast<std::size_t>(task)].owner %
             nThreads_) +
            nThreads_) %
           nThreads_;
  };

  std::mt19937_64 rng(mode.seed);
  int lastOwner = 0;

  // Tasks must still observe pool-worker attribution (the shadow detector
  // folds all of a thread's writes together otherwise), so install a
  // hostile worker id per task. Restore on every exit path: a task body
  // may throw (e.g. shadow violation).
  struct TlsGuard {
    int saved = tlsWorker;
    ~TlsGuard() { tlsWorker = saved; }
  } guard;

  while (!ready.empty()) {
    std::size_t pick = 0;
    switch (mode.order) {
    case ReplayOrder::Fifo:
      pick = 0;
      break;
    case ReplayOrder::Lifo:
      pick = ready.size() - 1;
      break;
    case ReplayOrder::StealHeavy: {
      // Choose the ready task whose owner is farthest (in worker-ring
      // distance) from the last executed owner: every step looks like a
      // cross-worker steal. Ties break to the oldest candidate, so the
      // order is deterministic.
      int bestDist = -1;
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const int dist =
            (wrappedOwner(ready[i]) - lastOwner + nThreads_) % nThreads_;
        if (dist > bestDist) {
          bestDist = dist;
          pick = i;
        }
      }
      break;
    }
    case ReplayOrder::Random:
      pick = static_cast<std::size_t>(rng() % ready.size());
      break;
    case ReplayOrder::None:
      break;
    }
    const int task = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

    // Hostile attribution: the serial replay pretends the task landed on
    // worker task % nThreads, maximizing apparent cross-worker movement.
    // Workspace use stays safe — execution is serial, so no two tasks
    // ever occupy a per-worker scratch buffer at once.
    const int worker = task % nThreads_;
    tlsWorker = worker;
    graph.nodes_[static_cast<std::size_t>(task)].fn(worker);
    lastOwner = wrappedOwner(task);

    for (const int succ :
         graph.nodes_[static_cast<std::size_t>(task)].successors) {
      if (--deps[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
}

} // namespace fluxdiv::core
