#include "core/taskpool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fluxdiv::core {

namespace {

thread_local int tlsWorker = -1;

/// Chase-Lev work-stealing deque of task ids (Le et al., "Correct and
/// Efficient Work-Stealing for Weak Memory Models"). The owner pushes and
/// pops at the bottom; thieves CAS the top. The ring buffer grows on
/// demand; retired rings stay allocated until destruction so a thief
/// holding a stale ring pointer still reads valid (if outdated) slots —
/// its top CAS then decides whether the read wins.
class StealDeque {
public:
  static constexpr int kEmpty = -1;
  static constexpr int kAbort = -2;

  StealDeque() : ring_(newRing(kInitialCapacity)) {}

  ~StealDeque() {
    delete[] ring_.load(std::memory_order_relaxed)->slots;
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) {
      delete[] r->slots;
      delete r;
    }
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.
  void push(int task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t > ring->capacity - 1) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(task, std::memory_order_relaxed);
    // Publish the slot before the new bottom: a thief's acquire load of
    // bottom that observes b + 1 also observes the slot write.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns kEmpty when the deque is empty (including when a
  /// thief won the race for the last element).
  int pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair replaces the paper's relaxed store +
    // seq_cst fence (see file comment in taskpool.hpp).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return kEmpty;
    }
    int task = ring->slot(b).load(std::memory_order_relaxed);
    if (t != b) {
      return task; // more than one element: no race with thieves
    }
    // Exactly one element: race thieves for it via the top CAS.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = kEmpty; // a thief got it first
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return task;
  }

  /// Any thread. kAbort signals CAS contention (caller may try another
  /// victim and come back).
  int steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return kEmpty;
    }
    Ring* ring = ring_.load(std::memory_order_acquire);
    const int task = ring->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return kAbort;
    }
    return task;
  }

private:
  static constexpr std::int64_t kInitialCapacity = 64;

  struct Ring {
    std::int64_t capacity = 0; ///< power of two
    std::atomic<int>* slots = nullptr;
    std::atomic<int>& slot(std::int64_t i) const {
      return slots[i & (capacity - 1)];
    }
  };

  static Ring* newRing(std::int64_t capacity) {
    Ring* r = new Ring;
    r->capacity = capacity;
    r->slots = new std::atomic<int>[static_cast<std::size_t>(capacity)];
    return r;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = newRing(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    retired_.push_back(old);
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::vector<Ring*> retired_; ///< owner-only (grow happens under push)
};

} // namespace

int TaskGraph::addTask(Fn fn, int owner, std::string label) {
  Node node;
  node.fn = std::move(fn);
  node.owner = owner;
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

std::string TaskGraph::label(int task) const {
  if (task < 0 || task >= static_cast<int>(nodes_.size())) {
    return "task#" + std::to_string(task) + " (out of range)";
  }
  const std::string& l = nodes_[static_cast<std::size_t>(task)].label;
  return l.empty() ? "task#" + std::to_string(task) : l;
}

void TaskGraph::addDep(int before, int after) {
  const auto n = static_cast<int>(nodes_.size());
  if (before < 0 || before >= n || after < 0 || after >= n) {
    throw std::invalid_argument(
        "TaskGraph::addDep: task id out of range: '" + label(before) +
        "' -> '" + label(after) + "' (graph has " + std::to_string(n) +
        " task(s))");
  }
  if (before == after) {
    throw std::invalid_argument(
        "TaskGraph::addDep: task cannot depend on itself: '" +
        label(before) + "'");
  }
  nodes_[static_cast<std::size_t>(before)].successors.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].initialDeps;
}

const char* replayOrderName(ReplayOrder order) {
  switch (order) {
  case ReplayOrder::None:
    return "none";
  case ReplayOrder::Fifo:
    return "fifo";
  case ReplayOrder::Lifo:
    return "lifo";
  case ReplayOrder::StealHeavy:
    return "steal";
  case ReplayOrder::Random:
    return "random";
  }
  return "?";
}

ReplayOrder parseReplayOrder(const std::string& name) {
  for (const ReplayOrder order : kReplayOrders) {
    if (name == replayOrderName(order)) {
      return order;
    }
  }
  if (name == "none") {
    return ReplayOrder::None;
  }
  throw std::invalid_argument(
      "parseReplayOrder: unknown order '" + name +
      "' (expected fifo, lifo, steal, random, or none)");
}


struct TaskPool::Impl {
  /// Kahn's algorithm; throws std::logic_error naming the cyclic tasks if
  /// the graph admits no topological order. Shared by run() and
  /// runReplay() so both reject a cyclic graph before anything executes (a
  /// cycle would otherwise hang every worker on an empty frontier).
  static void throwOnCycle(const TaskGraph& graph) {
    const std::size_t n = graph.nodes_.size();
    std::vector<int> deps(n);
    std::vector<int> ready;
    for (std::size_t i = 0; i < n; ++i) {
      deps[i] = graph.nodes_[i].initialDeps;
      if (deps[i] == 0) {
        ready.push_back(static_cast<int>(i));
      }
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
      const int task = ready.back();
      ready.pop_back();
      ++processed;
      for (const int succ :
           graph.nodes_[static_cast<std::size_t>(task)].successors) {
        if (--deps[static_cast<std::size_t>(succ)] == 0) {
          ready.push_back(succ);
        }
      }
    }
    if (processed == n) {
      return;
    }
    // Name the stuck tasks (label, not index) so the builder bug is
    // findable: "box 3 fringe z-lo" beats "task 17".
    std::string names;
    int listed = 0;
    std::size_t stuck = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (deps[i] <= 0) {
        continue;
      }
      ++stuck;
      if (listed < 4) {
        names += listed == 0 ? "'" : ", '";
        names += graph.label(static_cast<int>(i));
        names += "'";
        ++listed;
      }
    }
    if (stuck > static_cast<std::size_t>(listed)) {
      names += ", ...";
    }
    throw std::logic_error("TaskPool: dependency cycle among " +
                           std::to_string(stuck) + " task(s): " + names);
  }

  explicit Impl(int n) {
    deques.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      deques.push_back(std::make_unique<StealDeque>());
    }
  }

  int nThreads = 1;
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t epoch = 0;
  bool shutdown = false;

  // State of the run in flight. `remaining` gates the worker loops;
  // `active` counts workers currently inside drain() so run() can wait
  // for every straggler to check out before releasing per-run state.
  TaskGraph* graph = nullptr;
  std::unique_ptr<std::atomic<int>[]> deps;
  std::atomic<std::int64_t> remaining{0};
  std::atomic<int> active{0};

  std::vector<std::unique_ptr<StealDeque>> deques;
  std::vector<std::thread> threads;

  void execute(int worker, int task) {
    TaskGraph::Node& node =
        graph->nodes_[static_cast<std::size_t>(task)];
    node.fn(worker);
    for (const int succ : node.successors) {
      // acq_rel: the final decrement acquires every co-dependency's
      // release, so the push below publishes all of them to the consumer.
      if (deps[static_cast<std::size_t>(succ)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        deques[static_cast<std::size_t>(worker)]->push(succ);
      }
    }
    remaining.fetch_sub(1, std::memory_order_acq_rel);
  }

  void drain(int worker) {
    tlsWorker = worker;
    int misses = 0;
    while (remaining.load(std::memory_order_acquire) > 0) {
      int task = deques[static_cast<std::size_t>(worker)]->pop();
      if (task < 0) {
        for (int i = 1; i < nThreads && task < 0; ++i) {
          const int victim = (worker + i) % nThreads;
          const int got =
              deques[static_cast<std::size_t>(victim)]->steal();
          if (got >= 0) {
            task = got;
          }
        }
      }
      if (task < 0) {
        // Nothing runnable: someone else holds the frontier. Yield so an
        // oversubscribed machine schedules the workers that have tasks;
        // after repeated misses back off harder.
        if (++misses < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;
      }
      misses = 0;
      execute(worker, task);
    }
    tlsWorker = -1;
  }

  void workerLoop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return shutdown || epoch != seen; });
        if (shutdown) {
          return;
        }
        seen = epoch;
        // Checked in before the lock drops: run() can rely on active
        // covering every worker that observed this epoch.
        active.fetch_add(1, std::memory_order_relaxed);
      }
      drain(worker);
      active.fetch_sub(1, std::memory_order_release);
    }
  }
};

TaskPool::TaskPool(int nThreads, bool pin) : nThreads_(nThreads) {
  if (nThreads < 1) {
    throw std::invalid_argument("TaskPool: nThreads must be >= 1");
  }
  impl_ = std::make_unique<Impl>(nThreads);
  impl_->nThreads = nThreads;
  impl_->threads.reserve(static_cast<std::size_t>(nThreads - 1));
  for (int w = 1; w < nThreads; ++w) {
    impl_->threads.emplace_back(&Impl::workerLoop, impl_.get(), w);
#if defined(__linux__)
    if (pin) {
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(w) % hw, &set);
        // Best effort: pinning failures (cgroup-restricted masks) are not
        // errors, the scheduler placement just stays free.
        (void)pthread_setaffinity_np(
            impl_->threads.back().native_handle(), sizeof(set), &set);
      }
    }
#else
    (void)pin;
#endif
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->threads) {
    t.join();
  }
}

int TaskPool::currentWorker() { return tlsWorker; }

void TaskPool::run(TaskGraph& graph) {
  const std::size_t n = graph.nodes_.size();
  if (n == 0) {
    return;
  }
  Impl& impl = *impl_;

  Impl::throwOnCycle(graph);

  impl.deps.reset(new std::atomic<int>[n]);
  for (std::size_t i = 0; i < n; ++i) {
    impl.deps[i].store(graph.nodes_[i].initialDeps,
                       std::memory_order_relaxed);
  }
  impl.graph = &graph;
  // Seed ready tasks into their owners' deques. Single-threaded here, so
  // pushing into other workers' deques is safe (no owner is running yet).
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.nodes_[i].initialDeps == 0) {
      const int owner =
          ((graph.nodes_[i].owner % nThreads_) + nThreads_) % nThreads_;
      impl.deques[static_cast<std::size_t>(owner)]->push(
          static_cast<int>(i));
    }
  }
  impl.remaining.store(static_cast<std::int64_t>(n),
                       std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    ++impl.epoch;
  }
  impl.cv.notify_all();

  impl.drain(0); // the caller is worker 0
  // drain() returned, so every task has executed; wait for parked-bound
  // workers to leave drain() before the per-run state goes away.
  while (impl.active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  impl.graph = nullptr;
}

void TaskPool::runReplay(TaskGraph& graph, const ReplayMode& mode) {
  if (mode.order == ReplayOrder::None) {
    run(graph);
    return;
  }
  const std::size_t n = graph.nodes_.size();
  if (n == 0) {
    return;
  }
  Impl::throwOnCycle(graph);

  std::vector<int> deps(n);
  std::vector<int> ready; // insertion-ordered frontier
  for (std::size_t i = 0; i < n; ++i) {
    deps[i] = graph.nodes_[i].initialDeps;
    if (deps[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }

  const auto wrappedOwner = [&](int task) {
    return ((graph.nodes_[static_cast<std::size_t>(task)].owner %
             nThreads_) +
            nThreads_) %
           nThreads_;
  };

  std::mt19937_64 rng(mode.seed);
  int lastOwner = 0;

  // Tasks must still observe pool-worker attribution (the shadow detector
  // folds all of a thread's writes together otherwise), so install a
  // hostile worker id per task. Restore on every exit path: a task body
  // may throw (e.g. shadow violation).
  struct TlsGuard {
    int saved = tlsWorker;
    ~TlsGuard() { tlsWorker = saved; }
  } guard;

  while (!ready.empty()) {
    std::size_t pick = 0;
    switch (mode.order) {
    case ReplayOrder::Fifo:
      pick = 0;
      break;
    case ReplayOrder::Lifo:
      pick = ready.size() - 1;
      break;
    case ReplayOrder::StealHeavy: {
      // Choose the ready task whose owner is farthest (in worker-ring
      // distance) from the last executed owner: every step looks like a
      // cross-worker steal. Ties break to the oldest candidate, so the
      // order is deterministic.
      int bestDist = -1;
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const int dist =
            (wrappedOwner(ready[i]) - lastOwner + nThreads_) % nThreads_;
        if (dist > bestDist) {
          bestDist = dist;
          pick = i;
        }
      }
      break;
    }
    case ReplayOrder::Random:
      pick = static_cast<std::size_t>(rng() % ready.size());
      break;
    case ReplayOrder::None:
      break;
    }
    const int task = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

    // Hostile attribution: the serial replay pretends the task landed on
    // worker task % nThreads, maximizing apparent cross-worker movement.
    // Workspace use stays safe — execution is serial, so no two tasks
    // ever occupy a per-worker scratch buffer at once.
    const int worker = task % nThreads_;
    tlsWorker = worker;
    graph.nodes_[static_cast<std::size_t>(task)].fn(worker);
    lastOwner = wrappedOwner(task);

    for (const int succ :
         graph.nodes_[static_cast<std::size_t>(task)].successors) {
      if (--deps[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
}

} // namespace fluxdiv::core
