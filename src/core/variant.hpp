#pragma once
// Descriptors for the inter-loop scheduling variants of paper Sec. IV, and
// the registry that enumerates the practical configurations studied
// (~30-40 of the 328 possible combinations; Sec. IV-E footnote).

#include <array>
#include <string>
#include <vector>

namespace fluxdiv::core {

/// The four broad schedule categories of Sec. IV.
enum class ScheduleFamily {
  SeriesOfLoops,    ///< IV-A: the original modular loops ("Baseline")
  ShiftFuse,        ///< IV-B: face loops shifted + fused with cell loops
  BlockedWavefront, ///< IV-C: shift-fuse inside tiles, tile wavefronts
  OverlappedTiles,  ///< IV-D: tiles recompute boundary fluxes ("OT")
};

/// Intra-tile schedule for OverlappedTiles ("Basic-Sched OT" runs the
/// series-of-loops schedule inside each tile, "Shift-Fuse OT" the fused
/// one). Ignored by the other families.
enum class IntraTileSchedule { Basic, ShiftFuse };

/// Parallelization granularity: over whole boxes (P >= Box, the Chombo/MPI
/// proxy), within a box (P < Box: z-slabs, cell wavefronts, or tiles,
/// depending on the family), or — an extension in the spirit of the
/// hierarchical overlapped tiling the paper cites (Zhou et al. [50]) —
/// over the flattened (box, tile) pairs of the whole level
/// (overlapped tiles only).
enum class ParallelGranularity { OverBoxes, WithinBox, HybridBoxTile };

/// Position of the loop over the solution components (Sec. IV axes).
enum class ComponentLoop { Outside, Inside };

/// How the task-parallel level executor (core/exec_level.hpp) decomposes
/// one evaluation over a whole LevelData into tasks. Orthogonal to
/// ParallelGranularity, which describes the *within-box* schedule: the
/// policy decides what becomes a task, the granularity what each task (or
/// the sequential loop body) runs.
enum class LevelPolicy {
  BoxSequential, ///< boxes in sequence, within-box parallelism (seed loop)
  BoxParallel,   ///< one task per box, serial schedule inside each
  Hybrid,        ///< (box x wavefront-tile) tasks for the tiled families
};

/// Display / CLI name: "sequential", "parallel", "hybrid".
[[nodiscard]] const char* levelPolicyName(LevelPolicy policy);

/// Parse a policy name (the FLUXDIV_LEVEL_POLICY / --policy values).
/// Returns false and leaves `out` untouched on an unknown name.
bool parseLevelPolicy(const std::string& text, LevelPolicy& out);

/// All three policies, in ranking/report order.
inline constexpr LevelPolicy kLevelPolicies[] = {
    LevelPolicy::BoxSequential,
    LevelPolicy::BoxParallel,
    LevelPolicy::Hybrid,
};

/// How the step-graph executor (core/stepgraph.hpp) runs one whole RK
/// step. Orthogonal to LevelPolicy, which decides the per-evaluation task
/// granularity: the fuse mode decides how many dispatch barriers one time
/// step pays and whether per-stage ghost exchanges are replaced by
/// deepened-halo recomputation (paper Sec. IV-D generalized from
/// intra-step to inter-step).
enum class StepFuse {
  Eager,     ///< reference path: eager exchange -> BC -> rhs -> axpy loops
  Staged,    ///< one task graph per stage (combines become tasks too)
  Fused,     ///< one task graph for the whole step, cross-stage deps only
  CommAvoid, ///< one deepened exchange, stages recompute on widened halos
};

/// Display / CLI name: "eager", "staged", "fused", "commavoid".
[[nodiscard]] const char* stepFuseName(StepFuse fuse);

/// Parse a fuse-mode name (the FLUXDIV_STEP_FUSE / --fuse values).
/// Returns false and leaves `out` untouched on an unknown name.
bool parseStepFuse(const std::string& text, StepFuse& out);

/// All four fuse modes, in ranking/report order.
inline constexpr StepFuse kStepFuseModes[] = {
    StepFuse::Eager,
    StepFuse::Staged,
    StepFuse::Fused,
    StepFuse::CommAvoid,
};

/// Tile shape for the tiled families — an extension exploring the partial
/// blocking of Rivera & Tseng that the paper's related work discusses
/// (the Mint compiler reference, Sec. V-A). `Cube` is the paper's T^3;
/// `Pencil` keeps the unit-stride x direction untiled (N x T x T);
/// `Slab` tiles only z (N x N x T).
enum class TileAspect { Cube, Pencil, Slab };

/// Traversal order of independent (overlapped) tiles — another of the
/// "328 possible" axes: lexicographic or Morton/Z-order (spatial
/// locality between consecutively-scheduled tiles).
enum class TileOrder { Lexicographic, Morton };

/// One concrete scheduling variant.
struct VariantConfig {
  ScheduleFamily family = ScheduleFamily::SeriesOfLoops;
  IntraTileSchedule intra = IntraTileSchedule::Basic;
  ParallelGranularity par = ParallelGranularity::OverBoxes;
  ComponentLoop comp = ComponentLoop::Outside;
  int tileSize = 0; ///< 0 for untiled families
  TileAspect aspect = TileAspect::Cube;
  TileOrder order = TileOrder::Lexicographic; ///< OverlappedTiles only

  /// Legend-style display name matching the paper's figures, e.g.
  /// "Baseline-CLO: P>=Box", "Shift-Fuse OT-8: P<Box",
  /// "Blocked WF-CLO-16: P<Box".
  [[nodiscard]] std::string name() const;

  /// True if this configuration is runnable on boxes of side `boxSize`
  /// (tiled families need 0 < tileSize <= boxSize).
  [[nodiscard]] bool validFor(int boxSize) const;

  bool operator==(const VariantConfig&) const = default;
};

/// Shorthand constructors for the variants highlighted in the paper.
VariantConfig makeBaseline(ParallelGranularity par,
                           ComponentLoop comp = ComponentLoop::Outside);
VariantConfig makeShiftFuse(ParallelGranularity par,
                            ComponentLoop comp = ComponentLoop::Outside);
VariantConfig makeBlockedWF(int tileSize, ParallelGranularity par,
                            ComponentLoop comp);
VariantConfig makeOverlapped(IntraTileSchedule intra, int tileSize,
                             ParallelGranularity par,
                             ComponentLoop comp = ComponentLoop::Outside);

/// All practical variants for a given box size, mirroring the paper's
/// pruning: tile sizes in {4,8,16,32} strictly smaller than the box, and
/// overlapped tiles only with the component loop outside (the inside
/// variants were measured slower untiled and dropped; Sec. IV-E).
/// With `includeExtensions`, the beyond-paper axes are appended for the
/// overlapped-tile family: hybrid box-x-tile granularity, pencil/slab
/// tile aspects, and Morton traversal order.
std::vector<VariantConfig> enumerateVariants(int boxSize,
                                             bool includeExtensions = false);

/// The tile sizes the paper sweeps.
inline constexpr int kTileSizes[] = {4, 8, 16, 32};

/// Effective per-direction tile extents of a tiled config on boxes of side
/// `boxSize` (applies the TileAspect).
constexpr std::array<int, 3> tileExtents(const VariantConfig& cfg,
                                         int boxSize) {
  switch (cfg.aspect) {
  case TileAspect::Pencil:
    return {boxSize, cfg.tileSize, cfg.tileSize};
  case TileAspect::Slab:
    return {boxSize, boxSize, cfg.tileSize};
  case TileAspect::Cube:
    break;
  }
  return {cfg.tileSize, cfg.tileSize, cfg.tileSize};
}

} // namespace fluxdiv::core
