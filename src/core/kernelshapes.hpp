#pragma once
// Kernel shapes of the variant executors, for the footprint contract
// checker (analysis/kernelcheck.hpp). The analysis library deliberately
// does not link the executors (it sits below fluxdiv_core), so the shapes
// that wrap FluxDivRunner::runBox live here: each one presents a whole
// variant's single-box evaluation — baseline temporaries, shift-fuse
// sweeps, blocked wavefronts, overlapped tiles — as one FusedCell
// pipeline over <rho, u, v, w, e> whose inferred footprint must match the
// declared contract exactly like the reference kernel's does.

#include <vector>

#include "analysis/kernelcheck.hpp"
#include "core/variant.hpp"

namespace fluxdiv::core {

/// Wrap one variant's single-box execution as a probeable kernel shape.
/// The returned shape owns a FluxDivRunner (shared across copies of the
/// callable); probing it executes the real executor code path.
analysis::KernelShape makeVariantShape(const VariantConfig& cfg,
                                       int nThreads);

/// The representative schedule families (the same set the graphcheck and
/// verify tools sweep) as pipeline shapes. `tile` must not exceed the
/// probe box size.
std::vector<analysis::KernelShape> variantShapes(int nThreads,
                                                 int tile = 4);

} // namespace fluxdiv::core
