#include "core/stepprogram.hpp"

#include <algorithm>

#include "kernels/footprint.hpp"

namespace fluxdiv::core {

using kernels::kNumGhost;

StepHaloPlan planStepHalos(const StepProgram& prog, StepFuse fuse) {
  StepHaloPlan plan;
  plan.width.assign(prog.ops.size(), 0);
  if (fuse != StepFuse::CommAvoid) {
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      if (prog.ops[i].kind == StepOpKind::Exchange) {
        plan.width[i] = kNumGhost;
        plan.depth = kNumGhost;
      }
    }
    return plan;
  }
  // Comm-avoiding transform: walk the program backward tracking, per slot,
  // how many ghost layers of it the remaining ops still need. An RHS
  // evaluation at width w consumes kNumGhost extra layers of its source; a
  // copy/axpy propagates its own width; only the per-time-step exchange of
  // the solution slot survives, deepened to cover the whole chain (every
  // intermediate exchange/BC fill is dropped, width -1, and replaced by
  // recomputation on the widened halo).
  std::vector<int> needed(static_cast<std::size_t>(prog.nSlots), 0);
  const auto need = [&](int slot) -> int& {
    return needed[static_cast<std::size_t>(slot)];
  };
  for (std::size_t ri = prog.ops.size(); ri-- > 0;) {
    const StepOp& op = prog.ops[ri];
    switch (op.kind) {
    case StepOpKind::Exchange:
      if (op.dst == 0) {
        plan.width[ri] = need(0);
        plan.depth = std::max(plan.depth, need(0));
        need(0) = 0;
      } else {
        plan.width[ri] = -1; // recomputed on the widened halo instead
      }
      break;
    case StepOpKind::BoundaryFill:
      plan.width[ri] = -1; // CommAvoid requires a fully periodic domain
      break;
    case StepOpKind::RhsEval: {
      const int w = need(op.dst);
      plan.width[ri] = w;
      need(op.dst) = 0;
      need(op.src) = std::max(need(op.src), w + kNumGhost);
      break;
    }
    case StepOpKind::CopySlot: {
      const int w = need(op.dst);
      plan.width[ri] = w;
      need(op.dst) = 0;
      need(op.src) = std::max(need(op.src), w);
      break;
    }
    case StepOpKind::AxpySlot: {
      const int w = need(op.dst);
      plan.width[ri] = w;
      need(op.src) = std::max(need(op.src), w);
      break;
    }
    case StepOpKind::ScaleSlot:
      plan.width[ri] = need(op.dst);
      break;
    }
  }
  return plan;
}

} // namespace fluxdiv::core
