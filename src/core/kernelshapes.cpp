#include "core/kernelshapes.hpp"

#include <memory>
#include <utility>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"

namespace fluxdiv::core {

analysis::KernelShape makeVariantShape(const VariantConfig& cfg,
                                       int nThreads) {
  analysis::KernelShape shape;
  shape.name = "variant:" + cfg.name();
  shape.stage = kernels::Stage::FusedCell;
  shape.dir = -1;
  shape.inComps = kernels::kNumComp;
  shape.outComps = kernels::kNumComp;
  shape.outputDep = analysis::OutputDep::Accumulate;
  // One runner shared across copies of the callable: its workspace pool
  // and verified-shape cache persist across the prober's many runs.
  auto runner = std::make_shared<FluxDivRunner>(cfg, nThreads);
  shape.fn = [runner](const grid::FArrayBox& in, grid::FArrayBox& out,
                      const grid::Box& valid, grid::Real scale) {
    runner->runBox(in, out, valid, scale);
  };
  return shape;
}

std::vector<analysis::KernelShape> variantShapes(int nThreads, int tile) {
  std::vector<analysis::KernelShape> shapes;
  const std::vector<VariantConfig> cfgs = {
      makeBaseline(ParallelGranularity::WithinBox),
      makeShiftFuse(ParallelGranularity::WithinBox),
      makeBlockedWF(tile, ParallelGranularity::WithinBox,
                    ComponentLoop::Outside),
      makeBlockedWF(tile, ParallelGranularity::WithinBox,
                    ComponentLoop::Inside),
      makeOverlapped(IntraTileSchedule::ShiftFuse, tile,
                     ParallelGranularity::WithinBox),
  };
  shapes.reserve(cfgs.size());
  for (const VariantConfig& cfg : cfgs) {
    shapes.push_back(makeVariantShape(cfg, nThreads));
  }
  return shapes;
}

} // namespace fluxdiv::core
