#pragma once
// The shifted-and-fused per-cell computation (paper Sec. IV-B, Fig. 8a),
// shared by the untiled shift-fuse executors, the blocked-wavefront
// executor, and the shift-fuse overlapped-tile executor. One fused
// iteration computes the three high-side face fluxes of a cell, consumes
// the low-side fluxes left behind by the -x/-y/-z predecessor iterations
// (or computes them fresh on the sweep's low boundary), and accumulates
// the flux differences into phi1.
//
// The "slot" pointers are where the predecessor stored the shared face
// flux and where this cell stores its high flux for the successor. Their
// layout is the only difference between the serial schedule (scalar carry,
// row, plane — Table I row 2), the per-iteration wavefront and the blocked
// wavefront (co-dimension caches — Sec. IV-C), and the overlapped tiles
// (tile-local carries — Table I row 4).

#include "core/exec_common.hpp"

namespace fluxdiv::core::detail {

/// Component-loop-inside fused iteration: all kNumComp components of one
/// cell. `a` indexes phi0 at the cell, `o` indexes phi1. `fresh*` is true
/// when this cell is on the low boundary of the sweep in that direction
/// (its low-face flux is computed directly rather than read from the slot).
inline void fusedCellCLI(const ConstComps& p, const MutComps& out,
                         std::int64_t a, std::int64_t o, std::int64_t sy,
                         std::int64_t sz, bool freshX, bool freshY,
                         bool freshZ, Real* slotX, Real* slotY, Real* slotZ,
                         Real scale) {
  using kernels::faceFlux;
  Real fxlo[kNumComp], fxhi[kNumComp];
  Real fylo[kNumComp], fyhi[kNumComp];
  Real fzlo[kNumComp], fzhi[kNumComp];
  for (int c = 0; c < kNumComp; ++c) {
    fxlo[c] = freshX ? faceFlux(p[c] + a, p[1] + a, 1) : slotX[c];
    fxhi[c] = faceFlux(p[c] + a + 1, p[1] + a + 1, 1);
    fylo[c] = freshY ? faceFlux(p[c] + a, p[2] + a, sy) : slotY[c];
    fyhi[c] = faceFlux(p[c] + a + sy, p[2] + a + sy, sy);
    fzlo[c] = freshZ ? faceFlux(p[c] + a, p[3] + a, sz) : slotZ[c];
    fzhi[c] = faceFlux(p[c] + a + sz, p[3] + a + sz, sz);
  }
  for (int c = 0; c < kNumComp; ++c) {
    // Three separate read-modify-writes per component, matching the
    // rounding order of the reference kernel's per-direction passes.
    out[c][o] += scale * (fxhi[c] - fxlo[c]);
    out[c][o] += scale * (fyhi[c] - fylo[c]);
    out[c][o] += scale * (fzhi[c] - fzlo[c]);
    slotX[c] = fxhi[c];
    slotY[c] = fyhi[c];
    slotZ[c] = fzhi[c];
  }
}

/// Component-loop-outside fused iteration: a single component `pc`/`outc`
/// of one cell, with face-averaged normal velocities precomputed in `vel`
/// (component d over valid.faceBox(d); see precomputeFaceVelocity). `av`
/// indexes every `vel` component at this cell's low faces (all three low
/// faces share the cell's own index); the high faces are one d-stride
/// further, with vel's strides `vsy`/`vsz`.
inline void fusedCellCLO(const Real* pc, Real* outc, std::int64_t a,
                         std::int64_t o, std::int64_t sy, std::int64_t sz,
                         const Real* velx, const Real* vely,
                         const Real* velz, std::int64_t av,
                         std::int64_t vsy, std::int64_t vsz, bool freshX,
                         bool freshY, bool freshZ, Real* slotX, Real* slotY,
                         Real* slotZ, Real scale) {
  using kernels::evalFlux1;
  using kernels::evalFlux2;
  const Real fxlo =
      freshX ? evalFlux2(evalFlux1(pc + a, 1), velx[av]) : *slotX;
  const Real fxhi = evalFlux2(evalFlux1(pc + a + 1, 1), velx[av + 1]);
  const Real fylo =
      freshY ? evalFlux2(evalFlux1(pc + a, sy), vely[av]) : *slotY;
  const Real fyhi = evalFlux2(evalFlux1(pc + a + sy, sy), vely[av + vsy]);
  const Real fzlo =
      freshZ ? evalFlux2(evalFlux1(pc + a, sz), velz[av]) : *slotZ;
  const Real fzhi = evalFlux2(evalFlux1(pc + a + sz, sz), velz[av + vsz]);
  outc[o] += scale * (fxhi - fxlo);
  outc[o] += scale * (fyhi - fylo);
  outc[o] += scale * (fzhi - fzlo);
  *slotX = fxhi;
  *slotY = fyhi;
  *slotZ = fzhi;
}

/// Fill `vel` component d with the face-averaged normal velocity
/// (EvalFlux1 of phi0 component d+1) over region `fb_d` = the z-slab of
/// valid.faceBox(d) owned by this worker. `vel` must be allocated on
/// faceSupersetBox(valid) (or a superset) with 3 components.
void precomputeFaceVelocity(const FArrayBox& phi0, FArrayBox& vel,
                            const Box& valid, int nth, int tid);

} // namespace fluxdiv::core::detail
