#include "core/runner.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "analysis/costmodel.hpp"
#include "core/exec_common.hpp"
#include "core/exec_level.hpp"
#include "harness/machine.hpp"

#include "analysis/lower.hpp"

#ifdef FLUXDIV_SCHEDULE_VERIFY
#include "analysis/verifier.hpp"
#endif

#ifdef FLUXDIV_KERNEL_VERIFY
#include "analysis/kernelcheck.hpp"
#include "core/kernelshapes.hpp"
#endif

namespace fluxdiv::core {

#ifdef FLUXDIV_SHADOW_CHECK
using detail::throwOnShadowViolations;
#endif

using detail::Box;
using detail::FArrayBox;
using grid::LevelData;
using grid::Real;

namespace {

/// Compile-time halves of the runner's gates (analysis::VerifyGate adds
/// the run-time environment override and the once-per-shape memo).
constexpr bool kScheduleVerifyCompiled =
#ifdef FLUXDIV_SCHEDULE_VERIFY
    true;
#else
    false;
#endif

} // namespace

FluxDivRunner::FluxDivRunner(VariantConfig cfg, int nThreads)
    : cfg_(cfg), nThreads_(nThreads), pool_(nThreads),
      scheduleGate_("FLUXDIV_VERIFY_SCHEDULE", kScheduleVerifyCompiled) {
  if (nThreads < 1) {
    throw std::invalid_argument("FluxDivRunner: nThreads must be >= 1");
  }
}

FluxDivRunner::~FluxDivRunner() = default;

std::size_t FluxDivRunner::maxPeakWorkspaceBytes() const {
  std::size_t worst = pool_.maxPeakBytes();
  if (levelExec_ != nullptr) {
    worst = std::max(worst, levelExec_->maxPeakWorkspaceBytes());
  }
  return worst;
}

std::size_t FluxDivRunner::totalPeakWorkspaceBytes() const {
  std::size_t total = pool_.totalPeakBytes();
  if (levelExec_ != nullptr) {
    total += levelExec_->totalPeakWorkspaceBytes();
  }
  return total;
}

void FluxDivRunner::verifySchedule(const Box& valid) {
#ifdef FLUXDIV_SCHEDULE_VERIFY
  const grid::IntVect extents = valid.size();
  const std::string key = std::to_string(extents[0]) + "x" +
                          std::to_string(extents[1]) + "x" +
                          std::to_string(extents[2]);
  if (!scheduleGate_.shouldVerify(key)) {
    return;
  }
  const Box shape(grid::IntVect::zero(), extents - grid::IntVect::unit(1));
  const analysis::Diagnostic diag = analysis::ScheduleVerifier{}.verify(
      analysis::lowerVariant(cfg_, shape, nThreads_));
  if (!diag.ok()) {
    throw std::logic_error("schedule verification failed for variant '" +
                           cfg_.name() + "': " + diag.message());
  }
#else
  (void)valid;
#endif
}

void FluxDivRunner::adviseSchedule(const Box& valid) {
  const char* env = std::getenv("FLUXDIV_ADVISE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) {
    return;
  }
  const grid::IntVect extents = valid.size();
  for (const auto& shape : advisedShapes_) {
    if (shape == extents) {
      return;
    }
  }
  advisedShapes_.push_back(extents);
  try {
    const Box shape(grid::IntVect::zero(), extents - grid::IntVect::unit(1));
    const analysis::CacheSpec spec =
        analysis::CacheSpec::fromMachine(harness::queryMachine());
    const analysis::CostReport cost = analysis::analyzeCost(
        analysis::lowerVariant(cfg_, shape, nThreads_), spec, nThreads_);
    if (!cost.capacityBound && cost.notes.empty()) {
      return;
    }
    std::cerr << "FLUXDIV_ADVISE: variant '" << cfg_.name() << "' over "
              << extents[0] << "x" << extents[1] << "x" << extents[2]
              << " (threads=" << nThreads_ << "):\n";
    for (const auto& note : cost.notes) {
      std::cerr << "  " << note.message() << "\n";
    }
  } catch (const std::exception& e) {
    // Advisory only — a cost-model failure must never break execution.
    std::cerr << "FLUXDIV_ADVISE: cost analysis unavailable for '"
              << cfg_.name() << "': " << e.what() << "\n";
  }
}

void FluxDivRunner::verifyKernels() {
#ifdef FLUXDIV_KERNEL_VERIFY
  if (kernelsVerified_) {
    return;
  }
  kernelsVerified_ = true;
  // The probe executes this variant's real code path through a fresh
  // runner, whose runBox re-enters this gate under the same config name;
  // VerifyGate inserts the name before the probe runs, which terminates
  // the recursion (and keeps concurrent runners from probing the same
  // config twice). Process-wide: footprints depend only on the config.
  static analysis::VerifyGate gate("FLUXDIV_VERIFY_KERNEL", true);
  if (!gate.shouldVerify(cfg_.name())) {
    return;
  }
  analysis::ProbeOptions opts;
  // Smallest box the config accepts; sampled probing keeps the one-time
  // gate cheap enough for Debug test runs.
  opts.boxSize = std::max(6, cfg_.tileSize);
  opts.exhaustiveSlotLimit = 0;
  opts.sampleTarget = 400;
  const analysis::KernelCheckReport report = analysis::checkKernelFootprints(
      analysis::inferFootprint(makeVariantShape(cfg_, nThreads_), opts));
  if (!report.ok()) {
    throw std::logic_error("kernel contract verification failed for "
                           "variant '" +
                           cfg_.name() +
                           "': " + report.diagnostics.front().message());
  }
#endif
}

void FluxDivRunner::runBoxSerial(const FArrayBox& phi0, FArrayBox& phi1,
                                 const Box& valid, Workspace& ws,
                                 Real scale) {
  detail::runBoxSerialDispatch(cfg_, phi0, phi1, valid, ws, scale);
}

void FluxDivRunner::runBox(const FArrayBox& phi0, FArrayBox& phi1,
                           const Box& valid, Real scale) {
  if (!cfg_.validFor(valid.size(0))) {
    throw std::invalid_argument("variant '" + cfg_.name() +
                                "' is not valid for this box size");
  }
  verifyKernels();
  verifySchedule(valid);
  adviseSchedule(valid);
#ifdef FLUXDIV_SHADOW_CHECK
  phi1.shadowBeginEpoch();
#endif
  if (cfg_.par == ParallelGranularity::OverBoxes) {
    runBoxSerial(phi0, phi1, valid, pool_[0], scale);
#ifdef FLUXDIV_SHADOW_CHECK
    throwOnShadowViolations(phi1, "runBox");
#endif
    return;
  }
  if (cfg_.par == ParallelGranularity::HybridBoxTile) {
    // For a single box the hybrid granularity degenerates to parallel
    // tiles within the box.
    detail::overlappedBoxParallel(cfg_, phi0, phi1, valid, pool_,
                                  nThreads_, scale);
#ifdef FLUXDIV_SHADOW_CHECK
    throwOnShadowViolations(phi1, "runBox");
#endif
    return;
  }
  // WithinBox keeps its schedule-specific code path even at one thread so
  // the measured temporary-storage footprint reflects the schedule.
  switch (cfg_.family) {
  case ScheduleFamily::SeriesOfLoops:
    detail::baselineBoxParallel(cfg_, phi0, phi1, valid, pool_, nThreads_,
                                scale);
    break;
  case ScheduleFamily::ShiftFuse:
    detail::shiftFuseBoxWavefront(cfg_, phi0, phi1, valid, pool_,
                                  nThreads_, scale);
    break;
  case ScheduleFamily::BlockedWavefront:
    detail::blockedWFBoxParallel(cfg_, phi0, phi1, valid, pool_, nThreads_,
                                 scale);
    break;
  case ScheduleFamily::OverlappedTiles:
    detail::overlappedBoxParallel(cfg_, phi0, phi1, valid, pool_,
                                  nThreads_, scale);
    break;
  }
#ifdef FLUXDIV_SHADOW_CHECK
  throwOnShadowViolations(phi1, "runBox");
#endif
}

void FluxDivRunner::run(const LevelData& phi0, LevelData& phi1,
                        Real scale) {
  // Environment override onto the task-parallel level executor. The
  // executor's sequential policy comes back through runLevel(), and its
  // parallel policies never re-enter run(), so this cannot recurse.
  const char* env = std::getenv("FLUXDIV_LEVEL_POLICY");
  LevelPolicy policy = LevelPolicy::BoxSequential;
  if (env != nullptr && *env != '\0' && !parseLevelPolicy(env, policy)) {
    throw std::invalid_argument(
        std::string("FLUXDIV_LEVEL_POLICY: unknown policy '") + env + "'");
  }
  if (policy != LevelPolicy::BoxSequential) {
    if (levelExec_ == nullptr || levelExec_->policy() != policy) {
      // run()'s contract has ghosts already exchanged, so the delegated
      // executor never needs the async-exchange overlap path.
      levelExec_ = std::make_unique<LevelExecutor>(
          cfg_, nThreads_,
          LevelExecOptions{policy, /*overlapExchange=*/false,
                           /*pin=*/false});
    }
    levelExec_->run(phi0, phi1, scale);
    return;
  }
  runLevel(phi0, phi1, scale);
}

void FluxDivRunner::runLevel(const LevelData& phi0, LevelData& phi1,
                             Real scale) {
  if (phi0.size() != phi1.size()) {
    throw std::invalid_argument("run: layout mismatch between levels");
  }
  if (phi0.nComp() != detail::kNumComp ||
      phi1.nComp() != detail::kNumComp) {
    throw std::invalid_argument("run: levels must have kNumComp components");
  }
  if (phi0.nGhost() < detail::kNumGhost) {
    throw std::invalid_argument("run: phi0 needs >= kNumGhost ghost layers");
  }

  verifyKernels();
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    verifySchedule(phi0.validBox(b)); // cached after the first box shape
    adviseSchedule(phi0.validBox(b));
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].shadowBeginEpoch();
  }
#endif

  if (cfg_.par == ParallelGranularity::OverBoxes) {
    // The Chombo/MPI proxy: one OpenMP thread per box (Sec. I, III-C).
#pragma omp parallel num_threads(nThreads_)
    {
      Workspace& ws = pool_[omp_get_thread_num()];
#pragma omp for schedule(dynamic)
      for (std::size_t b = 0; b < phi0.size(); ++b) {
        runBoxSerial(phi0[b], phi1[b], phi0.validBox(b), ws, scale);
      }
    }
  } else if (cfg_.par == ParallelGranularity::HybridBoxTile) {
    // Hierarchical-overlapped-tiling-style extension: flatten the
    // (box, tile) pairs of the whole level into one parallel loop, so the
    // scheduler can balance both across and within boxes. Only defined
    // for overlapped tiles (the only family whose tiles are independent).
    if (!cfg_.validFor(phi0.layout().boxSize()[0])) {
      throw std::invalid_argument("variant '" + cfg_.name() +
                                  "' is not valid for this layout");
    }
    const sched::TileSet tiles =
        detail::makeTileSet(cfg_, phi0.validBox(0));
    const std::size_t tilesPerBox = tiles.size();
#pragma omp parallel num_threads(nThreads_)
    {
      Workspace& ws = pool_[omp_get_thread_num()];
#pragma omp for schedule(dynamic) collapse(2)
      for (std::size_t b = 0; b < phi0.size(); ++b) {
        for (std::size_t t = 0; t < tilesPerBox; ++t) {
          // Tile boxes are relative to each box's own valid region.
          const grid::Box tileBox =
              tiles.tileBox(t).shift(phi0.validBox(b).lo() -
                                     phi0.validBox(0).lo());
          detail::overlappedRunTile(cfg_, phi0[b], phi1[b], tileBox, ws,
                                    scale);
        }
      }
    }
  } else {
    // Parallelism within each box; boxes processed in sequence (the paper
    // "parallelized over tiles within each box ... iterated over the
    // boxes" ordering, Sec. VI).
    for (std::size_t b = 0; b < phi0.size(); ++b) {
      runBox(phi0[b], phi1[b], phi0.validBox(b), scale);
    }
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    throwOnShadowViolations(phi1[b], "run");
  }
#endif
}

} // namespace fluxdiv::core
