// Overlapped tiles (paper Sec. IV-D, Fig. 8c): every tile computes all of
// the face fluxes it needs — including fluxes on shared tile boundaries,
// which are recomputed by both neighbors — so tiles carry no inter-tile
// dependencies and all run concurrently. The intra-tile schedule is either
// the series-of-loops baseline ("Basic-Sched OT") or the shifted-and-fused
// sweep ("Shift-Fuse OT"); both are exactly the per-box serial executors
// applied to a tile-sized region, which also yields the per-thread
// tile-sized temporary footprint of Table I row 4. The overlapped variants
// therefore inherit the pencil-vectorized inner loops of those executors
// (tiles keep the x direction whole under Pencil/Slab aspects, so pencils
// stay long; cube tiles trade pencil length for the paper's locality
// study, as before).

#include <omp.h>

#include "core/exec_common.hpp"

namespace fluxdiv::core::detail {

void overlappedRunTile(const VariantConfig& cfg, const FArrayBox& phi0,
                       FArrayBox& phi1, const Box& tileBox, Workspace& ws,
                       Real scale) {
  if (cfg.intra == IntraTileSchedule::Basic) {
    baselineBoxSerial(cfg, phi0, phi1, tileBox, ws, scale);
  } else {
    shiftFuseBoxSerial(cfg, phi0, phi1, tileBox, ws, scale);
  }
}

void overlappedBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                         FArrayBox& phi1, const Box& valid, Workspace& ws,
                         Real scale) {
  const sched::TileSet tiles = makeTileSet(cfg, valid);
  const auto traversal = sched::tileTraversal(
      tiles, cfg.order == TileOrder::Morton ? sched::TileOrder::Morton
                                            : sched::TileOrder::Lexicographic);
  for (std::size_t t : traversal) {
    overlappedRunTile(cfg, phi0, phi1, tiles.tileBox(t), ws, scale);
  }
}

void overlappedBoxParallel(const VariantConfig& cfg, const FArrayBox& phi0,
                           FArrayBox& phi1, const Box& valid,
                           WorkspacePool& pool, int nThreads, Real scale) {
  const sched::TileSet tiles = makeTileSet(cfg, valid);
  const auto traversal = sched::tileTraversal(
      tiles, cfg.order == TileOrder::Morton ? sched::TileOrder::Morton
                                            : sched::TileOrder::Lexicographic);
#pragma omp parallel num_threads(nThreads)
  {
    Workspace& ws = pool[omp_get_thread_num()];
#pragma omp for schedule(dynamic)
    for (std::size_t t = 0; t < traversal.size(); ++t) {
      overlappedRunTile(cfg, phi0, phi1, tiles.tileBox(traversal[t]), ws,
                        scale);
    }
  }
}

} // namespace fluxdiv::core::detail
