#pragma once
// TaskPool / TaskGraph: a persistent work-stealing thread pool executing
// level evaluations as dependency-tracked task graphs (docs/perf.md,
// "Task-parallel level executor"), and — since the throughput service mode
// (docs/serving.md) — a *shared* pool multiplexing the graphs of many
// concurrent solver instances through per-instance task domains with
// weighted fair scheduling.
//
// Two usage shapes:
//   * Synchronous, single graph: run(graph) — the original executor path.
//     The calling thread participates as worker 0 and returns when every
//     task has finished.
//   * Asynchronous, many graphs: createDomain() once per instance, then
//     submit(graph, domain) -> Ticket per dispatch, and wait()/waitAny()
//     to harvest completions. Tasks from different submissions interleave
//     in the same worker deques; fairness between domains is a per-worker
//     deficit round-robin weighted by the domain's admission weight.
//
// Concurrency design, for reviewers and TSan:
//   * The deque is the Chase-Lev work-stealing deque in the C11-atomics
//     formulation of Le et al. (PPoPP'13), with the standalone fences
//     replaced by equivalent-or-stronger seq_cst operations on top/bottom
//     (ThreadSanitizer does not model standalone fences; the operation
//     form is both correct and TSan-clean). One deque per
//     (domain, worker): the owner pushes/pops at the bottom, thieves CAS
//     the top, and a deque entry encodes (submission slot, task id) so
//     concurrent submissions never share per-graph state.
//   * Task release: the worker that completes the last dependency of a
//     task pushes it onto its *own* deque of the task's domain (Chase-Lev
//     permits bottom pushes only from the owner). The acq_rel decrement of
//     the dependency counter plus the release push/acquire steal chain
//     make every dependency's writes visible to the task that consumes
//     them; the final decrement of a submission's remaining-task counter
//     publishes the whole graph's effects to the thread that wait()s.
//   * Submission slots are preallocated and recycled only by wait()/
//     waitAny() after the completing worker has made its last access, so
//     a worker never dereferences a recycled submission: an encoded deque
//     entry is executable only while its submission still has unfinished
//     tasks, and stale entries in retired ring buffers always lose the
//     top CAS.
//   * Idle workers back off in three stages — CPU pause, yield, then
//     exponentially growing sleeps (capped) — so an oversubscribed or
//     drained service run does not burn cores busy-waiting; workers park
//     on a condition variable whenever no submission is active at all.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fluxdiv::core {

/// Dependency-tracked DAG of tasks for one TaskPool dispatch. Build it
/// single-threaded, run it, then discard (or rebuild) — the graph itself
/// holds no execution state, so the same graph may be run repeatedly (but
/// not concurrently with itself: per-dispatch state lives in the pool's
/// submission slot, one per in-flight dispatch).
class TaskGraph {
public:
  /// Task body; the argument is the executing pool worker id in
  /// [0, nThreads).
  using Fn = std::function<void(int)>;

  /// Add a task and return its id. `owner` is the worker whose deque
  /// initially holds the task when it has no dependencies (sticky
  /// box->thread affinity; work stealing may still move it). Owners out of
  /// range are wrapped into [0, nThreads) at run time. `label` names the
  /// task (box/tile/phase) in graph-construction and cycle diagnostics.
  int addTask(Fn fn, int owner = 0, std::string label = {});

  /// Declare that `after` must not start until `before` has finished.
  /// Throws std::invalid_argument (naming the tasks' labels) on an
  /// out-of-range id or a self-dependency.
  void addDep(int before, int after);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// The task's label, or "task#N" when none was given.
  [[nodiscard]] std::string label(int task) const;

private:
  friend class TaskPool;
  struct Node {
    Fn fn;
    int owner = 0;
    int initialDeps = 0;
    std::vector<int> successors;
    std::string label;
  };
  std::vector<Node> nodes_;
};

/// Deterministic adversarial orderings for TaskPool::runReplay(): the
/// graph runs serially on the calling thread, but the *choice* among
/// simultaneously-ready tasks is hostile, so dependence mistakes that the
/// work-stealing scheduler happens to hide become reproducible. Seeded and
/// printed on failure, so any run can be replayed exactly.
enum class ReplayOrder {
  None,       ///< not replaying: normal work-stealing execution
  Fifo,       ///< oldest-ready-first (breadth-first across boxes)
  Lifo,       ///< newest-ready-first (depth-first along one chain)
  StealHeavy, ///< maximize owner changes between consecutive tasks
  Random,     ///< seeded uniform choice among the ready set
};

/// Replay configuration; `seed` only affects ReplayOrder::Random.
struct ReplayMode {
  ReplayOrder order = ReplayOrder::None;
  std::uint64_t seed = 0;
};

/// All four adversarial orderings, for sweep loops.
inline constexpr ReplayOrder kReplayOrders[] = {
    ReplayOrder::Fifo, ReplayOrder::Lifo, ReplayOrder::StealHeavy,
    ReplayOrder::Random};

const char* replayOrderName(ReplayOrder order);

/// Parse "fifo" / "lifo" / "steal" / "random" / "none"; throws
/// std::invalid_argument otherwise.
ReplayOrder parseReplayOrder(const std::string& name);

/// Per-domain execution counters (docs/serving.md "Fairness"): how many
/// tasks of the domain ran, and how many of those ran on a worker other
/// than the one that made them ready (work stealing moved them).
struct DomainStats {
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
};

/// Pool-wide counters since construction (or resetStats()).
struct TaskPoolStats {
  std::uint64_t executed = 0;        ///< tasks run, all domains
  std::uint64_t stolen = 0;          ///< tasks run by a non-owner worker
  std::uint64_t domainCrossings = 0; ///< consecutive tasks on one worker
                                     ///< from different domains
  std::uint64_t idleSleeps = 0;      ///< backoff reached the sleep stage
  std::uint64_t submissions = 0;     ///< graphs dispatched
  double busySeconds = 0;            ///< summed task-body wall time across
                                     ///< workers; busySeconds / (nThreads
                                     ///< x wall) is pool utilization
};

/// Persistent work-stealing pool of `nThreads` workers (nThreads - 1
/// std::threads are spawned; the thread inside run()/wait()/waitAny()
/// participates as worker 0). run() is synchronous and not reentrant;
/// submit() may be called while other submissions are in flight, but all
/// submission/wait calls are expected from one orchestrator thread at a
/// time (additional waiters block without executing tasks).
class TaskPool {
public:
  /// Completion handle of one submit(). Tickets are single-use: the
  /// wait()/waitAny() call that observes completion recycles the
  /// underlying slot, after which finished() keeps reporting true.
  using Ticket = std::uint64_t;

  /// `pin` requests worker->CPU pinning (worker w to logical CPU
  /// w % hardware_concurrency; Linux only, best effort). The calling
  /// thread's affinity is never modified.
  explicit TaskPool(int nThreads, bool pin = false);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] int nThreads() const { return nThreads_; }

  /// Create a task domain with the given fair-share `weight` (>= 1; a
  /// weight-2 domain is offered twice the consecutive tasks of a weight-1
  /// domain in each worker's round-robin pass). Domain 0 always exists
  /// (weight 1, label "default") and is what run() uses. Domains live for
  /// the pool's lifetime. Throws std::invalid_argument on weight < 1 and
  /// std::length_error beyond the preallocated domain capacity.
  int createDomain(int weight = 1, std::string label = {});

  [[nodiscard]] int domainCount() const;

  /// Execute every task of `graph` in domain 0 and return when all have
  /// finished. Throws std::logic_error on a dependency cycle (checked up
  /// front, naming the cyclic tasks; nothing runs in that case).
  void run(TaskGraph& graph);

  /// Enqueue `graph` for asynchronous execution in `domain`. The graph —
  /// and everything its tasks reference — must stay alive until the
  /// returned ticket is observed finished. Same cycle check as run().
  /// With nThreads == 1 nothing executes until a wait()/waitAny() lends
  /// the calling thread to the pool.
  Ticket submit(TaskGraph& graph, int domain = 0);

  /// Has the submission completed? (True also for already-recycled
  /// tickets.)
  [[nodiscard]] bool finished(Ticket ticket) const;

  /// Block until `ticket` completes, executing tasks on the calling
  /// thread (as worker 0) while waiting — unless another thread already
  /// holds the worker-0 role, in which case this just blocks.
  void wait(Ticket ticket);

  /// Block until any of `tickets` completes and return its index
  /// (tickets already finished complete immediately). Executes tasks
  /// while waiting, like wait(). Throws std::invalid_argument on an empty
  /// list.
  std::size_t waitAny(const std::vector<Ticket>& tickets);

  /// Execute `graph` serially on the calling thread in the deterministic
  /// adversarial order `mode` (see ReplayOrder). Tasks still observe
  /// hostile worker attribution — currentWorker() and the fn argument
  /// report task % nThreads(), not the calling thread — so the shadow race
  /// detector sees the same cross-worker placement a real steal-happy run
  /// would produce. Same cycle check as run().
  void runReplay(TaskGraph& graph, const ReplayMode& mode);

  [[nodiscard]] DomainStats domainStats(int domain) const;
  [[nodiscard]] TaskPoolStats stats() const;
  void resetStats();

  /// Pool worker id of the calling thread while inside a task (or inside
  /// run() on the caller), -1 otherwise. Used by the shadow-memory race
  /// detector to attribute writes to pool workers — raw std::threads all
  /// report omp_get_thread_num() == 0, which would fold every worker into
  /// one and hide cross-worker races.
  [[nodiscard]] static int currentWorker();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int nThreads_ = 1;
};

} // namespace fluxdiv::core
