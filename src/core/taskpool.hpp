#pragma once
// TaskPool / TaskGraph: a persistent work-stealing thread pool executing a
// level evaluation as a dependency-tracked task graph (docs/perf.md,
// "Task-parallel level executor"). This replaces the `for box { omp
// parallel }` pattern for multi-box levels: (box, phase/tile) units become
// tasks, per-worker Chase-Lev deques keep a box's task chain on the worker
// that started it (sticky box->thread affinity, which is also what makes
// first-touch placement meaningful), and idle workers steal from the top
// of other deques.
//
// Concurrency design, for reviewers and TSan:
//   * The deque is the Chase-Lev work-stealing deque in the C11-atomics
//     formulation of Le et al. (PPoPP'13), with the standalone fences
//     replaced by equivalent-or-stronger seq_cst operations on top/bottom
//     (ThreadSanitizer does not model standalone fences; the operation
//     form is both correct and TSan-clean).
//   * Task release: the worker that completes the last dependency of a
//     task pushes it onto its *own* deque (Chase-Lev permits bottom pushes
//     only from the owner). The acq_rel decrement of the dependency
//     counter plus the release push/acquire steal chain make every
//     dependency's writes visible to the task that consumes them.
//   * Workers park on a condition variable between run() calls, so the
//     pool can persist across time steps without burning cycles; during a
//     run an idle worker yields (and briefly sleeps after repeated
//     failures) rather than spinning hot, which keeps oversubscribed
//     configurations (threads > cores) from starving the workers that
//     actually hold tasks.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fluxdiv::core {

/// Dependency-tracked DAG of tasks for one TaskPool::run(). Build it
/// single-threaded, run it, then discard (or rebuild) — the graph itself
/// holds no execution state, so the same graph may be run repeatedly.
class TaskGraph {
public:
  /// Task body; the argument is the executing pool worker id in
  /// [0, nThreads).
  using Fn = std::function<void(int)>;

  /// Add a task and return its id. `owner` is the worker whose deque
  /// initially holds the task when it has no dependencies (sticky
  /// box->thread affinity; work stealing may still move it). Owners out of
  /// range are wrapped into [0, nThreads) at run time. `label` names the
  /// task (box/tile/phase) in graph-construction and cycle diagnostics.
  int addTask(Fn fn, int owner = 0, std::string label = {});

  /// Declare that `after` must not start until `before` has finished.
  /// Throws std::invalid_argument (naming the tasks' labels) on an
  /// out-of-range id or a self-dependency.
  void addDep(int before, int after);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// The task's label, or "task#N" when none was given.
  [[nodiscard]] std::string label(int task) const;

private:
  friend class TaskPool;
  struct Node {
    Fn fn;
    int owner = 0;
    int initialDeps = 0;
    std::vector<int> successors;
    std::string label;
  };
  std::vector<Node> nodes_;
};

/// Deterministic adversarial orderings for TaskPool::runReplay(): the
/// graph runs serially on the calling thread, but the *choice* among
/// simultaneously-ready tasks is hostile, so dependence mistakes that the
/// work-stealing scheduler happens to hide become reproducible. Seeded and
/// printed on failure, so any run can be replayed exactly.
enum class ReplayOrder {
  None,       ///< not replaying: normal work-stealing execution
  Fifo,       ///< oldest-ready-first (breadth-first across boxes)
  Lifo,       ///< newest-ready-first (depth-first along one chain)
  StealHeavy, ///< maximize owner changes between consecutive tasks
  Random,     ///< seeded uniform choice among the ready set
};

/// Replay configuration; `seed` only affects ReplayOrder::Random.
struct ReplayMode {
  ReplayOrder order = ReplayOrder::None;
  std::uint64_t seed = 0;
};

/// All four adversarial orderings, for sweep loops.
inline constexpr ReplayOrder kReplayOrders[] = {
    ReplayOrder::Fifo, ReplayOrder::Lifo, ReplayOrder::StealHeavy,
    ReplayOrder::Random};

const char* replayOrderName(ReplayOrder order);

/// Parse "fifo" / "lifo" / "steal" / "random" / "none"; throws
/// std::invalid_argument otherwise.
ReplayOrder parseReplayOrder(const std::string& name);

/// Persistent work-stealing pool of `nThreads` workers (the calling thread
/// participates as worker 0; nThreads - 1 std::threads are spawned).
/// run() is synchronous and not reentrant.
class TaskPool {
public:
  /// `pin` requests worker->CPU pinning (worker w to logical CPU
  /// w % hardware_concurrency; Linux only, best effort). The calling
  /// thread's affinity is never modified.
  explicit TaskPool(int nThreads, bool pin = false);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] int nThreads() const { return nThreads_; }

  /// Execute every task of `graph` and return when all have finished.
  /// Throws std::logic_error on a dependency cycle (checked up front,
  /// naming the cyclic tasks; nothing runs in that case).
  void run(TaskGraph& graph);

  /// Execute `graph` serially on the calling thread in the deterministic
  /// adversarial order `mode` (see ReplayOrder). Tasks still observe
  /// hostile worker attribution — currentWorker() and the fn argument
  /// report task % nThreads(), not the calling thread — so the shadow race
  /// detector sees the same cross-worker placement a real steal-happy run
  /// would produce. Same cycle check as run().
  void runReplay(TaskGraph& graph, const ReplayMode& mode);

  /// Pool worker id of the calling thread while inside a task (or inside
  /// run() on the caller), -1 otherwise. Used by the shadow-memory race
  /// detector to attribute writes to pool workers — raw std::threads all
  /// report omp_get_thread_num() == 0, which would fold every worker into
  /// one and hide cross-worker races.
  [[nodiscard]] static int currentWorker();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int nThreads_ = 1;
};

} // namespace fluxdiv::core
