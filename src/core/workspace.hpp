#pragma once
// Per-thread scratch storage for the schedule executors, with byte
// accounting. The paper's Table I compares the temporary-data footprint of
// the schedule categories; Workspace::peakBytes() is the measured side of
// that comparison (see bench_table1_tempdata).

#include <array>
#include <cstddef>
#include <vector>

#include "grid/farraybox.hpp"

namespace fluxdiv::core {

/// Named scratch slots. A slot holds either an FArrayBox or a flat Real
/// buffer; executors key their temporaries by slot so repeated runs reuse
/// allocations instead of thrashing the allocator.
enum class Slot : int {
  Flux = 0,      ///< face-centered flux temporary (baseline / basic OT)
  Velocity,      ///< face-centered normal-velocity temporary
  VelocityX,     ///< per-direction velocity precomputes (CLO shift-fuse)
  VelocityY,
  VelocityZ,
  CarryX,        ///< shift-fuse flux carries: pencil / row / plane
  CarryY,
  CarryZ,
  Extra,
  kCount
};

/// Scratch arena owned by one thread (or shared by a box's threads for the
/// within-box cache structures).
class Workspace {
public:
  /// FArrayBox scratch in `slot`, (re)defined iff the requested shape
  /// differs from the current one. Contents are unspecified on return.
  grid::FArrayBox& fab(Slot slot, const grid::Box& box, int ncomp);

  /// Flat Real buffer in `slot` with at least `n` elements. Contents are
  /// unspecified on return (executors must write before reading).
  grid::Real* buffer(Slot slot, std::size_t n);

  /// Current bytes held across all slots.
  [[nodiscard]] std::size_t bytes() const;
  /// High-water mark of bytes() over the workspace's lifetime.
  [[nodiscard]] std::size_t peakBytes() const { return peak_; }

  /// Release all storage (keeps the peak counter).
  void clear();

private:
  void notePeak();

  std::array<grid::FArrayBox, static_cast<std::size_t>(Slot::kCount)> fabs_;
  std::array<std::vector<grid::Real>, static_cast<std::size_t>(Slot::kCount)>
      buffers_;
  std::size_t peak_ = 0;
};

/// One workspace per OpenMP thread, indexed by omp_get_thread_num().
class WorkspacePool {
public:
  explicit WorkspacePool(int nThreads = 0) { resize(nThreads); }

  void resize(int nThreads) {
    if (static_cast<int>(pool_.size()) < nThreads) {
      pool_.resize(static_cast<std::size_t>(nThreads));
    }
  }

  [[nodiscard]] int size() const { return static_cast<int>(pool_.size()); }

  Workspace& operator[](int tid) {
    return pool_[static_cast<std::size_t>(tid)];
  }

  /// Largest per-thread peak across the pool.
  [[nodiscard]] std::size_t maxPeakBytes() const;
  /// Sum of per-thread peaks (the "P x per-tile" footprint of Table I's
  /// overlapped-tile row).
  [[nodiscard]] std::size_t totalPeakBytes() const;

private:
  std::vector<Workspace> pool_;
};

} // namespace fluxdiv::core
