#include "core/exec_level.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/exec_common.hpp"
#include "sched/tiles.hpp"

namespace fluxdiv::core {

using detail::Box;
using detail::FArrayBox;
using detail::kNumComp;
using detail::kNumGhost;
using grid::LevelData;
using grid::Real;

LevelExecutor::LevelExecutor(VariantConfig cfg, int nThreads,
                             LevelExecOptions opts)
    : cfg_(cfg), nThreads_(nThreads), opts_(opts), runner_(cfg, nThreads),
      pool_(nThreads), taskPool_(nThreads, opts.pin) {}

LevelExecutor::~LevelExecutor() = default;

void LevelExecutor::validate(const LevelData& phi0,
                             const LevelData& phi1) const {
  if (phi0.size() != phi1.size()) {
    throw std::invalid_argument(
        "LevelExecutor: layout mismatch between levels");
  }
  if (phi0.nComp() != kNumComp || phi1.nComp() != kNumComp) {
    throw std::invalid_argument(
        "LevelExecutor: levels must have kNumComp components");
  }
  if (phi0.nGhost() < kNumGhost) {
    throw std::invalid_argument(
        "LevelExecutor: phi0 needs >= kNumGhost ghost layers");
  }
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    if (!cfg_.validFor(phi0.validBox(b).size(0))) {
      throw std::invalid_argument("variant '" + cfg_.name() +
                                  "' is not valid for this layout");
    }
  }
}

void LevelExecutor::buildComputeTasks(TaskGraph& graph,
                                      const LevelData& phi0,
                                      LevelData& phi1, Real scale,
                                      const OpTasks* ops) {
  switch (cfg_.family) {
  case ScheduleFamily::OverlappedTiles:
    if (opts_.policy == LevelPolicy::Hybrid) {
      buildOverlappedTileTasks(graph, phi0, phi1, scale, ops);
      return;
    }
    break;
  case ScheduleFamily::BlockedWavefront:
    if (opts_.policy == LevelPolicy::Hybrid) {
      buildBlockedWFTasks(graph, phi0, phi1, scale, ops);
      return;
    }
    break;
  case ScheduleFamily::SeriesOfLoops:
  case ScheduleFamily::ShiftFuse:
    // No independent intra-box units (the fused families sweep whole
    // planes/wavefronts): hybrid degrades to box-parallel, documented in
    // exec_level.hpp.
    break;
  }
  buildBoxTasks(graph, phi0, phi1, scale, ops);
}

void LevelExecutor::buildBoxTasks(TaskGraph& graph, const LevelData& phi0,
                                  LevelData& phi1, Real scale,
                                  const OpTasks* ops) {
  constexpr int g = kNumGhost;
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);

    auto addRegionTask = [&](const Box& region) {
      return graph.addTask(
          [this, src, dst, region, scale](int worker) {
            detail::runBoxSerialDispatch(cfg_, *src, *dst, region,
                                         pool_[worker], scale);
          },
          owner);
    };
    // Edges from the exchange ops whose ghost fill intersects the task's
    // phi0 read footprint (region grown by the stencil radius).
    auto addGhostDeps = [&](int task, const Box& readFootprint) {
      for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
        if (!(ghostRegion & readFootprint).empty()) {
          graph.addDep(opTask, task);
        }
      }
    };

    if (ops == nullptr) {
      addRegionTask(valid);
      continue;
    }
    // Exchange/compute overlap: the interior (valid shrunk by the stencil
    // radius) reads only valid cells of phi0, so it is ready before any
    // ghost op lands; the halo fringe is peeled into up to six slabs, each
    // waiting only for the ops that feed its side.
    const Box interior = valid.grow(-g);
    if (interior.empty()) {
      // Box too small to peel: one whole-box task behind all its ops.
      addGhostDeps(addRegionTask(valid), valid.grow(g));
      continue;
    }
    addRegionTask(interior);
    const Box zmid = valid.grow(2, -g);
    const Box zymid = zmid.grow(1, -g);
    const Box fringe[6] = {valid.lowSlab(2, g),  valid.highSlab(2, g),
                           zmid.lowSlab(1, g),   zmid.highSlab(1, g),
                           zymid.lowSlab(0, g),  zymid.highSlab(0, g)};
    for (const Box& slab : fringe) {
      if (slab.empty()) {
        continue;
      }
      addGhostDeps(addRegionTask(slab), slab.grow(g));
    }
  }
}

void LevelExecutor::buildOverlappedTileTasks(TaskGraph& graph,
                                             const LevelData& phi0,
                                             LevelData& phi1, Real scale,
                                             const OpTasks* ops) {
  constexpr int g = kNumGhost;
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);
    const sched::TileSet tiles = detail::makeTileSet(cfg_, valid);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Box tileBox = tiles.tileBox(t);
      const int task = graph.addTask(
          [this, src, dst, tileBox, scale](int worker) {
            detail::overlappedRunTile(cfg_, *src, *dst, tileBox,
                                      pool_[worker], scale);
          },
          owner);
      // Tiles whose read footprint stays inside the valid region never
      // touch ghosts: they run concurrently with the exchange ops.
      if (ops != nullptr && !valid.contains(tileBox.grow(g))) {
        for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
          if (!(ghostRegion & tileBox.grow(g)).empty()) {
            graph.addDep(opTask, task);
          }
        }
      }
    }
  }
}

void LevelExecutor::buildBlockedWFTasks(TaskGraph& graph,
                                        const LevelData& phi0,
                                        LevelData& phi1, Real scale,
                                        const OpTasks* ops) {
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);
    // Size the box-shared carry caches here, single-threaded (Workspace
    // bookkeeping is not thread-safe); the tile tasks get stable pointers.
    const detail::BlockedWFCaches caches =
        detail::blockedWFPrepareBox(cfg_, boxShared_[b], valid);
    const sched::TileSet tiles = detail::makeTileSet(cfg_, valid);
    const sched::TileWavefronts fronts(tiles);

    auto addOpDeps = [&](int task) {
      if (ops != nullptr) {
        for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
          (void)ghostRegion; // stage 0 conservatively waits for all halos
          graph.addDep(opTask, task);
        }
      }
    };
    auto addTileTask = [&](int comp, const Box& tileBox) {
      return graph.addTask(
          [this, src, dst, comp, caches, tileBox, valid,
           scale](int worker) {
            detail::blockedWFRunTile(cfg_, *src, *dst, comp, caches,
                                     tileBox, valid, pool_[worker], scale);
          },
          owner);
    };
    // The wavefront pipeline: every tile of front w waits for all tiles of
    // front w-1 of the same box (the carry caches flow along +x, +y, +z, so
    // the front-to-front barrier is a conservative superset of the true
    // tile dependences — the same ordering the OpenMP path enforces).
    auto addFrontSequence = [&](int comp, std::vector<int> prev,
                                bool depsOnOps) {
      for (std::size_t w = 0; w < fronts.count(); ++w) {
        std::vector<int> cur;
        cur.reserve(fronts.front(w).size());
        for (const std::size_t t : fronts.front(w)) {
          const int task = addTileTask(comp, tiles.tileBox(t));
          for (const int p : prev) {
            graph.addDep(p, task);
          }
          if (w == 0 && depsOnOps) {
            addOpDeps(task);
          }
          cur.push_back(task);
        }
        prev = std::move(cur);
      }
      return prev; // the last front's tasks
    };

    if (cfg_.comp == ComponentLoop::Inside) {
      // CLI: one pass over the tile wavefronts covers all components.
      addFrontSequence(-1, {}, /*depsOnOps=*/true);
    } else {
      // CLO: whole-box face-velocity pre-stage, then one wavefront pass
      // per component. Component c reuses the caches of c-1, so its first
      // front waits for c-1's last front (transitively, for all of c-1).
      grid::FArrayBox* vel = caches.vel;
      const int velTask = graph.addTask(
          [src, vel, valid](int) {
            detail::blockedWFPrecomputeVelocity(*src, *vel, valid);
          },
          owner);
      addOpDeps(velTask);
      std::vector<int> prev{velTask};
      for (int c = 0; c < kNumComp; ++c) {
        prev = addFrontSequence(c, std::move(prev), /*depsOnOps=*/false);
      }
    }
  }
}

void LevelExecutor::run(const LevelData& phi0, LevelData& phi1,
                        Real scale) {
  validate(phi0, phi1);
  if (opts_.policy == LevelPolicy::BoxSequential) {
    runner_.runLevel(phi0, phi1, scale);
    return;
  }
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    runner_.prepare(phi0.validBox(b)); // cached after the first box shape
  }
  if (boxShared_.size() < phi0.size()) {
    boxShared_.resize(phi0.size());
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].shadowBeginEpoch();
  }
#endif
  TaskGraph graph;
  buildComputeTasks(graph, phi0, phi1, scale, nullptr);
  taskPool_.run(graph);
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    detail::throwOnShadowViolations(phi1[b], "LevelExecutor::run");
  }
#endif
}

void LevelExecutor::runStep(LevelData& phi0, LevelData& phi1, Real scale) {
  if (opts_.policy == LevelPolicy::BoxSequential ||
      !opts_.overlapExchange) {
    phi0.exchange();
    run(phi0, phi1, scale);
    return;
  }
  validate(phi0, phi1);
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    runner_.prepare(phi0.validBox(b));
  }
  if (boxShared_.size() < phi0.size()) {
    boxShared_.resize(phi0.size());
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].shadowBeginEpoch();
  }
#endif
  grid::AsyncExchange ax = phi0.exchangeAsync();
  TaskGraph graph;
  OpTasks ops;
  ops.byBox.resize(phi0.size());
  for (std::size_t i = 0; i < ax.opCount(); ++i) {
    const grid::CopyOp& op = ax.op(i);
    const int task = graph.addTask([&ax, i](int) { ax.runOp(i); },
                                   ownerOf(op.destBox));
    ops.byBox[op.destBox].emplace_back(task, op.destRegion);
  }
  buildComputeTasks(graph, phi0, phi1, scale, &ops);
  taskPool_.run(graph);
  // Every op ran as a task, so this is a no-op; it documents (and would
  // repair) the invariant that the exchange is complete on return.
  ax.finish();
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    detail::throwOnShadowViolations(phi1[b], "LevelExecutor::runStep");
  }
#endif
}

void LevelExecutor::firstTouch(LevelData& level) {
  TaskGraph graph;
  for (std::size_t b = 0; b < level.size(); ++b) {
    graph.addTask([fab = &level[b]](int) { fab->setVal(0.0); },
                  ownerOf(b));
  }
  taskPool_.run(graph);
}

std::size_t LevelExecutor::maxPeakWorkspaceBytes() const {
  std::size_t worst = std::max(pool_.maxPeakBytes(),
                               runner_.maxPeakWorkspaceBytes());
  for (const auto& ws : boxShared_) {
    worst = std::max(worst, ws.peakBytes());
  }
  return worst;
}

std::size_t LevelExecutor::totalPeakWorkspaceBytes() const {
  std::size_t total =
      pool_.totalPeakBytes() + runner_.totalPeakWorkspaceBytes();
  for (const auto& ws : boxShared_) {
    total += ws.peakBytes();
  }
  return total;
}

} // namespace fluxdiv::core
