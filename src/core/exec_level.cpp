#include "core/exec_level.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/commcheck.hpp"
#include "analysis/graphcheck.hpp"
#include "core/exec_common.hpp"
#include "kernels/footprint.hpp"
#include "sched/tiles.hpp"

namespace fluxdiv::core {

using detail::Box;
using detail::FArrayBox;
using detail::kNumComp;
using detail::kNumGhost;
using grid::LevelData;
using grid::Real;

namespace {

using analysis::FieldId;
using analysis::GraphTask;
using analysis::TaskAccess;
using kernels::readRegion;
using kernels::Stage;
using kernels::velocityComp;

std::string coordTag(const grid::IntVect& p) {
  std::string s("(");
  s += std::to_string(p[0]);
  s += ',';
  s += std::to_string(p[1]);
  s += ',';
  s += std::to_string(p[2]);
  s += ')';
  return s;
}

TaskAccess acc(FieldId f, std::size_t box, int c0, int nc, const Box& r) {
  return TaskAccess{f, box, /*slot=*/0, c0, nc, r};
}

// ---------------------------------------------------------------------------
// Footprint annotations for the mirrored TaskGraphModel. Each helper takes
// the model-side task (null when no model is attached) and records the
// exact cell regions the task body touches, mirroring the per-stage
// regions lower.cpp declares from kernels/footprint.hpp.
// ---------------------------------------------------------------------------

/// Footprints of a whole-region serial evaluation (runBoxSerialDispatch):
/// phi1 += div(F(phi0)) over `region`. The per-direction phi0 read is
/// identical for every family — readRegion(EvalFlux1, d, region.faceBox(d))
/// equals readRegion(FusedCell, d, region), the region extended +/-2 along
/// d only — so the model is exact, not a conservative hull: the plus-shaped
/// union never includes corner ghost cells, which is what lets the
/// over-sync pass prove corner-op edges removable.
void noteSerialRegion(GraphTask* t, std::size_t b, const Box& region) {
  if (t == nullptr) {
    return;
  }
  for (int d = 0; d < grid::SpaceDim; ++d) {
    t->reads.push_back(acc(FieldId::Phi0, b, 0, kNumComp,
                           readRegion(Stage::FusedCell, d, region)));
  }
  t->writes.push_back(acc(FieldId::Phi1, b, 0, kNumComp, region));
}

/// Footprints of one blocked-wavefront tile sweep (blockedWFRunTile),
/// mirroring lower.cpp's blockedTileStage: fused over the tile, low-face
/// fluxes drawn from (and high-face fluxes deposited into) the box-global
/// co-dimension caches. `comp` is -1 for the CLI all-component sweep, else
/// the CLO pass component.
void noteBlockedTile(GraphTask* t, std::size_t b, int comp, const Box& tb,
                     const grid::IntVect& coords) {
  if (t == nullptr) {
    return;
  }
  const bool cli = comp < 0;
  const int c0 = cli ? 0 : comp;
  const int nc = cli ? kNumComp : 1;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    t->reads.push_back(acc(FieldId::Phi0, b, c0, nc,
                           readRegion(Stage::FusedCell, d, tb)));
    if (!cli) {
      t->reads.push_back(
          acc(FieldId::Velocity, b, d, 1, tb.faceBox(d)));
    }
    if (coords[d] > 0) {
      // Entry cells consume the -d neighbor's deposited boundary fluxes.
      t->reads.push_back(acc(analysis::taskCacheField(d), b, 0, nc,
                             analysis::taskSlotBox(d, tb)));
    }
    t->writes.push_back(acc(analysis::taskCacheField(d), b, 0, nc,
                            analysis::taskSlotBox(d, tb)));
  }
  t->writes.push_back(acc(FieldId::Phi1, b, c0, nc, tb));
}

/// Footprints of the CLO whole-box face-velocity precompute.
void noteVelocity(GraphTask* t, std::size_t b, const Box& valid) {
  if (t == nullptr) {
    return;
  }
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = valid.faceBox(d);
    t->reads.push_back(acc(FieldId::Phi0, b, velocityComp(d), 1,
                           readRegion(Stage::EvalFlux1, d, fb)));
    t->writes.push_back(acc(FieldId::Velocity, b, d, 1, fb));
  }
}

/// Footprints of one ghost-exchange copy op: writes the destination box's
/// ghost region, reads the (shifted) source region of the neighbor.
void noteExchangeOp(GraphTask* t, const grid::CopyOp& op) {
  if (t == nullptr) {
    return;
  }
  t->exchangeOp = true;
  t->writes.push_back(
      acc(FieldId::Phi0, op.destBox, 0, kNumComp, op.destRegion));
  t->reads.push_back(
      acc(FieldId::Phi0, op.srcBox, 0, kNumComp, op.srcRegion()));
}

#ifdef FLUXDIV_GRAPH_VERIFY
/// Gate failure: a freshly-built graph has unordered conflicting tasks (or
/// a cycle). Nothing has executed; fail with the first few witnesses.
void throwOnGraphDiagnostics(const analysis::TaskGraphModel& model) {
  const analysis::GraphCheckReport report =
      analysis::checkTaskGraph(model, /*findRemovable=*/false);
  if (report.ok()) {
    return;
  }
  std::vector<std::string> msgs;
  msgs.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    msgs.push_back(d.message());
  }
  throw std::logic_error(analysis::verifyFailureMessage(
      "LevelExecutor: task-graph verification failed for '" + model.name +
          "'",
      msgs));
}
#endif

/// Compile-time halves of the executor's gates (analysis::VerifyGate
/// handles the run-time environment override and the once-per-shape memo).
constexpr bool kGraphVerifyCompiled =
#ifdef FLUXDIV_GRAPH_VERIFY
    true;
#else
    false;
#endif
constexpr bool kCommVerifyCompiled =
#ifdef FLUXDIV_COMM_VERIFY
    true;
#else
    false;
#endif

} // namespace

int LevelExecutor::GraphBuild::addTask(TaskGraph::Fn fn, int owner,
                                       std::string label) {
  if (model != nullptr) {
    model->addTask(label);
  }
  return graph.addTask(std::move(fn), owner, std::move(label));
}

void LevelExecutor::GraphBuild::addDep(int before, int after) {
  graph.addDep(before, after);
  if (model != nullptr) {
    model->addEdge(before, after);
  }
}

analysis::GraphTask* LevelExecutor::GraphBuild::note(int task) const {
  return model != nullptr
             ? &model->tasks[static_cast<std::size_t>(task)]
             : nullptr;
}

LevelExecutor::LevelExecutor(VariantConfig cfg, int nThreads,
                             LevelExecOptions opts)
    : cfg_(cfg), nThreads_(nThreads), opts_(opts), runner_(cfg, nThreads),
      pool_(nThreads), taskPool_(nThreads, opts.pin),
      graphGate_("FLUXDIV_VERIFY_GRAPH", kGraphVerifyCompiled),
      commGate_("FLUXDIV_VERIFY_COMM", kCommVerifyCompiled) {}

LevelExecutor::~LevelExecutor() = default;

void LevelExecutor::validate(const LevelData& phi0,
                             const LevelData& phi1) const {
  if (phi0.size() != phi1.size()) {
    throw std::invalid_argument(
        "LevelExecutor: layout mismatch between levels");
  }
  if (phi0.nComp() != kNumComp || phi1.nComp() != kNumComp) {
    throw std::invalid_argument(
        "LevelExecutor: levels must have kNumComp components");
  }
  if (phi0.nGhost() < kNumGhost) {
    throw std::invalid_argument(
        "LevelExecutor: phi0 needs >= kNumGhost ghost layers");
  }
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    if (!cfg_.validFor(phi0.validBox(b).size(0))) {
      throw std::invalid_argument("variant '" + cfg_.name() +
                                  "' is not valid for this layout");
    }
  }
}

void LevelExecutor::buildComputeTasks(GraphBuild& build,
                                      const LevelData& phi0,
                                      LevelData& phi1, Real scale,
                                      const OpTasks* ops) {
  switch (cfg_.family) {
  case ScheduleFamily::OverlappedTiles:
    if (opts_.policy == LevelPolicy::Hybrid) {
      buildOverlappedTileTasks(build, phi0, phi1, scale, ops);
      return;
    }
    break;
  case ScheduleFamily::BlockedWavefront:
    if (opts_.policy == LevelPolicy::Hybrid) {
      buildBlockedWFTasks(build, phi0, phi1, scale, ops);
      return;
    }
    break;
  case ScheduleFamily::SeriesOfLoops:
  case ScheduleFamily::ShiftFuse:
    // No independent intra-box units (the fused families sweep whole
    // planes/wavefronts): hybrid degrades to box-parallel, documented in
    // exec_level.hpp.
    break;
  }
  buildBoxTasks(build, phi0, phi1, scale, ops);
}

void LevelExecutor::buildBoxTasks(GraphBuild& build, const LevelData& phi0,
                                  LevelData& phi1, Real scale,
                                  const OpTasks* ops) {
  constexpr int g = kNumGhost;
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);
    const std::string boxTag = "box " + std::to_string(b);

    auto addRegionTask = [&](const Box& region, std::string label) {
      const int task = build.addTask(
          [this, src, dst, region, scale](int worker) {
            detail::runBoxSerialDispatch(cfg_, *src, *dst, region,
                                         pool_[worker], scale);
          },
          owner, std::move(label));
      noteSerialRegion(build.note(task), b, region);
      return task;
    };
    // Edges from the exchange ops whose ghost fill intersects the task's
    // phi0 read footprint (region grown by the stencil radius).
    auto addGhostDeps = [&](int task, const Box& readFootprint) {
      for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
        if (!(ghostRegion & readFootprint).empty()) {
          build.addDep(opTask, task);
        }
      }
    };

    if (ops == nullptr) {
      addRegionTask(valid, boxTag);
      continue;
    }
    // Exchange/compute overlap: the interior (valid shrunk by the stencil
    // radius) reads only valid cells of phi0, so it is ready before any
    // ghost op lands; the halo fringe is peeled into up to six slabs, each
    // waiting only for the ops that feed its side.
    const Box interior = valid.grow(-g);
    if (interior.empty()) {
      // Box too small to peel: one whole-box task behind all its ops.
      addGhostDeps(addRegionTask(valid, boxTag), valid.grow(g));
      continue;
    }
    addRegionTask(interior, boxTag + " interior");
    const Box zmid = valid.grow(2, -g);
    const Box zymid = zmid.grow(1, -g);
    struct Slab {
      Box box;
      const char* side;
    };
    const Slab fringe[6] = {{valid.lowSlab(2, g), "z-lo"},
                            {valid.highSlab(2, g), "z-hi"},
                            {zmid.lowSlab(1, g), "y-lo"},
                            {zmid.highSlab(1, g), "y-hi"},
                            {zymid.lowSlab(0, g), "x-lo"},
                            {zymid.highSlab(0, g), "x-hi"}};
    for (const Slab& slab : fringe) {
      if (slab.box.empty()) {
        continue;
      }
      addGhostDeps(
          addRegionTask(slab.box,
                        boxTag + " fringe " + std::string(slab.side)),
          slab.box.grow(g));
    }
  }
}

void LevelExecutor::buildOverlappedTileTasks(GraphBuild& build,
                                             const LevelData& phi0,
                                             LevelData& phi1, Real scale,
                                             const OpTasks* ops) {
  constexpr int g = kNumGhost;
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);
    const std::string boxTag = "box " + std::to_string(b);
    const sched::TileSet tiles = detail::makeTileSet(cfg_, valid);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Box tileBox = tiles.tileBox(t);
      const int task = build.addTask(
          [this, src, dst, tileBox, scale](int worker) {
            detail::overlappedRunTile(cfg_, *src, *dst, tileBox,
                                      pool_[worker], scale);
          },
          owner, boxTag + " tile " + coordTag(tiles.tileCoords(t)));
      noteSerialRegion(build.note(task), b, tileBox);
      // Tiles whose read footprint stays inside the valid region never
      // touch ghosts: they run concurrently with the exchange ops.
      if (ops != nullptr && !valid.contains(tileBox.grow(g))) {
        for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
          if (!(ghostRegion & tileBox.grow(g)).empty()) {
            build.addDep(opTask, task);
          }
        }
      }
    }
  }
}

void LevelExecutor::buildBlockedWFTasks(GraphBuild& build,
                                        const LevelData& phi0,
                                        LevelData& phi1, Real scale,
                                        const OpTasks* ops) {
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    const Box valid = phi0.validBox(b);
    const FArrayBox* src = &phi0[b];
    FArrayBox* dst = &phi1[b];
    const int owner = ownerOf(b);
    const std::string boxTag = "box " + std::to_string(b);
    // Size the box-shared carry caches here, single-threaded (Workspace
    // bookkeeping is not thread-safe); the tile tasks get stable pointers.
    const detail::BlockedWFCaches caches =
        detail::blockedWFPrepareBox(cfg_, boxShared_[b], valid);
    const sched::TileSet tiles = detail::makeTileSet(cfg_, valid);
    const sched::TileWavefronts fronts(tiles);

    auto addOpDeps = [&](int task) {
      if (ops != nullptr) {
        for (const auto& [opTask, ghostRegion] : ops->byBox[b]) {
          (void)ghostRegion; // stage 0 conservatively waits for all halos
          build.addDep(opTask, task);
        }
      }
    };
    auto addTileTask = [&](int comp, std::size_t tile, std::size_t w) {
      const Box tileBox = tiles.tileBox(tile);
      std::string label = boxTag + " tile " +
                          coordTag(tiles.tileCoords(tile)) + " front " +
                          std::to_string(w);
      if (comp >= 0) {
        label += " c=" + std::to_string(comp);
      }
      const int task = build.addTask(
          [this, src, dst, comp, caches, tileBox, valid,
           scale](int worker) {
            detail::blockedWFRunTile(cfg_, *src, *dst, comp, caches,
                                     tileBox, valid, pool_[worker], scale);
          },
          owner, std::move(label));
      noteBlockedTile(build.note(task), b, comp, tileBox,
                      tiles.tileCoords(tile));
      return task;
    };
    // The wavefront pipeline: every tile of front w waits for all tiles of
    // front w-1 of the same box (the carry caches flow along +x, +y, +z, so
    // the front-to-front barrier is a conservative superset of the true
    // tile dependences — the same ordering the OpenMP path enforces).
    auto addFrontSequence = [&](int comp, std::vector<int> prev,
                                bool depsOnOps) {
      for (std::size_t w = 0; w < fronts.count(); ++w) {
        std::vector<int> cur;
        cur.reserve(fronts.front(w).size());
        for (const std::size_t t : fronts.front(w)) {
          const int task = addTileTask(comp, t, w);
          for (const int p : prev) {
            build.addDep(p, task);
          }
          if (w == 0 && depsOnOps) {
            addOpDeps(task);
          }
          cur.push_back(task);
        }
        prev = std::move(cur);
      }
      return prev; // the last front's tasks
    };

    if (cfg_.comp == ComponentLoop::Inside) {
      // CLI: one pass over the tile wavefronts covers all components.
      addFrontSequence(-1, {}, /*depsOnOps=*/true);
    } else {
      // CLO: whole-box face-velocity pre-stage, then one wavefront pass
      // per component. Component c reuses the caches of c-1, so its first
      // front waits for c-1's last front (transitively, for all of c-1).
      grid::FArrayBox* vel = caches.vel;
      const int velTask = build.addTask(
          [src, vel, valid](int) {
            detail::blockedWFPrecomputeVelocity(*src, *vel, valid);
          },
          owner, boxTag + " velocity");
      noteVelocity(build.note(velTask), b, valid);
      addOpDeps(velTask);
      std::vector<int> prev{velTask};
      for (int c = 0; c < kNumComp; ++c) {
        prev = addFrontSequence(c, std::move(prev), /*depsOnOps=*/false);
      }
    }
  }
}

void LevelExecutor::initGraphModel(analysis::TaskGraphModel& model,
                                   const LevelData& phi0,
                                   bool withExchange) const {
  model.name = cfg_.name() + " [" +
               std::string(levelPolicyName(opts_.policy)) +
               (withExchange ? " runStep]" : " run]");
  model.ghostsPreExchanged = !withExchange;
  model.validBoxes.clear();
  model.validBoxes.reserve(phi0.size());
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    model.validBoxes.push_back(phi0.validBox(b));
  }
}

std::string LevelExecutor::levelShapeKey(const LevelData& phi0) {
  const Box first = phi0.validBox(0);
  grid::IntVect lo = first.lo();
  grid::IntVect hi = first.hi();
  for (std::size_t b = 1; b < phi0.size(); ++b) {
    lo = grid::IntVect::min(lo, phi0.validBox(b).lo());
    hi = grid::IntVect::max(hi, phi0.validBox(b).hi());
  }
  std::string key = std::to_string(phi0.size());
  for (const grid::IntVect& v : {first.lo(), first.hi(), lo, hi}) {
    for (int d = 0; d < grid::SpaceDim; ++d) {
      key += ',' + std::to_string(v[d]);
    }
  }
  return key;
}

void LevelExecutor::verifyCommOnce(const LevelData& phi0) {
  if (phi0.size() == 0 || phi0.nGhost() <= 0 ||
      !commGate_.shouldVerify(levelShapeKey(phi0) + ";g" +
                              std::to_string(phi0.nGhost()))) {
    return;
  }
  analysis::CommPlanModel model = analysis::buildCommPlanModel(
      phi0.layout(), phi0.copier(), phi0.nComp());
  for (const int nranks : {1, 2, 4, 8}) {
    if (static_cast<std::size_t>(nranks) > phi0.size()) {
      break;
    }
    analysis::applyRankPartition(model, nranks);
    const analysis::CommCheckReport report =
        analysis::checkCommPlan(model);
    if (report.ok()) {
      continue;
    }
    std::vector<std::string> msgs;
    msgs.reserve(report.diagnostics.size());
    for (const auto& d : report.diagnostics) {
      msgs.push_back(d.message());
    }
    throw std::logic_error(analysis::verifyFailureMessage(
        "LevelExecutor: exchange-plan verification failed for '" +
            model.name + "' under " + std::to_string(nranks) + " rank(s)",
        msgs));
  }
}

void LevelExecutor::dispatch(TaskGraph& graph) {
  if (opts_.replay.order == ReplayOrder::None) {
    taskPool_.run(graph);
  } else {
    taskPool_.runReplay(graph, opts_.replay);
  }
}

std::string LevelExecutor::whereTag(const char* entry) const {
  std::string where(entry);
  if (opts_.replay.order != ReplayOrder::None) {
    where += std::string(" [replay ") +
             replayOrderName(opts_.replay.order) + " seed " +
             std::to_string(opts_.replay.seed) + "]";
  }
  return where;
}

void LevelExecutor::run(const LevelData& phi0, LevelData& phi1,
                        Real scale) {
  validate(phi0, phi1);
  if (opts_.policy == LevelPolicy::BoxSequential) {
    runner_.runLevel(phi0, phi1, scale);
    return;
  }
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    runner_.prepare(phi0.validBox(b)); // cached after the first box shape
  }
  if (boxShared_.size() < phi0.size()) {
    boxShared_.resize(phi0.size());
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].shadowBeginEpoch();
  }
#endif
  TaskGraph graph;
  GraphBuild build{graph};
#ifdef FLUXDIV_GRAPH_VERIFY
  analysis::TaskGraphModel model;
  if (graphGate_.shouldVerify(levelShapeKey(phi0) + ";run")) {
    initGraphModel(model, phi0, /*withExchange=*/false);
    build.model = &model;
  }
#endif
  buildComputeTasks(build, phi0, phi1, scale, nullptr);
#ifdef FLUXDIV_GRAPH_VERIFY
  if (build.model != nullptr) {
    throwOnGraphDiagnostics(model);
  }
#endif
  dispatch(graph);
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    detail::throwOnShadowViolations(
        phi1[b], whereTag("LevelExecutor::run").c_str());
  }
#endif
}

void LevelExecutor::runStep(LevelData& phi0, LevelData& phi1, Real scale) {
#ifdef FLUXDIV_COMM_VERIFY
  verifyCommOnce(phi0);
#endif
  if (opts_.policy == LevelPolicy::BoxSequential ||
      !opts_.overlapExchange) {
    phi0.exchange();
    run(phi0, phi1, scale);
    return;
  }
  validate(phi0, phi1);
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    runner_.prepare(phi0.validBox(b));
  }
  if (boxShared_.size() < phi0.size()) {
    boxShared_.resize(phi0.size());
  }
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].shadowBeginEpoch();
  }
#endif
  grid::AsyncExchange ax = phi0.exchangeAsync();
  TaskGraph graph;
  GraphBuild build{graph};
#ifdef FLUXDIV_GRAPH_VERIFY
  analysis::TaskGraphModel model;
  if (graphGate_.shouldVerify(levelShapeKey(phi0) + ";runStep")) {
    initGraphModel(model, phi0, /*withExchange=*/true);
    build.model = &model;
  }
#endif
  OpTasks ops;
  ops.byBox.resize(phi0.size());
  for (std::size_t i = 0; i < ax.opCount(); ++i) {
    const grid::CopyOp& op = ax.op(i);
    const int task = build.addTask(
        [&ax, i](int) { ax.runOp(i); }, ownerOf(op.destBox),
        "exchange op " + std::to_string(i) + " -> box " +
            std::to_string(op.destBox));
    noteExchangeOp(build.note(task), op);
    ops.byBox[op.destBox].emplace_back(task, op.destRegion);
  }
  buildComputeTasks(build, phi0, phi1, scale, &ops);
#ifdef FLUXDIV_GRAPH_VERIFY
  if (build.model != nullptr) {
    throwOnGraphDiagnostics(model);
  }
#endif
  dispatch(graph);
  // Every op ran as a task, so this is a no-op; it documents (and would
  // repair) the invariant that the exchange is complete on return.
  ax.finish();
#ifdef FLUXDIV_SHADOW_CHECK
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    detail::throwOnShadowViolations(
        phi1[b], whereTag("LevelExecutor::runStep").c_str());
  }
#endif
}

analysis::TaskGraphModel LevelExecutor::lowerGraph(LevelData& phi0,
                                                   LevelData& phi1,
                                                   bool withExchange) {
  if (opts_.policy == LevelPolicy::BoxSequential) {
    throw std::invalid_argument(
        "LevelExecutor::lowerGraph: the sequential policy has no task "
        "graph");
  }
  validate(phi0, phi1);
  if (boxShared_.size() < phi0.size()) {
    boxShared_.resize(phi0.size()); // blockedWFPrepareBox runs at build
  }
  analysis::TaskGraphModel model;
  initGraphModel(model, phi0, withExchange);
  TaskGraph graph; // built alongside the model, never executed
  GraphBuild build{graph, &model};
  if (!withExchange) {
    buildComputeTasks(build, phi0, phi1, /*scale=*/1.0, nullptr);
    return model;
  }
  grid::AsyncExchange ax = phi0.exchangeAsync();
  OpTasks ops;
  ops.byBox.resize(phi0.size());
  for (std::size_t i = 0; i < ax.opCount(); ++i) {
    const grid::CopyOp& op = ax.op(i);
    const int task = build.addTask(
        [&ax, i](int) { ax.runOp(i); }, ownerOf(op.destBox),
        "exchange op " + std::to_string(i) + " -> box " +
            std::to_string(op.destBox));
    noteExchangeOp(build.note(task), op);
    ops.byBox[op.destBox].emplace_back(task, op.destRegion);
  }
  buildComputeTasks(build, phi0, phi1, /*scale=*/1.0, &ops);
  // The op tasks never execute as tasks here; complete the exchange for
  // real so phi0 is not left with stale ghosts.
  ax.finish();
  return model;
}

void LevelExecutor::firstTouch(LevelData& level) {
  TaskGraph graph;
  for (std::size_t b = 0; b < level.size(); ++b) {
    graph.addTask([fab = &level[b]](int) { fab->setVal(0.0); },
                  ownerOf(b), "first-touch box " + std::to_string(b));
  }
  taskPool_.run(graph);
}

std::size_t LevelExecutor::maxPeakWorkspaceBytes() const {
  std::size_t worst = std::max(pool_.maxPeakBytes(),
                               runner_.maxPeakWorkspaceBytes());
  for (const auto& ws : boxShared_) {
    worst = std::max(worst, ws.peakBytes());
  }
  return worst;
}

std::size_t LevelExecutor::totalPeakWorkspaceBytes() const {
  std::size_t total =
      pool_.totalPeakBytes() + runner_.totalPeakWorkspaceBytes();
  for (const auto& ws : boxShared_) {
    total += ws.peakBytes();
  }
  return total;
}

} // namespace fluxdiv::core
