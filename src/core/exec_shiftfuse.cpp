// Shifted-and-fused schedule (paper Sec. IV-B): the per-direction face and
// cell loops are shifted and fused into a single sweep over cells. Serial
// sweeps carry flux values in a scalar/row/plane set of temporaries (Table
// I row 2); the within-box parallelization recovers parallelism with a
// per-iteration wavefront over the cell diagonal, which requires
// co-dimension flux caches instead.

#include <omp.h>

#include "core/exec_common.hpp"
#include "core/exec_fused.hpp"
#include "sched/partition.hpp"

namespace fluxdiv::core::detail {

void precomputeFaceVelocity(const FArrayBox& phi0, FArrayBox& vel,
                            const Box& valid, int nth, int tid) {
  const Idx ip(phi0);
  const Idx iv(vel);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = sched::zSlab(valid.faceBox(d), nth, tid);
    if (fb.empty()) {
      continue;
    }
    const std::int64_t s = ip.stride(d);
    const Real* pv = phi0.dataPtr(kernels::velocityComp(d));
    Real* out = vel.dataPtr(d);
    const int nx = fb.size(0);
    for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
      for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
        const Real* prow = pv + ip(fb.lo(0), j, k);
        Real* orow = out + iv(fb.lo(0), j, k);
        for (int i = 0; i < nx; ++i) {
          orow[i] = kernels::evalFlux1(prow + i, s);
        }
      }
    }
  }
}

namespace {

/// Serial fused sweep, component loop inside: one pass over the cells with
/// carry temporaries of size C, C*nx, and C*nx*ny (2 + 2N + 2N^2 scaling of
/// Table I).
void serialCLI(const FArrayBox& phi0, FArrayBox& phi1, const Box& valid,
               Workspace& ws, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  const ConstComps p(phi0);
  const MutComps out(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  Real* carryX = ws.buffer(Slot::CarryX, kNumComp);
  Real* rowY = ws.buffer(Slot::CarryY,
                         static_cast<std::size_t>(nx) * kNumComp);
  Real* planeZ = ws.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * kNumComp);
  for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
    for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
      for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
        const int ii = i - valid.lo(0);
        const int jj = j - valid.lo(1);
        fusedCellCLI(p, out, ip(i, j, k), io(i, j, k), ip.sy, ip.sz,
                     /*freshX=*/i == valid.lo(0),
                     /*freshY=*/j == valid.lo(1),
                     /*freshZ=*/k == valid.lo(2), carryX,
                     rowY + static_cast<std::size_t>(ii) * kNumComp,
                     planeZ + (static_cast<std::size_t>(jj) * nx + ii) *
                                  kNumComp,
                     scale);
      }
    }
  }
}

/// Serial fused sweep, component loop outside: per component, a fused pass
/// with scalar carries; the face-averaged velocities for all three
/// directions are precomputed (the 3(N+1)^3 velocity temporary of Table I).
void serialCLO(const FArrayBox& phi0, FArrayBox& phi1, const Box& valid,
               Workspace& ws, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  FArrayBox& vel = ws.fab(Slot::Velocity, faceSupersetBox(valid), 3);
  precomputeFaceVelocity(phi0, vel, valid, 1, 0);
  const Idx iv(vel);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  Real* carryX = ws.buffer(Slot::CarryX, 1);
  Real* rowY = ws.buffer(Slot::CarryY, static_cast<std::size_t>(nx));
  Real* planeZ =
      ws.buffer(Slot::CarryZ, static_cast<std::size_t>(nx) * ny);
  const Real* velx = vel.dataPtr(0);
  const Real* vely = vel.dataPtr(1);
  const Real* velz = vel.dataPtr(2);
  for (int c = 0; c < kNumComp; ++c) {
    const Real* pc = phi0.dataPtr(c);
    Real* outc = phi1.dataPtr(c);
    for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
      for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
        for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
          const int ii = i - valid.lo(0);
          const int jj = j - valid.lo(1);
          fusedCellCLO(pc, outc, ip(i, j, k), io(i, j, k), ip.sy, ip.sz,
                       velx, vely, velz, iv(i, j, k), iv.sy, iv.sz,
                       i == valid.lo(0), j == valid.lo(1),
                       k == valid.lo(2), carryX, rowY + ii,
                       planeZ + static_cast<std::size_t>(jj) * nx + ii,
                       scale);
        }
      }
    }
  }
}

} // namespace

void shiftFuseBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, valid, 0, kNumComp);
  if (cfg.comp == ComponentLoop::Inside) {
    serialCLI(phi0, phi1, valid, ws, scale);
  } else {
    serialCLO(phi0, phi1, valid, ws, scale);
  }
}

void shiftFuseBoxWavefront(const VariantConfig& cfg, const FArrayBox& phi0,
                           FArrayBox& phi1, const Box& valid,
                           WorkspacePool& pool, int nThreads, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const int nFronts = nx + ny + nz - 2;
  const std::size_t entries = cfg.comp == ComponentLoop::Inside
                                  ? static_cast<std::size_t>(kNumComp)
                                  : 1u;
  // Co-dimension flux caches shared by the team: cacheX[j][k] holds the
  // most recent x-face flux of the (j,k) pencil, and so on. Cells on one
  // wavefront touch pairwise-distinct slots of every cache.
  Workspace& shared = pool[0];
  Real* cacheX = shared.buffer(
      Slot::CarryX, static_cast<std::size_t>(ny) * nz * entries);
  Real* cacheY = shared.buffer(
      Slot::CarryY, static_cast<std::size_t>(nx) * nz * entries);
  Real* cacheZ = shared.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * entries);

  if (cfg.comp == ComponentLoop::Inside) {
    const ConstComps p(phi0);
    const MutComps out(phi1);
#pragma omp parallel num_threads(nThreads)
    for (int w = 0; w < nFronts; ++w) {
      // Each (j,k) pair contributes at most one cell to wavefront w.
#pragma omp for collapse(2)
      for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
        for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
          const int ii = w - (k - valid.lo(2)) - (j - valid.lo(1));
          if (ii < 0 || ii >= nx) {
            continue;
          }
          const int i = valid.lo(0) + ii;
          const int jj = j - valid.lo(1);
          const int kk = k - valid.lo(2);
          FLUXDIV_SHADOW_WRITE(phi1, Box(IntVect(i, j, k), IntVect(i, j, k)),
                               0, kNumComp);
          fusedCellCLI(
              p, out, ip(i, j, k), io(i, j, k), ip.sy, ip.sz, ii == 0,
              jj == 0, kk == 0,
              cacheX + (static_cast<std::size_t>(kk) * ny + jj) * kNumComp,
              cacheY + (static_cast<std::size_t>(kk) * nx + ii) * kNumComp,
              cacheZ + (static_cast<std::size_t>(jj) * nx + ii) * kNumComp,
              scale);
        }
      }
      // implicit barrier of the omp for separates wavefronts
    }
  } else {
    FArrayBox& vel = shared.fab(Slot::Velocity, faceSupersetBox(valid), 3);
    const Idx iv(vel);
    const Real* velx = vel.dataPtr(0);
    const Real* vely = vel.dataPtr(1);
    const Real* velz = vel.dataPtr(2);
#pragma omp parallel num_threads(nThreads)
    {
      precomputeFaceVelocity(phi0, vel, valid, omp_get_num_threads(),
                             omp_get_thread_num());
#pragma omp barrier
      for (int c = 0; c < kNumComp; ++c) {
        const Real* pc = phi0.dataPtr(c);
        Real* outc = phi1.dataPtr(c);
        for (int w = 0; w < nFronts; ++w) {
#pragma omp for collapse(2)
          for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
            for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
              const int ii = w - (k - valid.lo(2)) - (j - valid.lo(1));
              if (ii < 0 || ii >= nx) {
                continue;
              }
              const int i = valid.lo(0) + ii;
              const int jj = j - valid.lo(1);
              const int kk = k - valid.lo(2);
              FLUXDIV_SHADOW_WRITE(
                  phi1, Box(IntVect(i, j, k), IntVect(i, j, k)), c, 1);
              fusedCellCLO(pc, outc, ip(i, j, k), io(i, j, k), ip.sy,
                           ip.sz, velx, vely, velz, iv(i, j, k), iv.sy,
                           iv.sz, ii == 0, jj == 0, kk == 0,
                           cacheX + static_cast<std::size_t>(kk) * ny + jj,
                           cacheY + static_cast<std::size_t>(kk) * nx + ii,
                           cacheZ + static_cast<std::size_t>(jj) * nx + ii,
                           scale);
            }
          }
        }
      }
    }
  }
}

} // namespace fluxdiv::core::detail
