// Shifted-and-fused schedule (paper Sec. IV-B): the per-direction face and
// cell loops are shifted and fused into a single sweep over cells. Serial
// sweeps carry flux values in a row/plane set of temporaries (Table I row
// 2); the within-box parallelization recovers parallelism with a
// per-iteration wavefront over the cell diagonal, which requires
// co-dimension flux caches instead.
//
// The serial sweeps are vectorized one x-row at a time through the pencil
// layer (kernels/pencil.hpp): the y/z carries become whole carry rows
// rolled forward by fusedFaceDiffPencil, and the x carry chain becomes a
// fresh (nx+1)-face flux row — each x-face flux is still computed exactly
// once per sweep (the carried value and the fresh value are the same
// expression on the same cells), so the schedule's recomputation count and
// per-(cell, component) x,y,z accumulation order — hence the bits — are
// unchanged. The wavefront executor keeps the per-cell fused iteration:
// cells of one diagonal front are not contiguous in any direction, so
// there is no pencil to form.

#include <omp.h>

#include "core/exec_common.hpp"
#include "core/exec_fused.hpp"
#include "kernels/pencil.hpp"
#include "sched/partition.hpp"

namespace fluxdiv::core::detail {

void precomputeFaceVelocity(const FArrayBox& phi0, FArrayBox& vel,
                            const Box& valid, int nth, int tid) {
  const Idx ip(phi0);
  const Idx iv(vel);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = sched::zSlab(valid.faceBox(d), nth, tid);
    if (fb.empty()) {
      continue;
    }
    const std::int64_t s = ip.stride(d);
    const Real* pv = phi0.dataPtr(kernels::velocityComp(d));
    Real* out = vel.dataPtr(d);
    const int nx = fb.size(0);
    for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
      for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
        kernels::pencil::evalFlux1Pencil(pv + ip(fb.lo(0), j, k), s, nx,
                                         out + iv(fb.lo(0), j, k));
      }
    }
  }
}

namespace {

namespace pencil = kernels::pencil;

/// Serial fused sweep, component loop inside: one pass over the cell rows
/// with carry temporaries of size ~C*nx (x-face row), C*nx (y row carry),
/// and C*nx*ny (z plane carry) — the 2N + 2N^2 scaling of Table I row 2.
/// Carry rows are component-major (c*nx + ii) so each (row, component)
/// step is one contiguous pencil.
void serialCLI(const FArrayBox& phi0, FArrayBox& phi1, const Box& valid,
               Workspace& ws, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  const ConstComps p(phi0);
  const MutComps out(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  Real* fface =
      ws.buffer(Slot::CarryX, static_cast<std::size_t>(nx) + 1);
  Real* hi = ws.buffer(Slot::Extra, static_cast<std::size_t>(nx));
  Real* rowY = ws.buffer(Slot::CarryY,
                         static_cast<std::size_t>(nx) * kNumComp);
  Real* planeZ = ws.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * kNumComp);
  for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
    const bool freshZ = k == valid.lo(2);
    for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
      const bool freshY = j == valid.lo(1);
      const int jj = j - valid.lo(1);
      const std::int64_t a = ip(valid.lo(0), j, k);
      const std::int64_t o = io(valid.lo(0), j, k);
      for (int c = 0; c < kNumComp; ++c) {
        // x: all nx+1 face fluxes of the row, then the shifted difference.
        pencil::faceFluxPencil(p[c] + a, p[1] + a, 1, nx + 1, fface);
        pencil::accumulatePencil(fface, 1, nx, scale, out[c] + o);
        // y: high faces fresh; low faces carried from row j-1 (computed
        // fresh on the sweep's low boundary).
        Real* carryY = rowY + static_cast<std::size_t>(c) * nx;
        if (freshY) {
          pencil::faceFluxPencil(p[c] + a, p[2] + a, ip.sy, nx, carryY);
        }
        pencil::faceFluxPencil(p[c] + a + ip.sy, p[2] + a + ip.sy, ip.sy,
                               nx, hi);
        pencil::fusedFaceDiffPencil(hi, carryY, nx, scale, out[c] + o);
        // z: same with the plane carry of row (j) from plane k-1.
        Real* carryZ =
            planeZ + (static_cast<std::size_t>(c) * ny + jj) * nx;
        if (freshZ) {
          pencil::faceFluxPencil(p[c] + a, p[3] + a, ip.sz, nx, carryZ);
        }
        pencil::faceFluxPencil(p[c] + a + ip.sz, p[3] + a + ip.sz, ip.sz,
                               nx, hi);
        pencil::fusedFaceDiffPencil(hi, carryZ, nx, scale, out[c] + o);
      }
    }
  }
}

/// Serial fused sweep, component loop outside: per component, a fused pass
/// with row/plane carries; the face-averaged velocities for all three
/// directions are precomputed (the 3(N+1)^3 velocity temporary of Table I).
void serialCLO(const FArrayBox& phi0, FArrayBox& phi1, const Box& valid,
               Workspace& ws, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  FArrayBox& vel = ws.fab(Slot::Velocity, faceSupersetBox(valid), 3);
  precomputeFaceVelocity(phi0, vel, valid, 1, 0);
  const Idx iv(vel);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  Real* fface =
      ws.buffer(Slot::CarryX, static_cast<std::size_t>(nx) + 1);
  Real* hi = ws.buffer(Slot::Extra, static_cast<std::size_t>(nx));
  Real* rowY = ws.buffer(Slot::CarryY, static_cast<std::size_t>(nx));
  Real* planeZ =
      ws.buffer(Slot::CarryZ, static_cast<std::size_t>(nx) * ny);
  const Real* velx = vel.dataPtr(0);
  const Real* vely = vel.dataPtr(1);
  const Real* velz = vel.dataPtr(2);
  for (int c = 0; c < kNumComp; ++c) {
    const Real* pc = phi0.dataPtr(c);
    Real* outc = phi1.dataPtr(c);
    for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
      const bool freshZ = k == valid.lo(2);
      for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
        const bool freshY = j == valid.lo(1);
        const int jj = j - valid.lo(1);
        const std::int64_t a = ip(valid.lo(0), j, k);
        const std::int64_t o = io(valid.lo(0), j, k);
        const std::int64_t av = iv(valid.lo(0), j, k);
        pencil::evalFlux1MulPencil(pc + a, 1, velx + av, nx + 1, fface);
        pencil::accumulatePencil(fface, 1, nx, scale, outc + o);
        if (freshY) {
          pencil::evalFlux1MulPencil(pc + a, ip.sy, vely + av, nx, rowY);
        }
        pencil::evalFlux1MulPencil(pc + a + ip.sy, ip.sy,
                                   vely + av + iv.sy, nx, hi);
        pencil::fusedFaceDiffPencil(hi, rowY, nx, scale, outc + o);
        Real* carryZ = planeZ + static_cast<std::size_t>(jj) * nx;
        if (freshZ) {
          pencil::evalFlux1MulPencil(pc + a, ip.sz, velz + av, nx, carryZ);
        }
        pencil::evalFlux1MulPencil(pc + a + ip.sz, ip.sz,
                                   velz + av + iv.sz, nx, hi);
        pencil::fusedFaceDiffPencil(hi, carryZ, nx, scale, outc + o);
      }
    }
  }
}

} // namespace

void shiftFuseBoxSerial(const VariantConfig& cfg, const FArrayBox& phi0,
                        FArrayBox& phi1, const Box& valid, Workspace& ws,
                        Real scale) {
  FLUXDIV_SHADOW_WRITE(phi1, valid, 0, kNumComp);
  if (cfg.comp == ComponentLoop::Inside) {
    serialCLI(phi0, phi1, valid, ws, scale);
  } else {
    serialCLO(phi0, phi1, valid, ws, scale);
  }
}

void shiftFuseBoxWavefront(const VariantConfig& cfg, const FArrayBox& phi0,
                           FArrayBox& phi1, const Box& valid,
                           WorkspacePool& pool, int nThreads, Real scale) {
  const Idx ip(phi0);
  const Idx io(phi1);
  const int nx = valid.size(0);
  const int ny = valid.size(1);
  const int nz = valid.size(2);
  const int nFronts = nx + ny + nz - 2;
  const std::size_t entries = cfg.comp == ComponentLoop::Inside
                                  ? static_cast<std::size_t>(kNumComp)
                                  : 1u;
  // Co-dimension flux caches shared by the team: cacheX[j][k] holds the
  // most recent x-face flux of the (j,k) pencil, and so on. Cells on one
  // wavefront touch pairwise-distinct slots of every cache.
  Workspace& shared = pool[0];
  Real* cacheX = shared.buffer(
      Slot::CarryX, static_cast<std::size_t>(ny) * nz * entries);
  Real* cacheY = shared.buffer(
      Slot::CarryY, static_cast<std::size_t>(nx) * nz * entries);
  Real* cacheZ = shared.buffer(
      Slot::CarryZ, static_cast<std::size_t>(nx) * ny * entries);

  if (cfg.comp == ComponentLoop::Inside) {
    const ConstComps p(phi0);
    const MutComps out(phi1);
#pragma omp parallel num_threads(nThreads)
    for (int w = 0; w < nFronts; ++w) {
      // Each (j,k) pair contributes at most one cell to wavefront w.
#pragma omp for collapse(2)
      for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
        for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
          const int ii = w - (k - valid.lo(2)) - (j - valid.lo(1));
          if (ii < 0 || ii >= nx) {
            continue;
          }
          const int i = valid.lo(0) + ii;
          const int jj = j - valid.lo(1);
          const int kk = k - valid.lo(2);
          FLUXDIV_SHADOW_WRITE(phi1, Box(IntVect(i, j, k), IntVect(i, j, k)),
                               0, kNumComp);
          fusedCellCLI(
              p, out, ip(i, j, k), io(i, j, k), ip.sy, ip.sz, ii == 0,
              jj == 0, kk == 0,
              cacheX + (static_cast<std::size_t>(kk) * ny + jj) * kNumComp,
              cacheY + (static_cast<std::size_t>(kk) * nx + ii) * kNumComp,
              cacheZ + (static_cast<std::size_t>(jj) * nx + ii) * kNumComp,
              scale);
        }
      }
      // implicit barrier of the omp for separates wavefronts
    }
  } else {
    FArrayBox& vel = shared.fab(Slot::Velocity, faceSupersetBox(valid), 3);
    const Idx iv(vel);
    const Real* velx = vel.dataPtr(0);
    const Real* vely = vel.dataPtr(1);
    const Real* velz = vel.dataPtr(2);
#pragma omp parallel num_threads(nThreads)
    {
      precomputeFaceVelocity(phi0, vel, valid, omp_get_num_threads(),
                             omp_get_thread_num());
#pragma omp barrier
      for (int c = 0; c < kNumComp; ++c) {
        const Real* pc = phi0.dataPtr(c);
        Real* outc = phi1.dataPtr(c);
        for (int w = 0; w < nFronts; ++w) {
#pragma omp for collapse(2)
          for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
            for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
              const int ii = w - (k - valid.lo(2)) - (j - valid.lo(1));
              if (ii < 0 || ii >= nx) {
                continue;
              }
              const int i = valid.lo(0) + ii;
              const int jj = j - valid.lo(1);
              const int kk = k - valid.lo(2);
              FLUXDIV_SHADOW_WRITE(
                  phi1, Box(IntVect(i, j, k), IntVect(i, j, k)), c, 1);
              fusedCellCLO(pc, outc, ip(i, j, k), io(i, j, k), ip.sy,
                           ip.sz, velx, vely, velz, iv(i, j, k), iv.sy,
                           iv.sz, ii == 0, jj == 0, kk == 0,
                           cacheX + static_cast<std::size_t>(kk) * ny + jj,
                           cacheY + static_cast<std::size_t>(kk) * nx + ii,
                           cacheZ + static_cast<std::size_t>(jj) * nx + ii,
                           scale);
            }
          }
        }
      }
    }
  }
}

} // namespace fluxdiv::core::detail
