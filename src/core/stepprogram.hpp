#pragma once
// The symbolic step-program layer: the recorded RK substep chain
// (core::StepProgram) and its per-op halo plan (planStepHalos). Split out
// of stepgraph.hpp so the analysis library — which deliberately does not
// link the executors — can interpret and verify step programs
// (analysis/stepcheck) with only the variant layer underneath it.
// stepgraph.hpp re-exports everything here; executor-side types
// (StepRhsSpec, StepGraphExecutor) stay there.

#include <cstddef>
#include <string>
#include <vector>

#include "core/variant.hpp"
#include "grid/real.hpp"

namespace fluxdiv::core {

/// One recorded operation of a step program. Slots name LevelData-shaped
/// storage: slot 0 is the solution u, slots >= 1 are the integrator's
/// stage temporaries.
enum class StepOpKind {
  Exchange,     ///< fill slot's ghost cells from neighbors
  BoundaryFill, ///< apply physical BCs to slot's domain-boundary ghosts
  RhsEval,      ///< dst = -(1/dx) div F(src) [+ dissipation Lap(src)]
  CopySlot,     ///< dst = src on the valid region
  AxpySlot,     ///< dst += scale * src on the valid region
  ScaleSlot,    ///< dst *= scale on the valid region
};

struct StepOp {
  StepOpKind kind = StepOpKind::Exchange;
  int dst = 0;            ///< slot written (Exchange/BoundaryFill: filled)
  int src = 0;            ///< slot read (RhsEval/CopySlot/AxpySlot)
  grid::Real scale = 0.0; ///< AxpySlot / ScaleSlot coefficient
  int step = 0;           ///< time-step index within a multi-step capture
};

/// The recorded substep chain of one (or several) RK time steps, built by
/// solvers::buildStepProgram. Purely symbolic: no storage, no layout.
struct StepProgram {
  int nSlots = 1;   ///< slot 0 = u; 1..nSlots-1 = stage temporaries
  int rhsEvals = 0; ///< RHS evaluations per time step
  int nSteps = 1;   ///< consecutive time steps captured
  std::vector<StepOp> ops;
  std::vector<std::string> slotNames; ///< size nSlots, for task labels

  /// Builder helpers; `step` is the current time-step index.
  void exchange(int slot, int step = 0) {
    ops.push_back({StepOpKind::Exchange, slot, slot, 0.0, step});
  }
  void boundaryFill(int slot, int step = 0) {
    ops.push_back({StepOpKind::BoundaryFill, slot, slot, 0.0, step});
  }
  void rhs(int src, int dst, int step = 0) {
    ops.push_back({StepOpKind::RhsEval, dst, src, 0.0, step});
  }
  void copy(int src, int dst, int step = 0) {
    ops.push_back({StepOpKind::CopySlot, dst, src, 0.0, step});
  }
  void axpy(int dst, int src, grid::Real scale, int step = 0) {
    ops.push_back({StepOpKind::AxpySlot, dst, src, scale, step});
  }
  void scale(int dst, grid::Real s, int step = 0) {
    ops.push_back({StepOpKind::ScaleSlot, dst, dst, s, step});
  }

  [[nodiscard]] const std::string& slotName(int s) const {
    return slotNames[static_cast<std::size_t>(s)];
  }
};

/// Per-op halo plan of one program under one fuse mode, from a backward
/// dataflow pass: width[i] is the ghost width op i runs at (compute ops
/// execute on valid.grow(width); exchanges fill `width` ghost layers), or
/// -1 for exchanges/BC fills the comm-avoiding transform drops. `depth`
/// is the deepest kept exchange — kNumGhost x rhsEvals for the RK schemes
/// under StepFuse::CommAvoid, kNumGhost otherwise.
struct StepHaloPlan {
  std::vector<int> width;
  int depth = 0;
};

/// Run the backward halo-width analysis. For Staged/Fused every width is
/// 0 and every exchange keeps depth kNumGhost; for CommAvoid only the
/// per-time-step slot-0 exchange survives, deepened so each stage can
/// recompute its RHS on a correspondingly widened halo.
StepHaloPlan planStepHalos(const StepProgram& prog, StepFuse fuse);

} // namespace fluxdiv::core
