#pragma once
// Lazy whole-RK-step task graphs (docs/perf.md, "Whole-step task graphs").
// The eager time integrator runs each RK stage as a synchronous
// exchange -> BC -> rhs -> axpy round-trip with a level-wide barrier
// between stages. This layer instead *records* the whole substep chain —
// every per-stage ghost exchange, boundary fill, flux-divergence
// evaluation, and copy/axpy stage combine, optionally for several
// consecutive time steps — as a slot-based StepProgram, then lowers it
// into one dependency-tracked core::TaskGraph, so stage-(i+1) interior
// tasks on one box start while stage-i fringe/exchange tasks on other
// boxes are still in flight (the delayed-execution idea of the OPS
// runtime-tiling work, applied to our RK substep chains).
//
// Three executable fuse modes (core::StepFuse; StepFuse::Eager stays in
// solvers as the reference path):
//
//   Staged     one graph dispatch per stage: identical synchronization
//              structure to the eager path, but the copyValid/addScaled
//              stage combines run as per-box (or per-tile) tasks on the
//              work-stealing pool instead of serial whole-level sweeps.
//   Fused      one graph for the whole step (or several steps): only true
//              data dependencies order tasks across stages, and with the
//              hybrid level policy the (box x tile) stage tasks skew so a
//              tile's stage-2 compute runs right after its stage-1
//              producers (sparse cross-stage tiling over sched/tiles).
//   CommAvoid  one *deepened* exchange of kNumGhost x rhsEvals ghost
//              layers up front; every stage recomputes its RHS on a halo
//              widened by a backward dataflow analysis (planStepHalos),
//              eliminating the per-stage exchanges entirely — the paper's
//              overlapped-tile recomputation generalized from intra-step
//              to inter-step. Falls back to Fused when the program needs
//              boundary conditions or the depth exceeds the box size.
//
// All modes are bit-identical to the eager reference: RHS tasks reuse the
// per-region serial dispatch (every family accumulates each cell's x, y,
// z flux differences in the same per-cell order), combines partition the
// valid region, and comm-avoiding recomputation only changes *where*
// ghost values come from, never the arithmetic on valid cells.
//
// Every captured graph is mirrored into an analysis::TaskGraphModel with
// slot-qualified footprints (TaskAccess::slot) and — in Debug or with
// -DFLUXDIV_VERIFY_GRAPH=ON — proven race-free by analysis/graphcheck
// before its first execution. Shadow-epoch barrier tasks (orderingOnly in
// the model) re-arm the FLUXDIV_SHADOW_CHECK write detector between
// successive RHS writes into the same stage slot.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/graphcheck.hpp"
#include "core/stepprogram.hpp"
#include "core/taskpool.hpp"
#include "core/variant.hpp"
#include "core/workspace.hpp"
#include "grid/bc.hpp"
#include "grid/leveldata.hpp"
#include "grid/real.hpp"

namespace fluxdiv::core {

class FluxDivRunner; // verification/advisory gates (core/runner.hpp)

// StepOpKind / StepOp / StepProgram / StepHaloPlan / planStepHalos live in
// core/stepprogram.hpp (compiled into fluxdiv_variant) so the analysis
// library can verify step programs without linking the executors.

/// Physics of the RhsEval ops (mirrors solvers::FluxDivRhs).
struct StepRhsSpec {
  grid::Real invDx = 1.0;
  grid::Real dissipation = 0.0;
  const grid::BoundaryFiller* boundary = nullptr;
};

struct StepExecOptions {
  LevelPolicy policy = LevelPolicy::BoxParallel;
  StepFuse fuse = StepFuse::Fused;
  bool pin = false;       ///< TaskPool worker pinning (owned pool only)
  ReplayMode replay{};    ///< adversarial serial replay (tests)
  /// Service mode (docs/serving.md): execute on this externally-owned
  /// pool instead of constructing a private one, submitting graphs to
  /// task domain `domain`. The executor then adopts the pool's thread
  /// count and spawns no threads of its own, so many concurrent solver
  /// instances interleave in one work-stealing pool. The pool must
  /// outlive the executor.
  TaskPool* sharedPool = nullptr;
  int domain = 0;         ///< task domain for sharedPool submissions
};

/// Statistics of the most recent capture, for benches and the advisor.
/// `cacheHits` and `rebinds` accumulate over the executor's lifetime
/// (they survive rebuilds): a hit is any run that reused the cached
/// graphs, a rebind is the subset where the solution LevelData was a
/// *different* allocation with an identical layout signature — the
/// layout-keyed reuse path (docs/serving.md "Graph cache").
struct StepGraphStats {
  StepFuse fuse = StepFuse::Fused;   ///< effective mode after CA fallback
  std::size_t graphCount = 0;        ///< dispatches per run (Staged > 1)
  std::size_t taskCount = 0;         ///< tasks across all graphs
  std::size_t edgeCount = 0;         ///< dependency edges across all graphs
  int exchangeDepth = 0;             ///< ghost layers the exchanges fill
  std::size_t exchangeOps = 0;       ///< ghost copy-op tasks per run
  bool rebuilt = false;              ///< last run() rebuilt the graphs
  std::uint64_t cacheHits = 0;       ///< runs that reused cached graphs
  std::uint64_t rebinds = 0;         ///< hits onto a reallocated LevelData
};

/// Captures a StepProgram over one LevelData and executes it on a
/// persistent work-stealing TaskPool (a private one, or a shared service
/// pool via StepExecOptions::sharedPool). Graphs are keyed by *layout
/// signature* — domain box, periodicity, box size, ghost depth, component
/// count, program ops, and physics — not by LevelData pointer identity:
/// a re-allocated solution with an identical shape rebinds into the
/// cached graphs through the capture's slot table instead of re-lowering
/// (stats().rebinds counts these). Stage/deep-halo storage is owned by
/// the executor and reused across runs.
class StepGraphExecutor {
public:
  StepGraphExecutor(VariantConfig cfg, int nThreads,
                    StepExecOptions opts = {});
  ~StepGraphExecutor();

  StepGraphExecutor(const StepGraphExecutor&) = delete;
  StepGraphExecutor& operator=(const StepGraphExecutor&) = delete;

  /// Execute the program: u advances by prog.nSteps time steps. Throws
  /// std::logic_error when a verification gate fails (Debug / opt-in).
  void run(const StepProgram& prog, grid::LevelData& u,
           const StepRhsSpec& rhs);

  /// Capture without executing: the analysis models of every graph run()
  /// would dispatch, in dispatch order (one for Fused/CommAvoid, one per
  /// stage for Staged). For the graphcheck CLI, the advisor, and tests.
  [[nodiscard]] std::vector<analysis::TaskGraphModel>
  lowerModels(const StepProgram& prog, grid::LevelData& u,
              const StepRhsSpec& rhs);

  /// The fuse mode that would actually execute for this program/level
  /// (CommAvoid falls back to Fused on boundary conditions or when the
  /// deepened halo exceeds the box size).
  [[nodiscard]] StepFuse effectiveFuse(const StepProgram& prog,
                                       const grid::LevelData& u,
                                       const StepRhsSpec& rhs) const;

  [[nodiscard]] const StepExecOptions& options() const { return opts_; }
  [[nodiscard]] int nThreads() const { return nThreads_; }
  [[nodiscard]] const StepGraphStats& stats() const { return stats_; }

  /// Phase-by-phase service API (docs/serving.md): capture (or rebind)
  /// without executing and return the number of graph dispatches one
  /// run() performs (1 for Fused/CommAvoid, stages for Staged). The
  /// orchestrator then, per phase in order: beginPhase -> submit the
  /// returned graph to the shared pool -> after its ticket completes,
  /// endPhase. Phases of one executor must run in order and one at a
  /// time; different executors interleave freely.
  std::size_t preparePhases(const StepProgram& prog, grid::LevelData& u,
                            const StepRhsSpec& rhs);

  /// Arm phase `p` (re-arms shadow-check epochs on the stage storage the
  /// phase overwrites) and return its executable graph for submission.
  [[nodiscard]] TaskGraph& beginPhase(std::size_t p);

  /// Complete phase `p` after its submitted graph finished: runs the
  /// shadow-violation check (throws std::logic_error on a detected race).
  void endPhase(std::size_t p);

private:
  struct Capture; // cached lowered graphs + bookkeeping (stepgraph.cpp)

  /// (Re)capture when the (program, layout signature, physics) key
  /// changed; rebind when only the solution's identity changed; returns
  /// the up-to-date capture.
  Capture& ensureCapture(const StepProgram& prog, grid::LevelData& u,
                         const StepRhsSpec& rhs);

  VariantConfig cfg_;
  int nThreads_;
  StepExecOptions opts_;
  StepGraphStats stats_;
  std::unique_ptr<TaskPool> ownedPool_; ///< null when sharedPool is set
  TaskPool* pool_ = nullptr;            ///< owned or shared
  WorkspacePool ws_;
  std::unique_ptr<FluxDivRunner> runner_; ///< schedule/kernel/advice gates
  std::unique_ptr<Capture> capture_;
};

} // namespace fluxdiv::core
