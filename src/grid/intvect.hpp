#pragma once
// Integer vector in the 3-D index space of a structured grid. Mirrors
// Chombo's IntVect: the coordinate type for cells, faces, box corners, and
// shifts. The study (and this reproduction) is compiled for SpaceDim == 3.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>

namespace fluxdiv::grid {

/// Number of space dimensions. Fixed at 3 as in the paper's exemplar.
inline constexpr int SpaceDim = 3;

/// A point in the integer index space.
struct IntVect {
  std::array<int, SpaceDim> v{0, 0, 0};

  constexpr IntVect() = default;
  constexpr IntVect(int x, int y, int z) : v{x, y, z} {}

  /// The vector (s, s, s).
  static constexpr IntVect unit(int s = 1) { return {s, s, s}; }
  /// The zero vector.
  static constexpr IntVect zero() { return {0, 0, 0}; }
  /// The unit basis vector e^d (Kronecker delta in direction d).
  static constexpr IntVect basis(int d) {
    IntVect e;
    e.v[static_cast<std::size_t>(d)] = 1;
    return e;
  }

  constexpr int operator[](int d) const {
    return v[static_cast<std::size_t>(d)];
  }
  constexpr int& operator[](int d) { return v[static_cast<std::size_t>(d)]; }

  constexpr IntVect operator+(const IntVect& o) const {
    return {v[0] + o.v[0], v[1] + o.v[1], v[2] + o.v[2]};
  }
  constexpr IntVect operator-(const IntVect& o) const {
    return {v[0] - o.v[0], v[1] - o.v[1], v[2] - o.v[2]};
  }
  constexpr IntVect operator*(int s) const {
    return {v[0] * s, v[1] * s, v[2] * s};
  }
  constexpr IntVect operator-() const { return {-v[0], -v[1], -v[2]}; }

  constexpr IntVect& operator+=(const IntVect& o) {
    v[0] += o.v[0];
    v[1] += o.v[1];
    v[2] += o.v[2];
    return *this;
  }

  constexpr bool operator==(const IntVect& o) const { return v == o.v; }
  constexpr bool operator!=(const IntVect& o) const { return v != o.v; }

  /// Component-wise <= (partial order used for box membership).
  constexpr bool allLE(const IntVect& o) const {
    return v[0] <= o.v[0] && v[1] <= o.v[1] && v[2] <= o.v[2];
  }
  /// Component-wise >=.
  constexpr bool allGE(const IntVect& o) const { return o.allLE(*this); }

  /// Sum of components (the wavefront diagonal index x+y+z).
  constexpr int sum() const { return v[0] + v[1] + v[2]; }

  /// Product of components (cell count of an extent vector).
  constexpr std::int64_t product() const {
    return static_cast<std::int64_t>(v[0]) * v[1] * v[2];
  }

  /// Component-wise min/max.
  static constexpr IntVect min(const IntVect& a, const IntVect& b) {
    return {a.v[0] < b.v[0] ? a.v[0] : b.v[0],
            a.v[1] < b.v[1] ? a.v[1] : b.v[1],
            a.v[2] < b.v[2] ? a.v[2] : b.v[2]};
  }
  static constexpr IntVect max(const IntVect& a, const IntVect& b) {
    return {a.v[0] > b.v[0] ? a.v[0] : b.v[0],
            a.v[1] > b.v[1] ? a.v[1] : b.v[1],
            a.v[2] > b.v[2] ? a.v[2] : b.v[2]};
  }
};

std::ostream& operator<<(std::ostream& os, const IntVect& iv);

} // namespace fluxdiv::grid

template <> struct std::hash<fluxdiv::grid::IntVect> {
  std::size_t operator()(const fluxdiv::grid::IntVect& iv) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (int d = 0; d < fluxdiv::grid::SpaceDim; ++d) {
      h ^= static_cast<std::size_t>(iv[d]) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
    }
    return h;
  }
};
