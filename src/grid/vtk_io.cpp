#include "grid/vtk_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fluxdiv::grid {

namespace {

/// Gather component c of the level's valid cells into a flat x-fastest
/// array over the whole domain. Both sides index through the shared
/// FabIndexer: the fab side with its allocation pitch, the flat side with
/// the domain's dense (pitch-free) layout.
std::vector<Real> flattenComponent(const LevelData& level, int comp) {
  const Box dom = level.layout().domain().box();
  std::vector<Real> flat(static_cast<std::size_t>(dom.numPts()));
  const FabIndexer flatIx = FabIndexer::dense(dom);
  for (std::size_t b = 0; b < level.size(); ++b) {
    const FArrayBox& fab = level[b];
    const FabIndexer ix = fab.indexer();
    const Real* p = fab.dataPtr(comp);
    forEachCell(level.validBox(b), [&](int i, int j, int k) {
      flat[static_cast<std::size_t>(flatIx(i, j, k))] = p[ix(i, j, k)];
    });
  }
  return flat;
}

/// VTK legacy binary payloads are big-endian.
void writeBigEndian(std::ostream& os, const std::vector<Real>& values) {
  for (Real v : values) {
    auto bits = std::bit_cast<std::uint64_t>(v);
    if constexpr (std::endian::native == std::endian::little) {
      bits = ((bits & 0x00000000000000ffull) << 56) |
             ((bits & 0x000000000000ff00ull) << 40) |
             ((bits & 0x0000000000ff0000ull) << 24) |
             ((bits & 0x00000000ff000000ull) << 8) |
             ((bits & 0x000000ff00000000ull) >> 8) |
             ((bits & 0x0000ff0000000000ull) >> 24) |
             ((bits & 0x00ff000000000000ull) >> 40) |
             ((bits & 0xff00000000000000ull) >> 56);
    }
    char buf[8];
    std::memcpy(buf, &bits, 8);
    os.write(buf, 8);
  }
}

} // namespace

void writeVtk(const std::string& path, const LevelData& level,
              const VtkWriteOptions& options) {
  std::ofstream out(path, options.binary
                              ? std::ios::out | std::ios::binary
                              : std::ios::out);
  if (!out) {
    throw std::runtime_error("writeVtk: cannot open " + path);
  }
  const Box dom = level.layout().domain().box();
  out << "# vtk DataFile Version 3.0\n"
      << "fluxdiv level data\n"
      << (options.binary ? "BINARY\n" : "ASCII\n")
      << "DATASET STRUCTURED_POINTS\n"
      // Points = cell corners: one more than cells per direction.
      << "DIMENSIONS " << dom.size(0) + 1 << ' ' << dom.size(1) + 1 << ' '
      << dom.size(2) + 1 << '\n'
      << "ORIGIN " << options.origin[0] << ' ' << options.origin[1] << ' '
      << options.origin[2] << '\n'
      << "SPACING " << options.spacing << ' ' << options.spacing << ' '
      << options.spacing << '\n'
      << "CELL_DATA " << dom.numPts() << '\n';

  for (int c = 0; c < level.nComp(); ++c) {
    const std::string name =
        c < static_cast<int>(options.componentNames.size())
            ? options.componentNames[static_cast<std::size_t>(c)]
            : "comp" + std::to_string(c);
    out << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    const std::vector<Real> flat = flattenComponent(level, c);
    if (options.binary) {
      writeBigEndian(out, flat);
      out << '\n';
    } else {
      out.precision(17);
      for (std::size_t i = 0; i < flat.size(); ++i) {
        out << flat[i] << ((i + 1) % 6 == 0 ? '\n' : ' ');
      }
      out << '\n';
    }
  }
  if (!out) {
    throw std::runtime_error("writeVtk: write failed for " + path);
  }
}

VtkData readVtkCellData(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("readVtkCellData: cannot open " + path);
  }
  VtkData result;
  std::string line;
  std::int64_t cells = 0;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "BINARY") {
      throw std::runtime_error(
          "readVtkCellData: binary files are not supported by the reader");
    }
    if (keyword == "DIMENSIONS") {
      int px = 0, py = 0, pz = 0;
      ss >> px >> py >> pz;
      result.dims = IntVect(px - 1, py - 1, pz - 1);
    } else if (keyword == "CELL_DATA") {
      ss >> cells;
      if (cells != result.dims.product()) {
        throw std::runtime_error("readVtkCellData: cell count mismatch");
      }
    } else if (keyword == "SCALARS") {
      std::string name;
      ss >> name;
      std::getline(in, line); // LOOKUP_TABLE
      std::vector<Real> field(static_cast<std::size_t>(cells));
      for (auto& v : field) {
        if (!(in >> v)) {
          throw std::runtime_error("readVtkCellData: truncated field " +
                                   name);
        }
      }
      result.names.push_back(name);
      result.data.push_back(std::move(field));
    }
  }
  if (result.dims.product() == 0 || result.data.empty()) {
    throw std::runtime_error("readVtkCellData: no cell data found");
  }
  return result;
}

} // namespace fluxdiv::grid
