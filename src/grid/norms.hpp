#pragma once
// Level-wide diagnostics: discrete norms and integrals over the valid
// cells of a LevelData. These are the quantities a PDE framework reports
// every step (conserved totals, residual norms) and the tests use to
// state properties compactly.

#include <array>

#include "grid/leveldata.hpp"

namespace fluxdiv::grid {

/// Sum of component c over all valid cells (the conserved total).
Real levelSum(const LevelData& level, int comp);

/// L1 norm: sum of |u| over valid cells of component c.
Real levelNormL1(const LevelData& level, int comp);

/// L2 norm: sqrt(sum of u^2) over valid cells of component c.
Real levelNormL2(const LevelData& level, int comp);

/// Max norm over valid cells of component c.
Real levelNormInf(const LevelData& level, int comp);

/// All components' conserved totals at once.
std::array<Real, 8> levelSums(const LevelData& level);

/// Max-norm of the difference between two levels on the same layout,
/// per component.
Real levelDiffInf(const LevelData& a, const LevelData& b, int comp);

} // namespace fluxdiv::grid
