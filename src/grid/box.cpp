#include "grid/box.hpp"

#include <ostream>

namespace fluxdiv::grid {

std::ostream& operator<<(std::ostream& os, const IntVect& iv) {
  return os << '(' << iv[0] << ',' << iv[1] << ',' << iv[2] << ')';
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << '[' << b.lo() << ".." << b.hi() << ']';
}

} // namespace fluxdiv::grid
