#pragma once
// Plotfile output: write the valid region of a LevelData as a legacy-VTK
// structured-points file (readable by ParaView/VisIt), one scalar field
// per component. Chombo-class frameworks ship HDF5 plotfiles; legacy VTK
// keeps this reproduction dependency-free while providing the same
// workflow (dump a step, look at it). A minimal reader supports
// round-trip tests and restart-style reloads.

#include <string>
#include <vector>

#include "grid/leveldata.hpp"

namespace fluxdiv::grid {

/// Options for writeVtk.
struct VtkWriteOptions {
  std::vector<std::string> componentNames; ///< defaults to comp0..compN
  double origin[3] = {0.0, 0.0, 0.0};
  double spacing = 1.0; ///< dx (uniform)
  bool binary = false;  ///< ASCII by default (diffable); binary is big-endian
};

/// Write the level's valid data to `path` ("file.vtk"). The whole domain
/// is assembled into one structured-points dataset (cell data).
/// Throws std::runtime_error on I/O failure.
void writeVtk(const std::string& path, const LevelData& level,
              const VtkWriteOptions& options = {});

/// Result of readVtkCellData: the domain extent and per-component flat
/// fields in x-fastest order.
struct VtkData {
  IntVect dims;                        ///< cells per direction
  std::vector<std::string> names;      ///< field names
  std::vector<std::vector<Real>> data; ///< one flat array per field
};

/// Read back an ASCII file produced by writeVtk (subset of legacy VTK:
/// STRUCTURED_POINTS + CELL_DATA double scalars).
VtkData readVtkCellData(const std::string& path);

} // namespace fluxdiv::grid
