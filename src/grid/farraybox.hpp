#pragma once
// FArrayBox: the multi-component array over a Box, matching Chombo's data
// layout choice discussed in the paper (Sec. III-C): storage is
// [x, y, z, c] with x unit-stride (Fortran/column-major space dimensions)
// and the component index varying slowest. The paper notes the fast C++
// implementation caches pointer offsets per stencil point and walks
// unit-stride columns with pointer arithmetic; Stencil/dataPtr support
// exactly that idiom.

#include <cassert>
#include <cstdint>

#include "grid/box.hpp"
#include "grid/indexer.hpp"
#include "grid/real.hpp"

#ifdef FLUXDIV_SHADOW_CHECK
#include <memory>

#include "grid/shadow.hpp"
#endif

namespace fluxdiv::grid {

/// Row-pitch policy of an FArrayBox allocation (docs/perf.md).
enum class Pitch : std::uint8_t {
  Padded, ///< x-pitch rounded up to kSimdDoubles; every row 64B-aligned
  Dense,  ///< x-pitch == box.size(0): the packed layout of the seed code
};

/// First-fill policy of an FArrayBox allocation. Zero fills from the
/// defining thread (the seed behavior). Deferred leaves the contents
/// unspecified so the *first writer* faults — and thereby NUMA-places —
/// the pages: the task-parallel level executor's firstTouch() zero-fills
/// each box from the worker that owns its tasks (docs/perf.md).
enum class Init : std::uint8_t { Zero, Deferred };

/// Multi-component double-precision array over a Box (including any ghost
/// region baked into the box).
///
/// Storage contract (relied on by kernels/pencil.hpp): data is 64-byte
/// aligned (grid::kFabAlignment), and under the default Pitch::Padded the
/// x-pitch — strideY()/pitch() — is box.size(0) rounded up to a multiple
/// of grid::kSimdDoubles, so every (j, k, c) row base is itself 64-byte
/// aligned. Code that indexes through offset()/indexer()/strides is
/// pitch-agnostic; only code assuming size() == numPts*nComp (raw dumps)
/// would break, and none remains (checkpoint IO walks rows).
class FArrayBox {
public:
  FArrayBox() = default;

  /// Allocate over `box` with `ncomp` components, zero-initialized (or
  /// left for the first writer under Init::Deferred).
  FArrayBox(const Box& box, int ncomp, Pitch pitch = Pitch::Padded,
            Init init = Init::Zero) {
    define(box, ncomp, pitch, init);
  }

  /// (Re)allocate. Previous contents are discarded (Init::Deferred leaves
  /// the new contents unspecified; write before reading).
  void define(const Box& box, int ncomp, Pitch pitch = Pitch::Padded,
              Init init = Init::Zero);

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] int nComp() const { return ncomp_; }
  [[nodiscard]] bool defined() const { return ncomp_ > 0; }

  /// Linear strides of the space dimensions; x-stride is 1 by layout.
  [[nodiscard]] std::int64_t strideY() const { return sy_; }
  [[nodiscard]] std::int64_t strideZ() const { return sz_; }
  /// Stride between components.
  [[nodiscard]] std::int64_t strideC() const { return sc_; }

  /// Allocation pitch of one x-row in doubles (== strideY()). Equals
  /// box().size(0) for Pitch::Dense; rounded up to kSimdDoubles otherwise.
  [[nodiscard]] std::int64_t pitch() const { return sy_; }
  /// Doubles of padding appended to each x-row.
  [[nodiscard]] std::int64_t pitchSlack() const {
    return sy_ - box_.size(0);
  }

  /// The shared stride accessor over this fab's allocation (pitch-aware).
  [[nodiscard]] FabIndexer indexer() const { return {box_, sy_}; }

  /// Total allocated values (pitch-padded; >= numPts * nComp).
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  /// Total allocated bytes (pitch-padded).
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(Real);
  }

  /// Linear offset of point (i,j,k) within one component.
  [[nodiscard]] std::int64_t offset(int i, int j, int k) const {
    assert(box_.contains(IntVect(i, j, k)));
    return (i - box_.lo(0)) + sy_ * (j - box_.lo(1)) +
           sz_ * (k - box_.lo(2));
  }

  /// Pointer to the (lo of the box) element of component c. Hot loops index
  /// from this with offset()/strides (the paper's pointer-arithmetic idiom).
  [[nodiscard]] Real* dataPtr(int c = 0) {
    assert(c >= 0 && c < ncomp_);
    return data_.data() + sc_ * c;
  }
  [[nodiscard]] const Real* dataPtr(int c = 0) const {
    assert(c >= 0 && c < ncomp_);
    return data_.data() + sc_ * c;
  }

  /// Element access (checked in debug builds). Convenience for tests and
  /// non-hot code; kernels use dataPtr + strides.
  Real& operator()(const IntVect& p, int c = 0) {
    return dataPtr(c)[offset(p[0], p[1], p[2])];
  }
  Real operator()(const IntVect& p, int c = 0) const {
    return dataPtr(c)[offset(p[0], p[1], p[2])];
  }
  Real& operator()(int i, int j, int k, int c = 0) {
    return dataPtr(c)[offset(i, j, k)];
  }
  Real operator()(int i, int j, int k, int c = 0) const {
    return dataPtr(c)[offset(i, j, k)];
  }

  /// Set every value of every component to `value`.
  void setVal(Real value);
  /// Set every value of component `c` within `region` (clipped to box()).
  void setVal(Real value, const Box& region, int c);

  /// Copy `region` of component `srcComp`..`srcComp+ncomp` from `src`
  /// (regions interpreted in the shared global index space).
  void copy(const FArrayBox& src, const Box& region, int srcComp,
            int destComp, int ncomp);

  /// Copy from `src` where the source region is `region.shift(srcShift)` —
  /// the periodic-wrap case of ghost exchange.
  void copyShifted(const FArrayBox& src, const Box& region,
                   const IntVect& srcShift, int srcComp, int destComp,
                   int ncomp);

  /// this += scale * src over `region`, all components. Used by the
  /// time-integration example.
  void plus(const FArrayBox& src, Real scale, const Box& region);

  /// Sum of component c over `region` (conservation checks).
  [[nodiscard]] Real sum(const Box& region, int c) const;

  /// Max |a-b| over `region` and components [0, ncomp) of both.
  static Real maxAbsDiff(const FArrayBox& a, const FArrayBox& b,
                         const Box& region);

#ifdef FLUXDIV_SHADOW_CHECK
  // Shadow-memory race-detection hooks (see grid/shadow.hpp and
  // docs/static-analysis.md). The shadow is allocated lazily on first use,
  // so untracked fabs pay only the empty member. These members exist only
  // under FLUXDIV_SHADOW_CHECK; the option is a global compile definition
  // precisely because it changes this class's layout.

  /// The fab's shadow (lazily shaped to the fab).
  [[nodiscard]] ShadowMemory& shadow() {
    ensureShadow();
    return *shadow_;
  }

  /// Start a new write epoch (call at a known whole-fab barrier point,
  /// e.g. the start of one flux-divergence evaluation).
  void shadowBeginEpoch() {
    ensureShadow();
    shadow_->beginEpoch();
  }

  /// Record that `worker` wrote `region` (clipped to the fab) x
  /// [c0, c0+nc) in the current epoch.
  void shadowRecordWrite(const Box& region, int c0, int nc, int worker) {
    ensureShadow();
    shadow_->recordWriteRegion(region & box_, c0, nc, worker);
  }

  /// Record that `worker` read `region` x [c0, c0+nc), flagging slots not
  /// produced this epoch.
  void shadowRecordRead(const Box& region, int c0, int nc, int worker) {
    ensureShadow();
    const Box r = region & box_;
    for (int c = c0; c < c0 + nc; ++c) {
      forEachCell(r, [&](int i, int j, int k) {
        shadow_->recordRead(IntVect(i, j, k), c, worker);
      });
    }
  }
#endif

private:
  Box box_;
  int ncomp_ = 0;
  std::int64_t sy_ = 0;
  std::int64_t sz_ = 0;
  std::int64_t sc_ = 0;
  FabVector data_;

#ifdef FLUXDIV_SHADOW_CHECK
  void ensureShadow() {
    if (!shadow_) {
      shadow_ = std::make_unique<ShadowMemory>();
    }
    if (!shadow_->defined() || shadow_->box() != box_ ||
        shadow_->nComp() != ncomp_) {
      shadow_->define(box_, ncomp_);
    }
  }

  // unique_ptr keeps FArrayBox movable (ShadowMemory owns a mutex and
  // atomics); shadow state does not follow copies — fabs are move-only
  // under FLUXDIV_SHADOW_CHECK, which LevelData and Workspace satisfy.
  std::unique_ptr<ShadowMemory> shadow_;
#endif
};

} // namespace fluxdiv::grid
