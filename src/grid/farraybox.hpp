#pragma once
// FArrayBox: the multi-component array over a Box, matching Chombo's data
// layout choice discussed in the paper (Sec. III-C): storage is
// [x, y, z, c] with x unit-stride (Fortran/column-major space dimensions)
// and the component index varying slowest. The paper notes the fast C++
// implementation caches pointer offsets per stencil point and walks
// unit-stride columns with pointer arithmetic; Stencil/dataPtr support
// exactly that idiom.

#include <cassert>
#include <cstdint>
#include <vector>

#include "grid/box.hpp"
#include "grid/real.hpp"

namespace fluxdiv::grid {

/// Multi-component double-precision array over a Box (including any ghost
/// region baked into the box).
class FArrayBox {
public:
  FArrayBox() = default;

  /// Allocate over `box` with `ncomp` components, zero-initialized.
  FArrayBox(const Box& box, int ncomp) { define(box, ncomp); }

  /// (Re)allocate. Previous contents are discarded.
  void define(const Box& box, int ncomp);

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] int nComp() const { return ncomp_; }
  [[nodiscard]] bool defined() const { return ncomp_ > 0; }

  /// Linear strides of the space dimensions; x-stride is 1 by layout.
  [[nodiscard]] std::int64_t strideY() const { return sy_; }
  [[nodiscard]] std::int64_t strideZ() const { return sz_; }
  /// Stride between components.
  [[nodiscard]] std::int64_t strideC() const { return sc_; }

  /// Total allocated values (numPts * nComp).
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  /// Total allocated bytes.
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(Real);
  }

  /// Linear offset of point (i,j,k) within one component.
  [[nodiscard]] std::int64_t offset(int i, int j, int k) const {
    assert(box_.contains(IntVect(i, j, k)));
    return (i - box_.lo(0)) + sy_ * (j - box_.lo(1)) +
           sz_ * (k - box_.lo(2));
  }

  /// Pointer to the (lo of the box) element of component c. Hot loops index
  /// from this with offset()/strides (the paper's pointer-arithmetic idiom).
  [[nodiscard]] Real* dataPtr(int c = 0) {
    assert(c >= 0 && c < ncomp_);
    return data_.data() + sc_ * c;
  }
  [[nodiscard]] const Real* dataPtr(int c = 0) const {
    assert(c >= 0 && c < ncomp_);
    return data_.data() + sc_ * c;
  }

  /// Element access (checked in debug builds). Convenience for tests and
  /// non-hot code; kernels use dataPtr + strides.
  Real& operator()(const IntVect& p, int c = 0) {
    return dataPtr(c)[offset(p[0], p[1], p[2])];
  }
  Real operator()(const IntVect& p, int c = 0) const {
    return dataPtr(c)[offset(p[0], p[1], p[2])];
  }
  Real& operator()(int i, int j, int k, int c = 0) {
    return dataPtr(c)[offset(i, j, k)];
  }
  Real operator()(int i, int j, int k, int c = 0) const {
    return dataPtr(c)[offset(i, j, k)];
  }

  /// Set every value of every component to `value`.
  void setVal(Real value);
  /// Set every value of component `c` within `region` (clipped to box()).
  void setVal(Real value, const Box& region, int c);

  /// Copy `region` of component `srcComp`..`srcComp+ncomp` from `src`
  /// (regions interpreted in the shared global index space).
  void copy(const FArrayBox& src, const Box& region, int srcComp,
            int destComp, int ncomp);

  /// Copy from `src` where the source region is `region.shift(srcShift)` —
  /// the periodic-wrap case of ghost exchange.
  void copyShifted(const FArrayBox& src, const Box& region,
                   const IntVect& srcShift, int srcComp, int destComp,
                   int ncomp);

  /// this += scale * src over `region`, all components. Used by the
  /// time-integration example.
  void plus(const FArrayBox& src, Real scale, const Box& region);

  /// Sum of component c over `region` (conservation checks).
  [[nodiscard]] Real sum(const Box& region, int c) const;

  /// Max |a-b| over `region` and components [0, ncomp) of both.
  static Real maxAbsDiff(const FArrayBox& a, const FArrayBox& b,
                         const Box& region);

private:
  Box box_;
  int ncomp_ = 0;
  std::int64_t sy_ = 0;
  std::int64_t sz_ = 0;
  std::int64_t sc_ = 0;
  std::vector<Real> data_;
};

} // namespace fluxdiv::grid
