#include "grid/tracingfab.hpp"

#include <cassert>
#include <cstring>

namespace fluxdiv::grid {

namespace {

/// splitmix64: deterministic slot hashing for the fill values.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

} // namespace

Real TracingFab::fillValue(const TraceSlot& slot, std::uint64_t seed) {
  std::uint64_t h = seed;
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(slot.cell[0]) + 0x10000));
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(slot.cell[1]) + 0x20000));
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(slot.cell[2]) + 0x30000));
  h = mix64(h ^ static_cast<std::uint64_t>(slot.comp + 7));
  // 52 mantissa bits onto [1, 2): uniform magnitude, never subnormal.
  const double frac =
      static_cast<double>(h >> 12) / 4503599627370496.0; // 2^52
  return 1.0 + frac;
}

void TracingFab::define(const Box& box, int nComp, Pitch pitch,
                        std::uint64_t seed) {
  fab_.define(box, nComp, pitch, Init::Zero);
  for (const TraceSlot& slot : allSlots()) {
    set(slot, fillValue(slot, seed));
  }
  snapshot();
  ref_.clear();
}

std::int64_t TracingFab::rawIndex(const TraceSlot& slot) const {
  assert(slot.comp >= 0 && slot.comp < fab_.nComp());
  return fab_.strideC() * slot.comp + fab_.indexer()(
      slot.cell[0], slot.cell[1], slot.cell[2]);
}

std::vector<TraceSlot> TracingFab::allSlots() const {
  std::vector<TraceSlot> slots;
  slots.reserve(fab_.size());
  const Box& b = fab_.box();
  const int rowLen = b.size(0);
  const int pitch = static_cast<int>(fab_.pitch());
  for (int c = 0; c < fab_.nComp(); ++c) {
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        for (int x = 0; x < pitch; ++x) {
          TraceSlot s;
          s.cell = IntVect(b.lo(0) + x, j, k);
          s.comp = c;
          s.pad = x >= rowLen;
          slots.push_back(s);
        }
      }
    }
  }
  return slots;
}

Real TracingFab::value(const TraceSlot& slot) const {
  return fab_.dataPtr(0)[rawIndex(slot)];
}

void TracingFab::set(const TraceSlot& slot, Real v) {
  fab_.dataPtr(0)[rawIndex(slot)] = v;
}

void TracingFab::snapshot() {
  base_.assign(fab_.dataPtr(0), fab_.dataPtr(0) + fab_.size());
}

void TracingFab::restore() {
  assert(base_.size() == fab_.size());
  Real* dst = fab_.dataPtr(0);
  for (std::size_t i = 0; i < base_.size(); ++i) {
    dst[i] = base_[i];
  }
}

void TracingFab::captureReference() {
  ref_.assign(fab_.dataPtr(0), fab_.dataPtr(0) + fab_.size());
}

std::vector<TraceSlot> TracingFab::diffAgainst(
    const std::vector<Real>& ref) const {
  assert(ref.size() == fab_.size());
  std::vector<TraceSlot> changed;
  const Real* cur = fab_.dataPtr(0);
  const std::int64_t sc = fab_.strideC();
  const FabIndexer idx = fab_.indexer();
  const int rowLen = fab_.box().size(0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // Bitwise comparison: a dependence that flips only the sign of zero
    // or re-derives the same value differently still counts.
    if (std::memcmp(&cur[i], &ref[i], sizeof(Real)) == 0) {
      continue;
    }
    TraceSlot s;
    const std::int64_t raw = static_cast<std::int64_t>(i);
    s.comp = static_cast<int>(raw / sc);
    s.cell = idx.invert(raw - sc * s.comp);
    s.pad = idx.isPad(s.cell, rowLen);
    changed.push_back(s);
  }
  return changed;
}

std::vector<TraceSlot> TracingFab::changedSinceSnapshot() const {
  return diffAgainst(base_);
}

std::vector<TraceSlot> TracingFab::changedSinceReference() const {
  return diffAgainst(ref_);
}

} // namespace fluxdiv::grid
