#include "grid/leveldata.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxdiv::grid {

LevelData::LevelData(const DisjointBoxLayout& layout, int ncomp, int nghost)
    : layout_(layout), ncomp_(ncomp), nghost_(nghost),
      copier_(layout, nghost) {
  fabs_.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    fabs_.emplace_back(layout.box(i).grow(nghost), ncomp);
  }
}

void LevelData::exchange() {
  const auto& ops = copier_.ops();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CopyOp& op = ops[i];
    fabs_[op.destBox].copyShifted(fabs_[op.srcBox], op.destRegion,
                                  op.srcShift, 0, 0, ncomp_);
  }
}

std::int64_t LevelData::totalCellsAllocated() const {
  std::int64_t total = 0;
  for (const auto& fab : fabs_) {
    total += fab.box().numPts();
  }
  return total;
}

std::int64_t LevelData::totalCellsValid() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    total += validBox(i).numPts();
  }
  return total;
}

namespace {

/// Range of source-layout box coordinates overlapping `region`.
void overlapRange(const DisjointBoxLayout& src, const Box& region,
                  IntVect& lo, IntVect& hi) {
  const Box dom = src.domain().box();
  for (int d = 0; d < SpaceDim; ++d) {
    lo[d] = (region.lo(d) - dom.lo(d)) / src.boxSize()[d];
    hi[d] = (region.hi(d) - dom.lo(d)) / src.boxSize()[d];
  }
}

} // namespace

void LevelData::copyTo(LevelData& dest) const {
  if (dest.ncomp_ != ncomp_) {
    throw std::invalid_argument("copyTo: component count mismatch");
  }
  if (dest.layout_.domain().box() != layout_.domain().box()) {
    throw std::invalid_argument("copyTo: domain mismatch");
  }
#pragma omp parallel for schedule(static)
  for (std::size_t di = 0; di < dest.size(); ++di) {
    const Box dbox = dest.validBox(di);
    IntVect lo, hi;
    overlapRange(layout_, dbox, lo, hi);
    for (int bz = lo[2]; bz <= hi[2]; ++bz) {
      for (int by = lo[1]; by <= hi[1]; ++by) {
        for (int bx = lo[0]; bx <= hi[0]; ++bx) {
          IntVect unusedShift;
          const std::int64_t si =
              layout_.wrappedIndex(IntVect(bx, by, bz), unusedShift);
          const Box sbox = layout_.box(static_cast<std::size_t>(si));
          dest.fabs_[di].copy(fabs_[static_cast<std::size_t>(si)],
                              dbox & sbox, 0, 0, ncomp_);
        }
      }
    }
  }
}

Real LevelData::maxAbsDiffValid(const LevelData& a, const LevelData& b) {
  if (a.layout_.domain().box() != b.layout_.domain().box() ||
      a.ncomp_ != b.ncomp_) {
    throw std::invalid_argument("maxAbsDiffValid: incompatible levels");
  }
  Real worst = 0.0;
  for (std::size_t ai = 0; ai < a.size(); ++ai) {
    const Box abox = a.validBox(ai);
    IntVect lo, hi;
    overlapRange(b.layout_, abox, lo, hi);
    for (int bz = lo[2]; bz <= hi[2]; ++bz) {
      for (int by = lo[1]; by <= hi[1]; ++by) {
        for (int bx = lo[0]; bx <= hi[0]; ++bx) {
          IntVect unusedShift;
          const std::int64_t bi =
              b.layout_.wrappedIndex(IntVect(bx, by, bz), unusedShift);
          const Box region =
              abox & b.validBox(static_cast<std::size_t>(bi));
          worst = std::max(worst,
                           FArrayBox::maxAbsDiff(
                               a[ai], b[static_cast<std::size_t>(bi)],
                               region));
        }
      }
    }
  }
  return worst;
}

} // namespace fluxdiv::grid
