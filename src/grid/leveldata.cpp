#include "grid/leveldata.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxdiv::grid {

AsyncExchange::AsyncExchange(LevelData& level)
    : level_(&level), pending_(level.size()),
      claimed_(level.copier_.ops().size()) {
  const auto& ops = level.copier_.ops();
  for (const CopyOp& op : ops) {
    pending_[op.destBox].fetch_add(1, std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::int64_t>(ops.size()),
                   std::memory_order_release);
}

std::size_t AsyncExchange::opCount() const {
  return level_->copier_.ops().size();
}

const CopyOp& AsyncExchange::op(std::size_t i) const {
  return level_->copier_.ops()[i];
}

void AsyncExchange::runOp(std::size_t i) {
  bool expected = false;
  if (!claimed_[i].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return; // already claimed (possibly still copying on another thread)
  }
  const CopyOp& op = level_->copier_.ops()[i];
  level_->fabs_[op.destBox].copyShifted(level_->fabs_[op.srcBox],
                                        op.destRegion, op.srcShift, 0, 0,
                                        level_->ncomp_);
  pending_[op.destBox].fetch_sub(1, std::memory_order_acq_rel);
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

int AsyncExchange::pendingOps(std::size_t b) const {
  return pending_[b].load(std::memory_order_acquire);
}

bool AsyncExchange::done() const {
  return remaining_.load(std::memory_order_acquire) == 0;
}

void AsyncExchange::finish() {
  for (std::size_t i = 0; i < claimed_.size(); ++i) {
    runOp(i);
  }
}

LevelData::LevelData(const DisjointBoxLayout& layout, int ncomp, int nghost,
                     Pitch pitch, Init init)
    : layout_(layout), ncomp_(ncomp), nghost_(nghost),
      copier_(layout, nghost) {
  fabs_.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    fabs_.emplace_back(layout.box(i).grow(nghost), ncomp, pitch, init);
  }
}

void LevelData::exchange() {
  const auto& ops = copier_.ops();
  if (ops.empty()) {
    return; // nghost == 0: no halos to fill, skip the parallel region
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CopyOp& op = ops[i];
    fabs_[op.destBox].copyShifted(fabs_[op.srcBox], op.destRegion,
                                  op.srcShift, 0, 0, ncomp_);
  }
}

std::int64_t LevelData::totalCellsAllocated() const {
  std::int64_t total = 0;
  for (const auto& fab : fabs_) {
    total += fab.box().numPts();
  }
  return total;
}

std::int64_t LevelData::totalCellsValid() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    total += validBox(i).numPts();
  }
  return total;
}

namespace {

/// Range of source-layout box coordinates overlapping `region`.
void overlapRange(const DisjointBoxLayout& src, const Box& region,
                  IntVect& lo, IntVect& hi) {
  const Box dom = src.domain().box();
  for (int d = 0; d < SpaceDim; ++d) {
    lo[d] = (region.lo(d) - dom.lo(d)) / src.boxSize()[d];
    hi[d] = (region.hi(d) - dom.lo(d)) / src.boxSize()[d];
  }
}

/// One valid-region copy in a copyTo plan.
struct CopyToOp {
  std::size_t destBox = 0;
  std::size_t srcBox = 0;
  Box region;
};

} // namespace

void LevelData::copyTo(LevelData& dest) const {
  if (dest.ncomp_ != ncomp_) {
    throw std::invalid_argument("copyTo: component count mismatch");
  }
  if (dest.layout_.domain().box() != layout_.domain().box()) {
    throw std::invalid_argument("copyTo: domain mismatch");
  }
  // Build the plan serially, skipping empty intersections up front, so the
  // parallel loop below only dispatches real copies and load-balances over
  // them rather than over destination boxes of uneven overlap.
  std::vector<CopyToOp> plan;
  for (std::size_t di = 0; di < dest.size(); ++di) {
    const Box dbox = dest.validBox(di);
    IntVect lo, hi;
    overlapRange(layout_, dbox, lo, hi);
    for (int bz = lo[2]; bz <= hi[2]; ++bz) {
      for (int by = lo[1]; by <= hi[1]; ++by) {
        for (int bx = lo[0]; bx <= hi[0]; ++bx) {
          IntVect unusedShift;
          const std::int64_t si =
              layout_.wrappedIndex(IntVect(bx, by, bz), unusedShift);
          const Box region =
              dbox & layout_.box(static_cast<std::size_t>(si));
          if (region.empty()) {
            continue;
          }
          plan.push_back({di, static_cast<std::size_t>(si), region});
        }
      }
    }
  }
  if (plan.empty()) {
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const CopyToOp& op = plan[i];
    dest.fabs_[op.destBox].copy(fabs_[op.srcBox], op.region, 0, 0, ncomp_);
  }
}

Real LevelData::maxAbsDiffValid(const LevelData& a, const LevelData& b) {
  if (a.layout_.domain().box() != b.layout_.domain().box() ||
      a.ncomp_ != b.ncomp_) {
    throw std::invalid_argument("maxAbsDiffValid: incompatible levels");
  }
  Real worst = 0.0;
  for (std::size_t ai = 0; ai < a.size(); ++ai) {
    const Box abox = a.validBox(ai);
    IntVect lo, hi;
    overlapRange(b.layout_, abox, lo, hi);
    for (int bz = lo[2]; bz <= hi[2]; ++bz) {
      for (int by = lo[1]; by <= hi[1]; ++by) {
        for (int bx = lo[0]; bx <= hi[0]; ++bx) {
          IntVect unusedShift;
          const std::int64_t bi =
              b.layout_.wrappedIndex(IntVect(bx, by, bz), unusedShift);
          const Box region =
              abox & b.validBox(static_cast<std::size_t>(bi));
          worst = std::max(worst,
                           FArrayBox::maxAbsDiff(
                               a[ai], b[static_cast<std::size_t>(bi)],
                               region));
        }
      }
    }
  }
  return worst;
}

} // namespace fluxdiv::grid
