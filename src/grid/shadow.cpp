#include "grid/shadow.hpp"

#include <sstream>

#include "grid/farraybox.hpp"

namespace fluxdiv::grid {

namespace {

const char* kindName(ShadowMemory::ViolationKind k) {
  switch (k) {
  case ShadowMemory::ViolationKind::WriteWrite:
    return "write-write race";
  case ShadowMemory::ViolationKind::ReadBeforeWrite:
    return "read-before-write";
  case ShadowMemory::ViolationKind::OutOfBounds:
    return "out-of-bounds access";
  }
  return "?";
}

} // namespace

std::string ShadowMemory::Violation::message() const {
  std::ostringstream os;
  os << kindName(kind) << " at (" << cell[0] << "," << cell[1] << ","
     << cell[2] << ") comp " << comp << " by worker " << workerA;
  if (workerB >= 0) {
    os << " (last writer: worker " << workerB << ")";
  }
  return os.str();
}

void ShadowMemory::define(const Box& box, int ncomp) {
  box_ = box;
  ncomp_ = ncomp;
  idx_ = FabIndexer::dense(box);
  sc_ = idx_.sz * box.size(2);
  // vector<atomic> has no fill; reconstruct to zero-initialize.
  tags_ = std::vector<std::atomic<std::uint32_t>>(
      static_cast<std::size_t>(sc_) * static_cast<std::size_t>(ncomp));
  epoch_ = 1;
  count_.store(0, std::memory_order_relaxed);
  stored_.clear();
}

void ShadowMemory::beginEpoch() {
  ++epoch_;
  if ((epoch_ & 0xffffu) == 0) {
    epoch_ = 1; // skip 0 so "never written" stays distinguishable
  }
}

void ShadowMemory::fillAll() {
  const std::uint32_t tag = (epoch_ << 16); // worker field 0: no owner
  for (auto& t : tags_) {
    t.store(tag | kWorkerMask, std::memory_order_relaxed);
  }
}

void ShadowMemory::report(const Violation& v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (stored_.size() < kMaxStored) {
    stored_.push_back(v);
  }
}

void ShadowMemory::recordWrite(const IntVect& p, int c, int worker) {
  if (!box_.contains(p) || c < 0 || c >= ncomp_) {
    report({ViolationKind::OutOfBounds, p, c, worker, -1});
    return;
  }
  const std::uint32_t tag =
      (epoch_ << 16) | (static_cast<std::uint32_t>(worker) + 1);
  const std::uint32_t prev =
      tags_[static_cast<std::size_t>(slot(p, c))].exchange(
          tag, std::memory_order_relaxed);
  const std::uint32_t prevWorker = prev & kWorkerMask;
  if ((prev >> 16) == (epoch_ & 0xffffu) && prevWorker != 0 &&
      prevWorker != kWorkerMask &&
      prevWorker != static_cast<std::uint32_t>(worker) + 1) {
    report({ViolationKind::WriteWrite, p, c, worker,
            static_cast<int>(prevWorker) - 1});
  }
}

void ShadowMemory::recordWriteRegion(const Box& region, int c0, int nc,
                                     int worker) {
  for (int c = c0; c < c0 + nc; ++c) {
    forEachCell(region, [&](int i, int j, int k) {
      recordWrite(IntVect(i, j, k), c, worker);
    });
  }
}

void ShadowMemory::recordRead(const IntVect& p, int c, int worker) {
  if (!box_.contains(p) || c < 0 || c >= ncomp_) {
    report({ViolationKind::OutOfBounds, p, c, worker, -1});
    return;
  }
  const std::uint32_t tag =
      tags_[static_cast<std::size_t>(slot(p, c))].load(
          std::memory_order_relaxed);
  if ((tag >> 16) != (epoch_ & 0xffffu)) {
    const std::uint32_t prevWorker = tag & kWorkerMask;
    report({ViolationKind::ReadBeforeWrite, p, c, worker,
            prevWorker == 0 || prevWorker == kWorkerMask
                ? -1
                : static_cast<int>(prevWorker) - 1});
  }
}

void ShadowMemory::recordOutOfBounds(const IntVect& p, int c, int worker) {
  report({ViolationKind::OutOfBounds, p, c, worker, -1});
}

std::vector<ShadowMemory::Violation> ShadowMemory::violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stored_;
}

void ShadowMemory::clearViolations() {
  std::lock_guard<std::mutex> lock(mutex_);
  stored_.clear();
  count_.store(0, std::memory_order_relaxed);
}

CheckedAccessor::CheckedAccessor(FArrayBox& fab, ShadowMemory& shadow,
                                 int worker)
    : fab_(fab), shadow_(shadow), worker_(worker) {}

bool CheckedAccessor::inBounds(const IntVect& p, int c) const {
  return fab_.box().contains(p) && c >= 0 && c < fab_.nComp();
}

Real CheckedAccessor::read(const IntVect& p, int c) const {
  if (!inBounds(p, c)) {
    shadow_.recordOutOfBounds(p, c, worker_);
    return 0.0;
  }
  shadow_.recordRead(p, c, worker_);
  return fab_(p, c);
}

void CheckedAccessor::write(const IntVect& p, int c, Real value) {
  if (!inBounds(p, c)) {
    shadow_.recordOutOfBounds(p, c, worker_);
    return;
  }
  shadow_.recordWrite(p, c, worker_);
  fab_(p, c) = value;
}

} // namespace fluxdiv::grid
