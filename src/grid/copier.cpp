#include "grid/copier.hpp"

#include <stdexcept>

namespace fluxdiv::grid {

std::string Copier::opLabel(std::size_t i) const {
  const CopyOp& op = ops_.at(i);
  std::string label = "op " + std::to_string(i) + ": box" +
                      std::to_string(op.destBox) + "<-box" +
                      std::to_string(op.srcBox) + " sector[";
  for (int d = 0; d < SpaceDim; ++d) {
    if (d > 0) {
      label += ',';
    }
    if (op.sector[d] > 0) {
      label += '+';
    }
    label += std::to_string(op.sector[d]);
  }
  label += ']';
  return label;
}

Copier::Copier(const DisjointBoxLayout& layout, int nghost)
    : nghost_(nghost) {
  if (nghost <= 0) {
    return;
  }
  for (int d = 0; d < SpaceDim; ++d) {
    if (nghost > layout.boxSize()[d]) {
      throw std::invalid_argument(
          "Copier: nghost must not exceed the box size");
    }
  }
  for (std::size_t idx = 0; idx < layout.size(); ++idx) {
    const Box valid = layout.box(idx);
    const IntVect bc = layout.boxCoords(idx);
    // Enumerate the 26 halo sectors around the valid box. Sector (ox,oy,oz)
    // is the ghost slab offset in that direction; with nghost <= boxSize it
    // is sourced entirely from the single neighbor box at bc + offset.
    for (int oz = -1; oz <= 1; ++oz) {
      for (int oy = -1; oy <= 1; ++oy) {
        for (int ox = -1; ox <= 1; ++ox) {
          if (ox == 0 && oy == 0 && oz == 0) {
            continue;
          }
          const IntVect off(ox, oy, oz);
          IntVect rlo, rhi;
          for (int d = 0; d < SpaceDim; ++d) {
            switch (off[d]) {
            case -1:
              rlo[d] = valid.lo(d) - nghost;
              rhi[d] = valid.lo(d) - 1;
              break;
            case 0:
              rlo[d] = valid.lo(d);
              rhi[d] = valid.hi(d);
              break;
            default:
              rlo[d] = valid.hi(d) + 1;
              rhi[d] = valid.hi(d) + nghost;
              break;
            }
          }
          IntVect wrapShift;
          const std::int64_t src = layout.wrappedIndex(bc + off, wrapShift);
          if (src < 0) {
            continue; // non-periodic physical boundary: left for BCs
          }
          CopyOp op;
          op.destBox = idx;
          op.srcBox = static_cast<std::size_t>(src);
          op.destRegion = Box(rlo, rhi);
          op.srcShift = wrapShift;
          op.sector = off;
          if (op.destRegion.empty()) {
            // Degenerate sector: nothing to move. Dropping it here keeps
            // every dispatch loop (exchange, exchangeAsync, the level
            // executor's dependency edges) and bytesPerExchange() free of
            // empty ops.
            continue;
          }
          ghostCells_ += op.destRegion.numPts();
          ops_.push_back(op);
        }
      }
    }
  }
}

} // namespace fluxdiv::grid
