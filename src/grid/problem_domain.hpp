#pragma once
// ProblemDomain: the index-space extent of the whole computational domain
// plus per-direction periodicity. Ghost regions that fall outside a periodic
// direction are filled from the periodic image; outside a non-periodic
// direction they are left to boundary-condition code.

#include "grid/box.hpp"

namespace fluxdiv::grid {

/// Domain box with periodicity flags.
class ProblemDomain {
public:
  ProblemDomain() = default;

  /// Periodic in every direction by default (the exemplar's configuration).
  explicit ProblemDomain(const Box& domain, bool periodicAll = true)
      : box_(domain), periodic_{periodicAll, periodicAll, periodicAll} {}

  ProblemDomain(const Box& domain, const std::array<bool, SpaceDim>& periodic)
      : box_(domain), periodic_(periodic) {}

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] bool isPeriodic(int d) const {
    return periodic_[static_cast<std::size_t>(d)];
  }

  /// Periodic shift (a multiple of the domain size per direction) that maps
  /// point `p` into the domain. Returns false if `p` is outside the domain
  /// in a non-periodic direction. On success, `p + shift` lies inside.
  bool wrapShift(const IntVect& p, IntVect& shift) const {
    shift = IntVect::zero();
    for (int d = 0; d < SpaceDim; ++d) {
      const int n = box_.size(d);
      int q = p[d];
      if (q < box_.lo(d) || q > box_.hi(d)) {
        if (!isPeriodic(d)) {
          return false;
        }
        // Euclidean-style wrap relative to the domain's low corner.
        int rel = q - box_.lo(d);
        int wrapped = ((rel % n) + n) % n;
        shift[d] = (box_.lo(d) + wrapped) - q;
      }
    }
    return true;
  }

private:
  Box box_;
  std::array<bool, SpaceDim> periodic_{true, true, true};
};

} // namespace fluxdiv::grid
