#pragma once
// TracingFab: the probe harness of the kernel footprint checker
// (analysis/kernelcheck, docs/static-analysis.md "Kernel contract
// checking"). The flux kernels read through raw pointers and strides, so
// per-access interception at FabIndexer is impossible without taxing the
// hot path; instead kernelcheck observes footprints *differentially* — it
// perturbs one input slot, re-runs the real kernel, and bitwise-diffs the
// output against a reference run. TracingFab supplies the pieces that
// makes sound: deterministic position-keyed fills (so trials reproduce),
// raw snapshots that cover pad lanes (so writes into row padding are
// caught), and slot enumeration/inversion over the full allocation via
// FabIndexer::invert (so reads *of* pad lanes are caught too).
//
// A TracingFab works in raw slot space deliberately: every double of the
// allocation — valid cells, ghost cells, and pitch-padding lanes alike —
// is a probe site, because an undeclared access is exactly an access to a
// slot the contract says the kernel has no business touching.

#include <cstdint>
#include <vector>

#include "grid/farraybox.hpp"

namespace fluxdiv::grid {

/// One raw storage slot of a fab: a cell index (possibly in a row's pad
/// lanes, flagged) of one component.
struct TraceSlot {
  IntVect cell;
  int comp = 0;
  bool pad = false;
};

/// An FArrayBox plus the snapshot/diff machinery of the differential
/// prober. Copy-free by design: FArrayBox is move-only under
/// FLUXDIV_SHADOW_CHECK, so reference states live in plain Real buffers.
class TracingFab {
public:
  TracingFab() = default;

  /// Allocate over `box` x nComp at `pitch`, fill every raw slot (pad
  /// lanes included) with a deterministic value keyed on (slot, seed),
  /// and snapshot that state as the pre-run baseline.
  void define(const Box& box, int nComp, Pitch pitch, std::uint64_t seed);

  [[nodiscard]] FArrayBox& fab() { return fab_; }
  [[nodiscard]] const FArrayBox& fab() const { return fab_; }
  [[nodiscard]] bool defined() const { return fab_.defined(); }

  /// Every raw slot of the allocation — the read prober's universe.
  [[nodiscard]] std::vector<TraceSlot> allSlots() const;

  /// Value / in-place update of one raw slot (pad lanes included; no
  /// box-membership assertion, unlike FArrayBox::operator()).
  [[nodiscard]] Real value(const TraceSlot& slot) const;
  void set(const TraceSlot& slot, Real v);

  /// Re-capture the pre-run baseline from the current contents.
  void snapshot();
  /// Restore the contents to the last snapshot().
  void restore();
  /// Capture the current contents as the reference (post-run) state the
  /// perturbed runs are diffed against.
  void captureReference();

  /// Slots whose current value differs bitwise from the snapshot() —
  /// the observed write set of a kernel run started from the baseline.
  [[nodiscard]] std::vector<TraceSlot> changedSinceSnapshot() const;
  /// Slots whose current value differs bitwise from captureReference() —
  /// the observed dependence set of one perturbation.
  [[nodiscard]] std::vector<TraceSlot> changedSinceReference() const;

  /// The deterministic fill value define() gives a slot: strictly inside
  /// [1, 2) so magnitudes are uniform and no flush-to-zero or special
  /// value can mask a dependence.
  static Real fillValue(const TraceSlot& slot, std::uint64_t seed);

private:
  [[nodiscard]] std::int64_t rawIndex(const TraceSlot& slot) const;
  [[nodiscard]] std::vector<TraceSlot>
  diffAgainst(const std::vector<Real>& ref) const;

  FArrayBox fab_;
  std::vector<Real> base_; ///< pre-run baseline
  std::vector<Real> ref_;  ///< reference post-run state
};

} // namespace fluxdiv::grid
