#include "grid/norms.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fluxdiv::grid {

namespace {

/// Reduce f(value) over the valid cells of one component.
template <typename F>
Real reduceValid(const LevelData& level, int comp, F&& f) {
  if (comp < 0 || comp >= level.nComp()) {
    throw std::out_of_range("norms: component out of range");
  }
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::size_t b = 0; b < level.size(); ++b) {
    const FArrayBox& fab = level[b];
    const FabIndexer ix = fab.indexer();
    const Real* p = fab.dataPtr(comp);
    Real local = 0.0;
    forEachCell(level.validBox(b), [&](int i, int j, int k) {
      local += f(p[ix(i, j, k)]);
    });
    total += local;
  }
  return total;
}

} // namespace

Real levelSum(const LevelData& level, int comp) {
  return reduceValid(level, comp, [](Real v) { return v; });
}

Real levelNormL1(const LevelData& level, int comp) {
  return reduceValid(level, comp, [](Real v) { return std::abs(v); });
}

Real levelNormL2(const LevelData& level, int comp) {
  return std::sqrt(
      reduceValid(level, comp, [](Real v) { return v * v; }));
}

Real levelNormInf(const LevelData& level, int comp) {
  if (comp < 0 || comp >= level.nComp()) {
    throw std::out_of_range("norms: component out of range");
  }
  Real worst = 0.0;
  for (std::size_t b = 0; b < level.size(); ++b) {
    const FArrayBox& fab = level[b];
    const FabIndexer ix = fab.indexer();
    const Real* p = fab.dataPtr(comp);
    forEachCell(level.validBox(b), [&](int i, int j, int k) {
      worst = std::max(worst, std::abs(p[ix(i, j, k)]));
    });
  }
  return worst;
}

std::array<Real, 8> levelSums(const LevelData& level) {
  assert(level.nComp() <= 8);
  std::array<Real, 8> sums{};
  for (int c = 0; c < level.nComp(); ++c) {
    sums[static_cast<std::size_t>(c)] = levelSum(level, c);
  }
  return sums;
}

Real levelDiffInf(const LevelData& a, const LevelData& b, int comp) {
  if (a.size() != b.size() || a.nComp() != b.nComp()) {
    throw std::invalid_argument("levelDiffInf: incompatible levels");
  }
  Real worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FArrayBox& fa = a[i];
    const FArrayBox& fb = b[i];
    const FabIndexer ia = fa.indexer();
    const FabIndexer ib = fb.indexer();
    const Real* pa = fa.dataPtr(comp);
    const Real* pb = fb.dataPtr(comp);
    forEachCell(a.validBox(i), [&](int x, int y, int z) {
      worst = std::max(worst,
                       std::abs(pa[ia(x, y, z)] - pb[ib(x, y, z)]));
    });
  }
  return worst;
}

} // namespace fluxdiv::grid
