#pragma once
// Physical boundary conditions for non-periodic domain sides. exchange()
// fills ghost cells interior to the domain (and across periodic sides);
// ghosts outside a non-periodic side are the framework's responsibility
// ("Outside the domain, boundary conditions may be used to set the ghost
// cells" — paper Sec. II). BoundaryFiller implements the standard fills a
// finite-volume CFD code needs, dimension by dimension so edge/corner
// ghosts compose consistently.

#include <array>

#include "grid/leveldata.hpp"

namespace fluxdiv::grid {

/// Ghost-fill rule for one side of the domain.
enum class BCType {
  None,        ///< leave untouched (side is periodic or filled elsewhere)
  Reflective,  ///< mirror all components evenly across the face
  ReflectiveWall, ///< mirror, negating the face-normal velocity component
               ///< (component d+1 on side d): a slip wall
  Extrapolate, ///< cubic extrapolation from the 4 nearest interior cells
               ///< (matches the exemplar's 4th-order interior stencil)
  Dirichlet,   ///< linear fill targeting a fixed face value
};

/// Boundary specification: a BCType per (direction, side) plus the
/// Dirichlet face value (shared by all Dirichlet sides and components).
struct BoundarySpec {
  /// [direction][side]; side 0 = low, 1 = high.
  std::array<std::array<BCType, 2>, SpaceDim> type{{
      {BCType::None, BCType::None},
      {BCType::None, BCType::None},
      {BCType::None, BCType::None},
  }};
  Real dirichletValue = 0.0;

  /// Same rule on every side.
  static BoundarySpec uniform(BCType t, Real dirichletValue = 0.0) {
    BoundarySpec spec;
    for (auto& dir : spec.type) {
      dir = {t, t};
    }
    spec.dirichletValue = dirichletValue;
    return spec;
  }
};

/// Fills domain-boundary ghost cells of a LevelData according to a
/// BoundarySpec. Periodic sides should be BCType::None (exchange() covers
/// them); a non-None rule on a periodic side is rejected.
class BoundaryFiller {
public:
  /// `velocityComp(d) = d+1` is assumed for ReflectiveWall, matching the
  /// exemplar's component convention.
  BoundaryFiller(const DisjointBoxLayout& layout, BoundarySpec spec);

  /// Fill the boundary ghosts of every box. Call after exchange().
  void fill(LevelData& level) const;

  /// The dimension-d part of the sweep for box `b` alone (both sides where
  /// the box touches a non-None domain face). Ghost cells in dimensions
  /// e > d are read before their own sweep writes them, so callers issuing
  /// per-box fills must keep the d = 0..2 order fill() uses. This is the
  /// unit the step-graph executor (core/stepgraph) turns into a task.
  void fillBoxDim(LevelData& level, std::size_t b, int d) const;

  /// True if fillBoxDim(level, b, d) would write anything for a box with
  /// this valid region (it touches a non-None face of dimension d). Lets
  /// graph builders skip no-op BC tasks.
  [[nodiscard]] bool active(const Box& valid, int d) const;

  [[nodiscard]] const BoundarySpec& spec() const { return spec_; }

private:
  void fillSide(FArrayBox& fab, const Box& valid, int d, int side) const;

  DisjointBoxLayout layout_;
  BoundarySpec spec_;
};

} // namespace fluxdiv::grid
