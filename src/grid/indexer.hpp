#pragma once
// FabIndexer: THE stride accessor of the repo. Every piece of code that
// turns (i, j, k) into a linear offset — executors, shadow memory, IO,
// norms, the bench harness — goes through this one struct instead of
// recomputing `size.x` locally, so the padded-pitch storage contract
// (grid/real.hpp, docs/perf.md) has a single point of truth. The x-pitch
// is an explicit constructor argument: FArrayBox::indexer() passes its
// (possibly padded) allocation pitch, while dense() builds the logical
// packed indexing used for pitch-independent address spaces (shadow tags,
// flattened IO buffers, checkpoint payloads).

#include <cstdint>

#include "grid/box.hpp"

namespace fluxdiv::grid {

/// Linear-offset calculator over a Box, hoisting the origin and strides
/// out of hot loops (the paper's cached-pointer-offset idiom).
struct FabIndexer {
  std::int64_t sy = 0; ///< x-pitch: doubles between consecutive j rows
  std::int64_t sz = 0; ///< doubles between consecutive k planes
  int lo0 = 0, lo1 = 0, lo2 = 0;

  FabIndexer() = default;

  /// Index `box` with row pitch `pitch` (>= box.size(0)).
  FabIndexer(const Box& box, std::int64_t pitch)
      : sy(pitch), sz(pitch * box.size(1)), lo0(box.lo(0)), lo1(box.lo(1)),
        lo2(box.lo(2)) {}

  /// Logical dense indexing of `box` (pitch == row length): the layout of
  /// pitch-independent address spaces such as shadow tags and IO payloads.
  [[nodiscard]] static FabIndexer dense(const Box& box) {
    return {box, box.size(0)};
  }

  [[nodiscard]] std::int64_t operator()(int i, int j, int k) const {
    return (i - lo0) + sy * static_cast<std::int64_t>(j - lo1) +
           sz * static_cast<std::int64_t>(k - lo2);
  }

  /// Stride of direction d.
  [[nodiscard]] std::int64_t stride(int d) const {
    return d == 0 ? 1 : (d == 1 ? sy : sz);
  }

  /// Inverse of operator() for non-negative in-allocation offsets: the
  /// (i, j, k) slot a linear offset addresses within one component. Pad
  /// lanes of a padded pitch invert to i >= lo0 + rowLength — callers
  /// (the kernelcheck tracer) compare against their box extent to tell
  /// cell slots from padding (see isPad()).
  [[nodiscard]] IntVect invert(std::int64_t offset) const {
    const std::int64_t k = offset / sz;
    const std::int64_t rem = offset - k * sz;
    const std::int64_t j = rem / sy;
    const std::int64_t i = rem - j * sy;
    return {lo0 + static_cast<int>(i), lo1 + static_cast<int>(j),
            lo2 + static_cast<int>(k)};
  }

  /// True if `slot` (as returned by invert()) lies in a row's pad lanes
  /// rather than in a logical cell, for rows of length `rowLength`.
  [[nodiscard]] bool isPad(const IntVect& slot, int rowLength) const {
    return slot[0] >= lo0 + rowLength;
  }
};

} // namespace fluxdiv::grid
