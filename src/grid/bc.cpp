#include "grid/bc.hpp"

#include <stdexcept>

namespace fluxdiv::grid {

namespace {

/// Lagrange weights of the cubic through nodes {0,1,2,3} evaluated at x.
std::array<Real, 4> cubicWeights(Real x) {
  std::array<Real, 4> w;
  for (int i = 0; i < 4; ++i) {
    Real num = 1.0;
    Real den = 1.0;
    for (int j = 0; j < 4; ++j) {
      if (j == i) {
        continue;
      }
      num *= (x - j);
      den *= (i - j);
    }
    w[static_cast<std::size_t>(i)] = num / den;
  }
  return w;
}

} // namespace

BoundaryFiller::BoundaryFiller(const DisjointBoxLayout& layout,
                               BoundarySpec spec)
    : layout_(layout), spec_(spec) {
  for (int d = 0; d < SpaceDim; ++d) {
    for (int side = 0; side < 2; ++side) {
      const BCType t =
          spec_.type[static_cast<std::size_t>(d)][static_cast<std::size_t>(
              side)];
      if (t != BCType::None && layout.domain().isPeriodic(d)) {
        throw std::invalid_argument(
            "BoundaryFiller: non-None BC on a periodic direction");
      }
    }
  }
}

void BoundaryFiller::fill(LevelData& level) const {
  // Dimension sweep: later directions overwrite edge/corner ghosts using
  // the earlier directions' results, so composite corners end consistent.
  for (int d = 0; d < SpaceDim; ++d) {
#pragma omp parallel for schedule(static)
    for (std::size_t b = 0; b < level.size(); ++b) {
      fillBoxDim(level, b, d);
    }
  }
}

void BoundaryFiller::fillBoxDim(LevelData& level, std::size_t b,
                                int d) const {
  const Box dom = layout_.domain().box();
  const Box valid = level.validBox(b);
  if (valid.lo(d) == dom.lo(d) &&
      spec_.type[static_cast<std::size_t>(d)][0] != BCType::None) {
    fillSide(level[b], valid, d, 0);
  }
  if (valid.hi(d) == dom.hi(d) &&
      spec_.type[static_cast<std::size_t>(d)][1] != BCType::None) {
    fillSide(level[b], valid, d, 1);
  }
}

bool BoundaryFiller::active(const Box& valid, int d) const {
  const Box dom = layout_.domain().box();
  return (valid.lo(d) == dom.lo(d) &&
          spec_.type[static_cast<std::size_t>(d)][0] != BCType::None) ||
         (valid.hi(d) == dom.hi(d) &&
          spec_.type[static_cast<std::size_t>(d)][1] != BCType::None);
}

void BoundaryFiller::fillSide(FArrayBox& fab, const Box& valid, int d,
                              int side) const {
  const BCType type =
      spec_.type[static_cast<std::size_t>(d)][static_cast<std::size_t>(
          side)];
  const int nghost = valid.lo(d) - fab.box().lo(d);
  // The slab spans the box's full allocated cross-section so corners are
  // covered by the dimension sweep.
  const int edge = side == 0 ? valid.lo(d) : valid.hi(d);
  const int inward = side == 0 ? 1 : -1; // toward the interior

  const int vd = d + 1; // face-normal velocity component (exemplar layout)
  for (int c = 0; c < fab.nComp(); ++c) {
    Real* p = fab.dataPtr(c);
    for (int k = 0; k < nghost; ++k) {
      // Ghost plane at distance k+1 outside the face.
      const int gcoord = edge - inward * (k + 1);
      IntVect lo = fab.box().lo();
      IntVect hi = fab.box().hi();
      lo[d] = gcoord;
      hi[d] = gcoord;
      const Box ghostPlane(lo, hi);

      switch (type) {
      case BCType::None:
        break;
      case BCType::Reflective:
      case BCType::ReflectiveWall: {
        const Real sign =
            (type == BCType::ReflectiveWall && c == vd) ? -1.0 : 1.0;
        forEachCell(ghostPlane, [&](int i, int j, int k2) {
          IntVect src(i, j, k2);
          src[d] = edge + inward * k; // mirror image
          p[fab.offset(i, j, k2)] =
              sign * p[fab.offset(src[0], src[1], src[2])];
        });
        break;
      }
      case BCType::Extrapolate: {
        // Cubic through the 4 nearest interior cells, evaluated one-plus-k
        // cells outside: x = -(k+1) relative to node 0 at the edge cell.
        const auto w = cubicWeights(-static_cast<Real>(k + 1));
        forEachCell(ghostPlane, [&](int i, int j, int k2) {
          Real value = 0.0;
          for (int m = 0; m < 4; ++m) {
            IntVect src(i, j, k2);
            src[d] = edge + inward * m;
            value += w[static_cast<std::size_t>(m)] *
                     p[fab.offset(src[0], src[1], src[2])];
          }
          p[fab.offset(i, j, k2)] = value;
        });
        break;
      }
      case BCType::Dirichlet: {
        const Real target = spec_.dirichletValue;
        forEachCell(ghostPlane, [&](int i, int j, int k2) {
          IntVect src(i, j, k2);
          src[d] = edge + inward * k;
          p[fab.offset(i, j, k2)] =
              2.0 * target - p[fab.offset(src[0], src[1], src[2])];
        });
        break;
      }
      }
    }
  }
}

} // namespace fluxdiv::grid
