#pragma once
// Copier: the precomputed ghost-exchange plan for a (layout, nghost) pair.
// On a distributed machine this is the MPI ghost-cell exchange whose cost
// motivates large boxes (paper Fig. 1); on a node it degenerates to memcpy
// between neighboring FArrayBoxes. The plan records exactly which cells
// move, so ghost-overhead experiments can report measured copy volume.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/layout.hpp"
#include "grid/real.hpp"

namespace fluxdiv::grid {

/// One ghost-region copy: fill `destRegion` (global coordinates, ghost cells
/// of box `destBox`) from box `srcBox`, whose corresponding valid cells sit
/// at `destRegion.shift(srcShift)` (non-zero shift = periodic wrap).
/// `sector` is the halo-sector offset (each component in {-1,0,+1}) the op
/// was built for: destRegion is the `sector` slab of destBox's halo.
struct CopyOp {
  std::size_t destBox = 0;
  std::size_t srcBox = 0;
  Box destRegion;
  IntVect srcShift;
  IntVect sector;

  /// The source cells read by this op, in the source box's frame.
  [[nodiscard]] Box srcRegion() const { return destRegion.shift(srcShift); }
};

/// Ghost-exchange plan over a DisjointBoxLayout.
class Copier {
public:
  Copier() = default;

  /// Build the plan for `nghost` ghost layers. Requires nghost <= boxSize in
  /// every direction so each halo region maps to exactly one neighbor box.
  Copier(const DisjointBoxLayout& layout, int nghost);

  /// The copy plan. Every op has a non-empty destRegion: degenerate
  /// sectors are dropped at construction, so dispatch loops and the
  /// byte accounting never see empty ops.
  [[nodiscard]] const std::vector<CopyOp>& ops() const { return ops_; }
  [[nodiscard]] int nGhost() const { return nghost_; }

  /// Stable human-readable label for op `i`, for diagnostics in the
  /// labeled-witness style of analysis/graphcheck: ops are identified the
  /// same way in commcheck reports, mutation predictions, and CLI output.
  /// Format: "op 12: box5<-box3 sector[+1,0,-1]".
  [[nodiscard]] std::string opLabel(std::size_t i) const;

  /// Total ghost cells filled per exchange (per component).
  [[nodiscard]] std::int64_t ghostCellCount() const { return ghostCells_; }

  /// Bytes moved per exchange for `ncomp` components of Real data.
  [[nodiscard]] std::size_t bytesPerExchange(int ncomp) const {
    return static_cast<std::size_t>(ghostCells_) * ncomp * sizeof(Real);
  }

private:
  std::vector<CopyOp> ops_;
  int nghost_ = 0;
  std::int64_t ghostCells_ = 0;
};

} // namespace fluxdiv::grid
