#pragma once
// LevelData: solution data for one refinement level — one FArrayBox per box
// of a DisjointBoxLayout, each allocated with a ghost halo. exchange()
// fills every ghost cell from the neighboring boxes' valid cells (with
// periodic wrap), which is the on-node stand-in for Chombo's MPI ghost
// exchange. exchangeAsync() exposes the same plan as individually
// runnable ops with per-box completion ticks, so a task-parallel executor
// can overlap interior compute with the halo copies instead of taking the
// monolithic exchange() barrier (docs/perf.md).

#include <atomic>
#include <vector>

#include "grid/copier.hpp"
#include "grid/farraybox.hpp"
#include "grid/layout.hpp"

namespace fluxdiv::grid {

class LevelData;

/// One in-flight ghost exchange. Obtain from LevelData::exchangeAsync();
/// run each op exactly once (from any thread — distinct ops write disjoint
/// ghost regions), or call finish() to drain whatever remains on the
/// calling thread. Per-destination-box pending counts tick down as ops
/// complete, giving the executor a readiness signal per box.
class AsyncExchange {
public:
  AsyncExchange(const AsyncExchange&) = delete;
  AsyncExchange& operator=(const AsyncExchange&) = delete;

  /// Number of copy ops in the plan (none degenerate; see Copier::ops()).
  [[nodiscard]] std::size_t opCount() const;
  /// The i-th op (for dependency construction: destRegion intersection).
  [[nodiscard]] const CopyOp& op(std::size_t i) const;

  /// Execute op i and tick its destination box. Each op is claimed
  /// atomically, so a duplicate call (e.g. finish() racing a stray task)
  /// is a no-op — but the claimer may still be copying; ordering between
  /// an op and its dependents is the caller's job (task-graph edges).
  void runOp(std::size_t i);

  /// Ops still pending into destination box `b` (0 = ghosts of b ready).
  [[nodiscard]] int pendingOps(std::size_t b) const;
  [[nodiscard]] bool boxReady(std::size_t b) const {
    return pendingOps(b) == 0;
  }
  /// All ops complete?
  [[nodiscard]] bool done() const;

  /// Run every op not yet claimed on the calling thread. Afterwards
  /// done() is true provided no claimed op is still copying elsewhere.
  void finish();

private:
  friend class LevelData;
  explicit AsyncExchange(LevelData& level);

  LevelData* level_;
  std::vector<std::atomic<int>> pending_;   ///< per dest box
  std::vector<std::atomic<bool>> claimed_;  ///< per op
  std::atomic<std::int64_t> remaining_{0};
};

/// Per-level, per-box solution storage with ghost cells.
class LevelData {
public:
  LevelData() = default;

  /// Allocate `ncomp` components over every box of `layout`, each grown by
  /// `nghost` ghost layers. Init::Zero zero-fills on the constructing
  /// thread (the seed behavior); Init::Deferred leaves contents
  /// unspecified so the first writer NUMA-places the pages (see
  /// core::LevelExecutor::firstTouch). The exchange plan is built eagerly
  /// so its cost is not attributed to the first exchange.
  LevelData(const DisjointBoxLayout& layout, int ncomp, int nghost,
            Pitch pitch = Pitch::Padded, Init init = Init::Zero);

  [[nodiscard]] const DisjointBoxLayout& layout() const { return layout_; }
  [[nodiscard]] int nComp() const { return ncomp_; }
  [[nodiscard]] int nGhost() const { return nghost_; }
  [[nodiscard]] std::size_t size() const { return fabs_.size(); }

  FArrayBox& operator[](std::size_t idx) { return fabs_[idx]; }
  const FArrayBox& operator[](std::size_t idx) const { return fabs_[idx]; }

  /// Valid (non-ghost) region of box idx.
  [[nodiscard]] Box validBox(std::size_t idx) const {
    return layout_.box(idx);
  }

  /// Fill all ghost cells from neighbors' valid cells. Parallelized over
  /// copy operations with OpenMP (each op writes a disjoint ghost region);
  /// a plan with no ops (nghost == 0) skips the parallel region entirely.
  void exchange();

  /// Start a ghost exchange without running any copies: the returned
  /// AsyncExchange hands out the plan's ops for task execution with
  /// per-box completion ticks. The hot-path alternative to the exchange()
  /// barrier; see core::LevelExecutor::runStep for the intended use.
  [[nodiscard]] AsyncExchange exchangeAsync() { return AsyncExchange(*this); }

  /// Number of ghost-exchange bytes moved per exchange() call (empty
  /// intersection ops are dropped from the plan and excluded here).
  [[nodiscard]] std::size_t exchangeBytes() const {
    return copier_.bytesPerExchange(ncomp_);
  }

  /// The ghost-exchange plan this level executes. Read-only introspection
  /// for static analysis (analysis/commcheck) and the verification gates;
  /// the plan is immutable after construction.
  [[nodiscard]] const Copier& copier() const { return copier_; }

  /// Total allocated cells (valid + ghost) across all boxes, per component.
  [[nodiscard]] std::int64_t totalCellsAllocated() const;
  /// Total valid (physical) cells across all boxes, per component.
  [[nodiscard]] std::int64_t totalCellsValid() const;

  /// Copy this level's valid data into `dest` (same ProblemDomain, possibly
  /// a different box decomposition). Only dest's valid regions are written;
  /// call dest.exchange() afterwards if its ghosts are needed. Empty
  /// intersections are skipped before the parallel dispatch.
  void copyTo(LevelData& dest) const;

  /// Max |a-b| over the valid regions of two levels on any layouts covering
  /// the same domain (used to check cross-box-size equivalence).
  static Real maxAbsDiffValid(const LevelData& a, const LevelData& b);

private:
  friend class AsyncExchange;

  DisjointBoxLayout layout_;
  int ncomp_ = 0;
  int nghost_ = 0;
  Copier copier_;
  std::vector<FArrayBox> fabs_;
};

} // namespace fluxdiv::grid
