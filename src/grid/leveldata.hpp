#pragma once
// LevelData: solution data for one refinement level — one FArrayBox per box
// of a DisjointBoxLayout, each allocated with a ghost halo. exchange()
// fills every ghost cell from the neighboring boxes' valid cells (with
// periodic wrap), which is the on-node stand-in for Chombo's MPI ghost
// exchange.

#include <vector>

#include "grid/copier.hpp"
#include "grid/farraybox.hpp"
#include "grid/layout.hpp"

namespace fluxdiv::grid {

/// Per-level, per-box solution storage with ghost cells.
class LevelData {
public:
  LevelData() = default;

  /// Allocate `ncomp` components over every box of `layout`, each grown by
  /// `nghost` ghost layers, zero-initialized. The exchange plan is built
  /// eagerly so its cost is not attributed to the first exchange.
  LevelData(const DisjointBoxLayout& layout, int ncomp, int nghost);

  [[nodiscard]] const DisjointBoxLayout& layout() const { return layout_; }
  [[nodiscard]] int nComp() const { return ncomp_; }
  [[nodiscard]] int nGhost() const { return nghost_; }
  [[nodiscard]] std::size_t size() const { return fabs_.size(); }

  FArrayBox& operator[](std::size_t idx) { return fabs_[idx]; }
  const FArrayBox& operator[](std::size_t idx) const { return fabs_[idx]; }

  /// Valid (non-ghost) region of box idx.
  [[nodiscard]] Box validBox(std::size_t idx) const {
    return layout_.box(idx);
  }

  /// Fill all ghost cells from neighbors' valid cells. Parallelized over
  /// copy operations with OpenMP (each op writes a disjoint ghost region).
  void exchange();

  /// Number of ghost-exchange bytes moved per exchange() call.
  [[nodiscard]] std::size_t exchangeBytes() const {
    return copier_.bytesPerExchange(ncomp_);
  }

  /// Total allocated cells (valid + ghost) across all boxes, per component.
  [[nodiscard]] std::int64_t totalCellsAllocated() const;
  /// Total valid (physical) cells across all boxes, per component.
  [[nodiscard]] std::int64_t totalCellsValid() const;

  /// Copy this level's valid data into `dest` (same ProblemDomain, possibly
  /// a different box decomposition). Only dest's valid regions are written;
  /// call dest.exchange() afterwards if its ghosts are needed.
  void copyTo(LevelData& dest) const;

  /// Max |a-b| over the valid regions of two levels on any layouts covering
  /// the same domain (used to check cross-box-size equivalence).
  static Real maxAbsDiffValid(const LevelData& a, const LevelData& b);

private:
  DisjointBoxLayout layout_;
  int ncomp_ = 0;
  int nghost_ = 0;
  Copier copier_;
  std::vector<FArrayBox> fabs_;
};

} // namespace fluxdiv::grid
