#pragma once
// Shadow-memory race detection for FArrayBox data. Every (cell, component)
// slot gets a shadow tag packing the write epoch and the last writer's
// worker id; instrumented accesses then flag, at the exact cell:
//
//   * write-write races  — two different workers writing one slot within
//     the same epoch (no barrier can have separated them), and
//   * read-before-write  — reading a temporary slot no stage has produced
//     in the current epoch (consuming stale or uninitialized data).
//
// Epochs advance at points where the runner knows all workers have
// synchronized (one per flux-divergence evaluation), so a write in epoch N
// read in epoch N is "produced this step" and legal across workers.
//
// ShadowMemory and CheckedAccessor are always compiled (and unit-tested in
// every build); the FArrayBox/runner/executor instrumentation that feeds
// them only exists under FLUXDIV_SHADOW_CHECK (-DFLUXDIV_SHADOW_CHECK=ON),
// so Release builds pay nothing. See docs/static-analysis.md.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "grid/box.hpp"
#include "grid/indexer.hpp"
#include "grid/real.hpp"

namespace fluxdiv::grid {

class FArrayBox;

/// Per-slot last-writer tracking over a Box x components index space.
class ShadowMemory {
public:
  /// What an instrumented access detected.
  enum class ViolationKind : std::uint8_t {
    WriteWrite,      ///< two workers wrote one slot in the same epoch
    ReadBeforeWrite, ///< slot read before any write in the current epoch
    OutOfBounds,     ///< access outside the box or component range
  };

  struct Violation {
    ViolationKind kind = ViolationKind::WriteWrite;
    IntVect cell;      ///< the exact violating cell
    int comp = 0;      ///< the violating component
    int workerA = -1;  ///< the accessing worker
    int workerB = -1;  ///< the prior writer (-1 if none)
    [[nodiscard]] std::string message() const;
  };

  ShadowMemory() = default;

  /// (Re)shape the shadow to `box` x `ncomp`; clears all tags and recorded
  /// violations and restarts the epoch counter.
  void define(const Box& box, int ncomp);

  [[nodiscard]] bool defined() const { return ncomp_ > 0; }
  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] int nComp() const { return ncomp_; }

  /// Start a new epoch: all prior writes become "previous step" data that
  /// may be read or overwritten freely. Call only when no worker is
  /// accessing the tracked fab (a barrier point).
  void beginEpoch();

  /// Declare every slot produced in the current epoch without naming a
  /// writer (pre-initialized input data such as exchanged ghosts).
  void fillAll();

  /// Record a write of (p, c) by `worker` (>= 0). Thread-safe.
  void recordWrite(const IntVect& p, int c, int worker);
  /// Record a write of every slot in `region` x [c0, c0+nc) by `worker`.
  void recordWriteRegion(const Box& region, int c0, int nc, int worker);
  /// Record a read of (p, c) by `worker`: flags ReadBeforeWrite if no
  /// write this epoch produced the slot. Thread-safe.
  void recordRead(const IntVect& p, int c, int worker);
  /// Record an access already known to be out of bounds (e.g. detected by
  /// CheckedAccessor against the fab's own box). Thread-safe.
  void recordOutOfBounds(const IntVect& p, int c, int worker);

  /// Number of violations detected since define()/beginEpoch-reset.
  [[nodiscard]] std::size_t violationCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// The first violations detected (bounded; see kMaxStored). Callers
  /// should quiesce all workers before inspecting.
  [[nodiscard]] std::vector<Violation> violations() const;
  /// Drop recorded violations (the epoch and tags are kept).
  void clearViolations();

  /// How many violations are stored in detail (the count keeps counting).
  static constexpr std::size_t kMaxStored = 64;

private:
  // Tag layout: epoch in the high 16 bits, worker id + 1 in the low 16
  // (0 = never written). Epochs wrap; a wrap-induced false negative needs
  // 65535 epochs between write and read of one slot, which no single
  // evaluation does.
  static constexpr std::uint32_t kWorkerMask = 0xffffu;

  // Shadow tags index the *logical* cell space densely through the shared
  // FabIndexer: one tag per (cell, component) regardless of the tracked
  // fab's allocation pitch, so padded and dense fabs share one tag layout.
  [[nodiscard]] std::int64_t slot(const IntVect& p, int c) const {
    return idx_(p[0], p[1], p[2]) + sc_ * c;
  }
  void report(const Violation& v);

  Box box_;
  int ncomp_ = 0;
  FabIndexer idx_;
  std::int64_t sc_ = 0;
  std::uint32_t epoch_ = 1;
  std::vector<std::atomic<std::uint32_t>> tags_;
  std::atomic<std::size_t> count_{0};
  mutable std::mutex mutex_;
  std::vector<Violation> stored_;
};

/// Bounds- and race-checked view of an FArrayBox: every access validates
/// the index against the fab's box and component count, and feeds the
/// given ShadowMemory. Used by the shadow tests and available to any
/// debug harness; the hot kernels instead use the gated hooks on
/// FArrayBox itself.
class CheckedAccessor {
public:
  CheckedAccessor(FArrayBox& fab, ShadowMemory& shadow, int worker);

  /// Checked read of (p, c).
  [[nodiscard]] Real read(const IntVect& p, int c) const;
  /// Checked write of value into (p, c).
  void write(const IntVect& p, int c, Real value);

  [[nodiscard]] int worker() const { return worker_; }

private:
  /// Validates bounds; records OutOfBounds and returns false when the
  /// access would fall outside the fab.
  [[nodiscard]] bool inBounds(const IntVect& p, int c) const;

  FArrayBox& fab_;
  ShadowMemory& shadow_;
  int worker_;
};

} // namespace fluxdiv::grid
