#pragma once
// DisjointBoxLayout: the regular decomposition of a ProblemDomain into
// equal-size boxes. This is the unit of coarse-grained parallelism in the
// paper ("parallelization over boxes") and the unit of ghost exchange.

#include <cstdint>
#include <vector>

#include "grid/box.hpp"
#include "grid/problem_domain.hpp"

namespace fluxdiv::grid {

/// Regular, disjoint, exactly-covering decomposition of a domain into boxes
/// of a fixed size per direction.
class DisjointBoxLayout {
public:
  DisjointBoxLayout() = default;

  /// Decompose `domain` into boxes of extent `boxSize` per direction.
  /// Requires the domain size to be an exact multiple of boxSize in every
  /// direction (throws std::invalid_argument otherwise).
  DisjointBoxLayout(const ProblemDomain& domain, const IntVect& boxSize);

  /// Convenience: cubic boxes of side n.
  DisjointBoxLayout(const ProblemDomain& domain, int boxSide)
      : DisjointBoxLayout(domain, IntVect::unit(boxSide)) {}

  [[nodiscard]] const ProblemDomain& domain() const { return domain_; }
  [[nodiscard]] const IntVect& boxSize() const { return boxSize_; }
  /// Number of boxes in each direction.
  [[nodiscard]] const IntVect& gridSize() const { return nBoxes_; }
  /// Total number of boxes.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nBoxes_.product());
  }

  /// The box with linear index `idx` (x-fastest ordering of box coords).
  [[nodiscard]] Box box(std::size_t idx) const;

  /// Box coordinates (bx,by,bz) of linear index.
  [[nodiscard]] IntVect boxCoords(std::size_t idx) const;

  /// Linear index from box coordinates, wrapped periodically where the
  /// domain is periodic. Returns -1 if out of range in a non-periodic
  /// direction; `wrapShift` receives the index-space shift that maps
  /// coordinates in the *requested* (unwrapped) box image to the returned
  /// box's coordinates.
  [[nodiscard]] std::int64_t wrappedIndex(IntVect boxCoord,
                                          IntVect& wrapShift) const;

  /// Linear index of the box containing domain cell `p` (must be inside).
  [[nodiscard]] std::size_t indexContaining(const IntVect& p) const;

private:
  ProblemDomain domain_;
  IntVect boxSize_{0, 0, 0};
  IntVect nBoxes_{0, 0, 0};
};

} // namespace fluxdiv::grid
