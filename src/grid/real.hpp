#pragma once
// Floating-point type of all solution data. The paper's exemplar is
// compiled for 64-bit floats (Sec. III-C); so is this reproduction.
//
// This header also fixes the storage contract the vectorized pencil
// kernels rely on (see docs/perf.md):
//   * kFabAlignment  — every FArrayBox allocation starts on a 64-byte
//     boundary (one full cache line / one AVX-512 vector of doubles);
//   * kSimdDoubles   — the x-pitch padding multiple. Padded fabs round
//     their row pitch up to a multiple of this, so every (j, k, c) row
//     base stays kFabAlignment-aligned. Override at configure time with
//     -DFLUXDIV_SIMD_WIDTH=<doubles> (CMake option of the same name).

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

// Padding multiple in doubles. 8 doubles = 64 bytes = one cache line,
// which is also the widest hardware vector in common use (AVX-512).
#ifndef FLUXDIV_SIMD_WIDTH
#define FLUXDIV_SIMD_WIDTH 8
#endif

namespace fluxdiv::grid {

using Real = double;

/// Allocation alignment of all fab storage (bytes).
inline constexpr std::size_t kFabAlignment = 64;

/// Row-pitch padding multiple (doubles) of Pitch::Padded fabs.
inline constexpr int kSimdDoubles = FLUXDIV_SIMD_WIDTH;
static_assert(kSimdDoubles > 0 && (kSimdDoubles & (kSimdDoubles - 1)) == 0,
              "FLUXDIV_SIMD_WIDTH must be a positive power of two");
static_assert(kSimdDoubles * sizeof(Real) <= kFabAlignment ||
                  kSimdDoubles * sizeof(Real) % kFabAlignment == 0,
              "pitch multiple and allocation alignment must compose");

/// Round a row length up to the padding multiple.
[[nodiscard]] constexpr std::int64_t paddedPitch(std::int64_t n) {
  return (n + kSimdDoubles - 1) / kSimdDoubles * kSimdDoubles;
}

/// Minimal aligned allocator over C++17 aligned operator new. Keeps
/// std::vector as the storage container (zero-init, move semantics, byte
/// accounting) while guaranteeing kFabAlignment for element 0.
template <typename T, std::size_t Align = kFabAlignment>
struct AlignedAllocator {
  using value_type = T;
  // Non-type Align defeats allocator_traits' default rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }
};

/// The storage vector of FArrayBox: 64-byte-aligned doubles.
using AlignedVector = std::vector<Real, AlignedAllocator<Real>>;

/// AlignedAllocator whose value-less construct() is a no-op, so
/// vector::resize leaves new elements default-initialized (uninitialized
/// for Real) instead of zero-filling them. This keeps allocation from
/// touching — and therefore NUMA-placing — the new pages: FArrayBox
/// defines its storage through this allocator and fills explicitly
/// (Init::Zero) or defers the first touch to the owning worker
/// (Init::Deferred; see the level executor's firstTouch()).
template <typename T, std::size_t Align = kFabAlignment>
struct AlignedUninitAllocator : AlignedAllocator<T, Align> {
  using value_type = T;
  template <typename U>
  struct rebind {
    using other = AlignedUninitAllocator<U, Align>;
  };

  AlignedUninitAllocator() = default;
  template <typename U>
  AlignedUninitAllocator(const AlignedUninitAllocator<U, Align>&) noexcept {
  }

  template <typename U>
  void construct(U*) noexcept {} // default-init: no store, no page touch
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

/// Fab storage: 64-byte-aligned doubles with first-touch-friendly resize.
using FabVector = std::vector<Real, AlignedUninitAllocator<Real>>;

} // namespace fluxdiv::grid
