#pragma once
// Floating-point type of all solution data. The paper's exemplar is
// compiled for 64-bit floats (Sec. III-C); so is this reproduction.

namespace fluxdiv::grid {

using Real = double;

} // namespace fluxdiv::grid
