#include "grid/farraybox.hpp"

#include <algorithm>
#include <cmath>

namespace fluxdiv::grid {

void FArrayBox::define(const Box& box, int ncomp, Pitch pitch, Init init) {
  assert(!box.empty());
  assert(ncomp > 0);
  box_ = box;
  ncomp_ = ncomp;
  sy_ = pitch == Pitch::Padded ? paddedPitch(box.size(0)) : box.size(0);
  sz_ = sy_ * box.size(1);
  sc_ = sz_ * box.size(2);
  // resize() through the default-init allocator does not touch the new
  // elements, so Init::Deferred allocations leave page placement to the
  // first writer (NUMA first-touch); Init::Zero fills here, preserving
  // the seed's zero-initialized semantics.
  data_.clear();
  data_.resize(static_cast<std::size_t>(sc_) * ncomp);
  if (init == Init::Zero) {
    std::fill(data_.begin(), data_.end(), 0.0);
  }
  assert(reinterpret_cast<std::uintptr_t>(data_.data()) % kFabAlignment ==
         0);
}

void FArrayBox::setVal(Real value) {
  std::fill(data_.begin(), data_.end(), value);
}

void FArrayBox::setVal(Real value, const Box& region, int c) {
  const Box r = region & box_;
  Real* p = dataPtr(c);
  forEachCell(r, [&](int i, int j, int k) { p[offset(i, j, k)] = value; });
}

void FArrayBox::copy(const FArrayBox& src, const Box& region, int srcComp,
                     int destComp, int ncomp) {
  copyShifted(src, region, IntVect::zero(), srcComp, destComp, ncomp);
}

void FArrayBox::copyShifted(const FArrayBox& src, const Box& region,
                            const IntVect& srcShift, int srcComp,
                            int destComp, int ncomp) {
  const Box r = region & box_;
  assert(src.box_.contains(r.shift(srcShift)));
  assert(srcComp + ncomp <= src.ncomp_ && destComp + ncomp <= ncomp_);
  if (r.empty()) {
    return;
  }
  const int nx = r.size(0);
  for (int c = 0; c < ncomp; ++c) {
    Real* d = dataPtr(destComp + c);
    const Real* s = src.dataPtr(srcComp + c);
    for (int k = r.lo(2); k <= r.hi(2); ++k) {
      for (int j = r.lo(1); j <= r.hi(1); ++j) {
        Real* drow = d + offset(r.lo(0), j, k);
        const Real* srow =
            s + src.offset(r.lo(0) + srcShift[0], j + srcShift[1],
                           k + srcShift[2]);
        std::copy(srow, srow + nx, drow);
      }
    }
  }
}

void FArrayBox::plus(const FArrayBox& src, Real scale, const Box& region) {
  const Box r = region & box_ & src.box_;
  assert(src.ncomp_ == ncomp_);
  for (int c = 0; c < ncomp_; ++c) {
    Real* d = dataPtr(c);
    const Real* s = src.dataPtr(c);
    forEachCell(r, [&](int i, int j, int k) {
      d[offset(i, j, k)] += scale * s[src.offset(i, j, k)];
    });
  }
}

Real FArrayBox::sum(const Box& region, int c) const {
  const Box r = region & box_;
  const Real* p = dataPtr(c);
  Real total = 0.0;
  forEachCell(r, [&](int i, int j, int k) { total += p[offset(i, j, k)]; });
  return total;
}

Real FArrayBox::maxAbsDiff(const FArrayBox& a, const FArrayBox& b,
                           const Box& region) {
  assert(a.ncomp_ == b.ncomp_);
  const Box r = region & a.box_ & b.box_;
  Real worst = 0.0;
  for (int c = 0; c < a.ncomp_; ++c) {
    const Real* pa = a.dataPtr(c);
    const Real* pb = b.dataPtr(c);
    forEachCell(r, [&](int i, int j, int k) {
      worst = std::max(worst, std::abs(pa[a.offset(i, j, k)] -
                                       pb[b.offset(i, j, k)]));
    });
  }
  return worst;
}

} // namespace fluxdiv::grid
