#include "grid/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fluxdiv::grid {

namespace {

constexpr char kMagic[8] = {'F', 'X', 'D', 'C', 'K', 'P', 'T', '1'};

/// The payload of one fab is the logical dense [x, y, z, c] stream: fabs
/// are walked row by row through the shared indexer, so the on-disk format
/// is pitch-independent — a checkpoint written with padded storage reads
/// back into any pitch, and matches the byte stream the seed's
/// whole-allocation dump produced for dense fabs.
void writeFabRows(std::ostream& out, const FArrayBox& fab) {
  const Box& b = fab.box();
  const FabIndexer ix = fab.indexer();
  const std::streamsize rowBytes = b.size(0) * sizeof(Real);
  for (int c = 0; c < fab.nComp(); ++c) {
    const Real* p = fab.dataPtr(c);
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        out.write(reinterpret_cast<const char*>(p + ix(b.lo(0), j, k)),
                  rowBytes);
      }
    }
  }
}

void readFabRows(std::istream& in, FArrayBox& fab) {
  const Box& b = fab.box();
  const FabIndexer ix = fab.indexer();
  const std::streamsize rowBytes = b.size(0) * sizeof(Real);
  for (int c = 0; c < fab.nComp(); ++c) {
    Real* p = fab.dataPtr(c);
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        in.read(reinterpret_cast<char*>(p + ix(b.lo(0), j, k)), rowBytes);
      }
    }
  }
}

struct Header {
  char magic[8];
  std::int32_t endianTag = 1; ///< written as 1; mismatched on foreign end
  std::int32_t ncomp = 0;
  std::int32_t nghost = 0;
  std::int32_t domainLo[3] = {0, 0, 0};
  std::int32_t domainHi[3] = {0, 0, 0};
  std::int32_t boxSize[3] = {0, 0, 0};
  std::int32_t periodic[3] = {1, 1, 1};
};

} // namespace

void writeCheckpoint(const std::string& path, const LevelData& level) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("writeCheckpoint: cannot open " + path);
  }
  const DisjointBoxLayout& layout = level.layout();
  Header h;
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.ncomp = level.nComp();
  h.nghost = level.nGhost();
  for (int d = 0; d < SpaceDim; ++d) {
    h.domainLo[d] = layout.domain().box().lo(d);
    h.domainHi[d] = layout.domain().box().hi(d);
    h.boxSize[d] = layout.boxSize()[d];
    h.periodic[d] = layout.domain().isPeriodic(d) ? 1 : 0;
  }
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (std::size_t b = 0; b < level.size(); ++b) {
    writeFabRows(out, level[b]);
  }
  if (!out) {
    throw std::runtime_error("writeCheckpoint: write failed for " + path);
  }
}

LevelData readCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("readCheckpoint: cannot open " + path);
  }
  Header h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("readCheckpoint: bad magic in " + path);
  }
  if (h.endianTag != 1) {
    throw std::runtime_error(
        "readCheckpoint: endianness mismatch (foreign checkpoint)");
  }
  const Box domainBox(IntVect(h.domainLo[0], h.domainLo[1], h.domainLo[2]),
                      IntVect(h.domainHi[0], h.domainHi[1], h.domainHi[2]));
  const ProblemDomain domain(
      domainBox, std::array<bool, SpaceDim>{h.periodic[0] != 0,
                                            h.periodic[1] != 0,
                                            h.periodic[2] != 0});
  const DisjointBoxLayout layout(
      domain, IntVect(h.boxSize[0], h.boxSize[1], h.boxSize[2]));
  LevelData level(layout, h.ncomp, h.nghost);
  for (std::size_t b = 0; b < level.size(); ++b) {
    readFabRows(in, level[b]);
  }
  if (!in) {
    throw std::runtime_error("readCheckpoint: truncated file " + path);
  }
  return level;
}

} // namespace fluxdiv::grid
