#include "grid/layout.hpp"

#include <stdexcept>

namespace fluxdiv::grid {

DisjointBoxLayout::DisjointBoxLayout(const ProblemDomain& domain,
                                     const IntVect& boxSize)
    : domain_(domain), boxSize_(boxSize) {
  for (int d = 0; d < SpaceDim; ++d) {
    if (boxSize[d] <= 0) {
      throw std::invalid_argument("DisjointBoxLayout: boxSize must be > 0");
    }
    if (domain.box().size(d) % boxSize[d] != 0) {
      throw std::invalid_argument(
          "DisjointBoxLayout: domain size must be a multiple of boxSize");
    }
    nBoxes_[d] = domain.box().size(d) / boxSize[d];
  }
}

Box DisjointBoxLayout::box(std::size_t idx) const {
  const IntVect bc = boxCoords(idx);
  IntVect lo = domain_.box().lo();
  for (int d = 0; d < SpaceDim; ++d) {
    lo[d] += bc[d] * boxSize_[d];
  }
  return {lo, lo + boxSize_ - IntVect::unit(1)};
}

IntVect DisjointBoxLayout::boxCoords(std::size_t idx) const {
  const auto i = static_cast<std::int64_t>(idx);
  const std::int64_t nx = nBoxes_[0];
  const std::int64_t ny = nBoxes_[1];
  return {static_cast<int>(i % nx), static_cast<int>((i / nx) % ny),
          static_cast<int>(i / (nx * ny))};
}

std::int64_t DisjointBoxLayout::wrappedIndex(IntVect boxCoord,
                                             IntVect& wrapShift) const {
  wrapShift = IntVect::zero();
  for (int d = 0; d < SpaceDim; ++d) {
    const int n = nBoxes_[d];
    if (boxCoord[d] < 0 || boxCoord[d] >= n) {
      if (!domain_.isPeriodic(d)) {
        return -1;
      }
      const int wrapped = ((boxCoord[d] % n) + n) % n;
      // Shift in *cells* from the requested image to the stored box.
      wrapShift[d] = (wrapped - boxCoord[d]) * boxSize_[d];
      boxCoord[d] = wrapped;
    }
  }
  return boxCoord[0] +
         static_cast<std::int64_t>(nBoxes_[0]) *
             (boxCoord[1] + static_cast<std::int64_t>(nBoxes_[1]) *
                                boxCoord[2]);
}

std::size_t DisjointBoxLayout::indexContaining(const IntVect& p) const {
  IntVect bc;
  for (int d = 0; d < SpaceDim; ++d) {
    const int rel = p[d] - domain_.box().lo(d);
    if (rel < 0 || rel >= domain_.box().size(d)) {
      throw std::out_of_range("indexContaining: point outside domain");
    }
    bc[d] = rel / boxSize_[d];
  }
  IntVect unusedShift;
  return static_cast<std::size_t>(wrappedIndex(bc, unusedShift));
}

} // namespace fluxdiv::grid
