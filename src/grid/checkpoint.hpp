#pragma once
// Checkpoint/restart: bit-exact binary serialization of a LevelData
// (valid + ghost cells) so long solves can stop and resume — standard
// framework plumbing around the exemplar. The format is a small
// self-describing header plus raw little-endian doubles; files are only
// portable between same-endian hosts (checked on load).

#include <string>

#include "grid/leveldata.hpp"

namespace fluxdiv::grid {

/// Write `level` (layout geometry + every fab's full contents) to `path`.
/// Throws std::runtime_error on I/O failure.
void writeCheckpoint(const std::string& path, const LevelData& level);

/// Read a checkpoint written by writeCheckpoint. The returned level
/// reconstructs the same layout (domain, box size, periodicity, ghosts,
/// components) and bit-identical data.
LevelData readCheckpoint(const std::string& path);

} // namespace fluxdiv::grid
