#pragma once
// Rectangular index-space domain (Chombo's Box). A Box is a closed interval
// [lo, hi] in each dimension; an empty box is represented by any hi < lo.
// Boxes describe cell-centered regions; faceBox() produces the face-centered
// region used by the flux temporaries (one extra index in one direction).

#include <cstdint>
#include <iosfwd>

#include "grid/intvect.hpp"

namespace fluxdiv::grid {

/// Closed rectangular region of the integer index space.
class Box {
public:
  /// Default: the canonical empty box.
  constexpr Box() : lo_(0, 0, 0), hi_(-1, -1, -1) {}
  /// Box spanning [lo, hi] inclusive in every dimension.
  constexpr Box(const IntVect& lo, const IntVect& hi) : lo_(lo), hi_(hi) {}

  /// Cube of side n with low corner at `origin`.
  static constexpr Box cube(int n, const IntVect& origin = IntVect::zero()) {
    return {origin, origin + IntVect::unit(n - 1)};
  }

  [[nodiscard]] constexpr const IntVect& lo() const { return lo_; }
  [[nodiscard]] constexpr const IntVect& hi() const { return hi_; }
  [[nodiscard]] constexpr int lo(int d) const { return lo_[d]; }
  [[nodiscard]] constexpr int hi(int d) const { return hi_[d]; }

  /// Number of indices covered in direction d (0 for an empty box).
  [[nodiscard]] constexpr int size(int d) const {
    const int n = hi_[d] - lo_[d] + 1;
    return n > 0 ? n : 0;
  }
  /// Extent vector (size in each direction).
  [[nodiscard]] constexpr IntVect size() const {
    return {size(0), size(1), size(2)};
  }
  /// Total number of points covered.
  [[nodiscard]] constexpr std::int64_t numPts() const {
    return empty() ? 0 : size().product();
  }
  [[nodiscard]] constexpr bool empty() const {
    return hi_[0] < lo_[0] || hi_[1] < lo_[1] || hi_[2] < lo_[2];
  }

  [[nodiscard]] constexpr bool contains(const IntVect& p) const {
    return lo_.allLE(p) && p.allLE(hi_);
  }
  [[nodiscard]] constexpr bool contains(const Box& b) const {
    return b.empty() || (contains(b.lo_) && contains(b.hi_));
  }
  [[nodiscard]] constexpr bool intersects(const Box& b) const {
    return !(*this & b).empty();
  }

  /// Intersection (may be empty).
  constexpr Box operator&(const Box& b) const {
    return {IntVect::max(lo_, b.lo_), IntVect::min(hi_, b.hi_)};
  }

  constexpr bool operator==(const Box& b) const {
    return lo_ == b.lo_ && hi_ == b.hi_;
  }
  constexpr bool operator!=(const Box& b) const { return !(*this == b); }

  /// Box grown by `n` on every side (ghost region construction).
  [[nodiscard]] constexpr Box grow(int n) const {
    return {lo_ - IntVect::unit(n), hi_ + IntVect::unit(n)};
  }
  /// Box grown by `n` on both sides of direction d only.
  [[nodiscard]] constexpr Box grow(int d, int n) const {
    return {lo_ - IntVect::basis(d) * n, hi_ + IntVect::basis(d) * n};
  }
  /// Box translated by `shift`.
  [[nodiscard]] constexpr Box shift(const IntVect& s) const {
    return {lo_ + s, hi_ + s};
  }

  /// Face-centered companion box in direction d: the faces bounding the
  /// cells of this box, i.e. one extra index on the high side of d. Face
  /// index f is the face between cells f-1 and f.
  [[nodiscard]] constexpr Box faceBox(int d) const {
    return {lo_, hi_ + IntVect::basis(d)};
  }

  /// The `d`-low / `d`-high boundary slab of thickness `n` *inside* the box.
  [[nodiscard]] constexpr Box lowSlab(int d, int n) const {
    IntVect h = hi_;
    h[d] = lo_[d] + n - 1;
    return {lo_, h};
  }
  [[nodiscard]] constexpr Box highSlab(int d, int n) const {
    IntVect l = lo_;
    l[d] = hi_[d] - n + 1;
    return {l, hi_};
  }

private:
  IntVect lo_;
  IntVect hi_;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Invoke f(i, j, k) for every point of the box in z-outer, x-inner
/// (unit-stride) order — the canonical Fortran-order traversal.
template <typename F> void forEachCell(const Box& b, F&& f) {
  for (int k = b.lo(2); k <= b.hi(2); ++k) {
    for (int j = b.lo(1); j <= b.hi(1); ++j) {
      for (int i = b.lo(0); i <= b.hi(0); ++i) {
        f(i, j, k);
      }
    }
  }
}

} // namespace fluxdiv::grid
