#pragma once
// Coarse-fine grid-transfer operators — the framework substrate paper
// Sec. II describes around the exemplar ("inter-patch interpolation
// routines, mesh refinement algorithms"; Chombo's Berger-Oliger-Colella
// AMR). This reproduction's benchmark itself is single-level, but the
// framework it models is an AMR framework, so the box calculus and the
// standard prolongation/restriction operators are provided and tested.

#include "grid/farraybox.hpp"

namespace fluxdiv::amr {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::Real;

/// The fine-index image of a coarse box under refinement by `ratio`.
[[nodiscard]] Box refine(const Box& coarse, int ratio);

/// The coarse-index image of a fine box (requires exact alignment:
/// lo/hi+1 divisible by ratio, as produced by refine()).
[[nodiscard]] Box coarsen(const Box& fine, int ratio);

/// Coarse cell containing fine cell `fine` under refinement `ratio`
/// (floor division, correct for negative indices).
[[nodiscard]] IntVect coarsenIndex(const IntVect& fine, int ratio);

/// Piecewise-constant prolongation: every fine cell of `fineRegion`
/// receives its coarse parent's value. All components.
void prolongConstant(const FArrayBox& coarse, FArrayBox& fine,
                     const Box& fineRegion, int ratio);

/// Piecewise-linear (trilinear-slope) prolongation: the coarse value plus
/// central-difference slopes evaluated at the fine cell center. Exact for
/// fields linear in the coordinates; preserves the coarse cell averages
/// (the fine average over a parent equals the parent's value). The
/// coarse fab must cover the coarsened fineRegion grown by 1.
void prolongLinear(const FArrayBox& coarse, FArrayBox& fine,
                   const Box& fineRegion, int ratio);

/// Conservative restriction: each coarse cell of `coarseRegion` becomes
/// the mean of its ratio^3 fine children (the volume-weighted average on
/// a uniform grid — discretely conservative).
void restrictAverage(const FArrayBox& fine, FArrayBox& coarse,
                     const Box& coarseRegion, int ratio);

} // namespace fluxdiv::amr
