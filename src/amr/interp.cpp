#include "amr/interp.hpp"

#include <cassert>
#include <stdexcept>

namespace fluxdiv::amr {

namespace {

int floorDiv(int a, int b) { return (a >= 0) ? a / b : -((-a + b - 1) / b); }

} // namespace

Box refine(const Box& coarse, int ratio) {
  assert(ratio >= 1);
  if (coarse.empty()) {
    return {};
  }
  return {coarse.lo() * ratio,
          (coarse.hi() + IntVect::unit(1)) * ratio - IntVect::unit(1)};
}

Box coarsen(const Box& fine, int ratio) {
  assert(ratio >= 1);
  if (fine.empty()) {
    return {};
  }
  IntVect lo, hi;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (fine.lo(d) % ratio != 0 || (fine.hi(d) + 1) % ratio != 0) {
      throw std::invalid_argument(
          "coarsen: fine box is not aligned to the refinement ratio");
    }
    lo[d] = floorDiv(fine.lo(d), ratio);
    hi[d] = floorDiv(fine.hi(d) + 1, ratio) - 1;
  }
  return {lo, hi};
}

IntVect coarsenIndex(const IntVect& fine, int ratio) {
  return {floorDiv(fine[0], ratio), floorDiv(fine[1], ratio),
          floorDiv(fine[2], ratio)};
}

void prolongConstant(const FArrayBox& coarse, FArrayBox& fine,
                     const Box& fineRegion, int ratio) {
  assert(fine.box().contains(fineRegion));
  assert(fine.nComp() == coarse.nComp());
  for (int c = 0; c < fine.nComp(); ++c) {
    const Real* pc = coarse.dataPtr(c);
    Real* pf = fine.dataPtr(c);
    forEachCell(fineRegion, [&](int i, int j, int k) {
      const IntVect cc = coarsenIndex(IntVect(i, j, k), ratio);
      pf[fine.offset(i, j, k)] = pc[coarse.offset(cc[0], cc[1], cc[2])];
    });
  }
}

void prolongLinear(const FArrayBox& coarse, FArrayBox& fine,
                   const Box& fineRegion, int ratio) {
  assert(fine.box().contains(fineRegion));
  assert(fine.nComp() == coarse.nComp());
  const Real r = ratio;
  for (int c = 0; c < fine.nComp(); ++c) {
    const Real* pc = coarse.dataPtr(c);
    Real* pf = fine.dataPtr(c);
    forEachCell(fineRegion, [&](int i, int j, int k) {
      const IntVect cc = coarsenIndex(IntVect(i, j, k), ratio);
      const std::int64_t at = coarse.offset(cc[0], cc[1], cc[2]);
      Real value = pc[at];
      for (int d = 0; d < grid::SpaceDim; ++d) {
        const IntVect e = IntVect::basis(d);
        const Real slope =
            0.5 * (pc[coarse.offset(cc[0] + e[0], cc[1] + e[1],
                                    cc[2] + e[2])] -
                   pc[coarse.offset(cc[0] - e[0], cc[1] - e[1],
                                    cc[2] - e[2])]);
        // Offset of the fine cell center from the parent's center, in
        // coarse cell widths: (sub + 1/2)/r - 1/2.
        const int sub = IntVect(i, j, k)[d] - cc[d] * ratio;
        const Real xi = (sub + 0.5) / r - 0.5;
        value += slope * xi;
      }
      pf[fine.offset(i, j, k)] = value;
    });
  }
}

void restrictAverage(const FArrayBox& fine, FArrayBox& coarse,
                     const Box& coarseRegion, int ratio) {
  assert(coarse.box().contains(coarseRegion));
  assert(fine.nComp() == coarse.nComp());
  const Real inv = 1.0 / (Real(ratio) * ratio * ratio);
  for (int c = 0; c < fine.nComp(); ++c) {
    const Real* pf = fine.dataPtr(c);
    Real* pc = coarse.dataPtr(c);
    forEachCell(coarseRegion, [&](int i, int j, int k) {
      Real total = 0.0;
      for (int kk = 0; kk < ratio; ++kk) {
        for (int jj = 0; jj < ratio; ++jj) {
          for (int ii = 0; ii < ratio; ++ii) {
            total += pf[fine.offset(i * ratio + ii, j * ratio + jj,
                                    k * ratio + kk)];
          }
        }
      }
      pc[coarse.offset(i, j, k)] = total * inv;
    });
  }
}

} // namespace fluxdiv::amr
