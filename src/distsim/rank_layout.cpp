#include "distsim/rank_layout.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/partition.hpp"

namespace fluxdiv::distsim {

RankDecomposition::RankDecomposition(const grid::DisjointBoxLayout& layout,
                                     int nRanks)
    : nRanks_(nRanks) {
  if (nRanks < 1) {
    throw std::invalid_argument("RankDecomposition: nRanks must be >= 1");
  }
  const auto nBoxes = static_cast<std::int64_t>(layout.size());
  owner_.resize(layout.size());
  counts_.assign(static_cast<std::size_t>(nRanks), 0);
  for (int r = 0; r < nRanks; ++r) {
    const auto [begin, end] = sched::staticSlice(nBoxes, nRanks, r);
    for (std::int64_t b = begin; b < end; ++b) {
      owner_[static_cast<std::size_t>(b)] = r;
    }
    counts_[static_cast<std::size_t>(r)] = end - begin;
  }
}

std::int64_t RankDecomposition::imbalance() const {
  const auto [mn, mx] = std::minmax_element(counts_.begin(), counts_.end());
  return *mx - *mn;
}

} // namespace fluxdiv::distsim
