#include "distsim/comm_model.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace fluxdiv::distsim {

ExchangeCost analyzeExchange(const RankDecomposition& ranks,
                             const grid::Copier& copier, int ncomp,
                             const NetworkParams& net) {
  ExchangeCost cost;
  const auto n = static_cast<std::size_t>(ranks.nRanks());
  std::vector<std::int64_t> recvMessages(n, 0);
  std::vector<std::uint64_t> recvBytes(n, 0);
  std::map<std::pair<int, int>, RankPairCost> pairs;

  for (const grid::CopyOp& op : copier.ops()) {
    const int src = ranks.rankOf(op.srcBox);
    const int dst = ranks.rankOf(op.destBox);
    const std::int64_t cells = op.destRegion.numPts();
    if (src == dst) {
      cost.onRankCells += cells;
      continue;
    }
    cost.offRankCells += cells;
    const auto bytes =
        static_cast<std::uint64_t>(cells) * ncomp * sizeof(grid::Real);
    ++cost.messagesTotal;
    cost.bytesTotal += bytes;
    ++recvMessages[static_cast<std::size_t>(dst)];
    recvBytes[static_cast<std::size_t>(dst)] += bytes;
    RankPairCost& pc = pairs[{src, dst}];
    pc.srcRank = src;
    pc.dstRank = dst;
    ++pc.messages;
    pc.bytes += bytes;
  }
  cost.pairs.reserve(pairs.size());
  for (const auto& [key, pc] : pairs) {
    cost.pairs.push_back(pc);
  }

  double worst = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    cost.maxMessagesPerRank =
        std::max(cost.maxMessagesPerRank, recvMessages[r]);
    cost.maxBytesPerRank = std::max(cost.maxBytesPerRank, recvBytes[r]);
    const double t = double(recvMessages[r]) * net.latencySeconds +
                     double(recvBytes[r]) / net.bytesPerSecond;
    worst = std::max(worst, t);
  }
  cost.predictedSeconds = worst;
  return cost;
}

} // namespace fluxdiv::distsim
