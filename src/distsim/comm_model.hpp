#pragma once
// Alpha-beta communication-cost analysis of a ghost exchange under a
// simulated rank decomposition: how many messages and bytes cross rank
// boundaries per exchange, and the classic latency+bandwidth time
// prediction for the busiest rank. This reproduces, at simulated scale,
// the inter-node side of the paper's motivation: small boxes multiply
// both message count and ghost volume.

#include <cstdint>
#include <vector>

#include "distsim/rank_layout.hpp"
#include "grid/copier.hpp"

namespace fluxdiv::distsim {

/// Interconnect parameters for the alpha-beta model. Defaults are typical
/// of the Gemini/QDR-InfiniBand era of the paper's machines.
struct NetworkParams {
  double latencySeconds = 1.5e-6;          ///< per message (alpha)
  double bytesPerSecond = 5.0e9;           ///< per rank link (1/beta)
};

/// Traffic one ordered rank pair exchanges: the alpha-beta inputs at
/// their native granularity. analysis/commcheck re-derives these figures
/// independently from layout geometry and cross-validates them exactly.
struct RankPairCost {
  int srcRank = 0;
  int dstRank = 0;
  std::int64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Cost breakdown of one ghost exchange.
struct ExchangeCost {
  std::int64_t onRankCells = 0;   ///< ghost cells filled by local copy
  std::int64_t offRankCells = 0;  ///< ghost cells needing a message
  std::int64_t messagesTotal = 0; ///< one per cross-rank copy op
  std::int64_t maxMessagesPerRank = 0; ///< busiest receiver
  std::uint64_t bytesTotal = 0;        ///< off-rank bytes (all ranks)
  std::uint64_t maxBytesPerRank = 0;   ///< busiest receiver's bytes
  double predictedSeconds = 0.0; ///< alpha-beta time of the busiest rank
  /// Per ordered rank pair with traffic, sorted by (srcRank, dstRank).
  std::vector<RankPairCost> pairs;

  /// Fraction of all ghost cells that cross rank boundaries.
  [[nodiscard]] double offRankFraction() const {
    const double total = double(onRankCells) + double(offRankCells);
    return total == 0.0 ? 0.0 : double(offRankCells) / total;
  }
};

/// Analyze `copier`'s plan under `ranks` for `ncomp` components of Real
/// data. Each CopyOp whose source and destination boxes live on different
/// ranks counts as one message to the destination rank (the framework
/// aggregates per-box-pair regions into single sends, which the Copier's
/// op granularity models: up to 26 neighbors per box).
ExchangeCost analyzeExchange(const RankDecomposition& ranks,
                             const grid::Copier& copier, int ncomp,
                             const NetworkParams& net = {});

} // namespace fluxdiv::distsim
