#pragma once
// Simulated distributed decomposition: the paper's production context is
// "MPI everywhere — each core is assigned an MPI process [and] hundreds
// of boxes can be assigned to each process" (Sec. III-C), with the ghost
// exchange of Fig. 1 as the inter-node cost that motivates large boxes.
// No MPI exists in this environment, so this module *simulates* the rank
// structure: boxes are assigned to ranks, and the exchange plan is
// analyzed into on-rank copies vs off-rank messages (see comm_model.hpp).

#include <cstdint>
#include <vector>

#include "grid/layout.hpp"

namespace fluxdiv::distsim {

/// Assignment of a DisjointBoxLayout's boxes to `nRanks` simulated ranks.
/// Boxes are dealt in contiguous linear-index chunks (x-fastest box
/// order), the load-balanced default a Chombo-style framework uses for a
/// uniform level.
class RankDecomposition {
public:
  RankDecomposition(const grid::DisjointBoxLayout& layout, int nRanks);

  [[nodiscard]] int nRanks() const { return nRanks_; }

  /// Rank owning box `boxIdx`.
  [[nodiscard]] int rankOf(std::size_t boxIdx) const {
    return owner_[boxIdx];
  }

  /// Number of boxes owned by `rank`.
  [[nodiscard]] std::int64_t boxCount(int rank) const {
    return counts_[static_cast<std::size_t>(rank)];
  }

  /// Largest minus smallest per-rank box count (0 = perfectly balanced).
  [[nodiscard]] std::int64_t imbalance() const;

private:
  int nRanks_ = 1;
  std::vector<int> owner_;          ///< box -> rank
  std::vector<std::int64_t> counts_; ///< rank -> boxes
};

} // namespace fluxdiv::distsim
