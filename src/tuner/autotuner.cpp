#include "tuner/autotuner.hpp"

#include <algorithm>
#include <limits>

#include "harness/machine.hpp"
#include "harness/timer.hpp"
#include "memmodel/traffic_model.hpp"

namespace fluxdiv::tuner {

using grid::LevelData;

std::vector<TuneMeasurement> TuneResult::ranked() const {
  std::vector<TuneMeasurement> sorted = measurements;
  std::sort(sorted.begin(), sorted.end(),
            [](const TuneMeasurement& a, const TuneMeasurement& b) {
              if (a.pruned != b.pruned) {
                return !a.pruned;
              }
              return a.seconds < b.seconds;
            });
  return sorted;
}

TuneResult autotune(const LevelData& phi0, LevelData& phi1,
                    const TuneOptions& options) {
  const int boxSize = phi0.layout().boxSize()[0];
  std::size_t cacheBytes = options.cacheBytes;
  if (cacheBytes == 0) {
    cacheBytes = harness::lastLevelCacheBytes(harness::queryMachine());
    if (cacheBytes == 0) {
      cacheBytes = 8 * 1024 * 1024; // conservative fallback
    }
  }

  TuneResult result;
  double bestPrediction = std::numeric_limits<double>::infinity();
  for (const core::VariantConfig& cfg : core::enumerateVariants(boxSize)) {
    TuneMeasurement m;
    m.cfg = cfg;
    m.predictedBytesPerCell =
        memmodel::estimateTraffic(cfg, boxSize, cacheBytes).bytesPerCell;
    bestPrediction = std::min(bestPrediction, m.predictedBytesPerCell);
    result.measurements.push_back(m);
  }

  double bestSeconds = std::numeric_limits<double>::infinity();
  for (TuneMeasurement& m : result.measurements) {
    if (options.modelPruning &&
        m.predictedBytesPerCell >
            options.pruneFactor * bestPrediction) {
      m.pruned = true;
      ++result.prunedCount;
      continue;
    }
    core::FluxDivRunner runner(m.cfg, options.threads);
    double best = 0.0;
    for (int r = 0; r < options.reps + 1; ++r) { // r == 0 is warm-up
      for (std::size_t b = 0; b < phi1.size(); ++b) {
        phi1[b].setVal(0.0);
      }
      harness::Timer t;
      runner.run(phi0, phi1);
      const double s = t.seconds();
      if (r == 1 || (r > 1 && s < best)) {
        best = s;
      }
    }
    m.seconds = best;
    if (best < bestSeconds) {
      bestSeconds = best;
      result.best = m.cfg;
      result.bestSeconds = best;
    }
  }
  return result;
}

} // namespace fluxdiv::tuner
