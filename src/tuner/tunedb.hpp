#pragma once
// Persistent tuning database for the throughput service (docs/serving.md,
// "TuneDB"). Records the best-known (fuse mode, level policy) per
// (machine, scheme, box size, ghost depth, threads) so repeat traffic is
// admitted without re-tuning: a cold key is answered by a cost-model
// prior (analysis::analyzeStepFusion + analyzeLevelPolicies rank the
// candidates before anything is timed), a warm key by the measured record
// from a previous service run. Storage is a single self-describing JSON
// file; records carry the machine signature they were measured on, and a
// file written on a different machine contributes nothing but its
// existence — every lookup then falls back to the prior, which is exactly
// the cold-start behavior (measurements do not transfer across hosts; the
// model does).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/variant.hpp"

namespace fluxdiv::tuner {

/// Identity of the host a measurement is valid on. Coarse on purpose:
/// model string, core count, and LLC capacity are what the cost model
/// prices against, so entries transfer between nodes exactly when the
/// model would predict the same ranking anyway.
struct MachineSignature {
  std::string cpuModel;
  int logicalCores = 0;
  std::size_t llcBytes = 0;

  /// Probe the current host (harness::queryMachine()).
  static MachineSignature host();

  [[nodiscard]] bool operator==(const MachineSignature& o) const;
  [[nodiscard]] bool operator!=(const MachineSignature& o) const {
    return !(*this == o);
  }

  /// "model | N cores | M MiB LLC" for reports.
  [[nodiscard]] std::string str() const;
};

/// What the service knows about an instance at admission time — the DB
/// key (the machine signature is per-DB, not per-key).
struct TuneKey {
  std::string scheme; ///< solvers::schemeName (e.g. "rk4")
  int boxSize = 0;    ///< cubic box side
  int ghost = 0;      ///< ghost depth of the solution
  int threads = 0;    ///< pool workers the solve runs on

  [[nodiscard]] bool operator==(const TuneKey& o) const;
  [[nodiscard]] std::string str() const;
};

/// One tuned (or prior-ranked) schedule choice.
struct TuneEntry {
  TuneKey key;
  core::StepFuse fuse = core::StepFuse::Fused;
  core::LevelPolicy policy = core::LevelPolicy::BoxParallel;
  double seconds = 0.0;        ///< best measured per-step wall time;
                               ///< 0 while the entry is only a prior
  double priorCostBytes = 0.0; ///< cost-model price that seeded it
  bool measured = false;       ///< refined from a real service run?
  int refines = 0;             ///< measurements folded into the entry
};

/// Observable traffic counters, for service stats and the zero-re-tune
/// acceptance test.
struct TuneDBCounters {
  std::uint64_t hits = 0;    ///< suggest() answered by a measured entry
  std::uint64_t misses = 0;  ///< suggest() answered by a cost-model prior
  std::uint64_t seeds = 0;   ///< prior entries synthesized
  std::uint64_t refines = 0; ///< observe() calls folded in
  std::uint64_t rejected = 0; ///< records dropped at load() (foreign
                              ///< machine signature or unparsable)
};

/// Cost-model prior for a cold key: the rank-1 fuse mode of
/// analysis::analyzeStepFusion and the fastest-predicted level policy of
/// analysis::analyzeLevelPolicies, priced for `machine`. `nBoxes` is the
/// admission-time hint for the level size (the key deliberately omits it:
/// measurements are keyed by what dominates reuse — box size — while the
/// prior may still use the hint to price exchange volume). Throws
/// std::invalid_argument on an unknown scheme name.
TuneEntry costModelPrior(const TuneKey& key, int nBoxes,
                         const MachineSignature& machine);

/// The persistent database. Not thread-safe: the service consults it from
/// its single orchestrator thread.
class TuneDB {
public:
  /// `machine` defaults to the probed host; tests inject fake signatures
  /// to exercise the mismatch fallback.
  explicit TuneDB(MachineSignature machine = MachineSignature::host());

  /// Merge records from `path`. Returns false when the file is missing or
  /// unreadable (a cold cache, not an error). Records whose machine
  /// signature differs from this DB's are dropped and counted in
  /// counters().rejected — lookups for those keys fall back to the
  /// cost-model prior.
  bool load(const std::string& path);

  /// Write every measured record (priors are recomputable and are not
  /// persisted). Throws std::runtime_error when the file cannot be
  /// written.
  void save(const std::string& path) const;

  /// The measured record for `key`, or nullptr. Does not touch counters.
  [[nodiscard]] const TuneEntry* find(const TuneKey& key) const;

  /// Admission query: the measured record when one exists (a hit —
  /// repeat traffic never re-tunes), else a memoized cost-model prior (a
  /// miss — the service is expected to measure the solve it admits and
  /// observe() the result).
  const TuneEntry& suggest(const TuneKey& key, int nBoxes = 8);

  /// Fold one measured solve into the DB: a first measurement upgrades
  /// the prior in place; a repeat measurement keeps the faster of the
  /// (fuse, policy) choices and the best seconds seen for the kept
  /// choice.
  void observe(const TuneKey& key, core::StepFuse fuse,
               core::LevelPolicy policy, double seconds);

  [[nodiscard]] const MachineSignature& machine() const {
    return machine_;
  }
  [[nodiscard]] const TuneDBCounters& counters() const {
    return counters_;
  }
  /// Measured records (priors excluded).
  [[nodiscard]] std::size_t size() const;

private:
  TuneEntry* findMutable(const TuneKey& key, bool measuredOnly);

  MachineSignature machine_;
  std::vector<TuneEntry> entries_; ///< measured records and memoized
                                   ///< priors, discriminated by .measured
  TuneDBCounters counters_;
};

} // namespace fluxdiv::tuner
