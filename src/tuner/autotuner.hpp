#pragma once
// Empirical schedule auto-tuner — the paper's concluding direction
// (Sec. VII: "determine ways to automate the automatic implementation,
// selection, and tuning of such inter-loop program optimizations").
// Candidates come from the variant registry; an optional model-based
// pruning pass drops schedules whose predicted DRAM traffic is far above
// the best prediction before anything is timed.

#include <cstddef>
#include <vector>

#include "core/runner.hpp"
#include "core/variant.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::tuner {

/// Tuning knobs.
struct TuneOptions {
  int threads = 1;
  int reps = 3;            ///< timed repetitions per candidate (min kept)
  bool modelPruning = true;
  double pruneFactor = 3.0; ///< keep candidates within this x of the best
                            ///< predicted traffic
  std::size_t cacheBytes = 0; ///< LLC size for the model; 0 = probe host
};

/// One candidate's outcome.
struct TuneMeasurement {
  core::VariantConfig cfg;
  double seconds = 0.0;       ///< min over reps; 0 if pruned
  double predictedBytesPerCell = 0.0;
  bool pruned = false;
};

/// Tuning outcome: the winner plus the full measurement record.
struct TuneResult {
  core::VariantConfig best;
  double bestSeconds = 0.0;
  std::vector<TuneMeasurement> measurements;
  int prunedCount = 0;

  /// Measurements sorted fastest-first (pruned candidates last).
  [[nodiscard]] std::vector<TuneMeasurement> ranked() const;
};

/// Time the registry's variants on (phi0, phi1) and return the fastest.
/// phi0 must be initialized and exchanged; phi1 is clobbered.
TuneResult autotune(const grid::LevelData& phi0, grid::LevelData& phi1,
                    const TuneOptions& options = {});

} // namespace fluxdiv::tuner
