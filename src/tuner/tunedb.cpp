#include "tuner/tunedb.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/costmodel.hpp"
#include "harness/machine.hpp"
#include "solvers/integrator.hpp"

namespace fluxdiv::tuner {

// ---------------------------------------------------------------------------
// MachineSignature

MachineSignature MachineSignature::host() {
  const harness::MachineInfo info = harness::queryMachine();
  MachineSignature sig;
  sig.cpuModel = info.cpuModel;
  sig.logicalCores = info.logicalCores;
  sig.llcBytes = harness::lastLevelCacheBytes(info);
  return sig;
}

bool MachineSignature::operator==(const MachineSignature& o) const {
  return cpuModel == o.cpuModel && logicalCores == o.logicalCores &&
         llcBytes == o.llcBytes;
}

std::string MachineSignature::str() const {
  std::ostringstream os;
  os << (cpuModel.empty() ? "unknown cpu" : cpuModel) << " | "
     << logicalCores << " cores | "
     << static_cast<double>(llcBytes) / (1024.0 * 1024.0) << " MiB LLC";
  return os.str();
}

// ---------------------------------------------------------------------------
// TuneKey

bool TuneKey::operator==(const TuneKey& o) const {
  return scheme == o.scheme && boxSize == o.boxSize && ghost == o.ghost &&
         threads == o.threads;
}

std::string TuneKey::str() const {
  std::ostringstream os;
  os << scheme << "/n" << boxSize << "/g" << ghost << "/t" << threads;
  return os.str();
}

// ---------------------------------------------------------------------------
// Cost-model prior

TuneEntry costModelPrior(const TuneKey& key, int nBoxes,
                         const MachineSignature& machine) {
  solvers::Scheme scheme{};
  if (!solvers::parseScheme(key.scheme, scheme)) {
    throw std::invalid_argument("costModelPrior: unknown scheme '" +
                                key.scheme + "'");
  }
  TuneEntry entry;
  entry.key = key;

  // Fuse mode: the rank-1 row of the step-fusion price list.
  const std::vector<analysis::StepFusionCost> fusion =
      analysis::analyzeStepFusion(solvers::schemeRhsEvals(scheme),
                                  key.boxSize, std::max(1, nBoxes));
  for (const analysis::StepFusionCost& f : fusion) {
    if (f.rank == 1) {
      entry.fuse = f.fuse;
      entry.priorCostBytes = f.costBytes;
      break;
    }
  }

  // Level policy: the fastest predicted concurrency profile under the
  // machine's cache capacities.
  analysis::CacheSpec spec;
  if (machine.llcBytes > 0) {
    spec.llcBytes = machine.llcBytes;
  }
  const core::VariantConfig cfg =
      core::makeShiftFuse(core::ParallelGranularity::WithinBox);
  const std::vector<analysis::LevelPolicyCost> policies =
      analysis::analyzeLevelPolicies(cfg, key.boxSize, std::max(1, nBoxes),
                                     std::max(1, key.threads), spec);
  double bestSpeedup = 0.0;
  for (const analysis::LevelPolicyCost& p : policies) {
    if (p.predictedSpeedup > bestSpeedup) {
      bestSpeedup = p.predictedSpeedup;
      entry.policy = p.policy;
    }
  }
  return entry;
}

// ---------------------------------------------------------------------------
// JSON plumbing (hand-rolled: the schema is one flat machine object plus
// an array of flat records, and the repo takes no dependencies)

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    case '\r': out += "\\r"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  out += '"';
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal scanner over the fixed TuneDB schema. Values are returned as
/// raw text (strings unescaped); nesting beyond the known two levels is
/// rejected, which is fine for a file only save() produces.
struct Scanner {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r' || s[i] == ',')) {
      ++i;
    }
  }
  bool consume(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  bool parseString(std::string& out) {
    ws();
    if (i >= s.size() || s[i] != '"') {
      return false;
    }
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char e = s[i++];
        switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'u':
          // Only \u00XX escapes are ever written; decode the low byte.
          if (i + 4 <= s.size()) {
            c = static_cast<char>(
                std::strtol(s.substr(i + 2, 2).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: c = e;
        }
      }
      out += c;
    }
    if (i >= s.size()) {
      return false;
    }
    ++i; // closing quote
    return true;
  }
  bool parseScalar(std::string& out) {
    ws();
    if (peek('"')) {
      return parseString(out);
    }
    out.clear();
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
           s[i] != ' ' && s[i] != '\n' && s[i] != '\t' && s[i] != '\r') {
      out += s[i++];
    }
    return !out.empty();
  }
  /// { "key": scalar, ... } with no nesting.
  bool parseFlatObject(
      std::vector<std::pair<std::string, std::string>>& out) {
    if (!consume('{')) {
      return false;
    }
    out.clear();
    while (!peek('}')) {
      std::string key;
      std::string val;
      if (!parseString(key) || !consume(':') || !parseScalar(val)) {
        return false;
      }
      out.emplace_back(std::move(key), std::move(val));
    }
    return consume('}');
  }
  static const std::string* get(
      const std::vector<std::pair<std::string, std::string>>& kv,
      const char* key) {
    for (const auto& [k, v] : kv) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

bool toInt(const std::string& text, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool toDouble(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// One record object -> TuneEntry; false on any missing/invalid field.
bool parseRecord(const std::vector<std::pair<std::string, std::string>>& kv,
                 TuneEntry& e) {
  const std::string* scheme = Scanner::get(kv, "scheme");
  const std::string* boxSize = Scanner::get(kv, "boxSize");
  const std::string* ghost = Scanner::get(kv, "ghost");
  const std::string* threads = Scanner::get(kv, "threads");
  const std::string* fuse = Scanner::get(kv, "fuse");
  const std::string* policy = Scanner::get(kv, "policy");
  const std::string* seconds = Scanner::get(kv, "seconds");
  const std::string* prior = Scanner::get(kv, "priorCostBytes");
  const std::string* refines = Scanner::get(kv, "refines");
  if (scheme == nullptr || boxSize == nullptr || ghost == nullptr ||
      threads == nullptr || fuse == nullptr || policy == nullptr ||
      seconds == nullptr) {
    return false;
  }
  e = TuneEntry{};
  e.key.scheme = *scheme;
  if (!toInt(*boxSize, e.key.boxSize) || !toInt(*ghost, e.key.ghost) ||
      !toInt(*threads, e.key.threads) ||
      !toDouble(*seconds, e.seconds) ||
      !core::parseStepFuse(*fuse, e.fuse) ||
      !core::parseLevelPolicy(*policy, e.policy)) {
    return false;
  }
  if (prior != nullptr && !toDouble(*prior, e.priorCostBytes)) {
    return false;
  }
  if (refines != nullptr && !toInt(*refines, e.refines)) {
    return false;
  }
  e.measured = true;
  return true;
}

} // namespace

// ---------------------------------------------------------------------------
// TuneDB

TuneDB::TuneDB(MachineSignature machine) : machine_(std::move(machine)) {}

bool TuneDB::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Scanner sc{text};
  std::vector<std::pair<std::string, std::string>> kv;
  if (!sc.consume('{')) {
    return false;
  }
  MachineSignature fileSig;
  bool haveSig = false;
  std::vector<TuneEntry> loaded;
  std::uint64_t rejected = 0;
  while (!sc.peek('}')) {
    std::string section;
    if (!sc.parseString(section) || !sc.consume(':')) {
      return false;
    }
    if (section == "machine") {
      if (!sc.parseFlatObject(kv)) {
        return false;
      }
      const std::string* model = Scanner::get(kv, "cpuModel");
      const std::string* cores = Scanner::get(kv, "logicalCores");
      const std::string* llc = Scanner::get(kv, "llcBytes");
      double llcVal = 0.0;
      if (model == nullptr || cores == nullptr || llc == nullptr ||
          !toInt(*cores, fileSig.logicalCores) || !toDouble(*llc, llcVal)) {
        return false;
      }
      fileSig.cpuModel = *model;
      fileSig.llcBytes = static_cast<std::size_t>(llcVal);
      haveSig = true;
    } else if (section == "records") {
      if (!sc.consume('[')) {
        return false;
      }
      while (!sc.peek(']')) {
        TuneEntry e;
        if (!sc.parseFlatObject(kv)) {
          return false;
        }
        if (parseRecord(kv, e)) {
          loaded.push_back(std::move(e));
        } else {
          ++rejected;
        }
      }
      if (!sc.consume(']')) {
        return false;
      }
    } else {
      return false; // unknown section: not a TuneDB file
    }
  }

  counters_.rejected += rejected;
  if (!haveSig || fileSig != machine_) {
    // Foreign machine: measurements do not transfer; keep nothing and let
    // every lookup fall back to the cost-model prior.
    counters_.rejected += loaded.size();
    return true;
  }
  for (TuneEntry& e : loaded) {
    if (TuneEntry* mine = findMutable(e.key, false)) {
      *mine = std::move(e);
    } else {
      entries_.push_back(std::move(e));
    }
  }
  return true;
}

void TuneDB::save(const std::string& path) const {
  std::string out = "{\n  \"machine\": {\"cpuModel\": ";
  appendEscaped(out, machine_.cpuModel);
  out += ", \"logicalCores\": " + std::to_string(machine_.logicalCores);
  out += ", \"llcBytes\": " + std::to_string(machine_.llcBytes);
  out += "},\n  \"records\": [";
  bool first = true;
  for (const TuneEntry& e : entries_) {
    if (!e.measured) {
      continue; // priors are recomputable; persist only measurements
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"scheme\": ";
    appendEscaped(out, e.key.scheme);
    out += ", \"boxSize\": " + std::to_string(e.key.boxSize);
    out += ", \"ghost\": " + std::to_string(e.key.ghost);
    out += ", \"threads\": " + std::to_string(e.key.threads);
    out += ", \"fuse\": ";
    appendEscaped(out, core::stepFuseName(e.fuse));
    out += ", \"policy\": ";
    appendEscaped(out, core::levelPolicyName(e.policy));
    out += ", \"seconds\": " + formatDouble(e.seconds);
    out += ", \"priorCostBytes\": " + formatDouble(e.priorCostBytes);
    out += ", \"refines\": " + std::to_string(e.refines);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream f(path, std::ios::trunc);
  if (!f || !(f << out) || !f.flush()) {
    throw std::runtime_error("TuneDB::save: cannot write " + path);
  }
}

TuneEntry* TuneDB::findMutable(const TuneKey& key, bool measuredOnly) {
  for (TuneEntry& e : entries_) {
    if (e.key == key && (!measuredOnly || e.measured)) {
      return &e;
    }
  }
  return nullptr;
}

const TuneEntry* TuneDB::find(const TuneKey& key) const {
  for (const TuneEntry& e : entries_) {
    if (e.key == key && e.measured) {
      return &e;
    }
  }
  return nullptr;
}

const TuneEntry& TuneDB::suggest(const TuneKey& key, int nBoxes) {
  if (const TuneEntry* hit = findMutable(key, true)) {
    ++counters_.hits;
    return *hit;
  }
  ++counters_.misses;
  if (const TuneEntry* prior = findMutable(key, false)) {
    return *prior; // already-seeded prior; still a miss (not measured)
  }
  ++counters_.seeds;
  entries_.push_back(costModelPrior(key, nBoxes, machine_));
  return entries_.back();
}

void TuneDB::observe(const TuneKey& key, core::StepFuse fuse,
                     core::LevelPolicy policy, double seconds) {
  ++counters_.refines;
  TuneEntry* e = findMutable(key, false);
  if (e == nullptr) {
    entries_.push_back(TuneEntry{});
    e = &entries_.back();
    e->key = key;
  }
  if (!e->measured) {
    e->fuse = fuse;
    e->policy = policy;
    e->seconds = seconds;
    e->measured = true;
    e->refines = 1;
    return;
  }
  ++e->refines;
  if (fuse == e->fuse && policy == e->policy) {
    e->seconds = std::min(e->seconds, seconds);
  } else if (seconds < e->seconds) {
    e->fuse = fuse;
    e->policy = policy;
    e->seconds = seconds;
  }
}

std::size_t TuneDB::size() const {
  std::size_t n = 0;
  for (const TuneEntry& e : entries_) {
    n += e.measured ? 1 : 0;
  }
  return n;
}

} // namespace fluxdiv::tuner
