#pragma once
// Deterministic initialization of the exemplar solution. The value of each
// (cell, component) is a smooth function of the *global* cell coordinates,
// so two LevelData objects on different box decompositions of the same
// domain hold identical global fields — the property the cross-box-size
// equivalence tests and the equal-work benchmarks rely on.

#include "grid/leveldata.hpp"

namespace fluxdiv::kernels {

/// Smooth, strictly positive value for global cell (i,j,k), component c,
/// on a domain of extent (nx,ny,nz) cells. Periodic in every direction.
grid::Real exemplarValue(int i, int j, int k, int c, const grid::Box& domain);

/// Fill the valid region of every box of `phi` with exemplarValue and then
/// exchange() so ghost cells are consistent.
void initializeExemplar(grid::LevelData& phi);

/// Fill valid + ghost cells of a single standalone FArrayBox directly from
/// exemplarValue (for single-box tests that bypass LevelData).
void initializeExemplar(grid::FArrayBox& fab, const grid::Box& domain);

} // namespace fluxdiv::kernels
