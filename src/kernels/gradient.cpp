#include "kernels/gradient.hpp"

#include <cassert>

#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::FArrayBox;

void gradient(const FArrayBox& phi, FArrayBox& grad, const Box& valid,
              int srcComp, Real invDx) {
  assert(phi.box().contains(valid.grow(kNumGhost)));
  assert(grad.box().contains(valid));
  assert(grad.nComp() >= grid::SpaceDim);
  const std::int64_t stride[3] = {1, phi.strideY(), phi.strideZ()};
  const Real* p = phi.dataPtr(srcComp);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    Real* out = grad.dataPtr(d);
    const std::int64_t s = stride[d];
    const int nx = valid.size(0);
    for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
      for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
        const Real* prow = p + phi.offset(valid.lo(0), j, k);
        Real* orow = out + grad.offset(valid.lo(0), j, k);
        for (int i = 0; i < nx; ++i) {
          orow[i] = centralDeriv4(prow + i, s, invDx);
        }
      }
    }
  }
}

void aosGradient(const AosFab& phi, AosFab& grad, const Box& valid,
                 int srcComp, Real invDx) {
  assert(phi.box().contains(valid.grow(kNumGhost)));
  assert(grad.box().contains(valid));
  assert(grad.nComp() >= grid::SpaceDim);
  const std::int64_t stride[3] = {phi.strideX(), phi.strideY(),
                                  phi.strideZ()};
  const Real* base = phi.data();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const std::int64_t s = stride[d];
    forEachCell(valid, [&](int i, int j, int k) {
      grad(i, j, k, d) =
          centralDeriv4(base + phi.index(i, j, k, srcComp), s, invDx);
    });
  }
}

} // namespace fluxdiv::kernels
