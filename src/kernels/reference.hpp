#pragma once
// Obviously-correct reference implementation of the exemplar: for every
// cell and component it recomputes both face fluxes of every direction
// directly from phi0 with no temporaries and no schedule cleverness. Slow,
// but the ground truth every variant is verified against.

#include "grid/farraybox.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::kernels {

/// phi1(cell,c) += scale * sum_d (flux_d(cell+e^d, c) - flux_d(cell, c))
/// over `validBox`; phi0 must have kNumGhost valid ghost layers around it.
void referenceFluxDiv(const grid::FArrayBox& phi0, grid::FArrayBox& phi1,
                      const grid::Box& validBox, grid::Real scale = 1.0);

/// Level-wide reference: applies referenceFluxDiv box by box (serial).
/// phi0's ghosts must already be exchanged.
void referenceFluxDiv(const grid::LevelData& phi0, grid::LevelData& phi1,
                      grid::Real scale = 1.0);

/// Same arithmetic as referenceFluxDiv but written with the checked
/// per-element accessor (fab(i,j,k,c)) instead of cached pointer offsets
/// — the "naive C++" style whose cost Sec. III-C's implementation note is
/// about ("we can reproduce the [Fortran] performance in C++ by caching
/// pointer offsets ... and using these offsets along with pointer
/// arithmetic"). Used by the indexing-ablation benchmark.
void referenceFluxDivNaive(const grid::FArrayBox& phi0,
                           grid::FArrayBox& phi1, const grid::Box& validBox,
                           grid::Real scale = 1.0);

} // namespace fluxdiv::kernels
