#include "kernels/reference.hpp"

#include <cassert>

#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::LevelData;
using grid::Real;

void referenceFluxDiv(const FArrayBox& phi0, FArrayBox& phi1,
                      const Box& validBox, Real scale) {
  assert(phi0.box().contains(validBox.grow(kNumGhost)));
  assert(phi1.box().contains(validBox));
  assert(phi0.nComp() == kNumComp && phi1.nComp() == kNumComp);

  const std::int64_t stride[3] = {1, phi0.strideY(), phi0.strideZ()};
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const std::int64_t s = stride[d];
    for (int c = 0; c < kNumComp; ++c) {
      const Real* pc = phi0.dataPtr(c);
      const Real* pv = phi0.dataPtr(velocityComp(d));
      Real* out = phi1.dataPtr(c);
      forEachCell(validBox, [&](int i, int j, int k) {
        const std::int64_t at = phi0.offset(i, j, k);
        // Low face of this cell has face index == cell index; its
        // high-side cell is this cell. High face's high-side cell is the
        // +d neighbor.
        const Real fluxLo = faceFlux(pc + at, pv + at, s);
        const Real fluxHi = faceFlux(pc + at + s, pv + at + s, s);
        out[phi1.offset(i, j, k)] += scale * (fluxHi - fluxLo);
      });
    }
  }
}

void referenceFluxDivNaive(const FArrayBox& phi0, FArrayBox& phi1,
                           const Box& validBox, Real scale) {
  assert(phi0.box().contains(validBox.grow(kNumGhost)));
  assert(phi0.nComp() == kNumComp && phi1.nComp() == kNumComp);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const IntVect e = IntVect::basis(d);
    const int vd = velocityComp(d);
    // Per-face 4-point average via the checked accessor; every access
    // recomputes the full (i,j,k) -> offset arithmetic.
    auto facePhi = [&](int c, const IntVect& cellAtFace) {
      const IntVect p = cellAtFace;
      return (7.0 / 12.0) *
                 (phi0(p - e, c) + phi0(p, c)) -
             (1.0 / 12.0) * (phi0(p + e, c) + phi0(p - e * 2, c));
    };
    for (int c = 0; c < kNumComp; ++c) {
      forEachCell(validBox, [&](int i, int j, int k) {
        const IntVect cell(i, j, k);
        const Real fluxLo =
            evalFlux2(facePhi(c, cell), facePhi(vd, cell));
        const Real fluxHi =
            evalFlux2(facePhi(c, cell + e), facePhi(vd, cell + e));
        phi1(cell, c) += scale * (fluxHi - fluxLo);
      });
    }
  }
}

void referenceFluxDiv(const LevelData& phi0, LevelData& phi1, Real scale) {
  assert(phi0.size() == phi1.size());
  for (std::size_t b = 0; b < phi0.size(); ++b) {
    referenceFluxDiv(phi0[b], phi1[b], phi0.validBox(b), scale);
  }
}

} // namespace fluxdiv::kernels
