#include "kernels/pencil.hpp"

namespace fluxdiv::kernels::pencil {

PencilConfig pencilConfig() {
  return PencilConfig{
      grid::kSimdDoubles,
      grid::kFabAlignment,
#if defined(_OPENMP)
      true,
#else
      false,
#endif
  };
}

} // namespace fluxdiv::kernels::pencil
