#include "kernels/layout.hpp"

#include <cassert>

namespace fluxdiv::kernels {

void AosFab::define(const Box& box, int ncomp) {
  assert(!box.empty() && ncomp > 0);
  box_ = box;
  ncomp_ = ncomp;
  sy_ = static_cast<std::int64_t>(ncomp) * box.size(0);
  sz_ = sy_ * box.size(1);
  data_.assign(static_cast<std::size_t>(sz_) * box.size(2), 0.0);
}

void packAos(const FArrayBox& src, AosFab& dst, const Box& region) {
  assert(src.box().contains(region) && dst.box().contains(region));
  assert(src.nComp() == dst.nComp());
  const int nc = src.nComp();
  for (int c = 0; c < nc; ++c) {
    const Real* p = src.dataPtr(c);
    forEachCell(region, [&](int i, int j, int k) {
      dst(i, j, k, c) = p[src.offset(i, j, k)];
    });
  }
}

void unpackAos(const AosFab& src, FArrayBox& dst, const Box& region) {
  assert(dst.box().contains(region) && src.box().contains(region));
  assert(src.nComp() == dst.nComp());
  const int nc = dst.nComp();
  for (int c = 0; c < nc; ++c) {
    Real* p = dst.dataPtr(c);
    forEachCell(region, [&](int i, int j, int k) {
      p[dst.offset(i, j, k)] = src(i, j, k, c);
    });
  }
}

void aosFluxDiv(const AosFab& phi0, AosFab& phi1, const Box& valid,
                Real scale) {
  assert(phi0.box().contains(valid.grow(kNumGhost)));
  assert(phi1.box().contains(valid));
  assert(phi0.nComp() == kNumComp && phi1.nComp() == kNumComp);

  const std::int64_t stride[3] = {phi0.strideX(), phi0.strideY(),
                                  phi0.strideZ()};
  const Real* in = phi0.data();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const std::int64_t s = stride[d];
    const int vd = velocityComp(d);
    forEachCell(valid, [&](int i, int j, int k) {
      // Interleaved layout: the velocity component sits `vd - c` elements
      // from component c of the same cell — adjacent in memory, which is
      // exactly the layout advantage Sec. III-C describes.
      const std::int64_t cell = phi0.index(i, j, k, 0);
      const Real* pv = in + cell + vd;
      for (int c = 0; c < kNumComp; ++c) {
        const Real* pc = in + cell + c;
        const Real fluxLo = faceFlux(pc, pv, s);
        const Real fluxHi = faceFlux(pc + s, pv + s, s);
        phi1(i, j, k, c) += scale * (fluxHi - fluxLo);
      }
    });
  }
}

} // namespace fluxdiv::kernels
