#include "kernels/laplacian.hpp"

#include <cassert>

#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::FArrayBox;
using grid::LevelData;

void addLaplacian(const FArrayBox& phi, FArrayBox& out, const Box& valid,
                  grid::Real scale) {
  assert(phi.box().contains(valid.grow(1)));
  assert(out.box().contains(valid));
  assert(phi.nComp() == out.nComp());
  const std::int64_t sy = phi.strideY();
  const std::int64_t sz = phi.strideZ();
  const int nx = valid.size(0);
  for (int c = 0; c < phi.nComp(); ++c) {
    const Real* p = phi.dataPtr(c);
    Real* o = out.dataPtr(c);
    for (int k = valid.lo(2); k <= valid.hi(2); ++k) {
      for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
        const Real* prow = p + phi.offset(valid.lo(0), j, k);
        Real* orow = o + out.offset(valid.lo(0), j, k);
        for (int i = 0; i < nx; ++i) {
          orow[i] += scale * (prow[i - 1] + prow[i + 1] + prow[i - sy] +
                              prow[i + sy] + prow[i - sz] + prow[i + sz] -
                              6.0 * prow[i]);
        }
      }
    }
  }
}

void addLaplacian(const LevelData& phi, LevelData& out, grid::Real scale) {
  assert(phi.size() == out.size());
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < phi.size(); ++b) {
    addLaplacian(phi[b], out[b], phi.validBox(b), scale);
  }
}

} // namespace fluxdiv::kernels
