#pragma once
// Cell-centered 4th-order gradient — the other stencil shape in a CFD
// step. Paper Sec. III-C: the [x,y,z,c] layout "works well for gradient
// calculations" (one component in, independent output per direction, no
// cross-component reads) while being awkward for the flux kernel; this
// operator plus its AoS twin makes that contrast measurable
// (bench_layout_ablation / bench_kernels_micro).

#include "grid/farraybox.hpp"
#include "kernels/layout.hpp"

namespace fluxdiv::kernels {

/// 4th-order central first derivative along a unit-`stride` column:
/// (8 (f_{+1} - f_{-1}) - (f_{+2} - f_{-2})) / 12, times invDx.
/// Exact for cubics; needs 2 ghost cells.
inline Real centralDeriv4(const Real* cell, std::int64_t stride,
                          Real invDx) {
  constexpr Real c8over12 = 8.0 / 12.0;
  constexpr Real c1over12 = 1.0 / 12.0;
  return (c8over12 * (cell[stride] - cell[-stride]) -
          c1over12 * (cell[2 * stride] - cell[-2 * stride])) *
         invDx;
}

/// grad(comp `srcComp` of phi) over `valid`: writes d/dx, d/dy, d/dz into
/// components 0..2 of `grad`. phi must cover valid.grow(kNumGhost).
void gradient(const grid::FArrayBox& phi, grid::FArrayBox& grad,
              const grid::Box& valid, int srcComp, Real invDx = 1.0);

/// The same gradient evaluated on interleaved (AoS) data — strided
/// component access, the layout's weak side for this operator.
void aosGradient(const AosFab& phi, AosFab& grad, const grid::Box& valid,
                 int srcComp, Real invDx = 1.0);

} // namespace fluxdiv::kernels
