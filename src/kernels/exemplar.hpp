#pragma once
// The CFD flux-kernel exemplar of paper Sec. III: per-direction evaluation
// of face-averaged solution values (EvalFlux1, Eq. 6), face fluxes
// (EvalFlux2, Eq. 7), and accumulation of the flux difference into the
// cells. These inline functions are the single definition of the arithmetic
// shared by every schedule variant and by the reference kernel, so all
// schedules compute literally the same expressions.

#include <cstdint>

#include "grid/real.hpp"

namespace fluxdiv::kernels {

using grid::Real;

/// Number of solution components: <rho, u, v, w, e> (paper Eq. 5).
inline constexpr int kNumComp = 5;

/// Ghost layers required by the 4-point face average (Eq. 6): face f reads
/// cells f-2 .. f+1, so faces on the box boundary reach 2 cells outside.
inline constexpr int kNumGhost = 2;

/// Component holding the velocity normal to faces in direction d
/// (u, v, w for d = 0, 1, 2) — Eq. 7's phi_{d+1}.
constexpr int velocityComp(int dir) { return dir + 1; }

/// EvalFlux1 (Eq. 6): 4th-order average of a cell field on the face between
/// cells f-1 and f. `cellAtFace` points at cell f (the high-side cell of
/// the face) within a unit-`stride` column of cells.
///   <phi>_{f-1/2} = 7/12 (phi_{f-1} + phi_f) - 1/12 (phi_{f+1} + phi_{f-2})
inline Real evalFlux1(const Real* cellAtFace, std::int64_t stride) {
  constexpr Real c7over12 = 7.0 / 12.0;
  constexpr Real c1over12 = 1.0 / 12.0;
  return c7over12 * (cellAtFace[-stride] + cellAtFace[0]) -
         c1over12 * (cellAtFace[stride] + cellAtFace[-2 * stride]);
}

/// EvalFlux2 (Eq. 7): flux through a face is the face-averaged advected
/// quantity times the face-averaged normal velocity (Delta-x absorbed).
inline Real evalFlux2(Real facePhi, Real faceVelocity) {
  return facePhi * faceVelocity;
}

/// Flux of component c through the face whose high-side cell is pointed to
/// by `cellC` (component c column) and `cellV` (normal-velocity component
/// column), both with the same `stride`. This is the recomputation unit of
/// the overlapped-tile variants: one call = one (face, component) flux.
inline Real faceFlux(const Real* cellC, const Real* cellV,
                     std::int64_t stride) {
  return evalFlux2(evalFlux1(cellC, stride), evalFlux1(cellV, stride));
}

} // namespace fluxdiv::kernels
