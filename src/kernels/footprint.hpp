#pragma once
// Declared read/write footprints of the exemplar's pipeline stages
// (EvalFlux1, EvalFlux2, flux-difference, and the fused per-cell
// iteration). These are the machine-checkable contract between the
// arithmetic in exemplar.hpp / exec_fused.hpp and the schedule executors:
// the analysis layer (src/analysis) proves every VariantConfig legal purely
// from these boxes, so a stencil change here re-verifies every schedule.
//
// Footprints are *offset boxes*: the set of relative indices a stage reads
// from its input field (or writes to its output field) per produced index.
// The concrete region a stage touches is outputRegion "grown" by the
// offsets (Minkowski sum; see readRegion()).

#include <array>

#include "grid/box.hpp"
#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::IntVect;

/// The pipeline stages whose footprints the schedules must respect.
enum class Stage {
  EvalFlux1,      ///< Eq. 6: cell field -> face average (per direction)
  EvalFlux2,      ///< Eq. 7: face average x face velocity -> face flux
  FluxDifference, ///< cell += scale * (hi-face flux - lo-face flux)
  FusedCell,      ///< one shifted+fused iteration (all faces of one cell)
};

/// Every Stage, for contract sweeps (kernelcheck, tools).
inline constexpr std::array<Stage, 4> kStages = {
    Stage::EvalFlux1, Stage::EvalFlux2, Stage::FluxDifference,
    Stage::FusedCell};

/// Canonical stage name, shared by the schedule lowering's stage labels,
/// kernelcheck diagnostics, and the advisor's cost notes — the one
/// spelling every grep and witness comparison keys on.
constexpr const char* stageName(Stage stage) {
  switch (stage) {
  case Stage::EvalFlux1:
    return "EvalFlux1";
  case Stage::EvalFlux2:
    return "EvalFlux2";
  case Stage::FluxDifference:
    return "FluxDifference";
  case Stage::FusedCell:
    return "FusedCell";
  }
  return "?";
}

/// The pointwise footprint: a stage that touches exactly the produced
/// index (EvalFlux2's reads, and every stage's writes).
inline constexpr Box kPointwiseOffsets{IntVect::zero(), IntVect::zero()};

/// Offsets of the *cells* read by EvalFlux1 relative to the produced face
/// index in direction d: face f reads cells f-2 .. f+1 (Eq. 6).
constexpr Box evalFlux1ReadOffsets(int d) {
  return {IntVect::basis(d) * -2, IntVect::basis(d)};
}

/// Offsets of the *faces* read by the flux-difference accumulation relative
/// to the updated cell in direction d: cell i reads faces i and i+1.
constexpr Box fluxDifferenceReadOffsets(int d) {
  return {IntVect::zero(), IntVect::basis(d)};
}

/// Offsets of the cells read by one fused iteration from the solution
/// field, restricted to direction d: computing both the low and high face
/// of the cell reaches cells -2 .. +2 along d.
constexpr Box fusedCellReadOffsets(int d) {
  return {IntVect::basis(d) * -2, IntVect::basis(d) * 2};
}

/// Read offsets of `stage` on its primary input field in direction d.
/// EvalFlux2 is pointwise (reads the face average and face velocity at the
/// produced face only).
constexpr Box readOffsets(Stage stage, int d) {
  switch (stage) {
  case Stage::EvalFlux1:
    return evalFlux1ReadOffsets(d);
  case Stage::EvalFlux2:
    return kPointwiseOffsets;
  case Stage::FluxDifference:
    return fluxDifferenceReadOffsets(d);
  case Stage::FusedCell:
    return fusedCellReadOffsets(d);
  }
  return kPointwiseOffsets;
}

/// Write offsets of `stage` in direction d, declared symmetrically with
/// readOffsets: each stage writes exactly the produced index (no stage
/// scatters, in any direction). kernelcheck proves this against the code.
constexpr Box writeOffsets(Stage stage, int d) {
  (void)stage;
  (void)d;
  return kPointwiseOffsets;
}

/// The concrete region of the input field read when `stage` produces every
/// index of `outputRegion` (Minkowski sum of the region with the offsets).
constexpr Box readRegion(Stage stage, int d, const Box& outputRegion) {
  if (outputRegion.empty()) {
    return outputRegion; // nothing produced, nothing read
  }
  const Box off = readOffsets(stage, d);
  return {outputRegion.lo() + off.lo(), outputRegion.hi() + off.hi()};
}

/// The concrete region written when `stage` produces every index of
/// `outputRegion` (today always outputRegion itself; spelled via the
/// declared write offsets so the symmetry is machine-checkable).
constexpr Box writeRegion(Stage stage, int d, const Box& outputRegion) {
  if (outputRegion.empty()) {
    return outputRegion;
  }
  const Box off = writeOffsets(stage, d);
  return {outputRegion.lo() + off.lo(), outputRegion.hi() + off.hi()};
}

/// Minkowski sum of two offset boxes: the composed footprint of a stage
/// consuming another stage's output.
constexpr Box composeOffsets(const Box& outer, const Box& inner) {
  return {outer.lo() + inner.lo(), outer.hi() + inner.hi()};
}

// The fused iteration's declared footprint is not independent: it must be
// exactly the flux-difference offsets composed with the face-average
// offsets (the fused sweep inlines EvalFlux1/2 behind FluxDifference).
// Checked per direction so a future edit to any one of the three boxes
// re-proves the composition.
static_assert(
    composeOffsets(fluxDifferenceReadOffsets(0), evalFlux1ReadOffsets(0)) ==
        fusedCellReadOffsets(0) &&
    composeOffsets(fluxDifferenceReadOffsets(1), evalFlux1ReadOffsets(1)) ==
        fusedCellReadOffsets(1) &&
    composeOffsets(fluxDifferenceReadOffsets(2), evalFlux1ReadOffsets(2)) ==
        fusedCellReadOffsets(2),
    "FluxDifference o EvalFlux1 must equal the declared fused footprint");

/// Loop-carried dependence vectors of the fused sweep: cell u consumes the
/// shared-face flux deposited by cell u - e_d for every direction (via the
/// carry slots of exec_fused.hpp), so the flow dependences are exactly the
/// three unit vectors. Any wavefront/tile skew must strictly dominate this
/// cone (skew . dep >= 1) for concurrent execution to be legal.
constexpr std::array<IntVect, 3> fusedCarryDeps() {
  return {IntVect::basis(0), IntVect::basis(1), IntVect::basis(2)};
}

/// Ghost depth the pipeline needs on the solution field: the deepest read
/// of any stage producing boundary faces. Faces on the box boundary
/// (faceBox extends one past the cells) read evalFlux1ReadOffsets deep:
/// lo face reads 2 cells below, hi face (at cells.hi + 1) reads 1 cell
/// above it = cells.hi + 2. Must equal kNumGhost (statically checked).
constexpr int requiredGhost() {
  const Box off = evalFlux1ReadOffsets(0);
  const int below = -off.lo(0);       // cells below the low face
  const int above = off.hi(0) + 1;    // cells above the high face (+1 for
                                      // the face offset itself)
  return below > above ? below : above;
}

static_assert(requiredGhost() == kNumGhost,
              "declared stencil footprint disagrees with kNumGhost");

} // namespace fluxdiv::kernels
