#include "kernels/init.hpp"

#include <cmath>

#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::FArrayBox;
using grid::LevelData;
using grid::Real;

Real exemplarValue(int i, int j, int k, int c, const Box& domain) {
  constexpr Real kTwoPi = 6.283185307179586476925286766559;
  const Real x = kTwoPi * (i - domain.lo(0)) / domain.size(0);
  const Real y = kTwoPi * (j - domain.lo(1)) / domain.size(1);
  const Real z = kTwoPi * (k - domain.lo(2)) / domain.size(2);
  // Strictly positive, smooth, periodic, and distinct per component. The
  // magnitudes keep velocities O(0.1) so the advection example is stable.
  return 1.0 + 0.10 * std::sin(x + 0.5 * c) * std::cos(y - 0.3 * c) +
         0.05 * std::sin(z + 0.7 * c) * std::cos(x + 0.2 * c);
}

void initializeExemplar(LevelData& phi) {
  const Box domain = phi.layout().domain().box();
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < phi.size(); ++b) {
    FArrayBox& fab = phi[b];
    const Box valid = phi.validBox(b);
    for (int c = 0; c < fab.nComp(); ++c) {
      Real* p = fab.dataPtr(c);
      forEachCell(valid, [&](int i, int j, int k) {
        p[fab.offset(i, j, k)] = exemplarValue(i, j, k, c, domain);
      });
    }
  }
  phi.exchange();
}

void initializeExemplar(FArrayBox& fab, const Box& domain) {
  for (int c = 0; c < fab.nComp(); ++c) {
    Real* p = fab.dataPtr(c);
    forEachCell(fab.box(), [&](int i, int j, int k) {
      // Ghost cells take the periodic image's value, exactly what a
      // LevelData exchange would deliver.
      auto wrap = [](int v, int lo, int n) {
        return lo + (((v - lo) % n) + n) % n;
      };
      p[fab.offset(i, j, k)] =
          exemplarValue(wrap(i, domain.lo(0), domain.size(0)),
                        wrap(j, domain.lo(1), domain.size(1)),
                        wrap(k, domain.lo(2), domain.size(2)), c, domain);
    });
  }
}

} // namespace fluxdiv::kernels
