#pragma once
// 7-point Laplacian — the artificial-dissipation / stabilization stencil
// CFD steps add to the flux divergence (the "non-linear stabilization
// mechanisms" the paper cites as one reason ghost layers exist at all,
// Sec. I). Used by solvers::FluxDivRhs's optional dissipation term.

#include "grid/farraybox.hpp"
#include "grid/leveldata.hpp"

namespace fluxdiv::kernels {

/// out[c] += scale * Lap(phi[c]) over `valid` for every component, with
/// Lap the standard 2nd-order 7-point stencil times invDx^2 (folded into
/// `scale`). phi needs >= 1 ghost layer.
void addLaplacian(const grid::FArrayBox& phi, grid::FArrayBox& out,
                  const grid::Box& valid, grid::Real scale);

/// Level-wide: out[b] += scale * Lap(phi[b]) on every box (OpenMP over
/// boxes). phi's ghosts must be exchanged.
void addLaplacian(const grid::LevelData& phi, grid::LevelData& out,
                  grid::Real scale);

} // namespace fluxdiv::kernels
