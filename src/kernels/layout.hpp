#pragma once
// Data-layout ablation (paper Sec. III-C): Chombo's layout is [x,y,z,c]
// (components far apart), which "works well for gradient calculations
// [but] for the flux kernels ... is somewhat disadvantageous because the
// components of velocity are required to compute each component of flux,
// and the individual components in a cell are very far apart in memory.
// The data layout cannot be changed unless one wishes to repack all the
// cell data for some segment of code." This module makes that musing
// testable: an interleaved (AoS, [c,x,y,z]) mirror of a region, the
// repack both ways, and a flux-divergence evaluation over the AoS data,
// so the repack-and-compute option can be benchmarked against computing
// in place (bench_layout_ablation).

#include <vector>

#include "grid/farraybox.hpp"
#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::Real;

/// Component-interleaved array over a Box: storage index
/// c + C*(x + nx*(y + ny*z)); the components of one cell are adjacent.
class AosFab {
public:
  AosFab() = default;
  AosFab(const Box& box, int ncomp) { define(box, ncomp); }

  void define(const Box& box, int ncomp);

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] int nComp() const { return ncomp_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Element stride between the same component of x-adjacent cells.
  [[nodiscard]] std::int64_t strideX() const { return ncomp_; }
  [[nodiscard]] std::int64_t strideY() const { return sy_; }
  [[nodiscard]] std::int64_t strideZ() const { return sz_; }

  /// Linear index of (i,j,k,c).
  [[nodiscard]] std::int64_t index(int i, int j, int k, int c) const {
    return c + ncomp_ * (i - box_.lo(0)) +
           sy_ * static_cast<std::int64_t>(j - box_.lo(1)) +
           sz_ * static_cast<std::int64_t>(k - box_.lo(2));
  }

  Real& operator()(int i, int j, int k, int c) {
    return data_[static_cast<std::size_t>(index(i, j, k, c))];
  }
  Real operator()(int i, int j, int k, int c) const {
    return data_[static_cast<std::size_t>(index(i, j, k, c))];
  }

  [[nodiscard]] Real* data() { return data_.data(); }
  [[nodiscard]] const Real* data() const { return data_.data(); }

private:
  Box box_;
  int ncomp_ = 0;
  std::int64_t sy_ = 0;
  std::int64_t sz_ = 0;
  std::vector<Real> data_;
};

/// Repack `region` of a component-major FArrayBox into the interleaved
/// mirror (the "repack all the cell data for some segment of code" cost).
void packAos(const FArrayBox& src, AosFab& dst, const Box& region);

/// Scatter the interleaved data back into the component-major layout.
void unpackAos(const AosFab& src, FArrayBox& dst, const Box& region);

/// Flux-divergence accumulation evaluated entirely on interleaved data:
/// phi1(cell,c) += scale * sum_d (flux_d hi - flux_d lo). phi0 must cover
/// valid.grow(kNumGhost). Matches the reference kernel's results exactly.
void aosFluxDiv(const AosFab& phi0, AosFab& phi1, const Box& valid,
                Real scale = 1.0);

} // namespace fluxdiv::kernels
