#pragma once
// Vectorized whole-pencil kernels over the exemplar arithmetic
// (kernels/exemplar.hpp). A "pencil" is one unit-stride x-row of faces or
// cells; every kernel here walks a pencil with a `#pragma omp simd` inner
// loop over restrict-qualified pointers, so the compiler vectorizes
// without runtime alias versioning. The strided y/z stencil directions
// need no separate implementation: a y- or z-face stencil read from a
// pencil is still unit-stride in i — only the fixed `stride` offsets
// (+-sy, +-sz) differ — so one kernel covers all three directions.
//
// Numerical contract: each kernel performs literally the per-element
// expressions of the scalar exemplar kernels, element by element, so a
// pencil pass is bit-identical to the per-point loop it replaces. The
// scalar per-point kernels in exemplar.hpp (and the per-cell fused
// iterations in core/exec_fused.hpp) remain compiled as the reference
// path; tests/kernels/test_pencil.cpp pins the equivalence.
//
// Aliasing contract: `out`/`carry` pointers never alias any input or each
// other; input pointers may alias each other (they are only read). The
// executors satisfy this by construction — outputs are rows of phi1 or of
// workspace temporaries, inputs are rows of phi0 or of other temporaries.
//
// Alignment: callers that want aligned loads pass rows of Pitch::Padded
// fabs (64-byte row bases, grid/real.hpp); the kernels themselves are
// correct for any alignment.

#include <cstdint>

#include "kernels/exemplar.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FLUXDIV_RESTRICT __restrict__
#else
#define FLUXDIV_RESTRICT
#endif

// `omp simd` asserts the loop has no loop-carried dependence even when
// OpenMP threading is off; fall back to plain loops (still auto-
// vectorizable) without OpenMP.
#if defined(_OPENMP)
#define FLUXDIV_PRAGMA_SIMD _Pragma("omp simd")
#else
#define FLUXDIV_PRAGMA_SIMD
#endif

namespace fluxdiv::kernels::pencil {

using grid::Real;

/// EvalFlux1 over a pencil of n faces: out[i] = evalFlux1(cells + i, s).
/// `cells` points at the high-side cell of face 0 within its row.
inline void evalFlux1Pencil(const Real* FLUXDIV_RESTRICT cells,
                            std::int64_t stride, int n,
                            Real* FLUXDIV_RESTRICT out) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    out[i] = evalFlux1(cells + i, stride);
  }
}

/// EvalFlux2 over a pencil, in place: facePhi[i] *= faceVel[i].
inline void fluxPencil(Real* FLUXDIV_RESTRICT facePhi,
                       const Real* FLUXDIV_RESTRICT faceVel, int n) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    facePhi[i] = evalFlux2(facePhi[i], faceVel[i]);
  }
}

/// EvalFlux2 of the velocity row with itself: facePhi[i] *= facePhi[i].
/// (The CLO baseline multiplies the velocity component last, where both
/// operands are the same row — the aliasing case fluxPencil forbids.)
inline void fluxSquarePencil(Real* FLUXDIV_RESTRICT facePhi, int n) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    facePhi[i] = evalFlux2(facePhi[i], facePhi[i]);
  }
}

/// Accumulation over a pencil of n cells:
/// out[i] += scale * (flux[i + stride] - flux[i]).
inline void accumulatePencil(const Real* FLUXDIV_RESTRICT flux,
                             std::int64_t stride, int n, Real scale,
                             Real* FLUXDIV_RESTRICT out) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    out[i] += scale * (flux[i + stride] - flux[i]);
  }
}

/// Whole face flux over a pencil: out[i] = EvalFlux2(EvalFlux1(cellC + i),
/// EvalFlux1(cellV + i)). cellC/cellV may alias (the velocity component's
/// own flux); out aliases neither.
inline void faceFluxPencil(const Real* cellC, const Real* cellV,
                           std::int64_t stride, int n,
                           Real* FLUXDIV_RESTRICT out) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    out[i] = faceFlux(cellC + i, cellV + i, stride);
  }
}

/// Face flux with the face velocity already averaged (the CLO executors'
/// precomputed-velocity form): out[i] = EvalFlux1(cells + i) * vel[i].
inline void evalFlux1MulPencil(const Real* FLUXDIV_RESTRICT cells,
                               std::int64_t stride,
                               const Real* FLUXDIV_RESTRICT vel, int n,
                               Real* FLUXDIV_RESTRICT out) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    out[i] = evalFlux2(evalFlux1(cells + i, stride), vel[i]);
  }
}

/// The fused sweep's per-direction row step: accumulate the flux
/// difference between a freshly computed high-face row and the carried
/// low-face row, then roll the carry forward:
///   out[i] += scale * (hiFlux[i] - carry[i]);  carry[i] = hiFlux[i].
/// On a sweep's low boundary the caller pre-fills `carry` with the fresh
/// low-face fluxes (exactly what the per-cell `fresh*` branches computed).
inline void fusedFaceDiffPencil(const Real* FLUXDIV_RESTRICT hiFlux,
                                Real* FLUXDIV_RESTRICT carry, int n,
                                Real scale, Real* FLUXDIV_RESTRICT out) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    out[i] += scale * (hiFlux[i] - carry[i]);
    carry[i] = hiFlux[i];
  }
}

/// Plain pencil copy (velocity extraction in the CLI baseline).
inline void copyPencil(const Real* FLUXDIV_RESTRICT src, int n,
                       Real* FLUXDIV_RESTRICT dst) {
  FLUXDIV_PRAGMA_SIMD
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i];
  }
}

/// Compile-time configuration of the pencil layer, for report headers and
/// the perf docs.
struct PencilConfig {
  int simdDoubles;       ///< grid::kSimdDoubles (the padding multiple)
  std::size_t alignment; ///< grid::kFabAlignment
  bool ompSimd;          ///< compiled with #pragma omp simd active
};

[[nodiscard]] PencilConfig pencilConfig();

} // namespace fluxdiv::kernels::pencil
