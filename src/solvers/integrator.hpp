#pragma once
// Explicit time integrators over LevelData (method of lines). Chombo-class
// frameworks advance time-dependent PDEs with exactly these schemes; the
// integrator is schedule-agnostic — any FluxDivRhs (hence any scheduling
// variant) plugs in.
//
// Two execution paths per step (core::StepFuse):
//   * Eager: the classic loop — each stage synchronously exchanges,
//     evaluates the RHS, and combines stages with level-wide sweeps. The
//     bit-identity reference for everything below.
//   * Staged / Fused / CommAvoid: the stage chain is recorded as a
//     symbolic StepProgram (buildStepProgram) and lowered by
//     core::StepGraphExecutor into dependency-tracked task graphs — the
//     stage combines become per-box/per-tile tasks, cross-stage tasks
//     overlap (Fused), or per-stage exchanges are replaced by one deepened
//     exchange plus halo recomputation (CommAvoid). Selected by the
//     FLUXDIV_STEP_FUSE environment variable (default: staged) or
//     setStepFuse(). All modes produce bit-identical solutions.

#include <optional>
#include <memory>
#include <vector>

#include "core/stepgraph.hpp"
#include "grid/leveldata.hpp"
#include "solvers/rhs.hpp"

namespace fluxdiv::solvers {

/// Explicit Runge-Kutta scheme selector.
enum class Scheme {
  ForwardEuler, ///< 1st order: u += dt k1
  Midpoint,     ///< 2nd order (RK2 midpoint)
  SSPRK3,       ///< 3rd order strong-stability-preserving (Shu-Osher)
  RK4,          ///< classic 4th order
};

/// Formal order of accuracy of a scheme.
constexpr int schemeOrder(Scheme s) {
  switch (s) {
  case Scheme::ForwardEuler:
    return 1;
  case Scheme::Midpoint:
    return 2;
  case Scheme::SSPRK3:
    return 3;
  case Scheme::RK4:
    return 4;
  }
  return 0;
}

/// RHS evaluations (hence ghost exchanges on the eager path) per step.
constexpr int schemeRhsEvals(Scheme s) {
  switch (s) {
  case Scheme::ForwardEuler:
    return 1;
  case Scheme::Midpoint:
    return 2;
  case Scheme::SSPRK3:
    return 3;
  case Scheme::RK4:
    return 4;
  }
  return 0;
}

/// Display / CLI name: "euler", "midpoint", "ssprk3", "rk4".
[[nodiscard]] const char* schemeName(Scheme s);

/// Parse a scheme name (the --scheme values). Returns false and leaves
/// `out` untouched on an unknown name.
bool parseScheme(const std::string& text, Scheme& out);

/// All four schemes, in order of formal accuracy.
inline constexpr Scheme kSchemes[] = {
    Scheme::ForwardEuler,
    Scheme::Midpoint,
    Scheme::SSPRK3,
    Scheme::RK4,
};

/// Record `nSteps` consecutive time steps of `scheme` as a symbolic
/// core::StepProgram: per stage an Exchange (+ BoundaryFill when
/// `withBoundary`) and RhsEval, plus the exact copy/axpy/scale stage
/// combines of the eager path, in the eager path's order — so any lowering
/// that preserves per-(slot, region) program order is bit-identical to it.
/// dt is baked into the combine coefficients.
core::StepProgram buildStepProgram(Scheme scheme, grid::Real dt,
                                   int nSteps = 1,
                                   bool withBoundary = false);

/// Copy the valid region of `src` into `dst` (same layout).
void copyValid(const grid::LevelData& src, grid::LevelData& dst);

/// dst += scale * src over valid regions (same layout).
void addScaled(grid::LevelData& dst, const grid::LevelData& src,
               grid::Real scale);

/// dst *= scale over valid regions.
void scaleValid(grid::LevelData& dst, grid::Real scale);

/// Explicit RK integrator with preallocated stage storage.
class TimeIntegrator {
public:
  /// Stage storage is allocated on `layout` with the exemplar's component
  /// and ghost counts.
  TimeIntegrator(Scheme scheme, const grid::DisjointBoxLayout& layout);
  ~TimeIntegrator();

  TimeIntegrator(const TimeIntegrator&) = delete;
  TimeIntegrator& operator=(const TimeIntegrator&) = delete;

  [[nodiscard]] Scheme scheme() const { return scheme_; }

  /// Advance u by one step of size dt: u <- u + dt * combination of
  /// rhs evaluations per the scheme. Dispatches on the fuse mode (see the
  /// header comment); throws std::invalid_argument on an unparsable
  /// FLUXDIV_STEP_FUSE / FLUXDIV_LEVEL_POLICY value.
  void advance(grid::LevelData& u, grid::Real dt, FluxDivRhs& rhs);

  /// Advance u by `nSteps` steps of size dt. Under Fused/CommAvoid the
  /// whole sequence is captured as ONE task graph (cross-time-step
  /// fusion); otherwise equivalent to calling advance() nSteps times.
  void advanceSteps(grid::LevelData& u, grid::Real dt, FluxDivRhs& rhs,
                    int nSteps);

  /// The eager reference path, always available regardless of fuse mode.
  void advanceEager(grid::LevelData& u, grid::Real dt, FluxDivRhs& rhs);

  /// Override the FLUXDIV_STEP_FUSE environment variable (tests/benches).
  void setStepFuse(core::StepFuse fuse) { fuseOverride_ = fuse; }

  /// Override the FLUXDIV_LEVEL_POLICY environment variable for the
  /// step-graph executor's task granularity.
  void setLevelPolicy(core::LevelPolicy policy) {
    policyOverride_ = policy;
  }

  /// Adversarial serial replay of the captured graphs (tests; see
  /// core::ReplayMode). Only affects the non-eager paths.
  void setReplay(core::ReplayMode replay) { replay_ = replay; }

  /// Capture statistics of the step-graph executor: null until a
  /// non-eager advance() ran.
  [[nodiscard]] const core::StepGraphStats* stepStats() const;

  /// The executor a non-eager advance would use, creating it on demand
  /// (tests poke lowerModels()/effectiveFuse() through this). Null only
  /// for StepFuse::Eager.
  core::StepGraphExecutor* stepExecutor(const FluxDivRhs& rhs);

private:
  [[nodiscard]] core::StepFuse resolveFuse() const;
  [[nodiscard]] core::LevelPolicy resolvePolicy() const;
  void advanceGraph(grid::LevelData& u, grid::Real dt, FluxDivRhs& rhs,
                    int nSteps, core::StepFuse fuse);

  Scheme scheme_;
  std::vector<grid::LevelData> stages_; ///< k_i and the staging state
  std::optional<core::StepFuse> fuseOverride_;
  std::optional<core::LevelPolicy> policyOverride_;
  core::ReplayMode replay_{};
  core::VariantConfig execCfg_; ///< config the executor was built for
  std::unique_ptr<core::StepGraphExecutor> exec_;
};

} // namespace fluxdiv::solvers
