#pragma once
// Explicit time integrators over LevelData (method of lines). Chombo-class
// frameworks advance time-dependent PDEs with exactly these schemes; the
// integrator is schedule-agnostic — any FluxDivRhs (hence any scheduling
// variant) plugs in.

#include <vector>

#include "grid/leveldata.hpp"
#include "solvers/rhs.hpp"

namespace fluxdiv::solvers {

/// Explicit Runge-Kutta scheme selector.
enum class Scheme {
  ForwardEuler, ///< 1st order: u += dt k1
  Midpoint,     ///< 2nd order (RK2 midpoint)
  SSPRK3,       ///< 3rd order strong-stability-preserving (Shu-Osher)
  RK4,          ///< classic 4th order
};

/// Formal order of accuracy of a scheme.
constexpr int schemeOrder(Scheme s) {
  switch (s) {
  case Scheme::ForwardEuler:
    return 1;
  case Scheme::Midpoint:
    return 2;
  case Scheme::SSPRK3:
    return 3;
  case Scheme::RK4:
    return 4;
  }
  return 0;
}

/// Copy the valid region of `src` into `dst` (same layout).
void copyValid(const grid::LevelData& src, grid::LevelData& dst);

/// dst += scale * src over valid regions (same layout).
void addScaled(grid::LevelData& dst, const grid::LevelData& src,
               grid::Real scale);

/// dst *= scale over valid regions.
void scaleValid(grid::LevelData& dst, grid::Real scale);

/// Explicit RK integrator with preallocated stage storage.
class TimeIntegrator {
public:
  /// Stage storage is allocated on `layout` with the exemplar's component
  /// and ghost counts.
  TimeIntegrator(Scheme scheme, const grid::DisjointBoxLayout& layout);

  [[nodiscard]] Scheme scheme() const { return scheme_; }

  /// Advance u by one step of size dt: u <- u + dt * combination of
  /// rhs evaluations per the scheme.
  void advance(grid::LevelData& u, grid::Real dt, FluxDivRhs& rhs);

private:
  Scheme scheme_;
  std::vector<grid::LevelData> stages_; ///< k_i and the staging state
};

} // namespace fluxdiv::solvers
