#include "solvers/integrator.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "kernels/exemplar.hpp"

namespace fluxdiv::solvers {

using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::LevelData;
using grid::Real;

void copyValid(const LevelData& src, LevelData& dst) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < src.size(); ++b) {
    dst[b].copy(src[b], src.validBox(b), 0, 0, src.nComp());
  }
}

void addScaled(LevelData& dst, const LevelData& src, Real scale) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < dst.size(); ++b) {
    dst[b].plus(src[b], scale, dst.validBox(b));
  }
}

void scaleValid(LevelData& dst, Real scale) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < dst.size(); ++b) {
    FArrayBox& fab = dst[b];
    const grid::Box valid = dst.validBox(b);
    for (int c = 0; c < dst.nComp(); ++c) {
      Real* p = fab.dataPtr(c);
      forEachCell(valid, [&](int i, int j, int k) {
        p[fab.offset(i, j, k)] *= scale;
      });
    }
  }
}

const char* schemeName(Scheme s) {
  switch (s) {
  case Scheme::ForwardEuler:
    return "euler";
  case Scheme::Midpoint:
    return "midpoint";
  case Scheme::SSPRK3:
    return "ssprk3";
  case Scheme::RK4:
    return "rk4";
  }
  return "?";
}

bool parseScheme(const std::string& text, Scheme& out) {
  for (const Scheme s : kSchemes) {
    if (text == schemeName(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

core::StepProgram buildStepProgram(Scheme scheme, Real dt, int nSteps,
                                   bool withBoundary) {
  core::StepProgram prog;
  prog.rhsEvals = schemeRhsEvals(scheme);
  prog.nSteps = nSteps < 1 ? 1 : nSteps;
  switch (scheme) {
  case Scheme::ForwardEuler:
    prog.slotNames = {"u", "k"};
    break;
  case Scheme::Midpoint:
    prog.slotNames = {"u", "k", "mid"};
    break;
  case Scheme::SSPRK3:
    prog.slotNames = {"u", "k", "s1"};
    break;
  case Scheme::RK4:
    prog.slotNames = {"u", "k", "acc", "stage"};
    break;
  }
  prog.nSlots = static_cast<int>(prog.slotNames.size());

  for (int t = 0; t < prog.nSteps; ++t) {
    // Ghost exchange (+ BC fill) and RHS evaluation of one stage state —
    // exactly what FluxDivRhs::operator() does eagerly.
    const auto rhsOf = [&](int src, int dst) {
      prog.exchange(src, t);
      if (withBoundary) {
        prog.boundaryFill(src, t);
      }
      prog.rhs(src, dst, t);
    };
    // Slot ids per scheme (0 is always u, 1 always the k scratch). The
    // combine sequences replicate advanceEager() op for op, in order, so
    // per-(slot, region) program order reproduces its FP rounding exactly.
    switch (scheme) {
    case Scheme::ForwardEuler:
      rhsOf(0, 1);
      prog.axpy(0, 1, dt, t);
      break;
    case Scheme::Midpoint:
      rhsOf(0, 1);           // k1 = f(u)
      prog.copy(0, 2, t);    // mid = u
      prog.axpy(2, 1, 0.5 * dt, t);
      rhsOf(2, 1);           // k2 = f(mid)
      prog.axpy(0, 1, dt, t);
      break;
    case Scheme::SSPRK3:
      rhsOf(0, 1);
      prog.copy(0, 2, t);
      prog.axpy(2, 1, dt, t); // u1
      rhsOf(2, 1);
      prog.scale(2, 0.25, t);
      prog.axpy(2, 0, 0.75, t);
      prog.axpy(2, 1, 0.25 * dt, t); // u2
      rhsOf(2, 1);
      prog.scale(0, 1.0 / 3.0, t);
      prog.axpy(0, 2, 2.0 / 3.0, t);
      prog.axpy(0, 1, 2.0 / 3.0 * dt, t);
      break;
    case Scheme::RK4:
      rhsOf(0, 1); // k1
      prog.copy(1, 2, t);
      prog.copy(0, 3, t);
      prog.axpy(3, 1, 0.5 * dt, t);
      rhsOf(3, 1); // k2
      prog.axpy(2, 1, 2.0, t);
      prog.copy(0, 3, t);
      prog.axpy(3, 1, 0.5 * dt, t);
      rhsOf(3, 1); // k3
      prog.axpy(2, 1, 2.0, t);
      prog.copy(0, 3, t);
      prog.axpy(3, 1, dt, t);
      rhsOf(3, 1); // k4
      prog.axpy(2, 1, 1.0, t);
      prog.axpy(0, 2, dt / 6.0, t);
      break;
    }
  }
  return prog;
}

namespace {

int stageCount(Scheme scheme) {
  switch (scheme) {
  case Scheme::ForwardEuler:
    return 1; // k1
  case Scheme::Midpoint:
  case Scheme::SSPRK3:
    return 2; // k, staging state
  case Scheme::RK4:
    return 3; // k_i, accumulator, staging state
  }
  throw std::invalid_argument("unknown scheme");
}

} // namespace

TimeIntegrator::TimeIntegrator(Scheme scheme,
                               const DisjointBoxLayout& layout)
    : scheme_(scheme) {
  const int n = stageCount(scheme);
  stages_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    stages_.emplace_back(layout, kernels::kNumComp, kernels::kNumGhost);
  }
}

TimeIntegrator::~TimeIntegrator() = default;

core::StepFuse TimeIntegrator::resolveFuse() const {
  if (fuseOverride_.has_value()) {
    return *fuseOverride_;
  }
  if (const char* env = std::getenv("FLUXDIV_STEP_FUSE")) {
    core::StepFuse fuse{};
    if (!core::parseStepFuse(env, fuse)) {
      throw std::invalid_argument(
          std::string("TimeIntegrator: unknown FLUXDIV_STEP_FUSE '") +
          env + "'");
    }
    return fuse;
  }
  return core::StepFuse::Staged;
}

core::LevelPolicy TimeIntegrator::resolvePolicy() const {
  if (policyOverride_.has_value()) {
    return *policyOverride_;
  }
  if (const char* env = std::getenv("FLUXDIV_LEVEL_POLICY")) {
    core::LevelPolicy policy{};
    if (!core::parseLevelPolicy(env, policy)) {
      throw std::invalid_argument(
          std::string("TimeIntegrator: unknown FLUXDIV_LEVEL_POLICY '") +
          env + "'");
    }
    return policy;
  }
  return core::LevelPolicy::BoxParallel;
}

const core::StepGraphStats* TimeIntegrator::stepStats() const {
  return exec_ != nullptr ? &exec_->stats() : nullptr;
}

core::StepGraphExecutor*
TimeIntegrator::stepExecutor(const FluxDivRhs& rhs) {
  const core::StepFuse fuse = resolveFuse();
  if (fuse == core::StepFuse::Eager) {
    return nullptr;
  }
  core::StepExecOptions opts;
  opts.policy = resolvePolicy();
  opts.fuse = fuse;
  opts.replay = replay_;
  const bool reusable =
      exec_ != nullptr && execCfg_ == rhs.config() &&
      exec_->nThreads() == rhs.nThreads() &&
      exec_->options().policy == opts.policy &&
      exec_->options().fuse == opts.fuse &&
      exec_->options().replay.order == opts.replay.order &&
      exec_->options().replay.seed == opts.replay.seed;
  if (!reusable) {
    exec_ = std::make_unique<core::StepGraphExecutor>(rhs.config(),
                                                      rhs.nThreads(), opts);
    execCfg_ = rhs.config();
  }
  return exec_.get();
}

void TimeIntegrator::advance(LevelData& u, Real dt, FluxDivRhs& rhs) {
  const core::StepFuse fuse = resolveFuse();
  if (fuse == core::StepFuse::Eager) {
    advanceEager(u, dt, rhs);
    return;
  }
  advanceGraph(u, dt, rhs, 1, fuse);
}

void TimeIntegrator::advanceSteps(LevelData& u, Real dt, FluxDivRhs& rhs,
                                  int nSteps) {
  const core::StepFuse fuse = resolveFuse();
  if (fuse == core::StepFuse::Eager || fuse == core::StepFuse::Staged) {
    // No cross-step fusion to gain: run the steps one by one (Staged
    // still reuses its captured per-stage graphs across the steps).
    for (int t = 0; t < nSteps; ++t) {
      advance(u, dt, rhs);
    }
    return;
  }
  advanceGraph(u, dt, rhs, nSteps, fuse);
}

void TimeIntegrator::advanceGraph(LevelData& u, Real dt, FluxDivRhs& rhs,
                                  int nSteps, core::StepFuse /*fuse*/) {
  core::StepGraphExecutor* exec = stepExecutor(rhs);
  const core::StepProgram prog = buildStepProgram(
      scheme_, dt, nSteps, rhs.boundary() != nullptr);
  core::StepRhsSpec spec;
  spec.invDx = rhs.invDx();
  spec.dissipation = rhs.dissipation();
  spec.boundary = rhs.boundary();
  exec->run(prog, u, spec);
}

void TimeIntegrator::advanceEager(LevelData& u, Real dt, FluxDivRhs& rhs) {
  switch (scheme_) {
  case Scheme::ForwardEuler: {
    LevelData& k1 = stages_[0];
    rhs(u, k1);
    addScaled(u, k1, dt);
    return;
  }
  case Scheme::Midpoint: {
    LevelData& k = stages_[0];
    LevelData& mid = stages_[1];
    rhs(u, k); // k1 = f(u)
    copyValid(u, mid);
    addScaled(mid, k, 0.5 * dt); // mid = u + dt/2 k1
    rhs(mid, k);                 // k2 = f(mid)
    addScaled(u, k, dt);         // u += dt k2
    return;
  }
  case Scheme::SSPRK3: {
    // Shu-Osher form: u1 = u + dt f(u);
    // u2 = 3/4 u + 1/4 u1 + 1/4 dt f(u1);
    // u  = 1/3 u + 2/3 u2 + 2/3 dt f(u2).
    LevelData& k = stages_[0];
    LevelData& s1 = stages_[1];
    rhs(u, k);
    copyValid(u, s1);
    addScaled(s1, k, dt); // u1
    rhs(s1, k);
    scaleValid(s1, 0.25);
    addScaled(s1, u, 0.75);
    addScaled(s1, k, 0.25 * dt); // u2
    rhs(s1, k);
    scaleValid(u, 1.0 / 3.0);
    addScaled(u, s1, 2.0 / 3.0);
    addScaled(u, k, 2.0 / 3.0 * dt);
    return;
  }
  case Scheme::RK4: {
    LevelData& k = stages_[0];
    LevelData& acc = stages_[1];
    LevelData& stage = stages_[2];

    rhs(u, k); // k1
    copyValid(k, acc);
    copyValid(u, stage);
    addScaled(stage, k, 0.5 * dt);

    rhs(stage, k); // k2
    addScaled(acc, k, 2.0);
    copyValid(u, stage);
    addScaled(stage, k, 0.5 * dt);

    rhs(stage, k); // k3
    addScaled(acc, k, 2.0);
    copyValid(u, stage);
    addScaled(stage, k, dt);

    rhs(stage, k); // k4
    addScaled(acc, k, 1.0);

    addScaled(u, acc, dt / 6.0);
    return;
  }
  }
}

} // namespace fluxdiv::solvers
