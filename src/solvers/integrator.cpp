#include "solvers/integrator.hpp"

#include <stdexcept>

#include "kernels/exemplar.hpp"

namespace fluxdiv::solvers {

using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::LevelData;
using grid::Real;

void copyValid(const LevelData& src, LevelData& dst) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < src.size(); ++b) {
    dst[b].copy(src[b], src.validBox(b), 0, 0, src.nComp());
  }
}

void addScaled(LevelData& dst, const LevelData& src, Real scale) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < dst.size(); ++b) {
    dst[b].plus(src[b], scale, dst.validBox(b));
  }
}

void scaleValid(LevelData& dst, Real scale) {
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < dst.size(); ++b) {
    FArrayBox& fab = dst[b];
    const grid::Box valid = dst.validBox(b);
    for (int c = 0; c < dst.nComp(); ++c) {
      Real* p = fab.dataPtr(c);
      forEachCell(valid, [&](int i, int j, int k) {
        p[fab.offset(i, j, k)] *= scale;
      });
    }
  }
}

namespace {

int stageCount(Scheme scheme) {
  switch (scheme) {
  case Scheme::ForwardEuler:
    return 1; // k1
  case Scheme::Midpoint:
  case Scheme::SSPRK3:
    return 2; // k, staging state
  case Scheme::RK4:
    return 3; // k_i, accumulator, staging state
  }
  throw std::invalid_argument("unknown scheme");
}

} // namespace

TimeIntegrator::TimeIntegrator(Scheme scheme,
                               const DisjointBoxLayout& layout)
    : scheme_(scheme) {
  const int n = stageCount(scheme);
  stages_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    stages_.emplace_back(layout, kernels::kNumComp, kernels::kNumGhost);
  }
}

void TimeIntegrator::advance(LevelData& u, Real dt, FluxDivRhs& rhs) {
  switch (scheme_) {
  case Scheme::ForwardEuler: {
    LevelData& k1 = stages_[0];
    rhs(u, k1);
    addScaled(u, k1, dt);
    return;
  }
  case Scheme::Midpoint: {
    LevelData& k = stages_[0];
    LevelData& mid = stages_[1];
    rhs(u, k); // k1 = f(u)
    copyValid(u, mid);
    addScaled(mid, k, 0.5 * dt); // mid = u + dt/2 k1
    rhs(mid, k);                 // k2 = f(mid)
    addScaled(u, k, dt);         // u += dt k2
    return;
  }
  case Scheme::SSPRK3: {
    // Shu-Osher form: u1 = u + dt f(u);
    // u2 = 3/4 u + 1/4 u1 + 1/4 dt f(u1);
    // u  = 1/3 u + 2/3 u2 + 2/3 dt f(u2).
    LevelData& k = stages_[0];
    LevelData& s1 = stages_[1];
    rhs(u, k);
    copyValid(u, s1);
    addScaled(s1, k, dt); // u1
    rhs(s1, k);
    scaleValid(s1, 0.25);
    addScaled(s1, u, 0.75);
    addScaled(s1, k, 0.25 * dt); // u2
    rhs(s1, k);
    scaleValid(u, 1.0 / 3.0);
    addScaled(u, s1, 2.0 / 3.0);
    addScaled(u, k, 2.0 / 3.0 * dt);
    return;
  }
  case Scheme::RK4: {
    LevelData& k = stages_[0];
    LevelData& acc = stages_[1];
    LevelData& stage = stages_[2];

    rhs(u, k); // k1
    copyValid(k, acc);
    copyValid(u, stage);
    addScaled(stage, k, 0.5 * dt);

    rhs(stage, k); // k2
    addScaled(acc, k, 2.0);
    copyValid(u, stage);
    addScaled(stage, k, 0.5 * dt);

    rhs(stage, k); // k3
    addScaled(acc, k, 2.0);
    copyValid(u, stage);
    addScaled(stage, k, dt);

    rhs(stage, k); // k4
    addScaled(acc, k, 1.0);

    addScaled(u, acc, dt / 6.0);
    return;
  }
  }
}

} // namespace fluxdiv::solvers
