#pragma once
// Right-hand-side evaluator for method-of-lines time integration: wraps a
// FluxDivRunner (any scheduling variant), the ghost exchange, and optional
// physical boundary conditions into dudt = -(1/dx) div F(u) — the
// conservation-law RHS of paper Eq. 1/4.

#include "core/runner.hpp"
#include "grid/bc.hpp"
#include "kernels/laplacian.hpp"

namespace fluxdiv::solvers {

/// Evaluates the semi-discrete RHS of the exemplar conservation law, with
/// an optional artificial-dissipation term (the stabilization mechanism
/// role the paper cites for ghost layers):
///   dudt = -(1/dx) div F(u) + nu/dx^2 Lap(u).
class FluxDivRhs {
public:
  /// `invDx` is 1/dx (the flux difference divided by the cell width);
  /// `boundary` handles non-periodic sides (nullptr for fully periodic
  /// domains); `dissipation` is nu/dx^2 (0 disables the Laplacian term).
  FluxDivRhs(core::VariantConfig cfg, int nThreads, grid::Real invDx = 1.0,
             const grid::BoundaryFiller* boundary = nullptr,
             grid::Real dissipation = 0.0)
      : runner_(cfg, nThreads), invDx_(invDx), dissipation_(dissipation),
        boundary_(boundary) {}

  /// Evaluate into dudt. Exchanges u's ghosts (and applies boundary
  /// conditions) first; dudt's previous contents are discarded.
  void operator()(grid::LevelData& u, grid::LevelData& dudt) {
    u.exchange();
    if (boundary_ != nullptr) {
      boundary_->fill(u);
    }
    for (std::size_t b = 0; b < dudt.size(); ++b) {
      dudt[b].setVal(0.0);
    }
    runner_.run(u, dudt, -invDx_);
    if (dissipation_ != 0.0) {
      kernels::addLaplacian(u, dudt, dissipation_);
    }
  }

  [[nodiscard]] const core::VariantConfig& config() const {
    return runner_.config();
  }
  [[nodiscard]] int nThreads() const { return runner_.nThreads(); }
  [[nodiscard]] grid::Real invDx() const { return invDx_; }
  [[nodiscard]] grid::Real dissipation() const { return dissipation_; }
  [[nodiscard]] const grid::BoundaryFiller* boundary() const {
    return boundary_;
  }

private:
  core::FluxDivRunner runner_;
  grid::Real invDx_;
  grid::Real dissipation_;
  const grid::BoundaryFiller* boundary_;
};

} // namespace fluxdiv::solvers
