// Implementation of the kernel footprint contract checker. See
// kernelcheck.hpp for the proof obligations (K1/K2/K3) and the
// differential-probing design; docs/static-analysis.md for the worked
// examples.

#include "analysis/kernelcheck.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "analysis/graphcheck.hpp"
#include "grid/tracingfab.hpp"
#include "kernels/pencil.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::analysis {

namespace {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::Pitch;
using grid::Real;
using grid::TraceSlot;
using grid::TracingFab;
using kernels::kNumComp;
using kernels::kNumGhost;
using kernels::Stage;
using kernels::velocityComp;

constexpr const char* kDirNames[3] = {"x", "y", "z"};

/// Extra input margin beyond the declared ghost depth: an undeclared read
/// this far outside the contract is still observed, not segfaulted.
constexpr int kProbeMargin = 2;
/// Output allocation margin around the output region, so out-of-region
/// writes land in observable slots instead of out-of-bounds memory.
constexpr int kOutMargin = 2;
/// Cap on repetitive probe diagnostics of one kind (pad reads, write
/// gaps): one witness proves the violation, thousands obscure it.
constexpr int kMaxDiagsPerKind = 8;

std::string fmtVect(const IntVect& v) {
  std::ostringstream os;
  os << "(" << v[0] << "," << v[1] << "," << v[2] << ")";
  return os.str();
}

std::string fmtBox(const Box& b) {
  if (b.empty()) {
    return "[empty]";
  }
  return "[" + fmtVect(b.lo()) + ".." + fmtVect(b.hi()) + "]";
}

struct IvLess {
  bool operator()(const IntVect& a, const IntVect& b) const {
    for (int d = 0; d < 3; ++d) {
      if (a[d] != b[d]) {
        return a[d] < b[d];
      }
    }
    return false;
  }
};

/// Dense cell key for hash sets: coordinates stay within +-512 of the
/// origin at every probe size this checker runs.
std::int64_t cellKey(const IntVect& p) {
  assert(p[0] > -512 && p[0] < 512 && p[1] > -512 && p[1] < 512 &&
         p[2] > -512 && p[2] < 512);
  return ((static_cast<std::int64_t>(p[0]) + 512) << 20) |
         ((static_cast<std::int64_t>(p[1]) + 512) << 10) |
         (static_cast<std::int64_t>(p[2]) + 512);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::vector<IntVect> boxPoints(const Box& b) {
  std::vector<IntVect> pts;
  pts.reserve(static_cast<std::size_t>(b.numPts()));
  // x-inner iteration yields lexicographic-in-(z,y,x); re-sort to the
  // checker's canonical (x,y,z)-lexicographic order.
  forEachCell(b, [&](int i, int j, int k) { pts.emplace_back(i, j, k); });
  std::sort(pts.begin(), pts.end(), IvLess{});
  return pts;
}

void mergePoints(std::vector<IntVect>& into, const std::vector<IntVect>& add) {
  for (const IntVect& p : add) {
    if (std::find(into.begin(), into.end(), p) == into.end()) {
      into.push_back(p);
    }
  }
  std::sort(into.begin(), into.end(), IvLess{});
}

IntVect clampTo(const IntVect& p, const Box& b) {
  IntVect q = p;
  for (int d = 0; d < 3; ++d) {
    q[d] = std::min(std::max(q[d], b.lo(d)), b.hi(d));
  }
  return q;
}

Box minkowski(const Box& region, const Box& offsets) {
  if (region.empty() || offsets.empty()) {
    return {};
  }
  return {region.lo() + offsets.lo(), region.hi() + offsets.hi()};
}

Box hullOf(const std::vector<IntVect>& pts) {
  if (pts.empty()) {
    return {};
  }
  IntVect lo = pts.front();
  IntVect hi = pts.front();
  for (const IntVect& p : pts) {
    lo = IntVect::min(lo, p);
    hi = IntVect::max(hi, p);
  }
  return {lo, hi};
}

Box hullUnion(const Box& a, const Box& b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  return {IntVect::min(a.lo(), b.lo()), IntVect::max(a.hi(), b.hi())};
}

/// Declared read offsets of `shape` for dependence pair (outComp, inComp),
/// straight from kernels/footprint.hpp — the contract under proof.
std::vector<IntVect> declaredReadOffsets(const KernelShape& shape, int oc,
                                         int ic) {
  if (shape.dir >= 0) {
    // Single-stage driver: input comp 0 is the primary field, comp 1 (when
    // present) the face velocity — both read through the stage's offsets.
    if (oc != 0 || ic >= shape.inComps) {
      return {};
    }
    return boxPoints(kernels::readOffsets(shape.stage, shape.dir));
  }
  // Whole pipeline over <rho,u,v,w,e>: output comp c consumes its own
  // component through every direction's fused stencil, plus the normal
  // velocity component through direction d's fused stencil.
  std::vector<IntVect> pts;
  for (int d = 0; d < 3; ++d) {
    if (ic == oc) {
      mergePoints(pts, boxPoints(kernels::fusedCellReadOffsets(d)));
    } else if (ic == velocityComp(d)) {
      mergePoints(pts, boxPoints(kernels::fusedCellReadOffsets(d)));
    }
  }
  return pts;
}

std::string roleLabel(int oc, int ic) {
  return "read c" + std::to_string(ic) + "->c" + std::to_string(oc);
}

/// Per-offset observation of one dependence role during probing.
struct OffsetObs {
  IntVect witness;                 ///< one output cell showing the offset
  std::vector<std::int64_t> cells; ///< every output cell showing it
};

using OffsetMap = std::map<IntVect, OffsetObs, IvLess>;

void recordObs(OffsetMap& m, const IntVect& offset, const IntVect& outCell) {
  auto [it, inserted] = m.try_emplace(offset);
  if (inserted) {
    it->second.witness = outCell;
  }
  it->second.cells.push_back(cellKey(outCell));
}

void finishRole(RoleFootprint& r, OffsetMap& m) {
  for (auto& [offset, obs] : m) {
    r.observed.push_back(offset);
    r.witnesses.push_back(obs.witness);
    std::sort(obs.cells.begin(), obs.cells.end());
    obs.cells.erase(std::unique(obs.cells.begin(), obs.cells.end()),
                    obs.cells.end());
  }
}

Real perturbValue(Real orig, int trial) {
  // Two structurally different perturbations of a value in [1, 2): an
  // exact cancellation of one delta through the kernel's arithmetic
  // cannot also cancel the other.
  return orig * (1.25 + 0.5 * static_cast<Real>(trial)) +
         0.0625 * static_cast<Real>(trial + 1);
}

/// Structured input sample for allocations too large to probe
/// exhaustively: axis pencils through the output center (every declared
/// axis-aligned offset stays exercised for K2), corner neighborhoods
/// (absolute-index bugs cluster there), pad lanes, and a seeded lattice.
std::vector<TraceSlot> sampleInputSlots(const TracingFab& in,
                                        const Box& outRegion,
                                        const ProbeOptions& opts) {
  const Box ib = in.fab().box();
  const int nComp = in.fab().nComp();
  const std::int64_t rowLen = ib.size(0);
  const std::int64_t slack = in.fab().pitchSlack();

  std::vector<TraceSlot> slots;
  std::unordered_set<std::int64_t> seen;
  auto add = [&](const IntVect& cell, int comp, bool pad) {
    const std::int64_t key =
        cellKey(cell) | (static_cast<std::int64_t>(comp) << 32);
    if (seen.insert(key).second) {
      slots.push_back({cell, comp, pad});
    }
  };

  const IntVect center{(outRegion.lo(0) + outRegion.hi(0)) / 2,
                       (outRegion.lo(1) + outRegion.hi(1)) / 2,
                       (outRegion.lo(2) + outRegion.hi(2)) / 2};
  for (int c = 0; c < nComp; ++c) {
    for (int d = 0; d < 3; ++d) {
      for (int v = ib.lo(d); v <= ib.hi(d); ++v) {
        IntVect p = center;
        p[d] = v;
        add(p, c, false);
      }
    }
  }
  for (int ci = 0; ci < 8; ++ci) {
    const IntVect corner{(ci & 1) != 0 ? ib.hi(0) : ib.lo(0),
                         (ci & 2) != 0 ? ib.hi(1) : ib.lo(1),
                         (ci & 4) != 0 ? ib.hi(2) : ib.lo(2)};
    const IntVect inward{(ci & 1) != 0 ? -1 : 1, (ci & 2) != 0 ? -1 : 1,
                         (ci & 4) != 0 ? -1 : 1};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        for (int c = 0; c < 3; ++c) {
          const IntVect p = corner + IntVect{inward[0] * a, inward[1] * b,
                                             inward[2] * c};
          add(p, 0, false);
        }
      }
    }
  }
  if (slack > 0) {
    for (int row = 0; row < 16; ++row) {
      const std::uint64_t h = mix64(opts.seed * 1315423911ULL +
                                    static_cast<std::uint64_t>(row));
      const int j = ib.lo(1) + static_cast<int>(h % static_cast<std::uint64_t>(
                                                        ib.size(1)));
      const int k = ib.lo(2) +
                    static_cast<int>((h >> 16) %
                                     static_cast<std::uint64_t>(ib.size(2)));
      const int c = static_cast<int>((h >> 32) %
                                     static_cast<std::uint64_t>(nComp));
      for (std::int64_t s = 0; s < slack; ++s) {
        add({ib.lo(0) + static_cast<int>(rowLen + s), j, k}, c, true);
      }
    }
  }
  std::uint64_t ctr = opts.seed * 2654435761ULL;
  while (static_cast<int>(slots.size()) < opts.sampleTarget) {
    const std::uint64_t h = mix64(++ctr);
    const IntVect p{
        ib.lo(0) + static_cast<int>(h % static_cast<std::uint64_t>(rowLen)),
        ib.lo(1) + static_cast<int>((h >> 20) %
                                    static_cast<std::uint64_t>(ib.size(1))),
        ib.lo(2) + static_cast<int>((h >> 40) %
                                    static_cast<std::uint64_t>(ib.size(2)))};
    add(p, static_cast<int>((h >> 60) % static_cast<std::uint64_t>(nComp)),
        false);
  }
  return slots;
}

/// Output slots for self-dependence probing: a 3x3x3 lattice of the output
/// region per component (does the kernel accumulate or overwrite?), plus
/// margin corners and pad lanes (does it read prior out-of-region output?).
std::vector<TraceSlot> outputProbeSlots(const TracingFab& out,
                                        const Box& outRegion) {
  const Box ob = out.fab().box();
  const int nComp = out.fab().nComp();
  std::vector<TraceSlot> slots;
  const IntVect lo = outRegion.lo();
  const IntVect hi = outRegion.hi();
  const IntVect mid{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2,
                    (lo[2] + hi[2]) / 2};
  for (int c = 0; c < nComp; ++c) {
    for (const int i : {lo[0], mid[0], hi[0]}) {
      for (const int j : {lo[1], mid[1], hi[1]}) {
        for (const int k : {lo[2], mid[2], hi[2]}) {
          const TraceSlot s{{i, j, k}, c, false};
          if (std::none_of(slots.begin(), slots.end(), [&](const TraceSlot& t) {
                return t.comp == s.comp && t.cell == s.cell;
              })) {
            slots.push_back(s);
          }
        }
      }
    }
  }
  for (int ci = 0; ci < 8; ++ci) {
    slots.push_back({{(ci & 1) != 0 ? ob.hi(0) : ob.lo(0),
                      (ci & 2) != 0 ? ob.hi(1) : ob.lo(1),
                      (ci & 4) != 0 ? ob.hi(2) : ob.lo(2)},
                     0,
                     false});
  }
  const std::int64_t slack = out.fab().pitchSlack();
  for (std::int64_t s = 0; s < std::min<std::int64_t>(slack, 4); ++s) {
    slots.push_back(
        {{ob.lo(0) + static_cast<int>(ob.size(0) + s), ob.lo(1), ob.lo(2)},
         0,
         true});
  }
  return slots;
}

} // namespace

const char* kernelDiagKindName(KernelDiagKind k) {
  switch (k) {
  case KernelDiagKind::Ok:
    return "ok";
  case KernelDiagKind::UndeclaredRead:
    return "undeclared-read";
  case KernelDiagKind::UndeclaredWrite:
    return "undeclared-write";
  case KernelDiagKind::Overdeclared:
    return "overdeclared";
  case KernelDiagKind::NonAffineAccess:
    return "non-affine-access";
  case KernelDiagKind::ContractMismatch:
    return "contract-mismatch";
  }
  return "?";
}

std::string KernelDiag::message() const {
  std::ostringstream os;
  os << "[" << kernelDiagKindName(kind) << "] " << kernel << ": " << stage;
  switch (kind) {
  case KernelDiagKind::Ok:
    os << " contract holds";
    break;
  case KernelDiagKind::UndeclaredRead:
    os << " " << role << " at offset " << fmtVect(offset)
       << " outside the declared footprint";
    break;
  case KernelDiagKind::UndeclaredWrite:
    os << " " << role << " at offset " << fmtVect(offset)
       << " outside the declared write region";
    break;
  case KernelDiagKind::Overdeclared:
    os << " " << role << " declares offset " << fmtVect(offset)
       << " but the kernel never exercises it";
    break;
  case KernelDiagKind::NonAffineAccess:
    os << " " << role << " offset " << fmtVect(offset)
       << " is not a uniform stencil offset";
    break;
  case KernelDiagKind::ContractMismatch:
    os << " " << role << " disagrees with the proven footprint";
    break;
  }
  if (!repro.empty()) {
    os << "; repro: out region " << fmtBox(repro);
  }
  if (!detail.empty()) {
    os << " (" << detail << ")";
  }
  return os.str();
}

std::string kernelStageTag(Stage stage, int dir) {
  if (dir >= 0 && dir < 3) {
    return std::string(kernels::stageName(stage)) + "[d=" + kDirNames[dir] +
           "]";
  }
  return std::string(kernels::stageName(stage)) + "[pipeline]";
}

KernelFootprintModel inferFootprint(const KernelShape& shape,
                                    const ProbeOptions& opts) {
  assert(shape.fn && "kernel shape without a callable");
  KernelFootprintModel m;
  m.kernel = shape.name;
  m.stage = shape.stage;
  m.dir = shape.dir;
  m.pitch = opts.pitch;

  const Box outCells = Box::cube(opts.boxSize, opts.origin);
  const Box outRegion =
      shape.faceOutput ? outCells.faceBox(shape.dir) : outCells;
  m.probeRegion = outRegion;
  const Box inBox = outRegion.grow(kNumGhost + kProbeMargin);
  const Box outBox = outRegion.grow(kOutMargin);
  const std::string stageTag = kernelStageTag(shape.stage, shape.dir);

  TracingFab in;
  TracingFab out;
  in.define(inBox, shape.inComps, opts.pitch, opts.seed);
  out.define(outBox, shape.outComps, opts.pitch,
             opts.seed ^ 0x9E3779B97F4A7C15ULL);

  auto run = [&] {
    shape.fn(in.fab(), out.fab(), outRegion, opts.scale);
    ++m.probes;
  };
  auto pushDiag = [&](KernelDiagKind kind, const std::string& role,
                      const IntVect& offset, const IntVect& witness,
                      std::string detail) {
    KernelDiag d;
    d.kind = kind;
    d.kernel = shape.name;
    d.stage = stageTag;
    d.role = role;
    d.offset = offset;
    d.repro = {witness, witness};
    d.detail = std::move(detail);
    m.probeDiags.push_back(std::move(d));
  };

  // ---- baseline run: the reference output state and the write set.
  run();
  const std::vector<TraceSlot> writeSet = out.changedSinceSnapshot();
  out.captureReference();

  m.writes.role = "write";
  m.writes.outComp = 0;
  m.writes.inComp = -1;
  m.writes.declared = boxPoints(kernels::writeOffsets(
      shape.stage, shape.dir >= 0 ? shape.dir : 0));

  OffsetMap writeObs;
  std::vector<std::unordered_set<std::int64_t>> writtenKeys(
      static_cast<std::size_t>(shape.outComps));
  int padWriteDiags = 0;
  for (const TraceSlot& w : writeSet) {
    if (w.pad) {
      if (padWriteDiags++ < kMaxDiagsPerKind) {
        pushDiag(KernelDiagKind::UndeclaredWrite, "write",
                 w.cell - clampTo(w.cell, outRegion), clampTo(w.cell, outRegion),
                 "write into pitch-pad lane at " + fmtVect(w.cell) + " c" +
                     std::to_string(w.comp));
      }
      continue;
    }
    if (outRegion.contains(w.cell)) {
      recordObs(writeObs, IntVect::zero(), w.cell);
      writtenKeys[static_cast<std::size_t>(w.comp)].insert(cellKey(w.cell));
    } else {
      recordObs(writeObs, w.cell - clampTo(w.cell, outRegion),
                clampTo(w.cell, outRegion));
    }
  }
  finishRole(m.writes, writeObs);

  // Write-coverage gap: a declared output cell the kernel never produced.
  int gapDiags = 0;
  for (int c = 0; c < shape.outComps && gapDiags < kMaxDiagsPerKind; ++c) {
    forEachCell(outRegion, [&](int i, int j, int k) {
      const IntVect p{i, j, k};
      if (gapDiags < kMaxDiagsPerKind &&
          writtenKeys[static_cast<std::size_t>(c)].count(cellKey(p)) == 0) {
        ++gapDiags;
        KernelDiag d;
        d.kind = KernelDiagKind::Overdeclared;
        d.kernel = shape.name;
        d.stage = stageTag;
        d.role = "write";
        d.offset = IntVect::zero();
        d.repro = {p, p};
        d.detail = "declared write region cell " + fmtVect(p) + " c" +
                   std::to_string(c) + " never written";
        m.probeDiags.push_back(std::move(d));
      }
    });
  }

  // ---- self-dependence: does the kernel consume prior output contents?
  m.output.role = "output";
  m.output.outComp = 0;
  m.output.inComp = -1;
  if (shape.outputDep == OutputDep::Accumulate) {
    m.output.declared.push_back(IntVect::zero());
  }
  OffsetMap outObs;
  int outPadDiags = 0;
  for (const TraceSlot& s : outputProbeSlots(out, outRegion)) {
    for (int t = 0; t < opts.trials; ++t) {
      out.restore();
      const Real orig = out.value(s);
      out.set(s, perturbValue(orig, t));
      run();
      for (const TraceSlot& q : out.changedSinceReference()) {
        if (q.cell == s.cell && q.comp == s.comp && q.pad == s.pad) {
          const bool written =
              !s.pad && outRegion.contains(s.cell) &&
              writtenKeys[static_cast<std::size_t>(s.comp)].count(
                  cellKey(s.cell)) != 0;
          if (written) {
            recordObs(outObs, IntVect::zero(), q.cell);
          }
          continue; // otherwise just our own perturbation persisting
        }
        if (q.pad || !outRegion.contains(q.cell)) {
          continue; // the write itself is already diagnosed above
        }
        if (s.pad) {
          if (outPadDiags++ < kMaxDiagsPerKind) {
            pushDiag(KernelDiagKind::UndeclaredRead, "output",
                     s.cell - q.cell, q.cell,
                     "output cell depends on prior contents of pad lane " +
                         fmtVect(s.cell));
          }
          continue;
        }
        recordObs(outObs, s.cell - q.cell, q.cell);
      }
    }
  }
  out.restore();
  finishRole(m.output, outObs);

  // ---- differential read probing.
  for (int oc = 0; oc < shape.outComps; ++oc) {
    for (int ic = 0; ic < shape.inComps; ++ic) {
      RoleFootprint r;
      r.role = roleLabel(oc, ic);
      r.outComp = oc;
      r.inComp = ic;
      r.declared = declaredReadOffsets(shape, oc, ic);
      m.reads.push_back(std::move(r));
    }
  }
  std::map<std::pair<int, int>, OffsetMap> readObs;

  const bool exhaustive =
      opts.exhaustiveSlotLimit > 0 &&
      static_cast<std::int64_t>(in.fab().size()) <= opts.exhaustiveSlotLimit;
  const std::vector<TraceSlot> probeSlots =
      exhaustive ? in.allSlots() : sampleInputSlots(in, outRegion, opts);

  std::vector<std::unordered_set<std::int64_t>> probedKeys(
      static_cast<std::size_t>(shape.inComps));
  for (const TraceSlot& u : probeSlots) {
    if (!u.pad) {
      probedKeys[static_cast<std::size_t>(u.comp)].insert(cellKey(u.cell));
    }
  }

  int padReadDiags = 0;
  for (const TraceSlot& u : probeSlots) {
    const Real orig = in.value(u);
    for (int t = 0; t < opts.trials; ++t) {
      in.set(u, perturbValue(orig, t));
      out.restore();
      run();
      for (const TraceSlot& q : out.changedSinceReference()) {
        if (q.pad || !outRegion.contains(q.cell)) {
          continue; // out-of-region writes are diagnosed via the write set
        }
        if (u.pad) {
          if (padReadDiags++ < kMaxDiagsPerKind) {
            pushDiag(KernelDiagKind::UndeclaredRead, roleLabel(q.comp, u.comp),
                     u.cell - q.cell, q.cell,
                     "output depends on input pitch-pad lane " +
                         fmtVect(u.cell) + " c" + std::to_string(u.comp));
          }
          continue;
        }
        recordObs(readObs[{q.comp, u.comp}], u.cell - q.cell, q.cell);
      }
    }
    in.set(u, orig);
  }
  out.restore();

  for (RoleFootprint& r : m.reads) {
    finishRole(r, readObs[{r.outComp, r.inComp}]);
  }

  // ---- affine uniformity: every observed offset must hold at *every*
  // output cell whose corresponding input slot was probed. A dependence
  // present at some cells and absent at others is not an offset stencil.
  int nonAffineDiags = 0;
  for (const RoleFootprint& r : m.reads) {
    const OffsetMap& obs = readObs[{r.outComp, r.inComp}];
    const auto& probed = probedKeys[static_cast<std::size_t>(r.inComp)];
    const auto& written = writtenKeys[static_cast<std::size_t>(r.outComp)];
    for (const auto& [offset, data] : obs) {
      if (nonAffineDiags >= kMaxDiagsPerKind) {
        break;
      }
      if (data.cells.size() == written.size()) {
        continue; // observed everywhere it could be
      }
      forEachCell(outRegion, [&](int i, int j, int k) {
        const IntVect p{i, j, k};
        if (nonAffineDiags >= kMaxDiagsPerKind ||
            written.count(cellKey(p)) == 0 ||
            probed.count(cellKey(p + offset)) == 0) {
          return;
        }
        if (!std::binary_search(data.cells.begin(), data.cells.end(),
                                cellKey(p))) {
          ++nonAffineDiags;
          pushDiag(KernelDiagKind::NonAffineAccess, r.role, offset, p,
                   "dependence observed at " + fmtVect(data.witness) +
                       " but absent at " + fmtVect(p));
        }
      });
    }
  }
  return m;
}

KernelFootprintModel
inferFootprintAcross(const KernelShape& shape, const std::vector<int>& sizes,
                     const std::vector<grid::Pitch>& pitches,
                     ProbeOptions opts) {
  KernelFootprintModel first;
  bool haveFirst = false;
  std::unordered_set<std::string> diagKeys;
  auto diagKey = [](const KernelDiag& d) {
    return std::string(kernelDiagKindName(d.kind)) + "|" + d.role + "|" +
           fmtVect(d.offset);
  };
  auto compareRole = [&](const RoleFootprint& a, const RoleFootprint& b,
                         const std::string& cfg) {
    if (a.observed == b.observed) {
      return;
    }
    std::vector<IntVect> diff;
    for (const IntVect& o : a.observed) {
      if (std::find(b.observed.begin(), b.observed.end(), o) ==
          b.observed.end()) {
        diff.push_back(o);
      }
    }
    for (const IntVect& o : b.observed) {
      if (std::find(a.observed.begin(), a.observed.end(), o) ==
          a.observed.end()) {
        diff.push_back(o);
      }
    }
    KernelDiag d;
    d.kind = KernelDiagKind::NonAffineAccess;
    d.kernel = first.kernel;
    d.stage = kernelStageTag(first.stage, first.dir);
    d.role = a.role;
    d.offset = diff.empty() ? IntVect::zero() : diff.front();
    d.repro = first.probeRegion;
    d.detail = "observed offset set differs at " + cfg +
               " -> access is size- or pitch-dependent, not affine";
    if (diagKeys.insert(diagKey(d)).second) {
      first.probeDiags.push_back(std::move(d));
    }
  };

  for (const grid::Pitch pitch : pitches) {
    for (const int size : sizes) {
      ProbeOptions o = opts;
      o.boxSize = size;
      o.pitch = pitch;
      KernelFootprintModel m = inferFootprint(shape, o);
      if (!haveFirst) {
        haveFirst = true;
        for (const KernelDiag& d : m.probeDiags) {
          diagKeys.insert(diagKey(d));
        }
        first = std::move(m);
        continue;
      }
      const std::string cfg =
          "boxsize " + std::to_string(size) + " pitch " +
          (pitch == grid::Pitch::Padded ? "padded" : "dense");
      assert(first.reads.size() == m.reads.size());
      for (std::size_t i = 0; i < first.reads.size(); ++i) {
        compareRole(first.reads[i], m.reads[i], cfg);
      }
      compareRole(first.output, m.output, cfg);
      compareRole(first.writes, m.writes, cfg);
      first.probes += m.probes;
      for (KernelDiag& d : m.probeDiags) {
        if (diagKeys.insert(diagKey(d)).second) {
          first.probeDiags.push_back(std::move(d));
        }
      }
    }
  }
  return first;
}

KernelCheckReport checkKernelFootprints(const KernelFootprintModel& m) {
  KernelCheckReport rep;
  rep.kernel = m.kernel;
  rep.probes = m.probes;
  const std::string stageTag = kernelStageTag(m.stage, m.dir);

  auto checkRole = [&](const RoleFootprint& r, KernelDiagKind excessKind) {
    ++rep.rolesChecked;
    for (std::size_t i = 0; i < r.observed.size(); ++i) {
      const IntVect& o = r.observed[i];
      if (std::find(r.declared.begin(), r.declared.end(), o) !=
          r.declared.end()) {
        continue;
      }
      KernelDiag d;
      d.kind = excessKind;
      d.kernel = m.kernel;
      d.stage = stageTag;
      d.role = r.role;
      d.offset = o;
      if (i < r.witnesses.size()) {
        d.repro = {r.witnesses[i], r.witnesses[i]};
      }
      rep.diagnostics.push_back(std::move(d));
    }
    for (const IntVect& o : r.declared) {
      if (std::find(r.observed.begin(), r.observed.end(), o) !=
          r.observed.end()) {
        continue;
      }
      KernelDiag d;
      d.kind = KernelDiagKind::Overdeclared;
      d.kernel = m.kernel;
      d.stage = stageTag;
      d.role = r.role;
      d.offset = o;
      d.repro = m.probeRegion;
      rep.advisories.push_back(std::move(d));
    }
  };

  for (const RoleFootprint& r : m.reads) {
    rep.declaredOffsets += static_cast<int>(r.declared.size());
    checkRole(r, KernelDiagKind::UndeclaredRead);
  }
  checkRole(m.output, KernelDiagKind::UndeclaredRead);
  checkRole(m.writes, KernelDiagKind::UndeclaredWrite);

  for (const KernelDiag& d : m.probeDiags) {
    if (d.kind == KernelDiagKind::Overdeclared) {
      rep.advisories.push_back(d);
    } else {
      rep.diagnostics.push_back(d);
    }
  }
  return rep;
}

ProvenFootprints declaredFootprints() {
  ProvenFootprints p;
  for (int d = 0; d < 3; ++d) {
    p.fused[static_cast<std::size_t>(d)] = kernels::fusedCellReadOffsets(d);
    p.evalFlux1[static_cast<std::size_t>(d)] =
        kernels::evalFlux1ReadOffsets(d);
  }
  return p;
}

ProvenFootprints
extractProven(const std::vector<KernelFootprintModel>& models) {
  ProvenFootprints p = declaredFootprints();
  auto roleHull = [](const KernelFootprintModel& m, int oc, int ic) {
    for (const RoleFootprint& r : m.reads) {
      if (r.outComp == oc && r.inComp == ic) {
        return hullOf(r.observed);
      }
    }
    return Box{};
  };
  for (const KernelFootprintModel& m : models) {
    if (m.dir >= 0 && m.stage == Stage::FusedCell) {
      const Box h = roleHull(m, 0, 0);
      if (!h.empty()) {
        p.fused[static_cast<std::size_t>(m.dir)] = h;
      }
    } else if (m.dir >= 0 && m.stage == Stage::EvalFlux1) {
      const Box h = roleHull(m, 0, 0);
      if (!h.empty()) {
        p.evalFlux1[static_cast<std::size_t>(m.dir)] = h;
      }
    } else if (m.dir < 0) {
      // Pipeline model: out comp 0 (rho) reads comp velocityComp(d) only
      // through direction d's fused stencil — a per-direction isolate.
      for (int d = 0; d < 3; ++d) {
        const Box h = roleHull(m, 0, velocityComp(d));
        if (!h.empty()) {
          p.fused[static_cast<std::size_t>(d)] = h;
        }
      }
    }
  }
  return p;
}

std::vector<KernelDiag>
checkGraphFootprints(const TaskGraphModel& m, const ProvenFootprints& proven) {
  std::vector<KernelDiag> out;

  auto covered = [](const Box& need, const std::vector<Box>& regions) {
    for (const Box& r : regions) {
      if (r.contains(need)) {
        return true;
      }
    }
    for (int k = need.lo(2); k <= need.hi(2); ++k) {
      for (int j = need.lo(1); j <= need.hi(1); ++j) {
        for (int i = need.lo(0); i <= need.hi(0); ++i) {
          const IntVect p{i, j, k};
          bool hit = false;
          for (const Box& r : regions) {
            if (r.contains(p)) {
              hit = true;
              break;
            }
          }
          if (!hit) {
            return false;
          }
        }
      }
    }
    return true;
  };

  auto mismatch = [&](const GraphTask& t, Stage stage, int d, const Box& need,
                      std::string detail) {
    KernelDiag diag;
    diag.kind = KernelDiagKind::ContractMismatch;
    diag.kernel = m.name;
    diag.stage = kernelStageTag(stage, d);
    diag.role = t.label;
    diag.offset = d >= 0 ? (stage == Stage::EvalFlux1
                                ? proven.evalFlux1[static_cast<std::size_t>(d)]
                                : proven.fused[static_cast<std::size_t>(d)])
                               .lo()
                         : IntVect::zero();
    diag.repro = need;
    diag.detail = std::move(detail);
    out.push_back(std::move(diag));
  };

  for (const GraphTask& t : m.tasks) {
    if (t.exchangeOp) {
      continue;
    }
    // Allowed Phi0 hull per source box, accumulated from this task's
    // proven needs — the K3 tightness bound.
    std::map<std::size_t, Box> allowed;

    for (const TaskAccess& w : t.writes) {
      if (w.field == FieldId::Phi1) {
        for (int d = 0; d < 3; ++d) {
          const Box need =
              minkowski(w.region, proven.fused[static_cast<std::size_t>(d)]);
          auto [it, ins] = allowed.try_emplace(w.box, need);
          if (!ins) {
            it->second = hullUnion(it->second, need);
          }
          // Advected components: each written comp c must be readable
          // over the proven fused region of every direction.
          for (int c = w.comp0; c < w.comp0 + w.nComp; ++c) {
            std::vector<Box> regions;
            for (const TaskAccess& r : t.reads) {
              if (r.field == FieldId::Phi0 && r.box == w.box &&
                  r.comp0 <= c && c < r.comp0 + r.nComp) {
                regions.push_back(r.region);
              }
            }
            if (!covered(need, regions)) {
              mismatch(t, Stage::FusedCell, d, need,
                       "task writes Phi1 c" + std::to_string(c) + " over " +
                           fmtBox(w.region) +
                           " but its declared Phi0 reads do not cover the "
                           "proven fused footprint");
            }
          }
          // Velocity component: either read from Phi0 over the proven
          // fused region, or consumed as precomputed face velocities.
          std::vector<Box> velPhi0;
          std::vector<Box> velFaces;
          for (const TaskAccess& r : t.reads) {
            if (r.field == FieldId::Phi0 && r.box == w.box &&
                r.comp0 <= velocityComp(d) &&
                velocityComp(d) < r.comp0 + r.nComp) {
              velPhi0.push_back(r.region);
            }
            if (r.field == FieldId::Velocity && r.box == w.box &&
                r.comp0 <= d && d < r.comp0 + r.nComp) {
              velFaces.push_back(r.region);
            }
          }
          if (!covered(need, velPhi0) &&
              !covered(w.region.faceBox(d), velFaces)) {
            mismatch(t, Stage::FusedCell, d, need,
                     "no Phi0 or precomputed-Velocity read covers the "
                     "proven velocity footprint of direction " +
                         std::string(kDirNames[d]));
          }
        }
      } else if (w.field == FieldId::Velocity) {
        const int d = w.comp0; // velocity faces are stored per direction
        const Box need = minkowski(
            w.region, proven.evalFlux1[static_cast<std::size_t>(d)]);
        auto [it, ins] = allowed.try_emplace(w.box, need);
        if (!ins) {
          it->second = hullUnion(it->second, need);
        }
        std::vector<Box> regions;
        for (const TaskAccess& r : t.reads) {
          if (r.field == FieldId::Phi0 && r.box == w.box &&
              r.comp0 <= velocityComp(d) &&
              velocityComp(d) < r.comp0 + r.nComp) {
            regions.push_back(r.region);
          }
        }
        if (!covered(need, regions)) {
          mismatch(t, Stage::EvalFlux1, d, need,
                   "velocity-precompute task does not read Phi0 c" +
                       std::to_string(velocityComp(d)) +
                       " over the proven EvalFlux1 footprint");
        }
      }
    }

    // Tightness: every Phi0 read must stay inside the proven union hull
    // of the task's writes — beyond it the graph orders (and the cost
    // model prices) ghost cells no proven kernel touches.
    if (allowed.empty()) {
      continue;
    }
    for (const TaskAccess& r : t.reads) {
      if (r.field != FieldId::Phi0) {
        continue;
      }
      const auto it = allowed.find(r.box);
      if (it == allowed.end() || it->second.contains(r.region)) {
        continue;
      }
      KernelDiag diag;
      diag.kind = KernelDiagKind::Overdeclared;
      diag.kernel = m.name;
      diag.stage = kernelStageTag(Stage::FusedCell, -1);
      diag.role = t.label;
      diag.offset = IntVect::zero();
      diag.repro = r.region;
      diag.detail = "Phi0 read " + fmtBox(r.region) +
                    " extends beyond the proven footprint hull " +
                    fmtBox(it->second);
      out.push_back(std::move(diag));
    }
  }
  return out;
}

std::vector<CostNote> overdeclaredNotes(const KernelCheckReport& rep) {
  int unread = 0;
  for (const KernelDiag& d : rep.advisories) {
    if (d.kind == KernelDiagKind::Overdeclared &&
        d.role.rfind("read", 0) == 0) {
      ++unread;
    }
  }
  std::vector<CostNote> notes;
  if (unread > 0) {
    CostNote n;
    n.kind = CostNoteKind::OverdeclaredFootprint;
    n.where = rep.kernel;
    n.actualBytes = unread;
    n.limitBytes = rep.declaredOffsets;
    notes.push_back(n);
  }
  return notes;
}

// ---------------------------------------------------------------------------
// Built-in kernel shapes: scalar and pencil drivers of every pipeline stage
// in every direction, plus the reference pipelines. Each driver feeds the
// real kernels from kernels/exemplar.hpp / kernels/pencil.hpp — the probe
// executes exactly the arithmetic the executors run.

namespace {

namespace pk = kernels::pencil;

std::int64_t strideOf(const FArrayBox& f, int d) {
  return d == 0 ? 1 : (d == 1 ? f.strideY() : f.strideZ());
}

KernelShape stageShape(const char* impl, Stage stage, int dir, int inComps,
                       OutputDep dep, bool faceOutput, KernelFn fn) {
  KernelShape s;
  s.name = std::string(impl) + ":" + kernelStageTag(stage, dir);
  s.stage = stage;
  s.dir = dir;
  s.inComps = inComps;
  s.outComps = 1;
  s.outputDep = dep;
  s.faceOutput = faceOutput;
  s.fn = std::move(fn);
  return s;
}

} // namespace

std::vector<KernelShape> builtinStageShapes() {
  std::vector<KernelShape> shapes;

  for (int d = 0; d < 3; ++d) {
    // EvalFlux1: face average of a cell field (4-point collinear stencil).
    shapes.push_back(stageShape(
        "scalar", Stage::EvalFlux1, d, 1, OutputDep::Overwrite, true,
        [d](const FArrayBox& in, FArrayBox& out, const Box& faces, Real) {
          const std::int64_t s = strideOf(in, d);
          forEachCell(faces, [&](int i, int j, int k) {
            out.dataPtr(0)[out.offset(i, j, k)] = kernels::evalFlux1(
                in.dataPtr(0) + in.offset(i, j, k), s);
          });
        }));
    shapes.push_back(stageShape(
        "pencil", Stage::EvalFlux1, d, 1, OutputDep::Overwrite, true,
        [d](const FArrayBox& in, FArrayBox& out, const Box& faces, Real) {
          const std::int64_t s = strideOf(in, d);
          const int n = faces.size(0);
          for (int k = faces.lo(2); k <= faces.hi(2); ++k) {
            for (int j = faces.lo(1); j <= faces.hi(1); ++j) {
              pk::evalFlux1Pencil(in.dataPtr(0) + in.offset(faces.lo(0), j, k),
                                  s, n,
                                  out.dataPtr(0) +
                                      out.offset(faces.lo(0), j, k));
            }
          }
        }));

    // EvalFlux2: pointwise product of face average and face velocity.
    shapes.push_back(stageShape(
        "scalar", Stage::EvalFlux2, d, 2, OutputDep::Overwrite, true,
        [](const FArrayBox& in, FArrayBox& out, const Box& faces, Real) {
          forEachCell(faces, [&](int i, int j, int k) {
            const std::int64_t o = in.offset(i, j, k);
            out.dataPtr(0)[out.offset(i, j, k)] =
                kernels::evalFlux2(in.dataPtr(0)[o], in.dataPtr(1)[o]);
          });
        }));
    shapes.push_back(stageShape(
        "pencil", Stage::EvalFlux2, d, 2, OutputDep::Overwrite, true,
        [](const FArrayBox& in, FArrayBox& out, const Box& faces, Real) {
          const int n = faces.size(0);
          for (int k = faces.lo(2); k <= faces.hi(2); ++k) {
            for (int j = faces.lo(1); j <= faces.hi(1); ++j) {
              Real* outRow = out.dataPtr(0) + out.offset(faces.lo(0), j, k);
              const std::int64_t o = in.offset(faces.lo(0), j, k);
              pk::copyPencil(in.dataPtr(0) + o, n, outRow);
              pk::fluxPencil(outRow, in.dataPtr(1) + o, n);
            }
          }
        }));

    // FluxDifference: cell += scale * (hi-face flux - lo-face flux).
    shapes.push_back(stageShape(
        "scalar", Stage::FluxDifference, d, 1, OutputDep::Accumulate, false,
        [d](const FArrayBox& in, FArrayBox& out, const Box& cells,
            Real scale) {
          const std::int64_t s = strideOf(in, d);
          forEachCell(cells, [&](int i, int j, int k) {
            const Real* flux = in.dataPtr(0) + in.offset(i, j, k);
            out.dataPtr(0)[out.offset(i, j, k)] +=
                scale * (flux[s] - flux[0]);
          });
        }));
    shapes.push_back(stageShape(
        "pencil", Stage::FluxDifference, d, 1, OutputDep::Accumulate, false,
        [d](const FArrayBox& in, FArrayBox& out, const Box& cells,
            Real scale) {
          const std::int64_t s = strideOf(in, d);
          const int n = cells.size(0);
          for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
            for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
              pk::accumulatePencil(in.dataPtr(0) + in.offset(cells.lo(0), j, k),
                                   s, n, scale,
                                   out.dataPtr(0) +
                                       out.offset(cells.lo(0), j, k));
            }
          }
        }));

    // FusedCell: both faces recomputed from the solution field per cell
    // (input comp 0 = advected field, comp 1 = normal velocity).
    shapes.push_back(stageShape(
        "scalar", Stage::FusedCell, d, 2, OutputDep::Accumulate, false,
        [d](const FArrayBox& in, FArrayBox& out, const Box& cells,
            Real scale) {
          const std::int64_t s = strideOf(in, d);
          forEachCell(cells, [&](int i, int j, int k) {
            const std::int64_t o = in.offset(i, j, k);
            const Real lo =
                kernels::faceFlux(in.dataPtr(0) + o, in.dataPtr(1) + o, s);
            const Real hi = kernels::faceFlux(in.dataPtr(0) + o + s,
                                              in.dataPtr(1) + o + s, s);
            out.dataPtr(0)[out.offset(i, j, k)] += scale * (hi - lo);
          });
        }));
    shapes.push_back(stageShape(
        "pencil", Stage::FusedCell, d, 2, OutputDep::Accumulate, false,
        [d](const FArrayBox& in, FArrayBox& out, const Box& cells,
            Real scale) {
          const std::int64_t s = strideOf(in, d);
          const int n = cells.size(0);
          std::vector<Real> carry(static_cast<std::size_t>(n) + 1);
          std::vector<Real> hi(static_cast<std::size_t>(n) + 1);
          if (d == 0) {
            // Unit-stride direction: one face row covers both faces.
            for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
              for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
                const std::int64_t o = in.offset(cells.lo(0), j, k);
                pk::faceFluxPencil(in.dataPtr(0) + o, in.dataPtr(1) + o, s,
                                   n + 1, hi.data());
                pk::accumulatePencil(hi.data(), 1, n, scale,
                                     out.dataPtr(0) +
                                         out.offset(cells.lo(0), j, k));
              }
            }
            return;
          }
          // Strided directions: the fused executors' carry pattern — the
          // low-face row is computed once per sweep, then each row's
          // high faces roll into the next row's carry.
          const int outerDir = d == 1 ? 2 : 1;
          for (int w = cells.lo(outerDir); w <= cells.hi(outerDir); ++w) {
            IntVect p = cells.lo();
            p[outerDir] = w;
            const std::int64_t lo0 = in.offset(p[0], p[1], p[2]);
            pk::faceFluxPencil(in.dataPtr(0) + lo0, in.dataPtr(1) + lo0, s, n,
                               carry.data());
            for (int v = cells.lo(d); v <= cells.hi(d); ++v) {
              IntVect q = p;
              q[d] = v + 1; // high-face row = next cell row along d
              const std::int64_t oHi = in.offset(q[0], q[1], q[2]);
              pk::faceFluxPencil(in.dataPtr(0) + oHi, in.dataPtr(1) + oHi, s,
                                 n, hi.data());
              IntVect r = p;
              r[d] = v;
              pk::fusedFaceDiffPencil(hi.data(), carry.data(), n, scale,
                                      out.dataPtr(0) +
                                          out.offset(r[0], r[1], r[2]));
            }
          }
        }));
  }
  return shapes;
}

std::vector<KernelShape> builtinPipelineShapes() {
  std::vector<KernelShape> shapes;

  KernelShape ref;
  ref.name = "reference";
  ref.stage = Stage::FusedCell;
  ref.dir = -1;
  ref.inComps = kNumComp;
  ref.outComps = kNumComp;
  ref.outputDep = OutputDep::Accumulate;
  ref.fn = [](const FArrayBox& in, FArrayBox& out, const Box& valid,
              Real scale) {
    kernels::referenceFluxDiv(in, out, valid, scale);
  };
  shapes.push_back(std::move(ref));

  KernelShape naive;
  naive.name = "reference-naive";
  naive.stage = Stage::FusedCell;
  naive.dir = -1;
  naive.inComps = kNumComp;
  naive.outComps = kNumComp;
  naive.outputDep = OutputDep::Accumulate;
  naive.fn = [](const FArrayBox& in, FArrayBox& out, const Box& valid,
                Real scale) {
    kernels::referenceFluxDivNaive(in, out, valid, scale);
  };
  shapes.push_back(std::move(naive));

  return shapes;
}

std::vector<KernelShape> builtinShapes() {
  std::vector<KernelShape> shapes = builtinStageShapes();
  std::vector<KernelShape> pipes = builtinPipelineShapes();
  std::move(pipes.begin(), pipes.end(), std::back_inserter(shapes));
  return shapes;
}

} // namespace fluxdiv::analysis
