#pragma once
// Region algebra for the schedule verifier: box subtraction and coverage
// queries over unions of boxes. The verifier's questions are all of the
// form "is this read region fully inside that union of written regions,
// and if not, which cells are missing?" — answered here with exact
// rectangular decompositions (no rasterization).

#include <vector>

#include "grid/box.hpp"

namespace fluxdiv::analysis {

using grid::Box;

/// Rectangular decomposition of `a` minus `b`: up to six disjoint boxes
/// whose union is exactly the points of `a` not in `b`. Returns {a} when
/// the boxes do not intersect and {} when `b` covers `a`.
std::vector<Box> boxDiff(const Box& a, const Box& b);

/// True if `target` is fully covered by the union of `cover`.
bool covered(const Box& target, const std::vector<Box>& cover);

/// A maximal rectangular piece of `target` not covered by the union of
/// `cover`; the empty box when `target` is fully covered. This is the
/// "violating cell region" reported in diagnostics.
Box firstUncovered(const Box& target, const std::vector<Box>& cover);

} // namespace fluxdiv::analysis
