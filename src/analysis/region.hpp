#pragma once
// Region algebra for the schedule verifier and cost model: box subtraction,
// coverage queries, and union volumes over sets of boxes. The verifier's
// questions are all of the form "is this read region fully inside that
// union of written regions, and if not, which cells are missing?"; the cost
// model's are "how many distinct cells does this union of accesses touch?"
// Both are answered exactly (rectangular decomposition / compressed
// coordinates — no full-resolution rasterization).

#include <cstdint>
#include <vector>

#include "grid/box.hpp"

namespace fluxdiv::analysis {

using grid::Box;

/// Rectangular decomposition of `a` minus `b`: up to six disjoint boxes
/// whose union is exactly the points of `a` not in `b`. Returns {a} when
/// the boxes do not intersect and {} when `b` covers `a`.
std::vector<Box> boxDiff(const Box& a, const Box& b);

/// True if `target` is fully covered by the union of `cover`.
bool covered(const Box& target, const std::vector<Box>& cover);

/// A maximal rectangular piece of `target` not covered by the union of
/// `cover`; the empty box when `target` is fully covered. This is the
/// "violating cell region" reported in diagnostics.
Box firstUncovered(const Box& target, const std::vector<Box>& cover);

/// Exact number of distinct points in the union of `boxes` (each point
/// counted once however many boxes cover it). Empty boxes are ignored.
/// Computed on the compressed-coordinate grid spanned by the boxes' slab
/// boundaries, so cost scales with the number of *distinct* boundaries,
/// not with box volume — tile decompositions of a 128^3 box stay cheap.
///
/// The two derived set measures the cost model needs follow from this one
/// primitive without extra machinery:
///   multiplicity excess  sum(numPts) - unionPts  (recompute volume)
///   |A intersect B|      unionPts(A) + unionPts(B) - unionPts(A ++ B)
std::int64_t unionPts(const std::vector<Box>& boxes);

} // namespace fluxdiv::analysis
