#include "analysis/costmodel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "kernels/exemplar.hpp"

#include "analysis/lower.hpp"
#include "analysis/region.hpp"
#include "harness/machine.hpp"
#include "harness/table.hpp"

namespace fluxdiv::analysis {

namespace {

constexpr double kRealBytes = 8.0;

// ---------------------------------------------------------------------------
// Slot bookkeeping: one component slice of one field is one "slot". All set
// measures (working sets, traffic, recompute) reduce to unionPts() over the
// box lists collected per slot. Private temporaries are kept apart from
// shared fields — they live in per-worker scratch, a different address
// space.
// ---------------------------------------------------------------------------

struct SlotKey {
  FieldId field = FieldId::Phi0;
  StorageClass storage = StorageClass::Shared;
  int comp = 0;

  bool operator<(const SlotKey& o) const {
    return std::tie(field, storage, comp) <
           std::tie(o.field, o.storage, o.comp);
  }
};

using SlotBoxes = std::map<SlotKey, std::vector<Box>>;

void addAccess(SlotBoxes& slots, const Access& a, const IntVect& anchor) {
  if (a.box.empty()) {
    return;
  }
  const Box b =
      a.storage == StorageClass::Private ? a.box.shift(-anchor) : a.box;
  for (int c = a.comp0; c < a.comp0 + a.nComp; ++c) {
    slots[{a.field, a.storage, c}].push_back(b);
  }
}

double slotsBytes(const SlotBoxes& slots) {
  double total = 0;
  for (const auto& [key, boxes] : slots) {
    total += kRealBytes * static_cast<double>(unionPts(boxes));
  }
  return total;
}

/// A region's x-extent rounded up to the allocation pitch multiple: the
/// cache lines a row occupies include its pad lanes (rows are contiguous
/// with their slack), so *resident* footprints grow with the pitch even
/// though the pad lanes are never referenced.
Box padBoxX(const Box& b, int pad) {
  const std::int64_t nx = b.size(0);
  const std::int64_t rounded = (nx + pad - 1) / pad * pad;
  if (rounded == nx) {
    return b;
  }
  IntVect hi = b.hi();
  hi[0] = b.lo(0) + static_cast<int>(rounded) - 1;
  return {b.lo(), hi};
}

/// slotsBytes under an x-pitch of `pad` doubles (working-set pricing).
double slotsBytesPadded(const SlotBoxes& slots, int pad) {
  if (pad <= 1) {
    return slotsBytes(slots);
  }
  double total = 0;
  std::vector<Box> padded;
  for (const auto& [key, boxes] : slots) {
    padded.clear();
    padded.reserve(boxes.size());
    for (const Box& b : boxes) {
      if (!b.empty()) {
        padded.push_back(padBoxX(b, pad));
      }
    }
    total += kRealBytes * static_cast<double>(unionPts(padded));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Scratch anchoring. A serial item that runs many tiles in sequence (the
// OverBoxes overlapped-tile lowering concatenates every tile's pipeline
// into one WorkItem) reuses one tile-sized scratch workspace, not one per
// tile. The lowering tags those stages "tile (x,y,z) ..."; translating
// each tag group's private boxes to a common origin makes successive
// tiles' scratch alias the same slots, which is exactly what the executor
// workspace does.
// ---------------------------------------------------------------------------

std::string scratchGroup(const std::string& stage) {
  if (stage.rfind("tile (", 0) == 0) {
    const auto close = stage.find(") ");
    if (close != std::string::npos) {
      return stage.substr(0, close + 1);
    }
  }
  return {};
}

using AnchorMap = std::map<std::string, IntVect>;

AnchorMap scratchAnchors(const WorkItem& item) {
  AnchorMap anchors;
  for (const auto& stage : item.stages) {
    const std::string group = scratchGroup(stage.stage);
    auto note = [&](const Access& a) {
      if (a.storage != StorageClass::Private || a.box.empty()) {
        return;
      }
      auto [it, inserted] = anchors.emplace(group, a.box.lo());
      if (!inserted) {
        it->second = IntVect::min(it->second, a.box.lo());
      }
    };
    for (const auto& a : stage.reads) {
      note(a);
    }
    for (const auto& a : stage.writes) {
      note(a);
    }
  }
  return anchors;
}

IntVect anchorOf(const AnchorMap& anchors, const std::string& stage) {
  const auto it = anchors.find(scratchGroup(stage));
  return it == anchors.end() ? IntVect::zero() : it->second;
}

// ---------------------------------------------------------------------------
// (a) Working sets.
// ---------------------------------------------------------------------------

struct ItemFootprint {
  double totalBytes = 0;   ///< shared + anchored private, this item alone
  double privateBytes = 0; ///< anchored private scratch of this item
};

ItemFootprint itemFootprint(const WorkItem& item, SlotBoxes& phaseShared,
                            int pad) {
  const AnchorMap anchors = scratchAnchors(item);
  SlotBoxes all;
  SlotBoxes priv;
  for (const auto& stage : item.stages) {
    const IntVect anchor = anchorOf(anchors, stage.stage);
    for (const auto& a : stage.reads) {
      addAccess(all, a, anchor);
      addAccess(a.storage == StorageClass::Private ? priv : phaseShared, a,
                anchor);
    }
    for (const auto& a : stage.writes) {
      addAccess(all, a, anchor);
      addAccess(a.storage == StorageClass::Private ? priv : phaseShared, a,
                anchor);
    }
  }
  return {slotsBytesPadded(all, pad), slotsBytesPadded(priv, pad)};
}

PhaseCost phaseCost(const Phase& phase, int nWorkers, int pad) {
  PhaseCost pc;
  pc.name = phase.name;
  pc.items = static_cast<int>(phase.items.size());
  SlotBoxes shared;
  double maxPrivate = 0;
  for (const auto& item : phase.items) {
    const ItemFootprint fp = itemFootprint(item, shared, pad);
    pc.maxItemBytes = std::max(pc.maxItemBytes, fp.totalBytes);
    maxPrivate = std::max(maxPrivate, fp.privateBytes);
  }
  const int scratchCopies =
      nWorkers > 0 ? std::min(pc.items, nWorkers) : pc.items;
  pc.workingSetBytes =
      slotsBytesPadded(shared, pad) + maxPrivate * scratchCopies;
  return pc;
}

// ---------------------------------------------------------------------------
// (b) Traffic: the cache-window streaming model. The execution-ordered
// stage stream is cut greedily into units of ~LLC capacity; within a unit
// every distinct byte is fetched once (short-range reuse is free), and a
// unit is credited for bytes it shares with the immediately preceding unit
// scaled by how plausibly that unit still fits in cache. Writes pay the
// write-allocate fill (they join the unit's distinct set) plus a
// writeback, unless the next unit dirties the same bytes again.
// docs/cost-model.md derives the equations and states the tolerance.
// ---------------------------------------------------------------------------

struct TrafficUnit {
  SlotBoxes all;
  SlotBoxes written;
  std::map<SlotKey, double> distinct;      ///< bytes, filled after cutting
  std::map<SlotKey, double> writtenBytes;  ///< bytes, filled after cutting
  double weight = 0;        ///< sum of member stages' distinct bytes
  double totalDistinct = 0; ///< sum over `distinct`
};

double stageBytes(const StageExec& stage, const IntVect& anchor) {
  SlotBoxes slots;
  for (const auto& a : stage.reads) {
    addAccess(slots, a, anchor);
  }
  for (const auto& a : stage.writes) {
    addAccess(slots, a, anchor);
  }
  return slotsBytes(slots);
}

std::vector<TrafficUnit> cutTrafficUnits(const ScheduleModel& m,
                                         double capacity) {
  std::vector<TrafficUnit> units;
  TrafficUnit cur;
  for (const auto& phase : m.phases) {
    for (const auto& item : phase.items) {
      const AnchorMap anchors = scratchAnchors(item);
      for (const auto& stage : item.stages) {
        const IntVect anchor = anchorOf(anchors, stage.stage);
        const double bytes = stageBytes(stage, anchor);
        if (cur.weight > 0 && cur.weight + bytes > capacity) {
          units.push_back(std::move(cur));
          cur = {};
        }
        for (const auto& a : stage.reads) {
          addAccess(cur.all, a, anchor);
        }
        for (const auto& a : stage.writes) {
          addAccess(cur.all, a, anchor);
          addAccess(cur.written, a, anchor);
        }
        cur.weight += bytes;
      }
    }
  }
  if (cur.weight > 0) {
    units.push_back(std::move(cur));
  }
  for (auto& u : units) {
    for (const auto& [key, boxes] : u.all) {
      const double v = kRealBytes * static_cast<double>(unionPts(boxes));
      u.distinct[key] = v;
      u.totalDistinct += v;
    }
    for (const auto& [key, boxes] : u.written) {
      u.writtenBytes[key] =
          kRealBytes * static_cast<double>(unionPts(boxes));
    }
  }
  return units;
}

/// Bytes shared between two box lists of the same slot (by inclusion-
/// exclusion on unionPts over the concatenated list).
double overlapBytes(const std::vector<Box>& a, double aBytes,
                    const std::vector<Box>& b, double bBytes) {
  std::vector<Box> both;
  both.reserve(a.size() + b.size());
  both.insert(both.end(), a.begin(), a.end());
  both.insert(both.end(), b.begin(), b.end());
  const double unionBytes =
      kRealBytes * static_cast<double>(unionPts(both));
  return std::max(0.0, aBytes + bBytes - unionBytes);
}

double chargeFills(const TrafficUnit& u, const TrafficUnit* prev,
                   double capacity) {
  // Residency of the previous unit decays once its distinct set outgrows
  // the cache; scale its reuse credit accordingly.
  const double residency =
      prev == nullptr || prev->totalDistinct <= 0
          ? 0.0
          : std::min(1.0, capacity / prev->totalDistinct);
  double fills = 0;
  for (const auto& [key, bytes] : u.distinct) {
    double credit = 0;
    if (residency > 0) {
      const auto pit = prev->all.find(key);
      if (pit != prev->all.end()) {
        credit = residency * overlapBytes(u.all.at(key), bytes, pit->second,
                                          prev->distinct.at(key));
      }
    }
    fills += std::max(0.0, bytes - credit);
  }
  return fills;
}

double chargeWritebacks(const TrafficUnit& u, const TrafficUnit* next,
                        double capacity) {
  // Dirty bytes the *next* unit rewrites are never flushed — provided this
  // unit's footprint still fits, so the lines survive until overwritten.
  // The final unit's dirty bytes similarly stay resident at the end of the
  // evaluation (the model prices one evaluation, like the trace oracle).
  const double residency =
      u.totalDistinct <= 0 ? 0.0
                           : std::min(1.0, capacity / u.totalDistinct);
  double writebacks = 0;
  for (const auto& [key, bytes] : u.writtenBytes) {
    double credit = 0;
    if (next == nullptr) {
      credit = residency * bytes;
    } else {
      const auto nit = next->written.find(key);
      if (nit != next->written.end()) {
        credit =
            residency * overlapBytes(u.written.at(key), bytes, nit->second,
                                     next->writtenBytes.at(key));
      }
    }
    writebacks += std::max(0.0, bytes - credit);
  }
  return writebacks;
}

/// Distinct bytes the whole schedule touches (scratch anchored): the
/// fits-in-cache test. When this fits the LLC, one evaluation fetches
/// every distinct byte exactly once (write-allocate included) and evicts
/// nothing — traffic is the distinct volume itself, writeback-free.
double globalDistinctBytes(const ScheduleModel& m) {
  SlotBoxes all;
  for (const auto& phase : m.phases) {
    for (const auto& item : phase.items) {
      const AnchorMap anchors = scratchAnchors(item);
      for (const auto& stage : item.stages) {
        const IntVect anchor = anchorOf(anchors, stage.stage);
        for (const auto& a : stage.reads) {
          addAccess(all, a, anchor);
        }
        for (const auto& a : stage.writes) {
          addAccess(all, a, anchor);
        }
      }
    }
  }
  return slotsBytes(all);
}

double predictTraffic(const ScheduleModel& m, const CacheSpec& spec) {
  const double capacity =
      static_cast<double>(std::max<std::size_t>(spec.llcBytes, 1));
  const double distinct = globalDistinctBytes(m);
  if (distinct <= capacity) {
    return distinct;
  }
  const std::vector<TrafficUnit> units = cutTrafficUnits(m, capacity);
  double traffic = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    const TrafficUnit* prev = i > 0 ? &units[i - 1] : nullptr;
    const TrafficUnit* next = i + 1 < units.size() ? &units[i + 1] : nullptr;
    traffic += chargeFills(units[i], prev, capacity);
    traffic += chargeWritebacks(units[i], next, capacity);
  }
  return traffic;
}

/// Cold-cache floor: phi0 in once, phi1 filled and written back once.
double compulsoryTraffic(const ScheduleModel& m) {
  SlotBoxes phi0Reads;
  SlotBoxes phi1Writes;
  for (const auto& phase : m.phases) {
    for (const auto& item : phase.items) {
      for (const auto& stage : item.stages) {
        for (const auto& a : stage.reads) {
          if (a.field == FieldId::Phi0) {
            addAccess(phi0Reads, a, IntVect::zero());
          }
        }
        for (const auto& a : stage.writes) {
          if (a.field == FieldId::Phi1) {
            addAccess(phi1Writes, a, IntVect::zero());
          }
        }
      }
    }
  }
  return slotsBytes(phi0Reads) + 2 * slotsBytes(phi1Writes);
}

// ---------------------------------------------------------------------------
// (c) Recomputation volume: temporary values (flux / velocity faces)
// produced by more than one work unit. Work units are items, refined by
// the "tile (x,y,z)" stage tags so the serial overlapped-tile lowering
// (one item running every tile) still exposes its per-tile structure.
// Duplicates within one unit (EvalFlux1 then EvalFlux2 refining the same
// faces) are pipeline staging, not recomputation, and union out.
// ---------------------------------------------------------------------------

bool isRecomputeField(FieldId f) {
  return f == FieldId::Flux || f == FieldId::Velocity;
}

struct RecomputeTally {
  double produced = 0; ///< sum over units of distinct values produced
  double duplicated = 0; ///< produced minus the global distinct count
};

void tallyPhaseRecompute(const Phase& phase, RecomputeTally& tally) {
  // Producer unit -> slot -> boxes, in original (un-anchored) coordinates:
  // recompute is about *where* work repeats, not where scratch lives.
  std::map<std::string, SlotBoxes> units;
  for (std::size_t i = 0; i < phase.items.size(); ++i) {
    for (const auto& stage : phase.items[i].stages) {
      for (const auto& a : stage.writes) {
        if (!isRecomputeField(a.field)) {
          continue;
        }
        const std::string unit =
            std::to_string(i) + "|" + scratchGroup(stage.stage);
        addAccess(units[unit], a, IntVect::zero());
      }
    }
  }
  std::map<SlotKey, std::pair<double, std::vector<Box>>> perSlot;
  for (const auto& [unit, slots] : units) {
    for (const auto& [key, boxes] : slots) {
      auto& [perUnitSum, combined] = perSlot[key];
      perUnitSum += static_cast<double>(unionPts(boxes));
      combined.insert(combined.end(), boxes.begin(), boxes.end());
    }
  }
  for (const auto& [key, entry] : perSlot) {
    const auto& [perUnitSum, combined] = entry;
    tally.produced += perUnitSum;
    tally.duplicated +=
        perUnitSum - static_cast<double>(unionPts(combined));
  }
}

// ---------------------------------------------------------------------------
// (d) Parallelism.
// ---------------------------------------------------------------------------

std::int64_t coneFrontCount(const ConeCheck& cone) {
  if (cone.lattice.empty()) {
    return 0;
  }
  const IntVect extent = cone.lattice.hi() - cone.lattice.lo();
  std::int64_t last = 0;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    last += static_cast<std::int64_t>(cone.skew[d]) * extent[d];
  }
  return last + 1;
}

int coneMaxFrontSize(const ConeCheck& cone) {
  const std::int64_t fronts = coneFrontCount(cone);
  if (fronts <= 0) {
    return 0;
  }
  std::vector<std::int64_t> counts(static_cast<std::size_t>(fronts), 0);
  const IntVect lo = cone.lattice.lo();
  grid::forEachCell(cone.lattice, [&](int i, int j, int k) {
    const std::int64_t w = cone.skew[0] * (i - lo[0]) +
                           cone.skew[1] * (j - lo[1]) +
                           cone.skew[2] * (k - lo[2]);
    if (w >= 0 && w < fronts) {
      ++counts[static_cast<std::size_t>(w)];
    }
  });
  return static_cast<int>(*std::max_element(counts.begin(), counts.end()));
}

// ---------------------------------------------------------------------------
// Notes.
// ---------------------------------------------------------------------------

constexpr double kHighRecomputeThreshold = 0.25;

void addNotes(CostReport& r, const CacheSpec& spec) {
  const PhaseCost* worstPhase = nullptr;
  const PhaseCost* worstParallel = nullptr;
  for (const auto& pc : r.phases) {
    if (worstPhase == nullptr ||
        pc.workingSetBytes > worstPhase->workingSetBytes) {
      worstPhase = &pc;
    }
    if (pc.items > 1 && (worstParallel == nullptr ||
                         pc.maxItemBytes > worstParallel->maxItemBytes)) {
      worstParallel = &pc;
    }
  }
  if (worstPhase != nullptr &&
      worstPhase->workingSetBytes >
          static_cast<double>(spec.llcBytes)) {
    r.capacityBound = true;
    r.notes.push_back({CostNoteKind::CapacityBound, worstPhase->name,
                       worstPhase->workingSetBytes,
                       static_cast<double>(spec.llcBytes), 0});
  }
  if (worstParallel != nullptr &&
      worstParallel->maxItemBytes > static_cast<double>(spec.l2Bytes)) {
    r.notes.push_back({CostNoteKind::ItemExceedsL2, worstParallel->name,
                       worstParallel->maxItemBytes,
                       static_cast<double>(spec.l2Bytes), 0});
  }
  if (r.recomputeFraction > kHighRecomputeThreshold) {
    r.notes.push_back({CostNoteKind::HighRecompute, "overlapped tiles", 0,
                       0, r.recomputeFraction});
  }
}

std::string formatBytesD(double bytes) {
  return harness::formatBytes(
      static_cast<std::size_t>(std::max(0.0, bytes)));
}

} // namespace

const char* costNoteKindName(CostNoteKind k) {
  switch (k) {
  case CostNoteKind::CapacityBound:
    return "capacity-bound";
  case CostNoteKind::ItemExceedsL2:
    return "item-exceeds-l2";
  case CostNoteKind::HighRecompute:
    return "high-recompute";
  case CostNoteKind::OverSynchronized:
    return "over-synchronized";
  case CostNoteKind::OverCommunicated:
    return "over-communicated";
  case CostNoteKind::OverdeclaredFootprint:
    return "overdeclared-footprint";
  case CostNoteKind::DeepHaloRecompute:
    return "deep-halo-recompute";
  case CostNoteKind::DeadStore:
    return "dead-store";
  case CostNoteKind::OverDeepHalo:
    return "over-deep-halo";
  case CostNoteKind::ModelError:
    return "model-error";
  }
  return "?";
}

std::string CostNote::message() const {
  std::ostringstream os;
  os << costNoteKindName(kind) << ": ";
  switch (kind) {
  case CostNoteKind::CapacityBound:
    os << "phase '" << where << "' working set " << formatBytesD(actualBytes)
       << " > LLC " << formatBytesD(limitBytes) << " -> DRAM-streaming";
    break;
  case CostNoteKind::ItemExceedsL2:
    os << "phase '" << where << "' per-item footprint "
       << formatBytesD(actualBytes) << " > L2 " << formatBytesD(limitBytes)
       << " -> tiles stream from shared cache";
    break;
  case CostNoteKind::HighRecompute:
    os << harness::formatDouble(100 * fraction, 1)
       << "% of temporary values produced more than once (" << where << ")";
    break;
  case CostNoteKind::OverSynchronized:
    os << "graph '" << where << "': "
       << static_cast<std::int64_t>(actualBytes) << " of "
       << static_cast<std::int64_t>(limitBytes)
       << " dependency edges removable without losing race-freedom "
          "-> schedule over-synchronized";
    break;
  case CostNoteKind::OverCommunicated:
    os << "plan '" << where << "': "
       << static_cast<std::int64_t>(actualBytes) << " of "
       << static_cast<std::int64_t>(limitBytes)
       << " exchange messages redundant or mergeable per box pair "
          "-> plan over-communicates";
    break;
  case CostNoteKind::OverdeclaredFootprint:
    os << "'" << where << "': "
       << static_cast<std::int64_t>(actualBytes) << " of "
       << static_cast<std::int64_t>(limitBytes)
       << " declared stencil offset(s) never read by the kernel -> cost "
          "model prices ghost cells no kernel touches";
    break;
  case CostNoteKind::DeepHaloRecompute:
    os << "'" << where << "': deepened-ghost recompute + extra halo "
       << formatBytesD(actualBytes) << " > avoided-exchange savings "
       << formatBytesD(limitBytes)
       << " -> comm-avoiding unprofitable at this box size";
    break;
  case CostNoteKind::DeadStore:
    os << "'" << where
       << "': written values are never read by a later op -> the step "
          "program carries dead work";
    break;
  case CostNoteKind::OverDeepHalo:
    os << "'" << where << "': halo width "
       << static_cast<std::int64_t>(actualBytes)
       << " exceeds the proven-minimal "
       << static_cast<std::int64_t>(limitBytes) << " -> +"
       << static_cast<std::int64_t>(fraction)
       << " recomputed cells per run for no accuracy gain";
    break;
  case CostNoteKind::ModelError:
    os << where;
    break;
  }
  return os.str();
}

CacheSpec CacheSpec::fromMachine(const harness::MachineInfo& info) {
  harness::MachineInfo m = info;
  harness::applyCacheFallback(m);
  CacheSpec spec;
  spec.llcBytes = harness::lastLevelCacheBytes(m);
  std::size_t l2 = 0;
  std::size_t line = 0;
  for (const auto& c : m.caches) {
    if (c.level == 2) {
      l2 = std::max(l2, c.sizeBytes);
    }
    if (line == 0) {
      line = c.lineBytes;
    }
  }
  spec.l2Bytes = l2 != 0 ? l2 : std::min<std::size_t>(spec.llcBytes,
                                                      256 * 1024);
  spec.lineBytes = line != 0 ? line : 64;
  return spec;
}

CostReport analyzeCost(const ScheduleModel& m, const CacheSpec& spec,
                       int nWorkers) {
  CostReport r;
  r.variant = m.variant;
  r.validCells = m.valid.numPts();

  const int pad = std::max(1, spec.xPadDoubles);
  std::int64_t totalItems = 0;
  for (const auto& phase : m.phases) {
    PhaseCost pc = phaseCost(phase, nWorkers, pad);
    r.workingSetBytes = std::max(r.workingSetBytes, pc.workingSetBytes);
    r.maxItemBytes = std::max(r.maxItemBytes, pc.maxItemBytes);
    r.maxConcurrency = std::max(r.maxConcurrency, pc.items);
    totalItems += pc.items;
    r.phases.push_back(std::move(pc));
  }
  r.barrierCount = static_cast<std::int64_t>(m.phases.size());
  r.avgConcurrency =
      r.barrierCount > 0
          ? static_cast<double>(totalItems) /
                static_cast<double>(r.barrierCount)
          : 1.0;
  for (const auto& cone : m.cones) {
    r.frontCount += coneFrontCount(cone);
    r.maxConcurrency = std::max(r.maxConcurrency, coneMaxFrontSize(cone));
  }

  r.trafficBytes = predictTraffic(m, spec);
  r.compulsoryBytes = compulsoryTraffic(m);
  r.bytesPerCell =
      r.validCells > 0
          ? r.trafficBytes / static_cast<double>(r.validCells)
          : 0.0;

  RecomputeTally tally;
  for (const auto& phase : m.phases) {
    tallyPhaseRecompute(phase, tally);
  }
  r.recomputeCells = tally.duplicated;
  r.recomputeFraction =
      tally.produced > 0 ? tally.duplicated / tally.produced : 0.0;

  addNotes(r, spec);
  return r;
}

CostReport analyzeCost(const core::VariantConfig& cfg, int boxSize,
                       int nThreads, const CacheSpec& spec) {
  return analyzeCost(lowerVariant(cfg, grid::Box::cube(boxSize), nThreads),
                     spec, nThreads);
}

namespace {

/// Average parallelism after quantizing `conc` independent units onto
/// `nThreads` workers: conc / ceil(conc / nThreads). Equals nThreads when
/// the units divide evenly, dips when the last round runs short-handed.
double usableParallelism(double conc, int nThreads) {
  if (conc <= 1.0) {
    return 1.0;
  }
  const double rounds = std::ceil(conc / nThreads);
  return conc / rounds;
}

/// Per-direction tile counts of `cfg` over an N^3 box (1x1x1 for the
/// untiled families).
std::array<std::int64_t, 3> tileGrid(const core::VariantConfig& cfg,
                                     int boxSize) {
  if (cfg.tileSize <= 0) {
    return {1, 1, 1};
  }
  const std::array<int, 3> ext = core::tileExtents(cfg, boxSize);
  std::array<std::int64_t, 3> n{};
  for (std::size_t d = 0; d < 3; ++d) {
    n[d] = (boxSize + ext[d] - 1) / ext[d];
  }
  return n;
}

/// Widest wavefront (front with the most tiles) of a tile grid under the
/// diagonal ordering tx + ty + tz = w.
std::int64_t maxFrontSize(const std::array<std::int64_t, 3>& n) {
  std::int64_t best = 0;
  for (std::int64_t w = 0; w <= n[0] + n[1] + n[2] - 3; ++w) {
    std::int64_t size = 0;
    for (std::int64_t tz = 0; tz < n[2]; ++tz) {
      for (std::int64_t ty = 0; ty < n[1]; ++ty) {
        const std::int64_t tx = w - tz - ty;
        if (tx >= 0 && tx < n[0]) {
          ++size;
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

} // namespace

std::vector<LevelPolicyCost> analyzeLevelPolicies(
    const core::VariantConfig& cfg, int boxSize, int nBoxes, int nThreads,
    const CacheSpec& spec) {
  const CostReport box = analyzeCost(cfg, boxSize, nThreads, spec);
  const auto grid = tileGrid(cfg, boxSize);
  const std::int64_t tiles = grid[0] * grid[1] * grid[2];
  const std::int64_t fronts = grid[0] + grid[1] + grid[2] - 2;
  const std::int64_t passes =
      cfg.comp == core::ComponentLoop::Outside
          ? static_cast<std::int64_t>(kernels::kNumComp)
          : 1;

  std::vector<LevelPolicyCost> out;
  for (const core::LevelPolicy policy : core::kLevelPolicies) {
    LevelPolicyCost c;
    c.policy = policy;
    c.nBoxes = nBoxes;
    switch (policy) {
    case core::LevelPolicy::BoxSequential:
      // Boxes in sequence; concurrency is whatever the within-box schedule
      // exposes, and every within-box barrier repeats per box.
      c.taskCount = nBoxes;
      c.depth = nBoxes;
      c.maxConcurrency = box.maxConcurrency;
      c.avgConcurrency = box.avgConcurrency;
      c.barrierCount = nBoxes * box.barrierCount;
      break;
    case core::LevelPolicy::BoxParallel:
      c.taskCount = nBoxes;
      c.depth = 1;
      c.maxConcurrency = nBoxes;
      c.avgConcurrency = nBoxes;
      c.barrierCount = 1; // the single join when the graph drains
      break;
    case core::LevelPolicy::Hybrid:
      switch (cfg.family) {
      case core::ScheduleFamily::OverlappedTiles:
        c.taskCount = nBoxes * tiles;
        c.depth = 1;
        c.maxConcurrency = nBoxes * tiles;
        c.avgConcurrency = static_cast<double>(nBoxes * tiles);
        c.barrierCount = 1;
        break;
      case core::ScheduleFamily::BlockedWavefront:
        // Per-box front pipeline (plus the CLO velocity pre-stage); the
        // boxes' pipelines are independent, so the level DAG is one box
        // deep and nBoxes wide.
        c.taskCount =
            nBoxes * (tiles * passes + (passes > 1 ? 1 : 0));
        c.depth = fronts * passes + (passes > 1 ? 1 : 0);
        c.maxConcurrency = nBoxes * maxFrontSize(grid);
        c.avgConcurrency = static_cast<double>(c.taskCount) /
                           static_cast<double>(c.depth);
        c.barrierCount = c.depth;
        break;
      case core::ScheduleFamily::SeriesOfLoops:
      case core::ScheduleFamily::ShiftFuse:
        // No independent intra-box units: hybrid degrades to box-parallel
        // (same fallback exec_level takes).
        c.taskCount = nBoxes;
        c.depth = 1;
        c.maxConcurrency = nBoxes;
        c.avgConcurrency = nBoxes;
        c.barrierCount = 1;
        break;
      }
      break;
    }
    out.push_back(c);
  }
  // Speedup estimate: usable parallelism relative to the sequential
  // policy's, both quantized onto nThreads workers. Deliberately ignores
  // task overhead and memory bandwidth — it ranks policies, it does not
  // predict wall clock (docs/cost-model.md).
  const double seqUsable =
      usableParallelism(out.front().avgConcurrency, nThreads);
  for (LevelPolicyCost& c : out) {
    c.predictedSpeedup =
        usableParallelism(c.avgConcurrency, nThreads) / seqUsable;
  }
  return out;
}

namespace {

// Alpha-model latency of one ghost-exchange message expressed in
// byte-equivalents (~1.5 us at ~10 GB/s). This is the fixed cost
// comm-avoiding buys back: a deep halo always moves MORE bytes than the
// per-stage halos it replaces, so without a latency term CommAvoid could
// never rank first and the trade would not depend on the box size.
constexpr double kExchangeAlphaBytes = 16.0 * 1024;

// Messages per exchange per box: the 26 face/edge/corner neighbors of a
// 3D box (periodic levels keep all 26 as wrap copies).
constexpr double kMessagesPerBox = 26.0;

} // namespace

std::vector<StepFusionCost> analyzeStepFusion(int rhsEvals, int boxSize,
                                              int nBoxes, int eagerOps) {
  rhsEvals = std::max(1, rhsEvals);
  boxSize = std::max(1, boxSize);
  nBoxes = std::max(1, nBoxes);
  const int g = kernels::kNumGhost;
  const double N = boxSize;
  const double fieldBytes = kernels::kNumComp * kRealBytes;

  // shell(x): bytes of an x-deep ghost shell around every box's N^3 valid
  // region — the per-exchange halo volume at depth x.
  const auto shell = [&](int x) {
    const double side = N + 2.0 * x;
    return (side * side * side - N * N * N) * fieldBytes * nBoxes;
  };
  const double alphaPerExchange = kMessagesPerBox * nBoxes *
                                  kExchangeAlphaBytes;

  const int deepDepth = g * rhsEvals;
  // StepGraphExecutor falls back CommAvoid -> Fused when the deepened
  // halo no longer fits next to the box (effectiveFuse()).
  const bool caFeasible = deepDepth <= boxSize;

  // CommAvoid recompute: stage s needs its RHS valid to width
  // w_s = g x (rhsEvals - 1 - s) beyond the box, so it evaluates
  // (N + 2 w_s)^3 - N^3 extra cells (planStepHalos' backward dataflow).
  double recomputeCells = 0;
  for (int s = 0; s < rhsEvals; ++s) {
    const int w = g * (rhsEvals - 1 - s);
    const double side = N + 2.0 * w;
    recomputeCells += (side * side * side - N * N * N) * nBoxes;
  }
  const double validRhsCells = rhsEvals * N * N * N * nBoxes;

  std::vector<StepFusionCost> out;
  for (const core::StepFuse fuse : core::kStepFuseModes) {
    StepFusionCost c;
    c.fuse = fuse;
    const bool deep = fuse == core::StepFuse::CommAvoid && caFeasible;
    c.exchanges = deep ? 1 : rhsEvals;
    c.exchangeDepth = deep ? deepDepth : g;
    c.exchangeBytes = c.exchanges * shell(c.exchangeDepth);
    c.alphaBytes = c.exchanges * alphaPerExchange;
    c.recomputeCells = deep ? recomputeCells : 0;
    c.recomputeFraction = c.recomputeCells / validRhsCells;
    switch (fuse) {
    case core::StepFuse::Eager:
      // Every level-wide sweep of the eager loop is an implicit fork/join:
      // per stage one exchange, one RHS dispatch, and ~2 stage combines.
      c.dispatches = eagerOps > 0 ? eagerOps : 4 * rhsEvals;
      break;
    case core::StepFuse::Staged:
      c.dispatches = rhsEvals; // one graph per stage, split at exchanges
      break;
    case core::StepFuse::Fused:
    case core::StepFuse::CommAvoid:
      c.dispatches = 1; // the whole step is one graph
      break;
    }
    // Price: per-exchange fixed costs + halo bytes moved + the write
    // traffic of recomputed RHS cells (each recomputed cell is produced —
    // written — once more than the staged reference produces it).
    c.costBytes = c.alphaBytes + c.exchangeBytes +
                  c.recomputeCells * fieldBytes;
    if (deep) {
      // What deepening added vs what the avoided exchanges cost: fires
      // exactly when CommAvoid prices worse than Fused.
      const double extra = c.recomputeCells * fieldBytes +
                           (shell(deepDepth) - shell(g));
      const double savings = (rhsEvals - 1) *
                             (shell(g) + alphaPerExchange);
      if (extra > savings) {
        CostNote note;
        note.kind = CostNoteKind::DeepHaloRecompute;
        note.where = "comm-avoiding " + std::to_string(rhsEvals) +
                     "-stage step, box " + std::to_string(boxSize) + "^3";
        note.actualBytes = extra;
        note.limitBytes = savings;
        note.fraction = c.recomputeFraction;
        c.notes.push_back(note);
      }
    }
    out.push_back(std::move(c));
  }

  // Rank by modeled traffic, dispatch count breaking ties (fewer joins
  // wins at equal bytes); stable order keeps kStepFuseModes order for
  // fully tied entries.
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (out[a].costBytes != out[b].costBytes) {
                       return out[a].costBytes < out[b].costBytes;
                     }
                     return out[a].dispatches < out[b].dispatches;
                   });
  for (std::size_t r = 0; r < order.size(); ++r) {
    out[order[r]].rank = static_cast<int>(r) + 1;
  }
  return out;
}

} // namespace fluxdiv::analysis
