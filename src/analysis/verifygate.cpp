#include "analysis/verifygate.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace fluxdiv::analysis {

VerifyGate::VerifyGate(const char* envVar, bool compiledIn) {
  if (!compiledIn) {
    return;
  }
  const char* env = std::getenv(envVar);
  enabled_ = env == nullptr || (std::strcmp(env, "0") != 0 &&
                                std::strcmp(env, "off") != 0 &&
                                std::strcmp(env, "false") != 0);
}

bool VerifyGate::shouldVerify(const std::string& shapeKey) {
  if (!enabled_) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  return seen_.insert(shapeKey).second;
}

std::size_t VerifyGate::verifiedShapes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seen_.size();
}

std::string verifyFailureMessage(std::string header,
                                 const std::vector<std::string>& diags) {
  std::string msg = std::move(header);
  msg += " (" + std::to_string(diags.size()) + " diagnostic(s)):";
  const std::size_t shown = std::min<std::size_t>(diags.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    msg += "\n  " + diags[i];
  }
  if (diags.size() > shown) {
    msg += "\n  (+" + std::to_string(diags.size() - shown) + " more)";
  }
  return msg;
}

} // namespace fluxdiv::analysis
