#pragma once
// Deliberately-broken schedule mutations. Each takes a *legal* lowered
// ScheduleModel and miscompiles it the way a buggy executor or a wrong
// tuning decision would, so the tests (tests/analysis) and the verify tool
// can prove ScheduleVerifier rejects each class of illegality with the
// right diagnostic — not merely accepts the legal ones.

#include <cstddef>

#include "analysis/model.hpp"

namespace fluxdiv::analysis::mutate {

/// Understate the ghost depth on Phi0 (a too-shallow halo exchange).
/// Every variant's EvalFlux1 reads 2 deep, so depth 1 must be rejected
/// with HaloTooShallow.
ScheduleModel shallowHalo(ScheduleModel m);

/// Zero the z component of every wavefront skew (a diagonal that no
/// longer covers the z carry). Rejected with SkewTooSmall naming the
/// carry-z dependence.
ScheduleModel weakSkew(ScheduleModel m);

/// Shrink the x-direction EvalFlux1 recompute region by one face on the
/// high side (an overlapped tile whose interior recomputation is too
/// thin). Rejected with RecomputeUncovered at the first consuming stage.
ScheduleModel thinOverlap(ScheduleModel m);

/// Grow every Phi1 write footprint by one cell (tiles that also commit
/// their overlap region). Concurrent tiles then write intersecting
/// regions: rejected with WriteOverlap naming the two tiles.
ScheduleModel overlappingTileWrites(ScheduleModel m);

/// Remove the barrier after `phase`, merging it with its successor (the
/// classic dropped omp barrier). For the slab-parallel baseline in the z
/// direction this races a slab's flux-difference read against its
/// neighbor's face writes: rejected with ReadWriteRace.
ScheduleModel droppedBarrier(ScheduleModel m, std::size_t phase);

} // namespace fluxdiv::analysis::mutate
