#pragma once
// Deliberately-broken schedule mutations. Each takes a *legal* lowered
// ScheduleModel and miscompiles it the way a buggy executor or a wrong
// tuning decision would, so the tests (tests/analysis) and the verify tool
// can prove ScheduleVerifier rejects each class of illegality with the
// right diagnostic — not merely accepts the legal ones.
//
// The GraphMutation half does the same for lowered *task graphs*
// (analysis/graphcheck.hpp): seeded edge drops, edge reroutes, and
// fringe-footprint shrinks, each predicting the two-task witness
// checkTaskGraph must report.

//
// The CommMutation half miscompiles *exchange plans*
// (analysis/commcheck.hpp): seeded op drops, region shrinks, source
// skews, and send unmatchings, each predicting the labeled two-endpoint
// witness checkCommPlan must report.

#include <cstddef>
#include <cstdint>
#include <string>

#include "analysis/commcheck.hpp"
#include "analysis/graphcheck.hpp"
#include "analysis/kernelcheck.hpp"
#include "analysis/model.hpp"
#include "analysis/stepcheck.hpp"

namespace fluxdiv::analysis::mutate {

/// Understate the ghost depth on Phi0 (a too-shallow halo exchange).
/// Every variant's EvalFlux1 reads 2 deep, so depth 1 must be rejected
/// with HaloTooShallow.
ScheduleModel shallowHalo(ScheduleModel m);

/// Zero the z component of every wavefront skew (a diagonal that no
/// longer covers the z carry). Rejected with SkewTooSmall naming the
/// carry-z dependence.
ScheduleModel weakSkew(ScheduleModel m);

/// Shrink the x-direction EvalFlux1 recompute region by one face on the
/// high side (an overlapped tile whose interior recomputation is too
/// thin). Rejected with RecomputeUncovered at the first consuming stage.
ScheduleModel thinOverlap(ScheduleModel m);

/// Grow every Phi1 write footprint by one cell (tiles that also commit
/// their overlap region). Concurrent tiles then write intersecting
/// regions: rejected with WriteOverlap naming the two tiles.
ScheduleModel overlappingTileWrites(ScheduleModel m);

/// Remove the barrier after `phase`, merging it with its successor (the
/// classic dropped omp barrier). For the slab-parallel baseline in the z
/// direction this races a slab's flux-difference read against its
/// neighbor's face writes: rejected with ReadWriteRace.
ScheduleModel droppedBarrier(ScheduleModel m, std::size_t phase);

/// A seeded task-graph miscompilation plus the diagnostic it must provoke.
/// `expect == Ok` means the graph offered no candidate for this mutation
/// class (e.g. an edge-free box-parallel run() graph has nothing to drop);
/// callers skip those. Otherwise checkTaskGraph(model) must report a
/// diagnostic of kind `expect` whose witness pair is (taskA, taskB)
/// (normalized taskA < taskB for the race kinds; reader/op for
/// ReadUncovered).
struct GraphMutation {
  TaskGraphModel model;
  std::string what; ///< human description of the injected bug
  int taskA = -1;
  int taskB = -1;
  DiagnosticKind expect = DiagnosticKind::Ok;
};

/// Drop one dependency edge that directly orders a conflicting task pair
/// (and is not shadowed by an alternate path) — the classic forgotten
/// addDep. Seed selects among candidates. Expected: WriteOverlap or
/// ReadWriteRace naming the pair.
GraphMutation dropGraphEdge(const TaskGraphModel& m, std::uint64_t seed);

/// Reroute such an edge to an unrelated task — the classic off-by-one in
/// a dependency loop (edge count stays the same, ordering is still lost).
/// Expected: same diagnostic as dropGraphEdge.
GraphMutation rerouteGraphEdge(const TaskGraphModel& m,
                               std::uint64_t seed);

/// Shrink one exchange-op task's ghost write by its outermost layer (a
/// halo fill that under-copies). Requires a runStep()-style graph
/// (ghostsPreExchanged == false). Expected: ReadUncovered naming the
/// first starved reader and the op.
GraphMutation shrinkGhostWrite(const TaskGraphModel& m,
                               std::uint64_t seed);

/// A seeded exchange-plan miscompilation plus the diagnostics it must
/// provoke. `expect == Ok` means the plan offered no candidate for this
/// mutation class (e.g. an empty plan has nothing to drop); callers skip
/// those. Otherwise checkCommPlan(model) must report a diagnostic of
/// kind `expect` whose (opA, opB) witness labels equal
/// (witnessA, witnessB) — empty strings mean "don't care" — and, when
/// `expectAlso != Ok`, a second diagnostic of that kind: the two
/// endpoints of the broken conversation each produce their half of the
/// evidence.
struct CommMutation {
  CommPlanModel model;
  std::string what; ///< human description of the injected bug
  CommDiagKind expect = CommDiagKind::Ok;
  CommDiagKind expectAlso = CommDiagKind::Ok;
  std::string witnessA;
  std::string witnessB;
};

/// Delete one op outright — the classic skipped neighbor in a plan
/// build. Expected: GhostGap naming the starved halo and the
/// geometry-derived send that should have fed it, plus UnmatchedRecv
/// for the send side.
CommMutation dropCommOp(const CommPlanModel& m, std::uint64_t seed);

/// Shave the outermost ghost layer off one op's dest region (a halo
/// fill that under-copies; needs nghost >= 2 for a candidate).
/// Expected: GhostGap over the shaved layer, plus ExtentMismatch between
/// the shrunken recv and the full-extent derived send.
CommMutation shrinkCommRegion(const CommPlanModel& m, std::uint64_t seed);

/// Skew one op's source shift by one cell (reading the neighbor's cells
/// off by one — the classic wrap-arithmetic bug). Expected:
/// ExtentMismatch reporting the shift disagreement; when no skew
/// direction keeps the source inside the valid region, SourceInvalid
/// fires as well.
CommMutation skewCommSource(const CommPlanModel& m, std::uint64_t seed);

/// Repoint one op's source at an unrelated box (send posted from the
/// wrong rank; needs >= 2 boxes). Expected: UnmatchedSend at the
/// receiver plus UnmatchedRecv for the original sender's now-orphaned
/// send — the two-endpoint witness.
CommMutation unmatchCommSend(const CommPlanModel& m, std::uint64_t seed);

/// A seeded kernel-footprint miscompilation plus the diagnostics it must
/// provoke. The mutations edit an *inferred* KernelFootprintModel the way
/// a miscompiled kernel (observed set drifts) or a stale contract
/// (declared set drifts) would, so the tests and the kernelcheck tool can
/// prove checkKernelFootprints rejects each class with the right witness.
/// `expect == Ok` means the model offered no candidate (e.g. no role with
/// a declared footprint); callers skip those. Otherwise the check must
/// report a diagnostic of kind `expect` with role `role` and offset
/// `offset`; when `expectAlso != Ok`, an advisory of that kind for the
/// same role must fire as well.
struct KernelMutation {
  KernelFootprintModel model;
  std::string what; ///< human description of the injected bug
  KernelDiagKind expect = KernelDiagKind::Ok;
  KernelDiagKind expectAlso = KernelDiagKind::Ok;
  std::string role;
  grid::IntVect offset;
};

/// Widen one read role's observed set by one offset just outside the
/// declared hull — a kernel that reads one cell past its contract (the
/// classic <= vs < loop bound). Expected: UndeclaredRead at that offset.
KernelMutation widenKernelRead(const KernelFootprintModel& m,
                               std::uint64_t seed);

/// Shift one read role's entire observed set by +e_d — a kernel indexing
/// off by one whole cell (the classic face/cell confusion). Expected:
/// UndeclaredRead at the shifted high end, plus an Overdeclared advisory
/// at the now-unexercised low end.
KernelMutation shiftKernelStencil(const KernelFootprintModel& m,
                                  std::uint64_t seed);

/// Drop one declared-and-exercised offset from a read role's declared set
/// — a stale footprint contract after a stencil widening. Expected:
/// UndeclaredRead at the forgotten offset.
KernelMutation forgetDeclaredOffset(const KernelFootprintModel& m,
                                    std::uint64_t seed);

/// A seeded step-program/halo-plan miscompilation plus the verdict it must
/// provoke from checkStepProgram (analysis/stepcheck.hpp). `valid == false`
/// means the program offered no candidate for this mutation class (e.g. a
/// plan with no kept exchange has nothing to drop); callers skip those.
///
/// Check the mutation with
///   StepCheckOptions o; if (m.useReference) o.reference = &m.reference;
///   checkStepProgram(m.prog, fuse, m.plan, o)
/// When `expectAdvisory` is false the report's FIRST diagnostic must have
/// kind `expect` and op `witnessOp`. When true the report must instead be
/// clean (ok()) but carry an OverDeepHalo advisory at `witnessOp` whose
/// proven minimum equals `expectMinWidth`.
struct StepMutation {
  core::StepProgram prog;      ///< program to check (mutated for reorder/skew)
  core::StepHaloPlan plan;     ///< plan to check under (mutated for the rest)
  core::StepProgram reference; ///< unmutated program (reorder/skew only)
  bool useReference = false;   ///< pass `reference` via StepCheckOptions
  bool valid = false;          ///< false: no candidate for this class
  std::string what;            ///< human description of the injected bug
  StepDiagKind expect = StepDiagKind::ValueMismatch;
  int witnessOp = -1;          ///< predicted first-failure / advisory op
  bool expectAdvisory = false; ///< deepenStepHalo: expect advisory, not diag
  int expectMinWidth = -1;     ///< deepen: the width S3 must prove minimal
};

/// Drop one kept halo exchange from the plan outright (width -> -1) — the
/// classic forgotten exchange before a stage RHS. Expected: ValueMismatch
/// at the first later op whose written interior is fed by the now-stale
/// ghosts (predicted by an independent forward staleness pass).
StepMutation dropStepExchange(const core::StepProgram& prog,
                              core::StepFuse fuse, std::uint64_t seed);

/// Shave one ghost layer off one kept exchange (width w -> w-1) — the
/// under-provisioned comm-avoiding halo. Expected: ValueMismatch at the
/// first op where the missing layer reaches a written interior cell; this
/// is exactly the width-minimality direction of the S3 tightness proof.
StepMutation shallowStepHalo(const core::StepProgram& prog,
                             core::StepFuse fuse, std::uint64_t seed);

/// Swap one adjacent pair of genuinely conflicting ops (one writes a slot
/// the other touches) — the classic stage-combine emitted before its RHS.
/// Checked against the unmutated program as reference. Expected: a
/// diagnostic at the first swapped index — ReadBeforeWrite when the
/// hoisted op now reads a never-written stage temp, ValueMismatch
/// otherwise.
StepMutation reorderStepOps(const core::StepProgram& prog,
                            core::StepFuse fuse, std::uint64_t seed);

/// Perturb one combine coefficient by a relative 1e-12 (a wrong Butcher
/// tableau entry). Checked against the unmutated program as reference.
/// Expected: ValueMismatch at the skewed op itself.
StepMutation skewStepCoeff(const core::StepProgram& prog,
                           core::StepFuse fuse, std::uint64_t seed);

/// Deepen one op's halo width by a layer (width w -> w+1, growing plan
/// depth if needed) — the over-provisioned halo that silently recomputes.
/// S1 still holds, so expected: a clean report carrying an OverDeepHalo
/// advisory at the op with proven minimum = the original width.
StepMutation deepenStepHalo(const core::StepProgram& prog,
                            core::StepFuse fuse, std::uint64_t seed);

} // namespace fluxdiv::analysis::mutate
