#pragma once
// analysis/stepcheck: the whole-step semantic-equivalence prover
// (docs/static-analysis.md, "stepcheck"). The top layer of the proof
// pyramid: schedules (verifier) -> task graphs (graphcheck) -> comm plans
// (commcheck) -> kernel contracts (kernelcheck) -> whole-step semantics
// (this file). It interprets a core::StepProgram symbolically — per slot,
// per *ghost/interior layer* — building hash-consed provenance
// expressions for every value the op chain produces, and proves that the
// fuse transforms of core::StepGraphExecutor cannot change the answer:
//
//   S1 equivalence   under the fuse mode's StepHaloPlan, every
//                    valid-region layer of every slot carries the same
//                    provenance expression as under eager semantics —
//                    including that CommAvoid's halo *recomputation*
//                    reproduces exactly what the dropped exchanges would
//                    have delivered. Failure carries a minimal witness
//                    (first op whose written interior diverges, deepest
//                    diverging layer, a concrete witness cell).
//   S2 liveness      no op reads a slot layer that was never written
//                    (ReadBeforeWrite); ops whose written values are
//                    never consumed raise DeadStore / DeadExchange
//                    advisories.
//   S3 tightness     every planStepHalos width is minimal: width-1
//                    provably breaks S1. A width that still passes when
//                    shrunk raises an OverDeepHalo advisory priced in
//                    recomputed cells (surfaced by fluxdiv_advisor).
//   S4 rebind        stepSignature() digests (program, fuse, layout,
//                    physics) into the key the executor-cache rebind
//                    paths must match before reusing a captured graph
//                    (StepGraphExecutor and serve::SolveService check it).
//
// The abstraction: within one box, a value's provenance depends only on
// its *layer* — L-inf ghost depth (layer >= 1) or interior distance to
// the valid-region boundary (layer <= 0) — because programs start from a
// layer-uniform field and every op (stencil, exchange mirror, pointwise
// combine) maps layer-uniform inputs to layer-uniform outputs. Each slot
// is an ordered list of layer bands sharing one expression; an exchange
// fills ghost layer L with the interior expression at layer 1-L (what the
// neighbor's valid cells hold); an RHS evaluation at layer L reads the
// window [L-g, L+g]. Both the fuse-mode run and the eager reference run
// intern expressions into one table, so S1 is a per-layer id comparison.
//
// Note CommAvoid's planStepHalos deliberately drops BoundaryFill ops
// (width -1). For programs that contain them the checker duly reports the
// S1 break — proving *why* StepGraphExecutor::effectiveFuse falls back to
// Fused on boundary conditions rather than asserting it.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/stepprogram.hpp"
#include "grid/box.hpp"
#include "grid/real.hpp"

namespace fluxdiv::analysis {

struct CostNote; // costmodel.hpp

enum class StepDiagKind {
  ValueMismatch,   ///< S1: interior provenance diverges from eager
  ReadBeforeWrite, ///< S2: op reads a never-written stage-slot layer
  StorageExceeded, ///< plan inconsistency: exchange deeper than its depth
};
const char* stepDiagKindName(StepDiagKind kind);

/// One stepcheck failure with its minimal witness: `op` is the first
/// program op whose written interior diverges (or performs the bad read),
/// `layer` the deepest diverging layer (<= 0: interior distance to the
/// valid boundary), `cell` a concrete witness cell of box 0.
struct StepDiagnostic {
  StepDiagKind kind = StepDiagKind::ValueMismatch;
  int op = -1;
  int slot = 0;
  int layer = 0;
  grid::IntVect cell{0, 0, 0};
  std::string detail;

  [[nodiscard]] std::string message() const;
};

enum class StepNoteKind {
  DeadStore,    ///< op's written values are never read (S2)
  DeadExchange, ///< exchange fills ghosts nothing ever reads (S2)
  OverDeepHalo, ///< plan width not minimal; shrinking keeps S1 (S3)
};
const char* stepNoteKindName(StepNoteKind kind);

struct StepAdvisory {
  StepNoteKind kind = StepNoteKind::DeadStore;
  int op = -1;
  int slot = 0;
  int width = 0;    ///< planned width (OverDeepHalo)
  int minWidth = 0; ///< proven-minimal width: minWidth-1 breaks S1
  /// Extra cells recomputed (or ghost cells filled) per run because of
  /// the over-deep width, over opts.nBoxes boxes of side opts.boxSize.
  long long recomputeCells = 0;

  [[nodiscard]] std::string message() const;
};

struct StepCheckOptions {
  int boxSize = 16; ///< cubic box side for witness cells and pricing
  int nBoxes = 1;   ///< boxes, for OverDeepHalo pricing
  bool checkTightness = true; ///< run S3 (quadratic in program length)
  /// Compare against this program's eager run instead of `prog`'s own
  /// (mutation testing: the skew/reorder mutants perturb the program and
  /// must diverge from the *unperturbed* reference). Must have the same
  /// op count as `prog`; null means self-reference.
  const core::StepProgram* reference = nullptr;
};

struct StepCheckReport {
  core::StepFuse fuse = core::StepFuse::Staged;
  std::vector<StepDiagnostic> diagnostics;
  std::vector<StepAdvisory> advisories;
  std::size_t exprCount = 0; ///< hash-consed provenance DAG size
  int planDepth = 0;         ///< deepest kept exchange of the plan

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Prove S1/S2/S3 for `prog` under `plan` (as fuse mode `fuse` would run
/// it) against the eager reference semantics. The two-argument overload
/// plans the halos itself with core::planStepHalos.
StepCheckReport checkStepProgram(const core::StepProgram& prog,
                                 core::StepFuse fuse,
                                 const core::StepHaloPlan& plan,
                                 const StepCheckOptions& opts = {});
StepCheckReport checkStepProgram(const core::StepProgram& prog,
                                 core::StepFuse fuse,
                                 const StepCheckOptions& opts = {});

/// Convert a report's advisories to cost-model notes (DeadStore /
/// OverDeepHalo CostNoteKind) for fluxdiv_advisor --scheme; `prog` is
/// the checked program, for op labels.
std::vector<CostNote> stepCheckNotes(const StepCheckReport& report,
                                     const core::StepProgram& prog);

/// S4: the layout/physics half of the rebind signature — everything
/// StepGraphExecutor's capture key holds beyond the program itself.
struct StepShapeKey {
  grid::Box domainBox;
  std::array<bool, grid::SpaceDim> periodic{};
  grid::IntVect boxSize{0, 0, 0};
  int nGhost = 0;
  int nComp = 0;
  grid::Real invDx = 0.0;
  grid::Real dissipation = 0.0;
  bool hasBoundary = false;
};

/// FNV-1a digest of (program ops, fuse, shape key). The executor cache
/// stores it at capture time and re-derives it on every layout-keyed
/// rebind; a mismatch means the cache was about to reuse a graph for a
/// shape it was never proven for (std::logic_error at the gate).
std::uint64_t stepSignature(const core::StepProgram& prog,
                            core::StepFuse fuse, const StepShapeKey& key);
std::string stepSignatureHex(std::uint64_t signature);

} // namespace fluxdiv::analysis
