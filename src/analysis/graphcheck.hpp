#pragma once
// Static race verifier over lowered task graphs (docs/static-analysis.md,
// "Task-graph verification"). Where ScheduleVerifier (verifier.hpp) proves
// the *sequential per-box loop schedules* legal, this pass proves the
// *concurrent layer* legal: the (box, phase/tile) task graphs the level
// executor (core/exec_level) hands to the work-stealing TaskPool,
// including runStep()'s interior/halo-fringe split and the async
// ghost-exchange copy-op tasks.
//
// The executor mirrors every graph it builds into a TaskGraphModel — one
// node per task with its exact rectangular read/write footprints (the same
// per-stage regions lower.cpp declares, via kernels/footprint.hpp) — and
// checkTaskGraph() then proves:
//
//   G1 (acyclic)        the dependency edges admit a topological order.
//   G2 (ordered races)  every pair of tasks with overlapping write/write
//                       or read/write footprints is ordered by the
//                       happens-before relation (bitset transitive closure
//                       over each weakly-connected component, so 64-box
//                       levels stay fast: cross-component pairs share no
//                       edges at all and must simply not conflict).
//   G3 (ghost coverage) when the graph itself performs the exchange
//                       (ghostsPreExchanged == false), every ghost-region
//                       read is covered by the union of exchange-op writes
//                       that happen-before the reader.
//
// Violations come back as the same structured Diagnostic the schedule
// verifier uses, naming both tasks and a witness cell region. The checker
// also flags *over*-synchronization — edges whose removal provably keeps
// the graph race-free — as advisory notes feeding the cost model's
// parallelism metrics (advisor CostNoteKind::OverSynchronized).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model.hpp"
#include "analysis/verifier.hpp"

namespace fluxdiv::analysis {

/// One rectangular access of a task. Unlike the per-box Access of
/// model.hpp, a task access is qualified by the index of the LevelData box
/// (or per-box cache) it touches: phi0 of box 3 and phi0 of box 5 are
/// distinct storage. Cache regions are in slot space (taskSlotBox).
struct TaskAccess {
  FieldId field = FieldId::Phi0;
  std::size_t box = 0; ///< owning box of the fab / per-box cache
  /// Storage slot for multi-LevelData graphs (core/stepgraph.hpp): whole-RK
  /// step graphs touch several LevelData objects (u plus the stage
  /// temporaries), and slot 3's box 2 is distinct storage from slot 0's
  /// box 2 even though both model as FieldId::Phi0. Single-level graphs
  /// leave this 0.
  int slot = 0;
  int comp0 = 0;
  int nComp = 1;
  Box region;

  /// True if the two accesses can touch the same memory.
  [[nodiscard]] bool overlaps(const TaskAccess& o) const {
    return field == o.field && box == o.box && slot == o.slot &&
           comp0 < o.comp0 + o.nComp && o.comp0 < comp0 + nComp &&
           region.intersects(o.region);
  }
};

/// One task of the lowered graph: label for diagnostics, exact footprints,
/// outgoing dependency edges. `exchangeOp` marks the ghost-exchange copy
/// tasks whose Phi0 writes satisfy the G3 coverage rule. `orderingOnly`
/// marks tasks that exist purely to sequence the graph (e.g. the step
/// graphs' shadow-epoch barriers): their conservative whole-fab footprints
/// still participate in G2 ordering, but G3 neither demands coverage for
/// their reads nor accepts their writes as ghost coverage.
struct GraphTask {
  std::string label;
  std::vector<TaskAccess> reads;
  std::vector<TaskAccess> writes;
  std::vector<int> successors;
  bool exchangeOp = false;
  bool orderingOnly = false;
};

/// The analysis-side mirror of one core::TaskGraph, built by the level
/// executor from the same code path that builds the executable graph (so
/// the model cannot drift from what actually runs).
struct TaskGraphModel {
  std::string name;           ///< variant + policy + graph kind
  bool ghostsPreExchanged = true; ///< run(): phi0 ghosts current at start
  std::vector<Box> validBoxes;    ///< per-box valid regions (G3)
  std::vector<GraphTask> tasks;

  int addTask(std::string label);
  void addEdge(int before, int after);
  [[nodiscard]] std::size_t edgeCount() const;
  [[nodiscard]] const std::string& label(int task) const {
    return tasks[static_cast<std::size_t>(task)].label;
  }
};

/// An advisory over-synchronization finding: removing `before -> after`
/// provably keeps the graph race-free (G2/G3 still hold).
struct RemovableEdge {
  int before = -1;
  int after = -1;
  std::string reason;
};

/// Result of one checkTaskGraph() pass. `diagnostics` is empty iff the
/// graph is provably race-free; `removable` is advisory only.
struct GraphCheckReport {
  std::string graph; ///< TaskGraphModel::name
  std::vector<Diagnostic> diagnostics;
  std::vector<RemovableEdge> removable;
  std::int64_t taskCount = 0;
  std::int64_t edgeCount = 0;
  std::int64_t componentCount = 0; ///< weakly-connected components
  std::int64_t criticalPath = 0;   ///< longest dependency chain, in tasks

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Verify G1-G3 over `m`. With `findRemovable`, also run the
/// over-synchronization pass (quadratic in component size per candidate
/// edge; the runtime gate leaves it off, the CLI/advisor turn it on).
GraphCheckReport checkTaskGraph(const TaskGraphModel& m,
                                bool findRemovable = false);

/// Co-dimension cache field for direction d (CacheX / CacheY / CacheZ).
FieldId taskCacheField(int d);

/// Slot region of the co-dimension cache for direction d over cell region
/// `r`: the masked direction is projected out of slot space (same
/// convention as lower.cpp's cache accesses).
Box taskSlotBox(int d, const Box& r);

} // namespace fluxdiv::analysis
