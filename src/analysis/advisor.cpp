#include "analysis/advisor.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "analysis/lower.hpp"
#include "harness/table.hpp"

namespace fluxdiv::analysis {

namespace {

/// Strict ordering for the ranking: traffic, then recompute, then
/// available concurrency (more is better), then name for determinism.
bool rankedBefore(const RankedVariant& a, const RankedVariant& b) {
  return std::make_tuple(a.cost.trafficBytes, a.cost.recomputeFraction,
                         -a.cost.maxConcurrency, a.cost.variant) <
         std::make_tuple(b.cost.trafficBytes, b.cost.recomputeFraction,
                         -b.cost.maxConcurrency, b.cost.variant);
}

} // namespace

CostReport ScheduleAdvisor::analyze(const core::VariantConfig& cfg,
                                    int boxSize, int nThreads) const {
  return analyzeCost(cfg, boxSize, nThreads, spec_);
}

std::vector<RankedVariant>
ScheduleAdvisor::rank(int boxSize, int nThreads,
                      bool includeExtensions) const {
  std::vector<RankedVariant> ranked;
  for (const auto& cfg :
       core::enumerateVariants(boxSize, includeExtensions)) {
    if (!cfg.validFor(boxSize)) {
      continue;
    }
    ranked.push_back({cfg, analyze(cfg, boxSize, nThreads)});
  }
  std::sort(ranked.begin(), ranked.end(), rankedBefore);
  return ranked;
}

TileAdvice ScheduleAdvisor::recommendBlockedTile(int boxSize,
                                                 int nThreads) const {
  std::vector<TileAdvice> fitsL2;
  std::vector<TileAdvice> fitsLlc;
  std::vector<TileAdvice> all;
  for (const int tileSize : core::kTileSizes) {
    if (tileSize >= boxSize) {
      continue;
    }
    for (const auto comp :
         {core::ComponentLoop::Outside, core::ComponentLoop::Inside}) {
      const auto cfg = core::makeBlockedWF(
          tileSize, core::ParallelGranularity::WithinBox, comp);
      TileAdvice advice{cfg, analyze(cfg, boxSize, nThreads), {}};
      all.push_back(advice);
      if (advice.cost.maxItemBytes <= static_cast<double>(spec_.llcBytes)) {
        fitsLlc.push_back(advice);
        if (advice.cost.maxItemBytes <=
            static_cast<double>(spec_.l2Bytes)) {
          fitsL2.push_back(advice);
        }
      }
    }
  }
  const auto lessTraffic = [](const TileAdvice& a, const TileAdvice& b) {
    return a.cost.trafficBytes < b.cost.trafficBytes;
  };
  const auto lessFootprint = [](const TileAdvice& a, const TileAdvice& b) {
    return a.cost.maxItemBytes < b.cost.maxItemBytes;
  };

  TileAdvice best;
  std::ostringstream why;
  if (!fitsL2.empty()) {
    best = *std::min_element(fitsL2.begin(), fitsL2.end(), lessTraffic);
    why << "tile footprint " << harness::formatBytes(static_cast<std::size_t>(
               best.cost.maxItemBytes))
        << " fits L2 ("
        << harness::formatBytes(spec_.l2Bytes)
        << "); lowest predicted traffic among L2-resident tiles";
  } else if (!fitsLlc.empty()) {
    best = *std::min_element(fitsLlc.begin(), fitsLlc.end(), lessTraffic);
    why << "no tile fits L2; footprint "
        << harness::formatBytes(
               static_cast<std::size_t>(best.cost.maxItemBytes))
        << " fits LLC (" << harness::formatBytes(spec_.llcBytes)
        << ") with the lowest predicted traffic";
  } else if (!all.empty()) {
    best = *std::min_element(all.begin(), all.end(), lessFootprint);
    why << "no blocked-wavefront tile fits the LLC ("
        << harness::formatBytes(spec_.llcBytes)
        << "); smallest footprint chosen";
  } else {
    why << "box size " << boxSize
        << " too small for any registry tile size";
  }
  best.rationale = why.str();
  return best;
}

} // namespace fluxdiv::analysis
