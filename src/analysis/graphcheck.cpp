#include "analysis/graphcheck.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "analysis/region.hpp"
#include "analysis/region_ops.hpp"

namespace fluxdiv::analysis {

FieldId taskCacheField(int d) {
  return d == 0 ? FieldId::CacheX
                : (d == 1 ? FieldId::CacheY : FieldId::CacheZ);
}

Box taskSlotBox(int d, const Box& r) {
  IntVect lo = r.lo();
  IntVect hi = r.hi();
  lo[d] = 0;
  hi[d] = 0;
  return {lo, hi};
}

int TaskGraphModel::addTask(std::string label) {
  GraphTask t;
  t.label = std::move(label);
  tasks.push_back(std::move(t));
  return static_cast<int>(tasks.size()) - 1;
}

void TaskGraphModel::addEdge(int before, int after) {
  tasks[static_cast<std::size_t>(before)].successors.push_back(after);
}

std::size_t TaskGraphModel::edgeCount() const {
  std::size_t n = 0;
  for (const auto& t : tasks) {
    n += t.successors.size();
  }
  return n;
}

namespace {

/// Dense reachability bitsets over one component's local task ids:
/// row i holds the set of tasks strictly after i in happens-before order.
class BitMatrix {
public:
  explicit BitMatrix(std::size_t n)
      : words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t i, std::size_t j) {
    bits_[i * words_ + j / 64] |= std::uint64_t{1} << (j % 64);
  }
  [[nodiscard]] bool test(std::size_t i, std::size_t j) const {
    return ((bits_[i * words_ + j / 64] >> (j % 64)) & 1U) != 0;
  }
  void orInto(std::size_t dst, std::size_t src) {
    for (std::size_t w = 0; w < words_; ++w) {
      bits_[dst * words_ + w] |= bits_[src * words_ + w];
    }
  }

private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// Weakly-connected components of the dependency graph. Tasks sharing no
/// edge path live in different components ("box groups" in practice: each
/// destination box's compute/op tasks cluster together), so transitive
/// closure runs on small dense blocks instead of the whole level.
struct Components {
  std::vector<int> compOf;  ///< global task id -> component id
  std::vector<int> localId; ///< global task id -> index inside component
  std::vector<std::vector<int>> members; ///< component -> global ids
};

Components splitComponents(const TaskGraphModel& m) {
  const std::size_t n = m.tasks.size();
  std::vector<int> parent(n);
  for (std::size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<int>(i);
  }
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t u = 0; u < n; ++u) {
    for (const int v : m.tasks[u].successors) {
      const int ru = find(static_cast<int>(u));
      const int rv = find(v);
      if (ru != rv) {
        parent[static_cast<std::size_t>(ru)] = rv;
      }
    }
  }
  Components c;
  c.compOf.assign(n, -1);
  c.localId.assign(n, -1);
  std::map<int, int> rootToComp;
  for (std::size_t i = 0; i < n; ++i) {
    const int root = find(static_cast<int>(i));
    auto [it, inserted] =
        rootToComp.emplace(root, static_cast<int>(c.members.size()));
    if (inserted) {
      c.members.emplace_back();
    }
    c.compOf[i] = it->second;
    c.localId[i] = static_cast<int>(
        c.members[static_cast<std::size_t>(it->second)].size());
    c.members[static_cast<std::size_t>(it->second)].push_back(
        static_cast<int>(i));
  }
  return c;
}

/// Kahn's algorithm over one component. Returns the topological order in
/// local ids; on a cycle, leaves the cyclic tasks out (order.size() <
/// member count).
std::vector<int> topoOrder(const TaskGraphModel& m, const Components& c,
                           std::size_t comp,
                           const std::pair<int, int>* skipEdge) {
  const std::vector<int>& members = c.members[comp];
  const std::size_t n = members.size();
  std::vector<int> indeg(n, 0);
  for (const int gu : members) {
    for (const int gv : m.tasks[static_cast<std::size_t>(gu)].successors) {
      if (skipEdge != nullptr && skipEdge->first == gu &&
          skipEdge->second == gv) {
        continue; // drop exactly one instance of the candidate edge
      }
      ++indeg[static_cast<std::size_t>(c.localId[static_cast<std::size_t>(
          gv)])];
    }
  }
  // One subtlety with duplicate edges: skipEdge above removes *every*
  // parallel instance from the count walk, but duplicates are classified
  // removable before this runs, so the recompute only ever sees unique
  // edges.
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }
  while (!ready.empty()) {
    const int lu = ready.back();
    ready.pop_back();
    order.push_back(lu);
    const int gu = members[static_cast<std::size_t>(lu)];
    for (const int gv : m.tasks[static_cast<std::size_t>(gu)].successors) {
      if (skipEdge != nullptr && skipEdge->first == gu &&
          skipEdge->second == gv) {
        continue;
      }
      const int lv = c.localId[static_cast<std::size_t>(gv)];
      if (--indeg[static_cast<std::size_t>(lv)] == 0) {
        ready.push_back(lv);
      }
    }
  }
  return order;
}

/// Reachability closure of one component from a topological order:
/// processing in reverse order, a task's row is the union of each
/// successor's row plus the successor itself.
BitMatrix closure(const TaskGraphModel& m, const Components& c,
                  std::size_t comp, const std::vector<int>& order,
                  const std::pair<int, int>* skipEdge) {
  const std::vector<int>& members = c.members[comp];
  BitMatrix reach(members.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int lu = *it;
    const int gu = members[static_cast<std::size_t>(lu)];
    for (const int gv : m.tasks[static_cast<std::size_t>(gu)].successors) {
      if (skipEdge != nullptr && skipEdge->first == gu &&
          skipEdge->second == gv) {
        continue;
      }
      const auto lv = static_cast<std::size_t>(
          c.localId[static_cast<std::size_t>(gv)]);
      reach.set(static_cast<std::size_t>(lu), lv);
      reach.orInto(static_cast<std::size_t>(lu), lv);
    }
  }
  return reach;
}

std::string taskTag(int id) { return "task " + std::to_string(id); }

/// Witness classification of one conflicting pair: write/write overlap
/// dominates (both tasks corrupt the cell), otherwise the read/write
/// overlap. Returns the witness region through `region`.
DiagnosticKind classifyPair(const GraphTask& a, const GraphTask& b,
                            Box& region) {
  for (const auto& wa : a.writes) {
    for (const auto& wb : b.writes) {
      if (wa.overlaps(wb)) {
        region = wa.region & wb.region;
        return DiagnosticKind::WriteOverlap;
      }
    }
  }
  for (const auto& wa : a.writes) {
    for (const auto& rb : b.reads) {
      if (wa.overlaps(rb)) {
        region = wa.region & rb.region;
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  for (const auto& wb : b.writes) {
    for (const auto& ra : a.reads) {
      if (wb.overlaps(ra)) {
        region = wb.region & ra.region;
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  region = Box();
  return DiagnosticKind::Ok;
}

} // namespace

GraphCheckReport checkTaskGraph(const TaskGraphModel& m,
                                bool findRemovable) {
  GraphCheckReport report;
  report.graph = m.name;
  report.taskCount = static_cast<std::int64_t>(m.tasks.size());
  report.edgeCount = static_cast<std::int64_t>(m.edgeCount());
  if (m.tasks.empty()) {
    return report;
  }

  const Components comps = splitComponents(m);
  report.componentCount = static_cast<std::int64_t>(comps.members.size());

  // G1: a topological order must exist per component. On a cycle nothing
  // else is meaningful (happens-before is not a partial order), so report
  // and stop.
  std::vector<std::vector<int>> orders(comps.members.size());
  for (std::size_t cidx = 0; cidx < comps.members.size(); ++cidx) {
    orders[cidx] = topoOrder(m, comps, cidx, nullptr);
    if (orders[cidx].size() == comps.members[cidx].size()) {
      continue;
    }
    std::vector<bool> inOrder(comps.members[cidx].size(), false);
    for (const int lu : orders[cidx]) {
      inOrder[static_cast<std::size_t>(lu)] = true;
    }
    std::vector<int> cyclic;
    for (std::size_t i = 0; i < comps.members[cidx].size(); ++i) {
      if (!inOrder[i]) {
        cyclic.push_back(comps.members[cidx][i]);
      }
    }
    Diagnostic d;
    d.kind = DiagnosticKind::DependencyCycle;
    d.variant = m.name;
    d.stageA = m.label(cyclic.front());
    d.itemA = taskTag(cyclic.front());
    d.stageB = m.label(cyclic.size() > 1 ? cyclic[1] : cyclic.front());
    d.itemB = taskTag(cyclic.size() > 1 ? cyclic[1] : cyclic.front());
    report.diagnostics.push_back(std::move(d));
  }
  if (!report.diagnostics.empty()) {
    return report;
  }

  // Happens-before closure and critical path per component.
  std::vector<BitMatrix> reach;
  reach.reserve(comps.members.size());
  for (std::size_t cidx = 0; cidx < comps.members.size(); ++cidx) {
    reach.push_back(closure(m, comps, cidx, orders[cidx], nullptr));
    std::vector<std::int64_t> depth(comps.members[cidx].size(), 1);
    for (const int lu : orders[cidx]) {
      const int gu = comps.members[cidx][static_cast<std::size_t>(lu)];
      for (const int gv :
           m.tasks[static_cast<std::size_t>(gu)].successors) {
        const auto lv = static_cast<std::size_t>(
            comps.localId[static_cast<std::size_t>(gv)]);
        depth[lv] = std::max(depth[lv],
                             depth[static_cast<std::size_t>(lu)] + 1);
      }
    }
    for (const std::int64_t d : depth) {
      report.criticalPath = std::max(report.criticalPath, d);
    }
  }

  const auto ordered = [&](int ga, int gb) {
    const int ca = comps.compOf[static_cast<std::size_t>(ga)];
    if (ca != comps.compOf[static_cast<std::size_t>(gb)]) {
      return false;
    }
    const auto la = static_cast<std::size_t>(
        comps.localId[static_cast<std::size_t>(ga)]);
    const auto lb = static_cast<std::size_t>(
        comps.localId[static_cast<std::size_t>(gb)]);
    return reach[static_cast<std::size_t>(ca)].test(la, lb) ||
           reach[static_cast<std::size_t>(ca)].test(lb, la);
  };

  // G2: every conflicting pair (shared write/write or read/write overlap)
  // must be ordered. Accesses bucket by (field, slot, box) so only
  // same-storage pairs are ever intersected; writes are few (each cell has
  // one producer), so write x write plus write x read stays near-linear.
  struct Ref {
    int task;
    const TaskAccess* access;
  };
  std::map<std::tuple<int, int, std::size_t>,
           std::pair<std::vector<Ref>, std::vector<Ref>>>
      buckets; // (field, slot, box) -> (writes, reads)
  for (std::size_t t = 0; t < m.tasks.size(); ++t) {
    for (const auto& w : m.tasks[t].writes) {
      buckets[{static_cast<int>(w.field), w.slot, w.box}].first.push_back(
          {static_cast<int>(t), &w});
    }
    for (const auto& r : m.tasks[t].reads) {
      buckets[{static_cast<int>(r.field), r.slot, r.box}].second.push_back(
          {static_cast<int>(t), &r});
    }
  }
  std::set<std::pair<int, int>> reported;
  // Ordered conflicting pairs, the constraint set of the over-sync pass:
  // an edge is only removable if every one of these stays ordered.
  std::vector<std::set<std::pair<int, int>>> orderedConflicts(
      comps.members.size());
  const auto onConflict = [&](int ta, int tb) {
    const int a = std::min(ta, tb);
    const int b = std::max(ta, tb);
    if (ordered(a, b)) {
      if (findRemovable) {
        const auto cidx = static_cast<std::size_t>(
            comps.compOf[static_cast<std::size_t>(a)]);
        orderedConflicts[cidx].insert(
            {comps.localId[static_cast<std::size_t>(a)],
             comps.localId[static_cast<std::size_t>(b)]});
      }
      return;
    }
    if (!reported.insert({a, b}).second) {
      return;
    }
    Diagnostic d;
    d.variant = m.name;
    d.kind = classifyPair(m.tasks[static_cast<std::size_t>(a)],
                          m.tasks[static_cast<std::size_t>(b)], d.region);
    d.stageA = m.label(a);
    d.itemA = taskTag(a);
    d.stageB = m.label(b);
    d.itemB = taskTag(b);
    report.diagnostics.push_back(std::move(d));
  };
  for (const auto& [key, lists] : buckets) {
    const auto& writes = lists.first;
    const auto& reads = lists.second;
    for (std::size_t i = 0; i < writes.size(); ++i) {
      for (std::size_t j = i + 1; j < writes.size(); ++j) {
        if (writes[i].task != writes[j].task &&
            writes[i].access->overlaps(*writes[j].access)) {
          onConflict(writes[i].task, writes[j].task);
        }
      }
      for (const auto& r : reads) {
        if (writes[i].task != r.task &&
            writes[i].access->overlaps(*r.access)) {
          onConflict(writes[i].task, r.task);
        }
      }
    }
  }

  // G3: when the graph performs the exchange itself, each task's Phi0 read
  // outside its box's valid region must be covered by the Phi0 writes that
  // happen-before it (the exchange-op tasks feeding that ghost region).
  if (!m.ghostsPreExchanged) {
    for (std::size_t t = 0; t < m.tasks.size(); ++t) {
      if (m.tasks[t].orderingOnly) {
        continue; // sequencing barrier, not a data consumer
      }
      for (const auto& r : m.tasks[t].reads) {
        if (r.field != FieldId::Phi0 || r.box >= m.validBoxes.size()) {
          continue;
        }
        const std::vector<Box> ghostPieces =
            subtractAll(r.region, {m.validBoxes[r.box]});
        if (ghostPieces.empty()) {
          continue;
        }
        CoverSet cover;
        const auto cidx = static_cast<std::size_t>(
            comps.compOf[t]);
        const auto lt = static_cast<std::size_t>(comps.localId[t]);
        for (std::size_t li = 0; li < comps.members[cidx].size(); ++li) {
          if (!reach[cidx].test(li, lt)) {
            continue;
          }
          const auto gu = static_cast<std::size_t>(
              comps.members[cidx][li]);
          if (m.tasks[gu].orderingOnly) {
            continue; // conservative barrier footprint, not a producer
          }
          for (const auto& w : m.tasks[gu].writes) {
            if (w.field == FieldId::Phi0 && w.box == r.box &&
                w.slot == r.slot && w.comp0 <= r.comp0 &&
                r.comp0 + r.nComp <= w.comp0 + w.nComp) {
              cover.add(w.region);
            }
          }
        }
        for (const Box& piece : ghostPieces) {
          const Box missing = cover.firstMissing(piece);
          if (missing.empty()) {
            continue;
          }
          // Name the exchange op that should have fed the missing cells:
          // the op whose (grown) ghost fill is nearest the hole.
          int bestOp = -1;
          std::int64_t bestVol = 0;
          for (std::size_t u = 0; u < m.tasks.size(); ++u) {
            if (!m.tasks[u].exchangeOp) {
              continue;
            }
            for (const auto& w : m.tasks[u].writes) {
              if (w.field != FieldId::Phi0 || w.box != r.box ||
                  w.slot != r.slot) {
                continue;
              }
              const std::int64_t vol =
                  (w.region.grow(1) & missing).numPts();
              if (vol > bestVol) {
                bestVol = vol;
                bestOp = static_cast<int>(u);
              }
            }
          }
          Diagnostic d;
          d.kind = DiagnosticKind::ReadUncovered;
          d.variant = m.name;
          d.stageA = m.label(static_cast<int>(t));
          d.itemA = taskTag(static_cast<int>(t));
          d.stageB = bestOp >= 0 ? m.label(bestOp) : "<no exchange op>";
          d.itemB = bestOp >= 0 ? taskTag(bestOp) : "";
          d.region = missing;
          report.diagnostics.push_back(std::move(d));
        }
      }
    }
  }

  // Over-synchronization (advisory): an edge is removable when it is
  // transitively implied by another path, or when no ordered conflicting
  // pair depends on it (re-proved by recomputing the closure without it).
  if (findRemovable) {
    for (std::size_t cidx = 0; cidx < comps.members.size(); ++cidx) {
      for (const int gu : comps.members[cidx]) {
        const auto& succs =
            m.tasks[static_cast<std::size_t>(gu)].successors;
        std::set<int> seen;
        for (const int gv : succs) {
          if (!seen.insert(gv).second) {
            report.removable.push_back(
                {gu, gv, "duplicate of an existing edge"});
            continue;
          }
          const auto lv = static_cast<std::size_t>(
              comps.localId[static_cast<std::size_t>(gv)]);
          bool implied = false;
          for (const int gw : succs) {
            if (gw == gv) {
              continue;
            }
            const auto lw = static_cast<std::size_t>(
                comps.localId[static_cast<std::size_t>(gw)]);
            if (reach[cidx].test(lw, lv)) {
              implied = true;
              break;
            }
          }
          if (implied) {
            report.removable.push_back(
                {gu, gv, "transitively implied by another path"});
            continue;
          }
          Box witness;
          if (classifyPair(m.tasks[static_cast<std::size_t>(gu)],
                           m.tasks[static_cast<std::size_t>(gv)],
                           witness) != DiagnosticKind::Ok) {
            continue; // the edge directly orders a conflicting pair
          }
          // Non-conflicting and non-redundant: removable iff every
          // ordered conflicting pair survives without it.
          const std::pair<int, int> edge{gu, gv};
          const std::vector<int> order2 =
              topoOrder(m, comps, cidx, &edge);
          const BitMatrix reach2 =
              closure(m, comps, cidx, order2, &edge);
          bool safe = true;
          for (const auto& [la, lb] : orderedConflicts[cidx]) {
            if (!reach2.test(static_cast<std::size_t>(la),
                             static_cast<std::size_t>(lb)) &&
                !reach2.test(static_cast<std::size_t>(lb),
                             static_cast<std::size_t>(la))) {
              safe = false;
              break;
            }
          }
          if (safe) {
            report.removable.push_back(
                {gu, gv, "orders no conflicting accesses"});
          }
        }
      }
    }
  }
  return report;
}

} // namespace fluxdiv::analysis
