#pragma once
// Shared region-set operations built on the primitives of region.hpp.
// The three static checkers (verifier: R1 read coverage, graphcheck: G3
// ghost coverage, commcheck: C1 exchange exactness) all ask the same two
// questions — "do these boxes cover that target, and if not, where is the
// first hole?" and "do any two of these boxes overlap, and where?" — so
// the cover-collection and witness-extraction logic lives here once
// instead of being reimplemented per checker.

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/region.hpp"
#include "grid/box.hpp"

namespace fluxdiv::analysis {

/// Incrementally built union of boxes with coverage queries against it.
/// The checkers collect candidate producer/filler regions into one of
/// these, then ask for the first hole in the target they must cover.
class CoverSet {
public:
  CoverSet() = default;
  explicit CoverSet(std::vector<Box> boxes) : boxes_(std::move(boxes)) {}

  /// Add one box to the union; empty boxes are ignored.
  void add(const Box& b) {
    if (!b.empty()) {
      boxes_.push_back(b);
    }
  }

  [[nodiscard]] const std::vector<Box>& boxes() const { return boxes_; }
  [[nodiscard]] bool empty() const { return boxes_.empty(); }
  void clear() { boxes_.clear(); }

  /// True if `target` is fully inside the union.
  [[nodiscard]] bool covers(const Box& target) const {
    return covered(target, boxes_);
  }

  /// A maximal rectangular piece of `target` outside the union; the empty
  /// box when covered. This is the witness region of a coverage
  /// diagnostic.
  [[nodiscard]] Box firstMissing(const Box& target) const {
    return firstUncovered(target, boxes_);
  }

  /// Rectangular decomposition of every cell of `target` outside the
  /// union (disjoint pieces; empty vector when covered).
  [[nodiscard]] std::vector<Box> missingPieces(const Box& target) const;

  /// Total distinct cells in the union.
  [[nodiscard]] std::int64_t unionCells() const { return unionPts(boxes_); }

private:
  std::vector<Box> boxes_;
};

/// Rectangular decomposition of `target` minus the union of `cuts`:
/// disjoint boxes covering exactly the cells of `target` in no cut.
std::vector<Box> subtractAll(const Box& target, const std::vector<Box>& cuts);

/// First overlapping pair among `boxes` (indices into the input) together
/// with the shared region — the witness of a double-write diagnostic.
/// std::nullopt when the boxes are pairwise disjoint.
struct PairOverlap {
  std::size_t first = 0;
  std::size_t second = 0;
  Box region;
};
std::optional<PairOverlap> firstPairOverlap(const std::vector<Box>& boxes);

} // namespace fluxdiv::analysis
