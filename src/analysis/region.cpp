#include "analysis/region.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace fluxdiv::analysis {

using grid::IntVect;

std::vector<Box> boxDiff(const Box& a, const Box& b) {
  if (a.empty()) {
    return {};
  }
  const Box cut = a & b;
  if (cut.empty()) {
    return {a};
  }
  if (cut == a) {
    return {};
  }
  // Peel the six slabs of `a` around `cut`, direction by direction. After
  // peeling direction d the remaining core matches `cut` in every
  // direction <= d, so the slabs are disjoint by construction.
  std::vector<Box> out;
  Box core = a;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (core.lo(d) < cut.lo(d)) {
      IntVect hi = core.hi();
      hi[d] = cut.lo(d) - 1;
      out.emplace_back(core.lo(), hi);
      IntVect lo = core.lo();
      lo[d] = cut.lo(d);
      core = Box(lo, core.hi());
    }
    if (core.hi(d) > cut.hi(d)) {
      IntVect lo = core.lo();
      lo[d] = cut.hi(d) + 1;
      out.emplace_back(lo, core.hi());
      IntVect hi = core.hi();
      hi[d] = cut.hi(d);
      core = Box(core.lo(), hi);
    }
  }
  return out;
}

bool covered(const Box& target, const std::vector<Box>& cover) {
  return firstUncovered(target, cover).empty();
}

Box firstUncovered(const Box& target, const std::vector<Box>& cover) {
  if (target.empty()) {
    return {};
  }
  std::vector<Box> remaining{target};
  for (const Box& c : cover) {
    std::vector<Box> next;
    next.reserve(remaining.size() + 4);
    for (const Box& r : remaining) {
      auto pieces = boxDiff(r, c);
      next.insert(next.end(), pieces.begin(), pieces.end());
    }
    remaining.swap(next);
    if (remaining.empty()) {
      return {};
    }
  }
  return remaining.front();
}

namespace {

/// Disjoint-decomposition fallback for unionPts: O(boxes^2) but no grid
/// allocation, used when the compressed grid would be degenerate (many
/// unaligned boxes). Our box sets are tile-aligned so this rarely runs.
std::int64_t unionPtsByDecomposition(const std::vector<Box>& boxes) {
  std::vector<Box> disjoint;
  disjoint.reserve(boxes.size());
  std::vector<Box> pieces;
  std::vector<Box> next;
  for (const Box& b : boxes) {
    if (b.empty()) {
      continue;
    }
    pieces.assign(1, b);
    for (const Box& d : disjoint) {
      next.clear();
      for (const Box& p : pieces) {
        auto cut = boxDiff(p, d);
        next.insert(next.end(), cut.begin(), cut.end());
      }
      pieces.swap(next);
      if (pieces.empty()) {
        break;
      }
    }
    disjoint.insert(disjoint.end(), pieces.begin(), pieces.end());
  }
  std::int64_t total = 0;
  for (const Box& d : disjoint) {
    total += d.numPts();
  }
  return total;
}

} // namespace

std::int64_t unionPts(const std::vector<Box>& boxes) {
  std::array<std::vector<int>, 3> cuts;
  for (const Box& b : boxes) {
    if (b.empty()) {
      continue;
    }
    for (int d = 0; d < grid::SpaceDim; ++d) {
      cuts[static_cast<std::size_t>(d)].push_back(b.lo(d));
      cuts[static_cast<std::size_t>(d)].push_back(b.hi(d) + 1);
    }
  }
  if (cuts[0].empty()) {
    return 0;
  }
  std::array<std::int64_t, 3> nSlabs{};
  for (auto& c : cuts) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  for (std::size_t d = 0; d < 3; ++d) {
    nSlabs[d] = static_cast<std::int64_t>(cuts[d].size()) - 1;
  }
  // Guard against pathological unaligned sets whose compressed grid would
  // be nearly full resolution in every direction.
  constexpr std::int64_t kMaxGridCells = std::int64_t{1} << 26;
  if (nSlabs[0] * nSlabs[1] * nSlabs[2] > kMaxGridCells) {
    return unionPtsByDecomposition(boxes);
  }

  const auto slabIndex = [&](std::size_t d, int coord) {
    return static_cast<std::int64_t>(
        std::lower_bound(cuts[d].begin(), cuts[d].end(), coord) -
        cuts[d].begin());
  };
  std::vector<char> occupied(
      static_cast<std::size_t>(nSlabs[0] * nSlabs[1] * nSlabs[2]), 0);
  for (const Box& b : boxes) {
    if (b.empty()) {
      continue;
    }
    const std::int64_t x0 = slabIndex(0, b.lo(0));
    const std::int64_t x1 = slabIndex(0, b.hi(0) + 1);
    const std::int64_t y0 = slabIndex(1, b.lo(1));
    const std::int64_t y1 = slabIndex(1, b.hi(1) + 1);
    const std::int64_t z0 = slabIndex(2, b.lo(2));
    const std::int64_t z1 = slabIndex(2, b.hi(2) + 1);
    for (std::int64_t z = z0; z < z1; ++z) {
      for (std::int64_t y = y0; y < y1; ++y) {
        char* row = occupied.data() +
                    static_cast<std::size_t>((z * nSlabs[1] + y) * nSlabs[0]);
        std::fill(row + x0, row + x1, char{1});
      }
    }
  }
  std::int64_t total = 0;
  for (std::int64_t z = 0; z < nSlabs[2]; ++z) {
    const std::int64_t dz =
        cuts[2][static_cast<std::size_t>(z) + 1] -
        cuts[2][static_cast<std::size_t>(z)];
    for (std::int64_t y = 0; y < nSlabs[1]; ++y) {
      const std::int64_t dyz =
          dz * (cuts[1][static_cast<std::size_t>(y) + 1] -
                cuts[1][static_cast<std::size_t>(y)]);
      const char* row = occupied.data() +
                        static_cast<std::size_t>((z * nSlabs[1] + y) *
                                                 nSlabs[0]);
      for (std::int64_t x = 0; x < nSlabs[0]; ++x) {
        if (row[x] != 0) {
          total += dyz * (cuts[0][static_cast<std::size_t>(x) + 1] -
                          cuts[0][static_cast<std::size_t>(x)]);
        }
      }
    }
  }
  return total;
}

} // namespace fluxdiv::analysis
