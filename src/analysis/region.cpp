#include "analysis/region.hpp"

namespace fluxdiv::analysis {

using grid::IntVect;

std::vector<Box> boxDiff(const Box& a, const Box& b) {
  if (a.empty()) {
    return {};
  }
  const Box cut = a & b;
  if (cut.empty()) {
    return {a};
  }
  if (cut == a) {
    return {};
  }
  // Peel the six slabs of `a` around `cut`, direction by direction. After
  // peeling direction d the remaining core matches `cut` in every
  // direction <= d, so the slabs are disjoint by construction.
  std::vector<Box> out;
  Box core = a;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (core.lo(d) < cut.lo(d)) {
      IntVect hi = core.hi();
      hi[d] = cut.lo(d) - 1;
      out.emplace_back(core.lo(), hi);
      IntVect lo = core.lo();
      lo[d] = cut.lo(d);
      core = Box(lo, core.hi());
    }
    if (core.hi(d) > cut.hi(d)) {
      IntVect lo = core.lo();
      lo[d] = cut.hi(d) + 1;
      out.emplace_back(lo, core.hi());
      IntVect hi = core.hi();
      hi[d] = cut.hi(d);
      core = Box(core.lo(), hi);
    }
  }
  return out;
}

bool covered(const Box& target, const std::vector<Box>& cover) {
  return firstUncovered(target, cover).empty();
}

Box firstUncovered(const Box& target, const std::vector<Box>& cover) {
  if (target.empty()) {
    return {};
  }
  std::vector<Box> remaining{target};
  for (const Box& c : cover) {
    std::vector<Box> next;
    next.reserve(remaining.size() + 4);
    for (const Box& r : remaining) {
      auto pieces = boxDiff(r, c);
      next.insert(next.end(), pieces.begin(), pieces.end());
    }
    remaining.swap(next);
    if (remaining.empty()) {
      return {};
    }
  }
  return remaining.front();
}

} // namespace fluxdiv::analysis
