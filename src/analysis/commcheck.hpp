#pragma once
// commcheck: static verification of Copier ghost-exchange plans — the
// third leg of the correctness net after the schedule verifier
// (analysis/verifier) and the task-graph race checker
// (analysis/graphcheck). From the same plan the executors consume it
// builds an exact region model and proves, per (layout, nghost, rank
// partition) shape:
//
//   C1 exactness        every exchange-owned ghost cell of every box is
//                       written by exactly one incoming copy op (no gaps,
//                       no double-writes, no strays), and every op reads
//                       only valid interior cells of its source box.
//   C2 matching         an independent send-side re-derivation of the
//                       plan from layout geometry must agree op-for-op
//                       with the recv-side plan: every required send has
//                       its posted recv and vice versa, with identical
//                       region/byte extent. Under a rank partition this
//                       is exactly "every cross-rank op appears in both
//                       endpoints' schedules".
//   C3 deadlock freedom the per-rank send/recv programs induced by the
//                       plan order, executed against FIFO rank-to-rank
//                       channels of bounded capacity (the planned RankSim
//                       queue depth), run to completion with no cyclic
//                       wait. The simulation is confluent (enabled steps
//                       on distinct ranks commute), so one greedy run
//                       decides schedulability.
//
// Beyond the proofs, the checker emits over-communication advisories
// (ops already satisfied locally, same-box-pair messages that could be
// aggregated) and counts bytes/messages per rank pair from the *derived*
// schedule — an independent path that crossValidateCommCost() compares
// exactly against distsim's alpha-beta inputs, so the cost model of
// docs/cost-model.md is checked rather than assumed.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "grid/box.hpp"
#include "grid/copier.hpp"
#include "grid/layout.hpp"

namespace fluxdiv::distsim {
class RankDecomposition;
struct ExchangeCost;
} // namespace fluxdiv::distsim

namespace fluxdiv::analysis {

using grid::Box;

/// Planned RankSim per-channel queue depth: max in-flight messages per
/// ordered rank pair before a sender blocks. C3 proves plans schedulable
/// at this depth; a capacity <= 0 models unbuffered channels (every
/// cross-rank send blocks forever — useful for forcing the deadlock
/// witness in tests).
inline constexpr int kDefaultQueueCapacity = 4;

/// One exchange op in the model: a grid::CopyOp plus the stable label
/// (grid::Copier::opLabel) diagnostics quote, matching graphcheck's
/// labeled-witness style. Mutations edit these freely; the model is a
/// value type decoupled from the Copier it was built from.
struct CommOp {
  std::size_t destBox = 0;
  std::size_t srcBox = 0;
  Box destRegion;
  grid::IntVect srcShift;
  grid::IntVect sector;  ///< halo sector of destBox this op was built for
  std::string label;

  [[nodiscard]] Box srcRegion() const { return destRegion.shift(srcShift); }
};

/// Label of the geometry-derived send feeding `destBox`'s halo sector
/// `sector` from `srcBox` — what C1/C2 witnesses quote for the send side
/// ("send box3->box5 sector[+1,0,0]"). Exposed so mutation harnesses can
/// predict the exact witness string.
std::string derivedSendLabel(std::size_t srcBox, std::size_t destBox,
                             const grid::IntVect& sector);

/// A communication plan under test: the ops, the layout they exchange
/// over, and the rank partition they are scheduled under (nRanks == 1,
/// all boxes on rank 0, until applyRankPartition()).
struct CommPlanModel {
  std::string name;               ///< for reports, e.g. "exchange 8@16^3 g2"
  grid::DisjointBoxLayout layout;
  int nghost = 0;
  int ncomp = 1;
  std::vector<CommOp> ops;
  std::vector<int> rankOf;        ///< box -> owning rank
  int nRanks = 1;
  int queueCapacity = kDefaultQueueCapacity;
};

/// Lift a Copier plan into the model, labels included. `ncomp` prices the
/// byte extents. The partition defaults to a single rank.
CommPlanModel buildCommPlanModel(const grid::DisjointBoxLayout& layout,
                                 const grid::Copier& copier, int ncomp,
                                 std::string name = {});

/// Apply the distsim sharding: every box owned per `ranks`.
void applyRankPartition(CommPlanModel& model,
                        const distsim::RankDecomposition& ranks);

/// Convenience: partition onto `nRanks` contiguous chunks (the distsim
/// default decomposition) without constructing one at the call site.
void applyRankPartition(CommPlanModel& model, int nRanks);

enum class CommDiagKind {
  Ok,
  GhostGap,        ///< C1: exchange-owned ghost cells no op writes
  DoubleWrite,     ///< C1: two ops write intersecting dest regions
  StrayWrite,      ///< C1: op writes outside its box's ghost halo
  SourceInvalid,   ///< C1: op reads outside the source box's valid cells
  UnmatchedSend,   ///< C2: posted recv whose send no rank performs
  UnmatchedRecv,   ///< C2: required send for which no recv is posted
  ExtentMismatch,  ///< C2: endpoints disagree on region/byte extent
  DeadlockCycle,   ///< C3: cyclic or starved wait at the queue capacity
};
const char* commDiagKindName(CommDiagKind k);

/// One violation witness. `opA`/`opB` are labeled endpoints (plan-op
/// labels, or derived-send labels of the form "send box3->box5
/// sector[+1,0,0]"); `rankA`/`rankB` the endpoint ranks where meaningful
/// (-1 otherwise); `region` the offending cells in the destination
/// frame; `detail` kind-specific amplification (e.g. the wait chain of a
/// DeadlockCycle).
struct CommDiagnostic {
  CommDiagKind kind = CommDiagKind::Ok;
  std::string plan;
  std::string opA;
  std::string opB;
  int rankA = -1;
  int rankB = -1;
  Box region;
  std::string detail;

  [[nodiscard]] bool ok() const { return kind == CommDiagKind::Ok; }
  [[nodiscard]] std::string message() const;
};

enum class CommAdviceKind {
  RedundantOp,        ///< op's dest region already covered by the others
  MergeableMessages,  ///< same-box-pair ops aggregatable into one message
};
const char* commAdviceKindName(CommAdviceKind k);

/// Over-communication advisory: not a correctness violation, but alpha
/// (message count) or bytes the plan spends that a smarter lowering would
/// not. `messages` -> `merged` is the achievable reduction for
/// MergeableMessages; `opLabel` names the redundant op for RedundantOp.
struct CommAdvisory {
  CommAdviceKind kind = CommAdviceKind::MergeableMessages;
  std::string plan;
  std::string opLabel;
  int rankA = -1;
  int rankB = -1;
  std::int64_t messages = 0;
  std::int64_t merged = 0;

  [[nodiscard]] std::string message() const;
};

/// Per-rank-pair traffic of one exchange — exactly the alpha-beta model's
/// inputs: how many messages and bytes rank `srcRank` sends rank
/// `dstRank`. Sorted by (srcRank, dstRank); cross-rank pairs only.
struct RankPairTraffic {
  int srcRank = 0;
  int dstRank = 0;
  std::int64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Everything checkCommPlan() proves and counts. Traffic figures are
/// counted from the *derived* send schedule (layout geometry), not the
/// plan ops, so their exact agreement with distsim::analyzeExchange —
/// which walks the plan — is an independent check, not a tautology.
struct CommCheckReport {
  std::vector<CommDiagnostic> diagnostics;
  std::vector<CommAdvisory> advisories;

  std::size_t opCount = 0;
  std::size_t crossRankOps = 0;
  std::int64_t onRankCells = 0;
  std::int64_t offRankCells = 0;
  std::int64_t messagesTotal = 0;
  std::int64_t maxMessagesPerRank = 0;
  std::uint64_t bytesTotal = 0;
  std::uint64_t maxBytesPerRank = 0;
  std::vector<RankPairTraffic> pairs;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Run C1 + C2 + C3 over `model` (advisories only when asked: they cost
/// an extra coverage pass per op). Diagnostics carry labeled two-endpoint
/// witnesses; an empty list is the proof.
CommCheckReport checkCommPlan(const CommPlanModel& model,
                              bool findAdvisories = false);

/// Compare the report's statically counted traffic against the alpha-beta
/// model's inputs for the same (plan, partition, ncomp): totals, per-rank
/// maxima, and every rank pair must agree EXACTLY. Returns one
/// human-readable mismatch per disagreement; empty means the cost model's
/// inputs are verified.
std::vector<std::string>
crossValidateCommCost(const CommCheckReport& report,
                      const distsim::ExchangeCost& cost);

} // namespace fluxdiv::analysis
