#include "analysis/verifier.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "analysis/lower.hpp"
#include "analysis/region.hpp"
#include "analysis/region_ops.hpp"

namespace fluxdiv::analysis {

const char* fieldName(FieldId f) {
  switch (f) {
  case FieldId::Phi0:
    return "phi0";
  case FieldId::Phi1:
    return "phi1";
  case FieldId::Flux:
    return "flux";
  case FieldId::Velocity:
    return "velocity";
  case FieldId::CacheX:
    return "cacheX";
  case FieldId::CacheY:
    return "cacheY";
  case FieldId::CacheZ:
    return "cacheZ";
  }
  return "?";
}

const char* diagnosticKindName(DiagnosticKind k) {
  switch (k) {
  case DiagnosticKind::Ok:
    return "ok";
  case DiagnosticKind::HaloTooShallow:
    return "halo-too-shallow";
  case DiagnosticKind::RecomputeUncovered:
    return "recompute-uncovered";
  case DiagnosticKind::ReadUncovered:
    return "read-uncovered";
  case DiagnosticKind::WriteOverlap:
    return "write-overlap";
  case DiagnosticKind::ReadWriteRace:
    return "read-write-race";
  case DiagnosticKind::SkewTooSmall:
    return "skew-too-small";
  case DiagnosticKind::DependencyCycle:
    return "dependency-cycle";
  }
  return "?";
}

std::string Diagnostic::message() const {
  std::ostringstream os;
  os << diagnosticKindName(kind);
  if (ok()) {
    return os.str();
  }
  os << ": " << stageA;
  if (!itemA.empty()) {
    os << " [" << itemA << "]";
  }
  os << " vs " << stageB;
  if (!itemB.empty()) {
    os << " [" << itemB << "]";
  }
  os << " over " << region;
  return os.str();
}

namespace {

std::string pointName(const IntVect& p) {
  std::ostringstream os;
  os << "(" << p[0] << "," << p[1] << "," << p[2] << ")";
  return os.str();
}

/// R3a: every carried dependence must be strictly dominated by the skew.
Diagnostic checkCone(const ScheduleModel& m, const ConeCheck& cone) {
  for (const auto& dep : cone.deps) {
    const int dot = cone.skew[0] * dep.vector[0] +
                    cone.skew[1] * dep.vector[1] +
                    cone.skew[2] * dep.vector[2];
    if (dot < 1) {
      Diagnostic d;
      d.kind = DiagnosticKind::SkewTooSmall;
      d.variant = m.variant;
      d.stageA = dep.consumerStage;
      d.stageB = dep.producerStage;
      d.itemA = cone.name + " iteration " +
                pointName(cone.lattice.lo() + dep.vector);
      d.itemB = cone.name + " iteration " + pointName(cone.lattice.lo());
      d.region = Box(IntVect::min(cone.lattice.lo(),
                                  cone.lattice.lo() + dep.vector),
                     IntVect::max(cone.lattice.lo(),
                                  cone.lattice.lo() + dep.vector));
      return d;
    }
  }
  return {};
}

/// R3b: no two same-front iterations may address the same storage slot.
/// A collision is a nonzero lattice offset delta with skew . delta == 0
/// that is invisible to the field's indexing (zero on all indexed
/// directions). Search is exact for the small skews in use: any collision
/// has a witness with |delta_d| <= max(8, |skew|_inf).
Diagnostic checkSlotCollisions(const ScheduleModel& m,
                               const ConeCheck& cone) {
  int radius = 8;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    radius = std::max(radius, std::abs(cone.skew[d]));
  }
  for (const auto& w : cone.writes) {
    int range[3];
    for (int d = 0; d < grid::SpaceDim; ++d) {
      // Indexed directions pin delta to 0; free directions roam the
      // lattice (clipped to the search radius).
      range[d] = w.indexed[static_cast<std::size_t>(d)]
                     ? 0
                     : std::min(radius, cone.lattice.size(d) - 1);
    }
    for (int dz = -range[2]; dz <= range[2]; ++dz) {
      for (int dy = -range[1]; dy <= range[1]; ++dy) {
        for (int dx = -range[0]; dx <= range[0]; ++dx) {
          const IntVect delta(dx, dy, dz);
          if (delta == IntVect::zero()) {
            continue;
          }
          if (cone.skew[0] * dx + cone.skew[1] * dy + cone.skew[2] * dz !=
              0) {
            continue;
          }
          Diagnostic diag;
          diag.kind = DiagnosticKind::WriteOverlap;
          diag.variant = m.variant;
          diag.stageA = w.stage;
          diag.stageB = w.stage;
          diag.itemA =
              cone.name + " iteration " + pointName(cone.lattice.lo());
          diag.itemB = cone.name + " iteration " +
                       pointName(cone.lattice.lo() + delta);
          diag.region = Box(
              IntVect::min(cone.lattice.lo(), cone.lattice.lo() + delta),
              IntVect::max(cone.lattice.lo(), cone.lattice.lo() + delta));
          return diag;
        }
      }
    }
  }
  return {};
}

/// A committed shared write: who wrote what, for coverage and messages.
struct CommittedWrite {
  Access access;
  std::string stage;
  std::string item;
};

bool compContains(const Access& a, int c) {
  return c >= a.comp0 && c < a.comp0 + a.nComp;
}

/// R2: pairwise conflicts between two concurrent items. Private storage
/// never conflicts across items.
Diagnostic checkItemPair(const ScheduleModel& m, const Phase& phase,
                         const WorkItem& a, const WorkItem& b) {
  for (const auto& sa : a.stages) {
    for (const auto& wa : sa.writes) {
      if (wa.storage != StorageClass::Shared) {
        continue;
      }
      for (const auto& sb : b.stages) {
        for (const auto& wb : sb.writes) {
          if (wb.storage == StorageClass::Shared && wa.overlaps(wb)) {
            Diagnostic d;
            d.kind = DiagnosticKind::WriteOverlap;
            d.variant = m.variant;
            d.stageA = sa.stage;
            d.stageB = sb.stage;
            d.itemA = phase.name + " / " + a.name;
            d.itemB = phase.name + " / " + b.name;
            d.region = wa.box & wb.box;
            return d;
          }
        }
        for (const auto& rb : sb.reads) {
          if (rb.storage == StorageClass::Shared && wa.overlaps(rb)) {
            Diagnostic d;
            d.kind = DiagnosticKind::ReadWriteRace;
            d.variant = m.variant;
            d.stageA = sb.stage;
            d.stageB = sa.stage;
            d.itemA = phase.name + " / " + b.name;
            d.itemB = phase.name + " / " + a.name;
            d.region = wa.box & rb.box;
            return d;
          }
        }
      }
    }
  }
  return {};
}

} // namespace

Diagnostic ScheduleVerifier::verify(const ScheduleModel& m) const {
  // R3: symbolic wavefront checks.
  for (const auto& cone : m.cones) {
    if (Diagnostic d = checkCone(m, cone); !d.ok()) {
      return d;
    }
    if (Diagnostic d = checkSlotCollisions(m, cone); !d.ok()) {
      return d;
    }
  }

  const Box ghosted = m.valid.grow(m.ghost);
  std::vector<CommittedWrite> committed;

  for (const auto& phase : m.phases) {
    // R2: concurrency conflicts between the phase's items.
    for (std::size_t i = 0; i + 1 < phase.items.size(); ++i) {
      for (std::size_t j = i + 1; j < phase.items.size(); ++j) {
        if (Diagnostic d =
                checkItemPair(m, phase, phase.items[i], phase.items[j]);
            !d.ok()) {
          return d;
        }
      }
    }

    // R1: every read covered, walking each item's stages in order.
    // Same-phase writes of *other* items are not visible (that would be a
    // race, caught by R2): commits are staged until the phase ends.
    std::vector<CommittedWrite> pending;
    for (const auto& item : phase.items) {
      std::vector<std::pair<Access, std::string>> local; // this item's writes
      for (const auto& stage : item.stages) {
        for (const auto& r : stage.reads) {
          if (r.box.empty()) {
            continue;
          }
          if (r.field == FieldId::Phi0) {
            if (!ghosted.contains(r.box)) {
              Diagnostic d;
              d.kind = DiagnosticKind::HaloTooShallow;
              d.variant = m.variant;
              d.stageA = stage.stage;
              d.stageB = "ghost exchange (depth " +
                         std::to_string(m.ghost) + ")";
              d.itemA = phase.name + " / " + item.name;
              d.region = firstUncovered(r.box, {ghosted});
              return d;
            }
            continue;
          }
          for (int c = r.comp0; c < r.comp0 + r.nComp; ++c) {
            CoverSet cover;
            std::string lastProducer;
            if (r.storage == StorageClass::Shared) {
              for (const auto& cw : committed) {
                if (cw.access.field == r.field &&
                    cw.access.storage == StorageClass::Shared &&
                    compContains(cw.access, c)) {
                  cover.add(cw.access.box);
                  lastProducer = cw.stage;
                }
              }
            }
            for (const auto& [acc, st] : local) {
              if (acc.field == r.field && acc.storage == r.storage &&
                  compContains(acc, c)) {
                cover.add(acc.box);
                lastProducer = st;
              }
            }
            const Box missing = cover.firstMissing(r.box);
            if (!missing.empty()) {
              Diagnostic d;
              d.kind = r.storage == StorageClass::Private
                           ? DiagnosticKind::RecomputeUncovered
                           : DiagnosticKind::ReadUncovered;
              d.variant = m.variant;
              d.stageA = stage.stage;
              d.stageB = lastProducer.empty()
                             ? std::string("<no producer of ") +
                                   fieldName(r.field) + ">"
                             : lastProducer;
              d.itemA = phase.name + " / " + item.name;
              d.region = missing;
              return d;
            }
          }
        }
        for (const auto& w : stage.writes) {
          if (!w.box.empty()) {
            local.emplace_back(w, stage.stage);
          }
        }
      }
      for (const auto& [acc, st] : local) {
        if (acc.storage == StorageClass::Shared) {
          pending.push_back({acc, st, phase.name + " / " + item.name});
        }
      }
    }
    committed.insert(committed.end(), pending.begin(), pending.end());
  }
  Diagnostic okDiag;
  okDiag.variant = m.variant;
  return okDiag;
}

Diagnostic ScheduleVerifier::verify(const core::VariantConfig& cfg,
                                    int boxSize, int nThreads) const {
  return verify(lowerVariant(cfg, grid::Box::cube(boxSize), nThreads));
}

} // namespace fluxdiv::analysis
