#pragma once
// Kernel footprint contract checker (docs/static-analysis.md, "Kernel
// contract checking"). Every proof in this analysis layer — schedule
// legality (verifier.hpp), task-graph happens-before (graphcheck.hpp),
// exchange-plan exactness (commcheck.hpp), and the cost model's traffic
// predictions — derives from the hand-written offset boxes in
// kernels/footprint.hpp. If a kernel's arithmetic ever read outside its
// declared stencil, every downstream proof would be silently unsound.
// This pass closes the loop: it *infers* the actual access sets of the
// shipped kernels by executing them, and proves the declared contract
// sound and tight against the inference:
//
//   K1 (soundness)   every observed access lies inside the declared
//                    readOffsets/writeOffsets: violation =>
//                    UndeclaredRead / UndeclaredWrite with the offending
//                    offset, stage label, and a minimal repro box.
//   K2 (tightness)   every declared offset is actually exercised by the
//                    kernel: slack => an Overdeclared advisory (slack
//                    footprints inflate ghost depth, cost-model traffic,
//                    and commcheck message volume).
//   K3 (consistency) the footprints the task-graph models and the cost
//                    model consume agree with the ones proven here
//                    (checkGraphFootprints over a lowered TaskGraphModel).
//
// Inference is *differential*: the kernels read through raw pointers and
// strides (the paper's cached-offset idiom), so per-access interception
// at the FabIndexer chokepoint would tax the hot path the study measures.
// Instead the prober (grid/tracingfab.hpp) runs the real, unmodified
// kernel over small concrete boxes, perturbs one input slot at a time,
// and bitwise-diffs the output against a reference run: a changed output
// cell p after perturbing input slot u witnesses the dependence offset
// u - p. Probing covers ghost margins *and* the pitch-pad lanes, runs
// every perturbation twice with different deltas (so an exact arithmetic
// cancellation cannot hide a dependence), uses nonzero box origins (so
// absolute-index bugs cannot masquerade as offsets), and lifts the
// per-cell recordings to size-parametric offset sets by requiring the
// same offsets at every output cell, box size, and pitch — any
// non-uniform or size-dependent pattern is rejected as NonAffineAccess.
//
// What this observes is dataflow dependence, not raw loads: a read whose
// value provably never reaches the output (dead load) is invisible. For
// contract checking that is the right notion — the declared footprint
// exists to order writers before readers, and a value that cannot reach
// the output cannot be raced on observably.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/costmodel.hpp"
#include "grid/box.hpp"
#include "grid/farraybox.hpp"
#include "kernels/footprint.hpp"

namespace fluxdiv::analysis {

struct TaskGraphModel; // graphcheck.hpp

/// A kernel under contract: any callable producing `outRegion` of `out`
/// from `in` (the stage drivers of builtinShapes(), the reference
/// pipelines, or a variant executor via core/kernelshapes.hpp). `in`
/// covers at least outRegion grown by the ghost margin; `out` may cover
/// more than outRegion — writing outside outRegion is exactly what the
/// checker is looking for.
using KernelFn = std::function<void(
    const grid::FArrayBox& in, grid::FArrayBox& out,
    const grid::Box& outRegion, grid::Real scale)>;

/// Declared relationship between a kernel's output and its prior
/// contents.
enum class OutputDep : std::uint8_t {
  Overwrite,  ///< out = f(in): EvalFlux1/EvalFlux2 stage drivers
  Accumulate, ///< out += f(in): FluxDifference, fused sweeps, pipelines
};

/// One kernel shape to verify: the callable plus the declared contract it
/// must satisfy.
struct KernelShape {
  std::string name;          ///< e.g. "pencil:EvalFlux1[d=y]", "reference"
  kernels::Stage stage = kernels::Stage::FusedCell;
  int dir = 0;               ///< stencil direction; -1 = full pipeline
  int inComps = 1;
  int outComps = 1;
  OutputDep outputDep = OutputDep::Overwrite;
  bool faceOutput = false;   ///< out region is cells.faceBox(dir)
  KernelFn fn;
};

/// Diagnostic kinds of the contract checker, mirroring DiagnosticKind /
/// CommDiagKind: machine-readable kind + human message().
enum class KernelDiagKind : std::uint8_t {
  Ok,
  UndeclaredRead,   ///< K1: observed read outside declared readOffsets
  UndeclaredWrite,  ///< K1: write outside the declared write region
  Overdeclared,     ///< K2 advisory: declared offset never exercised
  NonAffineAccess,  ///< access pattern not a pure offset stencil
  ContractMismatch, ///< K3: a consumer's footprint disagrees with proof
};

const char* kernelDiagKindName(KernelDiagKind k);

/// One structured finding. `repro` is the minimal repro: re-running the
/// kernel with exactly this output region (inputs grown by the ghost
/// margin) reproduces the offending access.
struct KernelDiag {
  KernelDiagKind kind = KernelDiagKind::Ok;
  std::string kernel; ///< shape name
  std::string stage;  ///< canonical stage tag, e.g. "FusedCell[d=x]"
  std::string role;   ///< dependence role, e.g. "read c1->c0", "write"
  grid::IntVect offset;
  grid::Box repro;
  std::string detail;

  [[nodiscard]] bool ok() const { return kind == KernelDiagKind::Ok; }
  [[nodiscard]] std::string message() const;
};

/// One dependence role of one kernel: output component `outComp` against
/// input component `inComp` (or the output's own prior contents for the
/// output role, inComp == -1), with the declared and the inferred offset
/// sets (both sorted lexicographically).
struct RoleFootprint {
  std::string role;
  int outComp = 0;
  int inComp = 0;
  std::vector<grid::IntVect> declared;
  std::vector<grid::IntVect> observed;
  /// One witness output cell per observed offset (parallel to observed).
  std::vector<grid::IntVect> witnesses;
};

/// The inferred footprint model of one kernel shape — what mutate.cpp
/// miscompiles and checkKernelFootprints() proves against.
struct KernelFootprintModel {
  std::string kernel;
  kernels::Stage stage = kernels::Stage::FusedCell;
  int dir = -1;
  grid::Box probeRegion; ///< output region of the defining probe
  grid::Pitch pitch = grid::Pitch::Padded;
  std::vector<RoleFootprint> reads;
  RoleFootprint output; ///< dependence on the output's prior contents
  RoleFootprint writes; ///< offset 0 = in-region; others = overhang
  std::vector<KernelDiag> probeDiags; ///< pad accesses, non-affine, gaps
  std::int64_t probes = 0; ///< perturbation runs performed
};

/// Probe configuration. The defaults are the tool/test configuration;
/// the runner gate shrinks the box and forces sampling to stay cheap.
struct ProbeOptions {
  int boxSize = 8;
  /// Nonzero low corner of the output region, so absolute-index bugs
  /// cannot alias with relative offsets.
  grid::IntVect origin{5, -3, 9};
  grid::Pitch pitch = grid::Pitch::Padded;
  /// Perturbation trials per slot with distinct deltas: one exact
  /// cancellation cannot mask a dependence.
  int trials = 2;
  std::uint64_t seed = 1;
  grid::Real scale = 0.5;
  /// Probe every input slot while the input allocation holds at most
  /// this many; beyond it, use the structured sample (axis pencils,
  /// corner neighborhoods, seeded lattice, pad lanes — every declared
  /// offset still exercised). 0 forces sampling.
  std::int64_t exhaustiveSlotLimit = 25000;
  /// Approximate slot count of the structured sample.
  int sampleTarget = 1200;
};

/// Execute `shape` over concrete fabs and infer its footprint model
/// (declared sets filled from kernels/footprint.hpp).
KernelFootprintModel inferFootprint(const KernelShape& shape,
                                    const ProbeOptions& opts);

/// The size-parametric lift: infer at every size x pitch and require the
/// offset sets to agree exactly — a size- or pitch-dependent access is
/// not an affine stencil and is appended as NonAffineAccess. Returns the
/// first configuration's model carrying the merged diagnostics.
KernelFootprintModel inferFootprintAcross(const KernelShape& shape,
                                          const std::vector<int>& sizes,
                                          const std::vector<grid::Pitch>& pitches,
                                          ProbeOptions opts);

/// Result of one checkKernelFootprints() pass: `diagnostics` empty iff
/// K1 holds and nothing non-affine or mismatched was observed;
/// `advisories` carries the K2 tightness findings.
struct KernelCheckReport {
  std::string kernel;
  std::vector<KernelDiag> diagnostics;
  std::vector<KernelDiag> advisories;
  int rolesChecked = 0;
  int declaredOffsets = 0; ///< declared read offsets across all roles
  std::int64_t probes = 0;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Prove K1 (observed within declared) and K2 (declared within observed)
/// for every role of `m`, folding in the probe-time diagnostics.
KernelCheckReport checkKernelFootprints(const KernelFootprintModel& m);

/// Per-direction footprint hulls proven by inference, feeding K3.
struct ProvenFootprints {
  std::array<grid::Box, 3> fused;
  std::array<grid::Box, 3> evalFlux1;
};

/// The declared contract's hulls (the K3 baseline when no inference has
/// run — e.g. for tests exercising the graph check in isolation).
ProvenFootprints declaredFootprints();

/// Extract proven hulls from inferred models: pipeline/FusedCell models
/// set `fused`, EvalFlux1 stage models set `evalFlux1`. Directions not
/// covered by any model keep the declared hulls.
ProvenFootprints extractProven(const std::vector<KernelFootprintModel>& models);

/// K3: prove the footprints a lowered task graph declares agree with the
/// proven ones. Every non-exchange task writing Phi1 (resp. Velocity)
/// must read Phi0 at least over its write region grown by the proven
/// fused (resp. EvalFlux1) hull per direction — ContractMismatch names
/// the task and direction otherwise — and every Phi0 read must stay
/// inside the proven union hull, else an Overdeclared advisory.
std::vector<KernelDiag> checkGraphFootprints(const TaskGraphModel& m,
                                             const ProvenFootprints& proven);

/// Satellite of the advisor: lift K2 tightness advisories into cost
/// notes — a declared-but-never-read offset means the cost model and the
/// exchange plan price ghost cells no kernel touches.
std::vector<CostNote> overdeclaredNotes(const KernelCheckReport& rep);

/// Canonical stage tag of a (stage, dir) pair: "EvalFlux1[d=y]", or
/// "FusedCell[pipeline]" for whole-pipeline shapes (dir == -1).
std::string kernelStageTag(kernels::Stage stage, int dir);

/// The built-in shapes of the shipped kernels: scalar and pencil stage
/// drivers per stage x direction, plus the reference and naive
/// pipelines. Variant-executor shapes live in core/kernelshapes.hpp —
/// this library does not link the executors.
std::vector<KernelShape> builtinStageShapes();
std::vector<KernelShape> builtinPipelineShapes();
std::vector<KernelShape> builtinShapes();

} // namespace fluxdiv::analysis
