#pragma once
// ScheduleVerifier: proves a lowered ScheduleModel legal, or returns a
// structured diagnostic naming the offending stage pair and the violating
// cell region. The legality rules (docs/static-analysis.md):
//
//   R1 (coverage)     every read is covered by prior writes, by the
//                     declared ghost region (Phi0), or by the item's own
//                     recomputation (Private storage).
//   R2 (disjointness) no two concurrently-scheduled items have
//                     intersecting write footprints, and no item reads
//                     what a concurrent item writes.
//   R3 (skew)         wavefront skews strictly dominate the carried
//                     dependence cone (skew . dep >= 1), and same-front
//                     iterations never share a storage slot.
//
// Verification is pure box arithmetic: cheap enough to run on every
// variant at registration in debug builds (see FluxDivRunner).

#include <string>

#include "analysis/model.hpp"
#include "core/variant.hpp"

namespace fluxdiv::analysis {

enum class DiagnosticKind {
  Ok,
  HaloTooShallow,     ///< Phi0 read reaches beyond the declared ghost depth
  RecomputeUncovered, ///< private temporary read the item never produced
  ReadUncovered,      ///< shared field read with no prior producing write
  WriteOverlap,       ///< concurrent items write intersecting regions
  ReadWriteRace,      ///< item reads what a concurrent item writes
  SkewTooSmall,       ///< wavefront skew does not dominate a dependence
  DependencyCycle,    ///< task-graph edges admit no topological order
};

const char* diagnosticKindName(DiagnosticKind k);

/// Structured verification verdict. `stageA` is the consuming/first stage,
/// `stageB` the producing/conflicting stage, `region` the violating cell
/// (or cache-slot) region.
struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::Ok;
  std::string variant;
  std::string stageA;
  std::string stageB;
  std::string itemA;
  std::string itemB;
  grid::Box region;

  [[nodiscard]] bool ok() const { return kind == DiagnosticKind::Ok; }
  /// One-line human-readable rendering of the verdict.
  [[nodiscard]] std::string message() const;
};

class ScheduleVerifier {
public:
  /// Verify an explicit model (possibly hand-mutated; see mutate.hpp).
  [[nodiscard]] Diagnostic verify(const ScheduleModel& model) const;

  /// Lower `cfg` over a cube of side `boxSize` for `nThreads` workers and
  /// verify the result.
  [[nodiscard]] Diagnostic verify(const core::VariantConfig& cfg,
                                  int boxSize, int nThreads) const;
};

} // namespace fluxdiv::analysis
