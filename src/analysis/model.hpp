#pragma once
// The schedule model: an explicit intermediate representation of what one
// scheduling variant does to the exemplar's data — which stages run, over
// which regions, in which concurrency structure. lowerVariant()
// (lower.hpp) builds a model that mirrors the executors in src/core
// exactly; ScheduleVerifier (verifier.hpp) then proves the model legal by
// pure box arithmetic. Deliberately-broken models (mutate.hpp) demonstrate
// that each legality rule actually rejects.
//
// Concurrency is expressed two ways, matching how the executors create it:
//   * Phase: a barrier-delimited group of WorkItems that execute
//     concurrently; each item runs its stage list sequentially. Used for
//     z-slab teams, overlapped tiles, and tile wavefront fronts, where the
//     item count is small enough to check pairwise.
//   * ConeCheck: a symbolic wavefront over a lattice (cells or tile
//     coordinates) with a skew vector and carried dependence vectors. Used
//     for the per-cell wavefronts, whose fronts are far too large to
//     enumerate pairwise but whose legality is exactly "the skew strictly
//     dominates the dependence cone, and same-front iterations never share
//     a storage slot".

#include <array>
#include <string>
#include <vector>

#include "grid/box.hpp"
#include "grid/intvect.hpp"

namespace fluxdiv::analysis {

using grid::Box;
using grid::IntVect;

/// The abstract storage locations the pipeline touches. Cache fields are
/// the co-dimension flux caches of the wavefront schedules: CacheX is
/// indexed by (y, z) only, and so on (the masked direction is projected
/// out of their slot boxes).
enum class FieldId {
  Phi0,     ///< ghosted input solution (read-only during a step)
  Phi1,     ///< output solution (flux differences accumulate here)
  Flux,     ///< face-centered flux temporary (baseline / basic OT)
  Velocity, ///< face-averaged velocity temporary
  CacheX,   ///< co-dimension flux caches (blocked/cell wavefronts)
  CacheY,
  CacheZ,
};

const char* fieldName(FieldId f);

/// Whether a temporary is private to one work item (per-thread/per-tile
/// scratch: never conflicts across items, must be produced by the item
/// itself) or shared by all items (level/box-wide storage: conflicts and
/// cross-item production are both possible).
enum class StorageClass { Shared, Private };

/// One rectangular access of a stage: `box` is in cell/face index space
/// for grid fields, and in slot space for cache fields (the masked
/// direction collapsed to [0, 0]).
struct Access {
  FieldId field = FieldId::Phi0;
  StorageClass storage = StorageClass::Shared;
  int comp0 = 0;
  int nComp = 1;
  Box box;

  /// True if the two accesses can touch the same memory.
  [[nodiscard]] bool overlaps(const Access& o) const {
    return field == o.field && comp0 < o.comp0 + o.nComp &&
           o.comp0 < comp0 + nComp && box.intersects(o.box);
  }
};

/// One executor pass (e.g. "EvalFlux1[d=2,c=4]" over a slab, or the whole
/// fused sweep of a tile), with its declared reads and writes.
struct StageExec {
  std::string stage;
  std::vector<Access> reads;
  std::vector<Access> writes;
};

/// A sequential stream of stages executed by one worker/tile/slab.
struct WorkItem {
  std::string name;
  std::vector<StageExec> stages;
};

/// Barrier-delimited group of concurrently-executing items. Phases execute
/// in order with an implied barrier between them (exactly the executors'
/// omp barriers / implicit loop-end barriers).
struct Phase {
  std::string name;
  std::vector<WorkItem> items;
};

/// Symbolic wavefront legality record. The executor iterates `lattice`
/// grouped into fronts by skew . (p - lattice.lo); iterations within one
/// front run concurrently.
struct ConeCheck {
  std::string name;
  Box lattice;
  IntVect skew = IntVect::unit(1);

  /// A loop-carried flow dependence: iteration u produces (producerStage)
  /// what iteration u + vector consumes (consumerStage).
  struct Dep {
    IntVect vector;
    std::string producerStage;
    std::string consumerStage;
  };
  std::vector<Dep> deps;

  /// A per-iteration write, for the same-front slot-collision check.
  /// `indexed[d]` says whether direction d addresses the field's storage;
  /// co-dimension caches project one direction out (CacheZ is indexed by
  /// (x, y), so indexed = {1, 1, 0} and any two iterations differing only
  /// in z write the same slot).
  struct LatticeWrite {
    FieldId field = FieldId::Phi1;
    std::string stage;
    std::array<bool, 3> indexed{true, true, true};
  };
  std::vector<LatticeWrite> writes;
};

/// The complete lowered schedule of one variant over one box.
struct ScheduleModel {
  std::string variant; ///< display name for diagnostics
  Box valid;           ///< the cell region being computed
  int ghost = 0;       ///< ghost layers available on Phi0
  std::vector<ConeCheck> cones;
  std::vector<Phase> phases;
};

} // namespace fluxdiv::analysis
