#pragma once
// Shared runtime for the FLUXDIV_VERIFY_* gates (docs/static-analysis.md,
// "The verification stack"). Every executor-side gate — schedule, kernel,
// graph, comm, step — has the same shape: compiled in by default in Debug
// (or with -DFLUXDIV_VERIFY_X=ON), overridable at run time through its
// FLUXDIV_VERIFY_X environment variable (0/off/false disables), and
// memoized so each distinct shape is proven exactly once per gate
// instance. VerifyGate centralizes that boilerplate; the checkers
// themselves stay in their own translation units.

#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace fluxdiv::analysis {

class VerifyGate {
public:
  /// `envVar` names the runtime override (e.g. "FLUXDIV_VERIFY_STEP");
  /// `compiledIn` is the call site's gate macro (the gate is a no-op in
  /// builds that did not compile the checker in). The environment is read
  /// once, at construction.
  VerifyGate(const char* envVar, bool compiledIn);

  /// Compiled in and not disabled through the environment.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True exactly once per distinct shape key — the caller runs its
  /// checker on `true`. Always false when the gate is disabled. The key
  /// is inserted *before* the caller's checker runs, so a checker that
  /// re-enters its own gate (the kernel probe does) terminates; the
  /// insertion is mutex-protected, so a process-wide static gate is safe
  /// under concurrent executors.
  bool shouldVerify(const std::string& shapeKey);

  /// Number of distinct shapes verified so far (tests).
  [[nodiscard]] std::size_t verifiedShapes() const;

private:
  bool enabled_ = false;
  mutable std::mutex mutex_;
  std::unordered_set<std::string> seen_;
};

/// The uniform gate-failure text every verifier throws:
///   "<header> (N diagnostic(s)):" + the first four messages +
///   "  (+K more)" when truncated.
std::string verifyFailureMessage(std::string header,
                                 const std::vector<std::string>& diags);

} // namespace fluxdiv::analysis
