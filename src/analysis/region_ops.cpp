#include "analysis/region_ops.hpp"

namespace fluxdiv::analysis {

std::vector<Box> subtractAll(const Box& target,
                             const std::vector<Box>& cuts) {
  std::vector<Box> pieces;
  if (target.empty()) {
    return pieces;
  }
  pieces.push_back(target);
  for (const Box& cut : cuts) {
    if (cut.empty()) {
      continue;
    }
    std::vector<Box> next;
    next.reserve(pieces.size());
    for (const Box& piece : pieces) {
      if (!piece.intersects(cut)) {
        next.push_back(piece);
        continue;
      }
      std::vector<Box> diff = boxDiff(piece, cut);
      next.insert(next.end(), diff.begin(), diff.end());
    }
    pieces = std::move(next);
    if (pieces.empty()) {
      break;
    }
  }
  return pieces;
}

std::vector<Box> CoverSet::missingPieces(const Box& target) const {
  return subtractAll(target, boxes_);
}

std::optional<PairOverlap> firstPairOverlap(const std::vector<Box>& boxes) {
  for (std::size_t i = 0; i + 1 < boxes.size(); ++i) {
    if (boxes[i].empty()) {
      continue;
    }
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      const Box shared = boxes[i] & boxes[j];
      if (!shared.empty()) {
        return PairOverlap{i, j, shared};
      }
    }
  }
  return std::nullopt;
}

} // namespace fluxdiv::analysis
