#include "analysis/lower.hpp"

#include <stdexcept>

#include "kernels/footprint.hpp"
#include "sched/partition.hpp"
#include "sched/tiles.hpp"

namespace fluxdiv::analysis {

namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::ScheduleFamily;
using core::TileAspect;
using core::VariantConfig;
using kernels::kNumComp;
using kernels::readRegion;
using kernels::Stage;
using kernels::velocityComp;

constexpr StorageClass kShared = StorageClass::Shared;
constexpr StorageClass kPrivate = StorageClass::Private;

const char* dirName(int d) { return d == 0 ? "x" : (d == 1 ? "y" : "z"); }

/// Canonical per-direction stage label, e.g. "EvalFlux1[d=x]" — the one
/// spelling of kernels::stageName the verifier diagnostics, mutation
/// greps, and kernelcheck witnesses all share.
std::string stageTag(Stage stage, int d) {
  return std::string(kernels::stageName(stage)) + "[d=" + dirName(d) + "]";
}

/// Per-direction, per-component stage label, e.g. "EvalFlux2[d=x,c=2]".
std::string stageTagC(Stage stage, int d, int c) {
  return std::string(kernels::stageName(stage)) + "[d=" + dirName(d) +
         ",c=" + std::to_string(c) + "]";
}

FieldId cacheField(int d) {
  return d == 0 ? FieldId::CacheX
                : (d == 1 ? FieldId::CacheY : FieldId::CacheZ);
}

Access access(FieldId f, StorageClass s, int c0, int nc, const Box& b) {
  return Access{f, s, c0, nc, b};
}

/// Slot region of the co-dimension cache for direction d over cell region
/// `r`: the masked direction is projected out of slot space.
Box slotBox(int d, const Box& r) {
  IntVect lo = r.lo();
  IntVect hi = r.hi();
  lo[d] = 0;
  hi[d] = 0;
  return {lo, hi};
}

std::string coordTag(const IntVect& p) {
  return "(" + std::to_string(p[0]) + "," + std::to_string(p[1]) + "," +
         std::to_string(p[2]) + ")";
}

/// Tile extents of a tiled config over `valid` (mirrors
/// core::detail::makeTileSet, which is internal to src/core).
sched::TileSet makeTiles(const VariantConfig& cfg, const Box& valid) {
  IntVect tile;
  switch (cfg.aspect) {
  case TileAspect::Pencil:
    tile = IntVect(valid.size(0), cfg.tileSize, cfg.tileSize);
    break;
  case TileAspect::Slab:
    tile = IntVect(valid.size(0), valid.size(1), cfg.tileSize);
    break;
  case TileAspect::Cube:
  default:
    tile = IntVect::unit(cfg.tileSize);
    break;
  }
  return sched::TileSet(valid, tile);
}

// ---------------------------------------------------------------------------
// Stage emitters. Each mirrors one executor code path; `tag` prefixes the
// stage names with the enclosing tile/slab identity for diagnostics.
// ---------------------------------------------------------------------------

/// Serial series-of-loops pipeline over `region` (baselineBoxSerial /
/// basic-schedule overlapped tiles), temporaries in `scope`.
void emitBaselineSerial(WorkItem& item, const VariantConfig& cfg,
                        const Box& region, StorageClass scope,
                        const std::string& tag) {
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = region.faceBox(d);
    const int vd = velocityComp(d);
    {
      StageExec s;
      s.stage = tag + stageTag(Stage::EvalFlux1, d);
      s.reads.push_back(access(FieldId::Phi0, kShared, 0, kNumComp,
                               readRegion(Stage::EvalFlux1, d, fb)));
      s.writes.push_back(access(FieldId::Flux, scope, 0, kNumComp, fb));
      item.stages.push_back(std::move(s));
    }
    if (cfg.comp == ComponentLoop::Inside) {
      // CLI preserves the velocity face averages before EvalFlux2
      // overwrites the flux fab in place (the Velocity temporary).
      StageExec copy;
      copy.stage = tag + "VelocityCopy[d=" + dirName(d) + "]";
      copy.reads.push_back(access(FieldId::Flux, scope, vd, 1, fb));
      copy.writes.push_back(access(FieldId::Velocity, scope, 0, 1, fb));
      item.stages.push_back(std::move(copy));

      StageExec f2;
      f2.stage = tag + stageTag(Stage::EvalFlux2, d);
      f2.reads.push_back(access(FieldId::Velocity, scope, 0, 1, fb));
      f2.reads.push_back(access(FieldId::Flux, scope, 0, kNumComp, fb));
      f2.writes.push_back(access(FieldId::Flux, scope, 0, kNumComp, fb));
      item.stages.push_back(std::move(f2));

      StageExec acc;
      acc.stage = tag + stageTag(Stage::FluxDifference, d);
      acc.reads.push_back(
          access(FieldId::Flux, scope, 0, kNumComp,
                 readRegion(Stage::FluxDifference, d, region)));
      acc.writes.push_back(
          access(FieldId::Phi1, kShared, 0, kNumComp, region));
      item.stages.push_back(std::move(acc));
    } else {
      // CLO multiplies the velocity component last, so the velocity
      // column survives in the flux fab until every other component has
      // consumed it (no Velocity temporary).
      auto emitComp = [&](int c) {
        StageExec f2;
        f2.stage = tag + stageTagC(Stage::EvalFlux2, d, c);
        f2.reads.push_back(access(FieldId::Flux, scope, vd, 1, fb));
        f2.writes.push_back(access(FieldId::Flux, scope, c, 1, fb));
        item.stages.push_back(std::move(f2));

        StageExec acc;
        acc.stage = tag + stageTagC(Stage::FluxDifference, d, c);
        acc.reads.push_back(
            access(FieldId::Flux, scope, c, 1,
                   readRegion(Stage::FluxDifference, d, region)));
        acc.writes.push_back(access(FieldId::Phi1, kShared, c, 1, region));
        item.stages.push_back(std::move(acc));
      };
      for (int c = 0; c < kNumComp; ++c) {
        if (c != vd) {
          emitComp(c);
        }
      }
      emitComp(vd);
    }
  }
}

/// Serial shifted+fused sweep over `region` (shiftFuseBoxSerial / the
/// shift-fuse overlapped tiles). The scalar/row/plane carries are private
/// to the sweep and produced strictly before use by the lexicographic
/// traversal, so they are not modeled; the CLO velocity precompute is.
void emitFusedSerial(WorkItem& item, const VariantConfig& cfg,
                     const Box& region, StorageClass scope,
                     const std::string& tag) {
  if (cfg.comp == ComponentLoop::Outside) {
    StageExec pre;
    pre.stage = tag + "PrecomputeVelocity";
    for (int d = 0; d < grid::SpaceDim; ++d) {
      const Box fb = region.faceBox(d);
      pre.reads.push_back(access(FieldId::Phi0, kShared, velocityComp(d), 1,
                                 readRegion(Stage::EvalFlux1, d, fb)));
      pre.writes.push_back(access(FieldId::Velocity, scope, d, 1, fb));
    }
    item.stages.push_back(std::move(pre));
  }
  StageExec sweep;
  sweep.stage = tag + "FusedSweep";
  for (int d = 0; d < grid::SpaceDim; ++d) {
    sweep.reads.push_back(access(FieldId::Phi0, kShared, 0, kNumComp,
                                 readRegion(Stage::FusedCell, d, region)));
    if (cfg.comp == ComponentLoop::Outside) {
      sweep.reads.push_back(
          access(FieldId::Velocity, scope, d, 1, region.faceBox(d)));
    }
  }
  sweep.writes.push_back(
      access(FieldId::Phi1, kShared, 0, kNumComp, region));
  item.stages.push_back(std::move(sweep));
}

/// One blocked-wavefront tile sweep: fused over the tile, low-face fluxes
/// drawn from (and high-face fluxes deposited into) the box-global
/// co-dimension caches. `cacheComps` is kNumComp for CLI, 1 for the
/// per-component CLO passes.
StageExec blockedTileStage(const Box& tb, const IntVect& coords,
                           const Box& valid, ComponentLoop comp, int c0,
                           int cacheComps) {
  StageExec s;
  s.stage = "FusedTileSweep" + coordTag(coords);
  const bool cli = comp == ComponentLoop::Inside;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    s.reads.push_back(access(FieldId::Phi0, kShared, cli ? 0 : c0,
                             cli ? kNumComp : 1,
                             readRegion(Stage::FusedCell, d, tb)));
    if (cli) {
      // fusedCellCLI also reads the velocity components at +/-2 offsets;
      // covered by the all-component access above.
    } else {
      s.reads.push_back(
          access(FieldId::Velocity, kShared, d, 1, tb.faceBox(d)));
    }
    if (coords[d] > 0) {
      // Entry cells consume the -d neighbor's deposited boundary fluxes.
      s.reads.push_back(
          access(cacheField(d), kShared, 0, cacheComps, slotBox(d, tb)));
    }
    s.writes.push_back(
        access(cacheField(d), kShared, 0, cacheComps, slotBox(d, tb)));
  }
  (void)valid;
  s.writes.push_back(
      access(FieldId::Phi1, kShared, c0, cli ? kNumComp : 1, tb));
  return s;
}

/// Whole-box velocity precompute, appended to a serial item (the serial
/// CLO blocked-wavefront path precomputes before sweeping tiles).
void emitVelocityPrecompute(WorkItem& item, const Box& valid) {
  StageExec pre;
  pre.stage = "PrecomputeVelocity";
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = valid.faceBox(d);
    pre.reads.push_back(access(FieldId::Phi0, kShared, velocityComp(d), 1,
                               readRegion(Stage::EvalFlux1, d, fb)));
    pre.writes.push_back(access(FieldId::Velocity, kShared, d, 1, fb));
  }
  item.stages.push_back(std::move(pre));
}

/// Slab-parallel velocity precompute phase (precomputeFaceVelocity).
Phase velocityPrecomputePhase(const Box& valid, int nThreads) {
  Phase phase;
  phase.name = "precompute-velocity";
  for (int tid = 0; tid < nThreads; ++tid) {
    WorkItem item;
    item.name = "slab " + std::to_string(tid);
    StageExec s;
    s.stage = "PrecomputeVelocity";
    for (int d = 0; d < grid::SpaceDim; ++d) {
      const Box fb = sched::zSlab(valid.faceBox(d), nThreads, tid);
      if (fb.empty()) {
        continue;
      }
      s.reads.push_back(access(FieldId::Phi0, kShared, velocityComp(d), 1,
                               readRegion(Stage::EvalFlux1, d, fb)));
      s.writes.push_back(access(FieldId::Velocity, kShared, d, 1, fb));
    }
    if (!s.reads.empty()) {
      item.stages.push_back(std::move(s));
      phase.items.push_back(std::move(item));
    }
  }
  return phase;
}

/// Carried-dependence record of a fused wavefront over `lattice` (cells or
/// tile coordinates): dependence vectors are the three carry directions,
/// writes are the target field plus the three co-dimension caches.
ConeCheck fusedCone(const std::string& name, const Box& lattice) {
  ConeCheck cone;
  cone.name = name;
  cone.lattice = lattice;
  cone.skew = IntVect::unit(1); // front index = x + y + z
  for (int d = 0; d < grid::SpaceDim; ++d) {
    ConeCheck::Dep dep;
    dep.vector = IntVect::basis(d);
    dep.producerStage =
        std::string("carry-") + dirName(d) + " flux deposit";
    dep.consumerStage = std::string("carry-") + dirName(d) + " flux read";
    cone.deps.push_back(std::move(dep));

    ConeCheck::LatticeWrite cw;
    cw.field = cacheField(d);
    cw.stage = std::string("carry-") + dirName(d) + " flux deposit";
    cw.indexed = {true, true, true};
    cw.indexed[static_cast<std::size_t>(d)] = false; // projected out
    cone.writes.push_back(std::move(cw));
  }
  ConeCheck::LatticeWrite pw;
  pw.field = FieldId::Phi1;
  pw.stage = std::string(kernels::stageName(Stage::FluxDifference)) + " (fused)";
  pw.indexed = {true, true, true};
  cone.writes.push_back(std::move(pw));
  return cone;
}

// ---------------------------------------------------------------------------
// Per-family lowerings.
// ---------------------------------------------------------------------------

void lowerBaseline(ScheduleModel& m, const VariantConfig& cfg,
                   const Box& valid, int nThreads) {
  if (cfg.par != ParallelGranularity::WithinBox) {
    Phase phase;
    phase.name = "serial";
    WorkItem item;
    item.name = "box";
    emitBaselineSerial(item, cfg, valid, kPrivate, "");
    phase.items.push_back(std::move(item));
    m.phases.push_back(std::move(phase));
    return;
  }

  // Within-box z-slab team, mirroring baselineBody's barrier placement:
  // EvalFlux1 | B | EvalFlux2[c0] | B | FluxDiff[c0] EvalFlux2[c1] | B |
  // ... | FluxDiff[c3] EvalFlux2[vd] | B | FluxDiff[vd] | B | next d.
  auto slabItems = [&](const std::string& phaseName) {
    Phase phase;
    phase.name = phaseName;
    for (int tid = 0; tid < nThreads; ++tid) {
      if (!sched::zSlab(valid, nThreads, tid).empty() ||
          !sched::zSlab(valid.faceBox(2), nThreads, tid).empty()) {
        WorkItem item;
        item.name = "slab " + std::to_string(tid);
        phase.items.push_back(std::move(item));
      }
    }
    return phase;
  };

  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Box fb = valid.faceBox(d);
    const int vd = velocityComp(d);
    const std::string dTag = std::string("d=") + dirName(d);

    auto faceSlab = [&](int tid) {
      return sched::zSlab(fb, nThreads, tid);
    };
    auto cellSlab = [&](int tid) {
      return sched::zSlab(valid, nThreads, tid);
    };
    auto evalFlux1Stage = [&](int tid) {
      StageExec s;
      s.stage = stageTag(Stage::EvalFlux1, d);
      s.reads.push_back(access(FieldId::Phi0, kShared, 0, kNumComp,
                               readRegion(Stage::EvalFlux1, d,
                                          faceSlab(tid))));
      s.writes.push_back(
          access(FieldId::Flux, kShared, 0, kNumComp, faceSlab(tid)));
      return s;
    };
    auto fluxDiffStage = [&](int tid, int c, int nc) {
      StageExec s;
      s.stage = stageTagC(Stage::FluxDifference, d, c);
      s.reads.push_back(
          access(FieldId::Flux, kShared, c, nc,
                 readRegion(Stage::FluxDifference, d, cellSlab(tid))));
      s.writes.push_back(
          access(FieldId::Phi1, kShared, c, nc, cellSlab(tid)));
      return s;
    };

    if (cfg.comp == ComponentLoop::Inside) {
      Phase face = slabItems("baseline " + dTag + " face passes");
      for (auto& item : face.items) {
        const int tid = std::stoi(item.name.substr(5));
        item.stages.push_back(evalFlux1Stage(tid));
        StageExec copy;
        copy.stage = "VelocityCopy[" + dTag + "]";
        copy.reads.push_back(
            access(FieldId::Flux, kShared, vd, 1, faceSlab(tid)));
        copy.writes.push_back(
            access(FieldId::Velocity, kShared, 0, 1, faceSlab(tid)));
        item.stages.push_back(std::move(copy));
        StageExec f2;
        f2.stage = stageTag(Stage::EvalFlux2, d);
        f2.reads.push_back(
            access(FieldId::Velocity, kShared, 0, 1, faceSlab(tid)));
        f2.reads.push_back(
            access(FieldId::Flux, kShared, 0, kNumComp, faceSlab(tid)));
        f2.writes.push_back(
            access(FieldId::Flux, kShared, 0, kNumComp, faceSlab(tid)));
        item.stages.push_back(std::move(f2));
      }
      m.phases.push_back(std::move(face));

      Phase acc = slabItems("baseline " + dTag + " accumulate");
      for (auto& item : acc.items) {
        const int tid = std::stoi(item.name.substr(5));
        item.stages.push_back(fluxDiffStage(tid, 0, kNumComp));
      }
      m.phases.push_back(std::move(acc));
      continue;
    }

    // CLO: the velocity component is consumed by every other component's
    // EvalFlux2 and multiplied last.
    Phase face = slabItems("baseline " + dTag + " EvalFlux1");
    for (auto& item : face.items) {
      const int tid = std::stoi(item.name.substr(5));
      item.stages.push_back(evalFlux1Stage(tid));
    }
    m.phases.push_back(std::move(face));

    std::vector<int> order;
    for (int c = 0; c < kNumComp; ++c) {
      if (c != vd) {
        order.push_back(c);
      }
    }
    order.push_back(vd);

    auto evalFlux2Stage = [&](int tid, int c) {
      StageExec s;
      s.stage = stageTagC(Stage::EvalFlux2, d, c);
      s.reads.push_back(
          access(FieldId::Flux, kShared, vd, 1, faceSlab(tid)));
      s.writes.push_back(
          access(FieldId::Flux, kShared, c, 1, faceSlab(tid)));
      return s;
    };

    int prev = -1;
    for (int c : order) {
      Phase phase = slabItems("baseline " + dTag + " pipeline c=" +
                              std::to_string(c));
      for (auto& item : phase.items) {
        const int tid = std::stoi(item.name.substr(5));
        if (prev >= 0) {
          item.stages.push_back(fluxDiffStage(tid, prev, 1));
        }
        item.stages.push_back(evalFlux2Stage(tid, c));
      }
      m.phases.push_back(std::move(phase));
      prev = c;
    }
    Phase last = slabItems("baseline " + dTag + " accumulate c=" +
                           std::to_string(vd));
    for (auto& item : last.items) {
      const int tid = std::stoi(item.name.substr(5));
      item.stages.push_back(fluxDiffStage(tid, vd, 1));
    }
    m.phases.push_back(std::move(last));
  }
}

void lowerShiftFuse(ScheduleModel& m, const VariantConfig& cfg,
                    const Box& valid, int nThreads) {
  if (cfg.par != ParallelGranularity::WithinBox) {
    Phase phase;
    phase.name = "serial";
    WorkItem item;
    item.name = "box";
    emitFusedSerial(item, cfg, valid, kPrivate, "");
    phase.items.push_back(std::move(item));
    m.phases.push_back(std::move(phase));
    return;
  }

  // Per-iteration cell wavefront: concurrency legality is symbolic.
  m.cones.push_back(fusedCone("cell wavefront", valid));

  const bool clo = cfg.comp == ComponentLoop::Outside;
  if (clo) {
    m.phases.push_back(velocityPrecomputePhase(valid, nThreads));
  }
  const int sweeps = clo ? kNumComp : 1;
  for (int c = 0; c < sweeps; ++c) {
    Phase phase;
    phase.name = clo ? "fused wavefront c=" + std::to_string(c)
                     : "fused wavefront";
    WorkItem item;
    item.name = "front team";
    StageExec s;
    s.stage = "FusedSweep (wavefront)";
    for (int d = 0; d < grid::SpaceDim; ++d) {
      s.reads.push_back(access(FieldId::Phi0, kShared, clo ? c : 0,
                               clo ? 1 : kNumComp,
                               readRegion(Stage::FusedCell, d, valid)));
      if (clo) {
        s.reads.push_back(
            access(FieldId::Velocity, kShared, d, 1, valid.faceBox(d)));
      }
      s.writes.push_back(access(cacheField(d), kShared, 0,
                                clo ? 1 : kNumComp, slotBox(d, valid)));
    }
    s.writes.push_back(
        access(FieldId::Phi1, kShared, clo ? c : 0, clo ? 1 : kNumComp,
               valid));
    item.stages.push_back(std::move(s));
    phase.items.push_back(std::move(item));
    m.phases.push_back(std::move(phase));
  }
}

void lowerBlockedWF(ScheduleModel& m, const VariantConfig& cfg,
                    const Box& valid, int nThreads) {
  const sched::TileSet tiles = makeTiles(cfg, valid);
  const bool cli = cfg.comp == ComponentLoop::Inside;
  const int cacheComps = cli ? kNumComp : 1;
  const bool parallel =
      cfg.par == ParallelGranularity::WithinBox && nThreads > 1;

  if (!parallel) {
    // Serial lexicographic tile order (a topological order of the
    // inter-tile carry dependences).
    Phase phase;
    phase.name = "serial tiles";
    WorkItem item;
    item.name = "box";
    if (!cli) {
      emitVelocityPrecompute(item, valid);
    }
    const int sweeps = cli ? 1 : kNumComp;
    for (int c = 0; c < sweeps; ++c) {
      for (std::size_t t = 0; t < tiles.size(); ++t) {
        item.stages.push_back(blockedTileStage(
            tiles.tileBox(t), tiles.tileCoords(t), valid, cfg.comp, c,
            cacheComps));
      }
    }
    phase.items.push_back(std::move(item));
    m.phases.push_back(std::move(phase));
    return;
  }

  // Tile wavefronts: symbolic cone over tile coordinates, plus the
  // explicit front decomposition for the coverage/disjointness walk.
  m.cones.push_back(fusedCone(
      "tile wavefront",
      Box(IntVect::zero(), tiles.gridSize() - IntVect::unit(1))));

  if (!cli) {
    m.phases.push_back(velocityPrecomputePhase(valid, nThreads));
  }
  const sched::TileWavefronts fronts(tiles);
  const int sweeps = cli ? 1 : kNumComp;
  for (int c = 0; c < sweeps; ++c) {
    for (std::size_t w = 0; w < fronts.count(); ++w) {
      Phase phase;
      phase.name = (cli ? std::string("blocked-wf front ")
                        : "blocked-wf c=" + std::to_string(c) +
                              " front ") +
                   std::to_string(w);
      for (std::size_t t : fronts.front(w)) {
        WorkItem item;
        item.name = "tile " + coordTag(tiles.tileCoords(t));
        item.stages.push_back(blockedTileStage(
            tiles.tileBox(t), tiles.tileCoords(t), valid, cfg.comp, c,
            cacheComps));
        phase.items.push_back(std::move(item));
      }
      m.phases.push_back(std::move(phase));
    }
  }
}

void lowerOverlapped(ScheduleModel& m, const VariantConfig& cfg,
                     const Box& valid, int nThreads) {
  const sched::TileSet tiles = makeTiles(cfg, valid);
  const bool parallel = cfg.par != ParallelGranularity::OverBoxes;

  Phase phase;
  phase.name = parallel ? "overlapped tiles (concurrent)"
                        : "overlapped tiles (serial)";
  auto tileItem = [&](std::size_t t) {
    WorkItem item;
    item.name = "tile " + coordTag(tiles.tileCoords(t));
    const Box tb = tiles.tileBox(t);
    const std::string tag = item.name + " ";
    if (cfg.intra == IntraTileSchedule::Basic) {
      emitBaselineSerial(item, cfg, tb, kPrivate, tag);
    } else {
      emitFusedSerial(item, cfg, tb, kPrivate, tag);
    }
    return item;
  };

  if (parallel) {
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      phase.items.push_back(tileItem(t));
    }
  } else {
    // Serial traversal (lexicographic or Morton — legality is order-
    // independent because tiles recompute their whole flux need): one
    // item running every tile in sequence.
    WorkItem item;
    item.name = "box";
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      WorkItem tileStages = tileItem(t);
      for (auto& s : tileStages.stages) {
        item.stages.push_back(std::move(s));
      }
    }
    phase.items.push_back(std::move(item));
  }
  m.phases.push_back(std::move(phase));
  (void)nThreads;
}

} // namespace

std::string variantLabel(const VariantConfig& cfg) {
  std::string n;
  switch (cfg.family) {
  case ScheduleFamily::SeriesOfLoops:
    n = "Baseline";
    break;
  case ScheduleFamily::ShiftFuse:
    n = "Shift-Fuse";
    break;
  case ScheduleFamily::BlockedWavefront:
    n = "Blocked WF";
    break;
  case ScheduleFamily::OverlappedTiles:
    n = cfg.intra == IntraTileSchedule::Basic ? "Basic-Sched OT"
                                              : "Shift-Fuse OT";
    break;
  }
  if (cfg.tileSize > 0) {
    n += "-" + std::to_string(cfg.tileSize);
  }
  n += cfg.comp == ComponentLoop::Inside ? "-CLI" : "-CLO";
  switch (cfg.par) {
  case ParallelGranularity::OverBoxes:
    n += ": P>=Box";
    break;
  case ParallelGranularity::WithinBox:
    n += ": P<Box";
    break;
  case ParallelGranularity::HybridBoxTile:
    n += ": P=Box*Tile";
    break;
  }
  return n;
}

ScheduleModel lowerVariant(const VariantConfig& cfg, const Box& valid,
                           int nThreads) {
  const bool tiled = cfg.family == ScheduleFamily::BlockedWavefront ||
                     cfg.family == ScheduleFamily::OverlappedTiles;
  if (tiled && cfg.tileSize <= 0) {
    throw std::invalid_argument(
        "lowerVariant: tiled family needs a positive tile size");
  }
  if (cfg.par == ParallelGranularity::HybridBoxTile &&
      cfg.family != ScheduleFamily::OverlappedTiles) {
    throw std::invalid_argument(
        "lowerVariant: hybrid granularity requires independent tiles");
  }
  if (nThreads < 1) {
    throw std::invalid_argument("lowerVariant: nThreads must be >= 1");
  }

  ScheduleModel m;
  m.variant = variantLabel(cfg);
  m.valid = valid;
  m.ghost = kernels::kNumGhost;
  switch (cfg.family) {
  case ScheduleFamily::SeriesOfLoops:
    lowerBaseline(m, cfg, valid, nThreads);
    break;
  case ScheduleFamily::ShiftFuse:
    lowerShiftFuse(m, cfg, valid, nThreads);
    break;
  case ScheduleFamily::BlockedWavefront:
    lowerBlockedWF(m, cfg, valid, nThreads);
    break;
  case ScheduleFamily::OverlappedTiles:
    lowerOverlapped(m, cfg, valid, nThreads);
    break;
  }
  return m;
}

} // namespace fluxdiv::analysis
