#pragma once
// The schedule advisor: ranks the variant registry for a target machine by
// predicted memory traffic (costmodel.hpp) and recommends blocked-wavefront
// tile sizes, entirely statically — the tool-facing layer of the cost
// model. `tools/fluxdiv_advisor` prints its output; FluxDivRunner consults
// it under FLUXDIV_ADVISE to warn about capacity-bound variant choices.

#include <string>
#include <vector>

#include "analysis/costmodel.hpp"
#include "core/variant.hpp"

namespace fluxdiv::analysis {

/// One ranked registry entry.
struct RankedVariant {
  core::VariantConfig cfg;
  CostReport cost;
};

/// A blocked-wavefront tile-size recommendation.
struct TileAdvice {
  core::VariantConfig cfg;
  CostReport cost;
  std::string rationale;
};

class ScheduleAdvisor {
public:
  explicit ScheduleAdvisor(CacheSpec spec) : spec_(spec) {}

  [[nodiscard]] const CacheSpec& spec() const { return spec_; }

  /// Analyze one variant for an N^3 box and `nThreads` workers.
  [[nodiscard]] CostReport analyze(const core::VariantConfig& cfg,
                                   int boxSize, int nThreads) const;

  /// Rank the registry (optionally with the beyond-paper extension axes)
  /// by ascending predicted traffic; ties break toward less recompute,
  /// then more available concurrency, then the display name.
  [[nodiscard]] std::vector<RankedVariant>
  rank(int boxSize, int nThreads, bool includeExtensions = false) const;

  /// Pick the blocked-wavefront configuration (tile size x component
  /// loop) minimizing predicted traffic subject to the per-tile footprint
  /// fitting the LLC — preferring tiles that also fit L2. Falls back to
  /// the smallest footprint if nothing fits.
  [[nodiscard]] TileAdvice recommendBlockedTile(int boxSize,
                                                int nThreads) const;

private:
  CacheSpec spec_;
};

} // namespace fluxdiv::analysis
