#pragma once
// lowerVariant: build the explicit ScheduleModel of one VariantConfig over
// one box — which stages run, over which regions, under which concurrency
// structure. The lowering mirrors the executors in src/core stage by stage
// and barrier by barrier; ScheduleVerifier then proves the model legal.
// Keeping the lowering separate from the executors is what lets the tests
// mutate a model into a deliberately-broken schedule (mutate.hpp) and
// prove the verifier rejects it.

#include "analysis/model.hpp"
#include "core/variant.hpp"

namespace fluxdiv::analysis {

/// Lower `cfg` computing `valid` with `nThreads` workers. Throws
/// std::invalid_argument for configurations the runner would reject
/// (tiled families without a tile size, hybrid granularity outside the
/// overlapped family).
ScheduleModel lowerVariant(const core::VariantConfig& cfg,
                           const grid::Box& valid, int nThreads);

/// Display label used for Diagnostic::variant (kept independent of
/// core::VariantConfig::name() so the analysis library layers strictly
/// below fluxdiv_core).
std::string variantLabel(const core::VariantConfig& cfg);

} // namespace fluxdiv::analysis
