#pragma once
// Static working-set / memory-traffic analyzer over lowered ScheduleModels.
// Where the verifier (verifier.hpp) proves a schedule *legal*, this pass
// predicts whether it is *fast*: per-phase working sets, DRAM traffic under
// a cache-capacity model, recomputation volume, and parallelism metrics —
// all from the declared rectangular access regions, without executing a
// kernel. docs/cost-model.md derives the equations; the memmodel cache
// simulator cross-validates the traffic prediction in tests.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model.hpp"
#include "core/variant.hpp"

namespace fluxdiv::harness {
struct MachineInfo;
} // namespace fluxdiv::harness

namespace fluxdiv::analysis {

/// The cache capacities the static model prices a schedule against. Only
/// capacities matter here — the model counts distinct bytes, not lines or
/// conflict misses (docs/cost-model.md states the resulting tolerance).
struct CacheSpec {
  std::size_t l2Bytes = 256 * 1024;
  std::size_t llcBytes = 6 * 1024 * 1024;
  std::size_t lineBytes = 64;

  /// Allocation x-pitch multiple of the fabs being modeled (doubles).
  /// Working sets round each region's x-extent up to this, pricing the
  /// pad lanes that occupy cache alongside the referenced row (rows are
  /// contiguous with their slack). Traffic stays logical: pad lanes are
  /// never referenced, and the CacheSim cross-validation oracle replays a
  /// dense trace. 1 models Pitch::Dense; set to grid::kSimdDoubles to
  /// model the default padded allocation (advisor --pad).
  int xPadDoubles = 1;

  /// Derive a spec from a probed machine description: LLC = last-level
  /// data/unified cache, L2 = the largest level-2 entry. Zero-sized
  /// detection results are replaced by the documented harness defaults.
  static CacheSpec fromMachine(const harness::MachineInfo& info);

  /// The desktop-class hierarchy memmodel::CacheSim::makeTypical models
  /// (256 KiB L2, 6 MiB LLC) — the cross-validation baseline.
  static CacheSpec typical() { return {}; }
};

/// Kinds of structured cost findings, mirroring the verifier's
/// DiagnosticKind: machine-readable kind + human-readable message().
enum class CostNoteKind {
  CapacityBound,  ///< a phase's working set exceeds the LLC
  ItemExceedsL2,  ///< a concurrent work item's footprint exceeds L2
  HighRecompute,  ///< duplicated temporary production above threshold
  OverSynchronized, ///< task graph carries removable dependency edges
  OverCommunicated, ///< exchange plan has redundant/mergeable ops
  OverdeclaredFootprint, ///< declared stencil offsets no kernel reads
  DeepHaloRecompute, ///< comm-avoiding recompute outweighs exchange savings
  DeadStore,      ///< step op writes values nothing reads (stepcheck S2)
  OverDeepHalo,   ///< halo width above proven minimum (stepcheck S3)
  ModelError,     ///< internal inconsistency (tool-level strict checks)
};

const char* costNoteKindName(CostNoteKind k);

/// One structured advisor explanation, e.g. "phase 'fused sweep c=2'
/// working set 18.9 MiB > LLC 12.0 MiB -> capacity-bound".
struct CostNote {
  CostNoteKind kind = CostNoteKind::CapacityBound;
  std::string where;          ///< phase or item the note is about
  double actualBytes = 0;     ///< offending size; edge count for OverSynchronized
  double limitBytes = 0;      ///< capacity compared against; total edges for OverSynchronized
  double fraction = 0;        ///< ratio detail for HighRecompute

  [[nodiscard]] std::string message() const;
};

/// Per-phase slice of the analysis.
struct PhaseCost {
  std::string name;
  double workingSetBytes = 0; ///< distinct bytes the phase touches
  double maxItemBytes = 0;    ///< largest single work item footprint
  int items = 1;              ///< concurrently-executing items
};

/// The complete static cost analysis of one lowered schedule.
struct CostReport {
  std::string variant;
  std::int64_t validCells = 0;

  // (a) working sets
  double workingSetBytes = 0; ///< max over phases
  double maxItemBytes = 0;    ///< max over all work items

  // (b) predicted DRAM traffic for one evaluation of the box
  double trafficBytes = 0;
  double compulsoryBytes = 0; ///< cold-cache floor: phi0 in, 2x phi1 out
  double bytesPerCell = 0;    ///< trafficBytes / validCells

  // (c) recomputation volume
  double recomputeCells = 0;   ///< temporary values produced more than once
  double recomputeFraction = 0; ///< recomputeCells / all produced values

  // (d) parallelism
  int maxConcurrency = 1;      ///< largest phase item count / wavefront front
  double avgConcurrency = 1;   ///< total items / barrier count
  std::int64_t barrierCount = 0; ///< phases executed (explicit barriers)
  std::int64_t frontCount = 0;   ///< wavefront fronts across all cones

  bool capacityBound = false; ///< some phase working set exceeds the LLC
  std::vector<PhaseCost> phases;
  std::vector<CostNote> notes;
};

/// Analyze a lowered model against a cache spec. `nWorkers` bounds how
/// many concurrent items hold private scratch simultaneously (the model
/// exposes *available* concurrency — e.g. every overlapped tile — while
/// scratch is allocated per executing worker); 0 means "one per item".
CostReport analyzeCost(const ScheduleModel& m, const CacheSpec& spec,
                       int nWorkers = 0);

/// Convenience: lower `cfg` over an N^3 box with `nThreads` workers first.
CostReport analyzeCost(const core::VariantConfig& cfg, int boxSize,
                       int nThreads, const CacheSpec& spec);

/// Predicted concurrency profile of one LevelPolicy (core/exec_level)
/// executing a level of `nBoxes` boxes. Static counterpart of the task
/// graphs the executor builds: task counts, DAG depth, and a quantized
/// available-parallelism speedup estimate vs the box-sequential loop.
struct LevelPolicyCost {
  core::LevelPolicy policy = core::LevelPolicy::BoxSequential;
  int nBoxes = 1;
  std::int64_t taskCount = 0;     ///< tasks (or sequential loop bodies)
  std::int64_t depth = 1;         ///< critical-path length in tasks/phases
  std::int64_t maxConcurrency = 1;///< widest set of independent units
  double avgConcurrency = 1;      ///< taskCount / depth
  std::int64_t barrierCount = 0;  ///< full join points per evaluation
  double predictedSpeedup = 1;    ///< vs BoxSequential, capped by nThreads
};

/// Analyze all three level policies for `cfg` over `nBoxes` boxes of side
/// `boxSize` with `nThreads` workers. The per-box metrics (within-box
/// concurrency, barriers) come from analyzeCost over the lowered schedule;
/// the level-scale metrics mirror exec_level's graph construction exactly
/// (whole-box tasks, overlapped (box x tile) tasks, blocked-wavefront
/// front pipelines). Returned in kLevelPolicies order.
std::vector<LevelPolicyCost> analyzeLevelPolicies(
    const core::VariantConfig& cfg, int boxSize, int nBoxes, int nThreads,
    const CacheSpec& spec);

/// Static price of one whole RK time step under one StepFuse mode
/// (core/stepgraph.hpp): exchanged halo bytes, per-exchange latency
/// equivalents, deepened-ghost recomputation volume, and synchronization
/// structure, per time step over the whole level. Mirrors planStepHalos
/// analytically: under CommAvoid stage s of an R-stage scheme recomputes
/// its RHS on a halo of width g x (R - 1 - s), fed by one exchange of
/// depth g x R. A deep halo always moves MORE bytes than the R shallow
/// halos it replaces ((N+2Rg)^3 grows faster than R shells of width g) —
/// comm-avoiding pays bandwidth and recomputation to buy back the
/// per-exchange fixed costs, so each exchange message is priced with an
/// alpha-model latency byte-equivalent on top of its halo bytes. That is
/// what makes the trade box-size dependent: small boxes are latency-bound
/// (CommAvoid wins), large boxes are volume-bound (the
/// DeepHaloRecompute note fires).
struct StepFusionCost {
  core::StepFuse fuse = core::StepFuse::Eager;
  int exchanges = 0;        ///< ghost exchanges per time step
  int exchangeDepth = 0;    ///< ghost layers each exchange fills
  double exchangeBytes = 0; ///< halo bytes moved per time step (level)
  double alphaBytes = 0;    ///< latency byte-equivalent of the exchanges
  double recomputeCells = 0;    ///< RHS cells evaluated beyond valid
  double recomputeFraction = 0; ///< recomputeCells / valid RHS cells
  std::int64_t dispatches = 1;  ///< graph dispatches (join barriers)
  double costBytes = 0; ///< exchange + alpha + recompute write traffic
  int rank = 0;         ///< 1 = cheapest costBytes (dispatches tiebreak)
  std::vector<CostNote> notes;
};

/// Price all four fuse modes for an `rhsEvals`-stage scheme over a level
/// of `nBoxes` boxes of side `boxSize` (kStepFuseModes order, rank
/// filled). Emits CostNoteKind::DeepHaloRecompute on the CommAvoid entry
/// when the deepened-ghost recompute + extra halo traffic exceeds the
/// cost of the avoided exchanges, and prices CommAvoid as infeasible
/// (falls back; same structure as Fused) when the deepened halo exceeds
/// the box side — exactly when StepGraphExecutor::effectiveFuse falls
/// back. `eagerOps` is the eager path's level-wide sweep count per step
/// (exchanges + RHS dispatches + stage combines) used for its dispatch
/// count; pass 0 to approximate it as 4 x rhsEvals.
std::vector<StepFusionCost> analyzeStepFusion(int rhsEvals, int boxSize,
                                              int nBoxes,
                                              int eagerOps = 0);

} // namespace fluxdiv::analysis
