#include "analysis/commcheck.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/region_ops.hpp"
#include "distsim/comm_model.hpp"
#include "distsim/rank_layout.hpp"

namespace fluxdiv::analysis {

using grid::IntVect;

const char* commDiagKindName(CommDiagKind k) {
  switch (k) {
  case CommDiagKind::Ok:
    return "ok";
  case CommDiagKind::GhostGap:
    return "ghost-gap";
  case CommDiagKind::DoubleWrite:
    return "double-write";
  case CommDiagKind::StrayWrite:
    return "stray-write";
  case CommDiagKind::SourceInvalid:
    return "source-invalid";
  case CommDiagKind::UnmatchedSend:
    return "unmatched-send";
  case CommDiagKind::UnmatchedRecv:
    return "unmatched-recv";
  case CommDiagKind::ExtentMismatch:
    return "extent-mismatch";
  case CommDiagKind::DeadlockCycle:
    return "deadlock-cycle";
  }
  return "?";
}

const char* commAdviceKindName(CommAdviceKind k) {
  switch (k) {
  case CommAdviceKind::RedundantOp:
    return "redundant-op";
  case CommAdviceKind::MergeableMessages:
    return "mergeable-messages";
  }
  return "?";
}

std::string CommDiagnostic::message() const {
  std::ostringstream os;
  os << commDiagKindName(kind);
  if (ok()) {
    return os.str();
  }
  os << ": plan '" << plan << "'";
  if (!opA.empty()) {
    os << " | recv side: " << opA;
    if (rankA >= 0) {
      os << " (rank " << rankA << ")";
    }
  }
  if (!opB.empty()) {
    os << " | send side: " << opB;
    if (rankB >= 0) {
      os << " (rank " << rankB << ")";
    }
  }
  if (!region.empty()) {
    os << " | region " << region;
  }
  if (!detail.empty()) {
    os << " | " << detail;
  }
  return os.str();
}

std::string CommAdvisory::message() const {
  std::ostringstream os;
  os << commAdviceKindName(kind) << ": plan '" << plan << "': ";
  if (kind == CommAdviceKind::RedundantOp) {
    os << opLabel
       << " — dest region already covered by the box's other incoming "
          "ops; the copy is removable";
  } else {
    os << "rank " << rankA << "->" << rankB << ": " << messages
       << " messages across " << merged
       << " box pair(s) — aggregatable per box pair, saving "
       << (messages - merged) << " message(s) of latency";
  }
  return os.str();
}

namespace {

std::string sectorStr(const IntVect& s) {
  std::string out = "[";
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (d > 0) {
      out += ',';
    }
    if (s[d] > 0) {
      out += '+';
    }
    out += std::to_string(s[d]);
  }
  out += ']';
  return out;
}

/// One send the layout geometry *requires*: re-derived from the sender's
/// perspective, without reading the plan. For source box `srcBox` and
/// each of the 26 halo sectors of each neighbor it feeds, the region of
/// that neighbor's halo this box must supply. The map (destBox, sector)
/// -> (srcBox, sector) is a bijection over non-empty in-domain sectors,
/// so matching this list against the plan is exact in both directions.
struct DerivedSend {
  std::size_t srcBox = 0;
  std::size_t destBox = 0;
  Box destRegion;
  IntVect srcShift;
  IntVect sector;  ///< halo sector of destBox

  [[nodiscard]] std::string label() const {
    return derivedSendLabel(srcBox, destBox, sector);
  }
};

/// Halo sector `off` of `valid` grown by `nghost`: the same slab algebra
/// the Copier uses, applied from the independent derivation.
Box haloSector(const Box& valid, const IntVect& off, int nghost) {
  IntVect rlo;
  IntVect rhi;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    switch (off[d]) {
    case -1:
      rlo[d] = valid.lo(d) - nghost;
      rhi[d] = valid.lo(d) - 1;
      break;
    case 0:
      rlo[d] = valid.lo(d);
      rhi[d] = valid.hi(d);
      break;
    default:
      rlo[d] = valid.hi(d) + 1;
      rhi[d] = valid.hi(d) + nghost;
      break;
    }
  }
  return {rlo, rhi};
}

/// Enumerate every send the geometry requires, iterating source boxes
/// (the sender's schedule). For source box s and sector offset `off`,
/// the neighbor whose halo it feeds sits at boxCoords(s) - off (with
/// periodic wrap); the fed region is that neighbor's halo sector `off`.
std::vector<DerivedSend> deriveSends(const CommPlanModel& m) {
  std::vector<DerivedSend> sends;
  if (m.nghost <= 0) {
    return sends;
  }
  const grid::DisjointBoxLayout& layout = m.layout;
  for (std::size_t s = 0; s < layout.size(); ++s) {
    const IntVect bcS = layout.boxCoords(s);
    for (int oz = -1; oz <= 1; ++oz) {
      for (int oy = -1; oy <= 1; ++oy) {
        for (int ox = -1; ox <= 1; ++ox) {
          if (ox == 0 && oy == 0 && oz == 0) {
            continue;
          }
          const IntVect off(ox, oy, oz);
          IntVect destWrap;
          const std::int64_t dest =
              layout.wrappedIndex(bcS - off, destWrap);
          if (dest < 0) {
            continue;  // non-periodic physical boundary: no neighbor
          }
          const auto d = static_cast<std::size_t>(dest);
          const Box region = haloSector(layout.box(d), off, m.nghost);
          if (region.empty()) {
            continue;
          }
          IntVect srcShift;
          const std::int64_t back =
              layout.wrappedIndex(layout.boxCoords(d) + off, srcShift);
          if (back < 0 || static_cast<std::size_t>(back) != s) {
            continue;  // unreachable: the sector map is a bijection
          }
          DerivedSend ds;
          ds.srcBox = s;
          ds.destBox = d;
          ds.destRegion = region;
          ds.srcShift = srcShift;
          ds.sector = off;
          sends.push_back(ds);
        }
      }
    }
  }
  return sends;
}

int rankOfBox(const CommPlanModel& m, std::size_t box) {
  return box < m.rankOf.size() ? m.rankOf[box] : 0;
}

/// The halo sector a ghost region sits in relative to `valid`, judged
/// per direction from the region's extremes (a naming aid for gap
/// witnesses; exact when the region stays inside one sector, as every
/// Copier op and every shaved-layer mutation does).
IntVect sectorOfRegion(const Box& region, const Box& valid) {
  IntVect off;
  for (int d = 0; d < grid::SpaceDim; ++d) {
    if (region.hi(d) < valid.lo(d)) {
      off[d] = -1;
    } else if (region.lo(d) > valid.hi(d)) {
      off[d] = 1;
    } else {
      off[d] = 0;
    }
  }
  return off;
}

/// C1: per-destination-box exactness — gaps, double-writes, strays, and
/// source validity, each with a labeled witness.
void checkExactness(const CommPlanModel& m,
                    const std::vector<DerivedSend>& derived,
                    CommCheckReport& rep) {
  const grid::DisjointBoxLayout& layout = m.layout;
  const Box domBox = layout.domain().box();

  // Derived sends indexed by (destBox, sector) for gap witness naming.
  std::map<std::pair<std::size_t, std::array<int, 3>>, const DerivedSend*>
      bySector;
  for (const DerivedSend& ds : derived) {
    bySector[{ds.destBox,
              {ds.sector[0], ds.sector[1], ds.sector[2]}}] = &ds;
  }

  std::vector<std::vector<std::size_t>> byDest(layout.size());
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const CommOp& op = m.ops[i];
    if (op.destBox >= layout.size() || op.srcBox >= layout.size()) {
      CommDiagnostic d;
      d.kind = CommDiagKind::StrayWrite;
      d.plan = m.name;
      d.opA = op.label;
      d.region = op.destRegion;
      d.detail = "op names a box outside the layout";
      rep.diagnostics.push_back(std::move(d));
      continue;
    }
    byDest[op.destBox].push_back(i);
  }

  for (std::size_t b = 0; b < layout.size(); ++b) {
    const Box valid = layout.box(b);
    // The exchange-owned ghost region: the halo, clipped to the domain
    // in non-periodic directions only (physical-boundary ghosts belong
    // to the BC fill, not the plan; periodic halos extend past the
    // domain box and wrap).
    IntVect lo = valid.grow(m.nghost).lo();
    IntVect hi = valid.grow(m.nghost).hi();
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (!layout.domain().isPeriodic(d)) {
        lo[d] = std::max(lo[d], domBox.lo(d));
        hi[d] = std::min(hi[d], domBox.hi(d));
      }
    }
    const std::vector<Box> expected = subtractAll(Box(lo, hi), {valid});

    std::vector<Box> regions;
    CoverSet cover;
    regions.reserve(byDest[b].size());
    for (const std::size_t i : byDest[b]) {
      regions.push_back(m.ops[i].destRegion);
      cover.add(m.ops[i].destRegion);
    }

    if (const auto overlap = firstPairOverlap(regions)) {
      const CommOp& a = m.ops[byDest[b][overlap->first]];
      const CommOp& c = m.ops[byDest[b][overlap->second]];
      CommDiagnostic d;
      d.kind = CommDiagKind::DoubleWrite;
      d.plan = m.name;
      d.opA = a.label;
      d.opB = c.label;
      d.rankA = rankOfBox(m, a.srcBox);
      d.rankB = rankOfBox(m, c.srcBox);
      d.region = overlap->region;
      d.detail = "two ops write the same ghost cells of box " +
                 std::to_string(b);
      rep.diagnostics.push_back(std::move(d));
    }

    for (const std::size_t i : byDest[b]) {
      const CommOp& op = m.ops[i];
      const std::vector<Box> stray = subtractAll(op.destRegion, expected);
      if (!stray.empty()) {
        CommDiagnostic d;
        d.kind = CommDiagKind::StrayWrite;
        d.plan = m.name;
        d.opA = op.label;
        d.rankA = rankOfBox(m, op.destBox);
        d.rankB = rankOfBox(m, op.srcBox);
        d.region = stray.front();
        d.detail = "write outside the exchange-owned ghost halo of box " +
                   std::to_string(b);
        rep.diagnostics.push_back(std::move(d));
      }
      const std::vector<Box> badSrc =
          subtractAll(op.srcRegion(), {layout.box(op.srcBox)});
      if (!badSrc.empty()) {
        CommDiagnostic d;
        d.kind = CommDiagKind::SourceInvalid;
        d.plan = m.name;
        d.opA = op.label;
        d.rankA = rankOfBox(m, op.destBox);
        d.rankB = rankOfBox(m, op.srcBox);
        d.region = badSrc.front();
        d.detail = "source cells outside the valid region of box " +
                   std::to_string(op.srcBox);
        rep.diagnostics.push_back(std::move(d));
      }
    }

    for (const Box& piece : expected) {
      for (const Box& missing : cover.missingPieces(piece)) {
        const IntVect off = sectorOfRegion(missing, valid);
        const auto it = bySector.find({b, {off[0], off[1], off[2]}});
        CommDiagnostic d;
        d.kind = CommDiagKind::GhostGap;
        d.plan = m.name;
        d.opA = "box" + std::to_string(b) + " ghost halo";
        d.rankA = rankOfBox(m, b);
        if (it != bySector.end()) {
          d.opB = it->second->label();
          d.rankB = rankOfBox(m, it->second->srcBox);
        }
        d.region = missing;
        d.detail = "no op fills these exchange-owned ghost cells";
        rep.diagnostics.push_back(std::move(d));
      }
    }
  }
}

/// C2: match the plan (the posted recvs) against the derived sends. The
/// check runs over every op, cross-rank or not — a skewed source or an
/// unmatched send is just as wrong inside a rank — and the diagnostics
/// carry both endpoint ranks, so under a partition each cross-rank
/// violation names its two endpoints.
void checkMatching(const CommPlanModel& m,
                   const std::vector<DerivedSend>& derived,
                   CommCheckReport& rep) {
  // (srcBox, destBox) plus region lo/hi and source shift, flattened to
  // ordered scalars (IntVect has no operator<).
  using Key =
      std::pair<std::pair<std::size_t, std::size_t>, std::array<int, 9>>;
  const auto keyOf = [](std::size_t src, std::size_t dest, const Box& r,
                        const IntVect& shift) {
    return Key{{src, dest},
               {r.lo(0), r.lo(1), r.lo(2), r.hi(0), r.hi(1), r.hi(2),
                shift[0], shift[1], shift[2]}};
  };

  std::map<Key, std::vector<std::size_t>> derivedByKey;
  for (std::size_t j = 0; j < derived.size(); ++j) {
    const DerivedSend& ds = derived[j];
    derivedByKey[keyOf(ds.srcBox, ds.destBox, ds.destRegion, ds.srcShift)]
        .push_back(j);
  }

  std::vector<bool> used(derived.size(), false);
  std::vector<std::size_t> unmatchedOps;
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const CommOp& op = m.ops[i];
    const auto it = derivedByKey.find(
        keyOf(op.srcBox, op.destBox, op.destRegion, op.srcShift));
    bool matched = false;
    if (it != derivedByKey.end()) {
      for (const std::size_t j : it->second) {
        if (!used[j]) {
          used[j] = true;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      unmatchedOps.push_back(i);
    }
  }

  // Pair leftover recvs with leftover sends between the same box pair
  // over intersecting (or identical) regions: the endpoints *tried* to
  // talk but disagree on extent or source cells.
  std::vector<std::size_t> leftoverSends;
  for (std::size_t j = 0; j < derived.size(); ++j) {
    if (!used[j]) {
      leftoverSends.push_back(j);
    }
  }
  std::vector<bool> sendConsumed(leftoverSends.size(), false);
  for (const std::size_t i : unmatchedOps) {
    const CommOp& op = m.ops[i];
    bool paired = false;
    for (std::size_t k = 0; k < leftoverSends.size(); ++k) {
      if (sendConsumed[k]) {
        continue;
      }
      const DerivedSend& ds = derived[leftoverSends[k]];
      if (ds.srcBox != op.srcBox || ds.destBox != op.destBox) {
        continue;
      }
      const bool sameRegion = ds.destRegion == op.destRegion;
      if (!sameRegion && !ds.destRegion.intersects(op.destRegion)) {
        continue;
      }
      sendConsumed[k] = true;
      paired = true;
      CommDiagnostic d;
      d.kind = CommDiagKind::ExtentMismatch;
      d.plan = m.name;
      d.opA = op.label;
      d.opB = ds.label();
      d.rankA = rankOfBox(m, op.destBox);
      d.rankB = rankOfBox(m, ds.srcBox);
      if (sameRegion) {
        std::ostringstream os;
        os << "source shift disagrees: plan " << op.srcShift
           << " vs geometry " << ds.srcShift;
        d.detail = os.str();
        d.region = op.destRegion;
      } else {
        const std::vector<Box> missing =
            subtractAll(ds.destRegion, {op.destRegion});
        d.region = missing.empty()
                       ? subtractAll(op.destRegion,
                                     {ds.destRegion}).front()
                       : missing.front();
        std::ostringstream os;
        os << "extent disagrees: plan " << op.destRegion
           << " vs geometry " << ds.destRegion;
        d.detail = os.str();
      }
      rep.diagnostics.push_back(std::move(d));
      break;
    }
    if (!paired) {
      CommDiagnostic d;
      d.kind = CommDiagKind::UnmatchedSend;
      d.plan = m.name;
      d.opA = op.label;
      d.rankA = rankOfBox(m, op.destBox);
      d.rankB = rankOfBox(m, op.srcBox);
      d.region = op.destRegion;
      d.detail = "recv posted but the geometry requires no such send "
                 "from box " +
                 std::to_string(op.srcBox);
      rep.diagnostics.push_back(std::move(d));
    }
  }
  for (std::size_t k = 0; k < leftoverSends.size(); ++k) {
    if (sendConsumed[k]) {
      continue;
    }
    const DerivedSend& ds = derived[leftoverSends[k]];
    CommDiagnostic d;
    d.kind = CommDiagKind::UnmatchedRecv;
    d.plan = m.name;
    d.opB = ds.label();
    d.rankA = rankOfBox(m, ds.destBox);
    d.rankB = rankOfBox(m, ds.srcBox);
    d.region = ds.destRegion;
    d.detail = "geometry requires this send but the plan posts no recv "
               "for it on box " +
               std::to_string(ds.destBox);
    rep.diagnostics.push_back(std::move(d));
  }
}

/// C3: greedy execution of the per-rank send/recv programs induced by
/// plan order, against bounded FIFO channels per ordered rank pair. The
/// system is deterministic and confluent (enabled steps on distinct
/// ranks commute, each rank's program is sequential), so if the greedy
/// run stalls, *every* schedule stalls: the stall is a real deadlock and
/// the blocked-rank wait chain is the witness.
void checkDeadlock(const CommPlanModel& m, CommCheckReport& rep) {
  const int nRanks = std::max(m.nRanks, 1);
  struct Step {
    bool send = false;
    std::size_t op = 0;
    int peer = 0;
  };
  std::vector<std::vector<Step>> prog(static_cast<std::size_t>(nRanks));
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const int src = rankOfBox(m, m.ops[i].srcBox);
    const int dst = rankOfBox(m, m.ops[i].destBox);
    if (src == dst) {
      continue;
    }
    prog[static_cast<std::size_t>(src)].push_back({true, i, dst});
    prog[static_cast<std::size_t>(dst)].push_back({false, i, src});
  }

  std::vector<std::size_t> pc(static_cast<std::size_t>(nRanks), 0);
  std::map<std::pair<int, int>, std::deque<std::size_t>> chan;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < nRanks; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      while (pc[ur] < prog[ur].size()) {
        const Step& st = prog[ur][pc[ur]];
        if (st.send) {
          auto& q = chan[{r, st.peer}];
          if (static_cast<int>(q.size()) >= m.queueCapacity) {
            break;
          }
          q.push_back(st.op);
        } else {
          auto& q = chan[{st.peer, r}];
          if (q.empty() || q.front() != st.op) {
            break;
          }
          q.pop_front();
        }
        ++pc[ur];
        progress = true;
      }
    }
  }

  int firstBlocked = -1;
  for (int r = 0; r < nRanks; ++r) {
    if (pc[static_cast<std::size_t>(r)] <
        prog[static_cast<std::size_t>(r)].size()) {
      firstBlocked = r;
      break;
    }
  }
  if (firstBlocked < 0) {
    return;  // all programs ran to completion: schedulable
  }

  // Walk the wait-for chain from the first blocked rank: a blocked send
  // waits on its receiver to drain the full channel, a blocked recv on
  // its sender. The walk revisits a rank (cyclic wait) or reaches a
  // completed rank (starved recv) within nRanks steps.
  std::ostringstream chain;
  std::vector<bool> visited(static_cast<std::size_t>(nRanks), false);
  int r = firstBlocked;
  const Step& first = prog[static_cast<std::size_t>(r)]
                          [pc[static_cast<std::size_t>(r)]];
  for (int hop = 0; hop <= nRanks; ++hop) {
    const auto ur = static_cast<std::size_t>(r);
    if (pc[ur] >= prog[ur].size()) {
      chain << "rank " << r << " has completed its program";
      break;
    }
    if (visited[ur]) {
      chain << "back to rank " << r << " — cyclic wait";
      break;
    }
    visited[ur] = true;
    const Step& st = prog[ur][pc[ur]];
    const std::string label =
        st.op < m.ops.size() ? m.ops[st.op].label
                             : "op " + std::to_string(st.op);
    if (st.send) {
      chain << "rank " << r << " blocked sending " << label
            << " (channel " << r << "->" << st.peer << " at capacity "
            << m.queueCapacity << ") -> ";
    } else {
      chain << "rank " << r << " blocked receiving " << label
            << " from rank " << st.peer << " -> ";
    }
    r = st.peer;
  }

  CommDiagnostic d;
  d.kind = CommDiagKind::DeadlockCycle;
  d.plan = m.name;
  d.opA = first.op < m.ops.size() ? m.ops[first.op].label : "";
  d.rankA = firstBlocked;
  d.rankB = first.peer;
  d.detail = chain.str();
  rep.diagnostics.push_back(std::move(d));
}

/// Statically counted traffic, from the *derived* schedule: what the
/// alpha-beta model must have been fed. Receiver-side maxima match
/// distsim's accounting convention.
void countTraffic(const CommPlanModel& m,
                  const std::vector<DerivedSend>& derived,
                  CommCheckReport& rep) {
  const int nRanks = std::max(m.nRanks, 1);
  std::vector<std::int64_t> recvMessages(static_cast<std::size_t>(nRanks),
                                         0);
  std::vector<std::uint64_t> recvBytes(static_cast<std::size_t>(nRanks),
                                       0);
  std::map<std::pair<int, int>, RankPairTraffic> pairs;
  for (const DerivedSend& ds : derived) {
    const int src = rankOfBox(m, ds.srcBox);
    const int dst = rankOfBox(m, ds.destBox);
    const std::int64_t cells = ds.destRegion.numPts();
    if (src == dst) {
      rep.onRankCells += cells;
      continue;
    }
    rep.offRankCells += cells;
    const auto bytes = static_cast<std::uint64_t>(cells) * m.ncomp *
                       sizeof(grid::Real);
    ++rep.messagesTotal;
    rep.bytesTotal += bytes;
    ++recvMessages[static_cast<std::size_t>(dst)];
    recvBytes[static_cast<std::size_t>(dst)] += bytes;
    RankPairTraffic& pt = pairs[{src, dst}];
    pt.srcRank = src;
    pt.dstRank = dst;
    ++pt.messages;
    pt.bytes += bytes;
  }
  for (int r = 0; r < nRanks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    rep.maxMessagesPerRank =
        std::max(rep.maxMessagesPerRank, recvMessages[ur]);
    rep.maxBytesPerRank = std::max(rep.maxBytesPerRank, recvBytes[ur]);
  }
  rep.pairs.reserve(pairs.size());
  for (const auto& [key, pt] : pairs) {
    rep.pairs.push_back(pt);
  }
}

/// Over-communication advisories: copies the plan performs that a
/// smarter lowering would not pay for.
void findAdvisoriesIn(const CommPlanModel& m, CommCheckReport& rep) {
  // Redundant ops: dest region already covered by the box's other ops.
  std::vector<std::vector<std::size_t>> byDest(m.layout.size());
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    if (m.ops[i].destBox < m.layout.size()) {
      byDest[m.ops[i].destBox].push_back(i);
    }
  }
  for (const auto& opIdxs : byDest) {
    for (const std::size_t i : opIdxs) {
      CoverSet others;
      for (const std::size_t j : opIdxs) {
        if (j != i) {
          others.add(m.ops[j].destRegion);
        }
      }
      if (!others.empty() && others.covers(m.ops[i].destRegion)) {
        CommAdvisory a;
        a.kind = CommAdviceKind::RedundantOp;
        a.plan = m.name;
        a.opLabel = m.ops[i].label;
        a.rankA = rankOfBox(m, m.ops[i].destBox);
        a.rankB = rankOfBox(m, m.ops[i].srcBox);
        rep.advisories.push_back(std::move(a));
      }
    }
  }

  // Mergeable messages: multiple cross-rank ops between one box pair
  // (adjacent in several sectors, e.g. two boxes per periodic
  // direction) each pay a message, though one aggregated send per box
  // pair would do — the granularity the alpha-beta model assumes.
  std::map<std::pair<int, int>,
           std::map<std::pair<std::size_t, std::size_t>, std::int64_t>>
      byRankPair;
  for (const CommOp& op : m.ops) {
    const int src = rankOfBox(m, op.srcBox);
    const int dst = rankOfBox(m, op.destBox);
    if (src != dst) {
      ++byRankPair[{src, dst}][{op.srcBox, op.destBox}];
    }
  }
  for (const auto& [ranks, boxPairs] : byRankPair) {
    std::int64_t messages = 0;
    for (const auto& [boxes, count] : boxPairs) {
      messages += count;
    }
    const auto merged = static_cast<std::int64_t>(boxPairs.size());
    if (messages > merged) {
      CommAdvisory a;
      a.kind = CommAdviceKind::MergeableMessages;
      a.plan = m.name;
      a.rankA = ranks.first;
      a.rankB = ranks.second;
      a.messages = messages;
      a.merged = merged;
      rep.advisories.push_back(std::move(a));
    }
  }
}

}  // namespace

std::string derivedSendLabel(std::size_t srcBox, std::size_t destBox,
                             const IntVect& sector) {
  return "send box" + std::to_string(srcBox) + "->box" +
         std::to_string(destBox) + " sector" + sectorStr(sector);
}

CommPlanModel buildCommPlanModel(const grid::DisjointBoxLayout& layout,
                                 const grid::Copier& copier, int ncomp,
                                 std::string name) {
  CommPlanModel m;
  if (name.empty()) {
    const IntVect g = layout.gridSize();
    const IntVect bs = layout.boxSize();
    std::ostringstream os;
    os << "exchange " << g[0] << "x" << g[1] << "x" << g[2] << " boxes of "
       << bs[0] << "x" << bs[1] << "x" << bs[2] << " g" << copier.nGhost();
    m.name = os.str();
  } else {
    m.name = std::move(name);
  }
  m.layout = layout;
  m.nghost = copier.nGhost();
  m.ncomp = ncomp;
  m.rankOf.assign(layout.size(), 0);
  m.nRanks = 1;
  m.ops.reserve(copier.ops().size());
  for (std::size_t i = 0; i < copier.ops().size(); ++i) {
    const grid::CopyOp& op = copier.ops()[i];
    CommOp co;
    co.destBox = op.destBox;
    co.srcBox = op.srcBox;
    co.destRegion = op.destRegion;
    co.srcShift = op.srcShift;
    co.sector = op.sector;
    co.label = copier.opLabel(i);
    m.ops.push_back(std::move(co));
  }
  return m;
}

void applyRankPartition(CommPlanModel& model,
                        const distsim::RankDecomposition& ranks) {
  model.nRanks = ranks.nRanks();
  model.rankOf.resize(model.layout.size());
  for (std::size_t b = 0; b < model.layout.size(); ++b) {
    model.rankOf[b] = ranks.rankOf(b);
  }
}

void applyRankPartition(CommPlanModel& model, int nRanks) {
  applyRankPartition(
      model, distsim::RankDecomposition(model.layout, nRanks));
}

CommCheckReport checkCommPlan(const CommPlanModel& model,
                              bool findAdvisories) {
  CommCheckReport rep;
  rep.opCount = model.ops.size();
  for (const CommOp& op : model.ops) {
    if (rankOfBox(model, op.srcBox) != rankOfBox(model, op.destBox)) {
      ++rep.crossRankOps;
    }
  }
  const std::vector<DerivedSend> derived = deriveSends(model);
  checkExactness(model, derived, rep);
  checkMatching(model, derived, rep);
  checkDeadlock(model, rep);
  countTraffic(model, derived, rep);
  if (findAdvisories) {
    findAdvisoriesIn(model, rep);
  }
  return rep;
}

std::vector<std::string>
crossValidateCommCost(const CommCheckReport& report,
                      const distsim::ExchangeCost& cost) {
  std::vector<std::string> mismatches;
  const auto check = [&](const std::string& what, std::uint64_t ours,
                         std::uint64_t theirs) {
    if (ours != theirs) {
      mismatches.push_back(what + ": commcheck " + std::to_string(ours) +
                           " vs alpha-beta " + std::to_string(theirs));
    }
  };
  check("onRankCells", static_cast<std::uint64_t>(report.onRankCells),
        static_cast<std::uint64_t>(cost.onRankCells));
  check("offRankCells", static_cast<std::uint64_t>(report.offRankCells),
        static_cast<std::uint64_t>(cost.offRankCells));
  check("messagesTotal", static_cast<std::uint64_t>(report.messagesTotal),
        static_cast<std::uint64_t>(cost.messagesTotal));
  check("maxMessagesPerRank",
        static_cast<std::uint64_t>(report.maxMessagesPerRank),
        static_cast<std::uint64_t>(cost.maxMessagesPerRank));
  check("bytesTotal", report.bytesTotal, cost.bytesTotal);
  check("maxBytesPerRank", report.maxBytesPerRank, cost.maxBytesPerRank);
  if (report.pairs.size() != cost.pairs.size()) {
    mismatches.push_back(
        "rank pairs: commcheck " + std::to_string(report.pairs.size()) +
        " vs alpha-beta " + std::to_string(cost.pairs.size()));
    return mismatches;
  }
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    const RankPairTraffic& a = report.pairs[i];
    const distsim::RankPairCost& b = cost.pairs[i];
    const std::string tag = "pair " + std::to_string(a.srcRank) + "->" +
                            std::to_string(a.dstRank);
    if (a.srcRank != b.srcRank || a.dstRank != b.dstRank) {
      mismatches.push_back(tag + " vs alpha-beta pair " +
                           std::to_string(b.srcRank) + "->" +
                           std::to_string(b.dstRank) +
                           ": rank-pair lists disagree");
      continue;
    }
    check(tag + " messages", static_cast<std::uint64_t>(a.messages),
          static_cast<std::uint64_t>(b.messages));
    check(tag + " bytes", a.bytes, b.bytes);
  }
  return mismatches;
}

}  // namespace fluxdiv::analysis
