#include "analysis/stepcheck.hpp"

#include <algorithm>
#include <climits>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/costmodel.hpp"
#include "kernels/footprint.hpp"

namespace fluxdiv::analysis {

using core::StepFuse;
using core::StepHaloPlan;
using core::StepOp;
using core::StepOpKind;
using core::StepProgram;
using grid::Real;

namespace {

constexpr int kG = kernels::kNumGhost;
constexpr int kBottom = INT_MIN / 4; ///< "-infinity" layer sentinel

// ---------------------------------------------------------------------------
// Provenance expressions: a hash-consed DAG over (slot, op) generators.
// An expression id denotes a position-parametric value function — "the
// value this construction places at cell x" — so two runs writing the
// same id at the same layer provably hold bit-identical values (every
// node kind maps equal inputs to equal outputs with the same arithmetic,
// in the same order; nothing is reassociated).

enum class ExKind : std::uint8_t {
  Init,     ///< slot's initial valid content (slot 0: the solution u)
  Uninit,   ///< stage temporary never written (reading it is S2's RBW)
  Stale,    ///< allocated ghost layer no exchange has filled (garbage)
  Rhs,      ///< RHS stencil over a window holding one uniform field
  MixedRhs, ///< RHS stencil over a window straddling several fields
  BCFill,   ///< physical-BC ghost derived from the mirrored interior
  Axpy,     ///< a + coeff * b
  Scale,    ///< coeff * a
};

const char* exKindName(ExKind k) {
  switch (k) {
  case ExKind::Init: return "init";
  case ExKind::Uninit: return "uninit";
  case ExKind::Stale: return "stale-ghost";
  case ExKind::Rhs: return "rhs";
  case ExKind::MixedRhs: return "mixed-rhs";
  case ExKind::BCFill: return "bc-fill";
  case ExKind::Axpy: return "axpy";
  case ExKind::Scale: return "scale";
  }
  return "?";
}

struct ExNode {
  ExKind kind = ExKind::Init;
  int slot = -1;          ///< Init / Uninit / Stale
  int a = -1;             ///< child (Rhs/BCFill/Axpy/Scale)
  int b = -1;             ///< second child (Axpy)
  Real coeff = 0.0;       ///< Axpy / Scale
  /// MixedRhs: the window's field profile as (upper layer offset relative
  /// to the evaluated cell's layer, expr) pairs, ascending, last offset
  /// +kG. Relative keying makes the node independent of which absolute
  /// layer it was built for, so plan and eager runs intern identically.
  std::vector<std::pair<int, int>> win;
  int op = -1; ///< creating op index — witness metadata, NOT hashed
};

class ExprTable {
public:
  int intern(ExNode n) {
    std::string key;
    key.reserve(32 + n.win.size() * 8);
    const auto put = [&key](const void* p, std::size_t len) {
      key.append(static_cast<const char*>(p), len);
    };
    const auto puti = [&](int v) { put(&v, sizeof v); };
    puti(static_cast<int>(n.kind));
    puti(n.slot);
    puti(n.a);
    puti(n.b);
    put(&n.coeff, sizeof n.coeff);
    for (const auto& [up, e] : n.win) {
      puti(up);
      puti(e);
    }
    const auto [it, fresh] =
        index_.try_emplace(std::move(key), static_cast<int>(nodes_.size()));
    if (fresh) {
      nodes_.push_back(std::move(n));
    }
    return it->second;
  }

  [[nodiscard]] const ExNode& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  int init(int slot) { return leaf(ExKind::Init, slot); }
  int uninit(int slot) { return leaf(ExKind::Uninit, slot); }
  int stale(int slot) { return leaf(ExKind::Stale, slot); }

private:
  int leaf(ExKind k, int slot) {
    ExNode n;
    n.kind = k;
    n.slot = slot;
    return intern(std::move(n));
  }

  std::vector<ExNode> nodes_;
  std::unordered_map<std::string, int> index_;
};

// ---------------------------------------------------------------------------
// Per-slot symbolic state: ascending layer bands. Band i covers layers
// (band[i-1].upTo, band[i].upTo]; band 0 reaches down to -infinity; the
// last band's upTo is the slot's storage depth. Layer L >= 1 is ghost
// depth L (L-inf); L <= 0 is interior distance -L from the valid-region
// boundary.

struct Band {
  int upTo = 0;
  int expr = -1;
  int writer = -1; ///< op that wrote the band; -1 = initial content
};
using Bands = std::vector<Band>;

void normalize(Bands& b) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (out > 0 && b[out - 1].expr == b[i].expr &&
        b[out - 1].writer == b[i].writer) {
      b[out - 1].upTo = b[i].upTo;
    } else {
      b[out++] = b[i];
    }
  }
  b.resize(out);
}

[[nodiscard]] std::size_t bandAt(const Bands& b, int layer) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (layer <= b[i].upTo) {
      return i;
    }
  }
  return b.size() - 1; // callers guard layer <= storage depth
}

[[nodiscard]] int exprAt(const Bands& b, int layer) {
  return b[bandAt(b, layer)].expr;
}

/// Replace all layers <= w with `part` (whose last upTo must be w),
/// keeping the old content above w.
void writeUpTo(Bands& b, int w, Bands part) {
  for (const Band& band : b) {
    if (band.upTo > w) {
      part.push_back(band);
    }
  }
  b = std::move(part);
  normalize(b);
}

/// Replace layers [lo, hi] with `part` (upTos spanning exactly lo..hi),
/// keeping old content below lo and above hi.
void overlay(Bands& b, int lo, int hi, const Bands& part) {
  Bands out;
  for (const Band& band : b) {
    if (band.upTo < lo) {
      out.push_back(band);
    }
  }
  // The old band straddling lo must still end at lo-1 below the overlay.
  if (out.empty() || out.back().upTo != lo - 1) {
    const std::size_t i = bandAt(b, lo - 1);
    out.push_back({lo - 1, b[i].expr, b[i].writer});
  }
  out.insert(out.end(), part.begin(), part.end());
  for (const Band& band : b) {
    if (band.upTo > hi) {
      out.push_back(band);
    }
  }
  b = std::move(out);
  normalize(b);
}

// ---------------------------------------------------------------------------
// The abstract machine: one per run (fuse-plan side and eager side), both
// interning into one shared ExprTable.

struct Machine {
  ExprTable* tab = nullptr;
  int depth = kG; ///< storage depth every slot is banded to
  std::vector<Bands> slots;
  /// Plan-side only: per-op "some later op read my written value".
  std::vector<char>* consumed = nullptr;
  std::vector<StepDiagnostic>* diags = nullptr; ///< plan-side RBW sink
  const StepProgram* prog = nullptr;

  void reset(int nSlots, int d) {
    depth = d;
    slots.assign(static_cast<std::size_t>(nSlots), {});
    for (int s = 0; s < nSlots; ++s) {
      Bands& b = slots[static_cast<std::size_t>(s)];
      if (s == 0) {
        b.push_back({0, tab->init(0), -1});
        b.push_back({depth, tab->stale(0), -1});
      } else {
        b.push_back({depth, tab->uninit(s), -1});
      }
    }
  }

  Bands& slot(int s) { return slots[static_cast<std::size_t>(s)]; }

  /// Mark writers of bands intersecting [lo, hi] consumed; report a
  /// ReadBeforeWrite the first time `op` reads an Uninit band.
  void consume(int s, int lo, int hi, int op) {
    bool reported = false;
    const Bands& b = slot(s);
    int prevUp = kBottom;
    for (const Band& band : b) {
      const bool intersects = band.upTo >= lo && prevUp < hi;
      prevUp = band.upTo;
      if (!intersects) {
        continue;
      }
      if (consumed != nullptr && band.writer >= 0) {
        (*consumed)[static_cast<std::size_t>(band.writer)] = 1;
      }
      if (diags != nullptr && !reported &&
          tab->node(band.expr).kind == ExKind::Uninit) {
        reported = true;
        StepDiagnostic d;
        d.kind = StepDiagKind::ReadBeforeWrite;
        d.op = op;
        d.slot = s;
        d.layer = std::min(hi, band.upTo);
        d.detail = "reads " + std::string(exKindName(ExKind::Uninit)) +
                   " slot '" + slotName(s) + "'";
        diags->push_back(std::move(d));
      }
    }
  }

  [[nodiscard]] std::string slotName(int s) const {
    if (prog != nullptr &&
        static_cast<std::size_t>(s) < prog->slotNames.size()) {
      return prog->slotName(s);
    }
    return "slot" + std::to_string(s);
  }

  /// Window field profile for an RHS evaluated at layer L: the source's
  /// expr-only band structure over [L-kG, L+kG], offsets relative to L.
  [[nodiscard]] std::vector<std::pair<int, int>> window(const Bands& src,
                                                        int layer) const {
    std::vector<std::pair<int, int>> rel;
    int prevUp = kBottom;
    for (const Band& band : src) {
      const int lo = std::max(prevUp + 1, layer - kG);
      const int hi = std::min(band.upTo, layer + kG);
      prevUp = band.upTo;
      if (lo > hi) {
        continue;
      }
      if (!rel.empty() && rel.back().second == band.expr) {
        rel.back().first = hi - layer;
      } else {
        rel.emplace_back(hi - layer, band.expr);
      }
    }
    return rel;
  }

  void applyExchange(int s, int w, int op) {
    if (w <= 0) {
      return; // dropped (-1) or zero layers: nothing moves
    }
    consume(s, 1 - w, 0, op);
    Bands part;
    const Bands& cur = slot(s);
    for (int layer = 1; layer <= w; ++layer) {
      // Ghost depth L holds what the neighbor's valid cells hold at
      // interior distance L-1 from their own boundary: the mirror.
      part.push_back({layer, exprAt(cur, 1 - layer), op});
    }
    overlay(slot(s), 1, w, part);
  }

  void applyBoundaryFill(int s, int op) {
    consume(s, 1 - kG, 0, op);
    Bands part;
    const Bands& cur = slot(s);
    for (int layer = 1; layer <= kG; ++layer) {
      ExNode n;
      n.kind = ExKind::BCFill;
      n.a = exprAt(cur, 1 - layer);
      n.op = op;
      part.push_back({layer, tab->intern(std::move(n)), op});
    }
    overlay(slot(s), 1, kG, part);
  }

  void applyRhs(int src, int dst, int w, int op) {
    consume(src, kBottom, w + kG, op);
    const Bands& in = slot(src);
    Bands out;
    const int bottom = std::min(in.front().upTo - kG, w);
    {
      ExNode n;
      n.kind = ExKind::Rhs;
      n.a = in.front().expr;
      n.op = op;
      out.push_back({bottom, tab->intern(std::move(n)), op});
    }
    for (int layer = bottom + 1; layer <= w; ++layer) {
      auto rel = window(in, layer);
      ExNode n;
      if (rel.size() == 1) {
        n.kind = ExKind::Rhs;
        n.a = rel.front().second;
      } else {
        n.kind = ExKind::MixedRhs;
        n.win = std::move(rel);
      }
      n.op = op;
      out.push_back({layer, tab->intern(std::move(n)), op});
    }
    writeUpTo(slot(dst), w, std::move(out));
  }

  void applyCombine(const StepOp& sop, int w, int op) {
    const int dst = sop.dst;
    const int src = sop.src;
    if (sop.kind != StepOpKind::ScaleSlot) {
      consume(src, kBottom, w, op);
    }
    if (sop.kind != StepOpKind::CopySlot) {
      consume(dst, kBottom, w, op); // axpy/scale read-modify their dst;
                                    // copy overwrites without reading, so
                                    // an overwritten-unread store stays
                                    // dead for S2
    }
    const Bands& a = slot(dst);
    const Bands& b = slot(src);
    if (sop.kind == StepOpKind::CopySlot) {
      Bands out;
      int prevUp = kBottom;
      for (const Band& band : b) {
        if (prevUp >= w) {
          break;
        }
        out.push_back({std::min(band.upTo, w), band.expr, op});
        prevUp = band.upTo;
      }
      writeUpTo(slot(dst), w, std::move(out));
      return;
    }
    Bands out;
    const int bottom = std::min({a.front().upTo, b.front().upTo, w});
    const auto make = [&](int layer) {
      ExNode n;
      if (sop.kind == StepOpKind::AxpySlot) {
        n.kind = ExKind::Axpy;
        n.a = exprAt(a, layer);
        n.b = exprAt(b, layer);
      } else {
        n.kind = ExKind::Scale;
        n.a = exprAt(a, layer);
      }
      n.coeff = sop.scale;
      n.op = op;
      return tab->intern(std::move(n));
    };
    out.push_back({bottom, make(bottom), op});
    for (int layer = bottom + 1; layer <= w; ++layer) {
      out.push_back({layer, make(layer), op});
    }
    writeUpTo(slot(dst), w, std::move(out));
  }

  /// Execute op `i` at plan width `w`.
  void apply(const StepOp& sop, int w, int i) {
    switch (sop.kind) {
    case StepOpKind::Exchange:
      applyExchange(sop.dst, w, i);
      break;
    case StepOpKind::BoundaryFill:
      if (w >= 0) {
        applyBoundaryFill(sop.dst, i);
      }
      break;
    case StepOpKind::RhsEval:
      applyRhs(sop.src, sop.dst, w, i);
      break;
    case StepOpKind::CopySlot:
    case StepOpKind::AxpySlot:
    case StepOpKind::ScaleSlot:
      applyCombine(sop, w, i);
      break;
    }
  }

  /// Mark the program's surviving output — the solution slot's interior —
  /// as consumed, so its producing chain is live by definition.
  void consumeOutput() { consume(0, kBottom, 0, -1); }
};

/// Deepest layer any band of `a` or `b` differs at over (-inf, 0], or
/// kBottom when the interiors agree. Piecewise-constant: checking every
/// band boundary <= 0 of either side (plus 0 itself) covers all pieces.
int divergingLayer(const Bands& a, const Bands& b) {
  std::vector<int> probes{0};
  for (const Band& band : a) {
    if (band.upTo < 0) {
      probes.push_back(band.upTo);
    }
  }
  for (const Band& band : b) {
    if (band.upTo < 0) {
      probes.push_back(band.upTo);
    }
  }
  std::sort(probes.begin(), probes.end(), std::greater<>());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  for (const int layer : probes) {
    if (exprAt(a, layer) != exprAt(b, layer)) {
      return layer;
    }
  }
  // Bottom piece: below every recorded boundary.
  const int bottom = std::min(a.front().upTo, b.front().upTo) - 1;
  if (bottom <= 0 && exprAt(a, bottom) != exprAt(b, bottom)) {
    return bottom;
  }
  return kBottom;
}

grid::IntVect witnessCell(int layer, int boxSize) {
  const int d = std::min(-layer, std::max(boxSize - 1, 0));
  return {d, d, d};
}

/// Storage depth the plan implies: every kept width fits, every RHS
/// source read (width + kG) fits, and at least the declared depth / the
/// base ghost width.
int storageDepth(const StepProgram& prog, const StepHaloPlan& plan) {
  int d = std::max(plan.depth, kG);
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    const int w = i < plan.width.size() ? plan.width[i] : 0;
    if (w < 0) {
      continue;
    }
    d = std::max(d, prog.ops[i].kind == StepOpKind::RhsEval ? w + kG : w);
  }
  return d;
}

std::string opLabel(const StepProgram& prog, int i) {
  if (i < 0 || static_cast<std::size_t>(i) >= prog.ops.size()) {
    return "op " + std::to_string(i);
  }
  const StepOp& op = prog.ops[static_cast<std::size_t>(i)];
  const auto name = [&](int s) {
    return static_cast<std::size_t>(s) < prog.slotNames.size()
               ? prog.slotName(s)
               : "slot" + std::to_string(s);
  };
  std::string what;
  switch (op.kind) {
  case StepOpKind::Exchange: what = "exchange " + name(op.dst); break;
  case StepOpKind::BoundaryFill: what = "bcfill " + name(op.dst); break;
  case StepOpKind::RhsEval:
    what = "rhs " + name(op.src) + " -> " + name(op.dst);
    break;
  case StepOpKind::CopySlot:
    what = "copy " + name(op.src) + " -> " + name(op.dst);
    break;
  case StepOpKind::AxpySlot:
    what = "axpy " + name(op.dst) + " += " + std::to_string(op.scale) +
           " * " + name(op.src);
    break;
  case StepOpKind::ScaleSlot:
    what = "scale " + name(op.dst) + " *= " + std::to_string(op.scale);
    break;
  }
  return "op " + std::to_string(i) + " (" + what + ", step " +
         std::to_string(op.step) + ")";
}

/// One lockstep S1 interpretation: `prog` under `plan` against `ref`
/// under `ref`'s eager (staged) plan. Returns diagnostics; fills
/// `consumed`/`advDiags` only when tracking liveness (full mode).
struct RunOutcome {
  std::vector<StepDiagnostic> diagnostics;
  std::vector<char> consumed;
  Machine plan; ///< final plan-side state (liveness post-pass)
};

RunOutcome runLockstep(const StepProgram& prog, const StepHaloPlan& plan,
                       const StepProgram& ref, const StepCheckOptions& opts,
                       ExprTable& tab, bool track) {
  const StepHaloPlan eager = core::planStepHalos(ref, StepFuse::Staged);
  const int depth =
      std::max(storageDepth(prog, plan), storageDepth(ref, eager));

  RunOutcome out;
  out.consumed.assign(prog.ops.size(), 0);

  Machine& a = out.plan;
  a.tab = &tab;
  a.prog = &prog;
  if (track) {
    a.consumed = &out.consumed;
    a.diags = &out.diagnostics;
  }
  a.reset(prog.nSlots, depth);

  Machine b;
  b.tab = &tab;
  b.prog = &ref;
  b.reset(ref.nSlots, depth);

  const bool lockstep = prog.ops.size() == ref.ops.size();
  const std::size_t n = prog.ops.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.diagnostics.size();
    a.apply(prog.ops[i], plan.width[i], static_cast<int>(i));
    if (!lockstep) {
      continue;
    }
    b.apply(ref.ops[i], eager.width[i], static_cast<int>(i));
    if (out.diagnostics.size() > before) {
      return out; // the op's own read-before-write is the minimal witness
    }
    // S1, incrementally: the first op whose written interior diverges
    // from the eager reference is the minimal witness.
    for (const int s : {prog.ops[i].dst, ref.ops[i].dst}) {
      if (s >= prog.nSlots || s >= ref.nSlots) {
        continue;
      }
      const int layer = divergingLayer(a.slot(s), b.slot(s));
      if (layer == kBottom) {
        if (s == prog.ops[i].dst && s == ref.ops[i].dst) {
          break; // same dst checked once
        }
        continue;
      }
      StepDiagnostic d;
      d.kind = StepDiagKind::ValueMismatch;
      d.op = static_cast<int>(i);
      d.slot = s;
      d.layer = layer;
      d.cell = witnessCell(layer, opts.boxSize);
      d.detail = opLabel(prog, static_cast<int>(i)) + ": plan writes " +
                 std::string(exKindName(
                     tab.node(exprAt(a.slot(s), layer)).kind)) +
                 " where eager holds " +
                 std::string(exKindName(
                     tab.node(exprAt(b.slot(s), layer)).kind)) +
                 " in slot '" + a.slotName(s) + "'";
      out.diagnostics.push_back(std::move(d));
      return out;
    }
  }
  // Final safety net (and the only comparison when op counts differ):
  // every slot's interior must agree at the end.
  const int nSlots = std::min(prog.nSlots, ref.nSlots);
  for (int s = 0; s < nSlots; ++s) {
    const int layer = divergingLayer(a.slot(s), b.slot(s));
    if (layer == kBottom) {
      continue;
    }
    StepDiagnostic d;
    d.kind = StepDiagKind::ValueMismatch;
    d.op = a.slot(s)[bandAt(a.slot(s), layer)].writer;
    d.slot = s;
    d.layer = layer;
    d.cell = witnessCell(layer, opts.boxSize);
    d.detail = "final interior of slot '" + a.slotName(s) +
               "' diverges from eager";
    out.diagnostics.push_back(std::move(d));
    return out;
  }
  return out;
}

long long extraCells(int boxSize, int nBoxes, int w, int minW) {
  const auto vol = [boxSize](int width) {
    const long long side = boxSize + 2LL * width;
    return side * side * side;
  };
  return (vol(w) - vol(minW)) * nBoxes;
}

} // namespace

const char* stepDiagKindName(StepDiagKind kind) {
  switch (kind) {
  case StepDiagKind::ValueMismatch: return "value-mismatch";
  case StepDiagKind::ReadBeforeWrite: return "read-before-write";
  case StepDiagKind::StorageExceeded: return "storage-exceeded";
  }
  return "?";
}

const char* stepNoteKindName(StepNoteKind kind) {
  switch (kind) {
  case StepNoteKind::DeadStore: return "dead-store";
  case StepNoteKind::DeadExchange: return "dead-exchange";
  case StepNoteKind::OverDeepHalo: return "over-deep-halo";
  }
  return "?";
}

std::string StepDiagnostic::message() const {
  std::string msg = "[";
  msg += stepDiagKindName(kind);
  msg += "] op ";
  msg += std::to_string(op);
  msg += ", slot ";
  msg += std::to_string(slot);
  msg += ", layer ";
  msg += std::to_string(layer);
  msg += ", witness cell (" + std::to_string(cell[0]) + "," +
         std::to_string(cell[1]) + "," + std::to_string(cell[2]) + ")";
  if (!detail.empty()) {
    msg += ": " + detail;
  }
  return msg;
}

std::string StepAdvisory::message() const {
  std::string msg = "[";
  msg += stepNoteKindName(kind);
  msg += "] op ";
  msg += std::to_string(op);
  msg += ", slot ";
  msg += std::to_string(slot);
  switch (kind) {
  case StepNoteKind::OverDeepHalo:
    msg += ": width " + std::to_string(width) +
           " exceeds the proven-minimal " + std::to_string(minWidth) +
           " (+" + std::to_string(recomputeCells) +
           " recomputed cells per run)";
    break;
  case StepNoteKind::DeadStore:
    msg += ": written values are never read";
    break;
  case StepNoteKind::DeadExchange:
    msg += ": filled ghost layers are never read";
    break;
  }
  return msg;
}

StepCheckReport checkStepProgram(const StepProgram& prog, StepFuse fuse,
                                 const StepHaloPlan& plan,
                                 const StepCheckOptions& opts) {
  StepCheckReport report;
  report.fuse = fuse;
  report.planDepth = plan.depth;
  const StepProgram& ref =
      opts.reference != nullptr ? *opts.reference : prog;

  ExprTable tab;
  RunOutcome run = runLockstep(prog, plan, ref, opts, tab, /*track=*/true);
  report.diagnostics = std::move(run.diagnostics);

  if (report.ok()) {
    // S2 advisories: ops whose written values nothing ever consumed.
    run.plan.consumeOutput();
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      if (plan.width[i] < 0 || run.consumed[i] != 0) {
        continue;
      }
      const StepOp& op = prog.ops[i];
      StepAdvisory adv;
      adv.op = static_cast<int>(i);
      adv.slot = op.dst;
      adv.width = plan.width[i];
      adv.kind = (op.kind == StepOpKind::Exchange ||
                  op.kind == StepOpKind::BoundaryFill)
                     ? StepNoteKind::DeadExchange
                     : StepNoteKind::DeadStore;
      report.advisories.push_back(adv);
    }
  }

  if (report.ok() && opts.checkTightness) {
    // S3: every kept positive width must be minimal — width-1 breaks S1.
    StepCheckOptions sub = opts;
    sub.checkTightness = false;
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      const int w = plan.width[i];
      if (w <= 0) {
        continue;
      }
      int minW = w;
      for (int t = w - 1; t >= 0; --t) {
        StepHaloPlan trial = plan;
        trial.width[i] = t;
        ExprTable trialTab;
        const RunOutcome probe =
            runLockstep(prog, trial, ref, sub, trialTab, /*track=*/true);
        if (!probe.diagnostics.empty()) {
          break; // t provably breaks S1/S2: w = t+1 is necessary
        }
        minW = t;
      }
      if (minW < w) {
        StepAdvisory adv;
        adv.kind = StepNoteKind::OverDeepHalo;
        adv.op = static_cast<int>(i);
        adv.slot = prog.ops[i].dst;
        adv.width = w;
        adv.minWidth = minW;
        adv.recomputeCells =
            extraCells(opts.boxSize, opts.nBoxes, w, minW);
        report.advisories.push_back(adv);
      }
    }
  }

  report.exprCount = tab.size();
  return report;
}

StepCheckReport checkStepProgram(const StepProgram& prog, StepFuse fuse,
                                 const StepCheckOptions& opts) {
  return checkStepProgram(prog, fuse, core::planStepHalos(prog, fuse),
                          opts);
}

std::vector<CostNote> stepCheckNotes(const StepCheckReport& report,
                                     const StepProgram& prog) {
  std::vector<CostNote> notes;
  for (const StepAdvisory& adv : report.advisories) {
    CostNote note;
    note.kind = adv.kind == StepNoteKind::OverDeepHalo
                    ? CostNoteKind::OverDeepHalo
                    : CostNoteKind::DeadStore;
    note.where = opLabel(prog, adv.op);
    // OverDeepHalo: actual vs proven-minimal width, recompute volume in
    // `fraction`. Dead stores/exchanges: the planned width only.
    note.actualBytes = static_cast<double>(adv.width);
    note.limitBytes = static_cast<double>(adv.minWidth);
    note.fraction = static_cast<double>(adv.recomputeCells);
    notes.push_back(note);
  }
  return notes;
}

std::uint64_t stepSignature(const StepProgram& prog, StepFuse fuse,
                            const StepShapeKey& key) {
  std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
  const auto mix = [&h](const void* p, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL; // FNV-1a prime
    }
  };
  const auto mixi = [&](long long v) { mix(&v, sizeof v); };
  const auto mixr = [&](Real v) { mix(&v, sizeof v); };
  mixi(static_cast<long long>(fuse));
  mixi(prog.nSlots);
  mixi(prog.rhsEvals);
  mixi(prog.nSteps);
  mixi(static_cast<long long>(prog.ops.size()));
  for (const StepOp& op : prog.ops) {
    mixi(static_cast<long long>(op.kind));
    mixi(op.dst);
    mixi(op.src);
    mixr(op.scale);
    mixi(op.step);
  }
  for (int d = 0; d < grid::SpaceDim; ++d) {
    mixi(key.domainBox.lo()[d]);
    mixi(key.domainBox.hi()[d]);
    mixi(key.periodic[static_cast<std::size_t>(d)] ? 1 : 0);
    mixi(key.boxSize[d]);
  }
  mixi(key.nGhost);
  mixi(key.nComp);
  mixr(key.invDx);
  mixr(key.dissipation);
  mixi(key.hasBoundary ? 1 : 0);
  return h;
}

std::string stepSignatureHex(std::uint64_t signature) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[signature & 0xF];
    signature >>= 4;
  }
  return out;
}

} // namespace fluxdiv::analysis
