#include "analysis/mutate.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "kernels/footprint.hpp"

namespace fluxdiv::analysis::mutate {

ScheduleModel shallowHalo(ScheduleModel m) {
  m.ghost = m.ghost > 0 ? m.ghost - 1 : 0;
  return m;
}

ScheduleModel weakSkew(ScheduleModel m) {
  for (auto& cone : m.cones) {
    cone.skew[2] = 0;
  }
  return m;
}

ScheduleModel thinOverlap(ScheduleModel m) {
  for (auto& phase : m.phases) {
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        if (stage.stage.find("EvalFlux1[d=x]") == std::string::npos) {
          continue;
        }
        for (auto& w : stage.writes) {
          if (!w.box.empty()) {
            w.box = Box(w.box.lo(), w.box.hi() - IntVect::basis(0));
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel overlappingTileWrites(ScheduleModel m) {
  for (auto& phase : m.phases) {
    if (phase.items.size() < 2) {
      continue; // only concurrent writers can overlap
    }
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        for (auto& w : stage.writes) {
          if (w.field == FieldId::Phi1 && !w.box.empty()) {
            w.box = w.box.grow(1);
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel droppedBarrier(ScheduleModel m, std::size_t phase) {
  if (phase + 1 >= m.phases.size()) {
    return m;
  }
  Phase& a = m.phases[phase];
  Phase& b = m.phases[phase + 1];
  a.name += " + " + b.name + " (barrier dropped)";
  // Merge item-by-item: slab i of the first phase continues straight into
  // slab i of the second with no synchronization in between.
  for (std::size_t i = 0; i < b.items.size(); ++i) {
    if (i < a.items.size()) {
      for (auto& s : b.items[i].stages) {
        a.items[i].stages.push_back(std::move(s));
      }
    } else {
      a.items.push_back(std::move(b.items[i]));
    }
  }
  m.phases.erase(m.phases.begin() + static_cast<std::ptrdiff_t>(phase) + 1);
  return m;
}

// ---------------------------------------------------------------------------
// Task-graph mutations.
// ---------------------------------------------------------------------------

namespace {

/// Direct-conflict classification of a task pair, mirroring the checker's
/// witness precedence: write/write overlap dominates read/write.
DiagnosticKind graphConflictKind(const GraphTask& a, const GraphTask& b) {
  for (const auto& wa : a.writes) {
    for (const auto& wb : b.writes) {
      if (wa.overlaps(wb)) {
        return DiagnosticKind::WriteOverlap;
      }
    }
  }
  for (const auto& wa : a.writes) {
    for (const auto& rb : b.reads) {
      if (wa.overlaps(rb)) {
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  for (const auto& wb : b.writes) {
    for (const auto& ra : a.reads) {
      if (wb.overlaps(ra)) {
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  return DiagnosticKind::Ok;
}

/// Is `to` reachable from `from` when one direct from->to edge instance is
/// ignored? True means dropping that one edge cannot unorder the pair
/// (a duplicate edge or an alternate path still orders it).
bool reachableSansEdge(const TaskGraphModel& m, int from, int to) {
  std::vector<char> visited(m.tasks.size(), 0);
  std::vector<int> stack{from};
  visited[static_cast<std::size_t>(from)] = 1;
  bool skipped = false;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (const int s : m.tasks[static_cast<std::size_t>(x)].successors) {
      if (x == from && s == to && !skipped) {
        skipped = true; // the instance being dropped
        continue;
      }
      if (s == to) {
        return true;
      }
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  return false;
}

bool reachable(const TaskGraphModel& m, int from, int to) {
  if (from == to) {
    return true;
  }
  std::vector<char> visited(m.tasks.size(), 0);
  std::vector<int> stack{from};
  visited[static_cast<std::size_t>(from)] = 1;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (const int s : m.tasks[static_cast<std::size_t>(x)].successors) {
      if (s == to) {
        return true;
      }
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  return false;
}

/// Edges whose removal provably unorders a directly-conflicting pair: the
/// endpoints conflict, and no duplicate edge or alternate path keeps them
/// ordered. Deterministic enumeration order (task id, successor position).
std::vector<std::pair<int, int>>
conflictCarryingEdges(const TaskGraphModel& m) {
  std::vector<std::pair<int, int>> out;
  for (std::size_t u = 0; u < m.tasks.size(); ++u) {
    for (const int v : m.tasks[u].successors) {
      const int ui = static_cast<int>(u);
      if (graphConflictKind(m.tasks[u],
                            m.tasks[static_cast<std::size_t>(v)]) !=
              DiagnosticKind::Ok &&
          !reachableSansEdge(m, ui, v)) {
        out.emplace_back(ui, v);
      }
    }
  }
  return out;
}

void eraseOneEdge(TaskGraphModel& m, int u, int v) {
  auto& succs = m.tasks[static_cast<std::size_t>(u)].successors;
  const auto it = std::find(succs.begin(), succs.end(), v);
  if (it != succs.end()) {
    succs.erase(it);
  }
}

} // namespace

GraphMutation dropGraphEdge(const TaskGraphModel& m, std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  const auto cands = conflictCarryingEdges(m);
  if (cands.empty()) {
    out.what = "no conflict-carrying edge to drop";
    return out;
  }
  const auto [u, v] = cands[seed % cands.size()];
  eraseOneEdge(out.model, u, v);
  out.expect = graphConflictKind(m.tasks[static_cast<std::size_t>(u)],
                                 m.tasks[static_cast<std::size_t>(v)]);
  out.taskA = std::min(u, v);
  out.taskB = std::max(u, v);
  out.what =
      "drop edge '" + m.label(u) + "' -> '" + m.label(v) + "'";
  return out;
}

GraphMutation rerouteGraphEdge(const TaskGraphModel& m,
                               std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  const auto cands = conflictCarryingEdges(m);
  if (cands.empty()) {
    out.what = "no conflict-carrying edge to reroute";
    return out;
  }
  const auto [u, v] = cands[seed % cands.size()];
  eraseOneEdge(out.model, u, v);
  out.expect = graphConflictKind(m.tasks[static_cast<std::size_t>(u)],
                                 m.tasks[static_cast<std::size_t>(v)]);
  out.taskA = std::min(u, v);
  out.taskB = std::max(u, v);
  out.what =
      "reroute edge '" + m.label(u) + "' -> '" + m.label(v) + "'";
  // Re-aim the edge at an unrelated task: no cycle (w must not reach u)
  // and no accidental repair (w must not reach v, or u -> w -> v would
  // re-order the pair we just unordered).
  for (std::size_t w = 0; w < out.model.tasks.size(); ++w) {
    const int wi = static_cast<int>(w);
    if (wi == u || wi == v || reachable(out.model, wi, u) ||
        reachable(out.model, wi, v)) {
      continue;
    }
    out.model.addEdge(u, wi);
    out.what += " to '" + m.label(wi) + "'";
    return out;
  }
  out.what += " (no reroute target; plain drop)";
  return out;
}

GraphMutation shrinkGhostWrite(const TaskGraphModel& m,
                               std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  if (m.ghostsPreExchanged) {
    out.what = "graph performs no exchange; nothing to shrink";
    return out;
  }
  struct Cand {
    int op = -1;
    std::size_t write = 0;
    Box lost;
    Box shrunk;
    int reader = -1;
    const char* side = "";
  };
  std::vector<Cand> cands;
  for (std::size_t t = 0; t < m.tasks.size(); ++t) {
    if (!m.tasks[t].exchangeOp) {
      continue;
    }
    for (std::size_t wi = 0; wi < m.tasks[t].writes.size(); ++wi) {
      const TaskAccess& w = m.tasks[t].writes[wi];
      if (w.field != FieldId::Phi0 || w.box >= m.validBoxes.size()) {
        continue;
      }
      const Box valid = m.validBoxes[w.box];
      // Peel the outermost ghost layer of the fill, per direction/side.
      for (int d = 0; d < grid::SpaceDim; ++d) {
        for (int side = 0; side < 2; ++side) {
          Box lost;
          Box shrunk;
          if (side == 0 && w.region.lo(d) < valid.lo(d)) {
            lost = w.region.lowSlab(d, 1);
            shrunk = Box(w.region.lo() + IntVect::basis(d),
                         w.region.hi());
          } else if (side == 1 && w.region.hi(d) > valid.hi(d)) {
            lost = w.region.highSlab(d, 1);
            shrunk = Box(w.region.lo(),
                         w.region.hi() - IntVect::basis(d));
          } else {
            continue;
          }
          // The starved reader the checker will name: the lowest-id
          // compute task whose Phi0 read of this box needs a lost cell.
          int reader = -1;
          for (std::size_t r = 0; r < m.tasks.size() && reader < 0;
               ++r) {
            if (m.tasks[r].exchangeOp) {
              continue;
            }
            for (const TaskAccess& ra : m.tasks[r].reads) {
              if (ra.field == FieldId::Phi0 && ra.box == w.box &&
                  w.comp0 <= ra.comp0 &&
                  ra.comp0 + ra.nComp <= w.comp0 + w.nComp &&
                  ra.region.intersects(lost)) {
                reader = static_cast<int>(r);
                break;
              }
            }
          }
          if (reader >= 0) {
            cands.push_back({static_cast<int>(t), wi, lost, shrunk,
                             reader,
                             side == 0 ? "low" : "high"});
          }
        }
      }
    }
  }
  if (cands.empty()) {
    out.what = "no ghost write feeds a modeled read; nothing to shrink";
    return out;
  }
  const Cand& c = cands[seed % cands.size()];
  out.model.tasks[static_cast<std::size_t>(c.op)]
      .writes[c.write]
      .region = c.shrunk;
  out.expect = DiagnosticKind::ReadUncovered;
  out.taskA = c.reader;
  out.taskB = c.op;
  out.what = "shrink ghost write of '" + m.label(c.op) + "' by its " +
             c.side + " layer (starves '" + m.label(c.reader) + "')";
  return out;
}

CommMutation dropCommOp(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty()) {
    out.what = "plan has no ops; nothing to drop";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  const CommOp op = m.ops[i];
  out.model.ops.erase(out.model.ops.begin() +
                      static_cast<std::ptrdiff_t>(i));
  out.expect = CommDiagKind::GhostGap;
  out.expectAlso = CommDiagKind::UnmatchedRecv;
  out.witnessA = "box" + std::to_string(op.destBox) + " ghost halo";
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "drop '" + op.label + "' (skipped neighbor in the plan build)";
  return out;
}

CommMutation shrinkCommRegion(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  // Candidates: (op, axis) pairs where shaving the outermost ghost
  // layer along the op's sector axis leaves a non-empty region, so the
  // mutation under-copies rather than degenerating into a drop.
  struct Cand {
    std::size_t op = 0;
    int axis = 0;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const CommOp& op = m.ops[i];
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (op.sector[d] != 0 &&
          op.destRegion.hi(d) > op.destRegion.lo(d)) {
        cands.push_back({i, d});
      }
    }
  }
  if (cands.empty()) {
    out.what = "every op is one layer deep; nothing to shrink";
    return out;
  }
  const Cand& c = cands[seed % cands.size()];
  CommOp& op = out.model.ops[c.op];
  grid::IntVect lo = op.destRegion.lo();
  grid::IntVect hi = op.destRegion.hi();
  // The outermost layer is the one farthest from the valid box: the low
  // side for a -1 sector, the high side for +1.
  if (op.sector[c.axis] < 0) {
    lo[c.axis] += 1;
  } else {
    hi[c.axis] -= 1;
  }
  op.destRegion = Box(lo, hi);
  out.expect = CommDiagKind::GhostGap;
  out.expectAlso = CommDiagKind::ExtentMismatch;
  out.witnessA = "box" + std::to_string(op.destBox) + " ghost halo";
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "shrink '" + op.label + "' by its outermost layer in dim " +
             std::to_string(c.axis) + " (halo fill under-copies)";
  return out;
}

CommMutation skewCommSource(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty()) {
    out.what = "plan has no ops; nothing to skew";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  CommOp& op = out.model.ops[i];
  const Box srcValid = m.layout.box(op.srcBox);
  // Prefer a one-cell skew that keeps the source inside the valid
  // region, so the bug is pure C2 (wrong cells, not invalid cells);
  // fall back to any skew and expect SourceInvalid as well.
  grid::IntVect best;
  bool staysValid = false;
  for (int d = 0; d < grid::SpaceDim && !staysValid; ++d) {
    for (const int s : {-1, 1}) {
      grid::IntVect delta;
      delta[d] = s;
      if (srcValid.contains(
              op.destRegion.shift(op.srcShift + delta))) {
        best = delta;
        staysValid = true;
        break;
      }
    }
  }
  if (!staysValid) {
    best = grid::IntVect(1, 0, 0);
  }
  op.srcShift += best;
  out.expect = CommDiagKind::ExtentMismatch;
  out.expectAlso =
      staysValid ? CommDiagKind::Ok : CommDiagKind::SourceInvalid;
  out.witnessA = op.label;
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "skew source of '" + op.label +
             "' by one cell (wrap arithmetic off by one)";
  return out;
}

CommMutation unmatchCommSend(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty() || m.layout.size() < 2) {
    out.what = "plan needs >= 2 boxes to repoint a send; no candidate";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  CommOp& op = out.model.ops[i];
  const std::size_t original = op.srcBox;
  op.srcBox = (op.srcBox + 1 + seed % (m.layout.size() - 1)) %
              m.layout.size();
  if (op.srcBox == original) {
    op.srcBox = (op.srcBox + 1) % m.layout.size();
  }
  out.expect = CommDiagKind::UnmatchedSend;
  out.expectAlso = CommDiagKind::UnmatchedRecv;
  out.witnessA = op.label;
  out.witnessB = "";  // no geometric send exists from the wrong box
  out.what = "repoint source of '" + op.label + "' from box" +
             std::to_string(original) + " to box" +
             std::to_string(op.srcBox) + " (send posted by the wrong rank)";
  return out;
}

namespace {

/// Candidate read roles for kernel mutations: roles with a nonempty
/// declared footprint (and, for the observed-set edits, observations to
/// drift). Returns indices into m.reads.
std::vector<std::size_t> kernelRoleCandidates(const KernelFootprintModel& m,
                                              bool needObserved) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < m.reads.size(); ++i) {
    if (m.reads[i].declared.empty()) {
      continue;
    }
    if (needObserved && m.reads[i].observed.empty()) {
      continue;
    }
    idx.push_back(i);
  }
  return idx;
}

grid::IntVect offsetHullHi(const std::vector<grid::IntVect>& pts) {
  grid::IntVect hi = pts.front();
  for (const grid::IntVect& p : pts) {
    hi = grid::IntVect::max(hi, p);
  }
  return hi;
}

grid::IntVect offsetHullLo(const std::vector<grid::IntVect>& pts) {
  grid::IntVect lo = pts.front();
  for (const grid::IntVect& p : pts) {
    lo = grid::IntVect::min(lo, p);
  }
  return lo;
}

} // namespace

KernelMutation widenKernelRead(const KernelFootprintModel& m,
                               std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  const std::vector<std::size_t> cand = kernelRoleCandidates(m, false);
  if (cand.empty()) {
    mut.what = "widenKernelRead: no role with a declared footprint";
    return mut;
  }
  const std::size_t ri = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const int d = static_cast<int>((seed / cand.size()) % 3);
  // One cell past the declared hull along d: the <=-vs-< loop bound bug.
  const grid::IntVect extra =
      offsetHullHi(r.declared) + grid::IntVect::basis(d);
  r.observed.push_back(extra);
  r.witnesses.push_back(m.probeRegion.empty() ? grid::IntVect::zero()
                                              : m.probeRegion.lo());
  mut.what = "kernel reads one cell past the declared hull (" + r.role + ")";
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.role = r.role;
  mut.offset = extra;
  return mut;
}

KernelMutation shiftKernelStencil(const KernelFootprintModel& m,
                                  std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  const std::vector<std::size_t> cand = kernelRoleCandidates(m, true);
  if (cand.empty()) {
    mut.what = "shiftKernelStencil: no role with observed offsets";
    return mut;
  }
  const std::size_t ri = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const int d =
      m.dir >= 0 ? m.dir : static_cast<int>((seed / cand.size()) % 3);
  const grid::IntVect shift = grid::IntVect::basis(d);
  for (grid::IntVect& o : r.observed) {
    o += shift;
  }
  // The witness must be an offset the kernel actually observes: for a
  // non-rectangular stencil (the whole-pipeline fused roles) the hull
  // corner is not a member, so pick the shifted member that left the
  // declared set farthest along the shift axis (ties broken
  // lexicographically — a rectangular stencil still yields its hull-hi
  // corner). The declared low end is no longer exercised, so the shift
  // also predicts an Overdeclared advisory when that corner was a member.
  bool escaped = false;
  grid::IntVect witness{};
  for (const grid::IntVect& o : r.observed) {
    if (std::find(r.declared.begin(), r.declared.end(), o) !=
        r.declared.end()) {
      continue;
    }
    bool better = !escaped;
    if (escaped) {
      if (o[d] != witness[d]) {
        better = o[d] > witness[d];
      } else {
        for (int k = 0; k < 3; ++k) {
          if (o[k] != witness[k]) {
            better = o[k] > witness[k];
            break;
          }
        }
      }
    }
    if (better) {
      witness = o;
      escaped = true;
    }
  }
  if (!escaped) {
    mut.model = m;
    mut.what = "shiftKernelStencil: shift leaves the declared set covered";
    return mut;
  }
  mut.what = "kernel stencil shifted by +e_" + std::to_string(d) + " (" +
             r.role + ")";
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.offset = witness;
  mut.role = r.role;
  const grid::IntVect lostLo = offsetHullLo(r.declared);
  if (std::find(r.observed.begin(), r.observed.end(), lostLo) ==
      r.observed.end()) {
    mut.expectAlso = KernelDiagKind::Overdeclared;
  }
  return mut;
}

KernelMutation forgetDeclaredOffset(const KernelFootprintModel& m,
                                    std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  // Need a declared offset that the kernel actually exercises, so the
  // forgetting is observable.
  std::vector<std::pair<std::size_t, std::size_t>> cand;
  for (std::size_t i = 0; i < m.reads.size(); ++i) {
    for (std::size_t j = 0; j < m.reads[i].declared.size(); ++j) {
      const grid::IntVect& o = m.reads[i].declared[j];
      if (std::find(m.reads[i].observed.begin(), m.reads[i].observed.end(),
                    o) != m.reads[i].observed.end()) {
        cand.emplace_back(i, j);
      }
    }
  }
  if (cand.empty()) {
    mut.what = "forgetDeclaredOffset: no exercised declared offset";
    return mut;
  }
  const auto [ri, oi] = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const grid::IntVect lost = r.declared[oi];
  r.declared.erase(r.declared.begin() + static_cast<std::ptrdiff_t>(oi));
  mut.what = "contract forgets declared offset at " + r.role;
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.role = r.role;
  mut.offset = lost;
  return mut;
}

// ------------------------------------------------------------------ steps

namespace {

using core::StepFuse;
using core::StepHaloPlan;
using core::StepOp;
using core::StepOpKind;
using core::StepProgram;

/// Sentinel: the slot (still) agrees with the reference at every layer.
constexpr int kCleanLayer = 1 << 20;

int stepStorageDepth(const StepProgram& prog, const StepHaloPlan& plan) {
  const int g = kernels::kNumGhost;
  int depth = std::max(plan.depth, g);
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    const int w = plan.width[i];
    if (w < 0) {
      continue;
    }
    depth = std::max(
        depth, prog.ops[i].kind == StepOpKind::RhsEval ? w + g : w);
  }
  return depth;
}

/// Forward staleness pass predicting checkStepProgram's witness for a
/// dropped/shaved exchange at op `from`: per slot, track the lowest layer
/// whose content diverges from the unmutated run (the corrupt band is
/// [c, depth]); the witness is the first op whose *written interior*
/// (layer <= 0) the corruption reaches. Deliberately independent of the
/// checker's band interpreter — the tests assert the two agree.
int predictStaleWitness(const StepProgram& prog, const StepHaloPlan& plan,
                        std::size_t from, int corruptFrom) {
  const int g = kernels::kNumGhost;
  const int depth = stepStorageDepth(prog, plan);
  std::vector<int> c(static_cast<std::size_t>(prog.nSlots), kCleanLayer);
  const auto s = [](int slot) { return static_cast<std::size_t>(slot); };
  c[s(prog.ops[from].dst)] = corruptFrom;
  // Old content above an op's overwritten range [.., w] survives it.
  const auto remnant = [&](int old, int w) {
    if (old == kCleanLayer || old > w) {
      return old;
    }
    return w + 1 > depth ? kCleanLayer : w + 1;
  };
  for (std::size_t i = from + 1; i < prog.ops.size(); ++i) {
    const StepOp& op = prog.ops[i];
    const int w = plan.width[i];
    if (w < 0) {
      continue; // dropped by the plan
    }
    switch (op.kind) {
    case StepOpKind::Exchange:
      // A mirror-refill from a clean interior repairs ghosts up to w.
      if (c[s(op.dst)] > 0) {
        const int nc = std::max(c[s(op.dst)], w + 1);
        c[s(op.dst)] = nc > depth ? kCleanLayer : nc;
      }
      break;
    case StepOpKind::BoundaryFill:
      break;
    case StepOpKind::RhsEval: {
      // The stencil at layer L reads src [L-g, L+g]: corruption moves
      // inward by g and lands everywhere the op writes (layers <= w).
      const int in = c[s(op.src)];
      const int out = in <= w + g ? in - g : kCleanLayer;
      c[s(op.dst)] = std::min(out, remnant(c[s(op.dst)], w));
      break;
    }
    case StepOpKind::CopySlot: {
      const int in = c[s(op.src)] <= w ? c[s(op.src)] : kCleanLayer;
      c[s(op.dst)] = std::min(in, remnant(c[s(op.dst)], w));
      break;
    }
    case StepOpKind::AxpySlot: {
      // Accumulates in place: old corruption persists, src's joins.
      const int in = c[s(op.src)] <= w ? c[s(op.src)] : kCleanLayer;
      c[s(op.dst)] = std::min(c[s(op.dst)], in);
      break;
    }
    case StepOpKind::ScaleSlot:
      break; // in place: corruption neither spreads nor heals
    }
    const bool writesInterior = op.kind == StepOpKind::RhsEval ||
                                op.kind == StepOpKind::CopySlot ||
                                op.kind == StepOpKind::AxpySlot ||
                                op.kind == StepOpKind::ScaleSlot;
    if (writesInterior && c[s(op.dst)] <= 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Layers a slot read reaches: RHS stencils read g beyond their width,
/// the rest read exactly the layers they run on (exchange and BC fill
/// read interior mirrors only).
int stepReadDepth(const StepOp& op, int w) {
  switch (op.kind) {
  case StepOpKind::RhsEval:
    return w + kernels::kNumGhost;
  case StepOpKind::CopySlot:
  case StepOpKind::AxpySlot:
  case StepOpKind::ScaleSlot:
    return w;
  case StepOpKind::Exchange:
  case StepOpKind::BoundaryFill:
    return 0;
  }
  return 0;
}

bool stepWritesInterior(StepOpKind k) {
  return k == StepOpKind::RhsEval || k == StepOpKind::CopySlot ||
         k == StepOpKind::AxpySlot || k == StepOpKind::ScaleSlot;
}

/// Sentinel: every layer of the slot is still unwritten.
constexpr int kUninitAll = -kCleanLayer;

/// Per slot, the lowest still-unwritten layer after executing ops
/// [0, upTo) at their plan widths. Slot 0 starts fully defined (u plus
/// stale-but-written ghosts); stage temps start unwritten everywhere.
std::vector<int> stepUninitFrom(const StepProgram& prog,
                                const StepHaloPlan& plan,
                                std::size_t upTo) {
  std::vector<int> u(static_cast<std::size_t>(prog.nSlots), kUninitAll);
  u[0] = kCleanLayer;
  for (std::size_t j = 0; j < upTo; ++j) {
    const int w = plan.width[j];
    if (w < 0) {
      continue;
    }
    const StepOp& op = prog.ops[j];
    int& ud = u[static_cast<std::size_t>(op.dst)];
    if (stepWritesInterior(op.kind)) {
      ud = std::max(ud, w + 1);
    } else if (ud >= 1) { // ghost fill from a written interior
      const int fill =
          op.kind == StepOpKind::Exchange ? w : kernels::kNumGhost;
      ud = std::max(ud, fill + 1);
    }
  }
  return u;
}

std::vector<std::size_t> keptExchanges(const StepProgram& prog,
                                       const StepHaloPlan& plan) {
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    if (prog.ops[i].kind == StepOpKind::Exchange && plan.width[i] > 0) {
      cand.push_back(i);
    }
  }
  return cand;
}

std::vector<int> stepReadSlots(const StepOp& op) {
  switch (op.kind) {
  case StepOpKind::Exchange:      // mirrors its own interior into ghosts
  case StepOpKind::BoundaryFill:
  case StepOpKind::ScaleSlot:
    return {op.dst};
  case StepOpKind::RhsEval:
  case StepOpKind::CopySlot:
    return {op.src};
  case StepOpKind::AxpySlot:
    return {op.src, op.dst};
  }
  return {};
}

bool sameStepOp(const StepOp& a, const StepOp& b) {
  return a.kind == b.kind && a.dst == b.dst && a.src == b.src &&
         a.scale == b.scale && a.step == b.step;
}

std::string stepOpWhat(const StepProgram& prog, std::size_t i) {
  const StepOp& op = prog.ops[i];
  return "op " + std::to_string(i) + " ('" + prog.slotName(op.dst) +
         "', step " + std::to_string(op.step) + ")";
}

/// Predict checkStepProgram's verdict for an exchange at op `from` that no
/// longer delivers layers [corruptFrom, origWidth] of its slot. Two
/// regimes: if those layers were never written before (a stage temp's
/// first exchange), the first op reading that deep trips ReadBeforeWrite;
/// if they held older (stale) values, the staleness pass locates the first
/// interior the divergence reaches (ValueMismatch). Returns false when the
/// damage never reaches a reader.
bool predictExchangeWitness(const StepProgram& prog,
                            const StepHaloPlan& plan, std::size_t from,
                            int corruptFrom, int origWidth,
                            StepDiagKind& kind, int& witnessOp) {
  const int dst = prog.ops[from].dst;
  const std::vector<int> u0 = stepUninitFrom(prog, plan, from);
  int U = std::max(corruptFrom, u0[static_cast<std::size_t>(dst)]);
  if (U <= origWidth) {
    const int depth = stepStorageDepth(prog, plan);
    for (std::size_t j = from + 1; j < prog.ops.size(); ++j) {
      const int w = plan.width[j];
      if (w < 0) {
        continue;
      }
      const StepOp& op = prog.ops[j];
      const std::vector<int> reads = stepReadSlots(op);
      if (std::find(reads.begin(), reads.end(), dst) != reads.end() &&
          stepReadDepth(op, w) >= U) {
        kind = StepDiagKind::ReadBeforeWrite;
        witnessOp = static_cast<int>(j);
        return true;
      }
      if (op.dst == dst) { // later writes can define the missing layers
        const int covered = stepWritesInterior(op.kind) ? w
                            : op.kind == StepOpKind::Exchange
                                ? w
                                : kernels::kNumGhost;
        U = std::max(U, covered + 1);
        if (U > depth) {
          return false; // fully repaired before any deep read
        }
      }
    }
    return false;
  }
  const int wit = predictStaleWitness(prog, plan, from, corruptFrom);
  if (wit < 0) {
    return false;
  }
  kind = StepDiagKind::ValueMismatch;
  witnessOp = wit;
  return true;
}

} // namespace

StepMutation dropStepExchange(const core::StepProgram& prog,
                              core::StepFuse fuse, std::uint64_t seed) {
  StepMutation mut;
  mut.prog = prog;
  mut.plan = core::planStepHalos(prog, fuse);
  const std::vector<std::size_t> cand = keptExchanges(prog, mut.plan);
  if (cand.empty()) {
    mut.what = "dropStepExchange: no kept exchange to drop";
    return mut;
  }
  const std::size_t i = cand[seed % cand.size()];
  const int w = mut.plan.width[i];
  mut.plan.width[i] = -1;
  if (!predictExchangeWitness(prog, mut.plan, i, 1, w, mut.expect,
                              mut.witnessOp)) {
    mut.what = "dropStepExchange: missing ghosts never reach a reader";
    return mut;
  }
  mut.valid = true;
  mut.what = "dropped exchange " + stepOpWhat(prog, i);
  return mut;
}

StepMutation shallowStepHalo(const core::StepProgram& prog,
                             core::StepFuse fuse, std::uint64_t seed) {
  StepMutation mut;
  mut.prog = prog;
  mut.plan = core::planStepHalos(prog, fuse);
  const std::vector<std::size_t> cand = keptExchanges(prog, mut.plan);
  if (cand.empty()) {
    mut.what = "shallowStepHalo: no kept exchange to shave";
    return mut;
  }
  const std::size_t i = cand[seed % cand.size()];
  const int w = mut.plan.width[i];
  mut.plan.width[i] = w - 1;
  // Layer w is the one the shaved exchange no longer delivers.
  if (!predictExchangeWitness(prog, mut.plan, i, w, w, mut.expect,
                              mut.witnessOp)) {
    mut.what = "shallowStepHalo: shaved layer never reaches a reader";
    return mut;
  }
  mut.valid = true;
  mut.what = "exchange " + stepOpWhat(prog, i) + " shaved to width " +
             std::to_string(w - 1);
  return mut;
}

StepMutation reorderStepOps(const core::StepProgram& prog,
                            core::StepFuse fuse, std::uint64_t seed) {
  StepMutation mut;
  mut.prog = prog;
  mut.reference = prog;
  // Adjacent pairs where one op writes a slot the other touches — swapping
  // those genuinely changes the step's dataflow (independent pairs would
  // still be flagged by the intensional lockstep, but the mutation should
  // model a real miscompilation, not an overly strict checker).
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i + 1 < prog.ops.size(); ++i) {
    const StepOp& x = prog.ops[i];
    const StepOp& y = prog.ops[i + 1];
    if (sameStepOp(x, y)) {
      continue;
    }
    if (!stepWritesInterior(x.kind) && !stepWritesInterior(y.kind)) {
      continue; // ghost-fill pairs on different slots commute
    }
    if (x.kind == StepOpKind::ScaleSlot && y.kind == StepOpKind::ScaleSlot) {
      continue; // two in-place scalings commute bit-exactly
    }
    const auto touches = [](const StepOp& o) {
      std::vector<int> t = stepReadSlots(o);
      t.push_back(o.dst);
      return t;
    };
    const std::vector<int> tx = touches(x);
    const std::vector<int> ty = touches(y);
    const bool conflict =
        std::find(ty.begin(), ty.end(), x.dst) != ty.end() ||
        std::find(tx.begin(), tx.end(), y.dst) != tx.end();
    if (!conflict) {
      continue;
    }
    // Both swapped ops must survive the mutated program's own plan, or
    // the first divergence is a plan artifact, not the swap itself.
    StepProgram probe = prog;
    std::swap(probe.ops[i], probe.ops[i + 1]);
    const StepHaloPlan pp = core::planStepHalos(probe, fuse);
    if (pp.width[i] < 0 || pp.width[i + 1] < 0) {
      continue;
    }
    cand.push_back(i);
  }
  if (cand.empty()) {
    mut.what = "reorderStepOps: no conflicting adjacent pair";
    return mut;
  }
  const std::size_t i = cand[seed % cand.size()];
  std::swap(mut.prog.ops[i], mut.prog.ops[i + 1]);
  mut.plan = core::planStepHalos(mut.prog, fuse);
  mut.useReference = true;
  mut.valid = true;
  mut.witnessOp = static_cast<int>(i);
  // The hoisted op (originally ops[i+1]) fires ReadBeforeWrite when any
  // layer it now reads was never yet written (a stage temp's interior, or
  // ghost layers whose exchange it just jumped ahead of); otherwise the
  // lockstep sees the two runs write different values at the swap point.
  const std::vector<int> u0 = stepUninitFrom(prog, mut.plan, i);
  bool rbw = false;
  for (const int r : stepReadSlots(prog.ops[i + 1])) {
    rbw = rbw || u0[static_cast<std::size_t>(r)] <=
                     stepReadDepth(prog.ops[i + 1], mut.plan.width[i]);
  }
  mut.expect =
      rbw ? StepDiagKind::ReadBeforeWrite : StepDiagKind::ValueMismatch;
  mut.what = "swapped adjacent ops " + std::to_string(i) + " and " +
             std::to_string(i + 1) + " ('" +
             prog.slotName(prog.ops[i].dst) + "' / '" +
             prog.slotName(prog.ops[i + 1].dst) + "')";
  return mut;
}

StepMutation skewStepCoeff(const core::StepProgram& prog,
                           core::StepFuse fuse, std::uint64_t seed) {
  StepMutation mut;
  mut.prog = prog;
  mut.reference = prog;
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    const StepOpKind k = prog.ops[i].kind;
    if ((k == StepOpKind::AxpySlot || k == StepOpKind::ScaleSlot) &&
        prog.ops[i].scale != 0.0) {
      cand.push_back(i);
    }
  }
  if (cand.empty()) {
    mut.what = "skewStepCoeff: no combine coefficient to skew";
    return mut;
  }
  const std::size_t i = cand[seed % cand.size()];
  mut.prog.ops[i].scale *= 1.0 + 1e-12;
  mut.plan = core::planStepHalos(mut.prog, fuse);
  mut.useReference = true;
  mut.valid = true;
  mut.expect = StepDiagKind::ValueMismatch;
  mut.witnessOp = static_cast<int>(i);
  mut.what = "combine coefficient skewed at " + stepOpWhat(prog, i);
  return mut;
}

StepMutation deepenStepHalo(const core::StepProgram& prog,
                            core::StepFuse fuse, std::uint64_t seed) {
  StepMutation mut;
  mut.prog = prog;
  mut.plan = core::planStepHalos(prog, fuse);
  // Only exchanges can be deepened without side effects: a mirror-fill one
  // layer deeper is still well-defined, whereas e.g. a widened stage
  // combine would read ghost layers its RHS never produced.
  const std::vector<std::size_t> cand = keptExchanges(prog, mut.plan);
  if (cand.empty()) {
    mut.what = "deepenStepHalo: no kept exchange to deepen";
    return mut;
  }
  const std::size_t i = cand[seed % cand.size()];
  const int w = mut.plan.width[i];
  mut.plan.width[i] = w + 1;
  mut.plan.depth = std::max(mut.plan.depth, w + 1);
  mut.valid = true;
  mut.expectAdvisory = true;
  mut.witnessOp = static_cast<int>(i);
  mut.expectMinWidth = w;
  mut.what = "exchange " + stepOpWhat(prog, i) + " deepened to width " +
             std::to_string(w + 1);
  return mut;
}

} // namespace fluxdiv::analysis::mutate
