#include "analysis/mutate.hpp"

#include <string>

namespace fluxdiv::analysis::mutate {

ScheduleModel shallowHalo(ScheduleModel m) {
  m.ghost = m.ghost > 0 ? m.ghost - 1 : 0;
  return m;
}

ScheduleModel weakSkew(ScheduleModel m) {
  for (auto& cone : m.cones) {
    cone.skew[2] = 0;
  }
  return m;
}

ScheduleModel thinOverlap(ScheduleModel m) {
  for (auto& phase : m.phases) {
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        if (stage.stage.find("EvalFlux1[d=x]") == std::string::npos) {
          continue;
        }
        for (auto& w : stage.writes) {
          if (!w.box.empty()) {
            w.box = Box(w.box.lo(), w.box.hi() - IntVect::basis(0));
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel overlappingTileWrites(ScheduleModel m) {
  for (auto& phase : m.phases) {
    if (phase.items.size() < 2) {
      continue; // only concurrent writers can overlap
    }
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        for (auto& w : stage.writes) {
          if (w.field == FieldId::Phi1 && !w.box.empty()) {
            w.box = w.box.grow(1);
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel droppedBarrier(ScheduleModel m, std::size_t phase) {
  if (phase + 1 >= m.phases.size()) {
    return m;
  }
  Phase& a = m.phases[phase];
  Phase& b = m.phases[phase + 1];
  a.name += " + " + b.name + " (barrier dropped)";
  // Merge item-by-item: slab i of the first phase continues straight into
  // slab i of the second with no synchronization in between.
  for (std::size_t i = 0; i < b.items.size(); ++i) {
    if (i < a.items.size()) {
      for (auto& s : b.items[i].stages) {
        a.items[i].stages.push_back(std::move(s));
      }
    } else {
      a.items.push_back(std::move(b.items[i]));
    }
  }
  m.phases.erase(m.phases.begin() + static_cast<std::ptrdiff_t>(phase) + 1);
  return m;
}

} // namespace fluxdiv::analysis::mutate
