#include "analysis/mutate.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace fluxdiv::analysis::mutate {

ScheduleModel shallowHalo(ScheduleModel m) {
  m.ghost = m.ghost > 0 ? m.ghost - 1 : 0;
  return m;
}

ScheduleModel weakSkew(ScheduleModel m) {
  for (auto& cone : m.cones) {
    cone.skew[2] = 0;
  }
  return m;
}

ScheduleModel thinOverlap(ScheduleModel m) {
  for (auto& phase : m.phases) {
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        if (stage.stage.find("EvalFlux1[d=x]") == std::string::npos) {
          continue;
        }
        for (auto& w : stage.writes) {
          if (!w.box.empty()) {
            w.box = Box(w.box.lo(), w.box.hi() - IntVect::basis(0));
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel overlappingTileWrites(ScheduleModel m) {
  for (auto& phase : m.phases) {
    if (phase.items.size() < 2) {
      continue; // only concurrent writers can overlap
    }
    for (auto& item : phase.items) {
      for (auto& stage : item.stages) {
        for (auto& w : stage.writes) {
          if (w.field == FieldId::Phi1 && !w.box.empty()) {
            w.box = w.box.grow(1);
          }
        }
      }
    }
  }
  return m;
}

ScheduleModel droppedBarrier(ScheduleModel m, std::size_t phase) {
  if (phase + 1 >= m.phases.size()) {
    return m;
  }
  Phase& a = m.phases[phase];
  Phase& b = m.phases[phase + 1];
  a.name += " + " + b.name + " (barrier dropped)";
  // Merge item-by-item: slab i of the first phase continues straight into
  // slab i of the second with no synchronization in between.
  for (std::size_t i = 0; i < b.items.size(); ++i) {
    if (i < a.items.size()) {
      for (auto& s : b.items[i].stages) {
        a.items[i].stages.push_back(std::move(s));
      }
    } else {
      a.items.push_back(std::move(b.items[i]));
    }
  }
  m.phases.erase(m.phases.begin() + static_cast<std::ptrdiff_t>(phase) + 1);
  return m;
}

// ---------------------------------------------------------------------------
// Task-graph mutations.
// ---------------------------------------------------------------------------

namespace {

/// Direct-conflict classification of a task pair, mirroring the checker's
/// witness precedence: write/write overlap dominates read/write.
DiagnosticKind graphConflictKind(const GraphTask& a, const GraphTask& b) {
  for (const auto& wa : a.writes) {
    for (const auto& wb : b.writes) {
      if (wa.overlaps(wb)) {
        return DiagnosticKind::WriteOverlap;
      }
    }
  }
  for (const auto& wa : a.writes) {
    for (const auto& rb : b.reads) {
      if (wa.overlaps(rb)) {
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  for (const auto& wb : b.writes) {
    for (const auto& ra : a.reads) {
      if (wb.overlaps(ra)) {
        return DiagnosticKind::ReadWriteRace;
      }
    }
  }
  return DiagnosticKind::Ok;
}

/// Is `to` reachable from `from` when one direct from->to edge instance is
/// ignored? True means dropping that one edge cannot unorder the pair
/// (a duplicate edge or an alternate path still orders it).
bool reachableSansEdge(const TaskGraphModel& m, int from, int to) {
  std::vector<char> visited(m.tasks.size(), 0);
  std::vector<int> stack{from};
  visited[static_cast<std::size_t>(from)] = 1;
  bool skipped = false;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (const int s : m.tasks[static_cast<std::size_t>(x)].successors) {
      if (x == from && s == to && !skipped) {
        skipped = true; // the instance being dropped
        continue;
      }
      if (s == to) {
        return true;
      }
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  return false;
}

bool reachable(const TaskGraphModel& m, int from, int to) {
  if (from == to) {
    return true;
  }
  std::vector<char> visited(m.tasks.size(), 0);
  std::vector<int> stack{from};
  visited[static_cast<std::size_t>(from)] = 1;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (const int s : m.tasks[static_cast<std::size_t>(x)].successors) {
      if (s == to) {
        return true;
      }
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  return false;
}

/// Edges whose removal provably unorders a directly-conflicting pair: the
/// endpoints conflict, and no duplicate edge or alternate path keeps them
/// ordered. Deterministic enumeration order (task id, successor position).
std::vector<std::pair<int, int>>
conflictCarryingEdges(const TaskGraphModel& m) {
  std::vector<std::pair<int, int>> out;
  for (std::size_t u = 0; u < m.tasks.size(); ++u) {
    for (const int v : m.tasks[u].successors) {
      const int ui = static_cast<int>(u);
      if (graphConflictKind(m.tasks[u],
                            m.tasks[static_cast<std::size_t>(v)]) !=
              DiagnosticKind::Ok &&
          !reachableSansEdge(m, ui, v)) {
        out.emplace_back(ui, v);
      }
    }
  }
  return out;
}

void eraseOneEdge(TaskGraphModel& m, int u, int v) {
  auto& succs = m.tasks[static_cast<std::size_t>(u)].successors;
  const auto it = std::find(succs.begin(), succs.end(), v);
  if (it != succs.end()) {
    succs.erase(it);
  }
}

} // namespace

GraphMutation dropGraphEdge(const TaskGraphModel& m, std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  const auto cands = conflictCarryingEdges(m);
  if (cands.empty()) {
    out.what = "no conflict-carrying edge to drop";
    return out;
  }
  const auto [u, v] = cands[seed % cands.size()];
  eraseOneEdge(out.model, u, v);
  out.expect = graphConflictKind(m.tasks[static_cast<std::size_t>(u)],
                                 m.tasks[static_cast<std::size_t>(v)]);
  out.taskA = std::min(u, v);
  out.taskB = std::max(u, v);
  out.what =
      "drop edge '" + m.label(u) + "' -> '" + m.label(v) + "'";
  return out;
}

GraphMutation rerouteGraphEdge(const TaskGraphModel& m,
                               std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  const auto cands = conflictCarryingEdges(m);
  if (cands.empty()) {
    out.what = "no conflict-carrying edge to reroute";
    return out;
  }
  const auto [u, v] = cands[seed % cands.size()];
  eraseOneEdge(out.model, u, v);
  out.expect = graphConflictKind(m.tasks[static_cast<std::size_t>(u)],
                                 m.tasks[static_cast<std::size_t>(v)]);
  out.taskA = std::min(u, v);
  out.taskB = std::max(u, v);
  out.what =
      "reroute edge '" + m.label(u) + "' -> '" + m.label(v) + "'";
  // Re-aim the edge at an unrelated task: no cycle (w must not reach u)
  // and no accidental repair (w must not reach v, or u -> w -> v would
  // re-order the pair we just unordered).
  for (std::size_t w = 0; w < out.model.tasks.size(); ++w) {
    const int wi = static_cast<int>(w);
    if (wi == u || wi == v || reachable(out.model, wi, u) ||
        reachable(out.model, wi, v)) {
      continue;
    }
    out.model.addEdge(u, wi);
    out.what += " to '" + m.label(wi) + "'";
    return out;
  }
  out.what += " (no reroute target; plain drop)";
  return out;
}

GraphMutation shrinkGhostWrite(const TaskGraphModel& m,
                               std::uint64_t seed) {
  GraphMutation out;
  out.model = m;
  if (m.ghostsPreExchanged) {
    out.what = "graph performs no exchange; nothing to shrink";
    return out;
  }
  struct Cand {
    int op = -1;
    std::size_t write = 0;
    Box lost;
    Box shrunk;
    int reader = -1;
    const char* side = "";
  };
  std::vector<Cand> cands;
  for (std::size_t t = 0; t < m.tasks.size(); ++t) {
    if (!m.tasks[t].exchangeOp) {
      continue;
    }
    for (std::size_t wi = 0; wi < m.tasks[t].writes.size(); ++wi) {
      const TaskAccess& w = m.tasks[t].writes[wi];
      if (w.field != FieldId::Phi0 || w.box >= m.validBoxes.size()) {
        continue;
      }
      const Box valid = m.validBoxes[w.box];
      // Peel the outermost ghost layer of the fill, per direction/side.
      for (int d = 0; d < grid::SpaceDim; ++d) {
        for (int side = 0; side < 2; ++side) {
          Box lost;
          Box shrunk;
          if (side == 0 && w.region.lo(d) < valid.lo(d)) {
            lost = w.region.lowSlab(d, 1);
            shrunk = Box(w.region.lo() + IntVect::basis(d),
                         w.region.hi());
          } else if (side == 1 && w.region.hi(d) > valid.hi(d)) {
            lost = w.region.highSlab(d, 1);
            shrunk = Box(w.region.lo(),
                         w.region.hi() - IntVect::basis(d));
          } else {
            continue;
          }
          // The starved reader the checker will name: the lowest-id
          // compute task whose Phi0 read of this box needs a lost cell.
          int reader = -1;
          for (std::size_t r = 0; r < m.tasks.size() && reader < 0;
               ++r) {
            if (m.tasks[r].exchangeOp) {
              continue;
            }
            for (const TaskAccess& ra : m.tasks[r].reads) {
              if (ra.field == FieldId::Phi0 && ra.box == w.box &&
                  w.comp0 <= ra.comp0 &&
                  ra.comp0 + ra.nComp <= w.comp0 + w.nComp &&
                  ra.region.intersects(lost)) {
                reader = static_cast<int>(r);
                break;
              }
            }
          }
          if (reader >= 0) {
            cands.push_back({static_cast<int>(t), wi, lost, shrunk,
                             reader,
                             side == 0 ? "low" : "high"});
          }
        }
      }
    }
  }
  if (cands.empty()) {
    out.what = "no ghost write feeds a modeled read; nothing to shrink";
    return out;
  }
  const Cand& c = cands[seed % cands.size()];
  out.model.tasks[static_cast<std::size_t>(c.op)]
      .writes[c.write]
      .region = c.shrunk;
  out.expect = DiagnosticKind::ReadUncovered;
  out.taskA = c.reader;
  out.taskB = c.op;
  out.what = "shrink ghost write of '" + m.label(c.op) + "' by its " +
             c.side + " layer (starves '" + m.label(c.reader) + "')";
  return out;
}

CommMutation dropCommOp(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty()) {
    out.what = "plan has no ops; nothing to drop";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  const CommOp op = m.ops[i];
  out.model.ops.erase(out.model.ops.begin() +
                      static_cast<std::ptrdiff_t>(i));
  out.expect = CommDiagKind::GhostGap;
  out.expectAlso = CommDiagKind::UnmatchedRecv;
  out.witnessA = "box" + std::to_string(op.destBox) + " ghost halo";
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "drop '" + op.label + "' (skipped neighbor in the plan build)";
  return out;
}

CommMutation shrinkCommRegion(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  // Candidates: (op, axis) pairs where shaving the outermost ghost
  // layer along the op's sector axis leaves a non-empty region, so the
  // mutation under-copies rather than degenerating into a drop.
  struct Cand {
    std::size_t op = 0;
    int axis = 0;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const CommOp& op = m.ops[i];
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (op.sector[d] != 0 &&
          op.destRegion.hi(d) > op.destRegion.lo(d)) {
        cands.push_back({i, d});
      }
    }
  }
  if (cands.empty()) {
    out.what = "every op is one layer deep; nothing to shrink";
    return out;
  }
  const Cand& c = cands[seed % cands.size()];
  CommOp& op = out.model.ops[c.op];
  grid::IntVect lo = op.destRegion.lo();
  grid::IntVect hi = op.destRegion.hi();
  // The outermost layer is the one farthest from the valid box: the low
  // side for a -1 sector, the high side for +1.
  if (op.sector[c.axis] < 0) {
    lo[c.axis] += 1;
  } else {
    hi[c.axis] -= 1;
  }
  op.destRegion = Box(lo, hi);
  out.expect = CommDiagKind::GhostGap;
  out.expectAlso = CommDiagKind::ExtentMismatch;
  out.witnessA = "box" + std::to_string(op.destBox) + " ghost halo";
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "shrink '" + op.label + "' by its outermost layer in dim " +
             std::to_string(c.axis) + " (halo fill under-copies)";
  return out;
}

CommMutation skewCommSource(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty()) {
    out.what = "plan has no ops; nothing to skew";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  CommOp& op = out.model.ops[i];
  const Box srcValid = m.layout.box(op.srcBox);
  // Prefer a one-cell skew that keeps the source inside the valid
  // region, so the bug is pure C2 (wrong cells, not invalid cells);
  // fall back to any skew and expect SourceInvalid as well.
  grid::IntVect best;
  bool staysValid = false;
  for (int d = 0; d < grid::SpaceDim && !staysValid; ++d) {
    for (const int s : {-1, 1}) {
      grid::IntVect delta;
      delta[d] = s;
      if (srcValid.contains(
              op.destRegion.shift(op.srcShift + delta))) {
        best = delta;
        staysValid = true;
        break;
      }
    }
  }
  if (!staysValid) {
    best = grid::IntVect(1, 0, 0);
  }
  op.srcShift += best;
  out.expect = CommDiagKind::ExtentMismatch;
  out.expectAlso =
      staysValid ? CommDiagKind::Ok : CommDiagKind::SourceInvalid;
  out.witnessA = op.label;
  out.witnessB = derivedSendLabel(op.srcBox, op.destBox, op.sector);
  out.what = "skew source of '" + op.label +
             "' by one cell (wrap arithmetic off by one)";
  return out;
}

CommMutation unmatchCommSend(const CommPlanModel& m, std::uint64_t seed) {
  CommMutation out;
  out.model = m;
  if (m.ops.empty() || m.layout.size() < 2) {
    out.what = "plan needs >= 2 boxes to repoint a send; no candidate";
    return out;
  }
  const std::size_t i = seed % m.ops.size();
  CommOp& op = out.model.ops[i];
  const std::size_t original = op.srcBox;
  op.srcBox = (op.srcBox + 1 + seed % (m.layout.size() - 1)) %
              m.layout.size();
  if (op.srcBox == original) {
    op.srcBox = (op.srcBox + 1) % m.layout.size();
  }
  out.expect = CommDiagKind::UnmatchedSend;
  out.expectAlso = CommDiagKind::UnmatchedRecv;
  out.witnessA = op.label;
  out.witnessB = "";  // no geometric send exists from the wrong box
  out.what = "repoint source of '" + op.label + "' from box" +
             std::to_string(original) + " to box" +
             std::to_string(op.srcBox) + " (send posted by the wrong rank)";
  return out;
}

namespace {

/// Candidate read roles for kernel mutations: roles with a nonempty
/// declared footprint (and, for the observed-set edits, observations to
/// drift). Returns indices into m.reads.
std::vector<std::size_t> kernelRoleCandidates(const KernelFootprintModel& m,
                                              bool needObserved) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < m.reads.size(); ++i) {
    if (m.reads[i].declared.empty()) {
      continue;
    }
    if (needObserved && m.reads[i].observed.empty()) {
      continue;
    }
    idx.push_back(i);
  }
  return idx;
}

grid::IntVect offsetHullHi(const std::vector<grid::IntVect>& pts) {
  grid::IntVect hi = pts.front();
  for (const grid::IntVect& p : pts) {
    hi = grid::IntVect::max(hi, p);
  }
  return hi;
}

grid::IntVect offsetHullLo(const std::vector<grid::IntVect>& pts) {
  grid::IntVect lo = pts.front();
  for (const grid::IntVect& p : pts) {
    lo = grid::IntVect::min(lo, p);
  }
  return lo;
}

} // namespace

KernelMutation widenKernelRead(const KernelFootprintModel& m,
                               std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  const std::vector<std::size_t> cand = kernelRoleCandidates(m, false);
  if (cand.empty()) {
    mut.what = "widenKernelRead: no role with a declared footprint";
    return mut;
  }
  const std::size_t ri = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const int d = static_cast<int>((seed / cand.size()) % 3);
  // One cell past the declared hull along d: the <=-vs-< loop bound bug.
  const grid::IntVect extra =
      offsetHullHi(r.declared) + grid::IntVect::basis(d);
  r.observed.push_back(extra);
  r.witnesses.push_back(m.probeRegion.empty() ? grid::IntVect::zero()
                                              : m.probeRegion.lo());
  mut.what = "kernel reads one cell past the declared hull (" + r.role + ")";
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.role = r.role;
  mut.offset = extra;
  return mut;
}

KernelMutation shiftKernelStencil(const KernelFootprintModel& m,
                                  std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  const std::vector<std::size_t> cand = kernelRoleCandidates(m, true);
  if (cand.empty()) {
    mut.what = "shiftKernelStencil: no role with observed offsets";
    return mut;
  }
  const std::size_t ri = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const int d =
      m.dir >= 0 ? m.dir : static_cast<int>((seed / cand.size()) % 3);
  const grid::IntVect shift = grid::IntVect::basis(d);
  for (grid::IntVect& o : r.observed) {
    o += shift;
  }
  // The shifted high end exceeds the declared hull; the declared low end
  // is no longer exercised (observed == declared before the shift would
  // make both exact, but the expectation only needs containment).
  mut.what = "kernel stencil shifted by +e_" + std::to_string(d) + " (" +
             r.role + ")";
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.offset = offsetHullHi(r.observed);
  mut.role = r.role;
  const grid::IntVect lostLo = offsetHullLo(r.declared);
  if (std::find(r.observed.begin(), r.observed.end(), lostLo) ==
      r.observed.end()) {
    mut.expectAlso = KernelDiagKind::Overdeclared;
  }
  return mut;
}

KernelMutation forgetDeclaredOffset(const KernelFootprintModel& m,
                                    std::uint64_t seed) {
  KernelMutation mut;
  mut.model = m;
  // Need a declared offset that the kernel actually exercises, so the
  // forgetting is observable.
  std::vector<std::pair<std::size_t, std::size_t>> cand;
  for (std::size_t i = 0; i < m.reads.size(); ++i) {
    for (std::size_t j = 0; j < m.reads[i].declared.size(); ++j) {
      const grid::IntVect& o = m.reads[i].declared[j];
      if (std::find(m.reads[i].observed.begin(), m.reads[i].observed.end(),
                    o) != m.reads[i].observed.end()) {
        cand.emplace_back(i, j);
      }
    }
  }
  if (cand.empty()) {
    mut.what = "forgetDeclaredOffset: no exercised declared offset";
    return mut;
  }
  const auto [ri, oi] = cand[seed % cand.size()];
  RoleFootprint& r = mut.model.reads[ri];
  const grid::IntVect lost = r.declared[oi];
  r.declared.erase(r.declared.begin() + static_cast<std::ptrdiff_t>(oi));
  mut.what = "contract forgets declared offset at " + r.role;
  mut.expect = KernelDiagKind::UndeclaredRead;
  mut.role = r.role;
  mut.offset = lost;
  return mut;
}

} // namespace fluxdiv::analysis::mutate
