#include "harness/machine.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "harness/table.hpp"

namespace fluxdiv::harness {

namespace {

std::string readFileTrimmed(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return {};
  }
  std::string line;
  std::getline(in, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

std::size_t parseCacheSize(const std::string& text) {
  // sysfs format: "32K", "2048K", "260M"
  if (text.empty()) {
    return 0;
  }
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K') {
      value *= 1024;
    } else if (text[i] == 'M') {
      value *= 1024 * 1024;
    } else if (text[i] == 'G') {
      value *= 1024ull * 1024 * 1024;
    }
  }
  return value;
}

/// Second-chance probe via sysconf when sysfs is unavailable (containers
/// and stripped-down kernels commonly hide /sys/devices/system/cpu).
void queryCachesSysconf(MachineInfo& info) {
#if defined(_SC_LEVEL1_DCACHE_SIZE) && defined(_SC_LEVEL2_CACHE_SIZE) && \
    defined(_SC_LEVEL3_CACHE_SIZE)
  struct Probe {
    int level;
    const char* type;
    int sizeSel;
    int lineSel;
    int assocSel;
  };
  const Probe probes[] = {
      {1, "Data", _SC_LEVEL1_DCACHE_SIZE, _SC_LEVEL1_DCACHE_LINESIZE,
       _SC_LEVEL1_DCACHE_ASSOC},
      {2, "Unified", _SC_LEVEL2_CACHE_SIZE, _SC_LEVEL2_CACHE_LINESIZE,
       _SC_LEVEL2_CACHE_ASSOC},
      {3, "Unified", _SC_LEVEL3_CACHE_SIZE, _SC_LEVEL3_CACHE_LINESIZE,
       _SC_LEVEL3_CACHE_ASSOC},
  };
  for (const Probe& p : probes) {
    const long size = sysconf(p.sizeSel);
    if (size <= 0) {
      continue;
    }
    CacheLevel c;
    c.level = p.level;
    c.type = p.type;
    c.sizeBytes = static_cast<std::size_t>(size);
    const long line = sysconf(p.lineSel);
    c.lineBytes = line > 0 ? static_cast<std::size_t>(line) : 64;
    const long assoc = sysconf(p.assocSel);
    c.associativity = assoc > 0 ? static_cast<int>(assoc) : 0;
    info.caches.push_back(c);
  }
#else
  (void)info;
#endif
}

} // namespace

std::vector<CacheLevel> defaultCacheHierarchy() {
  return {
      {1, "Data", 32 * 1024, 64, 8},
      {2, "Unified", 256 * 1024, 64, 8},
      {3, "Unified", 8 * 1024 * 1024, 64, 16},
  };
}

int parseCpuListCount(const std::string& text) {
  // sysfs cpulist format: comma-separated singletons and inclusive ranges,
  // e.g. "0-3,8-11,15".
  int count = 0;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) {
      continue;
    }
    const auto dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        (void)std::stoi(token); // validate
        ++count;
      } else {
        const int lo = std::stoi(token.substr(0, dash));
        const int hi = std::stoi(token.substr(dash + 1));
        if (hi >= lo) {
          count += hi - lo + 1;
        }
      }
    } catch (const std::exception&) {
      // Unparseable token: skip it rather than guessing.
    }
  }
  return count;
}

bool applyNumaFallback(MachineInfo& info) {
  std::erase_if(info.numaNodes,
                [](const NumaNode& n) { return n.cpuCount <= 0; });
  if (!info.numaNodes.empty()) {
    return false;
  }
  // Single node spanning every logical core: correct for all paper-era
  // desktop parts and the common container case where sysfs hides the
  // node directory. The executor's placement logic degrades gracefully —
  // one node means first-touch location never matters.
  info.numaNodes.push_back({0, info.logicalCores});
  info.numaFallback = true;
  return true;
}

bool applyCacheFallback(MachineInfo& info) {
  std::erase_if(info.caches,
                [](const CacheLevel& c) { return c.sizeBytes == 0; });
  if (!info.caches.empty()) {
    return false;
  }
  info.caches = defaultCacheHierarchy();
  info.cacheFallback = true;
  return true;
}

MachineInfo queryMachine() {
  MachineInfo info;
  info.logicalCores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  info.ompMaxThreads = omp_get_max_threads();

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto colon = line.find(':');
      if (colon != std::string::npos) {
        info.cpuModel = line.substr(colon + 2);
      }
      break;
    }
  }

  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::string type = readFileTrimmed(base + "/type");
    if (type.empty()) {
      break;
    }
    if (type == "Instruction") {
      continue;
    }
    CacheLevel c;
    c.type = type;
    const std::string level = readFileTrimmed(base + "/level");
    c.level = level.empty() ? 0 : std::stoi(level);
    c.sizeBytes = parseCacheSize(readFileTrimmed(base + "/size"));
    const std::string lineSize =
        readFileTrimmed(base + "/coherency_line_size");
    c.lineBytes = lineSize.empty() ? 64 : std::stoul(lineSize);
    const std::string ways = readFileTrimmed(base + "/ways_of_associativity");
    c.associativity = ways.empty() ? 0 : std::stoi(ways);
    info.caches.push_back(c);
  }
  std::erase_if(info.caches,
                [](const CacheLevel& c) { return c.sizeBytes == 0; });
  if (info.caches.empty()) {
    queryCachesSysconf(info);
  }
  applyCacheFallback(info);

  // NUMA topology: one entry per online sysfs node directory. Nodes are
  // numbered densely from 0 on every kernel we care about, but tolerate
  // holes (possible[] can be sparse after hotplug) by scanning a fixed
  // range rather than stopping at the first miss.
  for (int n = 0; n < 64; ++n) {
    const std::string cpulist = readFileTrimmed(
        "/sys/devices/system/node/node" + std::to_string(n) + "/cpulist");
    if (cpulist.empty()) {
      continue;
    }
    const int cpus = parseCpuListCount(cpulist);
    if (cpus > 0) {
      info.numaNodes.push_back({n, cpus});
    }
  }
  applyNumaFallback(info);
  return info;
}

std::size_t lastLevelCacheBytes(const MachineInfo& info) {
  std::size_t best = 0;
  int bestLevel = 0;
  for (const auto& c : info.caches) {
    if (c.level > bestLevel) {
      bestLevel = c.level;
      best = c.sizeBytes;
    }
  }
  return best;
}

void printMachineReport(std::ostream& os, const MachineInfo& info) {
  os << "machine: " << (info.cpuModel.empty() ? "unknown CPU" : info.cpuModel)
     << ", " << info.logicalCores << " logical cores, OpenMP max threads "
     << info.ompMaxThreads << '\n';
  os << "  NUMA: " << info.numaNodes.size()
     << (info.numaNodes.size() == 1 ? " node (" : " nodes (");
  for (std::size_t i = 0; i < info.numaNodes.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "node" << info.numaNodes[i].id << ": "
       << info.numaNodes[i].cpuCount << " CPUs";
  }
  os << ')';
  if (info.numaFallback) {
    os << " (default; detection failed)";
  }
  os << '\n';
  for (const auto& c : info.caches) {
    os << "  L" << c.level << ' ' << c.type << ": "
       << formatBytes(c.sizeBytes) << ", line " << c.lineBytes << " B";
    if (c.associativity > 0) {
      os << ", " << c.associativity << "-way";
    }
    if (info.cacheFallback) {
      os << " (default; detection failed)";
    }
    os << '\n';
  }
}

std::vector<std::int64_t> defaultThreadSweep(int maxThreads) {
  std::vector<std::int64_t> sweep;
  for (int t = 1; t < maxThreads; t *= 2) {
    sweep.push_back(t);
  }
  sweep.push_back(maxThreads);
  return sweep;
}

} // namespace fluxdiv::harness
