#include "harness/machine.hpp"

#include <omp.h>

#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "harness/table.hpp"

namespace fluxdiv::harness {

namespace {

std::string readFileTrimmed(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return {};
  }
  std::string line;
  std::getline(in, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

std::size_t parseCacheSize(const std::string& text) {
  // sysfs format: "32K", "2048K", "260M"
  if (text.empty()) {
    return 0;
  }
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K') {
      value *= 1024;
    } else if (text[i] == 'M') {
      value *= 1024 * 1024;
    } else if (text[i] == 'G') {
      value *= 1024ull * 1024 * 1024;
    }
  }
  return value;
}

} // namespace

MachineInfo queryMachine() {
  MachineInfo info;
  info.logicalCores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  info.ompMaxThreads = omp_get_max_threads();

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto colon = line.find(':');
      if (colon != std::string::npos) {
        info.cpuModel = line.substr(colon + 2);
      }
      break;
    }
  }

  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::string type = readFileTrimmed(base + "/type");
    if (type.empty()) {
      break;
    }
    if (type == "Instruction") {
      continue;
    }
    CacheLevel c;
    c.type = type;
    const std::string level = readFileTrimmed(base + "/level");
    c.level = level.empty() ? 0 : std::stoi(level);
    c.sizeBytes = parseCacheSize(readFileTrimmed(base + "/size"));
    const std::string lineSize =
        readFileTrimmed(base + "/coherency_line_size");
    c.lineBytes = lineSize.empty() ? 64 : std::stoul(lineSize);
    const std::string ways = readFileTrimmed(base + "/ways_of_associativity");
    c.associativity = ways.empty() ? 0 : std::stoi(ways);
    info.caches.push_back(c);
  }
  return info;
}

std::size_t lastLevelCacheBytes(const MachineInfo& info) {
  std::size_t best = 0;
  int bestLevel = 0;
  for (const auto& c : info.caches) {
    if (c.level > bestLevel) {
      bestLevel = c.level;
      best = c.sizeBytes;
    }
  }
  return best;
}

void printMachineReport(std::ostream& os, const MachineInfo& info) {
  os << "machine: " << (info.cpuModel.empty() ? "unknown CPU" : info.cpuModel)
     << ", " << info.logicalCores << " logical cores, OpenMP max threads "
     << info.ompMaxThreads << '\n';
  for (const auto& c : info.caches) {
    os << "  L" << c.level << ' ' << c.type << ": "
       << formatBytes(c.sizeBytes) << ", line " << c.lineBytes << " B";
    if (c.associativity > 0) {
      os << ", " << c.associativity << "-way";
    }
    os << '\n';
  }
}

std::vector<std::int64_t> defaultThreadSweep(int maxThreads) {
  std::vector<std::int64_t> sweep;
  for (int t = 1; t < maxThreads; t *= 2) {
    sweep.push_back(t);
  }
  sweep.push_back(maxThreads);
  return sweep;
}

} // namespace fluxdiv::harness
