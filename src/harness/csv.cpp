#include "harness/csv.hpp"

namespace fluxdiv::harness {

namespace {

std::string quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

} // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  if (path.empty()) {
    return;
  }
  out_.open(path);
  if (out_.is_open()) {
    writeRow(header);
  }
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) {
    return;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

} // namespace fluxdiv::harness
