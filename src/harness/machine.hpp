#pragma once
// Runtime machine description. The paper ran on three named HPC nodes and
// reported core counts and cache sizes; each bench binary prints this report
// so a run is self-describing about the node it executed on.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fluxdiv::harness {

/// One level of the CPU cache hierarchy as reported by sysfs.
struct CacheLevel {
  int level = 0;              ///< 1, 2, 3, ...
  std::string type;           ///< "Data", "Instruction", "Unified"
  std::size_t sizeBytes = 0;
  std::size_t lineBytes = 0;
  int associativity = 0;      ///< 0 if unknown
};

/// One NUMA node as reported by sysfs: its id and how many hardware
/// threads its cpulist covers. First-touch page placement makes the node
/// count the relevant knob for the level executor's box -> thread affinity
/// (docs/perf.md).
struct NumaNode {
  int id = 0;
  int cpuCount = 0;
};

/// Description of the host the benchmark runs on.
struct MachineInfo {
  std::string cpuModel;
  int logicalCores = 1;
  int ompMaxThreads = 1;
  std::vector<CacheLevel> caches; ///< data/unified levels of cpu0
  bool cacheFallback = false;     ///< true when `caches` are the documented
                                  ///< defaults, not detected values
  std::vector<NumaNode> numaNodes; ///< online nodes; never empty after
                                   ///< queryMachine() (see applyNumaFallback)
  bool numaFallback = false;       ///< true when `numaNodes` is the
                                   ///< single-node default, not detected
};

/// Probe /proc/cpuinfo, sysfs and sysconf. Never throws; missing fields
/// stay default, and a failed cache probe installs the documented default
/// hierarchy (see defaultCacheHierarchy) rather than zero-sized caches.
MachineInfo queryMachine();

/// The documented default cache hierarchy used when detection fails: a
/// paper-era desktop part (32 KiB L1d / 256 KiB L2 / 8 MiB L3, 64 B
/// lines). Zero-sized caches must never escape queryMachine() — a zero
/// capacity would make every schedule "fit in cache" and silently corrupt
/// the cost model's rankings.
std::vector<CacheLevel> defaultCacheHierarchy();

/// Drop unusable (zero-sized) cache entries from `info` and, if no usable
/// data/unified level remains, install defaultCacheHierarchy() and set
/// `info.cacheFallback`. Returns true when the fallback was installed.
/// Exposed so tests can force the detection-failure path directly.
bool applyCacheFallback(MachineInfo& info);

/// Number of hardware threads covered by a sysfs cpulist string such as
/// "0-3,8-11,15" (0 for empty/unparseable input). Exposed for tests.
int parseCpuListCount(const std::string& text);

/// Ensure `info.numaNodes` is usable: drop zero-CPU entries and, if none
/// remain (the sysfs node directory is commonly hidden in containers),
/// install the documented single-node fallback covering all logical cores
/// and set `info.numaFallback` — the same contract as applyCacheFallback.
/// Returns true when the fallback was installed.
bool applyNumaFallback(MachineInfo& info);

/// Size in bytes of the last-level data/unified cache (0 if unknown). Used
/// by the analytic traffic model as the capacity threshold.
std::size_t lastLevelCacheBytes(const MachineInfo& info);

/// Print a one-paragraph report mirroring the paper's Sec. VI-A setup text.
void printMachineReport(std::ostream& os, const MachineInfo& info);

/// Default thread sweep for scaling figures: powers of two up to the core
/// count, always including 1 and the core count itself (e.g. 1,2,4,8,16,24).
std::vector<std::int64_t> defaultThreadSweep(int maxThreads);

} // namespace fluxdiv::harness
