#pragma once
// Wall-clock timing utilities shared by the benchmark harness, the examples,
// and the tests. Uses steady_clock so measured intervals are immune to
// system-clock adjustments.

#include <chrono>
#include <cstdint>

namespace fluxdiv::harness {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Time a callable once and return elapsed seconds.
template <typename F> double timeOnce(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

} // namespace fluxdiv::harness
