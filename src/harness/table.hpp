#pragma once
// Aligned plain-text table printer. Every `bench/` binary regenerating a
// paper table or figure prints its rows through this so output is uniform
// and machine-greppable.

#include <iosfwd>
#include <string>
#include <vector>

namespace fluxdiv::harness {

/// Column-aligned text table. Add a header and rows of strings; width is
/// computed per column on print. Numeric cells should be preformatted with
/// formatSeconds()/formatDouble().
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; it may have fewer cells than the header (padded).
  void addRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  /// Render with a rule under the header and two spaces between columns.
  void print(std::ostream& os) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 4 significant decimal digits (e.g. "1.2345").
std::string formatSeconds(double seconds);

/// Format a double with the given precision.
std::string formatDouble(double value, int precision = 3);

/// Format bytes using binary units ("1.5 MiB").
std::string formatBytes(std::size_t bytes);

} // namespace fluxdiv::harness
