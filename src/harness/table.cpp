#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fluxdiv::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) {
        os << "  ";
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string formatSeconds(double seconds) { return formatDouble(seconds, 4); }

std::string formatDouble(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string formatBytes(std::size_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << ' '
     << kUnits[u];
  return ss.str();
}

} // namespace fluxdiv::harness
