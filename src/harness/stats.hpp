#pragma once
// Summary statistics over repeated timing samples. The paper reports a
// single execution time per (variant, thread count) point; we follow common
// practice for the reproduction and report the minimum over repetitions
// (least-noise estimator for wall time) while also retaining median/mean for
// the CSV output.

#include <cstddef>
#include <vector>

#include "harness/timer.hpp"

namespace fluxdiv::harness {

/// Summary of a sample of timing measurements (seconds).
struct SampleStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0; ///< population standard deviation
  std::size_t count = 0;
};

/// Compute summary statistics. An empty sample yields a zeroed struct.
SampleStats summarize(std::vector<double> samples);

/// The `pct`-th percentile (0..100) of `samples` by linear interpolation
/// between the two nearest order statistics (the common "type 7"
/// estimator). Empty input yields 0; pct is clamped to [0, 100].
double percentile(std::vector<double> samples, double pct);

/// The latency percentiles every throughput report quotes
/// (docs/serving.md): tail behavior of per-solve service latency.
struct LatencySummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

/// p50/p90/p99 of `samples` in one sort. Empty input yields zeros.
LatencySummary latencySummary(std::vector<double> samples);

/// Run `f` `reps` times (after `warmups` unmeasured runs) and summarize the
/// per-run wall times.
template <typename F>
SampleStats repeatTimed(F&& f, std::size_t reps, std::size_t warmups = 1) {
  for (std::size_t i = 0; i < warmups; ++i) {
    f();
  }
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    samples.push_back(timeOnce(f));
  }
  return summarize(std::move(samples));
}

} // namespace fluxdiv::harness
