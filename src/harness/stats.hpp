#pragma once
// Summary statistics over repeated timing samples. The paper reports a
// single execution time per (variant, thread count) point; we follow common
// practice for the reproduction and report the minimum over repetitions
// (least-noise estimator for wall time) while also retaining median/mean for
// the CSV output.

#include <cstddef>
#include <vector>

#include "harness/timer.hpp"

namespace fluxdiv::harness {

/// Summary of a sample of timing measurements (seconds).
struct SampleStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0; ///< population standard deviation
  std::size_t count = 0;
};

/// Compute summary statistics. An empty sample yields a zeroed struct.
SampleStats summarize(std::vector<double> samples);

/// Run `f` `reps` times (after `warmups` unmeasured runs) and summarize the
/// per-run wall times.
template <typename F>
SampleStats repeatTimed(F&& f, std::size_t reps, std::size_t warmups = 1) {
  for (std::size_t i = 0; i < warmups; ++i) {
    f();
  }
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    samples.push_back(timeOnce(f));
  }
  return summarize(std::move(samples));
}

} // namespace fluxdiv::harness
